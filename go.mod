module github.com/querycause/querycause

go 1.24
