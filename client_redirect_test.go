package querycause_test

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/server"
)

// finalRecorder is a terminal "owner node" double: it records what
// actually arrived after any redirects and answers an empty 200.
type finalRecorder struct {
	hits        atomic.Int32
	method      atomic.Value // string
	body        atomic.Value // string
	contentType atomic.Value // string
}

func (f *finalRecorder) server(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		raw, _ := io.ReadAll(r.Body)
		f.method.Store(r.Method)
		f.body.Store(string(raw))
		f.contentType.Store(r.Header.Get("Content-Type"))
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{}`))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// relay 307-redirects everything to *target (assigned after creation,
// so relays can form chains and loops), preserving the request path.
func relay(t *testing.T, target *string, hits *atomic.Int32) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		http.Redirect(w, r, *target+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestClientRedirectPolicy pins the cluster redirect contract: a 307
// from a wrong node is followed, re-sending the POST body verbatim (a
// redirect is a re-route, not a retry), under a bounded hop budget
// that absorbs ownership moving mid-flight during a topology change;
// exhausting the budget — a chain deeper than any converging topology
// produces, or a loop between two nodes that disagree — is an error
// instead of an endless chase.
func TestClientRedirectPolicy(t *testing.T) {
	cases := []struct {
		name string
		// hops is the number of consecutive 307 relays in front of the
		// owner; -1 wires two relays at each other (ownership loop).
		hops      int
		wantErr   string // substring of the returned error, "" = success
		wantFinal int32  // requests that must reach the owner
	}{
		{name: "direct", hops: 0, wantFinal: 1},
		{name: "one hop follows with body", hops: 1, wantFinal: 1},
		{name: "wrong owner after topology change", hops: 2, wantFinal: 1},
		{name: "chain deeper than the hop budget", hops: 5, wantErr: "redirect loop", wantFinal: 0},
		{name: "ownership loop", hops: -1, wantErr: "redirect loop", wantFinal: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			final := &finalRecorder{}
			owner := final.server(t)
			entry := owner.URL
			var relayHits []*atomic.Int32
			if tc.hops == -1 {
				var aURL, bURL string
				ha, hb := &atomic.Int32{}, &atomic.Int32{}
				a, b := relay(t, &bURL, ha), relay(t, &aURL, hb)
				aURL, bURL = a.URL, b.URL
				entry = a.URL
				relayHits = []*atomic.Int32{ha, hb}
			} else {
				next := owner.URL
				for i := 0; i < tc.hops; i++ {
					target := next // each relay captures its own target
					h := &atomic.Int32{}
					entry = relay(t, &target, h).URL
					next = entry
					relayHits = append(relayHits, h)
				}
			}

			c := qc.NewClient(entry, nil)
			_, err := c.WhySo(context.Background(), "d1", "", qc.ExplainRequest{
				Query:  "q(x) :- R(x,y), S(y)",
				Answer: []string{"a4"},
			})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("WhySo: %v", err)
				}
				if got := final.method.Load(); got != http.MethodPost {
					t.Fatalf("owner saw method %v, want POST preserved across redirect", got)
				}
				body, _ := final.body.Load().(string)
				if !strings.Contains(body, `"q(x) :- R(x,y), S(y)"`) || !strings.Contains(body, `"a4"`) {
					t.Fatalf("owner saw body %q, want the original request re-sent intact", body)
				}
				if got := final.contentType.Load(); got != "application/json" {
					t.Fatalf("owner saw Content-Type %v", got)
				}
			} else {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
			}
			if got := final.hits.Load(); got != tc.wantFinal {
				t.Fatalf("owner got %d requests, want %d", got, tc.wantFinal)
			}
			// The hop budget bounds every chase: no relay is visited more
			// than ceil((maxRedirectHops+1)/2) times even in a two-node
			// loop, and the unkeyed POST is never retried on top.
			for i, h := range relayHits {
				if got := h.Load(); got > 3 {
					t.Fatalf("relay %d got %d requests, want at most 3 (bounded by the hop budget)", i, got)
				}
			}
		})
	}
}

// TestClientGETFollowsRedirect: bodiless GETs keep net/http's normal
// transparent redirect handling.
func TestClientGETFollowsRedirect(t *testing.T) {
	final := &finalRecorder{}
	owner := final.server(t)
	target := owner.URL
	entry := relay(t, &target, &atomic.Int32{})
	c := qc.NewClient(entry.URL, nil)
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("Stats through redirect: %v", err)
	}
	if got := final.hits.Load(); got != 1 {
		t.Fatalf("owner got %d requests, want 1", got)
	}
}

// TestDialRoutesToOwner: against a real 3-node cluster, Dial learns
// the topology and pins the session to the owning node, so the whole
// session runs with zero redirects and zero proxied requests — and the
// ranking still matches the in-process engine.
func TestDialRoutesToOwner(t *testing.T) {
	ctx := context.Background()
	n := 3
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		srv := server.New(server.Config{ReapInterval: -1, Self: urls[i], Peers: urls})
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
		})
	}

	db, _ := imdb.Micro()
	sess, err := qc.Dial(ctx, urls[0], db)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer sess.Close()
	q := imdb.GenreQuery()
	r, err := sess.WhySo(ctx, q, "Musical")
	if err != nil {
		t.Fatalf("WhySo: %v", err)
	}
	got, err := r.Rank(ctx)
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	want, err := qc.WhySo(db, q, "Musical")
	if err != nil {
		t.Fatal(err)
	}
	wantEx := want.MustRank()
	if len(got) != len(wantEx) {
		t.Fatalf("remote ranking has %d causes, local %d", len(got), len(wantEx))
	}
	for i := range got {
		if got[i].Tuple != wantEx[i].Tuple || got[i].Rho != wantEx[i].Rho {
			t.Fatalf("cause %d differs: remote %+v local %+v", i, got[i], wantEx[i])
		}
	}
	for _, u := range urls {
		st, err := qc.NewClient(u, nil).Stats(ctx)
		if err != nil {
			t.Fatalf("stats %s: %v", u, err)
		}
		if st.ClusterRedirected != 0 || st.ClusterProxied != 0 {
			t.Fatalf("node %s redirected=%d proxied=%d, want 0/0 (Dial should route client-side)", u, st.ClusterRedirected, st.ClusterProxied)
		}
	}
}
