package querycause

import (
	"context"
	"fmt"
	"iter"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/qerr"
	"github.com/querycause/querycause/internal/server"
)

// Session is the explanation API over one database: the same
// interface whether the engine runs in-process (Open) or behind a
// querycaused server (Dial). Every method is context-first, failures
// are tagged with the package's error taxonomy identically on both
// transports, and rankings — blocking, streamed, or batched — are
// byte-identical across transports and parallelism degrees.
//
// A Session is safe for concurrent use. Close releases the session;
// all later calls fail with ErrSessionClosed.
type Session interface {
	// WhySo opens the explanation of why answer ā is returned by q
	// (Definition 2.1): the database's endogenous tuples are the
	// candidate causes. Pass no answer values for a Boolean query. The
	// causes (Theorem 3.2) are computed here — always polynomial —
	// while responsibility ranking is deferred to the Ranking.
	WhySo(ctx context.Context, q *Query, answer ...Value) (Ranking, error)
	// WhyNo opens the explanation of why ā is NOT an answer: the
	// endogenous tuples are the candidate missing tuples Dⁿ, the
	// exogenous tuples the real database Dˣ (Section 2). Invalid
	// instances fail here with ErrInvalidWhyNo.
	WhyNo(ctx context.Context, q *Query, nonAnswer ...Value) (Ranking, error)
	// ExplainAll explains many answers and non-answers in one call,
	// fanned out across a worker pool. Results arrive in request
	// order; per-request failures land in BatchResult.Err without
	// aborting the rest. It returns a non-nil error only when the
	// whole batch failed (context canceled, transport down).
	ExplainAll(ctx context.Context, reqs []BatchRequest, opts ...Option) ([]BatchResult, error)
	// Insert appends tuples to the session database and returns their
	// assigned tuple ids in request order. The batch is atomic: every
	// tuple is validated (non-empty relation and arguments, consistent
	// arity) before anything is applied, so an ErrBadInstance failure
	// means the database is unchanged. A relation absent from the
	// database is created on first insert. Mutations serialize against
	// in-flight explains; Rankings opened before a mutation are stale —
	// re-open the explanation to rank against the mutated database.
	Insert(ctx context.Context, tuples ...TupleSpec) ([]TupleID, error)
	// Delete removes one tuple by id. Ids are never reused: deleting
	// an unknown or already-deleted id fails with ErrTupleNotFound,
	// and historical explanations keep rendering the removed tuple.
	// Like Insert, a delete invalidates Rankings opened before it.
	Delete(ctx context.Context, id TupleID) error
	// Watch subscribes to the live explanation of one answer (or, with
	// spec.WhyNo, one non-answer): the first frame is a snapshot of
	// the current ranking, then every mutation against the session
	// produces exactly one frame — a diff (causes added/removed, ranks
	// changed) when the mutation can affect the watched query, an
	// empty version-bump otherwise. Replaying frames with ApplyDiff
	// reconstructs, at every version, the ranking a cold Rank would
	// return, byte for byte. A failure to re-rank after a mutation
	// (e.g. a mutation that invalidates a why-no instance) arrives as
	// an in-band frame with Type "error" and a nil iteration error;
	// the subscription stays open and recovers with a full_resync
	// frame once re-ranking succeeds again. A subscriber that falls
	// more than spec.Buffer frames behind has the backlog dropped and
	// is re-seeded with a full_resync instead of a broken diff chain.
	// Invalid specs (nil query, invalid why-no instance) fail as the
	// first iteration error; otherwise the sequence ends only with a
	// non-nil error when ctx is canceled or the transport fails for
	// good. On the remote transport a broken stream reconnects with
	// backoff and resumes from the last delivered version — replaying
	// the missed diffs gap-free when the server still buffers them,
	// re-seeding with a full_resync otherwise — so a watch survives
	// node deaths and session handoffs; set spec.ResumeFrom to hand a
	// replayed state across Watch calls yourself. The sequence is
	// single-use; breaking out of the range unsubscribes.
	Watch(ctx context.Context, spec WatchSpec, opts ...Option) iter.Seq2[DiffEvent, error]
	// Close releases the session (and drops the server-side session on
	// a Dial'ed one).
	Close() error
}

// Ranking is one opened explanation: the causes of a single answer or
// non-answer, with their responsibility ranking available blocking
// (Rank) or incrementally (RankStream). Rankings are safe for
// concurrent use and remain usable after Session.Close only on the
// in-process transport; treat them as scoped to their session.
type Ranking interface {
	// Causes returns all actual causes, sorted by tuple ID (Theorem
	// 3.2). It is precomputed — no responsibility search runs.
	Causes(ctx context.Context) ([]TupleID, error)
	// Rank explains every cause, sorted by descending responsibility
	// with ties by ascending tuple ID (the paper's Fig. 2b ranking).
	// The result is byte-identical for every transport, worker count,
	// and emission order.
	Rank(ctx context.Context, opts ...Option) ([]Explanation, error)
	// RankStream yields each cause's explanation as its responsibility
	// computation completes: on the NP-hard side of the dichotomy the
	// first explanation arrives after one exact search instead of all
	// of them. The default emission order is ascending cause order
	// (deterministic); WithDeterministic(false) switches to completion
	// order. A fully drained stream holds exactly Rank's explanations
	// — sort with SortExplanations to recover the ranking order. The
	// sequence is single-use; breaking out of the range cancels the
	// remaining computation. Errors end the sequence as a final
	// (zero Explanation, err) pair.
	RankStream(ctx context.Context, opts ...Option) iter.Seq2[Explanation, error]
}

// WatchSpec names the explanation a Session.Watch subscribes to.
type WatchSpec struct {
	// Query is the watched query (required).
	Query *Query
	// Answer binds the watched answer (why-so) or non-answer (why-no);
	// empty for a Boolean query.
	Answer []Value
	// WhyNo watches a non-answer: the frames track the ranking of the
	// candidate missing tuples (the database's endogenous tuples).
	WhyNo bool
	// Buffer is the per-subscription frame buffer (default 16). A
	// subscriber that falls more than Buffer frames behind has its
	// backlog dropped and recovers with a full_resync frame.
	Buffer int
	// ResumeFrom resumes a broken watch: the version of the last frame
	// the subscriber applied. When the topic's diff buffer still covers
	// that version the stream replays the missed frames and continues
	// the chain gap-free (no snapshot frame); otherwise it starts with
	// a full_resync. Zero subscribes fresh with a snapshot. The remote
	// transport sets it automatically when reconnecting a dropped watch
	// stream; set it manually to hand a replayed state across Watch
	// calls.
	ResumeFrom uint64
}

// Open returns an in-process Session over db. While the session is in
// use the database must be mutated only through Session.Insert and
// Session.Delete, which serialize against the session's explains.
// Options set the session's defaults (mode, parallelism, timeout,
// streaming determinism); per-call options override them.
func Open(db *Database, opts ...Option) (Session, error) {
	if db == nil {
		return nil, qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("querycause: Open: nil database"))
	}
	return &localSession{db: db, cfg: defaultConfig().apply(opts), watch: server.NewWatchSet()}, nil
}

// SortExplanations sorts a ranking in place into the order Rank
// returns — descending ρ, ties by ascending tuple ID. Draining
// RankStream and sorting with SortExplanations reproduces Rank
// byte-for-byte.
func SortExplanations(exps []Explanation) { core.SortExplanations(exps) }

// ApplyDiff folds one watch frame into a replayed ranking: snapshot
// and full_resync frames replace the state wholesale, diff frames
// apply removals, changes, and additions and re-sort into ranking
// order, and error frames leave the state untouched. Replaying a
// Session.Watch stream through ApplyDiff reconstructs, at every
// version, the ranking a cold Rank would return at that version.
func ApplyDiff(state []ExplanationDTO, ev DiffEvent) []ExplanationDTO {
	return server.ApplyWatchEvent(state, ev)
}

// localSession is the in-process transport: a thin, option-aware
// veneer over internal/core.
type localSession struct {
	db  *Database
	cfg config
	// dbMu serializes mutations (Insert/Delete, write-locked) against
	// engine construction and batch evaluation (read-locked) — the same
	// discipline the server applies per session. Rankings already
	// opened hold self-contained engine state and need no lock.
	dbMu   sync.RWMutex
	closed atomic.Bool
	// watch fans live-explanation frames out to Watch subscribers.
	// Insert and Delete publish through it before releasing the write
	// lock, so frames advance atomically with the database — the same
	// discipline the server applies (see internal/server WatchSet).
	watch *server.WatchSet
}

func (s *localSession) checkOpen() error {
	if s.closed.Load() {
		return qerr.Tag(qerr.ErrSessionClosed, fmt.Errorf("querycause: session is closed"))
	}
	return nil
}

func (s *localSession) WhySo(ctx context.Context, q *Query, answer ...Value) (Ranking, error) {
	return s.open(ctx, q, answer, false)
}

func (s *localSession) WhyNo(ctx context.Context, q *Query, nonAnswer ...Value) (Ranking, error) {
	return s.open(ctx, q, nonAnswer, true)
}

func (s *localSession) open(ctx context.Context, q *Query, answer []Value, whyNo bool) (Ranking, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	cctx, cancel := s.cfg.withTimeout(ctx)
	defer cancel()
	if err := cctx.Err(); err != nil {
		return nil, err
	}
	var eng *core.Engine
	var err error
	s.dbMu.RLock()
	if whyNo {
		eng, err = core.NewWhyNo(s.db, q, answer...)
	} else {
		eng, err = core.NewWhySo(s.db, q, answer...)
	}
	s.dbMu.RUnlock()
	if err != nil {
		return nil, err
	}
	// Engine construction (lineage computation) is not interruptible;
	// honor a budget that expired during it the way the remote
	// transport's request deadline would.
	if err := cctx.Err(); err != nil {
		return nil, err
	}
	return &localRanking{s: s, eng: eng}, nil
}

func (s *localSession) ExplainAll(ctx context.Context, reqs []BatchRequest, opts ...Option) ([]BatchResult, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	cfg := s.cfg.apply(opts)
	ctx, cancel := cfg.withTimeout(ctx)
	defer cancel()
	creqs := make([]core.BatchRequest, len(reqs))
	for i, r := range reqs {
		creqs[i] = core.BatchRequest{Query: r.Query, Answer: r.Answer, WhyNo: r.WhyNo}
	}
	s.dbMu.RLock()
	cres, err := core.ExplainBatch(ctx, s.db, creqs, core.BatchRunOptions{
		Workers: cfg.parallelism,
		Mode:    cfg.mode,
	})
	s.dbMu.RUnlock()
	if err != nil {
		return nil, err
	}
	results := make([]BatchResult, len(reqs))
	for i, r := range cres {
		results[i] = BatchResult{Request: reqs[i], Explanations: r.Explanations, Err: r.Err}
	}
	return results, nil
}

func (s *localSession) Insert(ctx context.Context, tuples ...TupleSpec) ([]TupleID, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	if err := server.ValidateInsert(s.db, tuples); err != nil {
		return nil, err
	}
	ids := make([]TupleID, 0, len(tuples))
	rels := make(map[string]bool, len(tuples))
	for _, t := range tuples {
		args := make([]Value, len(t.Args))
		for i, a := range t.Args {
			args[i] = Value(a)
		}
		id, err := s.db.Add(t.Rel, t.Endo, args...)
		if err != nil {
			// Unreachable after ValidateInsert; surface it anyway.
			return ids, qerr.Tag(qerr.ErrBadInstance, err)
		}
		ids = append(ids, id)
		rels[t.Rel] = true
	}
	// One frame per Insert call, not per tuple — still inside the write
	// lock, so subscribers see frames in database order.
	s.watch.Fanout(s.db.Version(), rels)
	return ids, nil
}

func (s *localSession) Delete(ctx context.Context, id TupleID) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	if !s.db.Live(id) {
		return qerr.Tag(qerr.ErrTupleNotFound, fmt.Errorf("querycause: no live tuple %d", id))
	}
	relName := s.db.Tuple(id).Rel
	if err := s.db.Delete(id); err != nil {
		return err
	}
	s.watch.Fanout(s.db.Version(), map[string]bool{relName: true})
	return nil
}

// Watch on the in-process transport subscribes directly to the
// session's WatchSet — the exact fanout machinery the server uses, so
// frame sequences are byte-identical across transports. The rank
// closure builds a cold engine per affected fanout; that stays under
// the mutation's write lock, mirroring the server's (delta-patched)
// re-rank window.
func (s *localSession) Watch(ctx context.Context, spec WatchSpec, opts ...Option) iter.Seq2[DiffEvent, error] {
	cfg := s.cfg.apply(opts)
	return func(yield func(DiffEvent, error) bool) {
		if err := s.checkOpen(); err != nil {
			yield(DiffEvent{}, err)
			return
		}
		if spec.Query == nil {
			yield(DiffEvent{}, qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("querycause: Watch: nil query")))
			return
		}
		ctx, cancel := cfg.withTimeout(ctx)
		defer cancel()
		buffer := spec.Buffer
		if buffer <= 0 {
			buffer = 16
		}
		q := spec.Query
		answer := append([]Value(nil), spec.Answer...)
		key := watchKey(q, answer, spec.WhyNo, cfg.mode)
		rank := func() ([]ExplanationDTO, error) {
			// Runs under dbMu — the read side for the snapshot, the
			// mutating call's write side for fanouts — so it takes no
			// database lock and detaches from the subscriber's context.
			var eng *core.Engine
			var err error
			if spec.WhyNo {
				eng, err = core.NewWhyNo(s.db, q, answer...)
			} else {
				eng, err = core.NewWhySo(s.db, q, answer...)
			}
			if err != nil {
				return nil, err
			}
			exps, err := eng.RankAllParallel(context.Background(), cfg.mode, core.ParallelOptions{Workers: cfg.parallelism})
			if err != nil {
				return nil, err
			}
			dtos := make([]ExplanationDTO, len(exps))
			for i, ex := range exps {
				dtos[i] = server.NewExplanationDTO(s.db, ex)
			}
			return dtos, nil
		}
		s.dbMu.RLock()
		sub, initial, err := s.watch.Subscribe(key, buffer, s.db.Version(), spec.ResumeFrom, func(relName string) bool {
			for _, a := range q.Atoms {
				if a.Pred == relName {
					return true
				}
			}
			return false
		}, rank)
		s.dbMu.RUnlock()
		if err != nil {
			yield(DiffEvent{}, err)
			return
		}
		defer s.watch.Unsubscribe(key, sub)
		lastVersion := spec.ResumeFrom
		for _, ev := range initial {
			if !yield(ev, nil) {
				return
			}
			lastVersion = ev.Version
		}
		for {
			select {
			case <-ctx.Done():
				yield(DiffEvent{}, ctx.Err())
				return
			case ev, ok := <-sub.C():
				if !ok {
					yield(DiffEvent{}, fmt.Errorf("querycause: watch subscription closed"))
					return
				}
				if sub.TakeLag() {
					// Dropped frames break the diff chain: discard what is
					// still buffered (it predates the drop) and re-seed from
					// the topic's current state — the same recovery the
					// server's handler performs.
					for drained := false; !drained; {
						select {
						case _, ok := <-sub.C():
							if !ok {
								yield(DiffEvent{}, fmt.Errorf("querycause: watch subscription closed"))
								return
							}
						default:
							drained = true
						}
					}
					res, ok := s.watch.Resync(key)
					if !ok {
						yield(DiffEvent{}, fmt.Errorf("querycause: watch topic dropped"))
						return
					}
					if !yield(res, nil) {
						return
					}
					lastVersion = res.Version
					continue
				}
				if ev.Version <= lastVersion {
					// Superseded frame (published before a resync that already
					// covered it); applying it would corrupt the replay.
					continue
				}
				if !yield(ev, nil) {
					return
				}
				lastVersion = ev.Version
			}
		}
	}
}

// watchKey derives the local topic key: watches of the same query,
// answer, direction, and mode share one topic (and therefore one
// re-rank per mutation), exactly as on the server.
func watchKey(q *Query, answer []Value, whyNo bool, mode Mode) string {
	var b strings.Builder
	if whyNo {
		b.WriteString("no:")
	} else {
		b.WriteString("so:")
	}
	b.WriteString(mode.String())
	b.WriteByte('|')
	b.WriteString(q.String())
	for _, v := range answer {
		b.WriteByte('\x1f')
		b.WriteString(string(v))
	}
	return b.String()
}

func (s *localSession) Close() error {
	s.closed.Store(true)
	return nil
}

type localRanking struct {
	s   *localSession
	eng *core.Engine
}

func (r *localRanking) Causes(ctx context.Context) ([]TupleID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.eng.Causes(), nil
}

func (r *localRanking) Rank(ctx context.Context, opts ...Option) ([]Explanation, error) {
	cfg := r.s.cfg.apply(opts)
	ctx, cancel := cfg.withTimeout(ctx)
	defer cancel()
	return r.eng.RankAllParallel(ctx, cfg.mode, core.ParallelOptions{Workers: cfg.parallelism})
}

func (r *localRanking) RankStream(ctx context.Context, opts ...Option) iter.Seq2[Explanation, error] {
	cfg := r.s.cfg.apply(opts)
	return func(yield func(Explanation, error) bool) {
		ctx, cancel := cfg.withTimeout(ctx)
		defer cancel()
		for ex, err := range r.eng.RankStream(ctx, cfg.mode, core.StreamOptions{
			Workers:         cfg.parallelism,
			CompletionOrder: cfg.completionOrder,
		}) {
			if !yield(ex, err) {
				return
			}
		}
	}
}
