// Benchmark harness: one benchmark per experiment index (E1–E17),
// regenerating the computational content
// of every figure, table, and construction in the paper. Run with
//
//	go test -bench=. -benchmem
//
// Absolute numbers are machine-dependent; what must hold are the
// shapes (e.g. polynomial flow vs exponential exact search, and the
// PTIME/NP-hard split of Fig. 3). BENCH_parallel.json records a
// baseline for the E18/E19 rows.
package querycause_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/exact"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/reductions"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/rewrite"
	"github.com/querycause/querycause/internal/shape"
	"github.com/querycause/querycause/internal/whyno"
	"github.com/querycause/querycause/internal/workload"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// BenchmarkE2_Fig2IMDBRanking ranks the causes of the Musical answer:
// the exact Fig. 2 micro-instance and synthetic IMDBs of growing size.
func BenchmarkE2_Fig2IMDBRanking(b *testing.B) {
	b.Run("micro", func(b *testing.B) {
		db, _ := imdb.Micro()
		q := imdb.GenreQuery()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex, err := qc.WhySo(db, q, "Musical")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ex.Rank(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, nd := range []int{20, 60, 180} {
		b.Run(fmt.Sprintf("synthetic/directors=%d", nd), func(b *testing.B) {
			db := imdb.Synthetic(imdb.Config{Seed: 42, Directors: nd})
			q := imdb.GenreQuery()
			ans, err := rel.Answers(db, q)
			if err != nil || len(ans) == 0 {
				b.Fatalf("no answers: %v", err)
			}
			genre := ans[0].Values[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex, err := qc.WhySo(db, q, genre)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ex.Rank(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// fig3Queries is the query library behind the Fig. 3 complexity table.
func fig3Queries() []*shape.Shape {
	return []*shape.Shape{
		shape.New(shape.A("R", true, 0, 1), shape.A("S", true, 1, 2)),
		shape.New(shape.A("R", true, 0, 1), shape.A("S", true, 1, 2), shape.A("T", true, 2, 3)),
		shape.NewHard(shape.H1),
		shape.NewHard(shape.H2),
		shape.NewHard(shape.H3),
		shape.New(shape.A("R", true, 0, 1), shape.A("S", false, 1, 2), shape.A("T", true, 2, 0)),
		shape.New(shape.A("R", true, 0, 1), shape.A("S", true, 1, 2), shape.A("T", true, 2, 0), shape.A("V", true, 0)),
		shape.New(shape.A("R", true, 0, 1), shape.A("S", true, 1, 2), shape.A("T", true, 2, 3), shape.A("K", true, 3, 0)),
	}
}

// BenchmarkE3_Fig3Classification classifies the Fig. 3 query library
// under both domination rules.
func BenchmarkE3_Fig3Classification(b *testing.B) {
	qs := fig3Queries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range qs {
			if _, err := rewrite.Classify(s); err != nil {
				b.Fatal(err)
			}
			if _, err := rewrite.ClassifySound(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE6_CausesFOvsLineage compares the two PTIME causality
// algorithms of Section 3: Theorem 3.2 (lineage) and Theorem 3.4
// (generated Datalog¬ program).
func BenchmarkE6_CausesFOvsLineage(b *testing.B) {
	for _, n := range []int{20, 80} {
		db, q, _ := workload.Chain2(7, n)
		b.Run(fmt.Sprintf("lineage/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lineage.Causes(db, q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("datalog/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := qc.CausesFO(db, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7_Fig4FlowLinear runs Algorithm 1 on the Fig. 4 query
// R(x,y),S(y,z) at growing sizes — the polynomial side of the
// dichotomy.
func BenchmarkE7_Fig4FlowLinear(b *testing.B) {
	for _, n := range []int{20, 80, 320} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db, q, t := workload.Chain2(11, n)
			eng, err := core.NewWhySo(db, q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Responsibility(t, core.ModeAuto); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9_Fig6H1Exact solves the NP-hard h₁* via exact search on
// hypergraph-vertex-cover instances (Fig. 6 reduction), growing the
// triple count.
func BenchmarkE9_Fig6H1Exact(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("triples=%d", n), func(b *testing.B) {
			db, q, t := workload.Star(13, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := exact.MinContingencyDB(db, q, t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10_Fig7SATRings builds the 3SAT local-ring instances and
// checks the canonical contingencies (Lemma C.3's forward direction).
func BenchmarkE10_Fig7SATRings(b *testing.B) {
	f := reductions.Formula{NumVars: 4, Clauses: []reductions.Clause{
		{{Var: 0}, {Var: 1, Neg: true}, {Var: 2}},
		{{Var: 1}, {Var: 2, Neg: true}, {Var: 3}},
	}}
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reductions.BuildRings(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decide", func(b *testing.B) {
		inst, err := reductions.BuildRings(f)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := inst.SatisfiableViaRings(f.NumVars); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11_Fig9Transform runs the h₂*→h₃* instance transformation.
func BenchmarkE11_Fig9Transform(b *testing.B) {
	db, _, _ := workload.Triangle(17, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := reductions.H2ToH3(db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14_Thm415Chain runs the full LOGSPACE chain UGAP → BGAP →
// FPMF → responsibility of the probe tuple.
func BenchmarkE14_Thm415Chain(b *testing.B) {
	for _, n := range []int{8, 16} {
		b.Run(fmt.Sprintf("vertices=%d", n), func(b *testing.B) {
			rng := newRand(19)
			g := reductions.RandomGraph(rng, n, 0.3)
			bg := reductions.UGAPToBGAP(g, 0, n-1)
			f := reductions.BGAPToFPMF(bg)
			chain := reductions.FPMFToChain(f)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := core.NewWhySo(chain.DB, chain.Q)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Responsibility(chain.Target, core.ModeAuto); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE16_WhyNo measures the Theorem 4.17 closed form.
func BenchmarkE16_WhyNo(b *testing.B) {
	for _, n := range []int{20, 80} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db, q := workload.WhyNoChain(23, n)
			if err := whyno.CheckInstance(db, q); err != nil {
				b.Skip("instance invalid at this size: ", err)
			}
			causes, err := whyno.Causes(db, q)
			if err != nil || len(causes) == 0 {
				b.Skip("no causes at this size")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := whyno.Responsibility(db, q, causes[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// parallelSweep is the worker-count axis of the E18/E19 benchmarks:
// serial (1), then 2, 4, and the host's GOMAXPROCS when larger.
func parallelSweep() []int {
	sweep := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		sweep = append(sweep, p)
	}
	return sweep
}

// BenchmarkE18_ParallelRanking measures the concurrent batch engine
// (RankAllParallel) against the serial RankAll on both sides of the
// responsibility dichotomy: a weakly linear query solved per cause by
// Algorithm 1 (max-flow over per-worker networks, pooled and Reset
// across rankings instead of cloned per call) and the NP-hard star
// h₁* solved per cause by the indexed branch-and-bound over the
// shared interned lineage. workers=1 is the serial baseline; the speedup at
// workers=w is serial_ns / parallel_ns on a host with GOMAXPROCS ≥ w
// (on a single-core host the sweep instead measures fan-out overhead).
func BenchmarkE18_ParallelRanking(b *testing.B) {
	cases := []struct {
		name string
		eng  func(b *testing.B) *core.Engine
		mode core.Mode
	}{
		{
			name: "flow-linear/triangle-exo-s/n=96",
			eng: func(b *testing.B) *core.Engine {
				db, q, _ := workload.TriangleExoS(29, 96)
				eng, err := core.NewWhySo(db, q)
				if err != nil {
					b.Fatal(err)
				}
				return eng
			},
			mode: core.ModeAuto,
		},
		{
			name: "hard-exact/star/n=12",
			eng: func(b *testing.B) *core.Engine {
				db, q, _ := workload.Star(13, 12)
				eng, err := core.NewWhySo(db, q)
				if err != nil {
					b.Fatal(err)
				}
				return eng
			},
			mode: core.ModeExact,
		},
	}
	for _, c := range cases {
		eng := c.eng(b)
		// Warm the lazy caches (classification certificate, base flow
		// network) so every variant times only the per-cause work.
		want, err := eng.RankAll(c.mode)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.RankAll(c.mode); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, w := range parallelSweep() {
			b.Run(fmt.Sprintf("%s/parallel=%d", c.name, w), func(b *testing.B) {
				ctx := context.Background()
				for i := 0; i < b.N; i++ {
					out, err := eng.RankAllParallel(ctx, c.mode, core.ParallelOptions{Workers: w})
					if err != nil {
						b.Fatal(err)
					}
					if len(out) != len(want) {
						b.Fatalf("parallel ranking has %d entries, want %d", len(out), len(want))
					}
				}
			})
		}
	}
}

// BenchmarkE19_ExplainAllBatch measures the request-level fan-out: all
// answers of the genre query on a synthetic IMDB, explained one
// WhySo+Rank at a time versus one ExplainAll call.
func BenchmarkE19_ExplainAllBatch(b *testing.B) {
	db := imdb.Synthetic(imdb.Config{Seed: 42, Directors: 120})
	q := imdb.GenreQuery()
	ans, err := rel.Answers(db, q)
	if err != nil || len(ans) == 0 {
		b.Fatalf("no answers: %v", err)
	}
	reqs := make([]qc.BatchRequest, len(ans))
	for i, a := range ans {
		reqs[i] = qc.BatchRequest{Query: q, Answer: a.Values}
	}
	b.Run(fmt.Sprintf("serial/answers=%d", len(ans)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, a := range ans {
				ex, err := qc.WhySo(db, q, a.Values...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ex.Rank(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	ctx := context.Background()
	for _, w := range parallelSweep() {
		b.Run(fmt.Sprintf("batch/answers=%d/parallel=%d", len(ans), w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := qc.ExplainAll(ctx, db, reqs, qc.BatchOptions{Parallelism: w})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkAblation_Options quantifies each optimization of the
// indexed branch-and-bound on the h₁* family: every exact.Options
// toggle off individually (the differential harness asserts none of
// them changes an answer; this is the time axis). The full
// before/after curve lives in BENCH_exact.json
// (`go run ./cmd/experiments -run exactcurve`).
func BenchmarkAblation_Options(b *testing.B) {
	db, q, t := workload.Star(13, 16)
	n, err := lineage.NLineageOf(db, q)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		opts exact.Options
	}{
		{"default", exact.Options{}},
		{"no-greedy-seed", exact.Options{DisableGreedySeed: true}},
		{"no-preprocess", exact.Options{DisablePreprocess: true}},
		{"no-memo", exact.Options{DisableMemo: true}},
		{"no-packing-bound", exact.Options{DisablePackingBound: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exact.MinContingencyOpts(n, t, v.opts)
			}
		})
	}
}

// BenchmarkAblation_GreedyVsExact compares the polynomial greedy
// heuristic against exact search (quality is checked in tests; this is
// the time trade-off).
func BenchmarkAblation_GreedyVsExact(b *testing.B) {
	db, q, t := workload.Star(13, 20)
	n, err := lineage.NLineageOf(db, q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exact.GreedyMinContingency(n, t)
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exact.MinContingency(n, t)
		}
	})
}

// BenchmarkE17_ScalingLinearVsHard contrasts the two sides of the
// dichotomy: the weakly linear triangle of Example 4.12a (exogenous S →
// flow algorithm, polynomial — note the n=200 point) versus the
// NP-hard star h₁* (exact search, still exponential in the worst case;
// the indexed branch-and-bound pushed the old n≈32 wall out past n=64
// on this family — see BENCH_exact.json). This is the paper's central
// claim made measurable.
func BenchmarkE17_ScalingLinearVsHard(b *testing.B) {
	for _, n := range []int{8, 16, 24, 200} {
		b.Run(fmt.Sprintf("linear-flow/n=%d", n), func(b *testing.B) {
			db, q, t := workload.TriangleExoS(29, n)
			eng, err := core.NewWhySo(db, q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Responsibility(t, core.ModeAuto); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, n := range []int{8, 16, 24} {
		b.Run(fmt.Sprintf("hard-exact/n=%d", n), func(b *testing.B) {
			db, q, t := workload.Star(13, n)
			eng, err := core.NewWhySo(db, q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Responsibility(t, core.ModeExact); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
