package querycause

import (
	"context"
	"net/http"
	"time"
)

// config is the one knob set behind the Session API: session
// constructors (Open, Dial) take Options establishing the session's
// defaults, and per-call Options on Rank / RankStream / ExplainAll
// override them for that call. It replaces the v1 surface's scattered
// BatchOptions, core.ParallelOptions, and per-request wire fields.
type config struct {
	mode            Mode
	parallelism     int
	timeout         time.Duration
	completionOrder bool
	httpClient      *http.Client
	retries         int
}

func defaultConfig() config {
	return config{retries: defaultGETRetries}
}

// apply copies the config and applies per-call overrides.
func (c config) apply(opts []Option) config {
	for _, o := range opts {
		o(&c)
	}
	return c
}

// withTimeout derives the call context: bounded by the configured
// timeout when one is set, untouched otherwise.
func (c config) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return context.WithCancel(ctx)
}

// Option configures a Session or one call on it.
type Option func(*config)

// WithMode selects the responsibility strategy (ModeAuto, ModeExact,
// ModePaper). The default is ModeAuto.
func WithMode(m Mode) Option { return func(c *config) { c.mode = m } }

// WithParallelism sets the ranking worker count. Values <= 0 mean
// runtime.GOMAXPROCS(0) in-process; on a remote session the server's
// worker budget caps the request. Rankings are byte-identical for
// every parallelism degree.
func WithParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithTimeout bounds each call on the session (engine construction,
// ranking, or draining a stream). Exceeding it surfaces as the
// context error locally and as ErrBudgetExceeded from a server that
// gave up first. Zero (the default) means no session-level bound —
// the caller's context alone governs.
func WithTimeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithDeterministic controls streaming emission order. Deterministic
// (the default, on=true) emits explanations in ascending cause order,
// identical for every worker count and transport;
// WithDeterministic(false) emits each explanation the moment its
// computation completes, minimizing time-to-first-explanation at the
// price of a scheduling-dependent order. Either way a fully drained
// stream holds exactly Rank's explanations (sort with
// SortExplanations to recover the ranking order), and Rank itself is
// always deterministic.
func WithDeterministic(on bool) Option { return func(c *config) { c.completionOrder = !on } }

// WithHTTPClient sets the http.Client a Dial'ed session uses
// (default http.DefaultClient). Ignored by Open.
func WithHTTPClient(hc *http.Client) Option { return func(c *config) { c.httpClient = hc } }

// WithRetries sets how many extra attempts idempotent GETs get after
// transport errors or gateway-style statuses on a Dial'ed session's
// client (default 2; 0 disables). Explain calls are POSTs and are
// never retried. Ignored by Open.
func WithRetries(n int) Option { return func(c *config) { c.retries = n } }
