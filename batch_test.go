package querycause_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/rel"
)

// TestExplainAllMatchesSerial batches every answer of the genre query
// on a synthetic IMDB and checks each ranking against the serial
// WhySo+Rank path, at several parallelism degrees.
func TestExplainAllMatchesSerial(t *testing.T) {
	db := imdb.Synthetic(imdb.Config{Seed: 7, Directors: 40})
	q := imdb.GenreQuery()
	ans, err := rel.Answers(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) < 2 {
		t.Fatalf("want a multi-answer workload, got %d answers", len(ans))
	}
	var reqs []qc.BatchRequest
	want := make([][]qc.Explanation, len(ans))
	for i, a := range ans {
		reqs = append(reqs, qc.BatchRequest{Query: q, Answer: a.Values})
		ex, err := qc.WhySo(db, q, a.Values...)
		if err != nil {
			t.Fatal(err)
		}
		want[i], err = ex.Rank()
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, par := range []int{0, 1, 3} {
		results, err := qc.ExplainAll(context.Background(), db, reqs, qc.BatchOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(results) != len(reqs) {
			t.Fatalf("parallelism %d: got %d results, want %d", par, len(results), len(reqs))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("parallelism %d, request %d: %v", par, i, r.Err)
			}
			if !reflect.DeepEqual(r.Explanations, want[i]) {
				t.Fatalf("parallelism %d, request %d: batch ranking differs from serial", par, i)
			}
		}
	}
}

// TestExplainAllMixedAndErrors mixes Why-So, Why-No and an invalid
// request in one batch: the bad request must fail alone.
func TestExplainAllMixedAndErrors(t *testing.T) {
	whyNoDB, err := qc.ParseDatabase(strings.NewReader("-R(a, b)\n+S(b)\n+S(c)\n"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := qc.ParseQuery("q :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	boolQ, err := qc.ParseQuery("q :- S(y)")
	if err != nil {
		t.Fatal(err)
	}
	headQ, err := qc.ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	reqs := []qc.BatchRequest{
		{Query: q, WhyNo: true},
		{Query: boolQ},
		{Query: headQ, Answer: []qc.Value{"a", "b"}}, // arity mismatch
	}
	results, err := qc.ExplainAll(context.Background(), whyNoDB, reqs, qc.BatchOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || len(results[0].Explanations) == 0 {
		t.Fatalf("why-no request: err=%v, %d explanations", results[0].Err, len(results[0].Explanations))
	}
	if results[1].Err != nil {
		t.Fatalf("boolean request: %v", results[1].Err)
	}
	if results[2].Err == nil {
		t.Fatal("arity-mismatch request: expected a per-request error")
	}
}

// TestExplainAllSingleRequest checks the degenerate one-request batch
// (which hands its worker budget to RankParallel) and empty batches.
func TestExplainAllSingleRequest(t *testing.T) {
	db, _ := imdb.Micro()
	q := imdb.GenreQuery()
	ex, err := qc.WhySo(db, q, "Musical")
	if err != nil {
		t.Fatal(err)
	}
	want := ex.MustRank()

	results, err := qc.ExplainAll(context.Background(), db,
		[]qc.BatchRequest{{Query: q, Answer: []qc.Value{"Musical"}}}, qc.BatchOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || !reflect.DeepEqual(results[0].Explanations, want) {
		t.Fatalf("single-request batch diverged from serial (err=%v)", results[0].Err)
	}

	empty, err := qc.ExplainAll(context.Background(), db, nil, qc.BatchOptions{})
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(empty))
	}
}

// TestExplainAllCancellation: a canceled context aborts the batch.
func TestExplainAllCancellation(t *testing.T) {
	db, _ := imdb.Micro()
	q := imdb.GenreQuery()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := []qc.BatchRequest{
		{Query: q, Answer: []qc.Value{"Musical"}},
		{Query: q, Answer: []qc.Value{"Musical"}},
	}
	if _, err := qc.ExplainAll(ctx, db, reqs, qc.BatchOptions{Parallelism: 2}); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRankParallelExplainer checks the Explainer-level entry point
// against Rank, including an explicit mode.
func TestRankParallelExplainer(t *testing.T) {
	db, _ := imdb.Micro()
	ex, err := qc.WhySo(db, imdb.GenreQuery(), "Musical")
	if err != nil {
		t.Fatal(err)
	}
	want := ex.MustRank()
	got, err := ex.RankParallel(context.Background(), qc.BatchOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("RankParallel diverged from Rank")
	}
	wantExact, err := ex.ResponsibilityMode(want[0].Tuple, qc.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	gotExact, err := ex.RankParallel(context.Background(), qc.BatchOptions{Parallelism: 4, Mode: qc.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if gotExact[0].Rho != wantExact.Rho {
		t.Fatalf("ModeExact top ρ: got %v, want %v", gotExact[0].Rho, wantExact.Rho)
	}
}
