package querycause_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	qc "github.com/querycause/querycause"
)

// TestAPIErrorBodies: non-2xx responses with hostile bodies — plain
// text, proxy HTML, oversized payloads, empty, truncated JSON — must
// come back as well-formed APIErrors with bounded messages; an
// ErrorResponse body must surface its code through Unwrap.
func TestAPIErrorBodies(t *testing.T) {
	cases := []struct {
		name        string
		status      int
		contentType string
		body        string
		wantMsg     string // substring
		wantCode    string
		wantIs      error
		wantMaxLen  int
	}{
		{
			name:   "typed-error-response",
			status: 404, contentType: "application/json",
			body:     `{"error":"unknown database session \"d9\"","code":"session_not_found"}`,
			wantMsg:  `unknown database session "d9"`,
			wantCode: "session_not_found",
			wantIs:   qc.ErrSessionNotFound,
		},
		{
			name:   "typed-error-unknown-code",
			status: 422, contentType: "application/json",
			body:     `{"error":"boom","code":"code_from_the_future"}`,
			wantMsg:  "boom",
			wantCode: "code_from_the_future",
		},
		{
			name:   "plain-text-body",
			status: 500, contentType: "text/plain",
			body:    "internal proxy meltdown",
			wantMsg: "internal proxy meltdown",
		},
		{
			name:   "html-proxy-page",
			status: 502, contentType: "text/html",
			body:    "<html><body><h1>502 Bad Gateway</h1></body></html>",
			wantMsg: "502 Bad Gateway",
		},
		{
			name:   "empty-body",
			status: 503, contentType: "text/plain",
			body: "",
		},
		{
			name:   "truncated-json",
			status: 400, contentType: "application/json",
			body:    `{"error":"unterm`,
			wantMsg: `{"error":"unterm`,
		},
		{
			name:   "oversized-body",
			status: 500, contentType: "text/plain",
			body:       strings.Repeat("A", 2<<20),
			wantMaxLen: (8 << 10) + 64,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", tc.contentType)
				w.WriteHeader(tc.status)
				_, _ = w.Write([]byte(tc.body))
			}))
			defer ts.Close()
			// Retries off: some statuses here are retryable by design.
			c := qc.NewClient(ts.URL, nil).SetRetries(0)
			err := c.Health(context.Background())
			var apiErr *qc.APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("err = %v; want *APIError", err)
			}
			if apiErr.StatusCode != tc.status {
				t.Errorf("StatusCode = %d; want %d", apiErr.StatusCode, tc.status)
			}
			if apiErr.Code != tc.wantCode {
				t.Errorf("Code = %q; want %q", apiErr.Code, tc.wantCode)
			}
			if tc.wantMsg != "" && !strings.Contains(apiErr.Message, tc.wantMsg) {
				t.Errorf("Message = %q; want substring %q", apiErr.Message, tc.wantMsg)
			}
			if tc.wantMaxLen > 0 && len(apiErr.Message) > tc.wantMaxLen {
				t.Errorf("Message not truncated: %d bytes", len(apiErr.Message))
			}
			if tc.wantIs != nil && !errors.Is(err, tc.wantIs) {
				t.Errorf("errors.Is(err, %v) = false", tc.wantIs)
			}
			if tc.wantIs == nil && errors.Is(err, qc.ErrSessionNotFound) {
				t.Error("error spuriously matches ErrSessionNotFound")
			}
		})
	}
}

// TestClientGETRetries: idempotent GETs retry transient failures
// (gateway 5xx and 429 backpressure); unkeyed POSTs never do;
// SetRetries(0) turns retries off.
func TestClientGETRetries(t *testing.T) {
	t.Run("get-retries-then-succeeds", func(t *testing.T) {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) <= 2 {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"status":"ok","uptime_seconds":1}`))
		}))
		defer ts.Close()
		if err := qc.NewClient(ts.URL, nil).Health(context.Background()); err != nil {
			t.Fatalf("Health after retries: %v (calls=%d)", err, calls.Load())
		}
		if calls.Load() != 3 {
			t.Errorf("server saw %d calls; want 3 (1 + 2 retries)", calls.Load())
		}
	})

	t.Run("get-4xx-not-retried", func(t *testing.T) {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(http.StatusNotFound)
		}))
		defer ts.Close()
		if err := qc.NewClient(ts.URL, nil).Health(context.Background()); err == nil {
			t.Fatal("404 Health succeeded")
		}
		if calls.Load() != 1 {
			t.Errorf("server saw %d calls; want 1 (plain 4xx is not retried)", calls.Load())
		}
	})

	t.Run("get-429-retried", func(t *testing.T) {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) <= 2 {
				w.WriteHeader(http.StatusTooManyRequests)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"status":"ok","uptime_seconds":1}`))
		}))
		defer ts.Close()
		if err := qc.NewClient(ts.URL, nil).Health(context.Background()); err != nil {
			t.Fatalf("Health after 429s: %v (calls=%d)", err, calls.Load())
		}
		if calls.Load() != 3 {
			t.Errorf("server saw %d calls; want 3 (429 backpressure is retried)", calls.Load())
		}
	})

	t.Run("retries-disabled", func(t *testing.T) {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(http.StatusServiceUnavailable)
		}))
		defer ts.Close()
		if err := qc.NewClient(ts.URL, nil).SetRetries(0).Health(context.Background()); err == nil {
			t.Fatal("503 Health succeeded")
		}
		if calls.Load() != 1 {
			t.Errorf("server saw %d calls; want 1 with retries off", calls.Load())
		}
	})

	t.Run("post-never-retried", func(t *testing.T) {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(http.StatusServiceUnavailable)
		}))
		defer ts.Close()
		c := qc.NewClient(ts.URL, nil)
		if _, err := c.UploadDatabase(context.Background(), "+R(a)\n"); err == nil {
			t.Fatal("503 upload succeeded")
		}
		if calls.Load() != 1 {
			t.Errorf("server saw %d calls; want 1 (POST must not be retried)", calls.Load())
		}
	})

	t.Run("canceled-context-stops-retrying", func(t *testing.T) {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(http.StatusServiceUnavailable)
		}))
		defer ts.Close()
		ctx, cancel := context.WithCancel(context.Background())
		c := qc.NewClient(ts.URL, nil).SetRetries(50)
		go func() {
			// Cancel once the first attempt has landed.
			for calls.Load() == 0 {
			}
			cancel()
		}()
		err := c.Health(ctx)
		if err == nil {
			t.Fatal("Health under canceled context succeeded")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v; want errors.Is(err, context.Canceled)", err)
		}
		if n := calls.Load(); n > 3 {
			t.Errorf("server saw %d calls after cancellation; want prompt stop", n)
		}
	})
}
