package querycause

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/querycause/querycause/internal/cluster"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/qerr"
)

// Dial opens a Session against a querycaused server: db is uploaded
// into a server-side session and every Session call becomes an HTTP
// request against it. The returned Session has the same semantics as
// Open's — identical rankings byte-for-byte, identical error
// sentinels under errors.Is — with the server's caches, admission
// control, and worker budget behind it. Close drops the server-side
// session.
//
// The tuple-ID space is shared: the upload preserves tuple order, so
// TupleIDs in remote Explanations index db exactly as in-process ones
// do.
//
// Against a clustered server (see cmd/querycaused -peers), Dial learns
// the topology from GET /v1/cluster and routes client-side: it uploads
// to the node the database's content hashes onto and pins the session
// there, so no request of this Session is redirected or proxied while
// the topology holds. The peer list also arms failover: when the
// pinned node stops answering (it was killed, or the session moved in
// a handoff after a membership change), requests rotate to a peer and
// follow its epoch-stamped redirect to the new owner. Topology probe
// failures are not fatal — Dial falls back to baseURL.
func Dial(ctx context.Context, baseURL string, db *Database, opts ...Option) (Session, error) {
	if db == nil {
		return nil, qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("querycause: Dial: nil database"))
	}
	text, err := parser.FormatDatabase(db)
	if err != nil {
		return nil, err
	}
	cfg := defaultConfig().apply(opts)
	c := NewClient(baseURL, cfg.httpClient).SetRetries(cfg.retries)
	dctx, cancel := cfg.withTimeout(ctx)
	defer cancel()
	if topo, err := c.Cluster(dctx); err == nil && len(topo.Peers) >= 2 {
		if owner := cluster.New(topo.Peers).Owner(text); owner != "" && owner != c.Base() {
			c = NewClient(owner, cfg.httpClient).SetRetries(cfg.retries)
		}
		c.SetFallbacks(topo.Peers)
	}
	info, err := c.UploadDatabase(dctx, text)
	if err != nil {
		return nil, err
	}
	return &remoteSession{c: c, db: db, dbID: info.ID, cfg: cfg}, nil
}

// remoteSession is the HTTP transport of the Session interface.
type remoteSession struct {
	c    *Client
	db   *Database
	dbID string
	cfg  config
	// dbMu guards the local mirror of the server-side database: Insert
	// and Delete replay every acknowledged mutation into db so the
	// shared tuple-ID space invariant (see Dial) survives mutations.
	dbMu   sync.Mutex
	closed atomic.Bool
}

func (s *remoteSession) checkOpen() error {
	if s.closed.Load() {
		return qerr.Tag(qerr.ErrSessionClosed, fmt.Errorf("querycause: session is closed"))
	}
	return nil
}

func (s *remoteSession) WhySo(ctx context.Context, q *Query, answer ...Value) (Ranking, error) {
	return s.open(ctx, q, answer, false)
}

func (s *remoteSession) WhyNo(ctx context.Context, q *Query, nonAnswer ...Value) (Ranking, error) {
	return s.open(ctx, q, nonAnswer, true)
}

// open mirrors the in-process transport's eager validation: the
// /causes endpoint parses, validates, and lineages the instance
// server-side (caching the engine), so invalid queries and invalid
// Why-No instances fail here — with the same error sentinels — and
// the later Rank or RankStream starts warm.
func (s *remoteSession) open(ctx context.Context, q *Query, answer []Value, whyNo bool) (Ranking, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	cfg := s.cfg
	cctx, cancel := cfg.withTimeout(ctx)
	defer cancel()
	resp, err := s.c.Causes(cctx, s.dbID, CausesRequest{
		Query:  q.String(),
		Answer: valueStrings(answer),
		WhyNo:  whyNo,
	})
	if err != nil {
		return nil, err
	}
	causes := make([]TupleID, len(resp.Causes))
	for i, id := range resp.Causes {
		causes[i] = TupleID(id)
	}
	return &remoteRanking{
		s:      s,
		query:  q.String(),
		answer: valueStrings(answer),
		whyNo:  whyNo,
		causes: causes,
	}, nil
}

func (s *remoteSession) ExplainAll(ctx context.Context, reqs []BatchRequest, opts ...Option) ([]BatchResult, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	cfg := s.cfg.apply(opts)
	ctx, cancel := cfg.withTimeout(ctx)
	defer cancel()
	wire := BatchExplainRequest{Mode: cfg.mode.String(), Parallelism: cfg.parallelism}
	for _, r := range reqs {
		wire.Requests = append(wire.Requests, BatchItem{
			Query:  r.Query.String(),
			Answer: valueStrings(r.Answer),
			WhyNo:  r.WhyNo,
		})
	}
	resp, err := s.c.Batch(ctx, s.dbID, wire)
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(reqs) {
		return nil, fmt.Errorf("querycaused: batch returned %d results for %d requests", len(resp.Results), len(reqs))
	}
	results := make([]BatchResult, len(reqs))
	for i, item := range resp.Results {
		results[i].Request = reqs[i]
		if item.Error != "" {
			err := errors.New(item.Error)
			if s := qerr.FromCode(item.Code); s != nil {
				err = qerr.Tag(s, err)
			}
			results[i].Err = err
			continue
		}
		results[i].Explanations = explanationsFromDTOs(item.Explanations)
	}
	return results, nil
}

// Insert sends the batch to the server and, once acknowledged, replays
// it into the local database so tuple ids stay aligned across the
// transports. A drift between the server-assigned ids and the local
// replay (possible only if the caller mutated db behind the session's
// back) is reported as an error rather than silently misaligning every
// later explanation.
func (s *remoteSession) Insert(ctx context.Context, tuples ...TupleSpec) ([]TupleID, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	cctx, cancel := s.cfg.withTimeout(ctx)
	defer cancel()
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	resp, err := s.c.InsertTuples(cctx, s.dbID, tuples)
	if err != nil {
		return nil, err
	}
	if len(resp.TupleIDs) != len(tuples) {
		return nil, fmt.Errorf("querycaused: insert returned %d ids for %d tuples", len(resp.TupleIDs), len(tuples))
	}
	ids := make([]TupleID, len(tuples))
	for i, t := range tuples {
		args := make([]Value, len(t.Args))
		for j, a := range t.Args {
			args[j] = Value(a)
		}
		id, err := s.db.Add(t.Rel, t.Endo, args...)
		if err != nil {
			return nil, fmt.Errorf("querycause: mirroring insert locally: %w", err)
		}
		if int(id) != resp.TupleIDs[i] {
			return nil, fmt.Errorf("querycause: tuple-id drift: server assigned %d, local mirror %d — the database was mutated outside the session", resp.TupleIDs[i], id)
		}
		ids[i] = id
	}
	return ids, nil
}

// Delete removes the tuple server-side, then mirrors the deletion into
// the local database (see Insert).
func (s *remoteSession) Delete(ctx context.Context, id TupleID) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	cctx, cancel := s.cfg.withTimeout(ctx)
	defer cancel()
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	if _, err := s.c.DeleteTuple(cctx, s.dbID, int(id)); err != nil {
		return err
	}
	if s.db.Live(id) {
		if err := s.db.Delete(id); err != nil {
			return fmt.Errorf("querycause: mirroring delete locally: %w", err)
		}
	}
	return nil
}

// Watch on the remote transport is Client.WatchStream against the
// session: the server's WatchSet performs the fanout (diff chains,
// error frames, lag recovery), so the frame sequence is byte-identical
// to the in-process transport's. WatchStream reconnects on transport
// failures and resumes from the last delivered version, so one Watch
// range survives node restarts and session handoffs.
func (s *remoteSession) Watch(ctx context.Context, spec WatchSpec, opts ...Option) iter.Seq2[DiffEvent, error] {
	cfg := s.cfg.apply(opts)
	return func(yield func(DiffEvent, error) bool) {
		if err := s.checkOpen(); err != nil {
			yield(DiffEvent{}, err)
			return
		}
		if spec.Query == nil {
			yield(DiffEvent{}, qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("querycause: Watch: nil query")))
			return
		}
		ctx, cancel := cfg.withTimeout(ctx)
		defer cancel()
		for ev, err := range s.c.WatchStream(ctx, s.dbID, WatchRequest{
			Query:      spec.Query.String(),
			Answer:     valueStrings(spec.Answer),
			WhyNo:      spec.WhyNo,
			Mode:       cfg.mode.String(),
			Buffer:     spec.Buffer,
			ResumeFrom: spec.ResumeFrom,
		}) {
			if !yield(ev, err) {
				return
			}
			if err != nil {
				return
			}
		}
	}
}

// Close drops the server-side session. It uses its own short deadline
// (Close has no context); a session the server already evicted counts
// as closed, not as an error.
func (s *remoteSession) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.c.DropDatabase(ctx, s.dbID); err != nil && !errors.Is(err, qerr.ErrSessionNotFound) {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound {
			return nil
		}
		return err
	}
	return nil
}

// remoteRanking is one opened explanation on the remote transport.
// The causes came back with the opening /causes call; Rank and
// RankStream hit the (now warm) explain endpoints.
type remoteRanking struct {
	s      *remoteSession
	query  string
	answer []string
	whyNo  bool
	causes []TupleID
}

func (r *remoteRanking) Causes(ctx context.Context) ([]TupleID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return append([]TupleID(nil), r.causes...), nil
}

func (r *remoteRanking) Rank(ctx context.Context, opts ...Option) ([]Explanation, error) {
	cfg := r.s.cfg.apply(opts)
	ctx, cancel := cfg.withTimeout(ctx)
	defer cancel()
	req := ExplainRequest{Query: r.query, Answer: r.answer, Mode: cfg.mode.String(), Parallelism: cfg.parallelism}
	var resp ExplainResponse
	var err error
	if r.whyNo {
		resp, err = r.s.c.WhyNo(ctx, r.s.dbID, "", req)
	} else {
		resp, err = r.s.c.WhySo(ctx, r.s.dbID, "", req)
	}
	if err != nil {
		return nil, err
	}
	return explanationsFromDTOs(resp.Explanations), nil
}

func (r *remoteRanking) RankStream(ctx context.Context, opts ...Option) iter.Seq2[Explanation, error] {
	cfg := r.s.cfg.apply(opts)
	return func(yield func(Explanation, error) bool) {
		ctx, cancel := cfg.withTimeout(ctx)
		defer cancel()
		for dto, err := range r.s.c.ExplainStream(ctx, r.s.dbID, StreamExplainRequest{
			Query:           r.query,
			Answer:          r.answer,
			WhyNo:           r.whyNo,
			Mode:            cfg.mode.String(),
			Parallelism:     cfg.parallelism,
			CompletionOrder: cfg.completionOrder,
		}) {
			if err != nil {
				yield(Explanation{}, err)
				return
			}
			if !yield(explanationFromDTO(dto), nil) {
				return
			}
		}
	}
}

func valueStrings(vs []Value) []string {
	if len(vs) == 0 {
		return nil
	}
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = string(v)
	}
	return out
}

// explanationFromDTO rehydrates the wire shape into the library's
// Explanation, bit-for-bit: contingencies come back as tuple IDs, and
// a cause's empty contingency is the non-nil empty slice the engine
// produces (nil is reserved for non-causes).
func explanationFromDTO(d ExplanationDTO) Explanation {
	ex := Explanation{
		Tuple:           TupleID(d.TupleID),
		Rho:             d.Rho,
		ContingencySize: d.ContingencySize,
	}
	if m, ok := core.ParseMethod(d.Method); ok {
		ex.Method = m
	}
	if d.ContingencySize >= 0 {
		ex.Contingency = make([]TupleID, 0, len(d.ContingencyIDs))
		for _, id := range d.ContingencyIDs {
			ex.Contingency = append(ex.Contingency, TupleID(id))
		}
	}
	return ex
}

func explanationsFromDTOs(dtos []ExplanationDTO) []Explanation {
	out := make([]Explanation, len(dtos))
	for i, d := range dtos {
		out[i] = explanationFromDTO(d)
	}
	return out
}
