// fuzzcause is the differential soak driver: it hammers the causality
// engines against the exact oracles and the HTTP server over seeded
// random workloads (internal/difftest), prints throughput, and on any
// mismatch writes the minimized failing instance and the one-command
// replay before exiting non-zero. CI runs a short sweep on every push
// and a long soak nightly; locally:
//
//	go run ./cmd/fuzzcause -n 100000
//	go run ./cmd/fuzzcause -duration 5m -seed 42
//	go run ./cmd/fuzzcause -bench BENCH_difftest.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/difftest"
	"github.com/querycause/querycause/internal/exact"
	"github.com/querycause/querycause/internal/faultinject"
	"github.com/querycause/querycause/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fuzzcause", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed        = fs.Int64("seed", 1, "base seed (instance i uses seed+i)")
		n           = fs.Int("n", 10000, "instances per sweep")
		duration    = fs.Duration("duration", 0, "keep sweeping in -n chunks until this much time passed (0 = one sweep)")
		workers     = fs.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
		maxAtoms    = fs.Int("max-atoms", 4, "max query atoms")
		maxArity    = fs.Int("max-arity", 3, "max relation arity")
		maxVars     = fs.Int("max-vars", 4, "variable pool size")
		domain      = fs.Int("domain", 4, "constant domain size")
		tuples      = fs.Int("tuples", 7, "max noise tuples per relation")
		exoProb     = fs.Float64("exo-prob", 0.3, "per-tuple exogenous probability (0 disables)")
		constProb   = fs.Float64("const-prob", 0.15, "per-term constant probability (0 disables)")
		whyNoProb   = fs.Float64("whyno-prob", 0.3, "fraction of why-no instances (0 disables)")
		selfJoin    = fs.Float64("selfjoin-prob", 0.15, "per-atom self-join probability (0 disables)")
		hardStar    = fs.Float64("hardstar-prob", 0, "probability of an NP-hard star-family (h1*) instance (default off)")
		serverDiff  = fs.Bool("server-diff", true, "also replay instances through an in-process HTTP server")
		serverEvery = fs.Int("server-every", 8, "replay every k-th instance through the server")
		sessDiff    = fs.Bool("session-diff", true, "also replay instances through the Session API on both transports (Open vs Dial)")
		sessEvery   = fs.Int("session-every", 8, "replay every k-th instance through the Session differential")
		clustDiff   = fs.Bool("cluster-diff", true, "also replay instances through a 3-replica consistent-hash cluster")
		clustEvery  = fs.Int("cluster-every", 8, "replay every k-th instance through the cluster differential")
		mutateDiff  = fs.Bool("mutate-diff", true, "also replay random mutation sequences: incremental session state must equal a cold rebuild at the final version")
		mutateEvery = fs.Int("mutate-every", 8, "replay every k-th instance through the mutation differential")
		watchDiff   = fs.Bool("watch-diff", true, "also replay mutation sequences under a live watch: the DiffEvent replay must byte-equal a cold ranking at every version")
		watchEvery  = fs.Int("watch-every", 8, "replay every k-th instance through the watch differential")
		faults      = fs.Bool("faults", false, "arm a seeded fault injector on the session/cluster differentials' HTTP transport (drops, latency, 503 bursts, truncated watch streams); results must stay byte-identical")
		metaEvery   = fs.Int("metamorphic-every", 1, "apply metamorphic invariants to every k-th instance")
		plannerDiff = fs.Bool("planner-diff", true, "differential-test the planned streaming evaluator against the naive reference on every instance")
		evalEvery   = fs.Int("eval-every", 1, "apply the naive-vs-planned evaluator differential to every k-th instance")
		reproDir    = fs.String("repro", "", "directory for minimized failing instances (default: print only)")
		benchOut    = fs.String("bench", "", "write the BENCH_difftest.json baseline to this path and exit")
		benchQuick  = fs.Bool("bench-quick", false, "scale the bench down ~10x (format smoke test, not a comparable baseline)")
		progress    = fs.Int("progress", 10000, "progress line interval")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// GenConfig treats probability 0 as "default" and negative as
	// literal zero; on the flag surface, an explicit 0 means zero.
	flagProb := func(v float64) float64 {
		if v == 0 {
			return -1
		}
		return v
	}
	gen := causegen.GenConfig{
		MaxAtoms:          *maxAtoms,
		MaxArity:          *maxArity,
		MaxVars:           *maxVars,
		DomainSize:        *domain,
		TuplesPerRelation: *tuples,
		ExoProb:           flagProb(*exoProb),
		ConstProb:         flagProb(*constProb),
		WhyNoProb:         flagProb(*whyNoProb),
		SelfJoinProb:      flagProb(*selfJoin),
		// HardStarProb's default is off, so the flag value passes
		// through unchanged (no 0-means-default translation).
		HardStarProb: *hardStar,
	}
	if *benchOut != "" {
		return runBench(*benchOut, *workers, *benchQuick, stdout, stderr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := difftest.Options{
		Seed:             *seed,
		N:                *n,
		Workers:          *workers,
		Gen:              gen,
		ServerEvery:      *serverEvery,
		MetamorphicEvery: *metaEvery,
		EvalEvery:        *evalEvery,
		ProgressEvery:    *progress,
	}
	if !*plannerDiff {
		opts.EvalEvery = -1
	}
	if *serverDiff {
		sd := difftest.NewServerDiff()
		defer sd.Close()
		opts.Server = sd
	}
	var inj *faultinject.Injector
	if *faults {
		inj = faultinject.New(faultinject.Config{
			Seed: *seed, Drop: 0.08, Delay: 0.10, MaxDelay: 2 * time.Millisecond,
			Err: 0.08, Truncate: 0.25,
		})
	}
	if *sessDiff {
		sd := difftest.NewSessionDiff()
		defer sd.Close()
		if inj != nil {
			sd.WithFaults(inj)
		}
		opts.Session = sd
		opts.SessionEvery = *sessEvery
	}
	if *clustDiff {
		cd := difftest.NewClusterDiff()
		defer cd.Close()
		if inj != nil {
			cd.WithFaults(inj)
		}
		opts.Cluster = cd
		opts.ClusterEvery = *clustEvery
	}
	if *mutateDiff {
		md := difftest.NewMutateDiff()
		defer md.Close()
		opts.Mutate = md
		opts.MutateEvery = *mutateEvery
	}
	if *watchDiff {
		wd := difftest.NewWatchDiff()
		defer wd.Close()
		opts.Watch = wd
		opts.WatchEvery = *watchEvery
	}

	start := time.Now()
	total := 0
	sweep := 0
	for {
		opts.Seed = *seed + int64(sweep)*int64(*n)
		opts.Progress = func(done int) {
			fmt.Fprintf(stdout, "fuzzcause: %d instances (%.0f/sec)\n",
				total+done, float64(total+done)/time.Since(start).Seconds())
		}
		rep, err := difftest.Run(ctx, opts)
		total += rep.Instances
		fmt.Fprintf(stdout, "%v\n", rep)
		if len(rep.Mismatches) > 0 {
			reportMismatches(rep.Mismatches, opts, *reproDir, stderr)
			return 1
		}
		if err != nil {
			fmt.Fprintf(stderr, "fuzzcause: interrupted: %v (%d instances clean)\n", err, total)
			return 0
		}
		sweep++
		if *duration <= 0 || time.Since(start) >= *duration {
			break
		}
	}
	fmt.Fprintf(stdout, "fuzzcause: OK — %d instances, zero mismatches in %v\n", total, time.Since(start).Round(time.Millisecond))
	if inj != nil {
		fmt.Fprintf(stdout, "fuzzcause: injected faults absorbed: %+v\n", inj.Counters())
	}
	return 0
}

// reportMismatches shrinks each failing instance, prints the replay
// command, and optionally writes the minimized instance for testdata/.
func reportMismatches(ms []difftest.Mismatch, opts difftest.Options, reproDir string, stderr io.Writer) {
	// Shrink under the sweep's full predicate (metamorphic + server
	// included) so mismatches those layers found still reproduce while
	// minimizing.
	chk := opts.ShrinkCheck()
	for i, m := range ms {
		shrunk := difftest.Shrink(m.Instance, difftest.Fails(chk))
		_, shrunkErr := difftest.CheckInstance(shrunk, chk)
		enc, err := difftest.Encode(shrunk)
		if err != nil {
			enc = fmt.Sprintf("(encode failed: %v)", err)
		}
		fmt.Fprintf(stderr, "\nMISMATCH %d: %v\nminimized to %d tuples (%v):\n%s\n", i+1, m, shrunk.DB.NumTuples(), shrunkErr, enc)
		if reproDir != "" {
			path := filepath.Join(reproDir, fmt.Sprintf("mismatch_seed%d.inst", m.Seed))
			if mkerr := os.MkdirAll(reproDir, 0o755); mkerr != nil {
				fmt.Fprintf(stderr, "cannot create repro dir %s: %v; instance printed above only\n", reproDir, mkerr)
			} else if werr := os.WriteFile(path, []byte(enc), 0o644); werr != nil {
				fmt.Fprintf(stderr, "cannot write %s: %v; instance printed above only\n", path, werr)
			} else {
				fmt.Fprintf(stderr, "minimized instance written to %s\n", path)
			}
		}
	}
}

// ---- bench baseline ----

type benchSweep struct {
	Config          string  `json:"config"`
	Instances       int     `json:"instances"`
	Seconds         float64 `json:"seconds"`
	InstancesPerSec float64 `json:"instances_per_sec"`
	FlowRanked      int     `json:"flow_ranked"`
	ExactRanked     int     `json:"exact_ranked"`
	BruteChecked    int     `json:"brute_checked"`
	ServerChecked   int     `json:"server_checked"`
	EvalChecked     int     `json:"eval_checked"`
}

type benchOracle struct {
	Family           string  `json:"family"`
	Size             int     `json:"size"`
	LineageWidth     int     `json:"lineage_width"`
	LineageConjuncts int     `json:"lineage_conjuncts"`
	CausesTimed      int     `json:"causes_timed"`
	NsPerCall        float64 `json:"ns_per_min_contingency"`
}

type benchReport struct {
	Bench       string        `json:"bench"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	CPUs        int           `json:"cpus"`
	Sweeps      []benchSweep  `json:"sweeps"`
	OracleCurve []benchOracle `json:"exact_oracle_curve"`
	Note        string        `json:"note"`
}

// runBench records the differential-sweep throughput baseline and the
// exact-oracle cost curve by lineage width, so later PRs can detect
// oracle or harness slowdowns.
func runBench(path string, workers int, quick bool, stdout, stderr io.Writer) int {
	rep := benchReport{
		Bench:  "difftest",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Note:   "sweep throughput includes generation + all oracles; oracle curve times exact.MinContingencySet on star h1* lineages of growing width",
	}
	scale := 1
	// Widths past 147 (n=32) were unreachable before the indexed
	// branch-and-bound (PR-3 measured 27s/call at n=32); the curve now
	// extends to n=64. BENCH_exact.json carries the full
	// before/after/ablation story.
	starSizes := []int{4, 8, 12, 16, 24, 32, 48, 64}
	if quick {
		rep.Note += " (QUICK mode: ~10x scaled down, not a comparable baseline)"
		scale = 10
		starSizes = []int{4, 8, 12}
	}
	configs := []struct {
		name   string
		gen    causegen.GenConfig
		n      int
		server bool
	}{
		{"default", causegen.GenConfig{}, 6000 / scale, false},
		{"wide-4atom", causegen.GenConfig{MaxAtoms: 4, MaxArity: 3, TuplesPerRelation: 8}, 4000 / scale, false},
		{"server-diff", causegen.GenConfig{}, 2000 / scale, true},
	}
	for _, c := range configs {
		opts := difftest.Options{Seed: 1, N: c.n, Workers: workers, Gen: c.gen, MetamorphicEvery: 1}
		if c.server {
			sd := difftest.NewServerDiff()
			opts.Server = sd
			opts.ServerEvery = 1
		}
		r, err := difftest.Run(context.Background(), opts)
		if opts.Server != nil {
			opts.Server.Close()
		}
		if err != nil || len(r.Mismatches) > 0 {
			fmt.Fprintf(stderr, "fuzzcause bench: sweep %s failed: err=%v mismatches=%d\n", c.name, err, len(r.Mismatches))
			return 1
		}
		fmt.Fprintf(stdout, "bench sweep %-12s %v\n", c.name, r)
		rep.Sweeps = append(rep.Sweeps, benchSweep{
			Config: c.name, Instances: r.Instances, Seconds: r.Elapsed.Seconds(),
			InstancesPerSec: r.InstancesPerSec(), FlowRanked: r.FlowRanked,
			ExactRanked: r.ExactRanked, BruteChecked: r.BruteChecked, ServerChecked: r.ServerChecked,
			EvalChecked: r.EvalChecked,
		})
	}

	// Responsibility on h₁* is NP-hard; the indexed branch-and-bound
	// moves the cost cliff far enough right that every size below is
	// sub-second per call (regenerate the dedicated before/after curve
	// with `go run ./cmd/experiments -run exactcurve`).
	for _, n := range starSizes {
		db, q, _ := workload.Star(1, n)
		eng, err := core.NewWhySo(db, q)
		if err != nil {
			fmt.Fprintf(stderr, "fuzzcause bench: star(%d): %v\n", n, err)
			return 1
		}
		nl := eng.NLineage()
		causes := eng.Causes()
		timed := 0
		start := time.Now()
		for _, id := range causes {
			if timed >= 8 {
				break
			}
			exact.MinContingencySet(nl, id)
			timed++
		}
		elapsed := time.Since(start)
		if timed == 0 {
			continue
		}
		e := benchOracle{
			Family: "star", Size: n, LineageWidth: len(nl.Vars()),
			LineageConjuncts: len(nl.Conjuncts), CausesTimed: timed,
			NsPerCall: float64(elapsed.Nanoseconds()) / float64(timed),
		}
		fmt.Fprintf(stdout, "bench oracle star n=%-3d width=%-3d conjuncts=%-4d %.0f ns/call\n", n, e.LineageWidth, e.LineageConjuncts, e.NsPerCall)
		rep.OracleCurve = append(rep.OracleCurve, e)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "fuzzcause bench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "fuzzcause bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "fuzzcause: baseline written to %s\n", path)
	return 0
}
