package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCleanSweep(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-n", "300", "-seed", "21", "-server-every", "32"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "zero mismatches") {
		t.Fatalf("missing success line:\n%s", out.String())
	}
}

func TestRunBenchWritesBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_difftest.json")
	var out, errb bytes.Buffer
	code := run([]string{"-bench", path, "-bench-quick"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Bench  string `json:"bench"`
		Sweeps []struct {
			InstancesPerSec float64 `json:"instances_per_sec"`
		} `json:"sweeps"`
		OracleCurve []struct {
			LineageWidth float64 `json:"lineage_width"`
			NsPerCall    float64 `json:"ns_per_min_contingency"`
		} `json:"exact_oracle_curve"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if rep.Bench != "difftest" || len(rep.Sweeps) == 0 || len(rep.OracleCurve) == 0 {
		t.Fatalf("incomplete baseline: %s", raw)
	}
	for _, s := range rep.Sweeps {
		if s.InstancesPerSec <= 0 {
			t.Fatalf("non-positive sweep throughput: %s", raw)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
