// Cluster soak: boot three in-process querycaused replicas joined into
// a consistent-hash ring, each with its own persist directory, drive
// the mixed load-generator traffic through ONE node (plus a target
// that always enters at the wrong node and rides the 307), kill a
// replica mid-run and restart it on the same address, and demand zero
// unrecovered failures: every request must eventually succeed after
// bounded topology-aware retries, with the killed node's sessions
// restored warm from snapshots. Records p50/p99 latency and the
// measured warm-restart time in BENCH_cluster.json:
//
//	experiments -run cluster [-cluster-out BENCH_cluster.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/persist"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/server"
)

var (
	clusterOut      = flag.String("cluster-out", "BENCH_cluster.json", "output path for the cluster soak baseline")
	clusterClients  = flag.Int("cluster-clients", 24, "concurrent clients for -run cluster")
	clusterRequests = flag.Int("cluster-requests", 40, "requests per client for -run cluster")
)

// soakRetries bounds how long one request chases a killed replica:
// retries * soakBackoff must comfortably cover the restart window.
const (
	soakRetries = 120
	soakBackoff = 50 * time.Millisecond
)

type replica struct {
	url  string
	addr string
	dir  string
	srv  *server.Server
	hs   *http.Server
}

// bootReplica starts one node of the static ring on ln, restoring any
// snapshots already in dir, and returns how long server construction
// (including restore) took — the warm-restart metric.
func bootReplica(ln net.Listener, urls []string, i int, dir string) (*replica, time.Duration, error) {
	st, err := persist.Open(dir)
	if err != nil {
		return nil, 0, err
	}
	t0 := time.Now()
	srv := server.New(server.Config{
		ReapInterval:    -1,
		MaxSessions:     128,
		Self:            urls[i],
		Peers:           urls,
		Persist:         st,
		PersistInterval: 100 * time.Millisecond,
	})
	boot := time.Since(t0)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &replica{url: urls[i], addr: ln.Addr().String(), dir: dir, srv: srv, hs: hs}, boot, nil
}

type clusterBench struct {
	Bench             string  `json:"bench"`
	GOOS              string  `json:"goos"`
	GOARCH            string  `json:"goarch"`
	CPUs              int     `json:"cpus"`
	Nodes             int     `json:"nodes"`
	Clients           int     `json:"clients"`
	RequestsPerClient int     `json:"requests_per_client"`
	Requests          int     `json:"requests"`
	Failures          int64   `json:"failures"`
	Retries           int64   `json:"retries"`
	ThroughputRPS     float64 `json:"throughput_rps"`
	P50Micros         float64 `json:"p50_micros"`
	P99Micros         float64 `json:"p99_micros"`
	WarmRestartMS     float64 `json:"warm_restart_ms"`
	RestoredSessions  uint64  `json:"restored_sessions"`
	Redirected        uint64  `json:"cluster_redirected"`
	Proxied           uint64  `json:"cluster_proxied"`
	SessionSheds      uint64  `json:"session_sheds"`
	Note              string  `json:"note"`
	Command           string  `json:"command"`
}

func clusterSoak() {
	header(fmt.Sprintf("Cluster soak: 3 replicas, %d clients x %d requests through node 0, kill+restart node 1 mid-run",
		*clusterClients, *clusterRequests))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Three loopback listeners first, so the full peer list exists
	// before any node boots.
	const n = 3
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	reps := make([]*replica, n)
	for i := range lns {
		dir, err := os.MkdirTemp("", "querycause-cluster-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		rep, _, err := bootReplica(lns[i], urls, i, dir)
		if err != nil {
			log.Fatalf("booting replica %d: %v", i, err)
		}
		reps[i] = rep
	}
	defer func() {
		for _, r := range reps {
			r.hs.Close()
			r.srv.Close()
		}
	}()

	// Mixed traffic enters at node 0. Dial routes each session to its
	// content-hash owner, so this exercises all three nodes.
	c0 := qc.NewClient(urls[0], nil)
	if err := c0.Health(ctx); err != nil {
		log.Fatalf("cluster not healthy: %v", err)
	}
	targets, cleanup, err := loadTargets(ctx, c0, urls[0])
	if err != nil {
		log.Fatalf("preparing workloads: %v", err)
	}
	defer cleanup()

	// One target that never routes itself: a session deliberately
	// uploaded at node 1 (so node 1 owns it — minting guarantees that)
	// and then always requested through node 0, riding the 307 on every
	// call. Node 1 is also the replica we kill, so this target proves
	// both the redirect path and the warm restart: the prepared query
	// must keep working, same id, after the node comes back from disk.
	micro, _ := imdb.Micro()
	c1 := qc.NewClient(urls[1], nil)
	pinInfo, err := c1.UploadDB(ctx, micro)
	if err != nil {
		log.Fatalf("pinning session to node 1: %v", err)
	}
	pinQ, err := c1.PrepareQuery(ctx, pinInfo.ID, imdb.GenreQuery().String())
	if err != nil {
		log.Fatalf("preparing pinned query: %v", err)
	}
	answers, err := rel.Answers(micro, imdb.GenreQuery())
	if err != nil {
		log.Fatal(err)
	}
	firstAnswer := []string{string(answers[0].Values[0])}
	targets = append(targets, loadTarget{
		name: "whyso-redirect",
		fire: func(ctx context.Context) error {
			_, err := c0.WhySo(ctx, pinInfo.ID, pinQ.ID, qc.ExplainRequest{Answer: firstAnswer})
			return err
		},
	})

	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		retries  atomic.Int64
		done     atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration
	)
	total := *clusterClients * *clusterRequests

	// The chaos controller: once half the requests have completed, kill
	// replica 1 hard, wait long enough for in-flight requests to hit the
	// dead node, then restart it on the same address over the same
	// persist dir, timing the restore.
	restartMS := make(chan float64, 1)
	go func() {
		for done.Load() < int64(total)/2 {
			time.Sleep(5 * time.Millisecond)
		}
		log.Printf("cluster soak: killing replica 1 (%s)", urls[1])
		reps[1].hs.Close()
		reps[1].srv.Close()
		time.Sleep(150 * time.Millisecond)
		var ln net.Listener
		var lerr error
		for i := 0; i < 200; i++ {
			if ln, lerr = net.Listen("tcp", reps[1].addr); lerr == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if lerr != nil {
			log.Fatalf("cluster soak: cannot rebind %s: %v", reps[1].addr, lerr)
		}
		rep, boot, berr := bootReplica(ln, urls, 1, reps[1].dir)
		if berr != nil {
			log.Fatalf("cluster soak: restarting replica 1: %v", berr)
		}
		reps[1] = rep
		log.Printf("cluster soak: replica 1 back in %v (%d sessions restored warm)", boot, rep.srv.Restored())
		restartMS <- float64(boot.Microseconds()) / 1000
	}()

	start := time.Now()
	for g := 0; g < *clusterClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < *clusterRequests; i++ {
				t := targets[(g+i)%len(targets)]
				ok := false
				for attempt := 0; attempt < soakRetries; attempt++ {
					t0 := time.Now()
					if err := t.fire(ctx); err != nil {
						// A dead or restarting replica surfaces as a
						// transport error, a 502 from a proxying peer, or a
						// 503; all are survivable — back off and re-route.
						retries.Add(1)
						time.Sleep(soakBackoff)
						continue
					}
					mu.Lock()
					lats = append(lats, time.Since(t0))
					mu.Unlock()
					ok = true
					break
				}
				if !ok {
					failures.Add(1)
					log.Printf("client %d %s: unrecovered after %d attempts", g, t.name, soakRetries)
				}
				done.Add(1)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	warm := <-restartMS

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	bench := clusterBench{
		Bench: "cluster", GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Nodes: n, Clients: *clusterClients, RequestsPerClient: *clusterRequests,
		Requests: total, Failures: failures.Load(), Retries: retries.Load(),
		ThroughputRPS: float64(len(lats)) / elapsed.Seconds(),
		WarmRestartMS: warm,
		Note:          "in-process 3-replica ring; latencies are successful attempts only; warm_restart_ms is server.New over the killed node's snapshot dir (restore included)",
		Command:       fmt.Sprintf("experiments -run cluster -cluster-clients %d -cluster-requests %d", *clusterClients, *clusterRequests),
	}
	if len(lats) > 0 {
		bench.P50Micros = float64(lats[len(lats)/2].Microseconds())
		bench.P99Micros = float64(lats[len(lats)*99/100].Microseconds())
	}
	for _, u := range urls {
		st, err := qc.NewClient(u, nil).Stats(ctx)
		if err != nil {
			log.Fatalf("stats %s: %v", u, err)
		}
		bench.Redirected += st.ClusterRedirected
		bench.Proxied += st.ClusterProxied
		bench.SessionSheds += st.SessionSheds
		bench.RestoredSessions += st.RestoredSessions
	}

	fmt.Printf("requests: %d  failures: %d  retries: %d  elapsed: %v  throughput: %.0f req/s\n",
		total, bench.Failures, bench.Retries, elapsed.Round(time.Millisecond), bench.ThroughputRPS)
	fmt.Printf("latency: p50 %.0fµs  p99 %.0fµs\n", bench.P50Micros, bench.P99Micros)
	fmt.Printf("warm restart: %.1fms (%d sessions restored)  redirected: %d  proxied: %d  sheds: %d\n",
		bench.WarmRestartMS, bench.RestoredSessions, bench.Redirected, bench.Proxied, bench.SessionSheds)

	if bench.RestoredSessions == 0 {
		fmt.Fprintln(os.Stderr, "cluster soak: killed replica restored zero sessions — persistence did not engage")
		os.Exit(1)
	}
	if bench.Redirected == 0 {
		fmt.Fprintln(os.Stderr, "cluster soak: zero redirects — the wrong-node target did not engage")
		os.Exit(1)
	}
	if *clusterOut != "" {
		raw, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*clusterOut, append(raw, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline written to %s\n", *clusterOut)
	}
	if bench.Failures > 0 {
		os.Exit(1)
	}
}
