// The evalcurve experiment: data-plane cost by database size, naive vs
// planned. For each size it generates a synthetic IMDB instance, binds
// the Fig. 1 genre query to the Musical answer, and times
//
//   - evaluation (all valuations of the bound query): rel.EvalNaive vs
//     the planned streaming pipeline (internal/ra);
//   - lineage build (the minimal endogenous lineage Φⁿ):
//     lineage.NLineageOfNaive (two passes: enumerate, then substitute)
//     vs lineage.NLineageOf (conjuncts captured during evaluation);
//   - the full cold explain end-to-end: engine construction + cause
//     set on the planned data plane.
//
// The default sizes put ≈10k, ≈100k and ≈1M tuples on the curve
// (-eval-sizes overrides with director counts, e.g. for CI smoke runs).
// Results go to -eval-out (BENCH_eval.json); like exactcurve, the
// experiment writes a file and is therefore excluded from -run all.

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/ra"
	"github.com/querycause/querycause/internal/rel"
)

var (
	evalOut   = flag.String("eval-out", "BENCH_eval.json", "output path for the evalcurve baseline")
	evalSizes = flag.String("eval-sizes", "1000,10300,103000", "comma-separated director counts for -run evalcurve (defaults span ≈10k/100k/1M tuples)")
)

type evalPoint struct {
	Directors        int     `json:"directors"`
	Tuples           int     `json:"tuples"`
	IngestMs         float64 `json:"ingest_ms"`
	Valuations       int     `json:"valuations"`
	Causes           int     `json:"causes"`
	EvalNaiveMs      float64 `json:"eval_naive_ms"`
	EvalPlannedMs    float64 `json:"eval_planned_ms"`
	LineageNaiveMs   float64 `json:"lineage_naive_ms"`
	LineagePlannedMs float64 `json:"lineage_planned_ms"`
	ExplainColdMs    float64 `json:"explain_cold_ms"`
}

type evalReport struct {
	Bench  string      `json:"bench"`
	GOOS   string      `json:"goos"`
	GOARCH string      `json:"goarch"`
	CPUs   int         `json:"cpus"`
	Query  string      `json:"query"`
	Points []evalPoint `json:"points"`
	Note   string      `json:"note"`
}

// evalCurve runs the size curve and writes the BENCH_eval.json
// baseline.
func evalCurve() {
	header("Evaluation curve: naive vs planned data plane by database size")
	var sizes []int
	for _, s := range strings.Split(*evalSizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("evalcurve: bad -eval-sizes entry %q", s)
		}
		sizes = append(sizes, n)
	}
	rep := evalReport{
		Bench:  "eval",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Query:  imdb.GenreQuery().String(),
		Note:   "genre query bound to the Musical answer on synthetic IMDB (BurtonShare=0.02); eval = all valuations, lineage = minimal endogenous DNF, explain_cold = engine construction + cause set on the planned plane; timings are single cold runs",
	}
	fmt.Printf("%-10s %-10s %-9s %-12s %-12s %-14s %-15s %-13s\n",
		"directors", "tuples", "ingest", "eval naive", "eval planned", "lineage naive", "lineage planned", "explain cold")
	for _, nd := range sizes {
		pt := evalPoint{Directors: nd}
		start := time.Now()
		db := imdb.Synthetic(imdb.Config{Seed: 7, Directors: nd, BurtonShare: 0.02})
		pt.IngestMs = ms(time.Since(start))
		pt.Tuples = db.NumTuples()

		bq, err := imdb.GenreQuery().Bind("Musical")
		if err != nil {
			log.Fatal(err)
		}

		start = time.Now()
		naiveVals, err := rel.EvalNaive(db, bq)
		if err != nil {
			log.Fatal(err)
		}
		pt.EvalNaiveMs = ms(time.Since(start))

		// A fresh clone evaluates cold: the naive run above already paid
		// for the code indexes and row adapters on db, and the planned
		// pipeline must not inherit them.
		dbP := imdb.Synthetic(imdb.Config{Seed: 7, Directors: nd, BurtonShare: 0.02})
		start = time.Now()
		plannedVals, err := ra.Valuations(dbP, bq)
		if err != nil {
			log.Fatal(err)
		}
		pt.EvalPlannedMs = ms(time.Since(start))
		if len(naiveVals) != len(plannedVals) {
			log.Fatalf("evalcurve: naive found %d valuations, planned %d", len(naiveVals), len(plannedVals))
		}
		pt.Valuations = len(plannedVals)

		dbN := imdb.Synthetic(imdb.Config{Seed: 7, Directors: nd, BurtonShare: 0.02})
		start = time.Now()
		nlNaive, err := lineage.NLineageOfNaive(dbN, bq)
		if err != nil {
			log.Fatal(err)
		}
		pt.LineageNaiveMs = ms(time.Since(start))

		dbL := imdb.Synthetic(imdb.Config{Seed: 7, Directors: nd, BurtonShare: 0.02})
		start = time.Now()
		nlPlanned, err := lineage.NLineageOf(dbL, bq)
		if err != nil {
			log.Fatal(err)
		}
		pt.LineagePlannedMs = ms(time.Since(start))
		if nlNaive.String() != nlPlanned.String() {
			log.Fatalf("evalcurve: naive and planned lineages differ at %d directors", nd)
		}

		dbE := imdb.Synthetic(imdb.Config{Seed: 7, Directors: nd, BurtonShare: 0.02})
		start = time.Now()
		eng, err := core.NewWhySo(dbE, imdb.GenreQuery(), "Musical")
		if err != nil {
			log.Fatal(err)
		}
		causes := eng.Causes()
		pt.ExplainColdMs = ms(time.Since(start))
		pt.Causes = len(causes)

		fmt.Printf("%-10d %-10d %-9s %-12s %-12s %-14s %-15s %-13s\n",
			pt.Directors, pt.Tuples, fmtMs(pt.IngestMs), fmtMs(pt.EvalNaiveMs), fmtMs(pt.EvalPlannedMs),
			fmtMs(pt.LineageNaiveMs), fmtMs(pt.LineagePlannedMs), fmtMs(pt.ExplainColdMs))
		rep.Points = append(rep.Points, pt)
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*evalOut, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evalcurve: baseline written to %s\n", *evalOut)
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func fmtMs(v float64) string { return fmt.Sprintf("%.1fms", v) }
