// The deltacurve experiment: what the delta-maintenance layer saves
// over dropping engines cold, by database size. For each size it boots
// two in-process querycaused servers — one with delta maintenance on
// (the default), one with Config.DisableDelta — uploads the same
// synthetic IMDB instance to both, warms the Musical answer of the
// Fig. 1 genre query, and replays an identical mutation sequence on
// each:
//
//   - K probe inserts into Genre, the relation the query mentions: the
//     cached engine is stale by the invalidation rules either way, but
//     the delta server patches its lineage in place (the re-explain is
//     a cache hit) while the cold server drops it and rebuilds the
//     lineage from scratch on the next explain;
//   - one exogenous delete (removing a probe): the delta layer cannot
//     prove an exogenous delete safe, so it declines — a recorded
//     fallback — and both servers rebuild. The fallback rate per point
//     comes from the /v1/stats delta counters, so the baseline records
//     how often the patch path actually held, not just how fast it was;
//   - and, as a correctness gate, the final rankings of both arms are
//     byte-compared against each other and against a genuinely cold
//     session uploaded at the final version.
//
// The default sizes put ≈10k, ≈100k and ≈1M tuples on the curve. The
// experiment fails if the delta arm does not beat the cold-rebuild arm
// at ≥100k tuples, if it ever loses to the full re-upload strawman, or
// if any ranking comparison differs. Results go to -delta-out
// (BENCH_delta.json); like the other curve experiments it writes a
// file and is excluded from -run all.

package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/server"
)

var (
	deltaOut   = flag.String("delta-out", "BENCH_delta.json", "output path for the deltacurve baseline")
	deltaSizes = flag.String("delta-sizes", "1000,10300,103000", "comma-separated director counts for -run deltacurve (defaults span ≈10k/100k/1M tuples)")
	deltaMuts  = flag.Int("delta-muts", 4, "patchable probe inserts per point (each followed by a re-explain)")
)

type deltaPoint struct {
	Directors int `json:"directors"`
	Tuples    int `json:"tuples"`
	Causes    int `json:"causes"`
	Mutations int `json:"mutations"`

	// The delta arm: each probe insert patches the cached engine in
	// place, so the re-explain is served warm. Sums over the K inserts.
	DeltaMutateMs    float64 `json:"delta_mutate_ms"`
	DeltaReexplainMs float64 `json:"delta_reexplain_ms"`
	DeltaTotalMs     float64 `json:"delta_total_ms"`

	// The cold arm (DisableDelta): the same inserts drop the engine,
	// so every re-explain rebuilds the lineage. Sums over the K inserts.
	ColdMutateMs    float64 `json:"cold_mutate_ms"`
	ColdReexplainMs float64 `json:"cold_reexplain_ms"`
	ColdTotalMs     float64 `json:"cold_total_ms"`

	// The fastest single round (mutate + re-explain) of each arm: the
	// acceptance gate compares these, because the per-round minimum
	// strips one-sided scheduling/GC noise that sums of single cold
	// runs cannot.
	DeltaRoundMinMs float64 `json:"delta_round_min_ms"`
	ColdRoundMinMs  float64 `json:"cold_round_min_ms"`

	// The exogenous-delete probe: the delta layer declines it (a
	// fallback), so both arms rebuild on the next explain.
	FallbackReexplainMs float64 `json:"fallback_reexplain_ms"`

	// The full re-upload strawman: uploading the final database fresh
	// and explaining cold (also the correctness gate's cold session).
	// Delta maintenance must never lose to it.
	ReuploadMs float64 `json:"reupload_ms"`

	// Delta counters for this point, read from the delta server's
	// /v1/stats before and after the sequence.
	Patched      uint64  `json:"engines_patched"`
	Fallbacks    uint64  `json:"delta_fallbacks"`
	FallbackRate float64 `json:"fallback_rate"`

	SpeedupX float64 `json:"speedup_x"`
}

type deltaReport struct {
	Bench   string       `json:"bench"`
	GOOS    string       `json:"goos"`
	GOARCH  string       `json:"goarch"`
	CPUs    int          `json:"cpus"`
	Query   string       `json:"query"`
	Points  []deltaPoint `json:"points"`
	Note    string       `json:"note"`
	Command string       `json:"command"`
}

// deltaArm is one side of the comparison: a warmed session on either
// the delta-enabled or the DisableDelta server, with its timing sums.
// The two arms are driven in lockstep — round i inserts the same probe
// into both and re-explains both back to back — so ambient noise (GC,
// a shared CPU) lands on both sides of the comparison instead of
// skewing whichever arm happened to run second.
type deltaArm struct {
	name      string
	c         *qc.Client
	id        string
	wantPatch bool

	mutateMs    float64
	reexplainMs float64
	fallbackMs  float64
	// rounds holds each round's mutate+re-explain total. The acceptance
	// gate compares the per-round minimums: the minimum strips the
	// one-sided noise (GC pauses, a busy shared CPU) that can swamp sums
	// of single cold runs, leaving the systematic cost difference.
	rounds []float64
	causes int
	tuples int
	lastID int
	final  []qc.ExplanationDTO
}

func (a *deltaArm) open(ctx context.Context, cfg imdb.Config, req qc.ExplainRequest) {
	db := imdb.Synthetic(cfg)
	a.tuples = db.NumTuples()
	info, err := a.c.UploadDB(ctx, db)
	if err != nil {
		log.Fatalf("deltacurve: %s upload: %v", a.name, err)
	}
	a.id = info.ID
	first, err := a.c.WhySo(ctx, a.id, "", req)
	if err != nil {
		log.Fatalf("deltacurve: %s first explain: %v", a.name, err)
	}
	a.causes = len(first.Explanations)
	a.final = first.Explanations
}

// round applies probe insert i — into Genre, which the query mentions,
// joining no movie, so the ranking cannot change and only the
// maintenance path differs between the arms — and re-explains.
func (a *deltaArm) round(ctx context.Context, req qc.ExplainRequest, i int) {
	spec := qc.TupleSpec{Rel: "Genre", Args: []string{fmt.Sprintf("m-delta-probe-%d", i), "Horror"}}
	start := time.Now()
	mr, err := a.c.InsertTuples(ctx, a.id, []qc.TupleSpec{spec})
	if err != nil {
		log.Fatalf("deltacurve: %s probe insert %d: %v", a.name, i, err)
	}
	mutate := ms(time.Since(start))
	a.mutateMs += mutate
	if a.wantPatch && (mr.EnginesPatched == 0 || mr.EnginesInvalidated != 0) {
		log.Fatalf("deltacurve: delta insert %d patched %d engines, invalidated %d; want ≥1, 0", i, mr.EnginesPatched, mr.EnginesInvalidated)
	}
	if !a.wantPatch && (mr.EnginesInvalidated == 0 || mr.EnginesPatched != 0) {
		log.Fatalf("deltacurve: cold insert %d invalidated %d engines, patched %d; want ≥1, 0", i, mr.EnginesInvalidated, mr.EnginesPatched)
	}
	a.lastID = mr.TupleIDs[len(mr.TupleIDs)-1]
	start = time.Now()
	res, err := a.c.WhySo(ctx, a.id, "", req)
	if err != nil {
		log.Fatalf("deltacurve: %s re-explain %d: %v", a.name, i, err)
	}
	reexplain := ms(time.Since(start))
	a.reexplainMs += reexplain
	a.rounds = append(a.rounds, mutate+reexplain)
	if res.EngineCached != a.wantPatch {
		log.Fatalf("deltacurve: %s re-explain %d: engine_cached=%v, want %v", a.name, i, res.EngineCached, a.wantPatch)
	}
}

// minRound is the arm's fastest mutate+re-explain round.
func (a *deltaArm) minRound() float64 {
	min := a.rounds[0]
	for _, r := range a.rounds[1:] {
		if r < min {
			min = r
		}
	}
	return min
}

// finish deletes the last probe — an exogenous delete the delta layer
// cannot prove safe, so it declines (a recorded fallback) and both
// arms rebuild on the next explain — then checks the ranking never
// moved and drops the session.
func (a *deltaArm) finish(ctx context.Context, req qc.ExplainRequest) {
	mr, err := a.c.DeleteTuple(ctx, a.id, a.lastID)
	if err != nil {
		log.Fatalf("deltacurve: %s probe delete: %v", a.name, err)
	}
	if mr.EnginesInvalidated == 0 || mr.EnginesPatched != 0 {
		log.Fatalf("deltacurve: %s probe delete invalidated %d engines, patched %d; want ≥1, 0", a.name, mr.EnginesInvalidated, mr.EnginesPatched)
	}
	start := time.Now()
	res, err := a.c.WhySo(ctx, a.id, "", req)
	if err != nil {
		log.Fatalf("deltacurve: %s fallback re-explain: %v", a.name, err)
	}
	a.fallbackMs = ms(time.Since(start))
	if res.EngineCached {
		log.Fatalf("deltacurve: %s re-explain after exogenous delete was served from cache", a.name)
	}
	if !sameExplanations(res.Explanations, a.final) {
		log.Fatalf("deltacurve: %s ranking changed after no-op probes", a.name)
	}
	a.final = res.Explanations
	if err := a.c.DropDatabase(ctx, a.id); err != nil {
		log.Fatalf("deltacurve: drop %s: %v", a.id, err)
	}
}

// deltaCurve runs the size curve and writes the BENCH_delta.json
// baseline.
func deltaCurve() {
	header("Delta curve: patched lineage maintenance vs cold engine drops by database size")
	var sizes []int
	for _, s := range strings.Split(*deltaSizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("deltacurve: bad -delta-sizes entry %q", s)
		}
		sizes = append(sizes, n)
	}
	k := *deltaMuts
	if k <= 0 {
		log.Fatalf("deltacurve: -delta-muts must be positive, got %d", k)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Minute)
	defer cancel()

	// One server pair for the whole curve: the delta arm runs the
	// default config, the cold arm runs with delta maintenance off.
	newSrv := func(disable bool) (*qc.Client, func()) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		srv := server.New(server.Config{ReapInterval: -1, MaxSessions: 16, MaxBodyBytes: 256 << 20, DisableDelta: disable})
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		return qc.NewClient("http://"+ln.Addr().String(), nil), func() {
			hs.Close()
			srv.Close()
		}
	}
	deltaC, closeDelta := newSrv(false)
	defer closeDelta()
	coldC, closeCold := newSrv(true)
	defer closeCold()

	genre := imdb.GenreQuery()
	req := qc.ExplainRequest{Query: genre.String(), Answer: []string{"Musical"}}
	rep := deltaReport{
		Bench:  "delta",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Query:  genre.String(),
		Note: fmt.Sprintf("genre query bound to the Musical answer on synthetic IMDB (BurtonShare=0.02); both arms replay %d Genre probe inserts (each + re-explain, interleaved round by round) and one exogenous delete; "+
			"delta arm patches cached lineage in place (engines_patched), cold arm (DisableDelta) drops and rebuilds; fallback counters come from /v1/stats; "+
			"final rankings are byte-compared across arms and against a cold session at the final version; totals are sums of single cold runs, the ≥100k acceptance gate compares the per-round minimums", k),
		Command: fmt.Sprintf("experiments -run deltacurve -delta-sizes %s -delta-muts %d", *deltaSizes, k),
	}

	fmt.Printf("%-10s %-10s %-8s %-13s %-13s %-11s %-11s %-9s %-10s %-9s\n",
		"directors", "tuples", "causes", "delta(k muts)", "cold(k muts)", "delta(best)", "cold(best)", "patched", "fallbacks", "speedup")
	for _, nd := range sizes {
		cfg := imdb.Config{Seed: 7, Directors: nd, BurtonShare: 0.02}
		before, err := deltaC.Stats(ctx)
		if err != nil {
			log.Fatalf("deltacurve: stats: %v", err)
		}
		da := &deltaArm{name: "delta", c: deltaC, wantPatch: true}
		ca := &deltaArm{name: "cold", c: coldC}
		da.open(ctx, cfg, req)
		ca.open(ctx, cfg, req)
		for i := 0; i < k; i++ {
			da.round(ctx, req, i)
			ca.round(ctx, req, i)
		}
		da.finish(ctx, req)
		ca.finish(ctx, req)
		after, err := deltaC.Stats(ctx)
		if err != nil {
			log.Fatalf("deltacurve: stats: %v", err)
		}
		if !sameExplanations(da.final, ca.final) {
			log.Fatalf("deltacurve: arms diverge at %d directors", nd)
		}

		// The cold-session gate: a fresh upload at the final version must
		// rank byte-identically to both arms' surviving state.
		final := imdb.Synthetic(cfg)
		for i := 0; i < k-1; i++ {
			final.MustAdd("Genre", false, qc.Value(fmt.Sprintf("m-delta-probe-%d", i)), "Horror")
		}
		verifyStart := time.Now()
		verifyInfo, err := deltaC.UploadDB(ctx, final)
		if err != nil {
			log.Fatalf("deltacurve: verify upload: %v", err)
		}
		verify, err := deltaC.WhySo(ctx, verifyInfo.ID, "", req)
		if err != nil {
			log.Fatalf("deltacurve: verify explain: %v", err)
		}
		reuploadMs := ms(time.Since(verifyStart))
		if !sameExplanations(da.final, verify.Explanations) {
			log.Fatalf("deltacurve: patched ranking diverged from the cold rebuild at %d directors", nd)
		}
		if err := deltaC.DropDatabase(ctx, verifyInfo.ID); err != nil {
			log.Fatalf("deltacurve: drop %s: %v", verifyInfo.ID, err)
		}

		pt := deltaPoint{
			Directors:           nd,
			Tuples:              da.tuples,
			Causes:              da.causes,
			Mutations:           k,
			DeltaMutateMs:       da.mutateMs,
			DeltaReexplainMs:    da.reexplainMs,
			DeltaTotalMs:        da.mutateMs + da.reexplainMs,
			ColdMutateMs:        ca.mutateMs,
			ColdReexplainMs:     ca.reexplainMs,
			ColdTotalMs:         ca.mutateMs + ca.reexplainMs,
			DeltaRoundMinMs:     da.minRound(),
			ColdRoundMinMs:      ca.minRound(),
			FallbackReexplainMs: da.fallbackMs,
			ReuploadMs:          reuploadMs,
			Patched:             after.EnginesPatched - before.EnginesPatched,
			Fallbacks:           after.DeltaFallbacks - before.DeltaFallbacks,
		}
		if n := pt.Patched + pt.Fallbacks; n > 0 {
			pt.FallbackRate = float64(pt.Fallbacks) / float64(n)
		}
		if pt.DeltaTotalMs > 0 {
			pt.SpeedupX = pt.ColdTotalMs / pt.DeltaTotalMs
		}
		fmt.Printf("%-10d %-10d %-8d %-13s %-13s %-11s %-11s %-9d %-10d %.1fx\n",
			pt.Directors, pt.Tuples, pt.Causes, fmtMs(pt.DeltaTotalMs), fmtMs(pt.ColdTotalMs),
			fmtMs(pt.DeltaRoundMinMs), fmtMs(pt.ColdRoundMinMs), pt.Patched, pt.Fallbacks, pt.SpeedupX)
		rep.Points = append(rep.Points, pt)
	}

	// The acceptance bar: at ≥100k tuples the delta-maintained arm must
	// beat dropping engines cold, compared on the fastest round of each
	// arm (the noise-resistant estimate of each path's true cost).
	for _, pt := range rep.Points {
		if pt.Tuples >= 100_000 && pt.DeltaRoundMinMs >= pt.ColdRoundMinMs {
			fmt.Fprintf(os.Stderr, "deltacurve: delta maintenance (best round %.1fms) did not beat cold drops (best round %.1fms) at %d tuples\n",
				pt.DeltaRoundMinMs, pt.ColdRoundMinMs, pt.Tuples)
			os.Exit(1)
		}
		if pt.DeltaRoundMinMs >= pt.ReuploadMs {
			fmt.Fprintf(os.Stderr, "deltacurve: delta maintenance (best round %.1fms) lost to a full re-upload (%.1fms) at %d tuples\n",
				pt.DeltaRoundMinMs, pt.ReuploadMs, pt.Tuples)
			os.Exit(1)
		}
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*deltaOut, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deltacurve: baseline written to %s\n", *deltaOut)
}
