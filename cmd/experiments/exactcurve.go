// The exactcurve experiment regenerates BENCH_exact.json: the exact
// solver's cost curve on the NP-hard star family h₁* by lineage
// width, the speedup against the PR-3 (map-based, pre-index) solver's
// checked-in curve, and one ablation row per exact.Options toggle.
//
//	go run ./cmd/experiments -run exactcurve [-bench-out BENCH_exact.json]
//
// CI's report-only bench step and the README "Performance" section
// both point here as the one command that refreshes the curve.

package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/exact"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/workload"
)

// pr3Baseline is the PR-3 exact-oracle curve (BENCH_difftest.json,
// same protocol: ns per MinContingencySet call on star h₁* lineages,
// single-core container), keyed by lineage width. It is the "before"
// of the before/after comparison; widths past 147 were unreachable —
// the map-based solver already needed 27s per call there.
var pr3Baseline = map[int]float64{
	20:  9392,
	39:  87487.125,
	56:  349917,
	75:  2761606.625,
	111: 32973395,
	147: 26922418111.625,
}

type exactCurvePoint struct {
	Family           string  `json:"family"`
	Size             int     `json:"size"`
	LineageWidth     int     `json:"lineage_width"`
	LineageConjuncts int     `json:"lineage_conjuncts"`
	CausesTimed      int     `json:"causes_timed"`
	NsPerCall        float64 `json:"ns_per_min_contingency"`
	PR3NsPerCall     float64 `json:"pr3_ns_per_min_contingency,omitempty"`
	Speedup          float64 `json:"speedup_vs_pr3,omitempty"`
}

type exactAblationRow struct {
	Options           string  `json:"options"`
	Size              int     `json:"size"`
	LineageWidth      int     `json:"lineage_width"`
	CausesTimed       int     `json:"causes_timed"`
	NsPerCall         float64 `json:"ns_per_min_contingency"`
	SlowdownVsDefault float64 `json:"slowdown_vs_default"`
}

type exactReport struct {
	Bench     string             `json:"bench"`
	Command   string             `json:"command"`
	Date      string             `json:"date"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	CPUs      int                `json:"cpus"`
	Curve     []exactCurvePoint  `json:"exact_oracle_curve"`
	Ablations []exactAblationRow `json:"ablations"`
	Note      string             `json:"note"`
}

// ablationRows defines the ablation axis: each exact.Options toggle
// off individually at a width the PR-3 solver already found hard, and
// everything off at a smaller width (the bare branch and bound blows
// up far earlier — that cliff is the point).
var ablationRows = []struct {
	name string
	size int
	opts exact.Options
}{
	{"default", 32, exact.Options{}},
	{"no-greedy-seed", 32, exact.Options{DisableGreedySeed: true}},
	{"no-preprocess", 32, exact.Options{DisablePreprocess: true}},
	{"no-memo", 32, exact.Options{DisableMemo: true}},
	{"no-packing-bound", 32, exact.Options{DisablePackingBound: true}},
	{"index-only (seed/preprocess/memo off)", 32, exact.Options{DisableGreedySeed: true, DisablePreprocess: true, DisableMemo: true}},
	{"none (all off)", 12, exact.Options{DisableGreedySeed: true, DisablePreprocess: true, DisableMemo: true, DisablePackingBound: true}},
}

// starLineage builds the star-family engine and returns its minimal
// n-lineage and causes, mirroring the PR-3 curve's protocol (seed 1).
func starLineage(n int) (lineage.DNF, []rel.TupleID, error) {
	db, q, _ := workload.Star(1, n)
	eng, err := core.NewWhySo(db, q)
	if err != nil {
		return lineage.DNF{}, nil, err
	}
	return eng.NLineage(), eng.Causes(), nil
}

// timeStar times opts-configured MinContingency calls over the first
// maxCauses causes of star(n), through the public DNF entry point so
// per-call index construction is included (the PR-3 rows paid their
// per-call map setup the same way).
func timeStar(n, maxCauses int, opts exact.Options) (exactCurvePoint, error) {
	nl, causes, err := starLineage(n)
	if err != nil {
		return exactCurvePoint{}, err
	}
	timed := 0
	start := time.Now()
	for _, id := range causes {
		if timed >= maxCauses {
			break
		}
		exact.MinContingencyOpts(nl, id, opts)
		timed++
	}
	elapsed := time.Since(start)
	if timed == 0 {
		return exactCurvePoint{}, fmt.Errorf("star(%d): no causes to time", n)
	}
	return exactCurvePoint{
		Family: "star", Size: n,
		LineageWidth:     len(nl.Vars()),
		LineageConjuncts: len(nl.Conjuncts),
		CausesTimed:      timed,
		NsPerCall:        float64(elapsed.Nanoseconds()) / float64(timed),
	}, nil
}

func exactCurve() {
	header("Exact-oracle cost curve (indexed branch-and-bound vs the PR-3 solver)")
	rep := exactReport{
		Bench:   "exact",
		Command: "go run ./cmd/experiments -run exactcurve",
		Date:    time.Now().UTC().Format("2006-01-02"),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Note: "ns per exact.MinContingency call (public DNF entry point, per-call index build included; engine calls share one index and are cheaper still) " +
			"on star h1* lineages, 8 causes timed per size; pr3 columns are the checked-in BENCH_difftest.json curve of the map-based solver on the same host profile " +
			"(small widths now pay index-build overhead — the win is the cliff, not the floor). " +
			"Ablation rows disable exact.Options toggles; 'none (all off)' runs at size 12 because the bare search is already ~ms there and grows exponentially.",
	}
	for _, n := range []int{4, 8, 12, 16, 24, 32, 40, 48, 64} {
		p, err := timeStar(n, 8, exact.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if base, ok := pr3Baseline[p.LineageWidth]; ok {
			p.PR3NsPerCall = base
			p.Speedup = base / p.NsPerCall
		}
		speedup := ""
		if p.Speedup > 0 {
			speedup = fmt.Sprintf("  (pr3: %.3gms, %.3gx)", p.PR3NsPerCall/1e6, p.Speedup)
		}
		fmt.Printf("star n=%-3d width=%-4d conjuncts=%-4d %12.0f ns/call%s\n",
			p.Size, p.LineageWidth, p.LineageConjuncts, p.NsPerCall, speedup)
		rep.Curve = append(rep.Curve, p)
	}
	var defaultNs float64
	for _, row := range ablationRows {
		p, err := timeStar(row.size, 4, row.opts)
		if err != nil {
			log.Fatal(err)
		}
		r := exactAblationRow{
			Options: row.name, Size: row.size,
			LineageWidth: p.LineageWidth, CausesTimed: p.CausesTimed,
			NsPerCall: p.NsPerCall,
		}
		if row.name == "default" {
			defaultNs = p.NsPerCall
		} else if defaultNs > 0 && row.size == ablationRows[0].size {
			r.SlowdownVsDefault = p.NsPerCall / defaultNs
		}
		fmt.Printf("ablation %-40s n=%-3d width=%-4d %12.0f ns/call\n", row.name, row.size, p.LineageWidth, p.NsPerCall)
		rep.Ablations = append(rep.Ablations, r)
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*benchOut, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exactcurve: baseline written to %s\n", *benchOut)
}
