package main

import "testing"

// TestAllExperimentsRun smoke-tests every experiment function: each
// regenerates its figure without calling log.Fatal. Output goes to
// stdout (use `go run ./cmd/experiments` for the readable version).
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for name, f := range map[string]func(){
		"fig1": fig1, "fig2": fig2, "fig3": fig3, "fig4": fig4,
		"fig6": fig6, "fig7": fig7, "fig9": fig9, "thm415": thm415, "gap": gap,
		"batch": batch,
	} {
		t.Run(name, func(t *testing.T) { f() })
	}
}
