// The mutatecurve experiment: what a mutation costs on a warm session
// vs rebuilding the session cold, by database size. For each size it
// boots an in-process querycaused server, uploads a synthetic IMDB
// instance, warms the Musical answer of the Fig. 1 genre query, and
// times four paths:
//
//   - cold rebuild: upload the database text + first explain — what a
//     client without mutable sessions pays after every change;
//   - incremental (engine rebuild): insert one Genre tuple (the query
//     mentions Genre, so the cached engine is invalidated) + re-explain
//     — the mutation is O(cached engines), the re-explain rebuilds one
//     engine, and the upload/parse/intern of the whole database is
//     never repaid;
//   - incremental (cached): insert into a relation the query never
//     reads + re-explain — nothing is invalidated and the re-explain is
//     served entirely from the session cache;
//   - and, as a correctness gate, the rebuilt ranking is byte-compared
//     against a genuinely cold session uploaded at the final version.
//
// The default sizes put ≈10k, ≈100k and ≈1M tuples on the curve. The
// experiment fails if incremental does not beat the cold rebuild at
// ≥100k tuples, or if any ranking comparison differs. Results go to
// -mutate-out (BENCH_mutate.json); like the other curve experiments it
// writes a file and is excluded from -run all.

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/server"
)

var (
	mutateOut   = flag.String("mutate-out", "BENCH_mutate.json", "output path for the mutatecurve baseline")
	mutateSizes = flag.String("mutate-sizes", "1000,10300,103000", "comma-separated director counts for -run mutatecurve (defaults span ≈10k/100k/1M tuples)")
)

type mutatePoint struct {
	Directors int `json:"directors"`
	Tuples    int `json:"tuples"`
	Causes    int `json:"causes"`

	// The cold rebuild: upload + first explain on a fresh session.
	ColdUploadMs  float64 `json:"cold_upload_ms"`
	ColdExplainMs float64 `json:"cold_explain_ms"`
	ColdTotalMs   float64 `json:"cold_total_ms"`

	// The incremental path after an insert the query observes: the
	// mutation call itself, then the re-explain that rebuilds the one
	// invalidated engine.
	MutateMs           float64 `json:"mutate_ms"`
	ReexplainRebuildMs float64 `json:"reexplain_rebuild_ms"`
	IncrementalTotalMs float64 `json:"incremental_total_ms"`

	// The incremental path after an insert the query cannot observe:
	// nothing is invalidated, the re-explain is fully cached.
	MutateUntouchedMs float64 `json:"mutate_untouched_ms"`
	ReexplainCachedMs float64 `json:"reexplain_cached_ms"`

	SpeedupX float64 `json:"speedup_x"`
}

type mutateReport struct {
	Bench   string        `json:"bench"`
	GOOS    string        `json:"goos"`
	GOARCH  string        `json:"goarch"`
	CPUs    int           `json:"cpus"`
	Query   string        `json:"query"`
	Points  []mutatePoint `json:"points"`
	Note    string        `json:"note"`
	Command string        `json:"command"`
}

// mutateCurve runs the size curve and writes the BENCH_mutate.json
// baseline.
func mutateCurve() {
	header("Mutation curve: incremental re-explain vs cold rebuild by database size")
	var sizes []int
	for _, s := range strings.Split(*mutateSizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("mutatecurve: bad -mutate-sizes entry %q", s)
		}
		sizes = append(sizes, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	// One in-process server for the whole curve; the body cap is raised
	// because the 1M-tuple upload is the point of the comparison.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := server.New(server.Config{ReapInterval: -1, MaxSessions: 16, MaxBodyBytes: 256 << 20})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	c := qc.NewClient("http://"+ln.Addr().String(), nil)

	genre := imdb.GenreQuery()
	req := qc.ExplainRequest{Query: genre.String(), Answer: []string{"Musical"}}
	rep := mutateReport{
		Bench:  "mutate",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Query:  genre.String(),
		Note: "genre query bound to the Musical answer on synthetic IMDB (BurtonShare=0.02); cold = upload + first explain, incremental = one tuple insert + re-explain on the warm session (rebuild row: the insert invalidates the answer's engine; cached row: it cannot); " +
			"rankings after the rebuild are byte-compared against a cold session at the final version; timings are single cold runs",
		Command: fmt.Sprintf("experiments -run mutatecurve -mutate-sizes %s", *mutateSizes),
	}

	fmt.Printf("%-10s %-10s %-12s %-13s %-11s %-12s %-12s %-9s\n",
		"directors", "tuples", "cold upload", "cold explain", "mutate", "re-explain", "incremental", "speedup")
	for _, nd := range sizes {
		pt := mutatePoint{Directors: nd}
		cfg := imdb.Config{Seed: 7, Directors: nd, BurtonShare: 0.02}
		db := imdb.Synthetic(cfg)
		pt.Tuples = db.NumTuples()

		// Cold rebuild: the session doubles as the warm session below.
		start := time.Now()
		info, err := c.UploadDB(ctx, db)
		if err != nil {
			log.Fatalf("mutatecurve: upload at %d directors: %v", nd, err)
		}
		pt.ColdUploadMs = ms(time.Since(start))
		start = time.Now()
		first, err := c.WhySo(ctx, info.ID, "", req)
		if err != nil {
			log.Fatalf("mutatecurve: first explain: %v", err)
		}
		pt.ColdExplainMs = ms(time.Since(start))
		pt.ColdTotalMs = pt.ColdUploadMs + pt.ColdExplainMs
		pt.Causes = len(first.Explanations)

		// Insert into a relation the genre query never reads: the engine
		// must survive and the re-explain must be served from cache.
		start = time.Now()
		mr, err := c.InsertTuples(ctx, info.ID, []qc.TupleSpec{{Rel: "AuditLog", Args: []string{"probe"}}})
		if err != nil {
			log.Fatalf("mutatecurve: untouched insert: %v", err)
		}
		pt.MutateUntouchedMs = ms(time.Since(start))
		if mr.EnginesInvalidated != 0 {
			log.Fatalf("mutatecurve: insert into unmentioned relation invalidated %d engines, want 0", mr.EnginesInvalidated)
		}
		start = time.Now()
		cached, err := c.WhySo(ctx, info.ID, "", req)
		if err != nil {
			log.Fatalf("mutatecurve: cached re-explain: %v", err)
		}
		pt.ReexplainCachedMs = ms(time.Since(start))
		if !cached.EngineCached {
			log.Fatalf("mutatecurve: re-explain after untouched insert missed the engine cache")
		}

		// Insert a Genre tuple joining no movie: the ranking cannot
		// change, but the query mentions Genre, so the cached engine is
		// stale by the invalidation rules and the re-explain rebuilds it.
		start = time.Now()
		mr, err = c.InsertTuples(ctx, info.ID, []qc.TupleSpec{{Rel: "Genre", Args: []string{"m-mutate-probe", "Horror"}}})
		if err != nil {
			log.Fatalf("mutatecurve: probe insert: %v", err)
		}
		pt.MutateMs = ms(time.Since(start))
		if mr.EnginesInvalidated == 0 {
			log.Fatalf("mutatecurve: insert into mentioned relation invalidated no engines")
		}
		start = time.Now()
		rebuilt, err := c.WhySo(ctx, info.ID, "", req)
		if err != nil {
			log.Fatalf("mutatecurve: rebuild re-explain: %v", err)
		}
		pt.ReexplainRebuildMs = ms(time.Since(start))
		if rebuilt.EngineCached {
			log.Fatalf("mutatecurve: re-explain after probe insert was served from cache")
		}
		pt.IncrementalTotalMs = pt.MutateMs + pt.ReexplainRebuildMs
		if pt.IncrementalTotalMs > 0 {
			pt.SpeedupX = pt.ColdTotalMs / pt.IncrementalTotalMs
		}

		// Correctness gate: a genuinely cold session replaying the same
		// mutations must rank byte-identically to the warm session.
		final := imdb.Synthetic(cfg)
		final.MustAdd("AuditLog", false, "probe")
		final.MustAdd("Genre", false, "m-mutate-probe", "Horror")
		verifyInfo, err := c.UploadDB(ctx, final)
		if err != nil {
			log.Fatalf("mutatecurve: verify upload: %v", err)
		}
		verify, err := c.WhySo(ctx, verifyInfo.ID, "", req)
		if err != nil {
			log.Fatalf("mutatecurve: verify explain: %v", err)
		}
		if !sameExplanations(rebuilt.Explanations, verify.Explanations) ||
			!sameExplanations(rebuilt.Explanations, first.Explanations) {
			log.Fatalf("mutatecurve: warm ranking diverged from the cold rebuild at %d directors", nd)
		}
		for _, id := range []string{info.ID, verifyInfo.ID} {
			if err := c.DropDatabase(ctx, id); err != nil {
				log.Fatalf("mutatecurve: drop %s: %v", id, err)
			}
		}

		fmt.Printf("%-10d %-10d %-12s %-13s %-11s %-12s %-12s %.1fx\n",
			pt.Directors, pt.Tuples, fmtMs(pt.ColdUploadMs), fmtMs(pt.ColdExplainMs),
			fmtMs(pt.MutateMs), fmtMs(pt.ReexplainRebuildMs), fmtMs(pt.IncrementalTotalMs), pt.SpeedupX)
		rep.Points = append(rep.Points, pt)
	}

	// The acceptance bar: at ≥100k tuples the incremental path must beat
	// rebuilding the session cold.
	for _, pt := range rep.Points {
		if pt.Tuples >= 100_000 && pt.IncrementalTotalMs >= pt.ColdTotalMs {
			fmt.Fprintf(os.Stderr, "mutatecurve: incremental (%.1fms) did not beat cold rebuild (%.1fms) at %d tuples\n",
				pt.IncrementalTotalMs, pt.ColdTotalMs, pt.Tuples)
			os.Exit(1)
		}
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*mutateOut, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mutatecurve: baseline written to %s\n", *mutateOut)
}

// sameExplanations compares two rankings byte-for-byte (the transports
// and difftest hold rankings to this standard; elapsed/cache fields are
// outside the compared slice).
func sameExplanations(a, b []qc.ExplanationDTO) bool {
	ra, err := json.Marshal(a)
	if err != nil {
		log.Fatal(err)
	}
	rb, err := json.Marshal(b)
	if err != nil {
		log.Fatal(err)
	}
	return bytes.Equal(ra, rb)
}
