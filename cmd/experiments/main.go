// Command experiments regenerates every figure, table and construction
// of Meliou et al. (VLDB 2010) from the reproduction library and prints
// them in the paper's layout.
//
// Usage:
//
//	experiments [-run all|fig1|fig2|fig3|fig4|fig6|fig7|fig9|thm415|gap|batch]
//	            [-parallel N]
//	experiments -run load -server http://localhost:8347
//	            [-load-clients N] [-load-requests N]
//	experiments -run exactcurve [-bench-out BENCH_exact.json]
//	experiments -run evalcurve [-eval-out BENCH_eval.json]
//	            [-eval-sizes 1000,10300,103000]
//	experiments -run cluster [-cluster-out BENCH_cluster.json]
//	            [-cluster-clients N] [-cluster-requests N]
//	experiments -run mutatecurve [-mutate-out BENCH_mutate.json]
//	            [-mutate-sizes 1000,10300,103000]
//	experiments -run deltacurve [-delta-out BENCH_delta.json]
//	            [-delta-sizes 1000,10300,103000] [-delta-muts 4]
//	experiments -run chaoscurve [-chaos-out BENCH_chaos.json]
//	            [-chaos-clients N] [-chaos-requests N] [-chaos-seed S]
//
// The exactcurve experiment regenerates the exact-solver cost curve
// and ablation baseline (see exactcurve.go); evalcurve records the
// naive-vs-planned data-plane size curve (see evalcurve.go);
// mutatecurve records the incremental re-explain vs cold-rebuild
// latency curve over a mutable session (see mutatecurve.go);
// deltacurve records what the delta-maintenance layer saves over
// dropping engines cold, with the fallback rate per point (see
// deltacurve.go). All four write files, so they are excluded from
// -run all.
//
// -parallel sets the worker count used by the ranking experiments
// (0 = GOMAXPROCS, 1 = serial); the output is identical either way.
//
// The load experiment is a server load generator: it uploads the
// workload databases to a running querycaused server and hammers the
// why-so/why-no/batch endpoints from -load-clients concurrent clients
// (see load.go). It is excluded from -run all.
//
// The cluster experiment is a self-contained chaos soak: it boots a
// 3-replica consistent-hash ring in-process with per-node snapshot
// directories, drives the load-generator mix through one node, kills
// and warm-restarts a replica mid-run, and writes latency percentiles
// plus the measured warm-restart time to -cluster-out (see
// cluster.go). It writes a bench file, so it too is excluded from
// -run all.
//
// The chaoscurve experiment is the survivability soak: the same
// in-process ring under dynamic membership — a node joins mid-run and
// another is decommissioned and killed — with every client behind a
// fault-injecting transport and live watch streams that must fold,
// across every reconnect and handoff, to rankings byte-identical to a
// cold explain (see chaoscurve.go). It writes -chaos-out, so it is
// excluded from -run all.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/exact"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/reductions"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/respflow"
	"github.com/querycause/querycause/internal/rewrite"
	"github.com/querycause/querycause/internal/shape"
)

// parallelism is the -parallel flag: the worker count handed to the
// batch ranking APIs (0 = GOMAXPROCS, 1 = serial).
var parallelism = flag.Int("parallel", 0, "ranking worker count (0 = GOMAXPROCS, 1 = serial)")

// benchOut is where -run exactcurve writes its JSON baseline.
var benchOut = flag.String("bench-out", "BENCH_exact.json", "output path for the exactcurve baseline")

func main() {
	run := flag.String("run", "all", "experiment to run (all, fig1, fig2, fig3, fig4, fig6, fig7, fig9, thm415, gap, batch)")
	flag.Parse()
	exps := map[string]func(){
		"fig1":        fig1,
		"fig2":        fig2,
		"fig3":        fig3,
		"fig4":        fig4,
		"fig6":        fig6,
		"fig7":        fig7,
		"fig9":        fig9,
		"thm415":      thm415,
		"gap":         gap,
		"batch":       batch,
		"load":        load,
		"exactcurve":  exactCurve,
		"evalcurve":   evalCurve,
		"cluster":     clusterSoak,
		"mutatecurve": mutateCurve,
		"deltacurve":  deltaCurve,
		"chaoscurve":  chaosCurve,
	}
	// load needs a running server, and the curve/cluster experiments
	// write bench files, so none of them is part of "all".
	order := []string{"fig1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig9", "thm415", "gap", "batch"}
	if *run == "all" {
		for _, name := range order {
			exps[name]()
		}
		return
	}
	f, ok := exps[*run]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; options: all %s load exactcurve evalcurve cluster mutatecurve deltacurve chaoscurve\n", *run, strings.Join(order, " "))
		os.Exit(2)
	}
	f()
}

func header(s string) {
	fmt.Printf("\n==== %s ====\n", s)
}

// shortTuple renders a tuple by its most recognizable column.
func shortTuple(t *rel.Tuple) string {
	switch t.Rel {
	case "Director":
		return string(t.Args[1])
	case "Movie":
		return string(t.Args[1])
	default:
		return t.String()
	}
}

// fig1 reruns the Fig. 1 genre query on a synthetic IMDB.
func fig1() {
	header("Figure 1: genres of movies directed by Burton (synthetic IMDB)")
	db := imdb.Synthetic(imdb.Config{Seed: 42, Directors: 60})
	ans, err := rel.Answers(db, imdb.GenreQuery())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("genre          lineage size")
	for _, a := range ans {
		fmt.Printf("%-14s %d\n", a.Values[0], len(a.Valuations))
	}
}

// fig2 reproduces the Fig. 2b responsibility ranking exactly.
func fig2() {
	header("Figure 2b: causes of the Musical answer, ranked by responsibility")
	db, _ := imdb.Micro()
	ex, err := qc.WhySo(db, imdb.GenreQuery(), "Musical")
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := ex.RankParallel(context.Background(), qc.BatchOptions{Parallelism: *parallelism})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ρ_t    answer tuple                                   minimum contingency Γ")
	for _, e := range ranked {
		t := db.Tuple(e.Tuple)
		var parts []string
		for _, id := range e.Contingency {
			parts = append(parts, shortTuple(db.Tuple(id)))
		}
		fmt.Printf("  %.2f   %-45v {%s}\n", e.Rho, t, strings.Join(parts, ", "))
	}
	fmt.Println("paper: 0.33 Sweeney Todd + the three Burtons; 0.25 the two 1930s")
	fmt.Println("musicals; 0.20 Candide, Flight, Manon Lescaut — reproduced above;")
	fmt.Println("Example 2.4's contingencies (Sweeney Todd: the two other directors;")
	fmt.Println("Manon Lescaut: David, Tim, Flight, Candide) appear in the Γ column.")
}

// fig3 recomputes the complexity table of Fig. 3 from the classifier.
func fig3() {
	header("Figure 3: complexity of causality and responsibility")
	fmt.Println("causality (Theorems 3.2/3.4): PTIME for all conjunctive queries,")
	fmt.Println("Why-So and Why-No; FO-computable (2 strata), CQ under Cor. 3.7.")
	fmt.Println()
	fmt.Println("responsibility (Why-So, per-query dichotomy, Cor. 4.14):")
	type row struct {
		desc string
		s    *shape.Shape
	}
	rows := []row{
		{"Rⁿ(x,y),Sⁿ(y,z)            (chain)", shape.New(shape.A("R", true, 0, 1), shape.A("S", true, 1, 2))},
		{"Aⁿ,S1ⁿ,S2ⁿ,Rⁿ,S3ⁿ,Tⁿ,Bⁿ    (Fig. 5a)", fig5aShape()},
		{"h1* = Aⁿ,Bⁿ,Cⁿ,W(x,y,z)", shape.NewHard(shape.H1)},
		{"h2* = Rⁿ(x,y),Sⁿ(y,z),Tⁿ(z,x)", shape.NewHard(shape.H2)},
		{"h3* = h1* unaries + triangle", shape.NewHard(shape.H3)},
		{"Rⁿ,Sˣ,Tⁿ triangle           (Ex. 4.12a)", shape.New(shape.A("R", true, 0, 1), shape.A("S", false, 1, 2), shape.A("T", true, 2, 0))},
		{"Rⁿ,Sⁿ,Tⁿ,Vⁿ                 (Ex. 4.12b)", shape.New(shape.A("R", true, 0, 1), shape.A("S", true, 1, 2), shape.A("T", true, 2, 0), shape.A("V", true, 0))},
		{"4-cycle R,S,T,K             (Ex. 4.8)", shape.New(shape.A("R", true, 0, 1), shape.A("S", true, 1, 2), shape.A("T", true, 2, 3), shape.A("K", true, 3, 0))},
		{"Rⁿ(x),S(x,y),Rⁿ(y)          (Prop 4.16)", shape.New(shape.A("R", true, 0), shape.A("S", false, 0, 1), shape.A("R", true, 1))},
	}
	fmt.Printf("%-42s %-24s %s\n", "query", "paper rule (Fig. 3)", "sound rule (engine)")
	for _, r := range rows {
		paper, err := rewrite.Classify(r.s)
		if err != nil {
			log.Fatal(err)
		}
		sound, err := rewrite.ClassifySound(r.s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s %-24s %s\n", r.desc, paper.Class, sound.Class)
	}
	fmt.Println("responsibility (Why-No): PTIME for every conjunctive query (Thm 4.17).")
}

func fig5aShape() *shape.Shape {
	// A(x),S1(x,v),S2(v,y),R(y,u),S3(y,z),T(z,w),B(z)
	return shape.New(
		shape.A("A", true, 0),
		shape.A("S1", true, 0, 1),
		shape.A("S2", true, 1, 2),
		shape.A("R", true, 2, 3),
		shape.A("S3", true, 2, 4),
		shape.A("T", true, 4, 5),
		shape.A("B", true, 4),
	)
}

// fig4 rebuilds the Fig. 4 flow network and reports its min-cuts.
func fig4() {
	header("Figure 4: flow network for q :- R(x,y), S(y,z)")
	db := rel.NewDatabase()
	t0 := db.MustAdd("R", true, "x1", "y2")
	db.MustAdd("R", true, "x2", "y1")
	db.MustAdd("R", true, "x3", "y1")
	db.MustAdd("S", true, "y2", "z1")
	db.MustAdd("S", true, "y2", "z2")
	db.MustAdd("S", true, "y1", "z1")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y"), rel.V("z")))
	s := shape.FromQuery(q, func(string) bool { return true })
	order, _ := s.LinearOrder()
	net, err := respflow.Build(db, q, s, order)
	if err != nil {
		log.Fatal(err)
	}
	v, e := net.Stats()
	fmt.Printf("network: %d vertices, %d tuple edges\n", v, e)
	size, ok := net.MinContingency(t0)
	fmt.Printf("t = R(x1,y2): min contingency %d (ok=%v) → ρ = 1/%d\n", size, ok, size+1)
	bf, _, err := exact.MinContingencyDB(db, q, t0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact search agrees: %d\n", bf)
}

// fig6 replays the h₁* hardness reduction on the exact Fig. 6 instance.
func fig6() {
	header("Figure 6: 3-partite hypergraph vertex cover → h1* responsibility")
	h := &reductions.Hypergraph3{NA: 3, NB: 3, NC: 2}
	h.AddTriple(0, 0, 1)
	h.AddTriple(0, 1, 0)
	h.AddTriple(1, 0, 0)
	h.AddTriple(2, 2, 1)
	cover := h.MinVertexCover()
	inst := reductions.H1FromHypergraph(h, false)
	size, ok, err := exact.MinContingencyDB(inst.DB, inst.Q, inst.Target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min vertex cover = %d; min contingency of r0 = %d (ok=%v); ρ(r0) = 1/%d\n",
		cover, size, ok, size+1)
	fmt.Println("the two quantities coincide on every instance (see tests for the fuzzed check).")
}

// fig7 demonstrates the 3SAT ring reduction (Lemmas C.1–C.3).
func fig7() {
	header("Figures 7/8: 3SAT local rings → h2* responsibility")
	sat := reductions.Formula{NumVars: 3, Clauses: []reductions.Clause{
		{{Var: 0}, {Var: 1, Neg: true}, {Var: 2}},
	}}
	unsat := reductions.Formula{NumVars: 3}
	for mask := 0; mask < 8; mask++ {
		unsat.Clauses = append(unsat.Clauses, reductions.Clause{
			{Var: 0, Neg: mask&1 != 0},
			{Var: 1, Neg: mask&2 != 0},
			{Var: 2, Neg: mask&4 != 0},
		})
	}
	for _, f := range []struct {
		name string
		f    reductions.Formula
	}{{"satisfiable (x ∨ ¬y ∨ z)", sat}, {"unsatisfiable (all 8 sign patterns)", unsat}} {
		inst, err := reductions.BuildRings(f.f)
		if err != nil {
			log.Fatal(err)
		}
		dec, err := inst.SatisfiableViaRings(f.f.NumVars)
		if err != nil {
			log.Fatal(err)
		}
		want, _ := f.f.Satisfiable()
		fmt.Printf("%-38s Σmᵢ=%-4d contingency of size Σmᵢ exists: %v (SAT: %v)\n",
			f.name, inst.SumMi, dec, want)
	}
}

// fig9 demonstrates the h₂*→h₃* transform.
func fig9() {
	header("Figure 9: h2* instance → h3* instance, responsibilities preserved")
	db := rel.NewDatabase()
	rows := map[string][][2]rel.Value{
		"R": {{"1", "1"}, {"1", "2"}},
		"S": {{"1", "1"}, {"1", "2"}, {"2", "1"}},
		"T": {{"1", "1"}, {"2", "1"}, {"1", "2"}},
	}
	for _, name := range []string{"R", "S", "T"} {
		for _, r := range rows[name] {
			db.MustAdd(name, true, r[0], r[1])
		}
	}
	db3, mapping, err := reductions.H2ToH3(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-10s %-10s\n", "h2 tuple", "ρ in h2", "ρ of image in h3")
	for old, new_ := range mapping {
		s2, ok2, _ := exact.MinContingencyDB(db, reductions.H2Query(), old)
		s3, ok3, _ := exact.MinContingencyDB(db3, reductions.H3Query(), new_)
		r2, r3 := "0", "0"
		if ok2 {
			r2 = fmt.Sprintf("1/%d", s2+1)
		}
		if ok3 {
			r3 = fmt.Sprintf("1/%d", s3+1)
		}
		fmt.Printf("%-16v %-10s %-10s\n", db.Tuple(old), r2, r3)
	}
}

// thm415 runs the LOGSPACE chain.
func thm415() {
	header("Theorem 4.15: UGAP → BGAP → FPMF → responsibility of the probe tuple")
	rng := rand.New(rand.NewSource(5))
	fmt.Printf("%-8s %-7s %-7s %-9s %-12s\n", "graph", "path?", "BGAP", "max-flow", "contingency")
	for trial := 0; trial < 5; trial++ {
		g := reductions.RandomGraph(rng, 7, 0.25)
		a, b := 0, 6
		path := g.HasPath(a, b)
		bg := reductions.UGAPToBGAP(g, a, b)
		f := reductions.BGAPToFPMF(bg)
		flowVal := f.MaxFlow()
		chain := reductions.FPMFToChain(f)
		eng, err := core.NewWhySo(chain.DB, chain.Q)
		if err != nil {
			log.Fatal(err)
		}
		ex, err := eng.Responsibility(chain.Target, core.ModeAuto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("#%-7d %-7v %-7v |E|%+d      %d\n",
			trial, path, bg.HasPath(), flowVal-int64(len(bg.Edges)), ex.ContingencySize)
	}
	fmt.Println("path exists  ⟺  flow = |E|+1  ⟺  min contingency = |E|+1.")
}

// batch demonstrates the concurrent batch engine: every answer of the
// genre query on a synthetic IMDB explained in one ExplainAll call,
// fanned out across -parallel workers. The rankings are byte-identical
// to the serial per-answer path for any worker count.
func batch() {
	header("Batch: all genre answers explained in one ExplainAll call")
	db := imdb.Synthetic(imdb.Config{Seed: 42, Directors: 60})
	q := imdb.GenreQuery()
	ans, err := rel.Answers(db, q)
	if err != nil {
		log.Fatal(err)
	}
	reqs := make([]qc.BatchRequest, len(ans))
	for i, a := range ans {
		reqs[i] = qc.BatchRequest{Query: q, Answer: a.Values}
	}
	results, err := qc.ExplainAll(context.Background(), db, reqs, qc.BatchOptions{Parallelism: *parallelism})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %-8s %-8s %s\n", "genre", "causes", "top ρ", "top cause")
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		top := r.Explanations[0]
		fmt.Printf("%-14s %-8d %-8.3f %v\n", r.Request.Answer[0], len(r.Explanations), top.Rho, shortTuple(db.Tuple(top.Tuple)))
	}
}

// gap prints the two reproduction findings.
func gap() {
	header("Reproduction findings (see the fidelity notes in doc.go)")
	// Finding 1: domination unsoundness (Example 4.12b).
	db := rel.NewDatabase()
	db.MustAdd("V", true, "a")
	db.MustAdd("R", true, "a", "b0")
	db.MustAdd("R", true, "a", "b1")
	sb0 := db.MustAdd("S", true, "b0", "c0")
	db.MustAdd("S", true, "b1", "c1")
	db.MustAdd("S", true, "b1", "c2")
	db.MustAdd("T", true, "c0", "a")
	db.MustAdd("T", true, "c1", "a")
	db.MustAdd("T", true, "c2", "a")
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z"), rel.V("x")),
		rel.NewAtom("V", rel.V("x")),
	)
	eng, err := core.NewWhySo(db, q)
	if err != nil {
		log.Fatal(err)
	}
	exv, _ := eng.Responsibility(sb0, core.ModeExact)
	pv, _ := eng.Responsibility(sb0, core.ModePaper)
	fmt.Println("1. Example 4.12b query Rⁿ,Sⁿ,Tⁿ,Vⁿ on a 9-tuple instance:")
	fmt.Printf("   Definition 2.3 (exact): ρ = %.3f; paper's weakening + Algorithm 1: ρ = %.3f\n", exv.Rho, pv.Rho)
	fmt.Println("   (the paper's dominate-R-and-T weakening yields 1/3; Definition 4.9's")
	fmt.Println("   domination is not responsibility-preserving — the engine's sound rule")
	fmt.Println("   requires dominators to cover every variable of the dominated atom.)")
	// Finding 2: dichotomy gap for disconnected queries.
	s := shape.New(
		shape.A("P", true, 1),
		shape.A("Q", true, 0, 3),
		shape.A("R", true, 0, 2),
		shape.A("S", true, 2, 3),
	)
	cert, err := rewrite.Classify(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2. Pⁿ(y) + triangle Qⁿ,Rⁿ,Sⁿ (disconnected):")
	fmt.Printf("   classification: %v — neither weakly linear nor rewritable to h1/h2/h3;\n", cert.Class)
	fmt.Println("   Theorem 4.13 implicitly assumes connected queries. The engine uses")
	fmt.Println("   exact search for such queries (they are NP-hard: a single P-tuple")
	fmt.Println("   embeds the h2* hitting-set problem).")
}
