// Chaos soak for the survivable cluster: boot a 3-replica ring, drive
// the mixed load-generator traffic plus live watch streams through it
// behind a fault-injecting transport (dropped connections, latency,
// 503 bursts, truncated watch frames), and change the membership under
// load — join a fourth node mid-run, then decommission and kill one of
// the originals. Every session crossing an ownership boundary rides
// the handoff protocol; every watch stream broken by a fault or a
// handoff reconnects with resume_from. The soak demands zero
// unrecovered failures, epoch convergence on every survivor, and — the
// payoff — that each watch's folded frame replay is byte-identical to
// a cold ranking asked of the final owner. Records the run in
// BENCH_chaos.json:
//
//	experiments -run chaoscurve [-chaos-out BENCH_chaos.json]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/faultinject"
	"github.com/querycause/querycause/internal/server"
	"github.com/querycause/querycause/internal/workload"
)

var (
	chaosOut      = flag.String("chaos-out", "BENCH_chaos.json", "output path for the chaos soak baseline")
	chaosClients  = flag.Int("chaos-clients", 24, "concurrent clients for -run chaoscurve")
	chaosRequests = flag.Int("chaos-requests", 30, "requests per client for -run chaoscurve")
	chaosSeed     = flag.Int64("chaos-seed", 1, "fault-injection seed for -run chaoscurve")
)

// chaosWatches is how many sessions run a live watch with a dedicated
// mutator hammering them; half are uploaded at the replica that gets
// decommissioned, so their streams are guaranteed to cross a handoff.
const chaosWatches = 4

// chaosRetries is the per-request retry budget of every fault-injected
// client in the soak (the same budget the fault-injected differential
// sweep runs with).
const chaosRetries = 8

// chaosWatch is the folded-state ledger of one live watch: the watcher
// goroutine applies every frame it receives and records the version it
// is current at, so the final state can be diffed byte-for-byte
// against the owner's cold ranking.
type chaosWatch struct {
	id    string
	query string

	mu    sync.Mutex
	state []qc.ExplanationDTO

	version      atomic.Uint64
	frames       atomic.Uint64
	resyncs      atomic.Uint64
	errFrames    atomic.Uint64
	outerResumes atomic.Uint64
}

// fold applies one frame and advances the version ledger.
func (cw *chaosWatch) fold(ev qc.DiffEvent) {
	cw.frames.Add(1)
	switch ev.Type {
	case "full_resync":
		cw.resyncs.Add(1)
	case "error":
		cw.errFrames.Add(1)
	}
	cw.mu.Lock()
	cw.state = server.ApplyWatchEvent(cw.state, ev)
	cw.mu.Unlock()
	if ev.Version > cw.version.Load() {
		cw.version.Store(ev.Version)
	}
}

// ranking snapshots the folded state.
func (cw *chaosWatch) ranking() []qc.ExplanationDTO {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return append([]qc.ExplanationDTO(nil), cw.state...)
}

type chaosBench struct {
	Bench             string `json:"bench"`
	GOOS              string `json:"goos"`
	GOARCH            string `json:"goarch"`
	CPUs              int    `json:"cpus"`
	NodesStart        int    `json:"nodes_start"`
	NodesEnd          int    `json:"nodes_end"`
	Clients           int    `json:"clients"`
	RequestsPerClient int    `json:"requests_per_client"`
	Requests          int    `json:"requests"`
	Failures          int64  `json:"failures"`
	MutationFailures  int64  `json:"mutation_failures"`
	WatchFailures     int64  `json:"watch_failures"`
	ReplayMismatches  int    `json:"replay_mismatches"`
	Retries           int64  `json:"retries"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50Micros     float64 `json:"p50_micros"`
	P99Micros     float64 `json:"p99_micros"`

	JoinEpoch    uint64 `json:"join_epoch"`
	RemoveEpoch  uint64 `json:"remove_epoch"`
	HandoffsOut  uint64 `json:"handoffs_out"`
	HandoffsIn   uint64 `json:"handoffs_in"`
	HandoffFails uint64 `json:"handoff_fails"`
	Redirected   uint64 `json:"cluster_redirected"`
	Restored     uint64 `json:"restored_sessions"`

	Watches          int    `json:"watches"`
	WatchFrames      uint64 `json:"watch_frames"`
	WatchResyncs     uint64 `json:"watch_resyncs"`
	WatchErrorFrames uint64 `json:"watch_error_frames"`
	WatchResumes     uint64 `json:"watch_outer_resumes"`
	Mutations        int64  `json:"mutations"`

	FaultDrops       uint64 `json:"fault_drops"`
	FaultDelays      uint64 `json:"fault_delays"`
	FaultErrors      uint64 `json:"fault_errors"`
	FaultTruncations uint64 `json:"fault_truncations"`

	Note    string `json:"note"`
	Command string `json:"command"`
}

func chaosCurve() {
	header(fmt.Sprintf("Chaos soak: join + decommission under %d clients x %d requests, %d live watches, faults injected",
		*chaosClients, *chaosRequests, chaosWatches))
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	// Three founding replicas plus a pre-allocated listener for the
	// joiner, each with a private persist directory.
	const n = 3
	lns := make([]net.Listener, n+1)
	urls := make([]string, n+1)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	mkdir := func() string {
		dir, err := os.MkdirTemp("", "querycause-chaos-*")
		if err != nil {
			log.Fatal(err)
		}
		return dir
	}
	reps := make([]*replica, n+1)
	for i := 0; i < n; i++ {
		dir := mkdir()
		defer os.RemoveAll(dir)
		rep, _, err := bootReplica(lns[i], urls[:n], i, dir)
		if err != nil {
			log.Fatalf("booting replica %d: %v", i, err)
		}
		reps[i] = rep
	}
	dir3 := mkdir()
	defer os.RemoveAll(dir3)
	defer func() {
		for _, r := range reps {
			if r != nil {
				r.hs.Close()
				r.srv.Close()
			}
		}
	}()

	// One fault injector behind every load, watch, and mutation client.
	// Admin calls and the final assertions use clean clients: the soak
	// proves recovery of the data plane, not of the operator.
	inj := faultinject.New(faultinject.Config{
		Seed:     *chaosSeed,
		Drop:     0.05,
		Delay:    0.10,
		MaxDelay: 3 * time.Millisecond,
		Err:      0.05,
		Truncate: 0.5,
	})
	hc := &http.Client{Transport: inj.Transport(nil)}
	faulted := func(base string) *qc.Client {
		c := qc.NewClient(base, hc)
		c.SetRetries(chaosRetries)
		// Failover only onto the two nodes that survive the whole run.
		c.SetFallbacks([]string{urls[0], urls[2]})
		return c
	}
	admin := qc.NewClient(urls[0], nil)
	if err := admin.Health(ctx); err != nil {
		log.Fatalf("cluster not healthy: %v", err)
	}

	// Mixed load through node 0, every Dial'ed session behind the
	// injector with the extra retry budget.
	entry := faulted(urls[0])
	targets, cleanup, err := loadTargets(ctx, entry, urls[0],
		qc.WithHTTPClient(hc), qc.WithRetries(chaosRetries))
	if err != nil {
		log.Fatalf("preparing workloads: %v", err)
	}
	defer cleanup()

	// The watched sessions: chain instances small enough to re-rank on
	// every mutation. Even-numbered ones are uploaded at node 1 — the
	// replica that gets decommissioned — so their watch streams are
	// guaranteed to cross a session handoff; minting pins a session to
	// its creating node.
	c1 := qc.NewClient(urls[1], nil)
	watches := make([]*chaosWatch, chaosWatches)
	for i := range watches {
		db, q, _ := workload.Chain2(int64(100+i), 10+i)
		up := admin
		if i%2 == 0 {
			up = c1
		}
		info, err := up.UploadDB(ctx, db)
		if err != nil {
			log.Fatalf("uploading watch database %d: %v", i, err)
		}
		watches[i] = &chaosWatch{id: info.ID, query: q.String()}
	}

	// Watchers: consume the live stream, folding every frame. The
	// client reconnects and resumes on its own; if it ever gives up
	// (its bounded reconnect budget exhausted under a hostile fault
	// schedule), the watcher resumes at the outer level from the last
	// folded version — the same ResumeFrom contract — and only repeated
	// resumption with no progress counts as an unrecovered failure.
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	var (
		watchWG       sync.WaitGroup
		watchFailures atomic.Int64
	)
	for _, w := range watches {
		watchWG.Add(1)
		go func(cw *chaosWatch) {
			defer watchWG.Done()
			wc := faulted(urls[0])
			stalls := 0
			for {
				progressed := false
				req := qc.WatchRequest{Query: cw.query, ResumeFrom: cw.version.Load()}
				for ev, err := range wc.WatchStream(watchCtx, cw.id, req) {
					if err != nil {
						break
					}
					cw.fold(ev)
					progressed = true
				}
				if watchCtx.Err() != nil {
					return
				}
				cw.outerResumes.Add(1)
				if progressed {
					stalls = 0
				} else if stalls++; stalls >= 5 {
					watchFailures.Add(1)
					log.Printf("chaos: watch %s: no progress after %d resumes", cw.id, stalls)
					return
				}
			}
		}(w)
	}

	// Mutators: one per watched session, inserting joining tuples and
	// deleting earlier inserts, so diff frames carry real rank changes.
	// Inserts and deletes are idempotency-keyed; residual failures after
	// the client's own retries get the soak-level backoff loop.
	stopMut := make(chan struct{})
	var (
		mutWG       sync.WaitGroup
		mutations   atomic.Int64
		mutFailures atomic.Int64
	)
	for i, w := range watches {
		mutWG.Add(1)
		go func(i int, cw *chaosWatch) {
			defer mutWG.Done()
			mc := faulted(urls[0])
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			fire := func(op func() error) {
				for attempt := 0; attempt < soakRetries; attempt++ {
					if err := op(); err == nil {
						mutations.Add(1)
						return
					}
					time.Sleep(soakBackoff)
				}
				mutFailures.Add(1)
			}
			var pool []int
			for seq := 0; ; seq++ {
				select {
				case <-stopMut:
					return
				default:
				}
				if len(pool) > 4 && seq%3 == 2 {
					id := pool[0]
					fire(func() error {
						_, err := mc.DeleteTuple(ctx, cw.id, id)
						return err
					})
					pool = pool[1:]
				} else {
					rel := "R"
					if seq%2 == 1 {
						rel = "S"
					}
					args := []string{fmt.Sprintf("d%d", rng.Intn(5)), fmt.Sprintf("d%d", rng.Intn(5))}
					fire(func() error {
						resp, err := mc.InsertTuples(ctx, cw.id, []qc.TupleSpec{{Rel: rel, Args: args, Endo: true}})
						if err == nil && len(resp.TupleIDs) == 1 {
							pool = append(pool, resp.TupleIDs[0])
						}
						return err
					})
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(i, w)
	}

	// The chaos controller: at a third of the load, boot a fourth
	// replica as a single-node cluster and join it through the admin
	// endpoint (the join propagates the new epoch to it and rebalances
	// sessions onto it); at two thirds, decommission node 1 — remove it
	// from the ring while it is still serving, wait for its sessions to
	// hand off, then kill the process half.
	var (
		done        atomic.Int64
		joinEpoch   uint64
		removeEpoch uint64
		node1Stats  qc.ServerStats
		drained     bool
		chaosDone   = make(chan struct{})
	)
	total := *chaosClients * *chaosRequests
	go func() {
		defer close(chaosDone)
		for done.Load() < int64(total)/3 {
			time.Sleep(5 * time.Millisecond)
		}
		rep, _, err := bootReplica(lns[n], urls[n:n+1], 0, dir3)
		if err != nil {
			log.Fatalf("chaos: booting joiner: %v", err)
		}
		reps[n] = rep
		ch, err := admin.JoinNode(ctx, urls[n])
		if err != nil {
			log.Fatalf("chaos: join: %v", err)
		}
		joinEpoch = ch.Epoch
		log.Printf("chaos: joined %s at epoch %d (%d nodes, %d peers notified)",
			urls[n], ch.Epoch, len(ch.Nodes), ch.PeersNotified)

		for done.Load() < 2*int64(total)/3 {
			time.Sleep(5 * time.Millisecond)
		}
		ch, err = admin.RemoveNode(ctx, urls[1])
		if err != nil {
			log.Fatalf("chaos: remove: %v", err)
		}
		removeEpoch = ch.Epoch
		log.Printf("chaos: removed %s at epoch %d; waiting for its sessions to hand off", urls[1], ch.Epoch)
		probe := qc.NewClient(urls[1], nil)
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			st, err := probe.Stats(ctx)
			if err == nil {
				node1Stats = st
				if st.Sessions == 0 {
					drained = true
					break
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
		if !drained {
			log.Printf("chaos: node 1 did not drain (%d sessions left); killing anyway", node1Stats.Sessions)
		}
		reps[1].hs.Close()
		_ = reps[1].srv.Flush()
		reps[1].srv.Close()
		reps[1] = nil
		log.Printf("chaos: killed %s (drained=%v, handed off %d sessions)", urls[1], drained, node1Stats.HandoffsOut)
	}()

	// The load: every request retried at the soak level until it
	// succeeds or the retry budget is gone — only the latter counts as
	// an unrecovered failure.
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		retries  atomic.Int64
		latMu    sync.Mutex
		lats     []time.Duration
	)
	start := time.Now()
	for g := 0; g < *chaosClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < *chaosRequests; i++ {
				t := targets[(g+i)%len(targets)]
				ok := false
				for attempt := 0; attempt < soakRetries; attempt++ {
					t0 := time.Now()
					if err := t.fire(ctx); err != nil {
						retries.Add(1)
						time.Sleep(soakBackoff)
						continue
					}
					latMu.Lock()
					lats = append(lats, time.Since(t0))
					latMu.Unlock()
					ok = true
					break
				}
				if !ok {
					failures.Add(1)
					log.Printf("chaos: client %d %s: unrecovered after %d attempts", g, t.name, soakRetries)
				}
				done.Add(1)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	<-chaosDone

	// Quiesce: stop the mutators, disarm the injector, and push one
	// clean sentinel mutation per watch so every stream has a final
	// frame to converge on.
	close(stopMut)
	mutWG.Wait()
	inj.Arm(false)
	finalVersion := make([]uint64, len(watches))
	for i, cw := range watches {
		resp, err := admin.InsertTuples(ctx, cw.id, []qc.TupleSpec{{Rel: "R", Args: []string{"d0", "d1"}, Endo: true}})
		if err != nil {
			log.Fatalf("chaos: sentinel mutation on %s: %v", cw.id, err)
		}
		finalVersion[i] = resp.Version
	}
	syncFailures := 0
	for i, cw := range watches {
		deadline := time.Now().Add(60 * time.Second)
		for cw.version.Load() < finalVersion[i] && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if cw.version.Load() < finalVersion[i] {
			syncFailures++
			log.Printf("chaos: watch %s stuck at version %d, sentinel is %d", cw.id, cw.version.Load(), finalVersion[i])
		}
	}
	stopWatch()
	watchWG.Wait()

	// The payoff: each watch's folded replay must be byte-identical to
	// a cold ranking of the same explanation, asked fresh of whichever
	// node owns the session now.
	mismatches := 0
	for _, cw := range watches {
		cold, err := admin.WhySo(ctx, cw.id, "", qc.ExplainRequest{Query: cw.query})
		if err != nil {
			mismatches++
			log.Printf("chaos: cold ranking of %s: %v", cw.id, err)
			continue
		}
		foldedJSON, _ := json.Marshal(cw.ranking())
		coldJSON, _ := json.Marshal(cold.Explanations)
		if !bytes.Equal(foldedJSON, coldJSON) {
			mismatches++
			log.Printf("chaos: watch %s replay diverged from owner's cold ranking:\nfolded: %s\ncold:   %s",
				cw.id, foldedJSON, coldJSON)
		}
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	counters := inj.Counters()
	bench := chaosBench{
		Bench: "chaos", GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		NodesStart: n, NodesEnd: n, // 3 → join → 4 → remove → 3
		Clients: *chaosClients, RequestsPerClient: *chaosRequests, Requests: total,
		Failures: failures.Load(), MutationFailures: mutFailures.Load(),
		WatchFailures: watchFailures.Load() + int64(syncFailures), ReplayMismatches: mismatches,
		Retries:       retries.Load(),
		ThroughputRPS: float64(len(lats)) / elapsed.Seconds(),
		JoinEpoch:     joinEpoch, RemoveEpoch: removeEpoch,
		Watches: len(watches), Mutations: mutations.Load(),
		FaultDrops: counters.Drops, FaultDelays: counters.Delays,
		FaultErrors: counters.Errors, FaultTruncations: counters.Truncations,
		Note: "in-process ring 3→4→3 under fault injection; latencies are successful load attempts only; watch replays asserted byte-equal to cold rankings after quiesce",
		Command: fmt.Sprintf("experiments -run chaoscurve -chaos-clients %d -chaos-requests %d -chaos-seed %d",
			*chaosClients, *chaosRequests, *chaosSeed),
	}
	if len(lats) > 0 {
		bench.P50Micros = float64(lats[len(lats)/2].Microseconds())
		bench.P99Micros = float64(lats[len(lats)*99/100].Microseconds())
	}
	for _, cw := range watches {
		bench.WatchFrames += cw.frames.Load()
		bench.WatchResyncs += cw.resyncs.Load()
		bench.WatchErrorFrames += cw.errFrames.Load()
		bench.WatchResumes += cw.outerResumes.Load()
	}
	// Node 1's counters were captured just before the kill; the
	// survivors answer live. Every survivor must have converged on the
	// removal epoch.
	bench.HandoffsOut, bench.HandoffsIn = node1Stats.HandoffsOut, node1Stats.HandoffsIn
	bench.HandoffFails = node1Stats.HandoffFails
	bench.Redirected = node1Stats.ClusterRedirected
	bench.Restored = node1Stats.RestoredSessions
	epochLag := 0
	for _, u := range []string{urls[0], urls[2], urls[n]} {
		st, err := qc.NewClient(u, nil).Stats(ctx)
		if err != nil {
			log.Fatalf("stats %s: %v", u, err)
		}
		bench.HandoffsOut += st.HandoffsOut
		bench.HandoffsIn += st.HandoffsIn
		bench.HandoffFails += st.HandoffFails
		bench.Redirected += st.ClusterRedirected
		bench.Restored += st.RestoredSessions
		if st.ClusterEpoch != removeEpoch {
			epochLag++
			log.Printf("chaos: %s is at epoch %d, want %d", u, st.ClusterEpoch, removeEpoch)
		}
	}

	fmt.Printf("requests: %d  failures: %d  retries: %d  elapsed: %v  throughput: %.0f req/s\n",
		total, bench.Failures, bench.Retries, elapsed.Round(time.Millisecond), bench.ThroughputRPS)
	fmt.Printf("latency: p50 %.0fµs  p99 %.0fµs\n", bench.P50Micros, bench.P99Micros)
	fmt.Printf("membership: epoch %d→%d  handoffs out/in/fail: %d/%d/%d  redirected: %d  restored: %d\n",
		bench.JoinEpoch, bench.RemoveEpoch, bench.HandoffsOut, bench.HandoffsIn, bench.HandoffFails,
		bench.Redirected, bench.Restored)
	fmt.Printf("watches: %d  frames: %d  resyncs: %d  outer resumes: %d  mutations: %d  mismatches: %d\n",
		bench.Watches, bench.WatchFrames, bench.WatchResyncs, bench.WatchResumes, bench.Mutations, bench.ReplayMismatches)
	fmt.Printf("faults injected: drops %d  delays %d  errors %d  truncations %d\n",
		bench.FaultDrops, bench.FaultDelays, bench.FaultErrors, bench.FaultTruncations)

	bad := false
	check := func(ok bool, format string, args ...any) {
		if !ok {
			bad = true
			fmt.Fprintf(os.Stderr, "chaos soak: "+format+"\n", args...)
		}
	}
	check(bench.Failures == 0, "%d unrecovered load failures", bench.Failures)
	check(bench.MutationFailures == 0, "%d unrecovered mutation failures", bench.MutationFailures)
	check(bench.WatchFailures == 0, "%d unrecovered watch failures", bench.WatchFailures)
	check(bench.ReplayMismatches == 0, "%d watch replays diverged from the owner's cold ranking", bench.ReplayMismatches)
	check(drained, "decommissioned node did not drain its sessions")
	check(bench.JoinEpoch > 1 && bench.RemoveEpoch > bench.JoinEpoch,
		"epochs did not advance: join %d, remove %d", bench.JoinEpoch, bench.RemoveEpoch)
	check(epochLag == 0, "%d survivors lag the removal epoch", epochLag)
	check(bench.HandoffsOut > 0 && bench.HandoffsIn > 0,
		"no session handoffs engaged (out %d, in %d)", bench.HandoffsOut, bench.HandoffsIn)
	check(counters.Total() > 0, "the fault injector never fired")
	check(bench.WatchFrames > 0, "no watch frames delivered")

	if *chaosOut != "" {
		raw, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*chaosOut, append(raw, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline written to %s\n", *chaosOut)
	}
	if bad {
		os.Exit(1)
	}
}
