// Load-generator mode: hammer a running querycaused server end-to-end
// over HTTP with the workload generators' query families. The request
// shapes are written once against the public Session interface —
// blocking rankings, streamed rankings, Why-No, and ExplainAll
// batches over Dial'ed sessions — plus one raw-client target keeping
// the prepared-query endpoints warm. Reports throughput, latency, and
// the server's cache hit rates, and exits non-zero on any failure, so
// CI uses it as a smoke test:
//
//	querycaused -addr :8347 &
//	experiments -run load -server http://localhost:8347 -load-clients 64
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/workload"
)

var (
	serverURL    = flag.String("server", "", "querycaused base URL for -run load (e.g. http://localhost:8347)")
	loadClients  = flag.Int("load-clients", 64, "concurrent clients for -run load")
	loadRequests = flag.Int("load-requests", 10, "requests per client for -run load")
)

// loadTarget is one request shape a client can fire.
type loadTarget struct {
	name string
	fire func(ctx context.Context) error
}

func load() {
	if *serverURL == "" {
		fmt.Fprintln(os.Stderr, "experiments: -run load requires -server URL")
		os.Exit(2)
	}
	header(fmt.Sprintf("Load: %d clients x %d requests against %s", *loadClients, *loadRequests, *serverURL))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := qc.NewClient(*serverURL, nil)
	if err := c.Health(ctx); err != nil {
		log.Fatalf("server not healthy: %v", err)
	}
	targets, cleanup, err := loadTargets(ctx, c, *serverURL)
	if err != nil {
		log.Fatalf("preparing workloads: %v", err)
	}
	defer cleanup()

	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration
	)
	start := time.Now()
	for g := 0; g < *loadClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < *loadRequests; i++ {
				t := targets[(g+i)%len(targets)]
				t0 := time.Now()
				if err := t.fire(ctx); err != nil {
					failures.Add(1)
					log.Printf("client %d %s: %v", g, t.name, err)
					continue
				}
				mu.Lock()
				lats = append(lats, time.Since(t0))
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := *loadClients * *loadRequests
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Printf("requests: %d  failures: %d  elapsed: %v  throughput: %.0f req/s\n",
		total, failures.Load(), elapsed.Round(time.Millisecond), float64(len(lats))/elapsed.Seconds())
	if len(lats) > 0 {
		fmt.Printf("latency: p50 %v  p95 %v  max %v\n",
			lats[len(lats)/2].Round(time.Microsecond),
			lats[len(lats)*95/100].Round(time.Microsecond),
			lats[len(lats)-1].Round(time.Microsecond))
	}
	if stats, err := c.Stats(ctx); err == nil {
		fmt.Printf("server: sessions=%d inflight=%d peak_inflight=%d cert cache %d/%d hits, engine cache %d/%d hits\n",
			stats.Sessions, stats.Inflight, stats.PeakInflight,
			stats.CertCache.Hits, stats.CertCache.Hits+stats.CertCache.Misses,
			stats.EngineCache.Hits, stats.EngineCache.Hits+stats.EngineCache.Misses)
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// loadTargets dials the workload databases into server-side sessions
// and returns the mixed request shapes the clients cycle through —
// all but one written against the Session interface, so the same
// closures would drive an in-process Open'ed session unchanged.
// opts ride every Dial (the chaos soak uses them to route the
// sessions through a fault-injecting transport with extra retries).
func loadTargets(ctx context.Context, c *qc.Client, baseURL string, opts ...qc.Option) (targets []loadTarget, cleanup func(), err error) {
	var sessions []qc.Session
	cleanup = func() {
		for _, s := range sessions {
			_ = s.Close()
		}
	}
	dial := func(db *qc.Database, extra ...qc.Option) (qc.Session, error) {
		sess, err := qc.Dial(ctx, baseURL, db, append(append([]qc.Option(nil), opts...), extra...)...)
		if err == nil {
			sessions = append(sessions, sess)
		}
		return sess, err
	}

	// Micro IMDB: the paper's Fig. 2 instance, non-Boolean genre query
	// with real answers; repeated explains of the same answers keep
	// the server's engine cache warm.
	micro, _ := imdb.Micro()
	microSess, err := dial(micro)
	if err != nil {
		return nil, cleanup, err
	}
	genre := imdb.GenreQuery()
	answers, err := rel.Answers(micro, genre)
	if err != nil {
		return nil, cleanup, err
	}

	// Boolean chain workload (PTIME flow path) for one-shot explains.
	chainDB, chainQ, _ := workload.Chain2(7, 24)
	chainSess, err := dial(chainDB)
	if err != nil {
		return nil, cleanup, err
	}

	// NP-hard star for the streaming target: first explanations arrive
	// while later exact searches still run.
	starDB, starQ, _ := workload.Star(7, 6)
	starSess, err := dial(starDB, qc.WithParallelism(2))
	if err != nil {
		return nil, cleanup, err
	}

	// Why-No workload (Theorem 4.17 closed form).
	whyNoDB, whyNoQ := workload.WhyNoChain(11, 12)
	whyNoSess, err := dial(whyNoDB)
	if err != nil {
		return nil, cleanup, err
	}

	var batchReqs []qc.BatchRequest
	for _, a := range answers {
		batchReqs = append(batchReqs, qc.BatchRequest{Query: genre, Answer: a.Values})
	}

	rank := func(sess qc.Session, q *qc.Query, whyNo bool, answer ...qc.Value) func(context.Context) error {
		return func(ctx context.Context) error {
			var r qc.Ranking
			var err error
			if whyNo {
				r, err = sess.WhyNo(ctx, q, answer...)
			} else {
				r, err = sess.WhySo(ctx, q, answer...)
			}
			if err != nil {
				return err
			}
			_, err = r.Rank(ctx)
			return err
		}
	}

	targets = []loadTarget{
		{name: "whyso-chain", fire: rank(chainSess, chainQ, false)},
		{name: "whyno-chain", fire: rank(whyNoSess, whyNoQ, true)},
		{name: "stream-star", fire: func(ctx context.Context) error {
			r, err := starSess.WhySo(ctx, starQ)
			if err != nil {
				return err
			}
			n := 0
			for _, serr := range r.RankStream(ctx) {
				if serr != nil {
					return serr
				}
				n++
			}
			if n == 0 {
				return fmt.Errorf("stream yielded no explanations")
			}
			return nil
		}},
		{name: "batch-genres", fire: func(ctx context.Context) error {
			results, err := microSess.ExplainAll(ctx, batchReqs)
			if err != nil {
				return err
			}
			for _, r := range results {
				if r.Err != nil {
					return fmt.Errorf("batch item: %w", r.Err)
				}
			}
			return nil
		}},
	}
	// Every answer of the genre query as its own target, so the engine
	// cache sees a mixed warm working set.
	for _, a := range answers {
		targets = append(targets, loadTarget{
			name: "whyso-" + string(a.Values[0]),
			fire: rank(microSess, genre, false, a.Values...),
		})
	}

	// One raw-client target keeps the prepared-query endpoints in the
	// mix (preparation is server-specific and not part of Session).
	microInfo, err := c.UploadDB(ctx, micro)
	if err != nil {
		return nil, cleanup, err
	}
	pq, err := c.PrepareQuery(ctx, microInfo.ID, genre.String())
	if err != nil {
		return nil, cleanup, err
	}
	firstAnswer := make([]string, len(answers[0].Values))
	for i, v := range answers[0].Values {
		firstAnswer[i] = string(v)
	}
	targets = append(targets, loadTarget{
		name: "whyso-prepared",
		fire: func(ctx context.Context) error {
			_, err := c.WhySo(ctx, microInfo.ID, pq.ID, qc.ExplainRequest{Answer: firstAnswer})
			return err
		},
	})
	return targets, cleanup, nil
}
