// Load-generator mode: hammer a running querycaused server end-to-end
// over HTTP with the workload generators' query families — prepared
// why-so explains (warm certificate/lineage caches), inline one-shot
// explains, why-no explains, and ExplainAll batches — from many
// concurrent clients, and report throughput, latency, and the server's
// cache hit rates. Exits non-zero on any non-2xx response, so CI uses
// it as a smoke test:
//
//	querycaused -addr :8347 &
//	experiments -run load -server http://localhost:8347 -load-clients 64
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/workload"
)

var (
	serverURL    = flag.String("server", "", "querycaused base URL for -run load (e.g. http://localhost:8347)")
	loadClients  = flag.Int("load-clients", 64, "concurrent clients for -run load")
	loadRequests = flag.Int("load-requests", 10, "requests per client for -run load")
)

// loadTarget is one request shape a client can fire.
type loadTarget struct {
	name string
	fire func(ctx context.Context, c *qc.Client) error
}

func load() {
	if *serverURL == "" {
		fmt.Fprintln(os.Stderr, "experiments: -run load requires -server URL")
		os.Exit(2)
	}
	header(fmt.Sprintf("Load: %d clients x %d requests against %s", *loadClients, *loadRequests, *serverURL))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := qc.NewClient(*serverURL, nil)
	if err := c.Health(ctx); err != nil {
		log.Fatalf("server not healthy: %v", err)
	}
	targets, err := loadTargets(ctx, c)
	if err != nil {
		log.Fatalf("preparing workloads: %v", err)
	}

	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration
	)
	start := time.Now()
	for g := 0; g < *loadClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < *loadRequests; i++ {
				t := targets[(g+i)%len(targets)]
				t0 := time.Now()
				if err := t.fire(ctx, c); err != nil {
					failures.Add(1)
					log.Printf("client %d %s: %v", g, t.name, err)
					continue
				}
				mu.Lock()
				lats = append(lats, time.Since(t0))
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := *loadClients * *loadRequests
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Printf("requests: %d  failures: %d  elapsed: %v  throughput: %.0f req/s\n",
		total, failures.Load(), elapsed.Round(time.Millisecond), float64(len(lats))/elapsed.Seconds())
	if len(lats) > 0 {
		fmt.Printf("latency: p50 %v  p95 %v  max %v\n",
			lats[len(lats)/2].Round(time.Microsecond),
			lats[len(lats)*95/100].Round(time.Microsecond),
			lats[len(lats)-1].Round(time.Microsecond))
	}
	if stats, err := c.Stats(ctx); err == nil {
		fmt.Printf("server: sessions=%d inflight=%d peak_inflight=%d cert cache %d/%d hits, engine cache %d/%d hits\n",
			stats.Sessions, stats.Inflight, stats.PeakInflight,
			stats.CertCache.Hits, stats.CertCache.Hits+stats.CertCache.Misses,
			stats.EngineCache.Hits, stats.EngineCache.Hits+stats.EngineCache.Misses)
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// loadTargets uploads the workload databases and prepares queries,
// returning the mixed request shapes the clients cycle through.
func loadTargets(ctx context.Context, c *qc.Client) ([]loadTarget, error) {
	// Micro IMDB: the paper's Fig. 2 instance, non-Boolean genre query
	// with real answers for prepared warm explains.
	micro, _ := imdb.Micro()
	microInfo, err := c.UploadDB(ctx, micro)
	if err != nil {
		return nil, err
	}
	genre := imdb.GenreQuery()
	pq, err := c.PrepareQuery(ctx, microInfo.ID, genre.String())
	if err != nil {
		return nil, err
	}
	answers, err := rel.Answers(micro, genre)
	if err != nil {
		return nil, err
	}

	// Boolean chain workload (PTIME flow path) for inline explains.
	chainDB, chainQ, _ := workload.Chain2(7, 24)
	chainInfo, err := c.UploadDB(ctx, chainDB)
	if err != nil {
		return nil, err
	}
	chainStr := chainQ.String()

	// Why-No workload (Theorem 4.17 closed form).
	whyNoDB, whyNoQ := workload.WhyNoChain(11, 12)
	whyNoInfo, err := c.UploadDB(ctx, whyNoDB)
	if err != nil {
		return nil, err
	}
	whyNoStr := whyNoQ.String()

	var batchItems []qc.BatchItem
	for _, a := range answers {
		item := qc.BatchItem{QueryID: pq.ID}
		for _, v := range a.Values {
			item.Answer = append(item.Answer, string(v))
		}
		batchItems = append(batchItems, item)
	}

	targets := []loadTarget{
		{name: "whyso-prepared", fire: func(ctx context.Context, c *qc.Client) error {
			a := answers[0]
			_, err := c.WhySo(ctx, microInfo.ID, pq.ID, qc.ExplainRequest{Answer: values(a.Values)})
			return err
		}},
		{name: "whyso-inline-chain", fire: func(ctx context.Context, c *qc.Client) error {
			_, err := c.WhySo(ctx, chainInfo.ID, "", qc.ExplainRequest{Query: chainStr})
			return err
		}},
		{name: "whyno-chain", fire: func(ctx context.Context, c *qc.Client) error {
			_, err := c.WhyNo(ctx, whyNoInfo.ID, "", qc.ExplainRequest{Query: whyNoStr})
			return err
		}},
		{name: "batch-genres", fire: func(ctx context.Context, c *qc.Client) error {
			resp, err := c.Batch(ctx, microInfo.ID, qc.BatchExplainRequest{Requests: batchItems})
			if err != nil {
				return err
			}
			for _, r := range resp.Results {
				if r.Error != "" {
					return fmt.Errorf("batch item: %s", r.Error)
				}
			}
			return nil
		}},
	}
	// Every answer of the genre query as its own prepared-query target,
	// so the engine cache sees a mixed warm working set.
	for _, a := range answers {
		vals := values(a.Values)
		targets = append(targets, loadTarget{
			name: "whyso-" + vals[0],
			fire: func(ctx context.Context, c *qc.Client) error {
				_, err := c.WhySo(ctx, microInfo.ID, pq.ID, qc.ExplainRequest{Answer: vals})
				return err
			},
		})
	}
	return targets, nil
}

func values(vs []rel.Value) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = string(v)
	}
	return out
}
