package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/querycause/querycause/internal/server"
)

func writeTempDB(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "db.txt")
	content := `
# Example 2.2 instance
+R(a1, a5)
+R(a2, a1)
+R(a3, a3)
+R(a4, a3)
+R(a4, a2)
+S(a1)
+S(a2)
+S(a3)
+S(a4)
+S(a6)
`
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWhySo(t *testing.T) {
	db := writeTempDB(t)
	for _, mode := range []string{"auto", "exact", "paper"} {
		for _, parallel := range []int{0, 1, 4} {
			if err := run(db, "q(x) :- R(x,y), S(y)", "a4", "so", mode, parallel, "", false, false, true, true); err != nil {
				t.Fatalf("mode %s parallel %d: %v", mode, parallel, err)
			}
		}
	}
}

func TestRunWhyNo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.txt")
	content := "-R(a, b)\n+S(b)\n+S(c)\n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "q :- R(x,y), S(y)", "", "no", "auto", 0, "", false, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunClassify(t *testing.T) {
	if err := run("", "q :- R(x,y), S(y,z), T(z,x)", "", "so", "auto", 0, "", false, true, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run("", "q :- R(x,y), S(y,z)", "", "so", "auto", 0, "", false, true, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	db := writeTempDB(t)
	cases := []struct {
		name                       string
		dbP, q, ans, why, mode     string
		classify, lineage, program bool
	}{
		{name: "no query", dbP: db},
		{name: "bad query", dbP: db, q: "nope", why: "so", mode: "auto"},
		{name: "no db", q: "q :- R(x,y)", why: "so", mode: "auto"},
		{name: "bad mode", dbP: db, q: "q :- R(x,y)", why: "so", mode: "warp"},
		{name: "bad why", dbP: db, q: "q :- R(x,y)", why: "maybe", mode: "auto"},
		{name: "missing file", dbP: "/does/not/exist", q: "q :- R(x,y)", why: "so", mode: "auto"},
		{name: "bad answer arity", dbP: db, q: "q(x) :- R(x,y), S(y)", ans: "a,b", why: "so", mode: "auto"},
	}
	for _, c := range cases {
		if err := run(c.dbP, c.q, c.ans, c.why, c.mode, 0, "", false, c.classify, c.lineage, c.program); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestRunAgainstServer drives the identical run() path through a
// Dial'ed session (httptest-backed querycaused), streaming included.
func TestRunAgainstServer(t *testing.T) {
	srv := server.New(server.Config{ReapInterval: -1})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	db := writeTempDB(t)
	if err := run(db, "q(x) :- R(x,y), S(y)", "a4", "so", "auto", 0, ts.URL, false, false, false, false); err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if err := run(db, "q(x) :- R(x,y), S(y)", "a4", "so", "auto", 2, ts.URL, true, false, false, false); err != nil {
		t.Fatalf("remote streaming run: %v", err)
	}
	if err := run(db, "q(x) :- R(x,y), S(y)", "a4", "so", "auto", 2, "", true, false, false, false); err != nil {
		t.Fatalf("local streaming run: %v", err)
	}
}
