// Command causality explains answers and non-answers of conjunctive
// queries: it loads a database (one tuple per line, "+R(a,b)"
// endogenous / "-R(a,b)" exogenous), a query, and an answer tuple, and
// prints the actual causes ranked by responsibility (Meliou et al.,
// VLDB 2010).
//
// It is written against the Session interface, so the same code path
// explains in-process (the default) or against a remote querycaused
// server (-server URL) — identical output either way.
//
// Usage:
//
//	causality -db instance.txt -query "q(x) :- R(x,y), S(y)" -answer a4
//	causality -db instance.txt -query "q(x) :- R(x,y), S(y)" -answer a7 -why no
//	causality -db instance.txt -query "q :- R(x,y), S(y)" -classify
//	causality -db instance.txt -query "..." -answer a4 -server http://localhost:8347
//
// Flags:
//
//	-db FILE      database file (required)
//	-query Q      conjunctive query (required)
//	-answer VALS  comma-separated answer tuple (required unless Boolean)
//	-why so|no    explain an answer (default) or a non-answer
//	-mode auto|exact|paper
//	              responsibility strategy (default auto)
//	-parallel N   worker count for ranking causes (0 = GOMAXPROCS,
//	              1 = serial)
//	-server URL   explain through a querycaused server instead of
//	              in-process
//	-stream       print explanations as they are computed (RankStream)
//	              instead of the final table
//	-classify     print the dichotomy classification and exit
//	-lineage      also print the minimal endogenous lineage
//	-program      also print the Theorem 3.4 Datalog¬ cause program
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	qc "github.com/querycause/querycause"
)

func main() {
	var (
		dbPath   = flag.String("db", "", "database file (+R(a,b) endogenous, -R(a,b) exogenous)")
		queryStr = flag.String("query", "", "conjunctive query, e.g. \"q(x) :- R(x,y), S(y)\"")
		answer   = flag.String("answer", "", "comma-separated answer tuple values")
		why      = flag.String("why", "so", "so (explain answer) or no (explain non-answer)")
		mode     = flag.String("mode", "auto", "responsibility mode: auto, exact, paper")
		parallel = flag.Int("parallel", 0, "worker count for ranking causes (0 = GOMAXPROCS, 1 = serial)")
		server   = flag.String("server", "", "querycaused base URL; empty = explain in-process")
		stream   = flag.Bool("stream", false, "print explanations as they complete instead of the final table")
		classify = flag.Bool("classify", false, "print the dichotomy classification and exit")
		lineage  = flag.Bool("lineage", false, "print the minimal endogenous lineage")
		program  = flag.Bool("program", false, "print the Theorem 3.4 cause program")
	)
	flag.Parse()
	if err := run(*dbPath, *queryStr, *answer, *why, *mode, *parallel, *server, *stream, *classify, *lineage, *program); err != nil {
		fmt.Fprintln(os.Stderr, "causality:", err)
		os.Exit(1)
	}
}

func run(dbPath, queryStr, answer, why, modeStr string, parallel int, serverURL string, stream, classify, printLineage, printProgram bool) error {
	ctx := context.Background()
	if queryStr == "" {
		return fmt.Errorf("-query is required")
	}
	q, err := qc.ParseQuery(queryStr)
	if err != nil {
		return err
	}

	if classify {
		endo := func(string) bool { return true }
		paper, err := qc.Classify(q, endo)
		if err != nil {
			return err
		}
		sound, err := qc.ClassifySound(q, endo)
		if err != nil {
			return err
		}
		fmt.Printf("query:       %v\n", q)
		fmt.Printf("paper rule:  %v\n", paper.Class)
		fmt.Printf("sound rule:  %v\n", sound.Class)
		if sound.Class.PTime() {
			fmt.Printf("linear atom order: %v\n", sound.LinearOrder)
		}
		if paper.Class == qc.ClassNPHard {
			fmt.Printf("reduces to:  %s\n", paper.Hard)
		}
		return nil
	}

	if dbPath == "" {
		return fmt.Errorf("-db is required")
	}
	f, err := os.Open(dbPath)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := qc.ParseDatabase(f)
	if err != nil {
		return err
	}

	var answerVals []qc.Value
	if answer != "" {
		for _, s := range strings.Split(answer, ",") {
			answerVals = append(answerVals, qc.Value(strings.TrimSpace(s)))
		}
	}

	var m qc.Mode
	switch modeStr {
	case "auto":
		m = qc.ModeAuto
	case "exact":
		m = qc.ModeExact
	case "paper":
		m = qc.ModePaper
	default:
		return fmt.Errorf("unknown mode %q", modeStr)
	}
	whyNo := false
	switch why {
	case "so":
	case "no":
		whyNo = true
	default:
		return fmt.Errorf("-why must be 'so' or 'no'")
	}

	// One session abstracts both transports; everything below is
	// transport-agnostic.
	opts := []qc.Option{qc.WithMode(m), qc.WithParallelism(parallel)}
	var sess qc.Session
	if serverURL != "" {
		sess, err = qc.Dial(ctx, serverURL, db, opts...)
	} else {
		sess, err = qc.Open(db, opts...)
	}
	if err != nil {
		return err
	}
	defer sess.Close()

	var r qc.Ranking
	if whyNo {
		r, err = sess.WhyNo(ctx, q, answerVals...)
	} else {
		r, err = sess.WhySo(ctx, q, answerVals...)
	}
	if err != nil {
		return err
	}

	// Lineage and cause-program are display-only derivations of the
	// local database; they print the same regardless of transport.
	if printLineage || printProgram {
		ex, err := explainerFor(db, q, answerVals, whyNo)
		if err != nil {
			return err
		}
		if printLineage {
			fmt.Printf("minimal n-lineage: %v\n", ex.NLineage())
		}
		if printProgram {
			prog, err := qc.CauseProgram(db, ex.BoundQuery())
			if err != nil {
				return err
			}
			fmt.Printf("cause program (Theorem 3.4):\n%s\n", prog)
		}
	}

	causes, err := r.Causes(ctx)
	if err != nil {
		return err
	}
	if len(causes) == 0 {
		fmt.Println("no actual causes (the answer either does not hold, or holds on exogenous tuples alone)")
		return nil
	}
	verb := "remove"
	if whyNo {
		verb = "insert"
	}

	if stream {
		fmt.Printf("%d actual cause(s), streaming as computed:\n", len(causes))
		for e, serr := range r.RankStream(ctx) {
			if serr != nil {
				return serr
			}
			fmt.Printf("  ρ=%-7.3f %v", e.Rho, db.Tuple(e.Tuple))
			if len(e.Contingency) > 0 {
				fmt.Printf("  Γ: %s {%s}", verb, tupleList(db, e.Contingency))
			}
			fmt.Println()
		}
		return nil
	}

	ranked, err := r.Rank(ctx)
	if err != nil {
		return err
	}
	byTuple := make(map[qc.TupleID]qc.Explanation, len(ranked))
	for _, e := range ranked {
		byTuple[e.Tuple] = e
	}
	fmt.Printf("%d actual cause(s):\n", len(causes))
	fmt.Printf("  %-7s %-12s %-16s %s\n", "ρ_t", "|Γ| min", "method", "tuple")
	for _, c := range causes {
		e := byTuple[c]
		fmt.Printf("  %-7.3f %-12d %-16v %v\n", e.Rho, e.ContingencySize, e.Method, db.Tuple(e.Tuple))
		if len(e.Contingency) > 0 {
			fmt.Printf("          Γ: %s {%s}\n", verb, tupleList(db, e.Contingency))
		}
	}
	return nil
}

func explainerFor(db *qc.Database, q *qc.Query, answer []qc.Value, whyNo bool) (*qc.Explainer, error) {
	if whyNo {
		return qc.WhyNo(db, q, answer...)
	}
	return qc.WhySo(db, q, answer...)
}

func tupleList(db *qc.Database, ids []qc.TupleID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = db.Tuple(id).String()
	}
	return strings.Join(parts, ", ")
}
