// Command querycaused is the long-running causality-explanation server:
// the engine of Meliou et al. (VLDB 2010) behind a concurrent JSON API
// with a database session registry and certificate/lineage caching, so
// repeated why-so / why-no explanations skip re-parsing, re-lineage,
// and re-classification.
//
// Usage:
//
//	querycaused [-addr :8347] [-max-sessions 64] [-session-ttl 30m]
//	            [-worker-budget N] [-parallel N] [-request-timeout 30s]
//	            [-persist-dir DIR] [-self URL -peers URL,URL,...]
//
// With -persist-dir, sessions are snapshotted write-behind to DIR (one
// versioned, checksummed .qcs file per session) and reloaded on the
// next start, so restarts are warm: prepared queries keep their ids and
// certificates, and no client re-uploads. With -self and -peers, the
// node joins a static consistent-hash ring over session ids: requests
// for sessions owned elsewhere answer 307 to the owner (or are proxied
// with -cluster-proxy), and GET /v1/cluster publishes the topology so
// clients can route themselves.
//
// Endpoints (see internal/server for the full API):
//
//	POST /v1/databases                upload a database (parser format)
//	POST /v1/databases/{db}/queries   prepare a query (classify + rewrite once)
//	POST /v1/databases/{db}/queries/{q}/whyso | whyno
//	POST /v1/databases/{db}/batch     ExplainAll over one session
//	POST /v1/databases/{db}/watch     live NDJSON diff stream for one answer
//	GET  /healthz, GET /v1/stats
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight explains drain through context cancellation, pending
// session snapshots flush to the persist dir, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/querycause/querycause/internal/persist"
	"github.com/querycause/querycause/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8347", "listen address")
		maxSessions   = flag.Int("max-sessions", 64, "max registered databases; adding beyond evicts the LRU session")
		sessionTTL    = flag.Duration("session-ttl", 30*time.Minute, "idle session lifetime before eviction")
		certCache     = flag.Int("cert-cache", 256, "per-session certificate cache entries")
		engineCache   = flag.Int("engine-cache", 1024, "per-session engine (lineage) cache entries")
		workerBudget  = flag.Int("worker-budget", 0, "max concurrently computing explain requests (0 = 2*GOMAXPROCS)")
		parallel      = flag.Int("parallel", 1, "ranking workers per admitted request (0 = GOMAXPROCS)")
		reqTimeout    = flag.Duration("request-timeout", 30*time.Second, "per-request timeout, admission queueing included")
		drainTimeout  = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain budget before in-flight work is canceled")
		sessionBudget = flag.Int("session-budget", 0, "max concurrent explains per session before shedding (0 = unlimited)")
		watchBudget   = flag.Int("watch-budget", 0, "max concurrent watch subscriptions per session before shedding (0 = unlimited)")
		noDelta       = flag.Bool("no-delta", false, "drop stale engines cold on mutation instead of delta-patching their lineage")
		persistDir    = flag.String("persist-dir", "", "directory for write-behind session snapshots (empty = no persistence)")
		persistEvery  = flag.Duration("persist-interval", 2*time.Second, "write-behind flush interval (<0 = flush only on drain)")
		self          = flag.String("self", "", "this node's base URL as peers reach it (enables clustering with -peers)")
		peers         = flag.String("peers", "", "comma-separated base URLs of all cluster nodes, including -self")
		clusterProxy  = flag.Bool("cluster-proxy", false, "proxy wrong-node requests to the owner instead of 307-redirecting")
	)
	flag.Parse()
	cfg := server.Config{
		MaxSessions:     *maxSessions,
		SessionTTL:      *sessionTTL,
		CertCacheSize:   *certCache,
		EngineCacheSize: *engineCache,
		WorkerBudget:    *workerBudget,
		Parallelism:     *parallel,
		RequestTimeout:  *reqTimeout,
		SessionBudget:   *sessionBudget,
		WatchBudget:     *watchBudget,
		DisableDelta:    *noDelta,
		PersistInterval: *persistEvery,
		ClusterProxy:    *clusterProxy,
	}
	if cfg.Self, cfg.Peers = *self, splitPeers(*peers); (cfg.Self == "") != (len(cfg.Peers) == 0) {
		fmt.Fprintln(os.Stderr, "querycaused: -self and -peers must be set together")
		os.Exit(2)
	}
	for _, p := range append(cfg.Peers, cfg.Self) {
		if p == "" {
			continue
		}
		if u, err := url.Parse(p); err != nil || u.Scheme == "" || u.Host == "" {
			fmt.Fprintf(os.Stderr, "querycaused: peer %q is not an absolute URL\n", p)
			os.Exit(2)
		}
	}
	if *persistDir != "" {
		st, err := persist.Open(*persistDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "querycaused:", err)
			os.Exit(1)
		}
		cfg.Persist = st
	}
	if err := run(*addr, cfg, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "querycaused:", err)
		os.Exit(1)
	}
}

// splitPeers parses the -peers flag, tolerating blanks and whitespace.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(addr string, cfg server.Config, drainTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := server.New(cfg)
	defer srv.Close()
	httpSrv := &http.Server{
		Addr:    addr,
		Handler: srv.Handler(),
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("querycaused: listening on %s", addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight explains finish
	// within the budget, then hard-close (which cancels their request
	// contexts — the engine's cancellation plumbing aborts mid-batch).
	log.Printf("querycaused: signal received, draining (budget %v)", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("querycaused: drain budget exceeded, canceling in-flight work: %v", err)
		if err := httpSrv.Close(); err != nil {
			return err
		}
	}
	<-errc
	// The listener is closed and in-flight work has drained; anything
	// still dirty must reach disk before we report a clean exit, or a
	// restart would come up cold (or stale) for those sessions.
	if err := srv.Flush(); err != nil {
		log.Printf("querycaused: snapshot flush failed: %v", err)
		return err
	}
	log.Printf("querycaused: shut down cleanly")
	return nil
}
