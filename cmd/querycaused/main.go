// Command querycaused is the long-running causality-explanation server:
// the engine of Meliou et al. (VLDB 2010) behind a concurrent JSON API
// with a database session registry and certificate/lineage caching, so
// repeated why-so / why-no explanations skip re-parsing, re-lineage,
// and re-classification.
//
// Usage:
//
//	querycaused [-addr :8347] [-max-sessions 64] [-session-ttl 30m]
//	            [-worker-budget N] [-parallel N] [-request-timeout 30s]
//
// Endpoints (see internal/server for the full API):
//
//	POST /v1/databases                upload a database (parser format)
//	POST /v1/databases/{db}/queries   prepare a query (classify + rewrite once)
//	POST /v1/databases/{db}/queries/{q}/whyso | whyno
//	POST /v1/databases/{db}/batch     ExplainAll over one session
//	GET  /healthz, GET /v1/stats
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight explains drain through context cancellation, and the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/querycause/querycause/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		maxSessions  = flag.Int("max-sessions", 64, "max registered databases; adding beyond evicts the LRU session")
		sessionTTL   = flag.Duration("session-ttl", 30*time.Minute, "idle session lifetime before eviction")
		certCache    = flag.Int("cert-cache", 256, "per-session certificate cache entries")
		engineCache  = flag.Int("engine-cache", 1024, "per-session engine (lineage) cache entries")
		workerBudget = flag.Int("worker-budget", 0, "max concurrently computing explain requests (0 = 2*GOMAXPROCS)")
		parallel     = flag.Int("parallel", 1, "ranking workers per admitted request (0 = GOMAXPROCS)")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request timeout, admission queueing included")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain budget before in-flight work is canceled")
	)
	flag.Parse()
	if err := run(*addr, server.Config{
		MaxSessions:     *maxSessions,
		SessionTTL:      *sessionTTL,
		CertCacheSize:   *certCache,
		EngineCacheSize: *engineCache,
		WorkerBudget:    *workerBudget,
		Parallelism:     *parallel,
		RequestTimeout:  *reqTimeout,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "querycaused:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg server.Config, drainTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := server.New(cfg)
	defer srv.Close()
	httpSrv := &http.Server{
		Addr:    addr,
		Handler: srv.Handler(),
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("querycaused: listening on %s", addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight explains finish
	// within the budget, then hard-close (which cancels their request
	// contexts — the engine's cancellation plumbing aborts mid-batch).
	log.Printf("querycaused: signal received, draining (budget %v)", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("querycaused: drain budget exceeded, canceling in-flight work: %v", err)
		if err := httpSrv.Close(); err != nil {
			return err
		}
	}
	<-errc
	log.Printf("querycaused: shut down cleanly")
	return nil
}
