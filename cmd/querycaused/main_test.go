package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/querycause/querycause/internal/persist"
	"github.com/querycause/querycause/internal/server"
)

// freePort reserves an ephemeral port and releases it for the server.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestGracefulShutdown boots the real server loop, waits for liveness,
// sends SIGTERM to the process, and expects a clean (nil-error, i.e.
// exit 0) drain within the shutdown budget.
func TestGracefulShutdown(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run(addr, server.Config{}, 10*time.Second)
	}()

	// Wait for liveness.
	url := fmt.Sprintf("http://%s/healthz", addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A session survives until shutdown: prove the server was actually
	// serving, not just listening.
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/databases", addr), "text/plain",
		strings.NewReader("+R(a,b)\n+S(b)\n"))
	if err != nil || resp.StatusCode != 201 {
		t.Fatalf("upload: %v %v", err, resp)
	}
	resp.Body.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; want nil (exit 0)", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down within the drain budget")
	}

	// The listener must actually be gone.
	if _, err := http.Get(url); err == nil {
		t.Error("healthz still answering after shutdown")
	}
}

// TestShutdownFlushesSnapshots: with background flushing disabled
// (persist-interval < 0), the only thing standing between a dirty
// session and data loss is the drain-time flush. SIGTERM must leave a
// complete, reloadable snapshot dir behind before run returns nil.
func TestShutdownFlushesSnapshots(t *testing.T) {
	st, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run(addr, server.Config{Persist: st, PersistInterval: -1}, 10*time.Second)
	}()

	base := fmt.Sprintf("http://%s", addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Upload a database and prepare a query — both dirty the session.
	resp, err := http.Post(base+"/v1/databases", "text/plain",
		strings.NewReader("+R(a4,a3)\n+S(a3)\n+S(a2)\n+R(a5,a2)\n"))
	if err != nil || resp.StatusCode != 201 {
		t.Fatalf("upload: %v %v", err, resp)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decoding upload response: %v", err)
	}
	resp.Body.Close()
	resp, err = http.Post(base+"/v1/databases/"+info.ID+"/queries", "application/json",
		strings.NewReader(`{"query": "q(x) :- R(x,y), S(y)"}`))
	if err != nil || resp.StatusCode != 201 {
		t.Fatalf("prepare: %v %v", err, resp)
	}
	resp.Body.Close()

	// Nothing may have hit disk yet — the background flusher is off.
	if st.Exists(info.ID) {
		t.Fatalf("snapshot written before shutdown with background flushing disabled")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; want nil (exit 0)", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down within the drain budget")
	}

	// The snapshot dir is complete and reloadable: a fresh server over
	// the same store comes up warm with the session and its query.
	if !st.Exists(info.ID) {
		t.Fatalf("drain did not flush session %s to disk", info.ID)
	}
	srv2 := server.New(server.Config{Persist: st, PersistInterval: -1, ReapInterval: -1})
	defer srv2.Close()
	if got := srv2.Restored(); got != 1 {
		t.Fatalf("fresh server restored %d sessions, want 1", got)
	}
}
