package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/querycause/querycause/internal/server"
)

// freePort reserves an ephemeral port and releases it for the server.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestGracefulShutdown boots the real server loop, waits for liveness,
// sends SIGTERM to the process, and expects a clean (nil-error, i.e.
// exit 0) drain within the shutdown budget.
func TestGracefulShutdown(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run(addr, server.Config{}, 10*time.Second)
	}()

	// Wait for liveness.
	url := fmt.Sprintf("http://%s/healthz", addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A session survives until shutdown: prove the server was actually
	// serving, not just listening.
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/databases", addr), "text/plain",
		strings.NewReader("+R(a,b)\n+S(b)\n"))
	if err != nil || resp.StatusCode != 201 {
		t.Fatalf("upload: %v %v", err, resp)
	}
	resp.Body.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; want nil (exit 0)", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down within the drain budget")
	}

	// The listener must actually be gone.
	if _, err := http.Get(url); err == nil {
		t.Error("healthz still answering after shutdown")
	}
}
