package querycause

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/server"
)

// Wire types of the querycaused HTTP API (see internal/server and
// cmd/querycaused). The client and server share these definitions.
type (
	// DatabaseInfo describes one registered database session.
	DatabaseInfo = server.DatabaseInfo
	// PrepareQueryResponse describes a prepared (parsed + classified +
	// rewritten) query.
	PrepareQueryResponse = server.PrepareQueryResponse
	// ExplainRequest asks why an answer is (why-so) or is not (why-no)
	// returned.
	ExplainRequest = server.ExplainRequest
	// ExplainResponse is the ranking for one answer or non-answer.
	ExplainResponse = server.ExplainResponse
	// ExplanationDTO is one ranked cause on the wire.
	ExplanationDTO = server.ExplanationDTO
	// BatchExplainRequest explains many answers/non-answers in one call.
	BatchExplainRequest = server.BatchExplainRequest
	// BatchItem is one request of a batch.
	BatchItem = server.BatchItem
	// BatchExplainResponse carries per-item batch results.
	BatchExplainResponse = server.BatchExplainResponse
	// BatchItemResult is the outcome of one batch item.
	BatchItemResult = server.BatchItemResult
	// ServerStats is the /v1/stats payload.
	ServerStats = server.StatsResponse
)

// Client is a thin Go client for a querycaused server.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://localhost:8347"). httpClient may be nil for
// http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// APIError is a non-2xx server response.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("querycaused: %d: %s", e.StatusCode, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr server.ErrorResponse
		msg := ""
		if raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20)); err == nil {
			if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
				msg = apiErr.Error
			} else {
				msg = strings.TrimSpace(string(raw))
			}
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// UploadDatabase registers a database given in the parser's textual
// format and returns its session handle.
func (c *Client) UploadDatabase(ctx context.Context, text string) (DatabaseInfo, error) {
	var out DatabaseInfo
	err := c.do(ctx, http.MethodPost, "/v1/databases", server.CreateDatabaseRequest{Database: text}, &out)
	return out, err
}

// UploadDB registers an in-memory database (serialized with the
// parser's format) and returns its session handle. It fails without a
// request if the database holds values the textual format cannot
// represent (see FormatDatabase).
func (c *Client) UploadDB(ctx context.Context, db *Database) (DatabaseInfo, error) {
	text, err := parser.FormatDatabase(db)
	if err != nil {
		return DatabaseInfo{}, err
	}
	return c.UploadDatabase(ctx, text)
}

// ListDatabases lists the live sessions.
func (c *Client) ListDatabases(ctx context.Context) ([]DatabaseInfo, error) {
	var out []DatabaseInfo
	err := c.do(ctx, http.MethodGet, "/v1/databases", nil, &out)
	return out, err
}

// DropDatabase drops a session explicitly.
func (c *Client) DropDatabase(ctx context.Context, dbID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/databases/"+dbID, nil, nil)
}

// PrepareQuery parses, classifies, and rewrites a query once; later
// explains against its id skip straight to responsibility ranking.
func (c *Client) PrepareQuery(ctx context.Context, dbID, query string) (PrepareQueryResponse, error) {
	var out PrepareQueryResponse
	err := c.do(ctx, http.MethodPost, "/v1/databases/"+dbID+"/queries",
		server.PrepareQueryRequest{Query: query}, &out)
	return out, err
}

// WhySo explains why the answer is returned, against a prepared query
// (queryID != "") or an inline req.Query.
func (c *Client) WhySo(ctx context.Context, dbID, queryID string, req ExplainRequest) (ExplainResponse, error) {
	return c.explain(ctx, dbID, queryID, "whyso", req)
}

// WhyNo explains why the answer is NOT returned.
func (c *Client) WhyNo(ctx context.Context, dbID, queryID string, req ExplainRequest) (ExplainResponse, error) {
	return c.explain(ctx, dbID, queryID, "whyno", req)
}

func (c *Client) explain(ctx context.Context, dbID, queryID, kind string, req ExplainRequest) (ExplainResponse, error) {
	path := "/v1/databases/" + dbID + "/" + kind
	if queryID != "" {
		path = "/v1/databases/" + dbID + "/queries/" + queryID + "/" + kind
	}
	var out ExplainResponse
	err := c.do(ctx, http.MethodPost, path, req, &out)
	return out, err
}

// Batch explains many answers/non-answers in one call.
func (c *Client) Batch(ctx context.Context, dbID string, req BatchExplainRequest) (BatchExplainResponse, error) {
	var out BatchExplainResponse
	err := c.do(ctx, http.MethodPost, "/v1/databases/"+dbID+"/batch", req, &out)
	return out, err
}

// Stats fetches the server's cache and admission counters.
func (c *Client) Stats(ctx context.Context) (ServerStats, error) {
	var out ServerStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// FormatDatabase renders db in the textual format ParseDatabase reads
// (and UploadDatabase accepts). It errors on values the line-oriented
// format cannot represent (line breaks, or both quote characters).
func FormatDatabase(db *Database) (string, error) { return parser.FormatDatabase(db) }
