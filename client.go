package querycause

import (
	"bufio"
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/qerr"
	"github.com/querycause/querycause/internal/server"
)

// Wire types of the querycaused HTTP API (see internal/server and
// cmd/querycaused). The client and server share these definitions.
type (
	// DatabaseInfo describes one registered database session.
	DatabaseInfo = server.DatabaseInfo
	// PrepareQueryResponse describes a prepared (parsed + classified +
	// rewritten) query.
	PrepareQueryResponse = server.PrepareQueryResponse
	// ExplainRequest asks why an answer is (why-so) or is not (why-no)
	// returned.
	ExplainRequest = server.ExplainRequest
	// ExplainResponse is the ranking for one answer or non-answer.
	ExplainResponse = server.ExplainResponse
	// ExplanationDTO is one ranked cause on the wire.
	ExplanationDTO = server.ExplanationDTO
	// BatchExplainRequest explains many answers/non-answers in one call.
	BatchExplainRequest = server.BatchExplainRequest
	// BatchItem is one request of a batch.
	BatchItem = server.BatchItem
	// BatchExplainResponse carries per-item batch results.
	BatchExplainResponse = server.BatchExplainResponse
	// BatchItemResult is the outcome of one batch item.
	BatchItemResult = server.BatchItemResult
	// ServerStats is the /v1/stats payload.
	ServerStats = server.StatsResponse
	// CausesRequest asks for the actual causes of one (non-)answer
	// without ranking them.
	CausesRequest = server.CausesRequest
	// CausesResponse lists the causes as tuple ids.
	CausesResponse = server.CausesResponse
	// StreamExplainRequest asks for an NDJSON streamed ranking.
	StreamExplainRequest = server.StreamExplainRequest
	// StreamEvent is one NDJSON line of a streamed ranking.
	StreamEvent = server.StreamEvent
	// StreamDone is the terminal event of a successful stream.
	StreamDone = server.StreamDone
	// ClusterInfo is the /v1/cluster topology payload: the answering
	// node's identity, the full peer list, and the topology epoch.
	ClusterInfo = server.ClusterResponse
	// ClusterChange reports the outcome of a membership change: the
	// installed topology and how far it propagated.
	ClusterChange = server.ClusterChangeResponse
	// TupleSpec describes one tuple to insert into a session database.
	TupleSpec = server.TupleSpec
	// MutateResponse reports the session state after a tuple insert or
	// delete: the new mutation version, the live tuple count, assigned
	// ids, and how much cached explanation state the mutation dropped.
	MutateResponse = server.MutateResponse
	// WatchRequest subscribes to live diff frames for one explanation.
	WatchRequest = server.WatchRequest
	// DiffEvent is one frame of a watch stream: a snapshot, a diff
	// (causes added/removed, ranks changed), a full_resync, or an
	// in-band error. See the type's protocol documentation for the
	// replay contract.
	DiffEvent = server.WatchEvent
	// RankChange reports one cause whose explanation changed in a diff
	// frame.
	RankChange = server.RankChangeDTO
)

// Client is a thin Go client for a querycaused server. It is safe for
// concurrent use; the base URL it talks to may move at runtime (a
// cluster redirect under a newer topology epoch re-pins it, and
// SetFallbacks arms failover to peer nodes when the pinned node stops
// answering).
type Client struct {
	http    *http.Client
	retries int

	// mu guards the routing state below: the pinned base URL, the
	// highest topology epoch observed on responses, and the failover
	// rotation through fallback bases.
	mu        sync.Mutex
	base      string
	epoch     uint64
	fallbacks []string
	fbIdx     int
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://localhost:8347"). httpClient may be nil for
// http.DefaultClient.
//
// Idempotent requests — GETs, DELETEs, and mutations carrying an
// Idempotency-Key (InsertTuples and DeleteTuple generate one) — are
// retried up to two extra times on transport errors and transient
// statuses (429, 502, 503, 504), with jittered exponential backoff; a
// server-sent Retry-After header overrides the computed pause.
// Explain-family POSTs are never retried. SetRetries adjusts or
// disables the behaviour.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient, retries: defaultGETRetries}
}

const defaultGETRetries = 2

// retryBackoffBase seeds the jittered exponential backoff (it doubles
// per attempt up to retryBackoffCap); a var so tests can shrink it.
var retryBackoffBase = 50 * time.Millisecond

const retryBackoffCap = 2 * time.Second

// retryDelay computes the pause before retry attempt n (1-based):
// the server's Retry-After when it sent one (capped — a clustered
// server answering 503 mid-handoff knows better than any client-side
// curve), otherwise an exponential step with full jitter in [d/2, d]
// so synchronized clients do not retry in lockstep.
func retryDelay(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return min(retryAfter, retryBackoffCap)
	}
	d := retryBackoffBase << (attempt - 1)
	if d <= 0 || d > retryBackoffCap {
		d = retryBackoffCap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// SetRetries sets how many extra attempts an idempotent request gets
// after a transport error or a transient status (0 disables retries).
// It returns the client for chaining and must not be called
// concurrently with requests.
func (c *Client) SetRetries(n int) *Client {
	if n < 0 {
		n = 0
	}
	c.retries = n
	return c
}

// SetFallbacks arms base-URL failover: when the pinned node stops
// answering (transport error on a retryable request, or a watch
// reconnect), the client rotates to the next fallback and lets the
// cluster's redirect/restore machinery route it onward. Dial wires the
// cluster topology in automatically. It returns the client for
// chaining.
func (c *Client) SetFallbacks(bases []string) *Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fallbacks = nil
	for _, b := range bases {
		if b = strings.TrimRight(b, "/"); b != "" {
			c.fallbacks = append(c.fallbacks, b)
		}
	}
	return c
}

// Base returns the server base URL the client is currently pinned to.
func (c *Client) Base() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base
}

// rotateBase fails over to the next fallback base differing from the
// current one; no-op without fallbacks.
func (c *Client) rotateBase() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for range c.fallbacks {
		c.fbIdx = (c.fbIdx + 1) % len(c.fallbacks)
		if c.fallbacks[c.fbIdx] != c.base {
			c.base = c.fallbacks[c.fbIdx]
			return
		}
	}
}

// maybeRebase re-pins the client after a second redirect in one
// request — the signal that ownership moved under a topology change
// mid-flight. The redirect's X-Cluster-Epoch header guards the switch:
// a target whose epoch is not newer than the one already observed is a
// stale node, not a fresher topology, and the pin stays.
func (c *Client) maybeRebase(loc string, resp *http.Response) {
	u, err := url.Parse(loc)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return
	}
	origin := u.Scheme + "://" + u.Host
	epoch, eerr := strconv.ParseUint(resp.Header.Get(server.EpochHeader), 10, 64)
	c.mu.Lock()
	defer c.mu.Unlock()
	if eerr == nil {
		if epoch <= c.epoch {
			return
		}
		c.epoch = epoch
	}
	c.base = origin
}

// errMessageCap bounds how much of an error body is kept in an
// APIError: bodies are read up to bodyDrainCap (to drain the
// connection) but a misbehaving proxy's megabyte of HTML is useless in
// an error chain.
const errMessageCap = 8 << 10

// bodyDrainCap bounds how much of a response body is read before the
// underlying connection is released: a fully-drained body lets
// net/http reuse the connection, one abandoned with unread bytes
// forces a close. Every drain path (cluster-redirect bodies, non-2xx
// error bodies) shares this one cap, so no path silently keeps a
// tighter limit that would break keep-alive on bodies the other paths
// would have drained.
const bodyDrainCap = 1 << 20

// APIError is a non-2xx server response. Code carries the server's
// machine-readable error code when present; Unwrap resolves it to the
// matching sentinel (ErrSessionNotFound, ErrInvalidWhyNo, …), so
//
//	errors.Is(err, querycause.ErrSessionNotFound)
//
// works on remote failures exactly as on local ones.
type APIError struct {
	StatusCode int
	// Code is the wire error code ("session_not_found", …); empty when
	// the server predates codes or the body was not an ErrorResponse.
	Code    string
	Message string
	// RetryAfter is the server's Retry-After hint (zero when absent):
	// how long to wait before retrying a 429/503. The client's retry
	// loop honors it in place of its own backoff curve.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("querycaused: %d: %s", e.StatusCode, e.Message)
}

// Unwrap exposes the taxonomy sentinel named by Code, or nil for
// unknown/absent codes.
func (e *APIError) Unwrap() error {
	if s := qerr.FromCode(e.Code); s != nil {
		return s
	}
	return nil
}

// retryableStatus reports whether a response status is worth an
// idempotent retry: gateway-style transient failures (502, 503, 504 —
// a clustered server answers 503 for sessions mid-handoff) and 429
// backpressure. Other 4xx and plain 500 are returned to the caller
// as-is.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// newIdempotencyKey mints the dedup key a mutation request carries so
// a retry replays the recorded response instead of applying twice.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a time-based key rather than silently dropping dedup.
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doKeyed(ctx, method, path, in, out, "")
}

// doKeyed is do with an optional Idempotency-Key. Retries apply to
// idempotent requests: GETs, DELETEs, and anything carrying a key
// (the server dedups keyed mutations, so re-sending one is safe even
// when the first attempt applied and only its response was lost).
func (c *Client) doKeyed(ctx context.Context, method, path string, in, out any, idemKey string) error {
	var raw []byte
	if in != nil {
		var err error
		raw, err = json.Marshal(in)
		if err != nil {
			return err
		}
	}
	attempts := 1
	if method == http.MethodGet || method == http.MethodDelete || idemKey != "" {
		attempts += c.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			var retryAfter time.Duration
			var apiErr *APIError
			if errors.As(lastErr, &apiErr) {
				retryAfter = apiErr.RetryAfter
			} else {
				// Transport error: the pinned node may be gone. Fail over to
				// a fallback base (no-op without SetFallbacks) and let the
				// cluster route the retry.
				c.rotateBase()
			}
			select {
			case <-ctx.Done():
				// The caller canceled; cancellation dominates whatever the
				// previous attempt returned, so errors.Is(err,
				// context.Canceled/DeadlineExceeded) holds.
				return ctx.Err()
			case <-time.After(retryDelay(attempt, retryAfter)):
			}
		}
		var retry bool
		retry, lastErr = c.doOnce(ctx, method, path, raw, in != nil, out, idemKey)
		if lastErr == nil || !retry {
			break
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	if lastErr != nil && ctx.Err() == nil && !errors.As(lastErr, new(*APIError)) {
		// The request died on the transport and is being reported to the
		// caller (it was not retryable, or the budget is spent). The
		// pinned node may be gone for good: fail over now so the NEXT
		// request from this client probes a fallback base instead of
		// re-dialing a dead node. The failed request itself is never
		// re-sent — an unkeyed POST must not be duplicated — but a
		// caller-level retry will enter through a live node.
		c.rotateBase()
	}
	return lastErr
}

// maxRedirectHops bounds how many cluster redirects one request
// follows. The common case is zero or one hop (client pinned to the
// wrong node exactly once); more hops mean ownership is moving under
// a topology change mid-flight, which settles within a hop or two —
// the budget absorbs that instead of failing the request, and the
// epoch-guarded rebase (maybeRebase) re-pins the client along the way.
const maxRedirectHops = 4

// doOnce performs one HTTP exchange; retry reports whether the failure
// is transient enough for an idempotent retry. A cluster 307/308 is
// followed without consuming a retry attempt — it is a re-route, not a
// retry. A second redirect in one request re-pins the client to the
// newest topology's owner; exhausting the hop budget is a retryable
// failure (the topology is still converging).
func (c *Client) doOnce(ctx context.Context, method, path string, raw []byte, hasBody bool, out any, idemKey string) (retry bool, err error) {
	url := c.Base() + path
	for hop := 0; ; hop++ {
		var body io.Reader
		if hasBody {
			body = bytes.NewReader(raw)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, body)
		if err != nil {
			return false, err
		}
		if hasBody {
			req.Header.Set("Content-Type", "application/json")
			// net/http would transparently re-POST the body on a 307 (it
			// knows how to rewind a bytes.Reader) under its own 10-hop
			// budget; clearing GetBody surfaces the redirect here so the
			// hop policy above is enforceable.
			req.GetBody = nil
		}
		if idemKey != "" {
			req.Header.Set("Idempotency-Key", idemKey)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return true, err // transport error: retryable for idempotent requests
		}
		if resp.StatusCode == http.StatusTemporaryRedirect || resp.StatusCode == http.StatusPermanentRedirect {
			loc, lerr := redirectTarget(resp)
			if lerr != nil {
				return false, lerr
			}
			if hop >= maxRedirectHops {
				return true, fmt.Errorf("querycaused: redirect loop: %s redirected again (to %s) after %d cluster hops; topology still converging", url, loc, hop)
			}
			if hop > 0 {
				c.maybeRebase(loc, resp)
			}
			url = loc
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return retryableStatus(resp.StatusCode), decodeAPIError(resp)
		}
		if out == nil {
			return false, nil
		}
		return false, json.NewDecoder(resp.Body).Decode(out)
	}
}

// redirectTarget drains a redirect response and resolves its Location
// header against the request URL.
func redirectTarget(resp *http.Response) (string, error) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, bodyDrainCap))
	resp.Body.Close()
	loc, err := resp.Location()
	if err != nil {
		return "", fmt.Errorf("querycaused: %d redirect without a Location header", resp.StatusCode)
	}
	return loc.String(), nil
}

// decodeAPIError turns a non-2xx response into an *APIError. The body
// is read up to bodyDrainCap; an ErrorResponse payload supplies the
// message and code, anything else (plain text, proxy HTML, truncated
// JSON) is kept verbatim, capped at errMessageCap. A Retry-After
// header (delta-seconds or HTTP-date) is parsed into RetryAfter.
func decodeAPIError(resp *http.Response) *APIError {
	apiErr := &APIError{StatusCode: resp.StatusCode, RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, bodyDrainCap))
	if err != nil {
		return apiErr
	}
	var wire server.ErrorResponse
	if json.Unmarshal(raw, &wire) == nil && wire.Error != "" {
		apiErr.Message, apiErr.Code = wire.Error, wire.Code
	} else {
		apiErr.Message = strings.TrimSpace(string(raw))
	}
	if len(apiErr.Message) > errMessageCap {
		apiErr.Message = apiErr.Message[:errMessageCap] + "…(truncated)"
	}
	return apiErr
}

// parseRetryAfter reads a Retry-After header value: integer
// delta-seconds, or an HTTP-date resolved against the local clock.
// Absent, malformed, or already-elapsed values are zero.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// UploadDatabase registers a database given in the parser's textual
// format and returns its session handle.
func (c *Client) UploadDatabase(ctx context.Context, text string) (DatabaseInfo, error) {
	var out DatabaseInfo
	err := c.do(ctx, http.MethodPost, "/v1/databases", server.CreateDatabaseRequest{Database: text}, &out)
	return out, err
}

// UploadDB registers an in-memory database (serialized with the
// parser's format) and returns its session handle. It fails without a
// request if the database holds values the textual format cannot
// represent (see FormatDatabase).
func (c *Client) UploadDB(ctx context.Context, db *Database) (DatabaseInfo, error) {
	text, err := parser.FormatDatabase(db)
	if err != nil {
		return DatabaseInfo{}, err
	}
	return c.UploadDatabase(ctx, text)
}

// ListDatabases lists the live sessions.
func (c *Client) ListDatabases(ctx context.Context) ([]DatabaseInfo, error) {
	var out []DatabaseInfo
	err := c.do(ctx, http.MethodGet, "/v1/databases", nil, &out)
	return out, err
}

// DropDatabase drops a session explicitly.
func (c *Client) DropDatabase(ctx context.Context, dbID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/databases/"+dbID, nil, nil)
}

// PrepareQuery parses, classifies, and rewrites a query once; later
// explains against its id skip straight to responsibility ranking.
func (c *Client) PrepareQuery(ctx context.Context, dbID, query string) (PrepareQueryResponse, error) {
	var out PrepareQueryResponse
	err := c.do(ctx, http.MethodPost, "/v1/databases/"+dbID+"/queries",
		server.PrepareQueryRequest{Query: query}, &out)
	return out, err
}

// InsertTuples appends a batch of tuples to a session database. The
// batch is atomic: the server validates every tuple before applying
// any, so an error means the database is unchanged. The response
// carries the server-assigned tuple ids (in request order) and the new
// mutation version; cached explanation state the mutation cannot
// affect stays warm on the server.
//
// The request carries a generated Idempotency-Key, so it is safely
// retried: if the first attempt applied and only its response was
// lost, the retry replays the recorded response instead of inserting
// twice.
func (c *Client) InsertTuples(ctx context.Context, dbID string, tuples []TupleSpec) (MutateResponse, error) {
	var out MutateResponse
	err := c.doKeyed(ctx, http.MethodPost, "/v1/databases/"+dbID+"/tuples",
		server.InsertTuplesRequest{Tuples: tuples}, &out, newIdempotencyKey())
	return out, err
}

// DeleteTuple removes one tuple by id. Deleting an unknown or
// already-deleted id fails with ErrTupleNotFound; ids are never
// reused. The request carries a generated Idempotency-Key so a retry
// that races its own first attempt replays the recorded response
// instead of failing with ErrTupleNotFound.
func (c *Client) DeleteTuple(ctx context.Context, dbID string, tupleID int) (MutateResponse, error) {
	var out MutateResponse
	err := c.doKeyed(ctx, http.MethodDelete, fmt.Sprintf("/v1/databases/%s/tuples/%d", dbID, tupleID), nil, &out, newIdempotencyKey())
	return out, err
}

// WhySo explains why the answer is returned, against a prepared query
// (queryID != "") or an inline req.Query.
func (c *Client) WhySo(ctx context.Context, dbID, queryID string, req ExplainRequest) (ExplainResponse, error) {
	return c.explain(ctx, dbID, queryID, "whyso", req)
}

// WhyNo explains why the answer is NOT returned.
func (c *Client) WhyNo(ctx context.Context, dbID, queryID string, req ExplainRequest) (ExplainResponse, error) {
	return c.explain(ctx, dbID, queryID, "whyno", req)
}

func (c *Client) explain(ctx context.Context, dbID, queryID, kind string, req ExplainRequest) (ExplainResponse, error) {
	path := "/v1/databases/" + dbID + "/" + kind
	if queryID != "" {
		path = "/v1/databases/" + dbID + "/queries/" + queryID + "/" + kind
	}
	var out ExplainResponse
	err := c.do(ctx, http.MethodPost, path, req, &out)
	return out, err
}

// Batch explains many answers/non-answers in one call.
func (c *Client) Batch(ctx context.Context, dbID string, req BatchExplainRequest) (BatchExplainResponse, error) {
	var out BatchExplainResponse
	err := c.do(ctx, http.MethodPost, "/v1/databases/"+dbID+"/batch", req, &out)
	return out, err
}

// Causes lists the actual causes (Theorem 3.2) of one answer or
// non-answer without ranking them; the server caches the engine it
// builds, so a following explain or stream is warm.
func (c *Client) Causes(ctx context.Context, dbID string, req CausesRequest) (CausesResponse, error) {
	var out CausesResponse
	err := c.do(ctx, http.MethodPost, "/v1/databases/"+dbID+"/causes", req, &out)
	return out, err
}

// ExplainStream requests a streamed ranking and returns an iterator
// over its explanation events: one ExplanationDTO per cause as its
// responsibility computation completes on the server, ending after a
// terminal done event or with a single non-nil error (rehydrated to
// the taxonomy sentinel when the server sent a code). The sequence is
// single-use; breaking out of the range closes the response body,
// which cancels the server-side computation.
func (c *Client) ExplainStream(ctx context.Context, dbID string, sreq StreamExplainRequest) iter.Seq2[ExplanationDTO, error] {
	return func(yield func(ExplanationDTO, error) bool) {
		raw, err := json.Marshal(sreq)
		if err != nil {
			yield(ExplanationDTO{}, err)
			return
		}
		resp, err := c.openStream(ctx, "/v1/databases/"+dbID+"/explain/stream", raw)
		if err != nil {
			yield(ExplanationDTO{}, err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			yield(ExplanationDTO{}, decodeAPIError(resp))
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 16<<20)
		sawTerminal := false
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var ev StreamEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				yield(ExplanationDTO{}, fmt.Errorf("querycaused: malformed stream event: %w", err))
				return
			}
			switch {
			case ev.Explanation != nil:
				if !yield(*ev.Explanation, nil) {
					return
				}
			case ev.Error != nil:
				yield(ExplanationDTO{}, rehydrate(ev.Error))
				return
			case ev.Done != nil:
				sawTerminal = true
			}
		}
		if err := sc.Err(); err != nil {
			yield(ExplanationDTO{}, err)
			return
		}
		if !sawTerminal {
			yield(ExplanationDTO{}, fmt.Errorf("querycaused: stream ended without a terminal event"))
		}
	}
}

// openStream POSTs raw JSON to path (resolved against the current
// base) and returns the (streaming) response, following cluster
// redirects under the same hop policy as doOnce. The caller owns the
// response body.
func (c *Client) openStream(ctx context.Context, path string, raw []byte) (*http.Response, error) {
	url := c.Base() + path
	for hop := 0; ; hop++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.GetBody = nil // same cluster redirect hop policy as doOnce
		resp, err := c.http.Do(req)
		if err != nil {
			if ctx.Err() == nil && hop == 0 {
				// Same failover-on-transport-error policy as doKeyed: the
				// stream is not re-sent, but the next open from this
				// client enters through a fallback base.
				c.rotateBase()
			}
			return nil, err
		}
		if resp.StatusCode == http.StatusTemporaryRedirect || resp.StatusCode == http.StatusPermanentRedirect {
			loc, err := redirectTarget(resp)
			if err != nil {
				return nil, err
			}
			if hop >= maxRedirectHops {
				return nil, fmt.Errorf("querycaused: redirect loop: %s redirected again (to %s) after %d cluster hops; topology still converging", url, loc, hop)
			}
			if hop > 0 {
				c.maybeRebase(loc, resp)
			}
			url = loc
			continue
		}
		return resp, nil
	}
}

// watchMaxFailures caps consecutive failed reconnect attempts before
// a watch gives up and surfaces the last error. Any delivered frame
// resets the counter, so a long-lived watch survives any number of
// isolated interruptions.
const watchMaxFailures = 8

// WatchStream subscribes to the live explanation of one answer or
// non-answer (POST /v1/databases/{db}/watch) and returns an iterator
// over its DiffEvent frames: first a snapshot of the current ranking,
// then exactly one frame per mutation request against the session — a
// diff when the mutation can affect the watched query, an empty
// version-bump otherwise. Frames with Type "error" report a re-rank
// failure in-band (the subscription stays open and recovers with a
// full_resync), so they arrive as events with a nil iteration error.
//
// The watch is resumable: when the transport fails or the server
// closes the stream (a node died, or the session moved during a
// handoff), the client reconnects with jittered exponential backoff —
// honoring a server-sent Retry-After — and asks to resume from the
// last delivered version. The server replays the missed diff frames
// when its buffer still covers them, so the resumed stream continues
// the diff chain gaplessly; otherwise the first frame after a
// reconnect is a full_resync snapshot to fold in place of the chain.
// Reconnects rotate through SetFallbacks bases, so a watch survives
// the death of the very node it was streaming from.
//
// The sequence is single-use; breaking out of the range closes the
// subscription. A watch has no terminal event — the sequence ends
// with a non-nil error when the context is canceled, the server
// rejects the subscription outright (a non-retryable status), or
// watchMaxFailures consecutive reconnect attempts fail.
func (c *Client) WatchStream(ctx context.Context, dbID string, wreq WatchRequest) iter.Seq2[DiffEvent, error] {
	return func(yield func(DiffEvent, error) bool) {
		lastVersion := wreq.ResumeFrom
		failures := 0
		var lastErr error
		for {
			if failures > 0 {
				var retryAfter time.Duration
				var apiErr *APIError
				if errors.As(lastErr, &apiErr) {
					retryAfter = apiErr.RetryAfter
				} else {
					c.rotateBase() // transport error: the pinned node may be gone
				}
				select {
				case <-ctx.Done():
					yield(DiffEvent{}, ctx.Err())
					return
				case <-time.After(retryDelay(failures, retryAfter)):
				}
			}
			wreq.ResumeFrom = lastVersion
			delivered, done, err := c.watchOnce(ctx, dbID, wreq, &lastVersion, yield)
			if done {
				return // consumer broke out, or a terminal error was yielded
			}
			if delivered {
				failures = 0
			}
			failures++
			lastErr = err
			if ctx.Err() != nil {
				yield(DiffEvent{}, ctx.Err())
				return
			}
			var apiErr *APIError
			if errors.As(err, &apiErr) && !retryableStatus(apiErr.StatusCode) {
				yield(DiffEvent{}, err) // e.g. session dropped: reconnecting cannot help
				return
			}
			if failures >= watchMaxFailures {
				yield(DiffEvent{}, fmt.Errorf("querycaused: watch failed after %d reconnect attempts: %w", failures, err))
				return
			}
		}
	}
}

// watchOnce runs one watch connection: subscribe, deliver frames,
// track the last delivered version. done means the iteration is over
// (the consumer broke out or a terminal error was yielded); otherwise
// err says why the connection ended and the caller decides whether to
// reconnect. delivered reports whether any frame arrived, which
// resets the caller's failure counter.
func (c *Client) watchOnce(ctx context.Context, dbID string, wreq WatchRequest, lastVersion *uint64, yield func(DiffEvent, error) bool) (delivered, done bool, err error) {
	raw, err := json.Marshal(wreq)
	if err != nil {
		yield(DiffEvent{}, err)
		return false, true, nil
	}
	resp, err := c.openStream(ctx, "/v1/databases/"+dbID+"/watch", raw)
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return false, false, decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev DiffEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// A malformed frame means the connection truncated mid-line or
			// the stream is corrupt; reconnect and resume rather than fail.
			return delivered, false, fmt.Errorf("querycaused: malformed watch frame: %w", err)
		}
		if !yield(ev, nil) {
			return delivered, true, nil
		}
		delivered = true
		if ev.Version > *lastVersion {
			*lastVersion = ev.Version
		}
	}
	if err := sc.Err(); err != nil {
		return delivered, false, err
	}
	return delivered, false, fmt.Errorf("querycaused: watch stream closed by the server")
}

// rehydrate turns a wire ErrorResponse into an error that matches the
// taxonomy sentinel named by its code under errors.Is, with the
// original message preserved.
func rehydrate(wire *server.ErrorResponse) error {
	err := errors.New(wire.Error)
	if s := qerr.FromCode(wire.Code); s != nil {
		return qerr.Tag(s, err)
	}
	return err
}

// Cluster fetches the server's topology. A non-clustered server
// answers 200 with an empty ClusterInfo, so callers can probe
// unconditionally; Dial uses this to pick the upload node itself and
// avoid ever being redirected.
func (c *Client) Cluster(ctx context.Context) (ClusterInfo, error) {
	var out ClusterInfo
	err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &out)
	return out, err
}

// JoinNode adds a node (by its advertised base URL) to the cluster the
// client is pinned to. The receiving node mints the next topology
// epoch, propagates it to every member including the joiner, and
// rebalances sessions in the background; propagation is best-effort
// and reported in the response. Joining is an admin operation and is
// not retried automatically.
func (c *Client) JoinNode(ctx context.Context, nodeURL string) (ClusterChange, error) {
	var out ClusterChange
	err := c.do(ctx, http.MethodPost, "/v1/cluster/nodes", server.ClusterNodeRequest{URL: nodeURL}, &out)
	return out, err
}

// RemoveNode removes a node from the cluster. The removed node is
// still told about the new topology (best-effort) so it stops serving
// sessions it no longer owns and hands them to their new owners; wait
// for its session count to drain before shutting it down.
func (c *Client) RemoveNode(ctx context.Context, nodeURL string) (ClusterChange, error) {
	var out ClusterChange
	err := c.do(ctx, http.MethodDelete, "/v1/cluster/nodes?url="+url.QueryEscape(nodeURL), nil, &out)
	return out, err
}

// Stats fetches the server's cache and admission counters.
func (c *Client) Stats(ctx context.Context) (ServerStats, error) {
	var out ServerStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// FormatDatabase renders db in the textual format ParseDatabase reads
// (and UploadDatabase accepts). It errors on values the line-oriented
// format cannot represent (line breaks, or both quote characters).
func FormatDatabase(db *Database) (string, error) { return parser.FormatDatabase(db) }
