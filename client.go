package querycause

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"strings"
	"time"

	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/qerr"
	"github.com/querycause/querycause/internal/server"
)

// Wire types of the querycaused HTTP API (see internal/server and
// cmd/querycaused). The client and server share these definitions.
type (
	// DatabaseInfo describes one registered database session.
	DatabaseInfo = server.DatabaseInfo
	// PrepareQueryResponse describes a prepared (parsed + classified +
	// rewritten) query.
	PrepareQueryResponse = server.PrepareQueryResponse
	// ExplainRequest asks why an answer is (why-so) or is not (why-no)
	// returned.
	ExplainRequest = server.ExplainRequest
	// ExplainResponse is the ranking for one answer or non-answer.
	ExplainResponse = server.ExplainResponse
	// ExplanationDTO is one ranked cause on the wire.
	ExplanationDTO = server.ExplanationDTO
	// BatchExplainRequest explains many answers/non-answers in one call.
	BatchExplainRequest = server.BatchExplainRequest
	// BatchItem is one request of a batch.
	BatchItem = server.BatchItem
	// BatchExplainResponse carries per-item batch results.
	BatchExplainResponse = server.BatchExplainResponse
	// BatchItemResult is the outcome of one batch item.
	BatchItemResult = server.BatchItemResult
	// ServerStats is the /v1/stats payload.
	ServerStats = server.StatsResponse
	// CausesRequest asks for the actual causes of one (non-)answer
	// without ranking them.
	CausesRequest = server.CausesRequest
	// CausesResponse lists the causes as tuple ids.
	CausesResponse = server.CausesResponse
	// StreamExplainRequest asks for an NDJSON streamed ranking.
	StreamExplainRequest = server.StreamExplainRequest
	// StreamEvent is one NDJSON line of a streamed ranking.
	StreamEvent = server.StreamEvent
	// StreamDone is the terminal event of a successful stream.
	StreamDone = server.StreamDone
	// ClusterInfo is the /v1/cluster topology payload: the answering
	// node's identity and the full static peer list.
	ClusterInfo = server.ClusterResponse
	// TupleSpec describes one tuple to insert into a session database.
	TupleSpec = server.TupleSpec
	// MutateResponse reports the session state after a tuple insert or
	// delete: the new mutation version, the live tuple count, assigned
	// ids, and how much cached explanation state the mutation dropped.
	MutateResponse = server.MutateResponse
	// WatchRequest subscribes to live diff frames for one explanation.
	WatchRequest = server.WatchRequest
	// DiffEvent is one frame of a watch stream: a snapshot, a diff
	// (causes added/removed, ranks changed), a full_resync, or an
	// in-band error. See the type's protocol documentation for the
	// replay contract.
	DiffEvent = server.WatchEvent
	// RankChange reports one cause whose explanation changed in a diff
	// frame.
	RankChange = server.RankChangeDTO
)

// Client is a thin Go client for a querycaused server.
type Client struct {
	base    string
	http    *http.Client
	retries int
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://localhost:8347"). httpClient may be nil for
// http.DefaultClient.
//
// Idempotent GETs (health, stats, session listings) are retried up to
// two extra times on transport errors and gateway-style statuses (502,
// 503, 504) with a short flat backoff — no Retry-After parsing.
// Non-GET requests are never retried. SetRetries adjusts or disables
// the behaviour.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient, retries: defaultGETRetries}
}

const defaultGETRetries = 2

// getRetryBackoff is flat and short: these are in-datacenter health
// and stats probes, not user-facing calls worth an exponential wait.
var getRetryBackoff = 50 * time.Millisecond

// SetRetries sets how many extra attempts an idempotent GET gets after
// a transport error or a 502/503/504 (0 disables retries). It returns
// the client for chaining and must not be called concurrently with
// requests.
func (c *Client) SetRetries(n int) *Client {
	if n < 0 {
		n = 0
	}
	c.retries = n
	return c
}

// errMessageCap bounds how much of an error body is kept in an
// APIError: bodies are read up to bodyDrainCap (to drain the
// connection) but a misbehaving proxy's megabyte of HTML is useless in
// an error chain.
const errMessageCap = 8 << 10

// bodyDrainCap bounds how much of a response body is read before the
// underlying connection is released: a fully-drained body lets
// net/http reuse the connection, one abandoned with unread bytes
// forces a close. Every drain path (cluster-redirect bodies, non-2xx
// error bodies) shares this one cap, so no path silently keeps a
// tighter limit that would break keep-alive on bodies the other paths
// would have drained.
const bodyDrainCap = 1 << 20

// APIError is a non-2xx server response. Code carries the server's
// machine-readable error code when present; Unwrap resolves it to the
// matching sentinel (ErrSessionNotFound, ErrInvalidWhyNo, …), so
//
//	errors.Is(err, querycause.ErrSessionNotFound)
//
// works on remote failures exactly as on local ones.
type APIError struct {
	StatusCode int
	// Code is the wire error code ("session_not_found", …); empty when
	// the server predates codes or the body was not an ErrorResponse.
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("querycaused: %d: %s", e.StatusCode, e.Message)
}

// Unwrap exposes the taxonomy sentinel named by Code, or nil for
// unknown/absent codes.
func (e *APIError) Unwrap() error {
	if s := qerr.FromCode(e.Code); s != nil {
		return s
	}
	return nil
}

// retryableGET reports whether a GET response status is worth a
// retry: gateway-style transient failures only. 4xx (including 429)
// and plain 500 are returned to the caller as-is.
func retryableGET(status int) bool {
	return status == http.StatusBadGateway || status == http.StatusServiceUnavailable || status == http.StatusGatewayTimeout
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var raw []byte
	if in != nil {
		var err error
		raw, err = json.Marshal(in)
		if err != nil {
			return err
		}
	}
	attempts := 1
	if method == http.MethodGet {
		attempts += c.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				// The caller canceled; cancellation dominates whatever the
				// previous attempt returned, so errors.Is(err,
				// context.Canceled/DeadlineExceeded) holds.
				return ctx.Err()
			case <-time.After(getRetryBackoff):
			}
		}
		var retry bool
		retry, lastErr = c.doOnce(ctx, method, path, raw, in != nil, out)
		if lastErr == nil || !retry {
			return lastErr
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return lastErr
}

// doOnce performs one HTTP exchange; retry reports whether the failure
// is transient enough for an idempotent retry. A cluster 307/308 is
// followed exactly once — it is a re-route, not a retry, so it does
// not consume a retry attempt — and a second redirect is an error
// (the topology the first hop was based on no longer holds, or two
// nodes disagree about ownership).
func (c *Client) doOnce(ctx context.Context, method, path string, raw []byte, hasBody bool, out any) (retry bool, err error) {
	url := c.base + path
	for hop := 0; ; hop++ {
		var body io.Reader
		if hasBody {
			body = bytes.NewReader(raw)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, body)
		if err != nil {
			return false, err
		}
		if hasBody {
			req.Header.Set("Content-Type", "application/json")
			// net/http would transparently re-POST the body on a 307 (it
			// knows how to rewind a bytes.Reader) under its own 10-hop
			// budget; clearing GetBody surfaces the redirect here so the
			// one-hop/loop policy above is enforceable.
			req.GetBody = nil
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return true, err // transport error: retryable for GETs
		}
		if resp.StatusCode == http.StatusTemporaryRedirect || resp.StatusCode == http.StatusPermanentRedirect {
			loc, err := redirectTarget(resp)
			if err != nil {
				return false, err
			}
			if hop > 0 {
				return false, fmt.Errorf("querycaused: redirect loop: %s redirected again (to %s) after one cluster hop; refresh the topology and re-dial", url, loc)
			}
			url = loc
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return retryableGET(resp.StatusCode), decodeAPIError(resp)
		}
		if out == nil {
			return false, nil
		}
		return false, json.NewDecoder(resp.Body).Decode(out)
	}
}

// redirectTarget drains a redirect response and resolves its Location
// header against the request URL.
func redirectTarget(resp *http.Response) (string, error) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, bodyDrainCap))
	resp.Body.Close()
	loc, err := resp.Location()
	if err != nil {
		return "", fmt.Errorf("querycaused: %d redirect without a Location header", resp.StatusCode)
	}
	return loc.String(), nil
}

// decodeAPIError turns a non-2xx response into an *APIError. The body
// is read up to bodyDrainCap; an ErrorResponse payload supplies the
// message and code, anything else (plain text, proxy HTML, truncated
// JSON) is kept verbatim, capped at errMessageCap.
func decodeAPIError(resp *http.Response) *APIError {
	apiErr := &APIError{StatusCode: resp.StatusCode}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, bodyDrainCap))
	if err != nil {
		return apiErr
	}
	var wire server.ErrorResponse
	if json.Unmarshal(raw, &wire) == nil && wire.Error != "" {
		apiErr.Message, apiErr.Code = wire.Error, wire.Code
	} else {
		apiErr.Message = strings.TrimSpace(string(raw))
	}
	if len(apiErr.Message) > errMessageCap {
		apiErr.Message = apiErr.Message[:errMessageCap] + "…(truncated)"
	}
	return apiErr
}

// UploadDatabase registers a database given in the parser's textual
// format and returns its session handle.
func (c *Client) UploadDatabase(ctx context.Context, text string) (DatabaseInfo, error) {
	var out DatabaseInfo
	err := c.do(ctx, http.MethodPost, "/v1/databases", server.CreateDatabaseRequest{Database: text}, &out)
	return out, err
}

// UploadDB registers an in-memory database (serialized with the
// parser's format) and returns its session handle. It fails without a
// request if the database holds values the textual format cannot
// represent (see FormatDatabase).
func (c *Client) UploadDB(ctx context.Context, db *Database) (DatabaseInfo, error) {
	text, err := parser.FormatDatabase(db)
	if err != nil {
		return DatabaseInfo{}, err
	}
	return c.UploadDatabase(ctx, text)
}

// ListDatabases lists the live sessions.
func (c *Client) ListDatabases(ctx context.Context) ([]DatabaseInfo, error) {
	var out []DatabaseInfo
	err := c.do(ctx, http.MethodGet, "/v1/databases", nil, &out)
	return out, err
}

// DropDatabase drops a session explicitly.
func (c *Client) DropDatabase(ctx context.Context, dbID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/databases/"+dbID, nil, nil)
}

// PrepareQuery parses, classifies, and rewrites a query once; later
// explains against its id skip straight to responsibility ranking.
func (c *Client) PrepareQuery(ctx context.Context, dbID, query string) (PrepareQueryResponse, error) {
	var out PrepareQueryResponse
	err := c.do(ctx, http.MethodPost, "/v1/databases/"+dbID+"/queries",
		server.PrepareQueryRequest{Query: query}, &out)
	return out, err
}

// InsertTuples appends a batch of tuples to a session database. The
// batch is atomic: the server validates every tuple before applying
// any, so an error means the database is unchanged. The response
// carries the server-assigned tuple ids (in request order) and the new
// mutation version; cached explanation state the mutation cannot
// affect stays warm on the server.
func (c *Client) InsertTuples(ctx context.Context, dbID string, tuples []TupleSpec) (MutateResponse, error) {
	var out MutateResponse
	err := c.do(ctx, http.MethodPost, "/v1/databases/"+dbID+"/tuples",
		server.InsertTuplesRequest{Tuples: tuples}, &out)
	return out, err
}

// DeleteTuple removes one tuple by id. Deleting an unknown or
// already-deleted id fails with ErrTupleNotFound; ids are never
// reused.
func (c *Client) DeleteTuple(ctx context.Context, dbID string, tupleID int) (MutateResponse, error) {
	var out MutateResponse
	err := c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/databases/%s/tuples/%d", dbID, tupleID), nil, &out)
	return out, err
}

// WhySo explains why the answer is returned, against a prepared query
// (queryID != "") or an inline req.Query.
func (c *Client) WhySo(ctx context.Context, dbID, queryID string, req ExplainRequest) (ExplainResponse, error) {
	return c.explain(ctx, dbID, queryID, "whyso", req)
}

// WhyNo explains why the answer is NOT returned.
func (c *Client) WhyNo(ctx context.Context, dbID, queryID string, req ExplainRequest) (ExplainResponse, error) {
	return c.explain(ctx, dbID, queryID, "whyno", req)
}

func (c *Client) explain(ctx context.Context, dbID, queryID, kind string, req ExplainRequest) (ExplainResponse, error) {
	path := "/v1/databases/" + dbID + "/" + kind
	if queryID != "" {
		path = "/v1/databases/" + dbID + "/queries/" + queryID + "/" + kind
	}
	var out ExplainResponse
	err := c.do(ctx, http.MethodPost, path, req, &out)
	return out, err
}

// Batch explains many answers/non-answers in one call.
func (c *Client) Batch(ctx context.Context, dbID string, req BatchExplainRequest) (BatchExplainResponse, error) {
	var out BatchExplainResponse
	err := c.do(ctx, http.MethodPost, "/v1/databases/"+dbID+"/batch", req, &out)
	return out, err
}

// Causes lists the actual causes (Theorem 3.2) of one answer or
// non-answer without ranking them; the server caches the engine it
// builds, so a following explain or stream is warm.
func (c *Client) Causes(ctx context.Context, dbID string, req CausesRequest) (CausesResponse, error) {
	var out CausesResponse
	err := c.do(ctx, http.MethodPost, "/v1/databases/"+dbID+"/causes", req, &out)
	return out, err
}

// ExplainStream requests a streamed ranking and returns an iterator
// over its explanation events: one ExplanationDTO per cause as its
// responsibility computation completes on the server, ending after a
// terminal done event or with a single non-nil error (rehydrated to
// the taxonomy sentinel when the server sent a code). The sequence is
// single-use; breaking out of the range closes the response body,
// which cancels the server-side computation.
func (c *Client) ExplainStream(ctx context.Context, dbID string, sreq StreamExplainRequest) iter.Seq2[ExplanationDTO, error] {
	return func(yield func(ExplanationDTO, error) bool) {
		raw, err := json.Marshal(sreq)
		if err != nil {
			yield(ExplanationDTO{}, err)
			return
		}
		resp, err := c.openStream(ctx, c.base+"/v1/databases/"+dbID+"/explain/stream", raw)
		if err != nil {
			yield(ExplanationDTO{}, err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			yield(ExplanationDTO{}, decodeAPIError(resp))
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 16<<20)
		sawTerminal := false
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var ev StreamEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				yield(ExplanationDTO{}, fmt.Errorf("querycaused: malformed stream event: %w", err))
				return
			}
			switch {
			case ev.Explanation != nil:
				if !yield(*ev.Explanation, nil) {
					return
				}
			case ev.Error != nil:
				yield(ExplanationDTO{}, rehydrate(ev.Error))
				return
			case ev.Done != nil:
				sawTerminal = true
			}
		}
		if err := sc.Err(); err != nil {
			yield(ExplanationDTO{}, err)
			return
		}
		if !sawTerminal {
			yield(ExplanationDTO{}, fmt.Errorf("querycaused: stream ended without a terminal event"))
		}
	}
}

// openStream POSTs raw JSON to url and returns the (streaming)
// response, following at most one cluster redirect — the same one-hop
// policy as doOnce. The caller owns the response body.
func (c *Client) openStream(ctx context.Context, url string, raw []byte) (*http.Response, error) {
	for hop := 0; ; hop++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.GetBody = nil // same one-hop cluster redirect policy as doOnce
		resp, err := c.http.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTemporaryRedirect || resp.StatusCode == http.StatusPermanentRedirect {
			loc, err := redirectTarget(resp)
			if err != nil {
				return nil, err
			}
			if hop > 0 {
				return nil, fmt.Errorf("querycaused: redirect loop: %s redirected again (to %s) after one cluster hop; refresh the topology and re-dial", url, loc)
			}
			url = loc
			continue
		}
		return resp, nil
	}
}

// WatchStream subscribes to the live explanation of one answer or
// non-answer (POST /v1/databases/{db}/watch) and returns an iterator
// over its DiffEvent frames: first a snapshot of the current ranking,
// then exactly one frame per mutation request against the session — a
// diff when the mutation can affect the watched query, an empty
// version-bump otherwise. Frames with Type "error" report a re-rank
// failure in-band (the subscription stays open and recovers with a
// full_resync), so they arrive as events with a nil iteration error.
// The sequence is single-use; breaking out of the range closes the
// subscription. A watch has no terminal event — the sequence ends
// with a non-nil error when the context is canceled, the transport
// fails, or the server closes the stream.
func (c *Client) WatchStream(ctx context.Context, dbID string, wreq WatchRequest) iter.Seq2[DiffEvent, error] {
	return func(yield func(DiffEvent, error) bool) {
		raw, err := json.Marshal(wreq)
		if err != nil {
			yield(DiffEvent{}, err)
			return
		}
		resp, err := c.openStream(ctx, c.base+"/v1/databases/"+dbID+"/watch", raw)
		if err != nil {
			yield(DiffEvent{}, err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			yield(DiffEvent{}, decodeAPIError(resp))
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 16<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var ev DiffEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				yield(DiffEvent{}, fmt.Errorf("querycaused: malformed watch frame: %w", err))
				return
			}
			if !yield(ev, nil) {
				return
			}
		}
		if err := sc.Err(); err != nil {
			yield(DiffEvent{}, err)
			return
		}
		yield(DiffEvent{}, fmt.Errorf("querycaused: watch stream closed by the server"))
	}
}

// rehydrate turns a wire ErrorResponse into an error that matches the
// taxonomy sentinel named by its code under errors.Is, with the
// original message preserved.
func rehydrate(wire *server.ErrorResponse) error {
	err := errors.New(wire.Error)
	if s := qerr.FromCode(wire.Code); s != nil {
		return qerr.Tag(s, err)
	}
	return err
}

// Cluster fetches the server's topology. A non-clustered server
// answers 200 with an empty ClusterInfo, so callers can probe
// unconditionally; Dial uses this to pick the upload node itself and
// avoid ever being redirected.
func (c *Client) Cluster(ctx context.Context) (ClusterInfo, error) {
	var out ClusterInfo
	err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &out)
	return out, err
}

// Stats fetches the server's cache and admission counters.
func (c *Client) Stats(ctx context.Context) (ServerStats, error) {
	var out ServerStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// FormatDatabase renders db in the textual format ParseDatabase reads
// (and UploadDatabase accepts). It errors on values the line-oriented
// format cannot represent (line breaks, or both quote characters).
func FormatDatabase(db *Database) (string, error) { return parser.FormatDatabase(db) }
