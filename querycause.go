package querycause

import (
	"fmt"
	"io"
	"strings"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/datalog"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/rewrite"
	"github.com/querycause/querycause/internal/shape"
)

// Core relational types.
type (
	// Database is a set of relations of tuples flagged endogenous
	// (candidate causes) or exogenous (context).
	Database = rel.Database
	// Query is a conjunctive query; Boolean when its head is empty.
	Query = rel.Query
	// Atom is one relational subgoal of a query.
	Atom = rel.Atom
	// Term is a variable or constant in an atom.
	Term = rel.Term
	// Tuple is a database row plus its causal status.
	Tuple = rel.Tuple
	// TupleID identifies a tuple within its database.
	TupleID = rel.TupleID
	// Value is a constant of the active domain.
	Value = rel.Value
	// Explanation is the causal verdict for one tuple: its
	// responsibility, minimum contingency size, and the method used.
	Explanation = core.Explanation
	// Mode selects the responsibility strategy (ModeAuto, ModeExact,
	// ModePaper).
	Mode = core.Mode
	// Method reports how a responsibility was computed.
	Method = core.Method
	// Lineage is a positive-DNF lineage expression over tuple variables.
	Lineage = lineage.DNF
	// Program is a stratified Datalog¬ program (Theorem 3.4 output).
	Program = datalog.Program
	// Certificate is a dichotomy classification with a replayable proof.
	Certificate = rewrite.Certificate
	// Class is the dichotomy classification of a query.
	Class = rewrite.Class
)

// Responsibility modes.
const (
	// ModeAuto uses Algorithm 1 (max-flow) when soundly applicable and
	// exact search otherwise. The default.
	ModeAuto = core.ModeAuto
	// ModeExact always uses exact branch-and-bound search.
	ModeExact = core.ModeExact
	// ModePaper follows the paper's Definition 4.9 weakening literally;
	// see the fidelity notes in doc.go for where this can diverge from
	// Definition 2.3.
	ModePaper = core.ModePaper
)

// Computation methods (Explanation.Method).
const (
	MethodNone           = core.MethodNone
	MethodCounterfactual = core.MethodCounterfactual
	MethodFlow           = core.MethodFlow
	MethodExact          = core.MethodExact
	MethodWhyNo          = core.MethodWhyNo
)

// Dichotomy classes (Certificate.Class).
const (
	ClassLinear       = rewrite.ClassLinear
	ClassWeaklyLinear = rewrite.ClassWeaklyLinear
	ClassNPHard       = rewrite.ClassNPHard
	ClassSelfJoinHard = rewrite.ClassSelfJoinHard
	ClassSelfJoinOpen = rewrite.ClassSelfJoinOpen
	ClassUnresolved   = rewrite.ClassUnresolved
)

// NewDatabase returns an empty database.
func NewDatabase() *Database { return rel.NewDatabase() }

// V builds a variable term; C builds a constant term.
func V(name string) Term { return rel.V(name) }

// C builds a constant term.
func C(v Value) Term { return rel.C(v) }

// NewAtom builds a query atom R(t1,…,tk).
func NewAtom(pred string, terms ...Term) Atom { return rel.NewAtom(pred, terms...) }

// NewBooleanQuery builds a Boolean conjunctive query from atoms.
func NewBooleanQuery(atoms ...Atom) *Query { return rel.NewBoolean(atoms...) }

// ParseQuery parses "q(x) :- R(x,y), S(y,'a3')" syntax.
func ParseQuery(s string) (*Query, error) { return parser.ParseQuery(s) }

// ParseDatabase reads a tuple-per-line database ("+R(a,b)" endogenous,
// "-R(a,b)" exogenous, '#' comments).
func ParseDatabase(r io.Reader) (*Database, error) { return parser.ParseDatabase(r) }

// Answers evaluates a non-Boolean query and groups valuations by head
// value.
func Answers(db *Database, q *Query) ([]rel.Answer, error) { return rel.Answers(db, q) }

// Explainer ranks the causes of one answer or non-answer.
//
// Deprecated: Explainer is the context-free v1 surface. New code
// should Open (or Dial) a Session and use its context-first Ranking —
// same results, plus cancellation, streaming (RankStream), and the
// typed error taxonomy. Explainer remains supported as a thin wrapper.
type Explainer struct {
	eng   *core.Engine
	whyNo bool
}

// WhySo explains why answer ā is returned by q on db: the database's
// endogenous tuples are the candidate causes (Definition 2.1). Pass no
// answer values for a Boolean query.
//
// Deprecated: use Open(db) and Session.WhySo(ctx, q, answer...),
// which adds cancellation, streaming, and typed errors.
func WhySo(db *Database, q *Query, answer ...Value) (*Explainer, error) {
	eng, err := core.NewWhySo(db, q, answer...)
	if err != nil {
		return nil, err
	}
	return &Explainer{eng: eng}, nil
}

// WhyNo explains why ā is NOT an answer: the database's endogenous
// tuples are the candidate missing tuples Dⁿ, its exogenous tuples the
// real database Dˣ (Section 2, Why-No causality).
//
// Deprecated: use Open(db) and Session.WhyNo(ctx, q, nonAnswer...).
func WhyNo(db *Database, q *Query, nonAnswer ...Value) (*Explainer, error) {
	eng, err := core.NewWhyNo(db, q, nonAnswer...)
	if err != nil {
		return nil, err
	}
	return &Explainer{eng: eng, whyNo: true}, nil
}

// Causes returns all actual causes (Theorem 3.2), sorted by tuple ID.
func (e *Explainer) Causes() []TupleID { return e.eng.Causes() }

// BoundQuery returns the Boolean query after answer binding (Section 2:
// q[ā/x̄]).
func (e *Explainer) BoundQuery() *Query { return e.eng.Query() }

// NLineage returns the minimal endogenous lineage Φⁿ.
func (e *Explainer) NLineage() Lineage { return e.eng.NLineage() }

// Responsibility computes ρ_t under ModeAuto.
func (e *Explainer) Responsibility(t TupleID) (Explanation, error) {
	return e.eng.Responsibility(t, core.ModeAuto)
}

// ResponsibilityMode computes ρ_t under an explicit mode.
func (e *Explainer) ResponsibilityMode(t TupleID, m Mode) (Explanation, error) {
	return e.eng.Responsibility(t, m)
}

// Rank explains every cause, sorted by descending responsibility.
//
// Deprecated: use Ranking.Rank(ctx) on a Session for cancellation and
// parallelism, or Ranking.RankStream(ctx) for incremental results.
// The output is identical.
func (e *Explainer) Rank() ([]Explanation, error) { return e.eng.RankAll(core.ModeAuto) }

// MustRank is Rank, panicking on error (for examples and tests).
func (e *Explainer) MustRank() []Explanation {
	out, err := e.Rank()
	if err != nil {
		panic(err)
	}
	return out
}

// Classification returns the dichotomy certificate under the sound
// domination rule (what ModeAuto dispatches on).
func (e *Explainer) Classification() (*Certificate, error) { return e.eng.Classification() }

// PaperClassification returns the Definition 4.9 certificate (the
// paper's Fig. 3 semantics).
func (e *Explainer) PaperClassification() (*Certificate, error) { return e.eng.PaperClassification() }

// CausesFO computes the causes of a Boolean query with the generated
// stratified Datalog¬ program of Theorem 3.4 (rather than through the
// lineage) and returns the program alongside, e.g. for display. The two
// methods agree; see the cross-validation tests.
func CausesFO(db *Database, q *Query) ([]TupleID, *Program, error) {
	return causegen.Causes(db, q)
}

// CauseProgram generates the Theorem 3.4 cause program for q without
// evaluating it. Hints from db prune refinements that cannot match
// (Corollary 3.7 then yields a purely positive program).
func CauseProgram(db *Database, q *Query) (*Program, error) {
	return causegen.Generate(q, causegen.HintsFromDB(db))
}

// Classify computes the responsibility dichotomy classification
// (Corollary 4.14) of a query under the paper's rules. The endo
// function flags which relations are endogenous; constants in the query
// are immaterial.
func Classify(q *Query, endo func(relName string) bool) (*Certificate, error) {
	return rewrite.Classify(shape.FromQuery(q, endo))
}

// ClassifySound is Classify under the sound domination rule used by
// ModeAuto (see the fidelity notes in doc.go).
func ClassifySound(q *Query, endo func(relName string) bool) (*Certificate, error) {
	return rewrite.ClassifySound(shape.FromQuery(q, endo))
}

// FormatExplanations renders a ranking as the paper's Fig. 2b table.
func FormatExplanations(db *Database, exps []Explanation) string {
	var b strings.Builder
	b.WriteString("  ρ_t    tuple\n")
	for _, e := range exps {
		fmt.Fprintf(&b, "  %.3f  %v\n", e.Rho, db.Tuple(e.Tuple))
	}
	return b.String()
}
