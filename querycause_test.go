package querycause_test

import (
	"math"
	"strings"
	"testing"

	qc "github.com/querycause/querycause"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// TestQuickstart is the README's quick-start, end to end.
func TestQuickstart(t *testing.T) {
	db := qc.NewDatabase()
	db.MustAdd("R", true, "a4", "a3")
	db.MustAdd("R", true, "a4", "a2")
	sa3 := db.MustAdd("S", true, "a3")
	db.MustAdd("S", true, "a2")
	q, err := qc.ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	ex, err := qc.WhySo(db, q, "a4")
	if err != nil {
		t.Fatal(err)
	}
	ranked := ex.MustRank()
	if len(ranked) != 4 {
		t.Fatalf("causes = %d, want 4", len(ranked))
	}
	for _, e := range ranked {
		if !approx(e.Rho, 0.5) {
			t.Errorf("ρ(%v) = %v, want 0.5", db.Tuple(e.Tuple), e.Rho)
		}
	}
	// Individual lookup.
	one, err := ex.Responsibility(sa3)
	if err != nil {
		t.Fatal(err)
	}
	if one.ContingencySize != 1 {
		t.Errorf("contingency = %d, want 1", one.ContingencySize)
	}
	// Table rendering.
	s := qc.FormatExplanations(db, ranked)
	if !strings.Contains(s, "0.500") {
		t.Errorf("table missing values:\n%s", s)
	}
}

func TestParseDatabaseAndWhyNo(t *testing.T) {
	db, err := qc.ParseDatabase(strings.NewReader(`
# real database
-R(a, b)
# candidate missing tuples
+S(b)
+S(c)
`))
	if err != nil {
		t.Fatal(err)
	}
	q, _ := qc.ParseQuery("q :- R(x,y), S(y)")
	ex, err := qc.WhyNo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	causes := ex.Causes()
	if len(causes) != 1 {
		t.Fatalf("Why-No causes = %v, want one (S(b))", causes)
	}
	e, err := ex.Responsibility(causes[0])
	if err != nil {
		t.Fatal(err)
	}
	if e.Rho != 1 || e.Method != qc.MethodWhyNo {
		t.Errorf("ρ = %v (%v), want 1 via why-no", e.Rho, e.Method)
	}
}

func TestCausesFOAgreesWithLineage(t *testing.T) {
	db := qc.NewDatabase()
	db.MustAdd("R", false, "a4", "a3")
	db.MustAdd("R", true, "a3", "a3")
	db.MustAdd("S", true, "a3")
	q, _ := qc.ParseQuery("q :- R(x,y), S(y)")
	foCauses, prog, err := qc.CausesFO(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := qc.WhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	lin := ex.Causes()
	if len(foCauses) != len(lin) {
		t.Fatalf("FO=%v lineage=%v", foCauses, lin)
	}
	for i := range lin {
		if foCauses[i] != lin[i] {
			t.Fatalf("FO=%v lineage=%v", foCauses, lin)
		}
	}
	ns, err := prog.NumStrata()
	if err != nil {
		t.Fatal(err)
	}
	if ns != 2 {
		t.Errorf("strata = %d, want 2", ns)
	}
}

func TestClassifyPublicAPI(t *testing.T) {
	q, _ := qc.ParseQuery("q :- R(x,y), S(y,z), T(z,x)")
	allEndo := func(string) bool { return true }
	cert, err := qc.Classify(q, allEndo)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Class != qc.ClassNPHard {
		t.Errorf("h2* classified %v, want NP-hard", cert.Class)
	}
	cert2, err := qc.Classify(q, func(r string) bool { return r != "S" })
	if err != nil {
		t.Fatal(err)
	}
	if !cert2.Class.PTime() {
		t.Errorf("Example 4.12a classified %v, want PTIME", cert2.Class)
	}
	chain, _ := qc.ParseQuery("q :- R(x,y), S(y,z)")
	cert3, err := qc.ClassifySound(chain, allEndo)
	if err != nil {
		t.Fatal(err)
	}
	if cert3.Class != qc.ClassLinear {
		t.Errorf("chain classified %v, want linear", cert3.Class)
	}
}

func TestCauseProgram(t *testing.T) {
	db := qc.NewDatabase()
	db.MustAdd("R", true, "a", "b")
	db.MustAdd("S", true, "b")
	q, _ := qc.ParseQuery("q :- R(x,y), S(y)")
	prog, err := qc.CauseProgram(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "C_R") || !strings.Contains(prog.String(), "C_S") {
		t.Errorf("program missing cause predicates:\n%s", prog)
	}
}

func TestAnswersPublicAPI(t *testing.T) {
	db := qc.NewDatabase()
	db.MustAdd("R", true, "a", "b")
	db.MustAdd("S", true, "b")
	q, _ := qc.ParseQuery("q(x) :- R(x,y), S(y)")
	ans, err := qc.Answers(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0].Values[0] != "a" {
		t.Fatalf("answers = %v", ans)
	}
}

func TestErrorsSurface(t *testing.T) {
	db := qc.NewDatabase()
	db.MustAdd("R", true, "a")
	q, _ := qc.ParseQuery("q(x) :- R(x)")
	if _, err := qc.WhySo(db, q); err == nil {
		t.Error("missing answer for non-Boolean query should fail")
	}
	if _, err := qc.WhySo(db, q, "a", "b"); err == nil {
		t.Error("answer arity mismatch should fail")
	}
	// Why-No requires the query to be false on the real (exogenous)
	// database: an exogenous R(a) makes q('a') an actual answer.
	db2 := qc.NewDatabase()
	db2.MustAdd("R", false, "a")
	db2.MustAdd("R", true, "b")
	if _, err := qc.WhyNo(db2, q, "a"); err == nil {
		t.Error("Why-No on an actual answer should fail")
	}
}
