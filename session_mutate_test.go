package querycause_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/server"
)

// bothTransportsFresh is bothTransports with a fresh database per
// transport: mutation tests need it, because the remote transport
// mirrors every acknowledged mutation into the database it was dialed
// with — sharing one *Database across subtests would double-apply.
func bothTransportsFresh(t *testing.T, mkDB func() *qc.Database, body func(t *testing.T, sess qc.Session)) {
	t.Helper()
	t.Run("local", func(t *testing.T) {
		sess, err := qc.Open(mkDB())
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		body(t, sess)
	})
	t.Run("remote", func(t *testing.T) {
		srv := server.New(server.Config{ReapInterval: -1})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			srv.Close()
		}()
		sess, err := qc.Dial(context.Background(), ts.URL, mkDB())
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		body(t, sess)
	})
}

func mutateChainDB() *qc.Database {
	db := qc.NewDatabase()
	db.MustAdd("R", true, "a4", "a3") // 0
	db.MustAdd("S", true, "a3")       // 1
	db.MustAdd("S", true, "a2")       // 2
	db.MustAdd("R", true, "a5", "a2") // 3
	return db
}

// TestSessionMutate: Insert and Delete behave identically on both
// transports — ids assigned in order from a never-reused sequence, and
// post-mutation rankings byte-identical to an in-process replay of the
// same mutation sequence.
func TestSessionMutate(t *testing.T) {
	q, err := qc.ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	// The reference: replay the same mutations directly on a database
	// and rank in-process. A fresh upload of the final state would
	// renumber the tuples — the sequence is part of the contract.
	ref := mutateChainDB()
	ref.MustAdd("R", true, "a6", "a9") // 4
	ref.MustAdd("S", true, "a9")       // 5
	if err := ref.Delete(2); err != nil {
		t.Fatal(err)
	}
	rank := func(t *testing.T, db *qc.Database, answer qc.Value) string {
		t.Helper()
		ex, err := qc.WhySo(db, q, answer)
		if err != nil {
			t.Fatal(err)
		}
		return mustJSON(t, ex.MustRank())
	}
	wantA4, wantA6 := rank(t, ref, "a4"), rank(t, ref, "a6")

	bothTransportsFresh(t, mutateChainDB, func(t *testing.T, sess qc.Session) {
		ctx := context.Background()
		ids, err := sess.Insert(ctx,
			qc.TupleSpec{Rel: "R", Args: []string{"a6", "a9"}, Endo: true},
			qc.TupleSpec{Rel: "S", Args: []string{"a9"}, Endo: true})
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if len(ids) != 2 || ids[0] != 4 || ids[1] != 5 {
			t.Fatalf("Insert ids = %v, want [4 5]", ids)
		}
		if err := sess.Delete(ctx, 2); err != nil { // S(a2): kills answer a5
			t.Fatalf("Delete: %v", err)
		}
		for _, tc := range []struct {
			answer qc.Value
			want   string
		}{{"a4", wantA4}, {"a6", wantA6}} {
			r, err := sess.WhySo(ctx, q, tc.answer)
			if err != nil {
				t.Fatalf("WhySo %s after mutations: %v", tc.answer, err)
			}
			got, err := r.Rank(ctx)
			if err != nil {
				t.Fatalf("Rank %s: %v", tc.answer, err)
			}
			if s := mustJSON(t, got); s != tc.want {
				t.Errorf("ranking of %s diverges from in-process replay:\n got %s\nwant %s", tc.answer, s, tc.want)
			}
		}

		// Dead and unknown ids fail with the tuple-not-found sentinel.
		if err := sess.Delete(ctx, 2); !errors.Is(err, qc.ErrTupleNotFound) {
			t.Errorf("double Delete: err = %v; want ErrTupleNotFound", err)
		}
		if err := sess.Delete(ctx, 99); !errors.Is(err, qc.ErrTupleNotFound) {
			t.Errorf("Delete of unknown id: err = %v; want ErrTupleNotFound", err)
		}
		// Bad batches fail atomically with ErrBadInstance...
		if _, err := sess.Insert(ctx); !errors.Is(err, qc.ErrBadInstance) {
			t.Errorf("empty Insert: err = %v; want ErrBadInstance", err)
		}
		if _, err := sess.Insert(ctx,
			qc.TupleSpec{Rel: "S", Args: []string{"ok"}, Endo: true},
			qc.TupleSpec{Rel: "S", Args: []string{"too", "wide"}, Endo: true},
		); !errors.Is(err, qc.ErrBadInstance) {
			t.Errorf("arity-mismatch Insert: err = %v; want ErrBadInstance", err)
		}
		// ...so the next id proves the half-good batch applied nothing.
		ids, err = sess.Insert(ctx, qc.TupleSpec{Rel: "S", Args: []string{"a8"}, Endo: true})
		if err != nil {
			t.Fatalf("Insert after rejected batch: %v", err)
		}
		if len(ids) != 1 || ids[0] != 6 {
			t.Fatalf("Insert after rejected batch ids = %v, want [6]", ids)
		}

		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Insert(ctx, qc.TupleSpec{Rel: "S", Args: []string{"x"}}); !errors.Is(err, qc.ErrSessionClosed) {
			t.Errorf("Insert after Close: err = %v; want ErrSessionClosed", err)
		}
		if err := sess.Delete(ctx, 0); !errors.Is(err, qc.ErrSessionClosed) {
			t.Errorf("Delete after Close: err = %v; want ErrSessionClosed", err)
		}
	})
}
