package querycause_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/server"
)

func startServer(t *testing.T) *qc.Client {
	t.Helper()
	srv := server.New(server.Config{ReapInterval: -1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return qc.NewClient(ts.URL, nil)
}

// TestClientRoundTrip drives the full client surface against an
// in-process server and cross-validates the wire ranking with the
// library: the paper's Fig. 2b Musical ranking must come back over
// HTTP byte-for-byte.
func TestClientRoundTrip(t *testing.T) {
	ctx := context.Background()
	c := startServer(t)
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	db, _ := imdb.Micro()
	info, err := c.UploadDB(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if info.Tuples != db.NumTuples() {
		t.Fatalf("uploaded %d tuples; db has %d", info.Tuples, db.NumTuples())
	}

	q := imdb.GenreQuery()
	prep, err := c.PrepareQuery(ctx, info.ID, q.String())
	if err != nil {
		t.Fatal(err)
	}

	got, err := c.WhySo(ctx, info.ID, prep.ID, qc.ExplainRequest{Answer: []string{"Musical"}})
	if err != nil {
		t.Fatal(err)
	}

	ex, err := qc.WhySo(db, q, "Musical")
	if err != nil {
		t.Fatal(err)
	}
	want := ex.MustRank()
	if len(got.Explanations) != len(want) {
		t.Fatalf("wire ranking has %d causes; library has %d", len(got.Explanations), len(want))
	}
	for i, e := range got.Explanations {
		w := want[i]
		if e.Rho != w.Rho || e.TupleID != int(w.Tuple) || e.ContingencySize != w.ContingencySize {
			t.Errorf("cause %d: wire %+v vs library %+v", i, e, w)
		}
	}

	// Warm repeat skips engine construction.
	warm, err := c.WhySo(ctx, info.ID, prep.ID, qc.ExplainRequest{Answer: []string{"Musical"}})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.EngineCached {
		t.Error("repeat explain did not hit the engine cache")
	}

	// Batch over every genre answer matches ExplainAll semantics.
	batch, err := c.Batch(ctx, info.ID, qc.BatchExplainRequest{Requests: []qc.BatchItem{
		{QueryID: prep.ID, Answer: []string{"Musical"}},
		{Query: "q :- Director(d, f, l)"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range batch.Results {
		if r.Error != "" || r.Causes == 0 {
			t.Errorf("batch item %d: %+v", i, r)
		}
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 1 || st.EngineCache.Hits == 0 {
		t.Errorf("stats = %+v; want 1 session with engine-cache hits", st)
	}

	dbs, err := c.ListDatabases(ctx)
	if err != nil || len(dbs) != 1 {
		t.Fatalf("ListDatabases = %v, %v; want 1 session", dbs, err)
	}
	if err := c.DropDatabase(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PrepareQuery(ctx, info.ID, q.String()); err == nil {
		t.Error("prepare against dropped session succeeded")
	}
}

// TestClientWhyNo exercises the why-no path over the wire.
func TestClientWhyNo(t *testing.T) {
	ctx := context.Background()
	c := startServer(t)

	// Candidate insertions are endogenous; the real database exogenous.
	text := "-R(a,b)\n+S(b)\n+S(c)\n"
	info, err := c.UploadDatabase(ctx, text)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.WhyNo(ctx, info.ID, "", qc.ExplainRequest{Query: "q :- R(x,y), S(y)"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.WhyNo || len(resp.Explanations) == 0 {
		t.Fatalf("whyno response = %+v; want explanations", resp)
	}
	if resp.Explanations[0].Method != "why-no-closed-form" {
		t.Errorf("method = %q; want why-no-closed-form", resp.Explanations[0].Method)
	}
}

// TestClientAPIError checks 4xx surfaces as a typed APIError.
func TestClientAPIError(t *testing.T) {
	ctx := context.Background()
	c := startServer(t)
	_, err := c.UploadDatabase(ctx, "not a database")
	var apiErr *qc.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v; want *APIError", err)
	}
	if apiErr.StatusCode != 400 || !strings.Contains(apiErr.Message, "parser") {
		t.Errorf("APIError = %+v; want 400 with parser message", apiErr)
	}
}

// TestFormatDatabaseRoundTrip checks the serialization the client uses
// to upload in-memory databases.
func TestFormatDatabaseRoundTrip(t *testing.T) {
	db := qc.NewDatabase()
	db.MustAdd("R", true, "a1", "a2")
	db.MustAdd("R", false, "with space", "comma,value")
	db.MustAdd("S", true, "quote'd", "hash#tag")
	text, err := qc.FormatDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	back, err := qc.ParseDatabase(strings.NewReader(text))
	if err != nil {
		t.Fatalf("round trip parse: %v\ntext:\n%s", err, text)
	}
	if back.NumTuples() != db.NumTuples() {
		t.Fatalf("round trip lost tuples: %d vs %d", back.NumTuples(), db.NumTuples())
	}
	for i := 0; i < db.NumTuples(); i++ {
		a, b := db.Tuple(qc.TupleID(i)), back.Tuple(qc.TupleID(i))
		if a.String() != b.String() || a.Endo != b.Endo {
			t.Errorf("tuple %d: %v vs %v", i, a, b)
		}
	}
}
