package querycause_test

import (
	"context"
	"errors"
	"testing"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/server"
)

func watchDTOs(t *testing.T, db *qc.Database, exps []qc.Explanation) []qc.ExplanationDTO {
	t.Helper()
	out := make([]qc.ExplanationDTO, len(exps))
	for i, e := range exps {
		out[i] = server.NewExplanationDTO(db, e)
	}
	return out
}

// TestSessionWatch: Session.Watch emits a snapshot plus exactly one
// frame per mutation call on both transports, and replaying the frames
// with ApplyDiff reconstructs the ranking a cold Rank would return —
// byte for byte, including an unrelated mutation's empty version-bump
// frame.
func TestSessionWatch(t *testing.T) {
	q, err := qc.ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	// The reference: the same mutation sequence replayed directly.
	ref := mutateChainDB()
	ref.MustAdd("T", true, "zzz")         // 4: unrelated — empty diff
	ref.MustAdd("R", true, "a4", "a2")    // 5: second witness for a4
	if err := ref.Delete(1); err != nil { // S(a3): kills the first witness
		t.Fatal(err)
	}
	ex, err := qc.WhySo(ref, q, "a4")
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, watchDTOs(t, ref, ex.MustRank()))

	bothTransportsFresh(t, mutateChainDB, func(t *testing.T, sess qc.Session) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var (
			state  []qc.ExplanationDTO
			frames []qc.DiffEvent
		)
		for ev, err := range sess.Watch(ctx, qc.WatchSpec{Query: q, Answer: []qc.Value{"a4"}}) {
			if err != nil {
				t.Fatalf("watch error after %d frames: %v", len(frames), err)
			}
			frames = append(frames, ev)
			state = qc.ApplyDiff(state, ev)
			switch len(frames) {
			case 1:
				if ev.Type != "snapshot" {
					t.Fatalf("first frame type = %q, want snapshot", ev.Type)
				}
				if _, err := sess.Insert(ctx, qc.TupleSpec{Rel: "T", Args: []string{"zzz"}, Endo: true}); err != nil {
					t.Fatal(err)
				}
			case 2:
				// The T insert cannot affect q: an empty version-bump diff.
				if ev.Type != "diff" || len(ev.CausesAdded) != 0 || len(ev.CausesRemoved) != 0 || len(ev.RankChanged) != 0 {
					t.Fatalf("unrelated-mutation frame = %s, want empty diff", mustJSON(t, ev))
				}
				if _, err := sess.Insert(ctx, qc.TupleSpec{Rel: "R", Args: []string{"a4", "a2"}, Endo: true}); err != nil {
					t.Fatal(err)
				}
			case 3:
				if ev.Type != "diff" || len(ev.CausesAdded) == 0 {
					t.Fatalf("witness-adding frame = %s, want diff with causes_added", mustJSON(t, ev))
				}
				if err := sess.Delete(ctx, 1); err != nil {
					t.Fatal(err)
				}
			case 4:
				if ev.Type != "diff" || len(ev.CausesRemoved) == 0 {
					t.Fatalf("witness-killing frame = %s, want diff with causes_removed", mustJSON(t, ev))
				}
			}
			if len(frames) == 4 {
				break
			}
		}
		for i := 1; i < len(frames); i++ {
			if frames[i].Version <= frames[i-1].Version {
				t.Fatalf("frame versions not increasing: %d then %d", frames[i-1].Version, frames[i].Version)
			}
		}
		if got := mustJSON(t, state); got != want {
			t.Errorf("replayed ranking diverges from cold replay:\n got %s\nwant %s", got, want)
		}

		// A second watch opened now snapshots the same ranking the replay
		// reconstructed.
		for ev, err := range sess.Watch(ctx, qc.WatchSpec{Query: q, Answer: []qc.Value{"a4"}}) {
			if err != nil {
				t.Fatalf("second watch: %v", err)
			}
			if got := mustJSON(t, qc.ApplyDiff(nil, ev)); got != want {
				t.Errorf("second watch snapshot:\n got %s\nwant %s", got, want)
			}
			break
		}
	})
}

// TestSessionWatchErrors: invalid specs fail as the first iteration
// error with the taxonomy sentinel, identically on both transports,
// and cancellation ends a healthy stream with the context error.
func TestSessionWatchErrors(t *testing.T) {
	q, err := qc.ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	bothTransportsFresh(t, mutateChainDB, func(t *testing.T, sess qc.Session) {
		ctx := context.Background()
		firstErr := func(spec qc.WatchSpec) error {
			for _, err := range sess.Watch(ctx, spec) {
				return err
			}
			return nil
		}
		if err := firstErr(qc.WatchSpec{}); !errors.Is(err, qc.ErrBadInstance) {
			t.Errorf("nil-query watch: err = %v; want ErrBadInstance", err)
		}
		// a9 cannot hold even with every candidate tuple inserted, so the
		// why-no instance is invalid (Section 2's validity condition).
		if err := firstErr(qc.WatchSpec{Query: q, Answer: []qc.Value{"a9"}, WhyNo: true}); !errors.Is(err, qc.ErrInvalidWhyNo) {
			t.Errorf("invalid why-no watch: err = %v; want ErrInvalidWhyNo", err)
		}

		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		sawSnapshot := false
		var lastErr error
		for ev, err := range sess.Watch(cctx, qc.WatchSpec{Query: q, Answer: []qc.Value{"a4"}}) {
			if err != nil {
				lastErr = err
				break
			}
			if ev.Type == "snapshot" {
				sawSnapshot = true
				cancel()
			}
		}
		if !sawSnapshot {
			t.Fatal("no snapshot before cancellation")
		}
		if !errors.Is(lastErr, context.Canceled) {
			t.Errorf("canceled watch: err = %v; want context.Canceled", lastErr)
		}
	})
}
