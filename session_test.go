package querycause_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/server"
	"github.com/querycause/querycause/internal/workload"
)

// bothTransports opens an in-process and a Dial'ed session over the
// same database and runs the test body against each.
func bothTransports(t *testing.T, db *qc.Database, opts []qc.Option, body func(t *testing.T, sess qc.Session)) {
	t.Helper()
	t.Run("local", func(t *testing.T) {
		sess, err := qc.Open(db, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		body(t, sess)
	})
	t.Run("remote", func(t *testing.T) {
		srv := server.New(server.Config{ReapInterval: -1})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			srv.Close()
		}()
		sess, err := qc.Dial(context.Background(), ts.URL, db, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		body(t, sess)
	})
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestSessionTransportEquivalence: the same instance explained through
// Open and Dial must agree byte-for-byte — causes, blocking rankings,
// and drained streams — on both sides of the dichotomy and for
// Why-No.
func TestSessionTransportEquivalence(t *testing.T) {
	micro, _ := imdb.Micro()
	starDB, starQ, _ := workload.Star(3, 5)
	whyNoDB, whyNoQ := workload.WhyNoChain(11, 8)

	cases := []struct {
		name   string
		db     *qc.Database
		q      *qc.Query
		answer []qc.Value
		whyNo  bool
	}{
		{name: "flow/imdb-musical", db: micro, q: imdb.GenreQuery(), answer: []qc.Value{"Musical"}},
		{name: "exact/star-h1", db: starDB, q: starQ},
		{name: "whyno/chain", db: whyNoDB, q: whyNoQ, whyNo: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// The in-process ranking is the reference both transports
			// must reproduce.
			ref, err := qc.Open(tc.db)
			if err != nil {
				t.Fatal(err)
			}
			var refRanking qc.Ranking
			if tc.whyNo {
				refRanking, err = ref.WhyNo(context.Background(), tc.q, tc.answer...)
			} else {
				refRanking, err = ref.WhySo(context.Background(), tc.q, tc.answer...)
			}
			if err != nil {
				t.Fatal(err)
			}
			want, err := refRanking.Rank(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			wantJSON := mustJSON(t, want)
			wantCauses, _ := refRanking.Causes(context.Background())

			bothTransports(t, tc.db, nil, func(t *testing.T, sess qc.Session) {
				ctx := context.Background()
				var r qc.Ranking
				var err error
				if tc.whyNo {
					r, err = sess.WhyNo(ctx, tc.q, tc.answer...)
				} else {
					r, err = sess.WhySo(ctx, tc.q, tc.answer...)
				}
				if err != nil {
					t.Fatal(err)
				}
				causes, err := r.Causes(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(causes, wantCauses) {
					t.Errorf("Causes = %v; want %v", causes, wantCauses)
				}
				got, err := r.Rank(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if gotJSON := mustJSON(t, got); gotJSON != wantJSON {
					t.Errorf("Rank differs from reference\ngot:  %s\nwant: %s", gotJSON, wantJSON)
				}
				// Drained stream sorted = Rank, byte-for-byte, in both
				// emission orders.
				for _, deterministic := range []bool{true, false} {
					var streamed []qc.Explanation
					for ex, serr := range r.RankStream(ctx, qc.WithDeterministic(deterministic), qc.WithParallelism(3)) {
						if serr != nil {
							t.Fatalf("deterministic=%v: stream error: %v", deterministic, serr)
						}
						streamed = append(streamed, ex)
					}
					qc.SortExplanations(streamed)
					if gotJSON := mustJSON(t, streamed); gotJSON != wantJSON {
						t.Errorf("deterministic=%v: drained stream differs\ngot:  %s\nwant: %s", deterministic, gotJSON, wantJSON)
					}
				}
				// Deterministic stream emission follows cause order.
				i := 0
				for ex, serr := range r.RankStream(ctx) {
					if serr != nil {
						t.Fatal(serr)
					}
					if ex.Tuple != causes[i] {
						t.Fatalf("deterministic emission %d = tuple %d; want %d", i, ex.Tuple, causes[i])
					}
					i++
				}
				// ExplainAll over the same request matches Rank.
				batch, err := sess.ExplainAll(ctx, []qc.BatchRequest{{Query: tc.q, Answer: tc.answer, WhyNo: tc.whyNo}})
				if err != nil {
					t.Fatal(err)
				}
				if len(batch) != 1 || batch[0].Err != nil {
					t.Fatalf("ExplainAll = %+v", batch)
				}
				if gotJSON := mustJSON(t, batch[0].Explanations); gotJSON != wantJSON {
					t.Errorf("ExplainAll differs from Rank\ngot:  %s\nwant: %s", gotJSON, wantJSON)
				}
			})
		})
	}
}

// TestSessionErrorParity: the same invalid inputs must fail with
// errors.Is-equal sentinels on both transports.
func TestSessionErrorParity(t *testing.T) {
	// The real (exogenous) database already satisfies q(a), so a
	// Why-No request for "a" is invalid; +S(c) keeps one candidate
	// tuple around so the database has an endogenous part.
	db := qc.NewDatabase()
	db.MustAdd("R", false, "a", "b")
	db.MustAdd("S", false, "b")
	db.MustAdd("S", true, "c")
	chain, err := qc.ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}

	bothTransports(t, db, nil, func(t *testing.T, sess qc.Session) {
		ctx := context.Background()
		// Binding arity mismatch → ErrBadInstance.
		if _, err := sess.WhySo(ctx, chain, "a", "extra"); !errors.Is(err, qc.ErrBadInstance) {
			t.Errorf("WhySo arity mismatch: err = %v; want ErrBadInstance (code %q)", err, qc.ErrorCode(err))
		}
		// The query holds already, so it is not a valid Why-No instance
		// → ErrInvalidWhyNo.
		if _, err := sess.WhyNo(ctx, chain, "a"); !errors.Is(err, qc.ErrInvalidWhyNo) {
			t.Errorf("WhyNo on an answer: err = %v; want ErrInvalidWhyNo (code %q)", err, qc.ErrorCode(err))
		}
		// Per-item batch failures carry the same sentinels.
		batch, err := sess.ExplainAll(ctx, []qc.BatchRequest{
			{Query: chain, Answer: []qc.Value{"a"}},
			{Query: chain, Answer: []qc.Value{"a"}, WhyNo: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if batch[0].Err != nil {
			t.Errorf("valid batch item failed: %v", batch[0].Err)
		}
		if !errors.Is(batch[1].Err, qc.ErrInvalidWhyNo) {
			t.Errorf("batch why-no item: err = %v; want ErrInvalidWhyNo", batch[1].Err)
		}
		// Close, then every call fails with ErrSessionClosed.
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.WhySo(ctx, chain, "a"); !errors.Is(err, qc.ErrSessionClosed) {
			t.Errorf("WhySo after Close: err = %v; want ErrSessionClosed", err)
		}
		if _, err := sess.ExplainAll(ctx, nil); !errors.Is(err, qc.ErrSessionClosed) {
			t.Errorf("ExplainAll after Close: err = %v; want ErrSessionClosed", err)
		}
	})
}

// TestDialSessionEvicted: a server-side eviction surfaces as
// ErrSessionNotFound on the next call.
func TestDialSessionEvicted(t *testing.T) {
	srv := server.New(server.Config{ReapInterval: -1})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	db, _ := imdb.Micro()
	sess, err := qc.Dial(context.Background(), ts.URL, db)
	if err != nil {
		t.Fatal(err)
	}
	// Evict everything behind the session's back.
	srv.EvictIdle()
	for _, id := range []string{"d1"} {
		_ = id
	}
	// Directly drop via a second client.
	c := qc.NewClient(ts.URL, nil)
	dbs, err := c.ListDatabases(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range dbs {
		if err := c.DropDatabase(context.Background(), info.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.WhySo(context.Background(), imdb.GenreQuery(), "Musical"); !errors.Is(err, qc.ErrSessionNotFound) {
		t.Errorf("WhySo on evicted session: err = %v; want ErrSessionNotFound", err)
	}
	// Close on an already-dropped session is not an error.
	if err := sess.Close(); err != nil {
		t.Errorf("Close after server-side drop: %v", err)
	}
}

// TestSessionOptions: WithMode reaches the engine, WithTimeout bounds
// calls on both transports.
func TestSessionOptions(t *testing.T) {
	starDB, starQ, _ := workload.Star(3, 5)
	bothTransports(t, starDB, []qc.Option{qc.WithMode(qc.ModeExact)}, func(t *testing.T, sess qc.Session) {
		r, err := sess.WhySo(context.Background(), starQ)
		if err != nil {
			t.Fatal(err)
		}
		exps, err := r.Rank(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, ex := range exps {
			if ex.Method != qc.MethodExact && ex.Method != qc.MethodCounterfactual {
				t.Errorf("ModeExact session produced method %v", ex.Method)
			}
		}
	})

	// A nanosecond per-call budget must kill the call with a deadline
	// error on the local transport and a deadline/budget error
	// remotely.
	bothTransports(t, starDB, nil, func(t *testing.T, sess qc.Session) {
		r, err := sess.WhySo(context.Background(), starQ)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Rank(context.Background(), qc.WithTimeout(time.Nanosecond)); err == nil {
			t.Fatal("nanosecond-budget Rank succeeded")
		} else if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, qc.ErrBudgetExceeded) {
			t.Errorf("err = %v; want deadline or budget error", err)
		}
	})
}

// TestRemoteStreamEarlyBreak: breaking out of a remote stream closes
// the response and leaves the session usable.
func TestRemoteStreamEarlyBreak(t *testing.T) {
	srv := server.New(server.Config{ReapInterval: -1})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	starDB, starQ, _ := workload.Star(3, 8)
	sess, err := qc.Dial(context.Background(), ts.URL, starDB, qc.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	r, err := sess.WhySo(context.Background(), starQ)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, serr := range r.RankStream(context.Background()) {
		if serr != nil {
			t.Fatal(serr)
		}
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("consumed %d explanations before break", n)
	}
	// The session keeps working after the abandoned stream.
	if _, err := r.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
}
