#!/bin/sh
# Regenerates the golden public-API surface after an intentional
# change. CI diffs `go doc -all .` against api/querycause.txt.
set -eu
cd "$(dirname "$0")/.."
go doc -all . > api/querycause.txt
echo "api/querycause.txt refreshed"
