// Golden-stdout tests for the runnable examples: each example binary
// runs as a subprocess and its output is pinned to a golden file, so
// the examples cannot rot against the API they demonstrate. Every
// example is deterministic by construction (fixed instances or seeded
// generators; streamed output in the deterministic default order).
//
// Refresh the goldens after an intentional output change with
//
//	go test ./examples -run TestExampleGolden -args -update-golden
package examples_test

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

func TestExampleGolden(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	for _, name := range []string{"quickstart", "imdb", "whynot", "dichotomy", "stream"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(goBin, "run", "./examples/"+name)
			cmd.Dir = ".." // repository root, as the example headers document
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run ./examples/%s: %v\nstderr:\n%s", name, err, stderr.String())
			}
			got := stdout.Bytes()

			golden := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update-golden to record)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("examples/%s output changed\ngot:\n%s\nwant:\n%s", name, got, want)
			}
		})
	}
}
