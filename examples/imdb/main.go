// IMDB example: the paper's running example (Figures 1 and 2). Why does
// the genre query on Burton movies return the surprising answer
// "Musical"? The ranking reproduces Fig. 2b: Sweeney Todd and the three
// Burton directors lead with ρ = 1/3 — revealing both Tim Burton's one
// musical and the ambiguity of "Burton".
//
// It imports the module root, github.com/querycause/querycause. Run
// from the repository root with:
//
//	go run ./examples/imdb
//
// The batch API (ExplainAll / RankParallel) and the querycaused
// explanation server build on the same entry points; see doc.go and
// cmd/querycaused.
package main

import (
	"fmt"
	"log"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
)

func main() {
	// The exact Fig. 2a micro-instance (Director and Movie endogenous,
	// MovieDirectors and Genre exogenous).
	db, _ := imdb.Micro()
	q := imdb.GenreQuery()
	fmt.Printf("query: %v\n\n", q)

	ex, err := qc.WhySo(db, q, "Musical")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Why is Musical an answer? causes ranked by responsibility (Fig. 2b):")
	fmt.Print(qc.FormatExplanations(db, ex.MustRank()))

	cert, err := ex.Classification()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe bound query is %v: responsibilities via Algorithm 1 (max-flow)\n", cert.Class)

	// The same on a larger synthetic IMDB: every genre of every Burton.
	syn := imdb.Synthetic(imdb.Config{Seed: 7, Directors: 40})
	answers, err := qc.Answers(syn, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthetic IMDB (%d tuples): top cause per Burton genre\n", syn.NumTuples())
	for _, a := range answers {
		ex, err := qc.WhySo(syn, q, a.Values[0])
		if err != nil {
			log.Fatal(err)
		}
		ranked := ex.MustRank()
		if len(ranked) == 0 {
			continue
		}
		fmt.Printf("  %-12s lineage=%-3d top: ρ=%.2f %v\n",
			a.Values[0], len(a.Valuations), ranked[0].Rho, syn.Tuple(ranked[0].Tuple))
	}
}
