// IMDB example: the paper's running example (Figures 1 and 2). Why does
// the genre query on Burton movies return the surprising answer
// "Musical"? The ranking reproduces Fig. 2b: Sweeney Todd and the three
// Burton directors lead with ρ = 1/3 — revealing both Tim Burton's one
// musical and the ambiguity of "Burton".
//
// It imports the module root, github.com/querycause/querycause. Run
// from the repository root with:
//
//	go run ./examples/imdb
//
// Explanation goes through the Session API (Open); qc.Dial would run
// the identical code against a querycaused server.
package main

import (
	"context"
	"fmt"
	"log"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/imdb"
)

func main() {
	ctx := context.Background()
	// The exact Fig. 2a micro-instance (Director and Movie endogenous,
	// MovieDirectors and Genre exogenous).
	db, _ := imdb.Micro()
	q := imdb.GenreQuery()
	fmt.Printf("query: %v\n\n", q)

	sess, err := qc.Open(db)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	r, err := sess.WhySo(ctx, q, "Musical")
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := r.Rank(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Why is Musical an answer? causes ranked by responsibility (Fig. 2b):")
	fmt.Print(qc.FormatExplanations(db, ranked))

	bq, err := q.Bind("Musical")
	if err != nil {
		log.Fatal(err)
	}
	cert, err := qc.ClassifySound(bq, func(rel string) bool { return rel == "Director" || rel == "Movie" })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe bound query is %v: responsibilities via Algorithm 1 (max-flow)\n", cert.Class)

	// The same on a larger synthetic IMDB: every genre of every Burton.
	syn := imdb.Synthetic(imdb.Config{Seed: 7, Directors: 40})
	answers, err := qc.Answers(syn, q)
	if err != nil {
		log.Fatal(err)
	}
	synSess, err := qc.Open(syn)
	if err != nil {
		log.Fatal(err)
	}
	defer synSess.Close()
	fmt.Printf("\nsynthetic IMDB (%d tuples): top cause per Burton genre\n", syn.NumTuples())
	for _, a := range answers {
		r, err := synSess.WhySo(ctx, q, a.Values[0])
		if err != nil {
			log.Fatal(err)
		}
		ranked, err := r.Rank(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if len(ranked) == 0 {
			continue
		}
		fmt.Printf("  %-12s lineage=%-3d top: ρ=%.2f %v\n",
			a.Values[0], len(a.Valuations), ranked[0].Rho, syn.Tuple(ranked[0].Tuple))
	}
}
