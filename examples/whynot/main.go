// Why-Not example: explaining a NON-answer (Section 2, Why-No
// causality; Theorem 4.17). The real database is exogenous; candidate
// missing tuples are endogenous; causes are the insertions that would
// produce the missing answer, ranked by how few companions they need.
//
// It imports the module root, github.com/querycause/querycause. Run
// from the repository root with:
//
//	go run ./examples/whynot
//
// Explanation goes through the Session API (Open); qc.Dial would run
// the identical code against a querycaused server. Invalid Why-No
// instances fail with qc.ErrInvalidWhyNo on either transport.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	qc "github.com/querycause/querycause"
)

const realDB = `
# Real database (exogenous): courses taken by students.
-Took(alice, databases)
-Took(alice, algorithms)
-Took(bob, databases)
# Honors requirements met (exogenous).
-Honors(algorithms)
-Honors(theory)
`

func main() {
	db, err := qc.ParseDatabase(strings.NewReader(realDB))
	if err != nil {
		log.Fatal(err)
	}
	// Why is bob NOT on the dean's list? The query needs an honors
	// course taken by the student.
	q, err := qc.ParseQuery("deans(s) :- Took(s, c), Honors(c)")
	if err != nil {
		log.Fatal(err)
	}

	// Candidate missing tuples Dⁿ (in a real system these come from
	// provenance of non-answers; here we enumerate plausible ones).
	db.MustAdd("Took", true, "bob", "algorithms")
	db.MustAdd("Took", true, "bob", "theory")
	db.MustAdd("Honors", true, "databases")
	// A pair that only works together: logic is not an honors course
	// yet, and bob has not taken it.
	db.MustAdd("Took", true, "bob", "logic")
	db.MustAdd("Honors", true, "logic")

	ctx := context.Background()
	sess, err := qc.Open(db)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	r, err := sess.WhyNo(ctx, q, "bob")
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := r.Rank(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Why is bob NOT on the dean's list?")
	fmt.Println("candidate insertions ranked by responsibility:")
	for _, e := range ranked {
		fmt.Printf("  ρ=%.2f  insert %v (needs %d companion insertion(s))\n",
			e.Rho, db.Tuple(e.Tuple), e.ContingencySize)
	}
	// Took(bob, algorithms), Took(bob, theory) and Honors(databases) are
	// counterfactual (ρ=1): each alone creates the answer. Took(bob,
	// logic) and Honors(logic) carry ρ=1/2: each needs the other as a
	// companion insertion (Theorem 4.17: Why-No contingencies never
	// exceed m-1 tuples, so ranking is polynomial).
}
