// Streaming example: incremental rankings on the NP-hard side of the
// dichotomy. The query below is the canonical hard star h₁* of
// Theorem 4.1 — q :- A(x), B(y), C(z), W(x,y,z) — so every
// non-counterfactual responsibility needs an exact branch-and-bound
// search and a blocking Rank pays for all of them before returning
// anything. RankStream yields each cause's explanation the moment its
// own search finishes: the first line appears after one search, and
// draining the stream and sorting reproduces Rank exactly.
//
// The same loop runs against a querycaused server by replacing
// qc.Open(db) with qc.Dial(ctx, url, db) — the stream then arrives as
// NDJSON over HTTP, one explanation per line.
//
// Run from the repository root with:
//
//	go run ./examples/stream
package main

import (
	"context"
	"fmt"
	"log"

	qc "github.com/querycause/querycause"
)

func main() {
	ctx := context.Background()

	// A small h₁* instance: n values per unary relation, the witnesses
	// W wired so several causes need nontrivial contingencies.
	db := qc.NewDatabase()
	const n = 4
	val := func(i int) qc.Value { return qc.Value(fmt.Sprintf("d%d", i)) }
	for i := 0; i < n; i++ {
		db.MustAdd("A", true, val(i))
		db.MustAdd("B", true, val(i))
		db.MustAdd("C", true, val(i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			db.MustAdd("W", true, val(i), val(j), val((i+j)%n))
		}
	}
	q, err := qc.ParseQuery("q :- A(x), B(y), C(z), W(x,y,z)")
	if err != nil {
		log.Fatal(err)
	}

	sess, err := qc.Open(db, qc.WithParallelism(2))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	r, err := sess.WhySo(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	causes, err := r.Causes(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v is NP-hard (h1*): %d causes, one exact search each\n", q, len(causes))
	fmt.Println("streaming explanations as each search completes:")

	var streamed []qc.Explanation
	for e, err := range r.RankStream(ctx) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ρ=%.2f  min|Γ|=%d  %v\n", e.Rho, e.ContingencySize, db.Tuple(e.Tuple))
		streamed = append(streamed, e)
	}

	// Drained and sorted, the stream IS the blocking ranking.
	qc.SortExplanations(streamed)
	ranked, err := r.Rank(ctx)
	if err != nil {
		log.Fatal(err)
	}
	same := len(streamed) == len(ranked)
	for i := 0; same && i < len(ranked); i++ {
		same = streamed[i].Tuple == ranked[i].Tuple && streamed[i].Rho == ranked[i].Rho
	}
	fmt.Printf("\ndrained stream == blocking Rank: %v (top: ρ=%.2f %v)\n",
		same, ranked[0].Rho, db.Tuple(ranked[0].Tuple))
}
