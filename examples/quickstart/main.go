// Quickstart: the paper's Example 2.2 end to end — build a database,
// mark tuples endogenous, run a query, and rank the causes of an answer
// by responsibility, through the Session API (Open). Swapping
// qc.Open(db) for qc.Dial(ctx, url, db) runs the identical code
// against a querycaused server.
//
// It imports the module root, github.com/querycause/querycause. Run
// from the repository root with:
//
//	go run ./examples/quickstart
//
// See examples/stream for streamed rankings and doc.go for the full
// Session story (options, error taxonomy, batching).
package main

import (
	"context"
	"fmt"
	"log"

	qc "github.com/querycause/querycause"
)

func main() {
	ctx := context.Background()

	// The instance of Example 2.2: R = {(a1,a5),(a2,a1),(a3,a3),(a4,a3),
	// (a4,a2)}, S = {a1,…,a4,a6}, all tuples endogenous.
	db := qc.NewDatabase()
	for _, row := range [][2]qc.Value{
		{"a1", "a5"}, {"a2", "a1"}, {"a3", "a3"}, {"a4", "a3"}, {"a4", "a2"},
	} {
		db.MustAdd("R", true, row[0], row[1])
	}
	for _, v := range []qc.Value{"a1", "a2", "a3", "a4", "a6"} {
		db.MustAdd("S", true, v)
	}

	q, err := qc.ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		log.Fatal(err)
	}

	// All answers, with their lineage sizes.
	answers, err := qc.Answers(db, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("answers of q(x) :- R(x,y), S(y):")
	for _, a := range answers {
		fmt.Printf("  %v (%d valuation(s))\n", a.Values, len(a.Valuations))
	}

	// One Session over the database; qc.Dial(ctx, serverURL, db) would
	// serve the same calls over HTTP.
	sess, err := qc.Open(db)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// Why is a2 an answer? S(a1) is counterfactual (ρ = 1): remove it
	// and the answer disappears.
	explainAnswer(ctx, sess, db, q, "a2")

	// Why is a4 an answer? S(a3) is an actual cause with contingency
	// {S(a2)}: after removing S(a2), removing S(a3) kills the answer.
	explainAnswer(ctx, sess, db, q, "a4")
}

func explainAnswer(ctx context.Context, sess qc.Session, db *qc.Database, q *qc.Query, answer qc.Value) {
	r, err := sess.WhySo(ctx, q, answer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWhy is %s an answer?\n", answer)
	ranked, err := r.Rank(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range ranked {
		fmt.Printf("  ρ=%.2f  %v", e.Rho, db.Tuple(e.Tuple))
		if len(e.Contingency) > 0 {
			fmt.Print("  — counterfactual after removing ")
			for i, id := range e.Contingency {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Print(db.Tuple(id))
			}
		} else {
			fmt.Print("  — counterfactual as-is")
		}
		fmt.Println()
	}
}
