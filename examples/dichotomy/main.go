// Dichotomy example: classify queries per Corollary 4.14 and show the
// certificates — a weakening sequence plus linear order on the PTIME
// side, a rewrite chain to a canonical hard query on the NP-hard side
// (Examples 4.8 and 4.12 of the paper).
//
// It imports the module root, github.com/querycause/querycause. Run
// from the repository root with:
//
//	go run ./examples/dichotomy
//
// The batch API (ExplainAll / RankParallel) and the querycaused
// explanation server build on the same entry points; see doc.go and
// cmd/querycaused.
package main

import (
	"fmt"
	"log"

	qc "github.com/querycause/querycause"
)

func main() {
	endoAll := func(string) bool { return true }
	cases := []struct {
		text string
		endo func(string) bool
	}{
		{"q :- R(x,y), S(y,z)", endoAll},
		{"q :- R(x,y), S(y,z), T(z,x)", endoAll},                                 // h2*
		{"q :- R(x,y), S(y,z), T(z,x)", func(r string) bool { return r != "S" }}, // Ex. 4.12a
		{"q :- R(x,y), S(y,z), T(z,u), K(u,x)", endoAll},                         // Ex. 4.8
		{"q :- A(x), B(y), C(z), W(x,y,z)", endoAll},                             // h1*
		{"q :- R(x,y), S(y,z), T(z,x), V(x)", endoAll},                           // Ex. 4.12b
	}
	for _, c := range cases {
		q, err := qc.ParseQuery(c.text)
		if err != nil {
			log.Fatal(err)
		}
		paper, err := qc.Classify(q, c.endo)
		if err != nil {
			log.Fatal(err)
		}
		sound, err := qc.ClassifySound(q, c.endo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v\n", paper.Input)
		fmt.Printf("  paper rule: %v", paper.Class)
		if paper.Class == qc.ClassNPHard {
			fmt.Printf(" (rewrites to %s in %d step(s))", paper.Hard, len(paper.Rewrites))
			for _, op := range paper.Rewrites {
				fmt.Printf("\n      ⇝ %s", op.Kind)
			}
		}
		if paper.Class.PTime() {
			fmt.Printf(" (%d weakening step(s), linear order %v)", len(paper.Weakening), paper.LinearOrder)
		}
		fmt.Printf("\n  sound rule: %v", sound.Class)
		if paper.Class.PTime() && !sound.Class.PTime() {
			fmt.Printf("  ← paper's certificate uses an unsound domination; the engine uses exact search")
		}
		fmt.Println()
		fmt.Println()
	}
}
