// Package querycause is a from-scratch Go implementation of
//
//	Meliou, Gatterbauer, Moore, Suciu:
//	"The Complexity of Causality and Responsibility for Query Answers
//	and non-Answers", PVLDB 4(1), 2010 (also UW CSE TR / arXiv:1009.2021)
//
// The module path is github.com/querycause/querycause; import this
// root package as
//
//	import qc "github.com/querycause/querycause"
//
// It explains answers and non-answers of conjunctive queries over
// relational data through the lens of actual causality: given a
// database partitioned into endogenous tuples (candidate causes) and
// exogenous tuples (context), it computes
//
//   - the actual causes of an answer (Why-So) or non-answer (Why-No) —
//     always in polynomial time, by the n-lineage criterion of
//     Theorem 3.2, or equivalently by a generated stratified Datalog¬
//     program (Theorem 3.4);
//   - each cause's responsibility ρ_t = 1/(1+min|Γ|) over contingency
//     sets Γ (Definition 2.3) — by the max-flow Algorithm 1 when the
//     query is (weakly) linear, and by exact branch-and-bound search on
//     the NP-hard side of the dichotomy of Corollary 4.14;
//   - the dichotomy classification itself, with replayable certificates
//     (weakening sequences or rewrite chains to the canonical hard
//     queries h₁*, h₂*, h₃* of Theorem 4.1).
//
// # The Session API: one interface, two transports
//
// All explanation goes through the Session interface. Open(db) runs
// the engine in-process; Dial(ctx, url, db) uploads the database into
// a querycaused server and serves the same interface over HTTP. The
// two transports are deliberately indistinguishable — byte-identical
// rankings, errors.Is-equal failures — and the differential harness
// (internal/difftest) enforces that equivalence on randomized
// instances in CI.
//
//	sess, _ := qc.Open(db)                        // in-process
//	// sess, _ := qc.Dial(ctx, serverURL, db)     // same calls over HTTP
//	defer sess.Close()
//
//	r, err := sess.WhySo(ctx, q, "a4")            // causes computed here (PTIME)
//	if err != nil { ... }
//	ranked, err := r.Rank(ctx)                    // the Fig. 2b ranking
//
// Every method is context-first; cancellation and deadlines propagate
// into the engine (between per-cause computations) and over the wire.
// Functional options configure a session at Open/Dial or per call:
//
//	qc.Open(db, qc.WithMode(qc.ModeExact), qc.WithParallelism(8))
//	r.Rank(ctx, qc.WithTimeout(5*time.Second))
//
// WithMode picks the responsibility strategy, WithParallelism the
// worker count (rankings are byte-identical at every degree),
// WithTimeout a per-call budget, WithDeterministic the streaming
// emission order; WithHTTPClient and WithRetries tune a Dial'ed
// session's transport.
//
// # Mutable sessions
//
// Sessions are not frozen at the database they were opened with:
// Session.Insert appends tuples (an atomic, validated batch returning
// the assigned tuple ids) and Session.Delete removes one tuple by id.
// Ids are never reused — a deleted id stays dead, Delete on it fails
// with ErrTupleNotFound, and historical explanations keep rendering
// the removed tuple. Mutations serialize against in-flight explains on
// both transports; Rankings opened before a mutation are stale and
// should be re-opened.
//
// Mutating beats re-uploading because invalidation is incremental: the
// server consults the lineage each cached per-answer engine already
// computed and drops only what the mutation can actually change —
// deleting an endogenous tuple invalidates exactly the engines whose
// cause set contains it (Theorem 3.2 makes the cause set the lineage
// variables), inserts and exogenous deletes invalidate engines over
// queries mentioning the relation, and only a mutation that flips a
// relation's endogeneity (first endogenous tuple in, or last one out)
// touches the cached dichotomy certificates whose shape mentions it
// (classification runs against the endogenous/exogenous split,
// Corollary 4.14). Everything else keeps answering warm, and the
// differential harness holds the surviving state byte-identical to a
// cold rebuild at the final version.
//
// # Live explanations
//
// Session.Watch turns an explanation from a poll into a subscription:
// it yields a snapshot of the current ranking and then one diff frame
// per mutation call, each carrying the causes added and removed, the
// causes whose responsibility changed (old ρ, new ρ, new
// explanation), and the database version it brings the subscriber to:
//
//	for ev, err := range sess.Watch(ctx, qc.WatchSpec{Query: q, Answer: []qc.Value{"a4"}}) {
//	    if err != nil { ... }              // terminal: cancellation or setup
//	    state = qc.ApplyDiff(state, ev)    // replay ≡ cold Rank at ev.Version
//	}
//
// ApplyDiff is the canonical replay, and the contract it folds over is
// enforced by the differential harness: after any mutation sequence,
// the replayed frames equal a cold ranking at the final version byte
// for byte, on both transports (remotely the stream is NDJSON from
// POST …/watch, routed to the session's owning node on a cluster). A
// slow consumer is never left silently stale — when its frame buffer
// overflows, the backlog is dropped and a full_resync frame carries
// the complete current ranking instead. WhyNo watches subscribe to a
// non-answer the same way.
//
// Under the hood, mutations keep watched engines warm through delta
// maintenance (internal/delta): instead of dropping a cached engine
// whose relation was touched, the server patches its lineage DNF in
// place when the patch is provably equivalent (endogenous inserts and
// deletes; exogenous deletes and why-no engines fall back cold), so
// the re-ranking behind each diff frame skips re-evaluating the
// query. The mutate response and /v1/stats report the split
// (engines_patched vs delta_fallbacks); BENCH_delta.json records the
// win over cold rebuilds on the million-tuple curve.
//
// # Streaming rankings
//
// The dichotomy makes full rankings either instant (max-flow) or
// minutes-long (one NP-hard exact search per cause). RankStream
// returns a Go iterator that yields each cause's explanation the
// moment its own computation completes, so the first explanation of
// an NP-hard instance costs one search instead of all of them:
//
//	for e, err := range r.RankStream(ctx) {
//	    if err != nil { ... }          // terminal: cancellation or setup
//	    fmt.Printf("ρ=%.2f %v\n", e.Rho, db.Tuple(e.Tuple))
//	}
//
// The default emission order is ascending cause order — deterministic
// for every worker count and identical on both transports (over HTTP
// the stream is NDJSON from POST …/explain/stream);
// WithDeterministic(false) switches to completion order for minimal
// time-to-first-explanation. Either way, a drained stream sorted with
// SortExplanations equals Rank byte-for-byte. BENCH_api.json records
// the time-to-first-explanation win and the per-transport overhead.
//
// # The error taxonomy
//
// Failures are tagged with sentinel errors — ErrBadQuery,
// ErrBadInstance, ErrInvalidWhyNo, ErrNotCause, ErrSessionNotFound,
// ErrQueryNotFound, ErrTupleNotFound, ErrBudgetExceeded,
// ErrSessionClosed — carried as
// machine-readable codes in the wire ErrorResponse and rehydrated by
// the client, so callers branch the same way on either transport:
//
//	if errors.Is(err, qc.ErrInvalidWhyNo) { ... }   // local and remote
//
// Messages remain human-readable; ErrorCode(err) exposes the wire
// code.
//
// # Batching and the explanation server
//
// Session.ExplainAll explains many answers/non-answers in one call,
// fanned out across a worker pool (in-process) or through the
// server's batch endpoint (remote) with identical semantics. The
// querycaused server itself (cmd/querycaused, internal/server) keeps
// a session registry with LRU/TTL eviction, prepared queries
// classified once, and certificate/lineage caches, behind
// admission-controlled JSON endpoints. Three commands build on the
// library:
//
//	go run ./cmd/causality    one-shot explanations (add -server URL for
//	                          remote, -stream for incremental output)
//	go run ./cmd/experiments  every figure/table/construction of the paper
//	                          (plus a server load generator, -run load)
//	go run ./cmd/querycaused  the long-running explanation server
//
// The v1 context-free surface (WhySo/WhyNo returning an Explainer,
// ExplainAll over BatchOptions, the raw Client) remains as thin
// deprecated wrappers; see the "API v2 migration" section in
// README.md for the mapping.
//
// # Clustering and durability
//
// querycaused shards horizontally: started with -self and an initial
// -peers list, each node joins a consistent-hash ring
// (internal/cluster) that assigns every session id exactly one owner.
// Session-id minting picks ids the creating node owns, so uploads
// never hop; a request landing on the wrong node is answered with a
// 307 to the owner (or reverse-proxied under -cluster-proxy), and GET
// /v1/cluster publishes the topology. The client follows one cluster
// hop transparently, and Dial probes the topology to connect straight
// to the owner. With -persist-dir set, sessions are snapshotted
// write-behind (versioned, checksummed gob, one file per session
// under the directory) every -persist-interval, flushed on SIGTERM,
// and restored warm at boot — same session ids, prepared-query ids,
// and cached certificates — so a drained replica loses nothing.
// Per-session explain budgets (-session-budget) shed runaway tenants
// with ErrBudgetExceeded. See "Running a cluster" in README.md.
//
// # Surviving failures
//
// Membership is dynamic: the ring is versioned by an epoch, and
// Client.JoinNode / Client.RemoveNode (POST/DELETE /v1/cluster/nodes
// against any member) mint the next epoch and propagate it to every
// node with epoch-monotone installs. A topology change rebalances:
// sessions whose ids now hash elsewhere are frozen, snapshotted, and
// handed to their new owners warm — caches, prepared queries, and the
// idempotency ledger included — while racing requests get 503 +
// Retry-After rather than errors. Redirects carry the new epoch in
// X-Cluster-Epoch so pinned clients refresh their ring. On the client
// side, retries back off exponentially with jitter (honoring a
// server-sent Retry-After), mutation retries are deduplicated with
// Idempotency-Key so an ambiguous timeout cannot double-apply, a dead
// pinned base fails over to SetFallbacks bases, and watch streams
// reconnect with resume_from to continue their diff chain gap-free
// (or re-seed with one full_resync when the server's replay buffer no
// longer covers the gap). internal/faultinject drops, delays, errors,
// and truncates requests at the transport to prove all of it: the
// differential sweep runs under injected faults, and the chaoscurve
// soak (cmd/experiments -run chaoscurve) joins and kills nodes under
// mixed load with live watches, requiring zero unrecovered failures
// and byte-equal watch replays. See "Operating the cluster" in
// README.md.
//
// # The data plane
//
// Databases are stored columnar and dictionary-interned
// (internal/rel): per-column uint32 code vectors over a per-database
// value dictionary, with lazily built copy-on-write code indexes.
// Query evaluation is a planned streaming pipeline (internal/ra) —
// atoms ordered by selectivity, hash joins keyed on shared variables,
// bindings flowing through reusable buffers — and every valuation
// carries the witness rows that produced it, so lineage is captured
// during evaluation rather than recomputed in a second pass. The
// naive row-at-a-time reference evaluator remains available
// (rel.EvalNaive), and the differential harness holds the two planes
// to identical valuations and byte-identical lineage DNFs.
// BENCH_eval.json records the size curve to a million tuples.
//
// # Verifying the dichotomy
//
// The dichotomy is not just implemented but continuously enforced by
// a differential and metamorphic harness (internal/difftest): a
// seeded generator emits arbitrary safe conjunctive queries with
// randomized endogenous/exogenous masks (Why-So and Why-No), and
// every instance is cross-checked — flow vs exact rankings, every
// contingency set witness-validated against the database, brute-force
// oracles confirming each minimum and each non-cause, the Theorem 3.4
// Datalog¬ program re-deriving the cause set, metamorphic invariants
// (exogenous duplication, non-cause exogenous marking, irrelevant
// growth), a byte-level replay through the querycaused server, the
// Session-transport equivalence above, and seeded random mutation
// sequences whose incrementally-maintained session state must equal a
// cold rebuild at the final version byte-for-byte. Instances derive from a
// single int64 seed, so any failure reproduces with
//
//	go test ./internal/difftest -run 'TestDifferentialSweep$' -args -seed=<N> -n=1
//
// and is auto-shrunk for internal/difftest/testdata/. CI sweeps 4k
// instances under the race detector on every push and soaks 50k
// nightly via cmd/fuzzcause; go test -fuzz targets
// (FuzzDifferential, FuzzGreedyVsExact, FuzzParseDatabase,
// FuzzParseQuery) extend the search coverage-guided.
//
// # Fidelity notes
//
// The library reproduces every definition, algorithm, worked example
// and reduction in the paper, and documents two findings made during
// the reproduction (see the tests in internal/core and
// internal/rewrite): the domination rule of Definition 4.9 does not
// always preserve responsibility (Example 4.12b admits a concrete
// counterexample instance), and the dichotomy machinery of Theorem 4.13
// implicitly assumes connected queries. The default engine therefore
// uses a provably sound restriction of domination and falls back to
// exact search elsewhere; ModePaper reproduces the paper's literal
// behaviour.
package querycause
