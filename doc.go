// Package querycause is a from-scratch Go implementation of
//
//	Meliou, Gatterbauer, Moore, Suciu:
//	"The Complexity of Causality and Responsibility for Query Answers
//	and non-Answers", PVLDB 4(1), 2010 (also UW CSE TR / arXiv:1009.2021)
//
// The module path is github.com/querycause/querycause; import this
// root package as
//
//	import qc "github.com/querycause/querycause"
//
// It explains answers and non-answers of conjunctive queries over
// relational data through the lens of actual causality: given a
// database partitioned into endogenous tuples (candidate causes) and
// exogenous tuples (context), it computes
//
//   - the actual causes of an answer (Why-So) or non-answer (Why-No) —
//     always in polynomial time, by the n-lineage criterion of
//     Theorem 3.2, or equivalently by a generated stratified Datalog¬
//     program (Theorem 3.4);
//   - each cause's responsibility ρ_t = 1/(1+min|Γ|) over contingency
//     sets Γ (Definition 2.3) — by the max-flow Algorithm 1 when the
//     query is (weakly) linear, and by exact branch-and-bound search on
//     the NP-hard side of the dichotomy of Corollary 4.14;
//   - the dichotomy classification itself, with replayable certificates
//     (weakening sequences or rewrite chains to the canonical hard
//     queries h₁*, h₂*, h₃* of Theorem 4.1).
//
// # Quick start
//
//	db := querycause.NewDatabase()
//	db.MustAdd("R", true, "a4", "a3") // endogenous
//	db.MustAdd("S", true, "a3")
//	db.MustAdd("S", true, "a2")
//	q, _ := querycause.ParseQuery("q(x) :- R(x,y), S(y)")
//	ex, _ := querycause.WhySo(db, q, "a4")
//	for _, e := range ex.MustRank() {
//	    fmt.Printf("ρ=%.2f %v\n", e.Rho, db.Tuple(e.Tuple))
//	}
//
// Runnable versions of this and the paper's other worked examples live
// under examples/:
//
//	go run ./examples/quickstart
//	go run ./examples/imdb
//	go run ./examples/whynot
//	go run ./examples/dichotomy
//
// # Batch explanation and parallelism
//
// Each cause's responsibility is an independent computation over the
// shared immutable lineage, so rankings parallelize without locking.
// Explainer.RankParallel fans one answer's causes out across a worker
// pool, and ExplainAll explains many answers/non-answers of a workload
// in one call:
//
//	exps, _ := ex.RankParallel(ctx, querycause.BatchOptions{Parallelism: 8})
//	results, _ := querycause.ExplainAll(ctx, db, reqs, querycause.BatchOptions{})
//
// BatchOptions.Parallelism defaults to runtime.GOMAXPROCS(0); both
// entry points honor context cancellation and return rankings
// byte-identical to the serial Rank for every parallelism degree.
//
// # Commands and the explanation server
//
// Three commands build on the library:
//
//	go run ./cmd/causality    one-shot explanations and classification
//	go run ./cmd/experiments  every figure/table/construction of the paper
//	                          (plus a server load generator, -run load)
//	go run ./cmd/querycaused  the long-running explanation server
//
// querycaused (see internal/server and README.md) serves concurrent
// why-so/why-no/batch explanations over a JSON HTTP API. Databases are
// uploaded once into a session registry (LRU + idle-TTL eviction);
// prepared queries are parsed, classified, and rewritten once, with
// dichotomy certificates and per-answer engines (lineages) cached in
// LRUs so repeated explains skip straight to responsibility ranking.
// Client, the thin Go client in this package, speaks that API:
//
//	c := querycause.NewClient("http://localhost:8347", nil)
//	info, _ := c.UploadDB(ctx, db)
//	prep, _ := c.PrepareQuery(ctx, info.ID, "q(x) :- R(x,y), S(y)")
//	resp, _ := c.WhySo(ctx, info.ID, prep.ID, querycause.ExplainRequest{Answer: []string{"a4"}})
//
// # Verifying the dichotomy
//
// The dichotomy is not just implemented but continuously enforced by
// a differential and metamorphic harness (internal/difftest): a
// seeded generator emits arbitrary safe conjunctive queries with
// randomized endogenous/exogenous masks (Why-So and Why-No), and
// every instance is cross-checked — flow vs exact rankings, every
// contingency set witness-validated against the database, brute-force
// oracles confirming each minimum and each non-cause, the Theorem 3.4
// Datalog¬ program re-deriving the cause set, mutation invariants
// (exogenous duplication, non-cause exogenous marking, irrelevant
// growth), and a byte-level replay through the querycaused server.
// Instances derive from a single int64 seed, so any failure
// reproduces with
//
//	go test ./internal/difftest -run 'TestDifferentialSweep$' -args -seed=<N> -n=1
//
// and is auto-shrunk for internal/difftest/testdata/. CI sweeps 4k
// instances under the race detector on every push and soaks 50k
// nightly via cmd/fuzzcause; go test -fuzz targets
// (FuzzDifferential, FuzzGreedyVsExact, FuzzParseDatabase,
// FuzzParseQuery) extend the search coverage-guided.
//
// # Fidelity notes
//
// The library reproduces every definition, algorithm, worked example
// and reduction in the paper, and documents two findings made during
// the reproduction (see the tests in internal/core and
// internal/rewrite): the domination rule of Definition 4.9 does not
// always preserve responsibility (Example 4.12b admits a concrete
// counterexample instance), and the dichotomy machinery of Theorem 4.13
// implicitly assumes connected queries. The default engine therefore
// uses a provably sound restriction of domination and falls back to
// exact search elsewhere; ModePaper reproduces the paper's literal
// behaviour.
package querycause
