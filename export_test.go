package querycause

import "time"

// SetRetryBackoffBase swaps the client retry/reconnect backoff seed
// for tests and returns a restore func. Not safe while requests are
// in flight on other clients.
func SetRetryBackoffBase(d time.Duration) func() {
	old := retryBackoffBase
	retryBackoffBase = d
	return func() { retryBackoffBase = old }
}
