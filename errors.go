package querycause

import "github.com/querycause/querycause/internal/qerr"

// The error taxonomy of the explanation API. Every failure a caller
// can branch on is tagged with exactly one of these sentinels, carried
// as a machine-readable code over the wire and rehydrated by the
// client, so
//
//	errors.Is(err, querycause.ErrInvalidWhyNo)
//
// holds for the same failure whether the Session was Open'ed
// in-process or Dial'ed to a remote querycaused server. Messages stay
// human-readable and unchanged from v1; only the tags are new.
var (
	// ErrBadQuery: the query (or database text) does not parse.
	ErrBadQuery error = qerr.ErrBadQuery
	// ErrBadInstance: syntactically valid input that is semantically
	// unusable — answer-binding arity mismatch, atom arity mismatch
	// against the database, head variables missing from the body.
	ErrBadInstance error = qerr.ErrBadInstance
	// ErrInvalidWhyNo: the Why-No preconditions of Section 2 fail (the
	// query already holds on the real database, or cannot hold even
	// with every candidate tuple inserted).
	ErrInvalidWhyNo error = qerr.ErrInvalidWhyNo
	// ErrNotCause: a responsibility was requested for a tuple that can
	// never be a cause (exogenous, or not a tuple of the database).
	ErrNotCause error = qerr.ErrNotCause
	// ErrSessionNotFound: the remote database session does not exist
	// (dropped, or evicted by the server's LRU/TTL policies).
	ErrSessionNotFound error = qerr.ErrSessionNotFound
	// ErrQueryNotFound: the addressed prepared query does not exist.
	ErrQueryNotFound error = qerr.ErrQueryNotFound
	// ErrTupleNotFound: Session.Delete addressed a tuple id that is not
	// live — never assigned, or already deleted (ids are never reused).
	ErrTupleNotFound error = qerr.ErrTupleNotFound
	// ErrBudgetExceeded: the computation did not finish within its
	// admission/timeout budget (server at capacity, or the request
	// deadline expired while queued or computing).
	ErrBudgetExceeded error = qerr.ErrBudgetExceeded
	// ErrSessionClosed: the Session was used after Close.
	ErrSessionClosed error = qerr.ErrSessionClosed
)

// ErrorCode returns the stable machine-readable code of err's taxonomy
// sentinel ("bad_query", "invalid_whyno", …), or "" when err carries
// none. It is the same code the wire ErrorResponse carries.
func ErrorCode(err error) string { return qerr.CodeOf(err) }
