package querycause_test

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	qc "github.com/querycause/querycause"
)

// TestClientDrainCap pins the shared body-drain cap across the two
// paths that abandon a response body: error decoding and cluster
// redirects. A body under the cap is drained in full so net/http can
// reuse the connection; one over the cap is abandoned, which costs the
// connection but never blocks the call. The redirect rows are the
// regression test for the old behavior, where redirects kept a private
// 4 KiB cap and quietly broke keep-alive on any redirect body bigger
// than that.
func TestClientDrainCap(t *testing.T) {
	cases := []struct {
		name     string
		redirect bool
		pad      int   // filler bytes in the response body
		wantConn int32 // connections the front server sees across 2 calls
		wantCode string
	}{
		{name: "error body under cap reuses connection", pad: 256 << 10, wantConn: 1, wantCode: "bad_instance"},
		// Over the cap the JSON is truncated, so the code is lost too —
		// the message falls back to the (bounded) raw prefix.
		{name: "error body over cap closes connection", pad: 3 << 20, wantConn: 2, wantCode: ""},
		{name: "redirect body under cap reuses connection", redirect: true, pad: 256 << 10, wantConn: 1},
		{name: "redirect body over cap closes connection", redirect: true, pad: 3 << 20, wantConn: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.Write([]byte(`{}`))
			}))
			defer owner.Close()

			pad := strings.Repeat("x", tc.pad)
			front := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if tc.redirect {
					w.Header().Set("Location", owner.URL+r.URL.RequestURI())
					w.WriteHeader(http.StatusTemporaryRedirect)
					w.Write([]byte(pad))
					return
				}
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusUnprocessableEntity)
				w.Write([]byte(`{"error":"` + pad + `","code":"bad_instance"}`))
			}))
			var conns atomic.Int32
			front.Config.ConnState = func(c net.Conn, s http.ConnState) {
				if s == http.StateNew {
					conns.Add(1)
				}
			}
			front.Start()
			defer front.Close()

			// A private transport so this test owns its connection pool.
			hc := &http.Client{Transport: &http.Transport{}}
			defer hc.CloseIdleConnections()
			c := qc.NewClient(front.URL, hc)
			for i := 0; i < 2; i++ {
				_, err := c.WhySo(context.Background(), "d1", "", qc.ExplainRequest{
					Query:  "q(x) :- R(x,y)",
					Answer: []string{"a"},
				})
				if tc.redirect {
					if err != nil {
						t.Fatalf("call %d through redirect: %v", i, err)
					}
					continue
				}
				var apiErr *qc.APIError
				if !errors.As(err, &apiErr) {
					t.Fatalf("call %d: err = %v, want APIError", i, err)
				}
				if apiErr.Code != tc.wantCode {
					t.Fatalf("call %d: code = %q, want %q", i, apiErr.Code, tc.wantCode)
				}
			}
			if got := conns.Load(); got != tc.wantConn {
				t.Fatalf("front server saw %d connections across 2 calls, want %d", got, tc.wantConn)
			}
		})
	}
}
