package querycause

import (
	"context"

	"github.com/querycause/querycause/internal/core"
)

// BatchOptions configures the parallel explanation entry points.
//
// Deprecated: the Session API folds these knobs into functional
// options — WithParallelism and WithMode on Open/Dial or per call.
type BatchOptions struct {
	// Parallelism is the worker count. Values <= 0 mean
	// runtime.GOMAXPROCS(0); 1 forces the serial path.
	Parallelism int
	// Mode selects the responsibility strategy. The zero value is
	// ModeAuto.
	Mode Mode
}

// RankParallel is Rank computed by a pool of workers fanning out across
// the causes: each worker explains causes independently over the shared
// immutable lineage, using a private copy of the Algorithm 1 flow
// network on the polynomial side of the dichotomy and the pure exact
// solver on the NP-hard side. The ranking is byte-identical to Rank
// (same causes, same ρ, same order) for every parallelism degree; ctx
// cancels between per-cause computations.
//
// Deprecated: use Ranking.Rank(ctx, WithParallelism(n)) on a Session.
func (e *Explainer) RankParallel(ctx context.Context, opts BatchOptions) ([]Explanation, error) {
	return e.eng.RankAllParallel(ctx, opts.Mode, core.ParallelOptions{Workers: opts.Parallelism})
}

// BatchRequest names one answer or non-answer of a workload to explain.
type BatchRequest struct {
	// Query is the conjunctive query; it may be Boolean (no Answer).
	Query *Query
	// Answer is the (non-)answer tuple bound into the head.
	Answer []Value
	// WhyNo explains why Answer is NOT returned instead of why it is.
	WhyNo bool
}

// BatchResult pairs a request with its ranking. Err is per-request: an
// invalid request (bad binding, invalid Why-No instance) fails alone
// without aborting the rest of the batch.
type BatchResult struct {
	Request      BatchRequest
	Explanations []Explanation
	Err          error
}

// ExplainAll explains many answers and non-answers of one database in a
// single call, fanning the requests out across a worker pool of
// opts.Parallelism workers. Results are returned in request order and
// are byte-identical to the serial per-request ranking at the same
// opts.Mode (WhySo/WhyNo + Rank when opts.Mode is ModeAuto, the
// default). When the batch has fewer requests than workers, the
// leftover budget flows into ranking each request's causes
// concurrently, so a single-request batch behaves like RankParallel
// with the full worker count.
//
// ExplainAll returns a non-nil error only when ctx is canceled before
// the batch completes; per-request failures land in BatchResult.Err.
//
// ExplainAll is a thin wrapper over the engine-level batch runner in
// internal/core, which the querycaused server shares: the server plugs
// a cache-backed engine factory into the same fan-out, so library and
// server batches have identical semantics.
//
// Deprecated: use Session.ExplainAll(ctx, reqs, opts...), which runs
// the same fan-out on either transport.
func ExplainAll(ctx context.Context, db *Database, reqs []BatchRequest, opts BatchOptions) ([]BatchResult, error) {
	creqs := make([]core.BatchRequest, len(reqs))
	for i, r := range reqs {
		creqs[i] = core.BatchRequest{Query: r.Query, Answer: r.Answer, WhyNo: r.WhyNo}
	}
	cres, err := core.ExplainBatch(ctx, db, creqs, core.BatchRunOptions{
		Workers: opts.Parallelism,
		Mode:    opts.Mode,
	})
	if err != nil {
		return nil, err
	}
	results := make([]BatchResult, len(reqs))
	for i, r := range cres {
		results[i] = BatchResult{Request: reqs[i], Explanations: r.Explanations, Err: r.Err}
	}
	return results, nil
}
