package querycause

import (
	"context"

	"github.com/querycause/querycause/internal/core"
)

// BatchOptions configures the parallel explanation entry points.
type BatchOptions struct {
	// Parallelism is the worker count. Values <= 0 mean
	// runtime.GOMAXPROCS(0); 1 forces the serial path.
	Parallelism int
	// Mode selects the responsibility strategy. The zero value is
	// ModeAuto.
	Mode Mode
}

// RankParallel is Rank computed by a pool of workers fanning out across
// the causes: each worker explains causes independently over the shared
// immutable lineage, using a private copy of the Algorithm 1 flow
// network on the polynomial side of the dichotomy and the pure exact
// solver on the NP-hard side. The ranking is byte-identical to Rank
// (same causes, same ρ, same order) for every parallelism degree; ctx
// cancels between per-cause computations.
func (e *Explainer) RankParallel(ctx context.Context, opts BatchOptions) ([]Explanation, error) {
	return e.eng.RankAllParallel(ctx, opts.Mode, core.ParallelOptions{Workers: opts.Parallelism})
}

// BatchRequest names one answer or non-answer of a workload to explain.
type BatchRequest struct {
	// Query is the conjunctive query; it may be Boolean (no Answer).
	Query *Query
	// Answer is the (non-)answer tuple bound into the head.
	Answer []Value
	// WhyNo explains why Answer is NOT returned instead of why it is.
	WhyNo bool
}

// BatchResult pairs a request with its ranking. Err is per-request: an
// invalid request (bad binding, invalid Why-No instance) fails alone
// without aborting the rest of the batch.
type BatchResult struct {
	Request      BatchRequest
	Explanations []Explanation
	Err          error
}

// ExplainAll explains many answers and non-answers of one database in a
// single call, fanning the requests out across a worker pool of
// opts.Parallelism workers. Results are returned in request order and
// are byte-identical to the serial per-request ranking at the same
// opts.Mode (WhySo/WhyNo + Rank when opts.Mode is ModeAuto, the
// default). When the batch has fewer requests than workers, the
// leftover budget flows into ranking each request's causes
// concurrently, so a single-request batch behaves like RankParallel
// with the full worker count.
//
// ExplainAll returns a non-nil error only when ctx is canceled before
// the batch completes; per-request failures land in BatchResult.Err.
func ExplainAll(ctx context.Context, db *Database, reqs []BatchRequest, opts BatchOptions) ([]BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]BatchResult, len(reqs))
	for i, r := range reqs {
		results[i].Request = r
	}
	if len(reqs) == 0 {
		return results, nil
	}
	workers := core.ResolveWorkers(opts.Parallelism)
	reqWorkers := workers
	if reqWorkers > len(reqs) {
		reqWorkers = len(reqs)
	}
	// Leftover budget (workers beyond one per request) goes to ranking
	// causes within each request; with reqs >= workers this is 1 and
	// each request is ranked serially.
	perReq := BatchOptions{Parallelism: workers / reqWorkers, Mode: opts.Mode}
	core.ForEachIndex(ctx, len(reqs), reqWorkers, func() func(int) {
		return func(i int) {
			results[i].Explanations, results[i].Err = explainOne(ctx, db, reqs[i], perReq)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

func explainOne(ctx context.Context, db *Database, r BatchRequest, opts BatchOptions) ([]Explanation, error) {
	ex, err := newExplainer(db, r)
	if err != nil {
		return nil, err
	}
	return ex.RankParallel(ctx, opts)
}

func newExplainer(db *Database, r BatchRequest) (*Explainer, error) {
	if r.WhyNo {
		return WhyNo(db, r.Query, r.Answer...)
	}
	return WhySo(db, r.Query, r.Answer...)
}
