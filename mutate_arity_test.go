package querycause_test

import (
	"context"
	"errors"
	"net"
	"net/http"
	"testing"

	qc "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/server"
)

// TestInsertBatchArityPinning pins the arity contract for mixed
// batches: a relation unknown to the database gets its arity from the
// FIRST batch tuple that mentions it, a live relation keeps its stored
// arity no matter what the batch says, and a rejected batch applies
// nothing — identically on the local engine, over HTTP, and through a
// 3-node cluster.
func TestInsertBatchArityPinning(t *testing.T) {
	check := func(t *testing.T, sess qc.Session) {
		ctx := context.Background()
		tup := func(rel string, args ...string) qc.TupleSpec {
			return qc.TupleSpec{Rel: rel, Args: args, Endo: true}
		}
		wantBad := func(name string, specs ...qc.TupleSpec) {
			t.Helper()
			if _, err := sess.Insert(ctx, specs...); !errors.Is(err, qc.ErrBadInstance) {
				t.Errorf("%s: err = %v; want ErrBadInstance", name, err)
			}
		}
		// A new relation is pinned by the first batch tuple mentioning it,
		// in either direction — wide-then-narrow and narrow-then-wide.
		wantBad("first tuple pins Z/2", tup("Z", "a", "b"), tup("Z", "c"))
		wantBad("first tuple pins Z/1", tup("Z", "c"), tup("Z", "a", "b"))
		// A live relation's stored arity wins over the batch (R is R/2).
		wantBad("live relation pins R/2", tup("R", "only-one"))
		// Rejection is atomic: a valid prefix must not apply.
		wantBad("valid prefix does not apply", tup("S", "good"), tup("Z", "a", "b"), tup("Z", "c"))

		// The probe: mutateChainDB holds ids 0..3, so if the rejected
		// batches truly applied nothing — including their valid prefixes
		// and their transient Z pins — this consistent batch gets [4 5 6],
		// with Z/2 pinned by its first tuple.
		ids, err := sess.Insert(ctx, tup("S", "a9"), tup("Z", "p", "q"), tup("Z", "r", "s"))
		if err != nil {
			t.Fatalf("consistent mixed batch: %v", err)
		}
		if len(ids) != 3 || ids[0] != 4 || ids[1] != 5 || ids[2] != 6 {
			t.Fatalf("consistent mixed batch ids = %v, want [4 5 6]", ids)
		}
		// Z is now live at arity 2, so the live pin takes over.
		wantBad("live pin survives the batch that created Z", tup("Z", "solo"))
	}

	bothTransportsFresh(t, mutateChainDB, check)

	t.Run("cluster", func(t *testing.T) {
		n := 3
		lns := make([]net.Listener, n)
		urls := make([]string, n)
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			lns[i] = ln
			urls[i] = "http://" + ln.Addr().String()
		}
		for i := range lns {
			srv := server.New(server.Config{ReapInterval: -1, Self: urls[i], Peers: urls})
			hs := &http.Server{Handler: srv.Handler()}
			go hs.Serve(lns[i])
			t.Cleanup(func() {
				hs.Close()
				srv.Close()
			})
		}
		sess, err := qc.Dial(context.Background(), urls[0], mutateChainDB())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer sess.Close()
		check(t, sess)
	})
}
