package server

import (
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/querycause/querycause/internal/cluster"
	"github.com/querycause/querycause/internal/persist"
)

// bootExtra starts one additional replica as a single-node cluster —
// the state a joiner is in before an admin adds it to the ring.
func bootExtra(t *testing.T) (string, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	url := "http://" + ln.Addr().String()
	srv := New(Config{ReapInterval: -1, Self: url, Peers: []string{url}})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return url, srv
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf(format, args...)
}

// noFollow is a client that surfaces redirects instead of following.
var noFollow = &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
	return http.ErrUseLastResponse
}}

// TestClusterJoinRemoveEpochs: joining a node mints the next epoch and
// propagates the topology to every member including the joiner;
// removing one mints another. Duplicate joins and unknown removals are
// conflicts and leave the epoch alone.
func TestClusterJoinRemoveEpochs(t *testing.T) {
	urls, _ := startCluster(t, 3, nil)
	joiner, _ := bootExtra(t)

	var ch ClusterChangeResponse
	if code := call(t, http.MethodPost, urls[0]+"/v1/cluster/nodes",
		ClusterNodeRequest{URL: joiner}, &ch); code != 200 {
		t.Fatalf("join: status %d", code)
	}
	if ch.Epoch != 2 || len(ch.Nodes) != 4 {
		t.Fatalf("join = epoch %d / %d nodes, want 2 / 4", ch.Epoch, len(ch.Nodes))
	}
	if ch.PeersNotified != 3 {
		t.Fatalf("join notified %d peers, want 3 (two founders + the joiner)", ch.PeersNotified)
	}
	// Propagation is synchronous inside the admin request: every member
	// (including the joiner, whose boot topology was just itself)
	// answers with the new membership immediately.
	for _, u := range append(append([]string(nil), urls...), joiner) {
		var topo ClusterResponse
		if code := call(t, http.MethodGet, u+"/v1/cluster", nil, &topo); code != 200 {
			t.Fatalf("cluster via %s: status %d", u, code)
		}
		if topo.Epoch != 2 || len(topo.Peers) != 4 {
			t.Fatalf("%s sees epoch %d / %d peers, want 2 / 4", u, topo.Epoch, len(topo.Peers))
		}
	}
	// The epoch also rides the response header, the client's staleness
	// signal.
	resp, err := http.Get(urls[1] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(EpochHeader); got != "2" {
		t.Fatalf("%s = %q, want 2", EpochHeader, got)
	}

	// Conflicts do not burn epochs.
	if code := call(t, http.MethodPost, urls[1]+"/v1/cluster/nodes",
		ClusterNodeRequest{URL: joiner}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate join: status %d, want 409", code)
	}
	if code := call(t, http.MethodDelete, urls[1]+"/v1/cluster/nodes?url=http://nope:1", nil, nil); code != http.StatusConflict {
		t.Fatalf("unknown removal: status %d, want 409", code)
	}
	if code := call(t, http.MethodPost, urls[1]+"/v1/cluster/nodes",
		ClusterNodeRequest{URL: "not a url"}, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed join: status %d, want 400", code)
	}

	if code := call(t, http.MethodDelete, urls[0]+"/v1/cluster/nodes?url="+joiner, nil, &ch); code != 200 {
		t.Fatalf("remove: status %d", code)
	}
	if ch.Epoch != 3 || len(ch.Nodes) != 3 {
		t.Fatalf("remove = epoch %d / %d nodes, want 3 / 3", ch.Epoch, len(ch.Nodes))
	}
}

// TestTopologyInstallMonotone: PUT /v1/cluster/topology installs are
// strictly epoch-monotone — stale and duplicate pushes are no-ops, so
// members may re-push to each other in any order and still converge.
func TestTopologyInstallMonotone(t *testing.T) {
	urls, _ := startCluster(t, 3, nil)

	epochOf := func(u string) uint64 {
		var topo ClusterResponse
		if code := call(t, http.MethodGet, u+"/v1/cluster", nil, &topo); code != 200 {
			t.Fatalf("cluster: status %d", code)
		}
		return topo.Epoch
	}

	// A stale push (the boot epoch) changes nothing.
	if code := call(t, http.MethodPut, urls[0]+"/v1/cluster/topology",
		cluster.Topology{Epoch: 1, Nodes: urls[:2]}, nil); code != 200 {
		t.Fatalf("stale push: status %d", code)
	}
	if got := epochOf(urls[0]); got != 1 {
		t.Fatalf("epoch after stale push = %d, want 1", got)
	}

	// A newer push installs, shrinking the ring.
	newer := cluster.Topology{Epoch: 5, Nodes: urls[:2]}
	var ch ClusterChangeResponse
	if code := call(t, http.MethodPut, urls[0]+"/v1/cluster/topology", newer, &ch); code != 200 {
		t.Fatalf("newer push: status %d", code)
	}
	if ch.Epoch != 5 {
		t.Fatalf("install answered epoch %d, want 5", ch.Epoch)
	}
	var topo ClusterResponse
	call(t, http.MethodGet, urls[0]+"/v1/cluster", nil, &topo)
	if topo.Epoch != 5 || len(topo.Peers) != 2 {
		t.Fatalf("after install: epoch %d / %d peers, want 5 / 2", topo.Epoch, len(topo.Peers))
	}

	// Replaying the same epoch or pushing an older one is a no-op.
	for _, stale := range []cluster.Topology{newer, {Epoch: 3, Nodes: urls}} {
		if code := call(t, http.MethodPut, urls[0]+"/v1/cluster/topology", stale, &ch); code != 200 {
			t.Fatalf("re-push: status %d", code)
		}
		if ch.Epoch != 5 {
			t.Fatalf("re-push answered epoch %d, want 5", ch.Epoch)
		}
	}
}

// TestJoinRebalancesSessions: a session whose id the grown ring assigns
// to the joiner is handed off — frozen, snapshotted, transferred — and
// then served by the joiner with the exact pre-move ranking, while the
// old owner redirects for it carrying the new epoch.
func TestJoinRebalancesSessions(t *testing.T) {
	urls, srvs := startCluster(t, 3, nil)
	joiner, joinSrv := bootExtra(t)
	grown := cluster.New(append(append([]string(nil), urls...), joiner))

	// Mint sessions round-robin across the founders until one lands on
	// the joiner under the grown ring — that session is guaranteed to
	// move on join. (A single node's keyspace slice stolen by the
	// joiner can be small with 64 vnodes; the joiner's TOTAL arc
	// cannot, so round-robin minting finds a mover fast.)
	var moving DatabaseInfo
	oldOwner := ""
	for i := 0; i < 256 && moving.ID == ""; i++ {
		var info DatabaseInfo
		if code := call(t, http.MethodPost, urls[i%len(urls)]+"/v1/databases",
			CreateDatabaseRequest{Database: chainDBText}, &info); code != 201 {
			t.Fatalf("upload: status %d", code)
		}
		if grown.Owner(info.ID) == joiner {
			moving, oldOwner = info, urls[i%len(urls)]
		}
	}
	if moving.ID == "" {
		t.Fatal("no minted session rehashes onto the joiner; consistent hashing is suspiciously lopsided")
	}
	exReq := ExplainRequest{Query: "q(x) :- R(x,y), S(y)", Answer: []string{"a4"}}
	var before ExplainResponse
	if code := call(t, http.MethodPost, oldOwner+"/v1/databases/"+moving.ID+"/whyso", exReq, &before); code != 200 {
		t.Fatalf("pre-move whyso: status %d", code)
	}

	if code := call(t, http.MethodPost, urls[2]+"/v1/cluster/nodes",
		ClusterNodeRequest{URL: joiner}, nil); code != 200 {
		t.Fatalf("join: status %d", code)
	}

	// Rebalancing is asynchronous; the handoff lands the session on the
	// joiner, warm.
	eventually(t, 5*time.Second, func() bool {
		_, ok := joinSrv.reg.get(moving.ID)
		return ok
	}, "session %s never arrived at the joiner", moving.ID)
	var after ExplainResponse
	if code := call(t, http.MethodPost, joiner+"/v1/databases/"+moving.ID+"/whyso", exReq, &after); code != 200 {
		t.Fatalf("post-move whyso at joiner: status %d", code)
	}
	if len(after.Explanations) != len(before.Explanations) {
		t.Fatalf("handoff changed the ranking: %d explanations, want %d", len(after.Explanations), len(before.Explanations))
	}

	// The old owner no longer serves the session: it redirects to the
	// joiner, and the redirect carries the new epoch so stale clients
	// re-pin.
	req, _ := http.NewRequest(http.MethodGet, oldOwner+"/v1/databases/"+moving.ID+"/tuples", nil)
	resp, err := noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("old owner answered %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, joiner) {
		t.Fatalf("redirect Location = %q, want the joiner %s", loc, joiner)
	}
	if got := resp.Header.Get(EpochHeader); got != "2" {
		t.Fatalf("redirect %s = %q, want 2", EpochHeader, got)
	}

	// The handoff counters saw it.
	var out uint64
	for _, sv := range srvs {
		out += sv.handoffsOut.Load()
	}
	if out == 0 {
		t.Fatal("founders' handoffsOut stayed zero")
	}
	if got := joinSrv.handoffsIn.Load(); got == 0 {
		t.Fatal("joiner's handoffsIn stayed zero")
	}
}

// TestHandoffGraceAnswers503: a clustered node asked for a session it
// does not hold answers 404 in steady state, but 503 + Retry-After
// inside the grace window after a topology change — the session may be
// mid-handoff, and a retry (not an error) is the contract.
func TestHandoffGraceAnswers503(t *testing.T) {
	urls, _ := startCluster(t, 3, nil)
	// An id no one minted; ask its would-be owner so routing does not
	// redirect first.
	ghost := "d999"
	owner := cluster.New(urls).Owner(ghost)
	probe := func(owner string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, owner+"/v1/databases/"+ghost+"/whyso",
			strings.NewReader(`{"query": "q() :- R(x,y)"}`))
		req.Header.Set("Content-Type", "application/json")
		resp, err := noFollow.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("503 carries no Retry-After")
			}
		}
		return resp.StatusCode
	}

	if code := probe(owner); code != http.StatusNotFound {
		t.Fatalf("steady-state unknown session: status %d, want 404", code)
	}

	// Shrink the ring so the grace window opens. The ghost's owner may
	// change with the ring; ask the new owner.
	if code := call(t, http.MethodDelete, urls[0]+"/v1/cluster/nodes?url="+urls[2], nil, nil); code != 200 {
		t.Fatalf("remove: status %d", code)
	}
	owner = cluster.New(urls[:2]).Owner(ghost)
	if code := probe(owner); code != http.StatusServiceUnavailable {
		t.Fatalf("in-grace unknown session: status %d, want 503", code)
	}
}

// TestSessionTransferDisplacesStale: the receiving half of a handoff
// installs the pushed snapshot as the authoritative copy, displacing
// whatever (staler) state the node already held, and rejects snapshots
// addressed to a different session.
func TestSessionTransferDisplacesStale(t *testing.T) {
	urls, srvs := startCluster(t, 2, nil)
	var info DatabaseInfo
	if code := call(t, http.MethodPost, urls[0]+"/v1/databases",
		CreateDatabaseRequest{Database: chainDBText}, &info); code != 201 {
		t.Fatalf("upload: status %d", code)
	}

	// Freeze-frame the session now, then mutate the live copy past it.
	sess, ok := srvs[0].reg.get(info.ID)
	if !ok {
		t.Fatalf("session %s not registered", info.ID)
	}
	snap, err := sess.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	stale, err := persist.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	var mut MutateResponse
	if code := call(t, http.MethodPost, urls[0]+"/v1/databases/"+info.ID+"/tuples",
		InsertTuplesRequest{Tuples: []TupleSpec{{Rel: "S", Args: []string{"zz"}, Endo: true}}}, &mut); code != 200 {
		t.Fatalf("mutate: status %d", code)
	}

	// Push the CURRENT state to node 1: it installs and counts it.
	cur, err := sess.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := persist.Encode(cur)
	if err != nil {
		t.Fatal(err)
	}
	put := func(id string, body []byte) int {
		req, _ := http.NewRequest(http.MethodPut, urls[1]+"/v1/cluster/sessions/"+id, strings.NewReader(string(body)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(info.ID, fresh); code != http.StatusNoContent {
		t.Fatalf("transfer: status %d, want 204", code)
	}
	got, ok := srvs[1].reg.get(info.ID)
	if !ok {
		t.Fatal("transferred session not installed")
	}
	if v := got.db.Version(); v != mut.Version {
		t.Fatalf("installed session at version %d, want %d", v, mut.Version)
	}

	// Now push the STALE snapshot's bytes under a lying id: rejected.
	if code := put("d777", stale); code != http.StatusBadRequest {
		t.Fatalf("mismatched-id transfer: status %d, want 400", code)
	}
	// And a stale re-push displaces the fresher copy — the protocol
	// trusts the pushing owner to send its final word, which is why the
	// sender freezes the session first.
	if code := put(info.ID, fresh); code != http.StatusNoContent {
		t.Fatalf("re-transfer: status %d", code)
	}
	if got := srvs[1].handoffsIn.Load(); got != 2 {
		t.Fatalf("handoffsIn = %d, want 2", got)
	}
}

// TestIdempotentMutationReplay: a keyed mutation re-sent with the same
// Idempotency-Key replays the recorded response — same body, marked
// with the replay header — instead of applying twice.
func TestIdempotentMutationReplay(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, chainDBText)

	send := func(method, url, key, body string) (*http.Response, string) {
		t.Helper()
		var rd *strings.Reader
		if body != "" {
			rd = strings.NewReader(body)
		} else {
			rd = strings.NewReader("")
		}
		req, _ := http.NewRequest(method, url, rd)
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set(idempotencyHeader, key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw := make([]byte, 1<<16)
		n, _ := resp.Body.Read(raw)
		resp.Body.Close()
		return resp, string(raw[:n])
	}

	insertBody := `{"tuples": [{"rel": "S", "args": ["fresh"], "endo": true}]}`
	tuplesURL := ts.URL + "/v1/databases/" + info.ID + "/tuples"
	first, firstBody := send(http.MethodPost, tuplesURL, "k1", insertBody)
	if first.StatusCode != 200 {
		t.Fatalf("keyed insert: status %d", first.StatusCode)
	}
	if first.Header.Get(replayHeader) != "" {
		t.Fatal("first application marked as a replay")
	}
	second, secondBody := send(http.MethodPost, tuplesURL, "k1", insertBody)
	if second.StatusCode != 200 {
		t.Fatalf("replayed insert: status %d", second.StatusCode)
	}
	if second.Header.Get(replayHeader) != "true" {
		t.Fatalf("replay header = %q, want true", second.Header.Get(replayHeader))
	}
	if firstBody != secondBody {
		t.Fatalf("replayed body differs:\nfirst:  %s\nsecond: %s", firstBody, secondBody)
	}
	if st := stats(t, ts); st.MutationsTotal != 1 {
		t.Fatalf("MutationsTotal = %d after a replay, want 1 (no double apply)", st.MutationsTotal)
	}

	// Deletes too: the second keyed delete of the same tuple replays 200
	// instead of failing with tuple_not_found.
	var mut MutateResponse
	if err := json.Unmarshal([]byte(firstBody), &mut); err != nil {
		t.Fatalf("decoding insert response %q: %v", firstBody, err)
	}
	if len(mut.TupleIDs) != 1 {
		t.Fatalf("insert assigned %v ids, want 1", mut.TupleIDs)
	}
	delURL := tuplesURL + "/" + strconv.Itoa(mut.TupleIDs[0])
	if resp, _ := send(http.MethodDelete, delURL, "k2", ""); resp.StatusCode != 200 {
		t.Fatalf("keyed delete: status %d", resp.StatusCode)
	}
	resp, _ := send(http.MethodDelete, delURL, "k2", "")
	if resp.StatusCode != 200 || resp.Header.Get(replayHeader) != "true" {
		t.Fatalf("replayed delete: status %d, replay header %q", resp.StatusCode, resp.Header.Get(replayHeader))
	}
	// An unkeyed retry of the same delete is the counterfactual: it
	// really is gone.
	if resp, _ := send(http.MethodDelete, delURL, "", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unkeyed re-delete: status %d, want 404", resp.StatusCode)
	}
}
