// Dynamic cluster membership and session handoff. Any member accepts
// an admin membership change (POST/DELETE /v1/cluster/nodes), mints
// the next topology epoch on its versioned ring, pushes the topology
// to every node it can reach (PUT /v1/cluster/topology — installs are
// epoch-monotone, so pushes may race and arrive out of order), and
// rebalances: every live session whose id now hashes onto a different
// node is frozen, snapshotted, and PUT to its new owner.
//
// The handoff protocol keeps exactly one writable copy of a session:
//
//  1. The old owner freezes the session under the database write lock
//     (mutations answer 503 + Retry-After; reads still serve).
//  2. It snapshots the frozen state — database, prepared queries,
//     certificates, and the mutation dedup cache — and PUTs the
//     encoded snapshot to the new owner.
//  3. The new owner installs the snapshot (displacing any stale copy
//     it lazily restored meanwhile) and persists it.
//  4. Only then does the old owner drop its copy and close the
//     session's watch streams; subscribers reconnect — routed to the
//     new owner — and resume their diff chains with resume_from.
//
// A failed transfer unfreezes the session on the old owner: better a
// stale-but-serving owner than a session nobody holds. Requests that
// land between drop and install answer 503 (the handoff grace window
// in sessionOf), never 404.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"github.com/querycause/querycause/internal/cluster"
	"github.com/querycause/querycause/internal/persist"
)

// clusterOnly guards the membership endpoints on non-clustered
// servers.
func (s *Server) clusterOnly(w http.ResponseWriter) bool {
	if s.cluster == nil {
		writeError(w, http.StatusBadRequest, "server is not clustered")
		return false
	}
	return true
}

func validNodeURL(node string) error {
	target, err := url.Parse(node)
	if err != nil || target.Scheme == "" || target.Host == "" {
		return fmt.Errorf("invalid node URL %q (want scheme://host[:port])", node)
	}
	return nil
}

// handleClusterJoin serves POST /v1/cluster/nodes: add a node to the
// ring, propagate the new topology, and rebalance in the background.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if !s.clusterOnly(w) {
		return
	}
	var req ClusterNodeRequest
	if err := decodeJSON(r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := validNodeURL(req.URL); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	old := s.cluster.ring.Nodes()
	topo, err := s.cluster.ring.Add(req.URL)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	s.finishTopologyChange(w, topo, old)
}

// handleClusterRemove serves DELETE /v1/cluster/nodes?url=…: drop a
// node from the ring. The removed node is still told about the new
// topology (best-effort) so it stops minting ids it no longer owns
// and hands its sessions over.
func (s *Server) handleClusterRemove(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if !s.clusterOnly(w) {
		return
	}
	node := r.URL.Query().Get("url")
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing url query parameter")
		return
	}
	topo, err := s.cluster.ring.Remove(node)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	s.finishTopologyChange(w, topo, []string{node})
}

// finishTopologyChange is the shared tail of a membership change:
// record the change time (starts the handoff grace window), push the
// topology to every reachable member plus extra (the pre-change
// membership on join, the removed node on removal), kick the
// rebalancer, and report the outcome.
func (s *Server) finishTopologyChange(w http.ResponseWriter, topo cluster.Topology, extra []string) {
	s.topoChangedAt.Store(time.Now().UnixNano())
	notified, failed := s.propagateTopology(topo, extra)
	go s.Rebalance()
	writeJSON(w, http.StatusOK, ClusterChangeResponse{
		Epoch:         topo.Epoch,
		Nodes:         topo.Nodes,
		PeersNotified: notified,
		PeersFailed:   failed,
	})
}

// propagateTopology pushes topo to every node of the new membership
// and extra, minus self. Best-effort: an unreachable peer converges
// later (epoch-monotone installs make re-pushes and reordering safe).
func (s *Server) propagateTopology(topo cluster.Topology, extra []string) (notified, failed int) {
	seen := map[string]bool{s.cluster.self: true}
	body, _ := json.Marshal(topo)
	for _, node := range append(append([]string(nil), topo.Nodes...), extra...) {
		if seen[node] {
			continue
		}
		seen[node] = true
		req, err := http.NewRequest(http.MethodPut, node+"/v1/cluster/topology", bytes.NewReader(body))
		if err != nil {
			failed++
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := s.cluster.peers.Do(req)
		if err != nil {
			failed++
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode/100 == 2 {
			notified++
		} else {
			failed++
		}
	}
	return notified, failed
}

// handleClusterTopology serves PUT /v1/cluster/topology: install a
// propagated topology. Installs are strictly epoch-monotone (stale or
// duplicate pushes are no-ops), so any member may push to any other
// in any order. An install triggers a rebalance.
func (s *Server) handleClusterTopology(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if !s.clusterOnly(w) {
		return
	}
	var topo cluster.Topology
	if err := decodeJSON(r, s.cfg.MaxBodyBytes, &topo); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.cluster.ring.Apply(topo) {
		s.topoChangedAt.Store(time.Now().UnixNano())
		go s.Rebalance()
	}
	cur := s.cluster.ring.Current()
	writeJSON(w, http.StatusOK, ClusterChangeResponse{Epoch: cur.Epoch, Nodes: cur.Nodes})
}

// handleSessionTransfer serves PUT /v1/cluster/sessions/{db}: the
// receiving half of a handoff. The body is a persist-encoded snapshot
// of the frozen session; it displaces any copy this node holds (a
// lazily-restored stale snapshot loses to the old owner's final
// state) and is persisted immediately.
func (s *Server) handleSessionTransfer(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if !s.clusterOnly(w) {
		return
	}
	id := r.PathValue("db")
	data, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading snapshot: %v", err)
		return
	}
	snap, err := persist.Decode(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding snapshot: %v", err)
		return
	}
	if snap.ID != id {
		writeError(w, http.StatusBadRequest, "snapshot is for session %q, not %q", snap.ID, id)
		return
	}
	s.reg.remove(id)
	sess, err := s.reg.restore(snap)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "restoring session %s: %v", id, err)
		return
	}
	s.markDirty(sess)
	s.handoffsIn.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// Rebalance hands every live session this node no longer owns to its
// new owner. Membership changes run it in the background; tests and
// operators may call it directly (it is idempotent — a session that
// already moved is simply no longer live here).
func (s *Server) Rebalance() {
	if s.cluster == nil {
		return
	}
	for _, sess := range s.reg.list() {
		owner := s.cluster.ring.Owner(sess.id)
		if owner == "" || owner == s.cluster.self {
			continue
		}
		s.transferSession(sess, owner)
	}
}

// transferSession executes the sending half of one handoff (see the
// package comment for the protocol). On failure the session unfreezes
// and stays local; the next topology change retries.
func (s *Server) transferSession(sess *session, owner string) {
	sess.dbMu.Lock()
	sess.moved.Store(true)
	sess.dbMu.Unlock()
	if !s.pushSession(sess, owner) {
		sess.moved.Store(false)
		s.handoffFails.Add(1)
		return
	}
	// The new owner has acknowledged the authoritative state: stop
	// serving here. Watch subscribers see their channels close, end
	// their streams, and reconnect with resume_from — routed to the new
	// owner. The local snapshot file is left in place (the new owner's
	// write-behind displaces it in a shared store; in a split store it
	// is inert, since routing never sends the session here again).
	sess.watch.CloseAll()
	s.reg.remove(sess.id)
	if s.wb != nil {
		s.wb.Forget(sess.id)
	}
	s.handoffsOut.Add(1)
}

// pushSession snapshots the frozen session and PUTs it to owner,
// reporting acknowledgment.
func (s *Server) pushSession(sess *session, owner string) bool {
	snap, err := sess.snapshot()
	if err != nil {
		return false
	}
	data, err := persist.Encode(snap)
	if err != nil {
		return false
	}
	req, err := http.NewRequest(http.MethodPut, owner+"/v1/cluster/sessions/"+url.PathEscape(sess.id), bytes.NewReader(data))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.cluster.peers.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode/100 == 2
}
