package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// mutateDBText adds an independent relation T so invalidation tests
// can mutate one relation and assert the other's engines stay warm.
const mutateDBText = chainDBText + "+T(a1)\n"

// callErr is call for requests expected to fail: it returns the status
// and the decoded error body (call only decodes 2xx responses).
func callErr(t *testing.T, method, url string, body any) (int, ErrorResponse) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatalf("decoding error body of %s %s: %v", method, url, err)
	}
	return resp.StatusCode, wire
}

func insertTuples(t *testing.T, ts string, dbID string, tuples ...TupleSpec) MutateResponse {
	t.Helper()
	var out MutateResponse
	if code := call(t, http.MethodPost, ts+"/v1/databases/"+dbID+"/tuples",
		InsertTuplesRequest{Tuples: tuples}, &out); code != 200 {
		t.Fatalf("insert: status %d", code)
	}
	return out
}

func deleteTuple(t *testing.T, ts string, dbID string, id int) MutateResponse {
	t.Helper()
	var out MutateResponse
	if code := call(t, http.MethodDelete, fmt.Sprintf("%s/v1/databases/%s/tuples/%d", ts, dbID, id), nil, &out); code != 200 {
		t.Fatalf("delete tuple %d: status %d", id, code)
	}
	return out
}

func explainWhySo(t *testing.T, ts string, dbID, query string, answer ...string) ExplainResponse {
	t.Helper()
	var out ExplainResponse
	if code := call(t, http.MethodPost, ts+"/v1/databases/"+dbID+"/whyso",
		ExplainRequest{Query: query, Answer: answer}, &out); code != 200 {
		t.Fatalf("whyso %s %v: status %d", query, answer, code)
	}
	return out
}

// TestInsertAndDeleteEndpoints covers the basic wire contract: ids are
// assigned in order and never reused, the version counts every
// mutation, deletes 404 on dead ids, and a batch with any bad tuple
// applies nothing.
func TestInsertAndDeleteEndpoints(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, mutateDBText) // ids 0..4
	if info.Version != 5 || info.Tuples != 5 {
		t.Fatalf("info = %+v; want version 5, tuples 5", info)
	}

	ins := insertTuples(t, ts.URL, info.ID,
		TupleSpec{Rel: "S", Args: []string{"a9"}, Endo: true},
		TupleSpec{Rel: "U", Args: []string{"x", "y"}})
	if got, want := fmt.Sprint(ins.TupleIDs), "[5 6]"; got != want {
		t.Fatalf("insert ids = %s; want %s", got, want)
	}
	if ins.Version != 7 || ins.Tuples != 7 {
		t.Fatalf("after insert: %+v; want version 7, tuples 7", ins)
	}

	del := deleteTuple(t, ts.URL, info.ID, 5)
	if del.Version != 8 || del.Tuples != 6 {
		t.Fatalf("after delete: %+v; want version 8, tuples 6", del)
	}
	// The id is dead now: deleting again is tuple_not_found, and a new
	// insert does not reuse it.
	code, wire := callErr(t, http.MethodDelete, ts.URL+"/v1/databases/"+info.ID+"/tuples/5", nil)
	if code != 404 || wire.Code != "tuple_not_found" {
		t.Fatalf("double delete: status %d, code %q; want 404 tuple_not_found", code, wire.Code)
	}
	if ins2 := insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "S", Args: []string{"a10"}}); ins2.TupleIDs[0] != 7 {
		t.Fatalf("post-delete insert id = %d; want 7 (no reuse)", ins2.TupleIDs[0])
	}

	// Non-numeric id is a 400, not a route miss.
	if code := call(t, http.MethodDelete, ts.URL+"/v1/databases/"+info.ID+"/tuples/abc", nil, nil); code != 400 {
		t.Fatalf("bad id: status %d", code)
	}

	// Atomicity: the second tuple's arity mismatch rejects the whole
	// batch, so the first tuple must not have been applied.
	code, wire = callErr(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/tuples",
		InsertTuplesRequest{Tuples: []TupleSpec{
			{Rel: "S", Args: []string{"ok"}},
			{Rel: "S", Args: []string{"too", "wide"}},
		}})
	if code != 422 || wire.Code != "bad_instance" {
		t.Fatalf("arity mismatch: status %d, code %q; want 422 bad_instance", code, wire.Code)
	}
	var listed []DatabaseInfo
	if code := call(t, http.MethodGet, ts.URL+"/v1/databases", nil, &listed); code != 200 {
		t.Fatalf("list: %d", code)
	}
	if listed[0].Version != 9 || listed[0].Tuples != 7 {
		t.Fatalf("after rejected batch: %+v; want version 9, tuples 7 (unchanged)", listed[0])
	}

	// Empty batches are rejected before touching the database.
	if code, wire := callErr(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/tuples",
		InsertTuplesRequest{}); code != 422 || wire.Code != "bad_instance" {
		t.Fatalf("empty insert: status %d, code %q; want 422 bad_instance", code, wire.Code)
	}
}

// TestIncrementalInvalidation is the tentpole behavior: a mutation
// touches exactly the engines whose lineage it can affect, and
// everything else keeps answering from cache. With delta maintenance
// disabled the touched engines are dropped cold (the PR-8 rules); with
// it enabled (the default) provably-patchable ones are revived in
// place and keep answering warm — byte-identically to a rebuild.
func TestIncrementalInvalidation(t *testing.T) {
	const qRS = "q(x) :- R(x,y), S(y)"
	const qT = "q(x) :- T(x)"
	setup := func(t *testing.T, cfg Config) (string, DatabaseInfo) {
		_, ts := newTest(t, cfg)
		info := upload(t, ts, mutateDBText)         // R(a4,a3) S(a3) S(a2) R(a5,a2) T(a1); ids 0..4
		explainWhySo(t, ts.URL, info.ID, qRS, "a4") // engine: lineage {R(a4,a3), S(a3)} = ids {0,1}
		explainWhySo(t, ts.URL, info.ID, qRS, "a5") // engine: lineage {R(a5,a2), S(a2)} = ids {2,3}
		explainWhySo(t, ts.URL, info.ID, qT, "a1")  // engine over T only
		return ts.URL, info
	}

	t.Run("cold", func(t *testing.T) {
		url, info := setup(t, Config{DisableDelta: true})

		// Insert into T: only the T engine mentions it.
		ins := insertTuples(t, url, info.ID, TupleSpec{Rel: "T", Args: []string{"a8"}, Endo: true})
		if ins.EnginesInvalidated != 1 || ins.EnginesPatched != 0 {
			t.Fatalf("insert into T invalidated %d engines, patched %d; want 1, 0", ins.EnginesInvalidated, ins.EnginesPatched)
		}
		if got := explainWhySo(t, url, info.ID, qRS, "a4"); !got.EngineCached {
			t.Fatal("R/S engine went cold after a T-only insert")
		}
		if got := explainWhySo(t, url, info.ID, qT, "a1"); got.EngineCached {
			t.Fatal("T engine stayed cached across an insert into T")
		}

		// Delete endogenous S(a2) (id 2): it is in a5's lineage but not
		// a4's, and S keeps other endogenous tuples (no flip) — so exactly
		// the a5 engine drops, certificates included stay.
		del := deleteTuple(t, url, info.ID, 2)
		if del.EnginesInvalidated != 1 || del.CertsInvalidated != 0 {
			t.Fatalf("delete S(a2): invalidated %d engines, %d certs; want 1, 0", del.EnginesInvalidated, del.CertsInvalidated)
		}
		if got := explainWhySo(t, url, info.ID, qRS, "a4"); !got.EngineCached {
			t.Fatal("a4 engine went cold after deleting a tuple outside its lineage")
		}
		// a5 is no longer an answer at all (its only witness used S(a2)):
		// the rebuilt engine finds no causes, and it really was rebuilt.
		a5 := explainWhySo(t, url, info.ID, qRS, "a5")
		if a5.EngineCached {
			t.Fatal("a5 engine survived deleting its lineage tuple S(a2)")
		}
		if len(a5.Explanations) != 0 {
			t.Fatalf("destroyed answer a5 still has %d explanations", len(a5.Explanations))
		}
	})

	t.Run("delta", func(t *testing.T) {
		url, info := setup(t, Config{})

		// Insert into T: the T engine is stale, but an insert is
		// patchable — it is revived in place, not dropped.
		ins := insertTuples(t, url, info.ID, TupleSpec{Rel: "T", Args: []string{"a8"}, Endo: true})
		if ins.EnginesInvalidated != 0 || ins.EnginesPatched != 1 {
			t.Fatalf("insert into T invalidated %d engines, patched %d; want 0, 1", ins.EnginesInvalidated, ins.EnginesPatched)
		}
		if got := explainWhySo(t, url, info.ID, qRS, "a4"); !got.EngineCached {
			t.Fatal("R/S engine went cold after a T-only insert")
		}
		// The patched engine serves from cache and still answers
		// correctly: q(a1) ranks T(a1) (id 4) as its only cause.
		a1 := explainWhySo(t, url, info.ID, qT, "a1")
		if !a1.EngineCached {
			t.Fatal("patched T engine was not served from cache")
		}
		if len(a1.Explanations) != 1 || a1.Explanations[0].TupleID != 4 {
			t.Fatalf("patched T engine ranking = %+v; want the single cause T(a1)", a1.Explanations)
		}

		// Delete endogenous S(a2) (id 2): an endo delete is patchable —
		// the a5 engine's conjunct is filtered in place and it keeps
		// serving warm, now reporting the destroyed answer.
		del := deleteTuple(t, url, info.ID, 2)
		if del.EnginesInvalidated != 0 || del.EnginesPatched != 1 || del.CertsInvalidated != 0 {
			t.Fatalf("delete S(a2): invalidated %d, patched %d, certs %d; want 0, 1, 0",
				del.EnginesInvalidated, del.EnginesPatched, del.CertsInvalidated)
		}
		a5 := explainWhySo(t, url, info.ID, qRS, "a5")
		if !a5.EngineCached {
			t.Fatal("a5 engine was dropped; an endo delete must patch it in place")
		}
		if len(a5.Explanations) != 0 {
			t.Fatalf("destroyed answer a5 still has %d explanations", len(a5.Explanations))
		}
	})
}

// TestEndoFlipInvalidatesCertificates: inserting the first endogenous
// tuple of an exogenous relation moves every query shape mentioning it
// across the classification boundary, so the cached certificates are
// dropped and a re-prepare re-classifies.
func TestEndoFlipInvalidatesCertificates(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, "+R(a,b)\n-S(b)\n")

	var prep PrepareQueryResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries",
		PrepareQueryRequest{Query: "q :- R(x,y), S(y)"}, &prep); code != 201 {
		t.Fatalf("prepare: status %d", code)
	}
	ins := insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "S", Args: []string{"c"}, Endo: true})
	if ins.CertsInvalidated != 1 {
		t.Fatalf("endo flip invalidated %d certs; want 1", ins.CertsInvalidated)
	}
	var reprep PrepareQueryResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries",
		PrepareQueryRequest{Query: "q :- R(x,y), S(y)"}, &reprep); code != 201 {
		t.Fatalf("re-prepare: status %d", code)
	}
	if reprep.ID != prep.ID {
		t.Fatalf("re-prepare minted a new id %s; want %s", reprep.ID, prep.ID)
	}
	if reprep.CertificateCached {
		t.Fatal("re-prepare after an endo flip reported a cached certificate")
	}
	// The regenerated cause program reflects the new endogeneity hints:
	// it must match what a cold server over the mutated database emits.
	_, ts2 := newTest(t, Config{})
	info2 := upload(t, ts2, "+R(a,b)\n-S(b)\n+S(c)\n")
	var cold PrepareQueryResponse
	if code := call(t, http.MethodPost, ts2.URL+"/v1/databases/"+info2.ID+"/queries",
		PrepareQueryRequest{Query: "q :- R(x,y), S(y)"}, &cold); code != 201 {
		t.Fatalf("cold prepare: status %d", code)
	}
	if reprep.Program != cold.Program {
		t.Fatalf("regenerated program diverges from cold server:\nwarm: %s\ncold: %s", reprep.Program, cold.Program)
	}
	if reprep.Class != cold.Class || reprep.ClassPaper != cold.ClassPaper {
		t.Fatalf("warm classification (%s/%s) != cold (%s/%s)", reprep.Class, reprep.ClassPaper, cold.Class, cold.ClassPaper)
	}
}

// TestMutateWarmRestartByteIdentity: mutate, explain, flush, boot a new
// server over the same store — the restored session must rank
// byte-identically at the same version, with the deletion gaps intact.
func TestMutateWarmRestartByteIdentity(t *testing.T) {
	st := testStore(t)
	srvA, tsA := newTest(t, persistCfg(st))
	info := upload(t, tsA, mutateDBText)

	insertTuples(t, tsA.URL, info.ID, TupleSpec{Rel: "S", Args: []string{"a7"}, Endo: true})
	deleteTuple(t, tsA.URL, info.ID, 2) // S(a2): kills answer a5
	const q = "q(x) :- R(x,y), S(y)"
	before := explainWhySo(t, tsA.URL, info.ID, q, "a4")
	if err := srvA.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	srvB, tsB := newTest(t, persistCfg(st))
	if got := srvB.Restored(); got != 1 {
		t.Fatalf("restored %d sessions, want 1", got)
	}
	var listed []DatabaseInfo
	if code := call(t, http.MethodGet, tsB.URL+"/v1/databases", nil, &listed); code != 200 {
		t.Fatalf("list: %d", code)
	}
	if listed[0].Version != 7 || listed[0].Tuples != 5 {
		t.Fatalf("restored session %+v; want version 7, tuples 5", listed[0])
	}
	after := explainWhySo(t, tsB.URL, info.ID, q, "a4")
	rawA, _ := json.Marshal(before.Explanations)
	rawB, _ := json.Marshal(after.Explanations)
	if string(rawA) != string(rawB) {
		t.Fatalf("restart changed the ranking:\nbefore: %s\nafter:  %s", rawA, rawB)
	}
	// The dead id stays dead across the restart.
	if code := call(t, http.MethodDelete, tsB.URL+"/v1/databases/"+info.ID+"/tuples/2", nil, nil); code != 404 {
		t.Fatalf("deleting a dead id after restart: status %d; want 404", code)
	}
}

// TestEvictionSkipsInflightSessions is the regression test for the
// stale-eviction bug: a session with a request inside a handler must
// survive both the MaxSessions LRU eviction and the idle reaper, even
// when it is the only candidate. Run with -race: the old behavior tore
// the session down while the request still used its caches.
func TestEvictionSkipsInflightSessions(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv, ts := newTest(t, Config{
		MaxSessions: 1,
		SessionTTL:  time.Nanosecond,
		testHookAdmitted: func() {
			once.Do(func() {
				close(entered)
				<-release
			})
		},
	})
	info := upload(t, ts, chainDBText)

	var wg sync.WaitGroup
	wg.Add(1)
	var got ExplainResponse
	go func() {
		defer wg.Done()
		got = explainWhySo(t, ts.URL, info.ID, "q(x) :- R(x,y), S(y)", "a4")
	}()
	<-entered

	// The registry is full and its only session is busy: the idle
	// reaper must skip it...
	if evicted := srv.EvictIdle(); len(evicted) != 0 {
		t.Fatalf("EvictIdle evicted busy session(s) %v", evicted)
	}
	// ...and an upload must admit the new session without evicting the
	// busy one (temporarily exceeding MaxSessions).
	upload(t, ts, "+T(a1)\n")
	if n := srv.reg.len(); n != 2 {
		t.Fatalf("registry holds %d sessions; want 2 (busy session retained)", n)
	}

	close(release)
	wg.Wait()
	if len(got.Explanations) == 0 {
		t.Fatal("in-flight explain returned no explanations")
	}

	// With the work drained the session is evictable again.
	if evicted := srv.EvictIdle(); len(evicted) == 0 {
		t.Fatal("EvictIdle evicted nothing once the session went idle")
	}
}
