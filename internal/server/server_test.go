package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/workload"
)

// chainDBText is Example 2.2-style data for q(x) :- R(x,y), S(y).
const chainDBText = `
# chain instance
+R(a4, a3)
+S(a3)
+S(a2)
+R(a5, a2)
`

func newTest(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.ReapInterval == 0 {
		cfg.ReapInterval = -1 // tests drive EvictIdle directly
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// call sends a JSON (or raw text) request and decodes the response into
// out when non-nil, returning the status code.
func call(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	contentType := ""
	switch b := body.(type) {
	case nil:
	case string:
		rd = strings.NewReader(b)
		contentType = "text/plain"
	default:
		raw, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
		contentType = "application/json"
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

func stats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	var st StatsResponse
	if code := call(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	return st
}

func upload(t *testing.T, ts *httptest.Server, text string) DatabaseInfo {
	t.Helper()
	var info DatabaseInfo
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases", CreateDatabaseRequest{Database: text}, &info); code != 201 {
		t.Fatalf("upload: status %d", code)
	}
	return info
}

// TestExplainMatchesLibrary uploads a database over the wire, explains
// an answer, and checks the ranking matches the engine invoked
// directly.
func TestExplainMatchesLibrary(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, chainDBText)
	if info.Tuples != 4 || info.Endogenous != 4 {
		t.Fatalf("info = %+v", info)
	}

	var prep PrepareQueryResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries",
		PrepareQueryRequest{Query: "q(x) :- R(x,y), S(y)"}, &prep); code != 201 {
		t.Fatalf("prepare: status %d", code)
	}
	if !strings.Contains(prep.Class, "PTIME") {
		t.Errorf("class = %q; want PTIME", prep.Class)
	}
	// Cause programs (Theorem 3.4) are generated for Boolean queries;
	// non-Boolean prepares carry none.
	var boolPrep PrepareQueryResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries",
		PrepareQueryRequest{Query: "q :- R(x,y), S(y)"}, &boolPrep); code != 201 {
		t.Fatalf("boolean prepare: status %d", code)
	}
	if boolPrep.Program == "" {
		t.Error("boolean prepare: missing cause program")
	}

	var got ExplainResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries/"+prep.ID+"/whyso",
		ExplainRequest{Answer: []string{"a4"}}, &got); code != 200 {
		t.Fatalf("whyso: status %d", code)
	}

	db, err := parser.ParseDatabase(strings.NewReader(chainDBText))
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewWhySo(db, q, "a4")
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.RankAll(core.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Explanations) != len(want) {
		t.Fatalf("got %d explanations; want %d", len(got.Explanations), len(want))
	}
	for i, e := range got.Explanations {
		if e.Rho != want[i].Rho || e.TupleID != int(want[i].Tuple) || e.ContingencySize != want[i].ContingencySize {
			t.Errorf("explanation %d = %+v; want %+v", i, e, want[i])
		}
	}
}

// TestWarmCertificateAndEngineCaches asserts the acceptance criterion:
// a warm-certificate explain measurably skips re-classification,
// observed through the /v1/stats cache-hit counters.
func TestWarmCertificateAndEngineCaches(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, chainDBText)

	var prep PrepareQueryResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries",
		PrepareQueryRequest{Query: "q(x) :- R(x,y), S(y)"}, &prep); code != 201 {
		t.Fatalf("prepare: status %d", code)
	}
	if prep.CertificateCached {
		t.Error("first prepare unexpectedly hit the certificate cache")
	}
	st := stats(t, ts)
	if st.CertCache.Misses != 1 || st.CertCache.Hits != 0 {
		t.Fatalf("after prepare: cert cache %+v; want 1 miss, 0 hits", st.CertCache)
	}

	// Cold explain: engine miss, but the certificate is warm — the
	// classification computed at prepare time is reused.
	var cold ExplainResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries/"+prep.ID+"/whyso",
		ExplainRequest{Answer: []string{"a4"}}, &cold); code != 200 {
		t.Fatalf("cold whyso: status %d", code)
	}
	if cold.EngineCached || !cold.CertificateCached {
		t.Errorf("cold explain: engine_cached=%v certificate_cached=%v; want false,true", cold.EngineCached, cold.CertificateCached)
	}
	st = stats(t, ts)
	if st.CertCache.Hits != 1 || st.EngineCache.Misses != 1 || st.EngineCache.Hits != 0 {
		t.Fatalf("after cold explain: cert %+v engine %+v", st.CertCache, st.EngineCache)
	}

	// Warm explain: same answer — the per-answer engine (lineage) is
	// served from the LRU; the request skips straight to ranking.
	var warm ExplainResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries/"+prep.ID+"/whyso",
		ExplainRequest{Answer: []string{"a4"}}, &warm); code != 200 {
		t.Fatalf("warm whyso: status %d", code)
	}
	if !warm.EngineCached || !warm.CertificateCached {
		t.Errorf("warm explain: engine_cached=%v certificate_cached=%v; want true,true", warm.EngineCached, warm.CertificateCached)
	}
	st = stats(t, ts)
	if st.EngineCache.Hits != 1 {
		t.Fatalf("after warm explain: engine cache %+v; want 1 hit", st.EngineCache)
	}
	if fmt.Sprint(warm.Explanations) != fmt.Sprint(cold.Explanations) {
		t.Errorf("warm ranking diverged from cold:\nwarm %v\ncold %v", warm.Explanations, cold.Explanations)
	}

	// A different answer of the same prepared query still reuses the
	// certificate (classification is constant-immaterial).
	var other ExplainResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries/"+prep.ID+"/whyso",
		ExplainRequest{Answer: []string{"a5"}}, &other); code != 200 {
		t.Fatalf("other whyso: status %d", code)
	}
	if other.EngineCached || !other.CertificateCached {
		t.Errorf("other answer: engine_cached=%v certificate_cached=%v; want false,true", other.EngineCached, other.CertificateCached)
	}

	// An inline query of the same shape also hits the certificate
	// cache, even with different variable names.
	var inline ExplainResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/whyso",
		ExplainRequest{Query: "q(u) :- R(u,v), S(v)", Answer: []string{"a4"}}, &inline); code != 200 {
		t.Fatalf("inline whyso: status %d", code)
	}
	if !inline.CertificateCached {
		t.Error("inline same-shape query missed the certificate cache")
	}
}

// TestClientErrors4xx drives every malformed-input path and checks the
// server answers 4xx — parser errors must not surface as 500s.
func TestClientErrors4xx(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, chainDBText)
	// A database whose exogenous part already satisfies the query, so
	// why-no against it is semantically invalid (not a non-answer).
	whyNoInfo := upload(t, ts, "-R(a,b)\n-S(b)\n+S(c)")
	var prep PrepareQueryResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries",
		PrepareQueryRequest{Query: "q(x) :- R(x,y), S(y)"}, &prep); code != 201 {
		t.Fatalf("prepare: status %d", code)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"malformed tuple line", http.MethodPost, "/v1/databases", CreateDatabaseRequest{Database: "+R(a,"}, 400},
		{"tuple without sign", http.MethodPost, "/v1/databases", CreateDatabaseRequest{Database: "R(a,b)"}, 400},
		{"lower-case relation", http.MethodPost, "/v1/databases", CreateDatabaseRequest{Database: "+r(a)"}, 400},
		{"arity drift", http.MethodPost, "/v1/databases", CreateDatabaseRequest{Database: "+R(a)\n+R(a,b)"}, 400},
		{"empty database", http.MethodPost, "/v1/databases", CreateDatabaseRequest{Database: "# only comments"}, 400},
		{"bad JSON body", http.MethodPost, "/v1/databases", "{not json", 400},
		{"unknown session", http.MethodPost, "/v1/databases/nope/queries", PrepareQueryRequest{Query: "q :- R(x,y)"}, 404},
		{"bad query syntax", http.MethodPost, "/v1/databases/" + info.ID + "/queries", PrepareQueryRequest{Query: "q(x) = R(x)"}, 400},
		{"unbalanced parens", http.MethodPost, "/v1/databases/" + info.ID + "/queries", PrepareQueryRequest{Query: "q :- R(x,y"}, 400},
		{"query arity mismatch", http.MethodPost, "/v1/databases/" + info.ID + "/queries", PrepareQueryRequest{Query: "q :- R(x)"}, 422},
		{"unknown prepared query", http.MethodPost, "/v1/databases/" + info.ID + "/queries/zzz/whyso", ExplainRequest{Answer: []string{"a4"}}, 404},
		{"bad mode", http.MethodPost, "/v1/databases/" + info.ID + "/queries/" + prep.ID + "/whyso", ExplainRequest{Answer: []string{"a4"}, Mode: "quantum"}, 400},
		{"bad binding arity", http.MethodPost, "/v1/databases/" + info.ID + "/queries/" + prep.ID + "/whyso", ExplainRequest{Answer: []string{"a4", "extra"}}, 422},
		{"missing inline query", http.MethodPost, "/v1/databases/" + info.ID + "/whyso", ExplainRequest{}, 400},
		{"inline bad syntax", http.MethodPost, "/v1/databases/" + info.ID + "/whyso", ExplainRequest{Query: "nonsense"}, 400},
		{"whyno on a holding query", http.MethodPost, "/v1/databases/" + whyNoInfo.ID + "/whyno", ExplainRequest{Query: "q :- R(x,y), S(y)"}, 422},
		{"empty batch", http.MethodPost, "/v1/databases/" + info.ID + "/batch", BatchExplainRequest{}, 400},
		{"delete unknown session", http.MethodDelete, "/v1/databases/nope", nil, 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := call(t, tc.method, ts.URL+tc.path, tc.body, nil)
			if got != tc.want {
				t.Errorf("status = %d; want %d", got, tc.want)
			}
			if got >= 500 {
				t.Errorf("client error surfaced as server error %d", got)
			}
		})
	}
}

// TestSessionEviction covers both eviction policies of the registry.
func TestSessionEviction(t *testing.T) {
	t.Run("max-sessions evicts LRU", func(t *testing.T) {
		now := time.Unix(1000, 0)
		var mu sync.Mutex
		clock := func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			now = now.Add(time.Second)
			return now
		}
		_, ts := newTest(t, Config{MaxSessions: 2, Clock: clock})
		a := upload(t, ts, chainDBText)
		b := upload(t, ts, chainDBText)
		// Touch a so b is the LRU.
		if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+a.ID+"/whyso",
			ExplainRequest{Query: "q :- R(x,y), S(y)"}, nil); code != 200 {
			t.Fatalf("touch: status %d", code)
		}
		c := upload(t, ts, chainDBText)
		st := stats(t, ts)
		if st.Sessions != 2 || st.SessionsEvicted != 1 {
			t.Fatalf("stats = sessions %d evicted %d; want 2, 1", st.Sessions, st.SessionsEvicted)
		}
		if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+b.ID+"/queries", PrepareQueryRequest{Query: "q :- S(y)"}, nil); code != 404 {
			t.Errorf("evicted session still answers: %d", code)
		}
		for _, id := range []string{a.ID, c.ID} {
			if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+id+"/queries", PrepareQueryRequest{Query: "q :- S(y)"}, nil); code != 201 {
				t.Errorf("survivor %s: status %d", id, code)
			}
		}
	})

	t.Run("idle TTL reaps", func(t *testing.T) {
		now := time.Unix(2000, 0)
		var mu sync.Mutex
		advance := func(d time.Duration) {
			mu.Lock()
			now = now.Add(d)
			mu.Unlock()
		}
		clock := func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		}
		srv, ts := newTest(t, Config{SessionTTL: time.Minute, Clock: clock})
		a := upload(t, ts, chainDBText)
		b := upload(t, ts, chainDBText)
		advance(45 * time.Second)
		// Touch b; a stays idle.
		if code := call(t, http.MethodGet, ts.URL+"/v1/databases", nil, nil); code != 200 {
			t.Fatal("list failed")
		}
		if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+b.ID+"/queries", PrepareQueryRequest{Query: "q :- S(y)"}, nil); code != 201 {
			t.Fatal("touch b failed")
		}
		advance(30 * time.Second) // a idle 75s > TTL, b idle 30s
		evicted := srv.EvictIdle()
		if len(evicted) != 1 || evicted[0] != a.ID {
			t.Fatalf("evicted = %v; want [%s]", evicted, a.ID)
		}
		st := stats(t, ts)
		if st.Sessions != 1 {
			t.Fatalf("sessions = %d; want 1", st.Sessions)
		}
	})
}

// TestEngineCacheEviction bounds the per-answer engine LRU.
func TestEngineCacheEviction(t *testing.T) {
	_, ts := newTest(t, Config{EngineCacheSize: 1})
	info := upload(t, ts, chainDBText)
	var prep PrepareQueryResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries",
		PrepareQueryRequest{Query: "q(x) :- R(x,y), S(y)"}, &prep); code != 201 {
		t.Fatal("prepare failed")
	}
	explain := func(answer string) {
		t.Helper()
		if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries/"+prep.ID+"/whyso",
			ExplainRequest{Answer: []string{answer}}, nil); code != 200 {
			t.Fatalf("whyso %s: status %d", answer, code)
		}
	}
	explain("a4")
	explain("a5") // evicts a4's engine
	explain("a4") // miss again
	st := stats(t, ts)
	if st.EngineCache.Misses != 3 || st.EngineCache.Evictions != 2 || st.EngineCache.Hits != 0 {
		t.Fatalf("engine cache %+v; want 3 misses, 2 evictions, 0 hits", st.EngineCache)
	}
	// Certificates are shape-level, so all three explains after the
	// prepare hit the certificate cache despite engine evictions.
	if st.CertCache.Hits != 3 {
		t.Fatalf("cert cache %+v; want 3 hits", st.CertCache)
	}
}

// TestBatchMatchesIndividual cross-checks the batch endpoint against
// per-request explains and checks per-item error isolation.
func TestBatchMatchesIndividual(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, chainDBText)
	var prep PrepareQueryResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries",
		PrepareQueryRequest{Query: "q(x) :- R(x,y), S(y)"}, &prep); code != 201 {
		t.Fatal("prepare failed")
	}

	var single ExplainResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries/"+prep.ID+"/whyso",
		ExplainRequest{Answer: []string{"a4"}}, &single); code != 200 {
		t.Fatal("single whyso failed")
	}

	var batch BatchExplainResponse
	code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/batch", BatchExplainRequest{
		Requests: []BatchItem{
			{QueryID: prep.ID, Answer: []string{"a4"}},
			{Query: "q :- R(x,y), S(y)"},
			{Query: "broken ("},
			{QueryID: "zzz"},
		},
	}, &batch)
	if code != 200 {
		t.Fatalf("batch: status %d", code)
	}
	if len(batch.Results) != 4 {
		t.Fatalf("got %d results; want 4", len(batch.Results))
	}
	if batch.Results[0].Error != "" || fmt.Sprint(batch.Results[0].Explanations) != fmt.Sprint(single.Explanations) {
		t.Errorf("batch item 0 diverged from single explain: %+v", batch.Results[0])
	}
	if !batch.Results[0].EngineCached {
		t.Error("batch item 0 should have hit the engine cached by the single explain")
	}
	if batch.Results[1].Error != "" || batch.Results[1].Causes == 0 {
		t.Errorf("batch item 1 = %+v; want boolean-query causes", batch.Results[1])
	}
	if batch.Results[2].Error == "" || batch.Results[3].Error == "" {
		t.Error("bad batch items did not report errors")
	}
}

// TestConcurrentExplains is the load acceptance criterion: 64 explain
// requests in flight against one server under -race, all succeeding,
// with the in-flight gauge catching them and draining to zero. A
// server-side barrier holds every request in the handler until all 64
// have arrived, so the gauge provably reaches the full client count
// before the fan-out races through admission, caching, and ranking
// concurrently.
func TestConcurrentExplains(t *testing.T) {
	const clients = 64
	var arrived sync.WaitGroup
	arrived.Add(clients)
	gate := make(chan struct{})
	go func() {
		arrived.Wait()
		close(gate)
	}()
	_, ts := newTest(t, Config{
		WorkerBudget:   2 * clients,
		RequestTimeout: 2 * time.Minute,
		testHookAdmitted: func() {
			arrived.Done()
			<-gate
		},
	})

	db, q, _ := workload.Chain2(7, 32)
	text, err := parser.FormatDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	info := upload(t, ts, text)
	var prep PrepareQueryResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries",
		PrepareQueryRequest{Query: q.String()}, &prep); code != 201 {
		t.Fatal("prepare failed")
	}

	var (
		wg       sync.WaitGroup
		failures atomic.Int64
	)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp ExplainResponse
			code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries/"+prep.ID+"/whyso",
				ExplainRequest{}, &resp)
			if code != 200 || len(resp.Explanations) == 0 {
				failures.Add(1)
			}
		}()
	}
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d concurrent explains failed", n, clients)
	}
	st := stats(t, ts)
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after drain; want 0", st.Inflight)
	}
	if st.PeakInflight < clients {
		t.Errorf("peak inflight = %d; want >= %d", st.PeakInflight, clients)
	}
	if st.AdmissionRejects != 0 {
		t.Errorf("admission rejects = %d; want 0", st.AdmissionRejects)
	}
	// All clients explained the same Boolean answer: every request was
	// served by the engine cache except the racing initial builds, and
	// every request either hit or built — nothing was dropped.
	if st.EngineCache.Hits+st.EngineCache.Misses != clients {
		t.Errorf("engine cache %+v; want hits+misses == %d", st.EngineCache, clients)
	}
	if st.EngineCache.Hits == 0 {
		t.Error("engine cache saw no hits across 64 identical explains")
	}
}

// TestAdmissionTimeout checks that a request whose context dies while
// queueing for the worker budget is rejected and counted, instead of
// hanging or leaking the slot. The first admitted request is held at a
// barrier so the only slot stays provably occupied while the second
// request queues, times out client-side, and is rejected.
func TestAdmissionTimeout(t *testing.T) {
	var first atomic.Bool
	holding := make(chan struct{})
	gate := make(chan struct{})
	_, ts := newTest(t, Config{
		WorkerBudget:   1,
		RequestTimeout: time.Minute,
		testHookAdmitted: func() {
			if first.CompareAndSwap(false, true) {
				close(holding)
				<-gate
			}
		},
	})
	info := upload(t, ts, chainDBText)
	qs := "q :- R(x,y), S(y)"

	slow := make(chan int, 1)
	go func() {
		slow <- call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/whyso",
			ExplainRequest{Query: qs}, nil)
	}()
	<-holding // the slow request now owns the only slot

	// The queued request gives up client-side while waiting for the
	// slot; the server must notice the dead context and count a reject.
	body, _ := json.Marshal(ExplainRequest{Query: qs})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/whyso", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	client := &http.Client{Timeout: 100 * time.Millisecond}
	resp, err := client.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Errorf("queued request unexpectedly completed with status %d", resp.StatusCode)
	}

	// The reject is counted when the server-side context cancellation
	// propagates; wait for it rather than racing the stats read.
	deadline := time.Now().Add(30 * time.Second)
	for stats(t, ts).AdmissionRejects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("admission reject never counted")
		}
		time.Sleep(time.Millisecond)
	}

	close(gate) // release the held slot; the slow request completes
	if code := <-slow; code != 200 {
		t.Errorf("held request: status %d", code)
	}
	for stats(t, ts).Inflight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("inflight never drained to 0")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHealthz sanity-checks the liveness endpoint.
func TestHealthz(t *testing.T) {
	_, ts := newTest(t, Config{})
	var h HealthResponse
	if code := call(t, http.MethodGet, ts.URL+"/healthz", nil, &h); code != 200 || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, h)
	}
}

// TestRawTextUpload checks the non-JSON upload path.
func TestRawTextUpload(t *testing.T) {
	_, ts := newTest(t, Config{})
	var info DatabaseInfo
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases", chainDBText, &info); code != 201 {
		t.Fatalf("raw upload: status %d", code)
	}
	if info.Tuples != 4 {
		t.Fatalf("tuples = %d; want 4", info.Tuples)
	}
}

// TestEngineKeyNoCollision: answers containing separator-looking bytes
// must not alias another answer's cached engine (length-prefixed keys).
// The second request binds two values to a one-variable head and must
// fail validation rather than ride the first request's engine.
func TestEngineKeyNoCollision(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, chainDBText)
	var prep PrepareQueryResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries",
		PrepareQueryRequest{Query: "q(x) :- R(x,y), S(y)"}, &prep); code != 201 {
		t.Fatal("prepare failed")
	}
	url := ts.URL + "/v1/databases/" + info.ID + "/queries/" + prep.ID + "/whyso"
	if code := call(t, http.MethodPost, url, ExplainRequest{Answer: []string{"a\x1fb"}}, nil); code != 200 {
		// The odd value is simply a non-answer constant; the engine is
		// built and ranks zero causes — what matters is it caches under
		// a key no other answer list can produce.
		t.Fatalf("whyso with separator byte: status %d", code)
	}
	var resp ExplainResponse
	code := call(t, http.MethodPost, url, ExplainRequest{Answer: []string{"a", "b"}}, &resp)
	if code != 422 {
		t.Fatalf("two-value answer on one-variable head: status %d (engine_cached=%v); want 422", code, resp.EngineCached)
	}
}

// TestPreparedQueryDedupAndCap: preparing the same text twice reuses
// one id; the registry is a bounded LRU, so old prepared queries are
// evicted (404) instead of growing without bound.
func TestPreparedQueryDedupAndCap(t *testing.T) {
	_, ts := newTest(t, Config{PreparedCacheSize: 2})
	info := upload(t, ts, chainDBText)
	prepare := func(q string) PrepareQueryResponse {
		t.Helper()
		var prep PrepareQueryResponse
		if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries",
			PrepareQueryRequest{Query: q}, &prep); code != 201 {
			t.Fatalf("prepare %q: status %d", q, code)
		}
		return prep
	}
	a := prepare("q(x) :- R(x,y), S(y)")
	dup := prepare("q(x) :- R(x,y), S(y)")
	if dup.ID != a.ID || !dup.CertificateCached {
		t.Errorf("duplicate prepare: id %s cached=%v; want id %s, cached", dup.ID, dup.CertificateCached, a.ID)
	}
	if n := stats(t, ts).PreparedQueries; n != 1 {
		t.Errorf("prepared queries = %d after duplicate prepare; want 1", n)
	}
	b := prepare("q :- R(x,y), S(y)")
	c := prepare("q :- S(y), R(x,y)") // evicts a (LRU)
	if n := stats(t, ts).PreparedQueries; n != 2 {
		t.Errorf("prepared queries = %d after cap; want 2", n)
	}
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries/"+a.ID+"/whyso",
		ExplainRequest{Answer: []string{"a4"}}, nil); code != 404 {
		t.Errorf("evicted prepared query still answers: status %d; want 404", code)
	}
	for _, id := range []string{b.ID, c.ID} {
		if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries/"+id+"/whyso",
			ExplainRequest{}, nil); code != 200 {
			t.Errorf("survivor %s: status %d", id, code)
		}
	}
}

// TestRepeatedHeadVariableClassification: q(x,x) heads and head
// constants defeat placeholder Bind; the certificate must still be
// computed for the answer-BOUND shape. The unbound triangle is h2*
// (NP-hard), but with x bound it collapses to a linear chain — the
// prepared class and the explain results must both reflect the bound
// shape.
func TestRepeatedHeadVariableClassification(t *testing.T) {
	const dbText = "+R(a,b)\n+S(b,c)\n+T(c,a)\n+R(a,d)\n+S(d,e)\n+T(e,a)\n"
	_, ts := newTest(t, Config{})
	info := upload(t, ts, dbText)

	var prep PrepareQueryResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries",
		PrepareQueryRequest{Query: "q(x,x) :- R(x,y), S(y,z), T(z,x)"}, &prep); code != 201 {
		t.Fatalf("prepare: status %d", code)
	}
	if !strings.Contains(prep.Class, "PTIME") {
		t.Errorf("class = %q; want PTIME (bound shape is a chain, not h2*)", prep.Class)
	}

	var got ExplainResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/queries/"+prep.ID+"/whyso",
		ExplainRequest{Answer: []string{"a", "a"}}, &got); code != 200 {
		t.Fatalf("whyso: status %d", code)
	}

	db, err := parser.ParseDatabase(strings.NewReader(dbText))
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery("q(x,x) :- R(x,y), S(y,z), T(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewWhySo(db, q, "a", "a")
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.RankAll(core.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Explanations) != len(want) {
		t.Fatalf("got %d explanations; want %d", len(got.Explanations), len(want))
	}
	for i, e := range got.Explanations {
		if e.Rho != want[i].Rho || e.TupleID != int(want[i].Tuple) {
			t.Errorf("explanation %d = %+v; want %+v", i, e, want[i])
		}
	}
}

// TestBatchParallelismClamped: a client cannot spawn more compute
// concurrency than the server's worker budget by inflating the batch
// parallelism field (the request must still succeed, just clamped).
func TestBatchParallelismClamped(t *testing.T) {
	_, ts := newTest(t, Config{WorkerBudget: 2})
	info := upload(t, ts, chainDBText)
	var resp BatchExplainResponse
	code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/batch", BatchExplainRequest{
		Requests: []BatchItem{
			{Query: "q :- R(x,y), S(y)"},
			{Query: "q :- S(y), R(x,y)"},
		},
		Parallelism: 1 << 20,
	}, &resp)
	if code != 200 {
		t.Fatalf("batch: status %d", code)
	}
	for i, r := range resp.Results {
		if r.Error != "" || r.Causes == 0 {
			t.Errorf("item %d: %+v", i, r)
		}
	}
}
