// Tuple mutation: sessions are mutable databases. POST
// /v1/databases/{db}/tuples inserts a batch of tuples and DELETE
// /v1/databases/{db}/tuples/{id} removes one, both under the session's
// database write lock, serialized against in-flight explains.
//
// The point of mutating in place — instead of uploading a fresh
// database — is keeping the session's warm explanation state.
// Invalidation is *incremental*: only the per-answer engines whose
// results a mutation can actually change are dropped, decided from the
// lineage each engine already computed.
//
//   - Deleting an endogenous tuple t invalidates engines whose cause
//     set contains t (the minimized DNF lineage mentions it — Theorem
//     3.2 makes the cause set exactly the lineage variables). An engine
//     over a query that mentions t's relation but whose lineage avoids
//     t is provably unaffected: every valuation it ranked survives, and
//     no new valuation can appear from removing a tuple.
//   - Inserting any tuple, or deleting an exogenous one, invalidates
//     engines over queries that mention the relation — the change can
//     create or destroy valuations the cached lineage never saw — and
//     no others: a query that never reads the relation cannot observe
//     the mutation.
//   - A mutation that flips the relation's endogeneity (first
//     endogenous tuple inserted, or last one deleted) additionally
//     invalidates the cached dichotomy certificates whose shape
//     mentions the relation: classification runs against the
//     endogenous/exogenous split (Corollary 4.14), so the flip can move
//     a query shape across the dichotomy and change which
//     responsibility method an explain dispatches to.
//
// A stale engine is no longer necessarily dropped: the delta layer
// (internal/delta) first tries to patch its cached lineage in place —
// inserts merge the pinned-evaluation delta, endogenous deletes filter
// the dead conjuncts — and only mutations it cannot prove safe
// (exogenous deletes, Why-No engines) fall back to the cold drop. A
// patched engine answers byte-identically to a cold rebuild; the
// difftest metamorphic invariant checks exactly that, comparing the
// surviving state against a cold server rebuilt at the final database
// version.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"github.com/querycause/querycause/internal/delta"
	"github.com/querycause/querycause/internal/qerr"
	"github.com/querycause/querycause/internal/rel"
)

// idempotencyHeader keys mutation dedup: a client retrying a mutation
// (after a timeout, a dropped connection, or a mid-handoff 503) sends
// the same key and the session replays the stored response instead of
// applying twice. Replayed responses carry replayHeader: true.
const (
	idempotencyHeader = "Idempotency-Key"
	replayHeader      = "Idempotent-Replay"
)

// writeRawJSON writes a pre-marshaled JSON body.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeMoved answers a request against a session frozen for handoff:
// its snapshot is in flight to the new owner and must stay the final
// word, so the client retries (the redirect/refresh path lands it on
// the new owner).
func writeMoved(w http.ResponseWriter, id string) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "session %s is migrating to its new owner; retry", id)
}

// idemReplay answers a keyed mutation retry from the dedup cache,
// reporting whether it did. Caller holds dbMu (either side).
func idemReplay(w http.ResponseWriter, sess *session, key string) bool {
	if key == "" {
		return false
	}
	body, ok := sess.idem[key]
	if !ok {
		return false
	}
	w.Header().Set(replayHeader, "true")
	writeRawJSON(w, http.StatusOK, body)
	return true
}

// invalidation counts the explanation state one mutation touched:
// engines dropped cold, engines the delta layer patched in place,
// delta fallbacks (stale engines the delta path declined — a subset of
// engines), and certificates dropped.
type invalidation struct {
	engines   int
	patched   int
	fallbacks int
	certs     int
}

func (a invalidation) add(b invalidation) invalidation {
	return invalidation{
		engines:   a.engines + b.engines,
		patched:   a.patched + b.patched,
		fallbacks: a.fallbacks + b.fallbacks,
		certs:     a.certs + b.certs,
	}
}

// relProfile captures the endogeneity profile of one relation; a
// mutation that changes it can flip classification (HasEndo) for every
// query shape mentioning the relation.
func relProfile(r *rel.Relation) (exists, hasEndo bool) {
	if r == nil {
		return false, false
	}
	return true, r.HasEndo()
}

// invalidateMutation refreshes the session state one mutation can
// have stale: engines by the rules in the package comment,
// certificates when endoFlipped. endoDeleted >= 0 narrows engine
// invalidation for an endogenous delete to engines whose cause set
// contains the tuple; pass -1 for inserts and exogenous deletes. A
// stale engine is first offered to the delta layer (unless the
// session runs with delta maintenance disabled), which patches its
// lineage in place when it can prove the patch byte-equivalent to a
// cold rebuild; only declined engines are dropped. Certificates are
// invalidated before engines are patched: a patched engine carries no
// primed certificate (it re-classifies lazily), so it can never serve
// a stale pre-flip classification. Caller holds dbMu for writing.
func (s *session) invalidateMutation(relName string, endoDeleted rel.TupleID, endoFlipped bool, m delta.Mutation) invalidation {
	var inv invalidation
	if endoFlipped {
		// Certificate keys are shape keys (shapeKeyOf): a sequence of
		// "Pred(terms…)|" segments, so this marker matches exactly the
		// shapes with an atom over relName. It also matches relations
		// whose name ends in relName ("PR(" contains "R(") — conservative
		// over-invalidation; the certificate is recomputed on next use.
		marker := relName + "("
		for _, key := range s.certs.Keys() {
			if strings.Contains(key, marker) {
				s.certs.Remove(key)
				inv.certs++
			}
		}
	}
	for _, key := range s.engines.Keys() {
		eng, ok := s.engines.Peek(key)
		if !ok {
			continue
		}
		var stale bool
		if endoDeleted >= 0 && !endoFlipped {
			stale = eng.Touches(endoDeleted)
		} else if endoDeleted >= 0 {
			stale = eng.Touches(endoDeleted) || eng.Mentions(relName)
		} else {
			stale = eng.Mentions(relName)
		}
		if !stale {
			continue
		}
		if !s.noDelta {
			ne, patched, err := delta.Apply(s.db, eng, m)
			if err == nil && patched {
				s.engines.Put(key, ne)
				inv.patched++
				continue
			}
			inv.fallbacks++
		}
		s.engines.Remove(key)
		inv.engines++
	}
	return inv
}

// ValidateInsert checks a batch of tuple inserts against db without
// applying anything: no empty batch, no empty relation names or
// argument lists, and consistent arity — against the live relation, or
// against the first tuple of the batch for a relation the batch itself
// introduces. Both transports of the Session API share it, so a batch
// the in-process transport rejects fails remotely with the same
// message and sentinel (and vice versa), and a batch it accepts
// applies in full.
func ValidateInsert(db *rel.Database, specs []TupleSpec) error {
	if len(specs) == 0 {
		return qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("empty insert: no tuples"))
	}
	arity := make(map[string]int)
	for i, t := range specs {
		if t.Rel == "" {
			return qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("tuple %d: empty relation name", i))
		}
		if len(t.Args) == 0 {
			return qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("tuple %d: relation %s: no arguments", i, t.Rel))
		}
		want, ok := arity[t.Rel]
		if !ok {
			if r := db.Relation(t.Rel); r != nil {
				want = r.Arity
			} else {
				want = len(t.Args)
			}
			arity[t.Rel] = want
		}
		if len(t.Args) != want {
			return qerr.Tag(qerr.ErrBadInstance,
				fmt.Errorf("tuple %d: relation %s has arity %d, got %d args", i, t.Rel, want, len(t.Args)))
		}
	}
	return nil
}

// applyInsert validates the whole batch (ValidateInsert), then appends
// every tuple and invalidates the state each insert touches.
// Validation is all-upfront so a failed request mutates nothing.
// Caller holds dbMu for writing.
func (s *session) applyInsert(specs []TupleSpec) ([]rel.TupleID, invalidation, error) {
	if err := ValidateInsert(s.db, specs); err != nil {
		return nil, invalidation{}, err
	}
	var inv invalidation
	ids := make([]rel.TupleID, 0, len(specs))
	for _, t := range specs {
		_, endoBefore := relProfile(s.db.Relation(t.Rel))
		id, err := s.db.Add(t.Rel, t.Endo, toValues(t.Args)...)
		if err != nil {
			// Unreachable after upfront validation; surface it anyway.
			return ids, inv, qerr.Tag(qerr.ErrBadInstance, err)
		}
		if t.Endo {
			s.endo++
		}
		_, endoAfter := relProfile(s.db.Relation(t.Rel))
		inv = inv.add(s.invalidateMutation(t.Rel, -1, endoBefore != endoAfter,
			delta.Mutation{Rel: t.Rel, Inserted: id, Deleted: -1}))
		ids = append(ids, id)
	}
	return ids, inv, nil
}

// applyDelete removes one tuple and invalidates the state it touches.
// Caller holds dbMu for writing.
func (s *session) applyDelete(id rel.TupleID) (invalidation, error) {
	if !s.db.Live(id) {
		return invalidation{}, qerr.Tag(qerr.ErrTupleNotFound,
			fmt.Errorf("session %s has no live tuple %d", s.id, id))
	}
	relName := s.db.Tuple(id).Rel
	wasEndo := s.db.Endo(id)
	_, endoBefore := relProfile(s.db.Relation(relName))
	if err := s.db.Delete(id); err != nil {
		return invalidation{}, err
	}
	if wasEndo {
		s.endo--
	}
	_, endoAfter := relProfile(s.db.Relation(relName))
	endoDeleted := rel.TupleID(-1)
	if wasEndo {
		endoDeleted = id
	}
	return s.invalidateMutation(relName, endoDeleted, endoBefore != endoAfter,
		delta.Mutation{Rel: relName, Inserted: -1, Deleted: id, WasEndo: wasEndo}), nil
}

// handleInsertTuples serves POST /v1/databases/{db}/tuples.
func (s *Server) handleInsertTuples(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	sess, ok := s.sessionOf(w, r)
	if !ok {
		return
	}
	sessRelease, ok := s.admitSession(sess)
	if !ok {
		writeErr(w, errSessionBudget(sess, s.cfg.SessionBudget))
		return
	}
	defer sessRelease()
	var req InsertTuplesRequest
	if err := decodeJSON(r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	idemKey := r.Header.Get(idempotencyHeader)
	sess.dbMu.Lock()
	if sess.moved.Load() {
		sess.dbMu.Unlock()
		writeMoved(w, sess.id)
		return
	}
	if idemReplay(w, sess, idemKey) {
		sess.dbMu.Unlock()
		return
	}
	ids, inv, err := sess.applyInsert(req.Tuples)
	version, live := sess.db.Version(), sess.db.NumLive()
	var respBody []byte
	if err == nil {
		// Fan watch frames out while still holding the write lock, so
		// every subscriber sees exactly one frame per mutation request, in
		// mutation order.
		rels := make(map[string]bool, len(req.Tuples))
		for _, t := range req.Tuples {
			rels[t.Rel] = true
		}
		sess.watch.Fanout(version, rels)
		out := make([]int, len(ids))
		for i, id := range ids {
			out[i] = int(id)
		}
		respBody, _ = json.Marshal(MutateResponse{
			Database:           sess.id,
			Version:            version,
			Tuples:             live,
			TupleIDs:           out,
			EnginesInvalidated: inv.engines,
			CertsInvalidated:   inv.certs,
			EnginesPatched:     inv.patched,
		})
		if idemKey != "" {
			sess.rememberIdem(idemKey, respBody)
		}
	}
	sess.dbMu.Unlock()
	if err != nil {
		writeErr(w, err)
		return
	}
	s.finishMutation(sess, inv)
	writeRawJSON(w, http.StatusOK, respBody)
}

// handleDeleteTuple serves DELETE /v1/databases/{db}/tuples/{id}.
func (s *Server) handleDeleteTuple(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	sess, ok := s.sessionOf(w, r)
	if !ok {
		return
	}
	sessRelease, ok := s.admitSession(sess)
	if !ok {
		writeErr(w, errSessionBudget(sess, s.cfg.SessionBudget))
		return
	}
	defer sessRelease()
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid tuple id %q", r.PathValue("id"))
		return
	}
	idemKey := r.Header.Get(idempotencyHeader)
	var relName string
	sess.dbMu.Lock()
	if sess.moved.Load() {
		sess.dbMu.Unlock()
		writeMoved(w, sess.id)
		return
	}
	if idemReplay(w, sess, idemKey) {
		sess.dbMu.Unlock()
		return
	}
	if sess.db.Live(rel.TupleID(id)) {
		relName = sess.db.Tuple(rel.TupleID(id)).Rel
	}
	inv, derr := sess.applyDelete(rel.TupleID(id))
	version, live := sess.db.Version(), sess.db.NumLive()
	var respBody []byte
	if derr == nil {
		sess.watch.Fanout(version, map[string]bool{relName: true})
		respBody, _ = json.Marshal(MutateResponse{
			Database:           sess.id,
			Version:            version,
			Tuples:             live,
			EnginesInvalidated: inv.engines,
			CertsInvalidated:   inv.certs,
			EnginesPatched:     inv.patched,
		})
		if idemKey != "" {
			sess.rememberIdem(idemKey, respBody)
		}
	}
	sess.dbMu.Unlock()
	if derr != nil {
		writeErr(w, derr)
		return
	}
	s.finishMutation(sess, inv)
	writeRawJSON(w, http.StatusOK, respBody)
}

// finishMutation bumps the mutation counters and schedules a snapshot
// of the mutated session.
func (s *Server) finishMutation(sess *session, inv invalidation) {
	s.mutations.Add(1)
	s.engineInvalidations.Add(uint64(inv.engines))
	s.certInvalidations.Add(uint64(inv.certs))
	s.enginesPatched.Add(uint64(inv.patched))
	s.deltaFallbacks.Add(uint64(inv.fallbacks))
	s.markDirty(sess)
}
