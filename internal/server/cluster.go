// Cluster routing: when a server is configured with Self + Peers, the
// replicas form a consistent-hash ring over session IDs
// (internal/cluster). Session IDs are minted to hash onto the node
// that created them, so the common path — a client that uploaded to
// some node and keeps talking to it — never leaves the owner. Requests
// that do arrive at the wrong node are either 307-redirected to the
// owner (default; the redirect is cheap and the client follows it once
// and repins) or reverse-proxied on the client's behalf (ClusterProxy,
// for clients that cannot follow redirects).
//
// Membership is dynamic: the ring is a cluster.Versioned whose
// topology carries an epoch. Admin endpoints (membership.go) join and
// remove nodes at runtime, propagate the new topology to every peer,
// and trigger session handoff; GET /v1/cluster and every redirect
// carry the epoch so clients detect staleness.
package server

import (
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/querycause/querycause/internal/cluster"
	"github.com/querycause/querycause/internal/qerr"
)

// EpochHeader carries the sender's topology epoch on redirects and
// cluster responses, so a client holding a stale topology learns it is
// stale from the very response that reroutes it.
const EpochHeader = "X-Cluster-Epoch"

// clusterState is the routing half of a clustered server.
type clusterState struct {
	self  string
	ring  *cluster.Versioned
	proxy bool
	// peers is the HTTP client used for node-to-node calls: topology
	// propagation and session handoff. Short timeout — peers are LAN
	// neighbors, and a dead one must not stall an admin request.
	peers *http.Client

	mu      sync.Mutex
	proxies map[string]*httputil.ReverseProxy
}

// sessionPathID extracts the session id from a /v1/databases/{id}[/…]
// path, reporting false for paths that are not session-addressed
// (upload, list, stats, health — those are answered locally by any
// node).
func sessionPathID(path string) (string, bool) {
	rest, ok := strings.CutPrefix(path, "/v1/databases/")
	if !ok || rest == "" {
		return "", false
	}
	id, _, _ := strings.Cut(rest, "/")
	return id, id != ""
}

// clusterHandler wraps the mux with ownership routing. Non-clustered
// servers never reach it (Handler returns the mux directly).
func (s *Server) clusterHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, ok := sessionPathID(r.URL.Path)
		if !ok {
			s.mux.ServeHTTP(w, r)
			return
		}
		owner := s.cluster.ring.Owner(id)
		if owner == "" || owner == s.cluster.self {
			s.mux.ServeHTTP(w, r)
			return
		}
		if s.cluster.proxy {
			s.clusterProxied.Add(1)
			s.cluster.proxyFor(owner).ServeHTTP(w, r)
			return
		}
		s.clusterRedirected.Add(1)
		w.Header().Set("Location", owner+r.URL.RequestURI())
		w.Header().Set(EpochHeader, strconv.FormatUint(s.cluster.ring.Epoch(), 10))
		w.WriteHeader(http.StatusTemporaryRedirect)
	})
}

// proxyFor returns the reverse proxy for a peer, building and caching
// it on first use. Proxies are built lazily because membership changes
// at runtime; a stale entry for a removed node is harmless (it is
// simply never selected once the ring drops the node).
func (cs *clusterState) proxyFor(node string) *httputil.ReverseProxy {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if p, ok := cs.proxies[node]; ok {
		return p
	}
	target, err := url.Parse(node)
	if err != nil || target.Scheme == "" || target.Host == "" {
		// Membership is validated on the way in (newClusterState and the
		// join endpoint), so this is unreachable; fail loudly if not.
		panic(fmt.Sprintf("server: invalid peer URL %q in ring", node))
	}
	p := httputil.NewSingleHostReverseProxy(target)
	// Streaming responses (explain/stream, watch) must flush through
	// the proxy frame by frame, not on a 100ms timer: a watch frame
	// held in the proxy buffer would stall the subscriber until the
	// next mutation.
	p.FlushInterval = -1
	p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		writeJSON(w, http.StatusBadGateway, ErrorResponse{Error: fmt.Sprintf("proxying to session owner %s: %v", target, err)})
	}
	cs.proxies[node] = p
	return p
}

// newClusterState validates the cluster config and builds the routing
// state. Self is implicitly a member even if absent from Peers.
func newClusterState(cfg Config, ring *cluster.Versioned) (*clusterState, error) {
	for _, node := range ring.Nodes() {
		target, err := url.Parse(node)
		if err != nil || target.Scheme == "" || target.Host == "" {
			return nil, fmt.Errorf("server: invalid peer URL %q", node)
		}
	}
	return &clusterState{
		self:    cfg.Self,
		ring:    ring,
		proxy:   cfg.ClusterProxy,
		peers:   &http.Client{Timeout: 5 * time.Second},
		proxies: make(map[string]*httputil.ReverseProxy),
	}, nil
}

// handleCluster serves GET /v1/cluster: the topology clients use for
// client-side routing. Non-clustered servers answer with empty Peers.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	resp := ClusterResponse{}
	if s.cluster != nil {
		topo := s.cluster.ring.Current()
		resp.Self = s.cluster.self
		resp.Peers = topo.Nodes
		resp.Proxy = s.cluster.proxy
		resp.Epoch = topo.Epoch
		w.Header().Set(EpochHeader, strconv.FormatUint(topo.Epoch, 10))
	}
	writeJSON(w, http.StatusOK, resp)
}

// admitSession tracks one request inside a session-addressed handler
// and applies the per-session fairness budget. The in-flight count is
// maintained even with the budget disabled — the eviction paths
// (MaxSessions LRU, idle reaper) consult it so a session is never torn
// down with a request still inside a handler. With SessionBudget > 0 a
// session may additionally have at most that many requests in flight
// (queued for the global worker budget or computing); requests over
// the cap are shed immediately — no queueing — with
// qerr.ErrBudgetExceeded, so one hot session cannot occupy every
// admission slot and starve the rest.
func (s *Server) admitSession(sess *session) (release func(), ok bool) {
	n := sess.inflight.Add(1)
	if b := s.cfg.SessionBudget; b > 0 && n > int64(b) {
		sess.inflight.Add(-1)
		s.sessionSheds.Add(1)
		return nil, false
	}
	return func() { sess.inflight.Add(-1) }, true
}

func errSessionBudget(sess *session, budget int) error {
	return qerr.Tag(qerr.ErrBudgetExceeded, fmt.Errorf("session %s over its fairness budget (%d concurrent explains)", sess.id, budget))
}
