// JSON request/response types of the querycaused HTTP API. The module
// root re-exports them (see client.go at the repository root), so a Go
// client and the server share one wire vocabulary.
package server

import "github.com/querycause/querycause/internal/cache"

// CreateDatabaseRequest uploads a database in the parser's textual
// format ("+R(a,b)" endogenous, "-S(c)" exogenous, '#' comments). The
// same payload may instead be POSTed as a raw text body.
type CreateDatabaseRequest struct {
	Database string `json:"database"`
}

// DatabaseInfo describes one registered session. Tuples counts live
// tuples only; Version is the mutation version (uploaded tuples plus
// every insert and delete since), so two sessions with equal history
// report equal versions.
type DatabaseInfo struct {
	ID          string `json:"id"`
	Tuples      int    `json:"tuples"`
	Version     uint64 `json:"version"`
	Endogenous  int    `json:"endogenous"`
	Relations   int    `json:"relations"`
	Prepared    int    `json:"prepared_queries"`
	IdleSeconds int64  `json:"idle_seconds"`
}

// PrepareQueryRequest registers a conjunctive query against a session.
type PrepareQueryRequest struct {
	Query string `json:"query"`
}

// PrepareQueryResponse describes a prepared query: the canonical form,
// its dichotomy classification under both domination rules, and the
// Theorem 3.4 Datalog¬ cause program, all computed once and cached.
type PrepareQueryResponse struct {
	ID         string `json:"id"`
	Database   string `json:"database"`
	Query      string `json:"query"`
	Class      string `json:"class"`       // sound rule (what ModeAuto dispatches on)
	ClassPaper string `json:"class_paper"` // the paper's Fig. 3 rule
	// Program is the generated stratified Datalog¬ cause program.
	Program string `json:"program,omitempty"`
	// CertificateCached reports whether classification was served from
	// the session's certificate cache (an equal-shape query was already
	// prepared or explained).
	CertificateCached bool `json:"certificate_cached"`
}

// ExplainRequest asks why an answer is (whyso) or is not (whyno)
// returned. Exactly one of the URL-addressed prepared query or the
// inline Query must identify the query.
type ExplainRequest struct {
	// Query is an inline conjunctive query, for one-shot explains
	// without preparation.
	Query string `json:"query,omitempty"`
	// Answer is the (non-)answer tuple bound into the query head; empty
	// for Boolean queries.
	Answer []string `json:"answer,omitempty"`
	// Mode selects the responsibility strategy: "auto" (default),
	// "exact", or "paper".
	Mode string `json:"mode,omitempty"`
	// Parallelism overrides the server's per-request ranking worker
	// count (values <= 0 mean the server default; capped at the worker
	// budget). The ranking is byte-identical at every degree.
	Parallelism int `json:"parallelism,omitempty"`
}

// ExplanationDTO is one ranked cause.
type ExplanationDTO struct {
	TupleID int     `json:"tuple_id"`
	Tuple   string  `json:"tuple"`
	Rho     float64 `json:"rho"`
	// ContingencySize is min|Γ|; -1 when the tuple is not a cause.
	ContingencySize int      `json:"contingency_size"`
	Contingency     []string `json:"contingency,omitempty"`
	// ContingencyIDs carries the contingency as tuple ids, parallel to
	// Contingency, so remote clients can rehydrate a core.Explanation
	// bit-for-bit.
	ContingencyIDs []int  `json:"contingency_ids,omitempty"`
	Method         string `json:"method"`
}

// ExplainResponse is the ranking for one answer or non-answer.
type ExplainResponse struct {
	Database string   `json:"database"`
	QueryID  string   `json:"query_id,omitempty"`
	Query    string   `json:"query"`
	Answer   []string `json:"answer,omitempty"`
	WhyNo    bool     `json:"why_no"`
	// EngineCached reports whether the per-answer engine (lineage and
	// causes already computed) was served from the session cache: the
	// request skipped straight to responsibility ranking.
	EngineCached bool `json:"engine_cached"`
	// CertificateCached reports whether the dichotomy certificate came
	// from the session cache (classification skipped). Implied by
	// EngineCached.
	CertificateCached bool             `json:"certificate_cached"`
	Causes            int              `json:"causes"`
	Explanations      []ExplanationDTO `json:"explanations"`
	ElapsedMicros     int64            `json:"elapsed_micros"`
}

// BatchExplainRequest explains many answers/non-answers in one call; it
// maps onto the library's ExplainAll fan-out.
type BatchExplainRequest struct {
	Requests []BatchItem `json:"requests"`
	// Mode applies to every item: "auto" (default), "exact", "paper".
	Mode string `json:"mode,omitempty"`
	// Parallelism overrides the server's per-request worker budget for
	// this batch (values <= 0 mean the server default).
	Parallelism int `json:"parallelism,omitempty"`
}

// BatchItem is one request of a batch: either a prepared QueryID or an
// inline Query.
type BatchItem struct {
	QueryID string   `json:"query_id,omitempty"`
	Query   string   `json:"query,omitempty"`
	Answer  []string `json:"answer,omitempty"`
	WhyNo   bool     `json:"why_no,omitempty"`
}

// BatchExplainResponse returns per-item results in request order;
// per-item failures (Error != "") do not abort the rest of the batch.
type BatchExplainResponse struct {
	Database string            `json:"database"`
	Results  []BatchItemResult `json:"results"`
}

// BatchItemResult is the outcome of one batch item.
type BatchItemResult struct {
	Error string `json:"error,omitempty"`
	// Code is the machine-readable taxonomy code of Error (see
	// internal/qerr), "" when the failure carries no taxonomy tag.
	Code         string           `json:"code,omitempty"`
	EngineCached bool             `json:"engine_cached"`
	Causes       int              `json:"causes"`
	Explanations []ExplanationDTO `json:"explanations,omitempty"`
}

// StatsResponse is the /v1/stats payload: session registry occupancy,
// cache effectiveness, and request gauges. The integration tests assert
// warm-certificate explains through CertCache.Hits, and the CI smoke
// test asserts Inflight == 0 after the load generator drains.
type StatsResponse struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Sessions        int     `json:"sessions"`
	MaxSessions     int     `json:"max_sessions"`
	SessionsEvicted uint64  `json:"sessions_evicted"`
	PreparedQueries int     `json:"prepared_queries"`
	// Inflight counts explain/batch requests currently inside the
	// handler (queued for admission or computing); PeakInflight is the
	// high-water mark.
	Inflight     int64 `json:"inflight"`
	PeakInflight int64 `json:"peak_inflight"`
	// WorkerBudget is the admission limit on concurrently computing
	// explain requests.
	WorkerBudget     int         `json:"worker_budget"`
	RequestsTotal    uint64      `json:"requests_total"`
	ExplainsTotal    uint64      `json:"explains_total"`
	AdmissionRejects uint64      `json:"admission_rejects"`
	CertCache        cache.Stats `json:"cert_cache"`
	EngineCache      cache.Stats `json:"engine_cache"`

	// SessionBudget is the per-session fairness cap on concurrent
	// explains (0 = unlimited); SessionSheds counts requests shed for
	// exceeding it (surfaced to clients as budget_exceeded / 503).
	SessionBudget int    `json:"session_budget,omitempty"`
	SessionSheds  uint64 `json:"session_sheds,omitempty"`

	// Mutation counters: MutationsTotal counts tuple insert/delete
	// requests served; EnginesInvalid and CertsInvalid count the cached
	// per-answer engines and certificate pairs those mutations
	// incrementally invalidated (everything else stayed warm).
	// EnginesPatched counts engines the delta-maintenance layer revived
	// in place instead of dropping.
	MutationsTotal uint64 `json:"mutations_total,omitempty"`
	EnginesInvalid uint64 `json:"engines_invalidated,omitempty"`
	CertsInvalid   uint64 `json:"certs_invalidated,omitempty"`
	EnginesPatched uint64 `json:"engines_patched,omitempty"`

	// Live-explanation counters: WatchesActive is the gauge of open
	// watch streams, DiffEventsSent the cumulative frames written to
	// them (snapshots, diffs, resyncs, and in-band errors), and
	// DeltaFallbacks the mutations×engines where the delta-maintenance
	// layer could not prove a patch safe and fell back to a cold
	// rebuild. They are always present (not omitempty): a zero reads as
	// "no watch traffic", which monitoring must distinguish from "stat
	// missing".
	WatchesActive  int64  `json:"watches_active"`
	DiffEventsSent uint64 `json:"diff_events_sent"`
	DeltaFallbacks uint64 `json:"delta_fallbacks"`
	// WatchBudget is the per-session cap on concurrent watch
	// subscriptions (0 = unlimited).
	WatchBudget int `json:"watch_budget,omitempty"`

	// Cluster routing counters, present only on clustered servers: Node
	// is this replica's advertised URL, ClusterPeers the ring size,
	// ClusterEpoch the version of the topology currently installed.
	// ClusterRedirected counts requests 307-redirected to their owner,
	// ClusterProxied requests reverse-proxied on the client's behalf.
	Node              string `json:"node,omitempty"`
	ClusterPeers      int    `json:"cluster_peers,omitempty"`
	ClusterEpoch      uint64 `json:"cluster_epoch,omitempty"`
	ClusterRedirected uint64 `json:"cluster_redirected,omitempty"`
	ClusterProxied    uint64 `json:"cluster_proxied,omitempty"`
	// Handoff counters: HandoffsOut counts sessions this node shipped to
	// their new owner after a topology change, HandoffsIn sessions it
	// received, HandoffFails transfers that failed (the session stayed
	// put and is retried on the next topology change).
	HandoffsOut  uint64 `json:"handoffs_out,omitempty"`
	HandoffsIn   uint64 `json:"handoffs_in,omitempty"`
	HandoffFails uint64 `json:"handoff_fails,omitempty"`

	// Persistence counters, present only when a snapshot store is
	// configured: RestoredSessions counts sessions loaded warm (at boot
	// or lazily on first touch), SnapshotWrites the snapshots written by
	// the write-behind flusher, SnapshotsPending the sessions currently
	// marked dirty.
	PersistEnabled   bool   `json:"persist_enabled,omitempty"`
	RestoredSessions uint64 `json:"restored_sessions,omitempty"`
	SnapshotWrites   uint64 `json:"snapshot_writes,omitempty"`
	SnapshotsPending int    `json:"snapshots_pending,omitempty"`
}

// ClusterResponse is the GET /v1/cluster payload: the receiving node's
// advertised URL and the full current membership. Clients build the
// same consistent-hash ring from Peers and route session requests
// straight to owners; a non-clustered server answers with empty Peers.
type ClusterResponse struct {
	// Self is the advertised URL of the answering node ("" when the
	// server is not clustered).
	Self string `json:"self,omitempty"`
	// Peers is the full membership, including Self, sorted.
	Peers []string `json:"peers,omitempty"`
	// Proxy reports whether this node proxies non-owned requests
	// instead of 307-redirecting them.
	Proxy bool `json:"proxy,omitempty"`
	// Epoch is the version of this membership. Every topology change
	// (join, removal) bumps it; redirects and cluster responses carry it
	// in the X-Cluster-Epoch header so clients detect a stale ring and
	// refresh.
	Epoch uint64 `json:"epoch,omitempty"`
}

// ClusterNodeRequest is the POST /v1/cluster/nodes payload: the
// advertised URL of the node joining the ring. The receiving node
// mints the next topology epoch, propagates it to every member
// (including the joiner), and hands off the sessions the new ring
// assigns elsewhere. DELETE /v1/cluster/nodes?url=… removes a node
// the same way.
type ClusterNodeRequest struct {
	URL string `json:"url"`
}

// ClusterChangeResponse reports the outcome of a membership change
// (or a received topology): the installed topology and how far it
// propagated. Propagation is best-effort — unreached peers converge
// when any member re-propagates or they rejoin.
type ClusterChangeResponse struct {
	Epoch uint64   `json:"epoch"`
	Nodes []string `json:"nodes"`
	// PeersNotified counts members the new topology was pushed to;
	// PeersFailed counts members that could not be reached.
	PeersNotified int `json:"peers_notified"`
	PeersFailed   int `json:"peers_failed,omitempty"`
}

// ErrorResponse is the uniform error payload. Code, when present, is
// a stable machine-readable taxonomy code (internal/qerr) that the Go
// client rehydrates into the matching sentinel, so errors.Is behaves
// identically in-process and over the wire.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// CausesRequest asks for the actual causes (Theorem 3.2) of one
// answer or non-answer, without ranking them. The server builds and
// caches the per-answer engine, so a later explain or stream against
// the same request is warm.
type CausesRequest struct {
	// Query is an inline conjunctive query; QueryID addresses a
	// prepared one. Exactly one must be set.
	Query   string   `json:"query,omitempty"`
	QueryID string   `json:"query_id,omitempty"`
	Answer  []string `json:"answer,omitempty"`
	WhyNo   bool     `json:"why_no,omitempty"`
}

// CausesResponse lists the actual causes as tuple ids, sorted.
type CausesResponse struct {
	Database     string   `json:"database"`
	QueryID      string   `json:"query_id,omitempty"`
	Query        string   `json:"query"`
	Answer       []string `json:"answer,omitempty"`
	WhyNo        bool     `json:"why_no"`
	EngineCached bool     `json:"engine_cached"`
	Causes       []int    `json:"causes"`
}

// StreamExplainRequest asks for a streamed ranking: the response is
// NDJSON, one StreamEvent per line — an explanation event per cause as
// its responsibility computation completes, then a terminal done or
// error event.
type StreamExplainRequest struct {
	Query   string   `json:"query,omitempty"`
	QueryID string   `json:"query_id,omitempty"`
	Answer  []string `json:"answer,omitempty"`
	WhyNo   bool     `json:"why_no,omitempty"`
	// Mode selects the responsibility strategy: "auto" (default),
	// "exact", or "paper".
	Mode string `json:"mode,omitempty"`
	// Parallelism overrides the server's per-request worker count
	// (values <= 0 mean the server default; capped at the worker
	// budget).
	Parallelism int `json:"parallelism,omitempty"`
	// CompletionOrder emits explanations in completion order (lowest
	// time-to-first-explanation, scheduling-dependent order) instead of
	// the default deterministic ascending cause order.
	CompletionOrder bool `json:"completion_order,omitempty"`
}

// StreamEvent is one NDJSON line of a streamed ranking. Exactly one
// field is set; Done and Error are terminal.
type StreamEvent struct {
	Explanation *ExplanationDTO `json:"explanation,omitempty"`
	Done        *StreamDone     `json:"done,omitempty"`
	Error       *ErrorResponse  `json:"error,omitempty"`
}

// StreamDone is the terminal event of a successful stream.
type StreamDone struct {
	Causes        int   `json:"causes"`
	ElapsedMicros int64 `json:"elapsed_micros"`
}

// TupleSpec describes one tuple to insert: the relation name, its
// arguments as strings, and whether the tuple is endogenous (a
// candidate cause).
type TupleSpec struct {
	Rel  string   `json:"rel"`
	Args []string `json:"args"`
	Endo bool     `json:"endo,omitempty"`
}

// InsertTuplesRequest appends a batch of tuples to a session database.
// The batch is validated as a whole before anything is applied: a
// request with any malformed tuple (empty relation, no arguments,
// arity mismatch against the live relation or an earlier tuple of the
// batch) mutates nothing. A relation absent from the database is
// created on first insert.
type InsertTuplesRequest struct {
	Tuples []TupleSpec `json:"tuples"`
}

// MutateResponse reports the session state after a successful tuple
// insert or delete.
type MutateResponse struct {
	Database string `json:"database"`
	// Version is the database's mutation version after the request:
	// uploaded tuples plus every insert and delete applied since, so
	// clients can order mutation responses and tie rankings to the
	// state they were computed at.
	Version uint64 `json:"version"`
	// Tuples counts live tuples after the request.
	Tuples int `json:"tuples"`
	// TupleIDs are the server-assigned ids of the inserted tuples, in
	// request order (inserts only). IDs are never reused; a deleted id
	// stays addressable in explanations of historical rankings.
	TupleIDs []int `json:"tuple_ids,omitempty"`
	// EnginesInvalidated and CertsInvalidated count the cached
	// per-answer engines and certificate pairs this mutation dropped;
	// every cache entry not counted here survived and still answers
	// warm. EnginesPatched counts engines the delta layer revived in
	// place (their lineage was patched, not recomputed) instead of
	// dropping — patched engines answer byte-identically to a cold
	// rebuild and are not counted as invalidated.
	EnginesInvalidated int `json:"engines_invalidated"`
	CertsInvalidated   int `json:"certs_invalidated"`
	EnginesPatched     int `json:"engines_patched,omitempty"`
}

// WatchRequest subscribes to the live explanation of one answer or
// non-answer: POST /v1/databases/{db}/watch answers with an NDJSON
// stream of WatchEvent frames. Exactly one of Query/QueryID identifies
// the query, like every explain-family endpoint.
type WatchRequest struct {
	Query   string   `json:"query,omitempty"`
	QueryID string   `json:"query_id,omitempty"`
	Answer  []string `json:"answer,omitempty"`
	WhyNo   bool     `json:"why_no,omitempty"`
	// Mode selects the responsibility strategy the watched ranking is
	// computed under: "auto" (default), "exact", or "paper".
	Mode string `json:"mode,omitempty"`
	// Buffer bounds the frames queued for this subscriber while it is
	// not reading (default 16). A subscriber that falls further behind
	// misses frames and recovers with a full_resync frame.
	Buffer int `json:"buffer,omitempty"`
	// ResumeFrom resumes a broken watch: the version of the last frame
	// the subscriber applied. When the topic's diff buffer still covers
	// that version the stream replays the missed frames and continues
	// the chain gap-free (no snapshot frame); otherwise it starts with a
	// full_resync. Zero (or absent) subscribes fresh with a snapshot.
	ResumeFrom uint64 `json:"resume_from,omitempty"`
}

// WatchEvent is one NDJSON frame of a watch stream. Type is
// "snapshot" (first frame: Ranking is the full current ranking),
// "diff" (one mutation's effect: apply CausesRemoved, then
// RankChanged, then CausesAdded to the previous state and re-sort by
// descending rho then ascending tuple id), "full_resync" (the
// subscriber lagged or the topic recovered from an error; Ranking
// replaces all previous state), or "error" (the re-rank at Version
// failed; the stream continues and recovers via full_resync).
// Consumers must ignore frames whose Version is not greater than the
// version of the last frame they applied: a frame published
// concurrently with a resync may arrive after it, already covered.
type WatchEvent struct {
	Type    string `json:"type"`
	Version uint64 `json:"version"`
	// Ranking is the full ranking, on snapshot and full_resync frames.
	Ranking []ExplanationDTO `json:"ranking,omitempty"`
	// CausesAdded / CausesRemoved / RankChanged are the diff payload:
	// new causes, tuple ids no longer causes, and causes whose
	// explanation (rho, contingency, or method) changed.
	CausesAdded   []ExplanationDTO `json:"causes_added,omitempty"`
	CausesRemoved []int            `json:"causes_removed,omitempty"`
	RankChanged   []RankChangeDTO  `json:"rank_changed,omitempty"`
	// Error carries the failure of an "error" frame.
	Error *ErrorResponse `json:"error,omitempty"`
}

// RankChangeDTO reports one cause whose explanation changed under a
// mutation: the old and new responsibility, and the full new
// explanation to substitute.
type RankChangeDTO struct {
	TupleID int            `json:"tuple_id"`
	OldRho  float64        `json:"old_rho"`
	NewRho  float64        `json:"new_rho"`
	New     ExplanationDTO `json:"new"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}
