// JSON request/response types of the querycaused HTTP API. The module
// root re-exports them (see client.go at the repository root), so a Go
// client and the server share one wire vocabulary.
package server

import "github.com/querycause/querycause/internal/cache"

// CreateDatabaseRequest uploads a database in the parser's textual
// format ("+R(a,b)" endogenous, "-S(c)" exogenous, '#' comments). The
// same payload may instead be POSTed as a raw text body.
type CreateDatabaseRequest struct {
	Database string `json:"database"`
}

// DatabaseInfo describes one registered session.
type DatabaseInfo struct {
	ID          string `json:"id"`
	Tuples      int    `json:"tuples"`
	Endogenous  int    `json:"endogenous"`
	Relations   int    `json:"relations"`
	Prepared    int    `json:"prepared_queries"`
	IdleSeconds int64  `json:"idle_seconds"`
}

// PrepareQueryRequest registers a conjunctive query against a session.
type PrepareQueryRequest struct {
	Query string `json:"query"`
}

// PrepareQueryResponse describes a prepared query: the canonical form,
// its dichotomy classification under both domination rules, and the
// Theorem 3.4 Datalog¬ cause program, all computed once and cached.
type PrepareQueryResponse struct {
	ID         string `json:"id"`
	Database   string `json:"database"`
	Query      string `json:"query"`
	Class      string `json:"class"`       // sound rule (what ModeAuto dispatches on)
	ClassPaper string `json:"class_paper"` // the paper's Fig. 3 rule
	// Program is the generated stratified Datalog¬ cause program.
	Program string `json:"program,omitempty"`
	// CertificateCached reports whether classification was served from
	// the session's certificate cache (an equal-shape query was already
	// prepared or explained).
	CertificateCached bool `json:"certificate_cached"`
}

// ExplainRequest asks why an answer is (whyso) or is not (whyno)
// returned. Exactly one of the URL-addressed prepared query or the
// inline Query must identify the query.
type ExplainRequest struct {
	// Query is an inline conjunctive query, for one-shot explains
	// without preparation.
	Query string `json:"query,omitempty"`
	// Answer is the (non-)answer tuple bound into the query head; empty
	// for Boolean queries.
	Answer []string `json:"answer,omitempty"`
	// Mode selects the responsibility strategy: "auto" (default),
	// "exact", or "paper".
	Mode string `json:"mode,omitempty"`
}

// ExplanationDTO is one ranked cause.
type ExplanationDTO struct {
	TupleID int     `json:"tuple_id"`
	Tuple   string  `json:"tuple"`
	Rho     float64 `json:"rho"`
	// ContingencySize is min|Γ|; -1 when the tuple is not a cause.
	ContingencySize int      `json:"contingency_size"`
	Contingency     []string `json:"contingency,omitempty"`
	Method          string   `json:"method"`
}

// ExplainResponse is the ranking for one answer or non-answer.
type ExplainResponse struct {
	Database string   `json:"database"`
	QueryID  string   `json:"query_id,omitempty"`
	Query    string   `json:"query"`
	Answer   []string `json:"answer,omitempty"`
	WhyNo    bool     `json:"why_no"`
	// EngineCached reports whether the per-answer engine (lineage and
	// causes already computed) was served from the session cache: the
	// request skipped straight to responsibility ranking.
	EngineCached bool `json:"engine_cached"`
	// CertificateCached reports whether the dichotomy certificate came
	// from the session cache (classification skipped). Implied by
	// EngineCached.
	CertificateCached bool             `json:"certificate_cached"`
	Causes            int              `json:"causes"`
	Explanations      []ExplanationDTO `json:"explanations"`
	ElapsedMicros     int64            `json:"elapsed_micros"`
}

// BatchExplainRequest explains many answers/non-answers in one call; it
// maps onto the library's ExplainAll fan-out.
type BatchExplainRequest struct {
	Requests []BatchItem `json:"requests"`
	// Mode applies to every item: "auto" (default), "exact", "paper".
	Mode string `json:"mode,omitempty"`
	// Parallelism overrides the server's per-request worker budget for
	// this batch (values <= 0 mean the server default).
	Parallelism int `json:"parallelism,omitempty"`
}

// BatchItem is one request of a batch: either a prepared QueryID or an
// inline Query.
type BatchItem struct {
	QueryID string   `json:"query_id,omitempty"`
	Query   string   `json:"query,omitempty"`
	Answer  []string `json:"answer,omitempty"`
	WhyNo   bool     `json:"why_no,omitempty"`
}

// BatchExplainResponse returns per-item results in request order;
// per-item failures (Error != "") do not abort the rest of the batch.
type BatchExplainResponse struct {
	Database string            `json:"database"`
	Results  []BatchItemResult `json:"results"`
}

// BatchItemResult is the outcome of one batch item.
type BatchItemResult struct {
	Error        string           `json:"error,omitempty"`
	EngineCached bool             `json:"engine_cached"`
	Causes       int              `json:"causes"`
	Explanations []ExplanationDTO `json:"explanations,omitempty"`
}

// StatsResponse is the /v1/stats payload: session registry occupancy,
// cache effectiveness, and request gauges. The integration tests assert
// warm-certificate explains through CertCache.Hits, and the CI smoke
// test asserts Inflight == 0 after the load generator drains.
type StatsResponse struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Sessions        int     `json:"sessions"`
	MaxSessions     int     `json:"max_sessions"`
	SessionsEvicted uint64  `json:"sessions_evicted"`
	PreparedQueries int     `json:"prepared_queries"`
	// Inflight counts explain/batch requests currently inside the
	// handler (queued for admission or computing); PeakInflight is the
	// high-water mark.
	Inflight     int64 `json:"inflight"`
	PeakInflight int64 `json:"peak_inflight"`
	// WorkerBudget is the admission limit on concurrently computing
	// explain requests.
	WorkerBudget     int         `json:"worker_budget"`
	RequestsTotal    uint64      `json:"requests_total"`
	ExplainsTotal    uint64      `json:"explains_total"`
	AdmissionRejects uint64      `json:"admission_rejects"`
	CertCache        cache.Stats `json:"cert_cache"`
	EngineCache      cache.Stats `json:"engine_cache"`
}

// ErrorResponse is the uniform error payload.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}
