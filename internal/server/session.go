// Session registry and per-session caches. A session pins one uploaded
// database; the artifacts the paper proves are query-level — dichotomy
// certificates (Corollary 4.14), rewritten cause programs (Theorem
// 3.4), and per-answer engines holding the computed DNF lineage
// (Theorem 3.2) — are cached inside the session so repeated why-so /
// why-no calls skip straight to responsibility ranking.
//
// The registry is an RWMutex'd map with two eviction policies: adding
// beyond MaxSessions evicts the least-recently-used session, and a
// background reaper drops sessions idle longer than SessionTTL.
package server

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/querycause/querycause/internal/cache"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/rewrite"
	"github.com/querycause/querycause/internal/shape"
)

// certEntry pairs the two dichotomy certificates of one query shape.
type certEntry struct {
	sound *rewrite.Certificate
	paper *rewrite.Certificate
}

// preparedQuery is a parsed, classified, rewritten query registered
// against one session. It deliberately does not pin a certificate
// pair: certificates live in the session cache and are re-resolved per
// use, so a mutation that flips a relation's endogeneity never leaves
// a prepared query answering with a stale classification.
type preparedQuery struct {
	id      string
	key     string // canonical query string, the prepared-LRU key
	q       *rel.Query
	program string
	// dbVersion is the session database version the program was
	// generated against; a prepare hit at a newer version regenerates
	// the program (its endogeneity hints may be stale). The struct is
	// immutable after publication — regeneration swaps in a fresh one
	// under the same id — so concurrent snapshots read it lock-free.
	dbVersion uint64
}

// session is one registered database plus its caches. The database is
// mutable: explain-family handlers hold dbMu for reading around
// everything that evaluates over db (engine construction, ranking, DTO
// rendering), and the mutation handlers hold it for writing while they
// insert/delete tuples and invalidate the touched explanation state —
// so any number of explains evaluate concurrently and mutations
// serialize against them.
type session struct {
	id       string
	db       *rel.Database
	endo     int // endogenous tuple count; guarded by dbMu
	created  time.Time
	lastUsed atomic.Int64 // unix nanos
	// inflight counts requests currently inside a handler for this
	// session (explains and mutations): the per-session fairness budget
	// sheds above it, and the eviction paths refuse to drop a session
	// with in-flight work.
	inflight atomic.Int64
	// moved marks a session frozen for handoff to another cluster node:
	// mutation handlers answer 503 + Retry-After instead of applying
	// (the snapshot in flight must stay the final word), reads may
	// still serve. Set under dbMu's write lock so no mutation straddles
	// the freeze.
	moved atomic.Bool

	// dbMu is the database mutation lock (see the type comment).
	dbMu sync.RWMutex

	// idem / idemOrder are the mutation dedup cache (Idempotency-Key →
	// stored response body, FIFO-bounded by idemCacheSize). Guarded by
	// dbMu: entries are written under the mutation's write lock, so a
	// snapshot reading them under the read lock always sees a dedup
	// record if and only if it sees the mutation's effect.
	idem      map[string][]byte
	idemOrder []string

	// watch is the live-explanation subscription registry; mutation
	// handlers fan frames out through it before releasing dbMu. noDelta
	// disables the delta-maintenance layer for this session (set from
	// Config.DisableDelta), forcing every invalidation cold.
	watch   *WatchSet
	noDelta bool

	// mu guards byID and nextQ; prepMu serializes prepare so concurrent
	// identical prepares dedup to one id. Lock order: prepMu, then the
	// prepared LRU's internal lock, then mu (the LRU's onEvict takes mu;
	// never call into prepared while holding mu).
	mu     sync.RWMutex
	byID   map[string]*preparedQuery
	nextQ  int
	prepMu sync.Mutex

	// prepared dedups and bounds the registered queries (key: canonical
	// query string); certs caches certificate pairs by exact bound-query
	// shape (see shapeKeyOf); engines caches per-answer engines, whose
	// construction dominates a cold explain (lineage computation).
	prepared *cache.LRU[string, *preparedQuery]
	certs    *cache.LRU[string, *certEntry]
	engines  *cache.LRU[string, *core.Engine]
}

func (s *session) touch(now time.Time) { s.lastUsed.Store(now.UnixNano()) }

func (s *session) idle(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, s.lastUsed.Load()))
}

func (s *session) preparedCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

func (s *session) lookupQuery(id string) (*preparedQuery, bool) {
	s.mu.RLock()
	pq, ok := s.byID[id]
	s.mu.RUnlock()
	if ok {
		// Refresh recency so explain traffic keeps its query registered.
		s.prepared.Get(pq.key)
	}
	return pq, ok
}

// idemCacheSize bounds the per-session mutation dedup cache: the
// responses of the last 256 keyed mutations replay verbatim on retry.
const idemCacheSize = 256

// rememberIdem records a keyed mutation's response for replay on
// retry, FIFO-evicting beyond idemCacheSize. Caller holds dbMu's write
// lock (the same lock the mutation applied under, so dedup records and
// their effects are atomic to snapshots).
func (s *session) rememberIdem(key string, resp []byte) {
	if _, dup := s.idem[key]; dup {
		return
	}
	s.idem[key] = resp
	s.idemOrder = append(s.idemOrder, key)
	for len(s.idemOrder) > idemCacheSize {
		delete(s.idem, s.idemOrder[0])
		s.idemOrder = s.idemOrder[1:]
	}
}

// endoFn is core.EndoFn on the session database: the exact rule the
// engine classifies under, so cached certificates are the ones the
// engine would compute itself.
func (s *session) endoFn() func(string) bool {
	return core.EndoFn(s.db)
}

// shapeKeyOf renders the exact structure of q with its head variables
// treated as bound constants: relation names and atom order are
// preserved, non-head variables are numbered by first occurrence, and
// constants (including head variables, which answer binding turns into
// constants) collapse to '#'. Queries with equal keys have identical
// bound shapes, so their dichotomy certificates are interchangeable —
// one cached certificate serves every answer of a query.
func shapeKeyOf(q *rel.Query) string {
	headVars := make(map[string]bool, len(q.Head))
	for _, t := range q.Head {
		if t.IsVar {
			headVars[t.Var] = true
		}
	}
	ids := make(map[string]int)
	var b strings.Builder
	for _, a := range q.Atoms {
		b.WriteString(a.Pred)
		b.WriteByte('(')
		for _, t := range a.Terms {
			if t.IsVar && !headVars[t.Var] {
				id, ok := ids[t.Var]
				if !ok {
					id = len(ids)
					ids[t.Var] = id
				}
				fmt.Fprintf(&b, "v%d,", id)
			} else {
				b.WriteString("#,")
			}
		}
		b.WriteString(")|")
	}
	return b.String()
}

// boundShape builds the classification shape of q as seen after answer
// binding: head variables become constants (their values are
// immaterial to classification), everything else is untouched. The
// substitution uses one placeholder per distinct head variable, so
// repeated head variables (q(x,x) :- …) and head constants — which
// Query.Bind would reject for distinct placeholder values — are
// handled exactly like a real consistent answer binding.
func (s *session) boundShape(q *rel.Query) *shape.Shape {
	bq := q
	if len(q.Head) > 0 {
		subst := make(map[string]rel.Value)
		for _, h := range q.Head {
			if h.IsVar {
				if _, ok := subst[h.Var]; !ok {
					subst[h.Var] = rel.Value(fmt.Sprintf("\x00ph%d", len(subst)))
				}
			}
		}
		out := &rel.Query{Name: q.Name}
		for _, a := range q.Atoms {
			na := rel.Atom{Pred: a.Pred, Terms: make([]rel.Term, len(a.Terms))}
			for i, t := range a.Terms {
				if t.IsVar {
					if v, ok := subst[t.Var]; ok {
						na.Terms[i] = rel.C(v)
						continue
					}
				}
				na.Terms[i] = t
			}
			out.Atoms = append(out.Atoms, na)
		}
		bq = out
	}
	return shape.FromQuery(bq, s.endoFn())
}

// certsFor returns the certificate pair for q's bound shape, computing
// and caching it on miss. The second return reports a cache hit (the
// classification search was skipped).
func (s *session) certsFor(q *rel.Query) (*certEntry, bool, error) {
	key := shapeKeyOf(q)
	if ce, ok := s.certs.Get(key); ok {
		return ce, true, nil
	}
	sh := s.boundShape(q)
	sound, err := rewrite.ClassifySound(sh)
	if err != nil {
		return nil, false, err
	}
	paper, err := rewrite.Classify(sh)
	if err != nil {
		return nil, false, err
	}
	ce := &certEntry{sound: sound, paper: paper}
	s.certs.Put(key, ce)
	return ce, false, nil
}

// engineKey identifies one (query, answer, why) engine in the session
// cache. Values are length-prefixed so no answer — including ones
// containing separator bytes — can collide with another (JSON requests
// may carry arbitrary strings).
func engineKey(qkey string, answer []rel.Value, whyNo bool) string {
	var b strings.Builder
	if whyNo {
		b.WriteString("no:")
	} else {
		b.WriteString("so:")
	}
	fmt.Fprintf(&b, "%d:%s", len(qkey), qkey)
	for _, v := range answer {
		fmt.Fprintf(&b, "%d:%s", len(v), v)
	}
	return b.String()
}

// engineFor resolves the engine for one explain: per-answer engine
// cache first (hit: lineage and causes already computed), then
// construction primed with the cached certificate pair. It reports
// whether the engine and the certificate were cache hits.
func (s *session) engineFor(q *rel.Query, qID string, answer []rel.Value, whyNo bool) (eng *core.Engine, engineHit, certHit bool, err error) {
	qkey := qID
	if qkey == "" {
		qkey = shapeKeyOf(q) + "\x1f" + q.String()
	}
	ekey := engineKey(qkey, answer, whyNo)
	if eng, ok := s.engines.Get(ekey); ok {
		return eng, true, true, nil
	}
	certs, certHit, err := s.certsFor(q)
	if err != nil {
		return nil, false, false, err
	}
	if whyNo {
		eng, err = core.NewWhyNo(s.db, q, answer...)
	} else {
		eng, err = core.NewWhySo(s.db, q, answer...)
	}
	if err != nil {
		return nil, false, certHit, err
	}
	eng.Prime(certs.sound, certs.paper)
	s.engines.Put(ekey, eng)
	return eng, false, certHit, nil
}

// registry is the RWMutex'd session store.
type registry struct {
	mu       sync.RWMutex
	sessions map[string]*session
	nextID   int
	evicted  atomic.Uint64

	maxSessions int
	preparedCap int
	certCap     int
	engineCap   int
	clock       func() time.Time

	// disableDelta turns off delta maintenance for every session minted
	// or restored by this registry (Config.DisableDelta).
	disableDelta bool

	// owns, when non-nil (cluster mode), reports whether this node owns
	// a session id on the consistent-hash ring; add mints ids the node
	// owns so creators serve their own sessions without redirects.
	owns func(id string) bool

	// retired accumulates cache counters of evicted sessions so /v1/stats
	// totals survive eviction.
	retiredMu     sync.Mutex
	retiredCerts  cache.Stats
	retiredEngine cache.Stats
}

func newRegistry(maxSessions, preparedCap, certCap, engineCap int, clock func() time.Time) *registry {
	return &registry{
		sessions:    make(map[string]*session),
		maxSessions: maxSessions,
		preparedCap: preparedCap,
		certCap:     certCap,
		engineCap:   engineCap,
		clock:       clock,
	}
}

// add registers a database, evicting the least-recently-used session
// when the registry is full.
func (r *registry) add(db *rel.Database) *session {
	now := r.clock()
	endo := 0
	for _, t := range db.Tuples() {
		if t.Endo {
			endo++
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.sessions) >= r.maxSessions && r.evictLRULocked() {
	}
	r.nextID++
	id := fmt.Sprintf("d%d", r.nextID)
	if r.owns != nil && !r.owns(id) {
		// Pick-until-self: salt the id until it hashes onto this node.
		// Expected tries ≈ cluster size; the bound only guards against a
		// misconfigured ring that can never map here.
		for salt := 1; salt <= 1<<20; salt++ {
			if cand := fmt.Sprintf("d%d-%d", r.nextID, salt); r.owns(cand) {
				id = cand
				break
			}
		}
	}
	s := &session{
		id:      id,
		db:      db,
		endo:    endo,
		created: now,
		watch:   NewWatchSet(),
		noDelta: r.disableDelta,
		byID:    make(map[string]*preparedQuery),
		idem:    make(map[string][]byte),
		certs:   cache.New[string, *certEntry](r.certCap, nil),
		engines: cache.New[string, *core.Engine](r.engineCap, nil),
	}
	s.prepared = cache.New[string, *preparedQuery](r.preparedCap, func(_ string, pq *preparedQuery) {
		s.mu.Lock()
		delete(s.byID, pq.id)
		s.mu.Unlock()
	})
	s.touch(now)
	r.sessions[s.id] = s
	return s
}

// get returns the named session and touches its idle clock.
func (r *registry) get(id string) (*session, bool) {
	r.mu.RLock()
	s, ok := r.sessions[id]
	r.mu.RUnlock()
	if ok {
		s.touch(r.clock())
	}
	return s, ok
}

// remove drops a session explicitly.
func (r *registry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		return false
	}
	r.retireLocked(s)
	delete(r.sessions, id)
	return true
}

// evictLRULocked drops the session with the oldest lastUsed time among
// the ones with no in-flight work, reporting whether a victim was
// found. Sessions with requests inside a handler are never evicted: a
// long exact-mode explain must not have its session (and snapshot)
// ripped out from under it. When every session is busy the registry
// temporarily exceeds MaxSessions — bounded by the number of busy
// sessions — instead of evicting live work.
func (r *registry) evictLRULocked() bool {
	var victim *session
	for _, s := range r.sessions {
		if s.inflight.Load() > 0 {
			continue
		}
		if victim == nil || s.lastUsed.Load() < victim.lastUsed.Load() {
			victim = s
		}
	}
	if victim == nil {
		return false
	}
	r.retireLocked(victim)
	delete(r.sessions, victim.id)
	r.evicted.Add(1)
	return true
}

// evictIdle drops every session idle longer than ttl; the background
// reaper calls it periodically. It returns the evicted session ids.
// Sessions with in-flight work are deferred to a later sweep even if
// their idle clock expired (the clock only ticks on request entry, so
// a request that outlives the TTL would otherwise race its own
// session's teardown).
func (r *registry) evictIdle(ttl time.Duration) []string {
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for id, s := range r.sessions {
		if s.inflight.Load() > 0 {
			continue
		}
		if s.idle(now) > ttl {
			r.retireLocked(s)
			delete(r.sessions, id)
			r.evicted.Add(1)
			out = append(out, id)
		}
	}
	return out
}

// retireLocked folds a departing session's cache counters into the
// retired totals.
func (r *registry) retireLocked(s *session) {
	cs, es := s.certs.Stats(), s.engines.Stats()
	r.retiredMu.Lock()
	r.retiredCerts.Hits += cs.Hits
	r.retiredCerts.Misses += cs.Misses
	r.retiredCerts.Evictions += cs.Evictions
	r.retiredEngine.Hits += es.Hits
	r.retiredEngine.Misses += es.Misses
	r.retiredEngine.Evictions += es.Evictions
	r.retiredMu.Unlock()
}

// len returns the live session count.
func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}

// list snapshots the live sessions sorted by id.
func (r *registry) list() []*session {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	return out
}

// cacheStats aggregates cert and engine cache counters across live and
// retired sessions.
func (r *registry) cacheStats() (certs, engines cache.Stats) {
	r.retiredMu.Lock()
	certs, engines = r.retiredCerts, r.retiredEngine
	r.retiredMu.Unlock()
	for _, s := range r.list() {
		cs, es := s.certs.Stats(), s.engines.Stats()
		certs.Hits += cs.Hits
		certs.Misses += cs.Misses
		certs.Evictions += cs.Evictions
		certs.Len += cs.Len
		certs.Capacity += cs.Capacity
		engines.Hits += es.Hits
		engines.Misses += es.Misses
		engines.Evictions += es.Evictions
		engines.Len += es.Len
		engines.Capacity += es.Capacity
	}
	return certs, engines
}

// prepare classifies and registers a query, generating the cause
// program only on a miss. Preparing a textually identical query
// returns the existing registration; the registry is a bounded LRU, so
// a client looping distinct prepares recycles old ids instead of
// growing server memory. The certificate pair is re-resolved through
// the session cache on every call (cheap when cached), so a prepared
// hit after a mutation that invalidated the shape's certificates
// reports the fresh classification, exactly like a cold server would.
func (s *session) prepare(q *rel.Query, genProgram func() string) (*preparedQuery, *certEntry, bool, error) {
	key := q.String()
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	certs, hit, err := s.certsFor(q)
	if err != nil {
		return nil, nil, false, err
	}
	if pq, ok := s.prepared.Get(key); ok {
		if v := s.db.Version(); v != pq.dbVersion {
			// The database mutated since the program was generated: its
			// endogeneity hints (causegen.HintsFromDB) may be stale.
			// Re-register under the same id with a fresh program, so a
			// re-prepare answers exactly like a cold server at this
			// version. Put displaces the old entry (its onEvict removes
			// the shared id from byID), so byID is repointed after.
			pq = &preparedQuery{id: pq.id, key: key, q: pq.q, program: genProgram(), dbVersion: v}
			s.prepared.Put(key, pq)
			s.mu.Lock()
			s.byID[pq.id] = pq
			s.mu.Unlock()
		}
		return pq, certs, hit, nil
	}
	s.mu.Lock()
	s.nextQ++
	pq := &preparedQuery{
		id:        fmt.Sprintf("q%d", s.nextQ),
		key:       key,
		q:         q,
		program:   genProgram(),
		dbVersion: s.db.Version(),
	}
	s.byID[pq.id] = pq
	s.mu.Unlock()
	s.prepared.Put(key, pq)
	return pq, certs, hit, nil
}
