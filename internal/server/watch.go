// Live explanations: POST /v1/databases/{db}/watch subscribes to one
// answer (or why-no non-answer) and streams NDJSON DiffEvent frames as
// the session database mutates. The first frame is a full snapshot of
// the current ranking; every subsequent mutation request produces
// exactly one frame per subscription — a diff (causes added/removed,
// ranks changed) when the watched query mentions a mutated relation,
// an empty version-bump diff otherwise — so a client replaying frames
// reconstructs, at every version, the exact ranking a cold explain
// would return.
//
// The fanout side lives in WatchSet, shared by the HTTP server and the
// in-process transport (the module root) so both expose identical
// semantics: ranks are recomputed per affected topic inside the
// mutation's write-lock window (the delta-maintenance layer in
// internal/delta keeps that cheap), diffed against the topic's last
// published ranking, and published through a watch.Hub. Slow consumers
// never block a mutation: a subscriber whose buffer is full is marked
// lagged and its stream recovers with a full_resync frame instead of a
// broken diff chain.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/qerr"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/watch"
)

// WatchSet is the per-session subscription registry: one topic per
// watched (query, answer, why, mode) key, fanned out through a hub.
// Every mutation calls Fanout under the session's database write lock,
// so topic state (last ranking, version) advances atomically with the
// database and two subscribers of one topic always see the same frame
// sequence.
type WatchSet struct {
	mu     sync.Mutex
	topics map[string]*watchTopic
	hub    *watch.Hub[WatchEvent]
}

// watchReplayBuffer bounds each topic's ring of recent frames — the
// diff buffer a resuming subscriber (resume_from) replays from. 64
// frames cover 64 mutation requests of disconnection; older resumes
// recover with a full_resync.
const watchReplayBuffer = 64

// maxRetainedTopics bounds the subscriber-less topics a session keeps
// alive so a disconnected watcher can resume its diff chain instead of
// paying a full_resync. Beyond the cap, a topic whose last subscriber
// leaves is dropped immediately.
const maxRetainedTopics = 32

// watchTopic is the fanout state of one watched explanation.
type watchTopic struct {
	// mentions reports whether the watched query reads relName — the
	// conservative affected-check deciding whether a mutation re-ranks.
	mentions func(relName string) bool
	// rank recomputes the full current ranking; it runs under the
	// mutating request's write lock (or the subscriber's read lock, for
	// the initial snapshot), so it must not take the database lock.
	rank func() ([]ExplanationDTO, error)
	refs int
	// version is the database version the topic last published at; last
	// is the ranking at that version (always current, so resyncs and
	// second subscribers never recompute). lastErr, when non-nil, is the
	// error state the topic is in; the next successful re-rank recovers
	// with a full_resync frame.
	version uint64
	last    []ExplanationDTO
	lastErr *ErrorResponse
	// recent is the bounded ring of frames published since floor, oldest
	// first; a subscriber resuming from a version >= floor replays the
	// retained frames after it and rejoins the live chain gap-free.
	recent []WatchEvent
	floor  uint64
}

// remember appends a published frame to the replay ring, advancing the
// resume floor as old frames age out.
func (t *watchTopic) remember(ev WatchEvent) {
	t.recent = append(t.recent, ev)
	if len(t.recent) > watchReplayBuffer {
		t.floor = t.recent[0].Version
		t.recent = t.recent[1:]
	}
}

// initialFrames selects a new subscriber's first frames. A fresh
// subscription (resumeFrom 0) gets the current-state snapshot. A
// resume whose version the diff buffer still covers gets the retained
// frames after it — possibly none, when it is already current — and
// rejoins the live chain with no client-visible break in the version
// sequence. Anything else (resumed past the buffer, onto a fresh
// topic at a different version, or from the future) gets a
// full_resync.
func (t *watchTopic) initialFrames(resumeFrom uint64) []WatchEvent {
	switch {
	case resumeFrom == 0:
		return []WatchEvent{t.snapshot("snapshot")}
	case t.lastErr == nil && resumeFrom >= t.floor && resumeFrom <= t.version:
		var out []WatchEvent
		for _, ev := range t.recent {
			if ev.Version > resumeFrom {
				out = append(out, ev)
			}
		}
		return out
	default:
		return []WatchEvent{t.snapshot("full_resync")}
	}
}

// NewWatchSet builds an empty subscription registry.
func NewWatchSet() *WatchSet {
	return &WatchSet{topics: make(map[string]*watchTopic), hub: watch.NewHub[WatchEvent]()}
}

// Active reports the live subscription count (the watch-budget gauge).
func (ws *WatchSet) Active() int64 { return ws.hub.Active() }

// Subscribe registers a subscriber on key, creating the topic on first
// use (which computes the initial ranking via rank — the only eager
// work; a second subscriber reuses the topic's current state). It
// returns the subscription and the initial frames to emit first: a
// snapshot for a fresh subscription, the retained diff frames after
// resumeFrom for a resume the diff buffer still covers (possibly
// none), or a single full_resync when the resume point is gone. An
// error means the fresh topic's initial ranking failed; nothing was
// registered.
func (ws *WatchSet) Subscribe(key string, buffer int, version uint64, resumeFrom uint64, mentions func(string) bool, rank func() ([]ExplanationDTO, error)) (*watch.Sub[WatchEvent], []WatchEvent, error) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	t, ok := ws.topics[key]
	if !ok {
		ranking, err := rank()
		if err != nil {
			return nil, nil, err
		}
		t = &watchTopic{mentions: mentions, rank: rank, version: version, floor: version, last: ranking}
		ws.topics[key] = t
	}
	t.refs++
	sub := ws.hub.Subscribe(key, buffer)
	return sub, t.initialFrames(resumeFrom), nil
}

// Unsubscribe closes sub. The topic survives its last subscriber
// (bounded by maxRetainedTopics) so that subscriber can come back with
// resume_from and replay the frames it missed instead of paying a
// full re-rank.
func (ws *WatchSet) Unsubscribe(key string, sub *watch.Sub[WatchEvent]) {
	sub.Close()
	ws.mu.Lock()
	defer ws.mu.Unlock()
	t, ok := ws.topics[key]
	if !ok {
		return
	}
	if t.refs--; t.refs > 0 {
		return
	}
	retained := 0
	for _, other := range ws.topics {
		if other.refs <= 0 {
			retained++
		}
	}
	if retained > maxRetainedTopics {
		delete(ws.topics, key)
	}
}

// CloseAll ends every subscription and drops all topics. Session
// handoff calls it on the old owner so watch handlers end their
// streams and the clients reconnect — to the new owner — with
// resume_from.
func (ws *WatchSet) CloseAll() {
	ws.mu.Lock()
	ws.topics = make(map[string]*watchTopic)
	ws.mu.Unlock()
	ws.hub.CloseAll()
}

// snapshot renders the topic's current state as a full-state frame:
// typ is "snapshot" for a fresh subscriber, "full_resync" for a lagged
// one. A topic in error state re-reports the error instead.
func (t *watchTopic) snapshot(typ string) WatchEvent {
	if t.lastErr != nil {
		return WatchEvent{Type: "error", Version: t.version, Error: t.lastErr}
	}
	return WatchEvent{Type: typ, Version: t.version, Ranking: t.last}
}

// Resync returns a full-state frame for key, for consumers that lagged
// (dropped frames) and must abandon their diff chain. ok=false means
// the topic is gone.
func (ws *WatchSet) Resync(key string) (WatchEvent, bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	t, ok := ws.topics[key]
	if !ok {
		return WatchEvent{}, false
	}
	return t.snapshot("full_resync"), true
}

// Fanout publishes one frame per topic for a mutation that left the
// database at version having touched the given relations. Topics whose
// query mentions a touched relation are re-ranked and diffed; the rest
// get an empty version-bump diff, so every subscriber sees exactly one
// frame per mutation request and can prove liveness. Caller holds the
// session's database write lock. It returns the number of frames
// buffered to subscribers.
func (ws *WatchSet) Fanout(version uint64, rels map[string]bool) int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	delivered := 0
	for key, t := range ws.topics {
		affected := false
		for r := range rels {
			if t.mentions(r) {
				affected = true
				break
			}
		}
		if affected && t.refs <= 0 {
			// A retained (subscriber-less) topic would need a re-rank here to
			// stay resumable — explain-sized work inside the mutation's write
			// lock, with nobody listening. Drop it instead; a later resume
			// recovers with a full_resync.
			delete(ws.topics, key)
			continue
		}
		var ev WatchEvent
		switch {
		case !affected:
			t.version = version
			ev = WatchEvent{Type: "diff", Version: version}
		default:
			ranking, err := t.rank()
			switch {
			case err != nil:
				t.version = version
				t.lastErr = &ErrorResponse{Error: err.Error(), Code: qerr.CodeOf(err)}
				ev = WatchEvent{Type: "error", Version: version, Error: t.lastErr}
			case t.lastErr != nil:
				// Recovery from error state: the last good ranking is too old
				// to diff against, so re-seed subscribers wholesale.
				t.lastErr = nil
				t.last, t.version = ranking, version
				ev = WatchEvent{Type: "full_resync", Version: version, Ranking: ranking}
			default:
				added, removed, changed := DiffRankings(t.last, ranking)
				t.last, t.version = ranking, version
				ev = WatchEvent{Type: "diff", Version: version, CausesAdded: added, CausesRemoved: removed, RankChanged: changed}
			}
		}
		t.remember(ev)
		delivered += ws.hub.Publish(key, ev)
	}
	return delivered
}

// DiffRankings computes the frame payload turning the old ranking into
// the new one: causes present only in new, tuple ids present only in
// old, and causes present in both whose explanation changed (rho,
// contingency, or method). Replaying removed → changed → added over
// old and re-sorting by descending rho then ascending tuple id — the
// ranking order every endpoint uses — reconstructs new exactly; the
// difftest harness holds that replay byte-equal to a cold ranking.
func DiffRankings(old, new []ExplanationDTO) (added []ExplanationDTO, removed []int, changed []RankChangeDTO) {
	prev := make(map[int]ExplanationDTO, len(old))
	for _, d := range old {
		prev[d.TupleID] = d
	}
	next := make(map[int]bool, len(new))
	for _, d := range new {
		next[d.TupleID] = true
		o, ok := prev[d.TupleID]
		switch {
		case !ok:
			added = append(added, d)
		case !equalExplanationDTO(o, d):
			changed = append(changed, RankChangeDTO{TupleID: d.TupleID, OldRho: o.Rho, NewRho: d.Rho, New: d})
		}
	}
	for _, d := range old {
		if !next[d.TupleID] {
			removed = append(removed, d.TupleID)
		}
	}
	return added, removed, changed
}

// ApplyWatchEvent folds one frame into a replayed ranking: snapshot
// and full_resync frames replace the state wholesale, diff frames
// apply removals, changes, and additions and re-sort by descending
// rho then ascending tuple id (the order every ranking endpoint
// emits), and error frames leave the state untouched (the caller
// inspects ev.Error). Replaying a watch stream through this function
// reconstructs, at every version, the exact ranking a cold explain
// would return — the invariant the difftest harness checks.
func ApplyWatchEvent(state []ExplanationDTO, ev WatchEvent) []ExplanationDTO {
	switch ev.Type {
	case "snapshot", "full_resync":
		return append([]ExplanationDTO(nil), ev.Ranking...)
	case "diff":
		drop := make(map[int]bool, len(ev.CausesRemoved))
		for _, id := range ev.CausesRemoved {
			drop[id] = true
		}
		change := make(map[int]ExplanationDTO, len(ev.RankChanged))
		for _, c := range ev.RankChanged {
			change[c.TupleID] = c.New
		}
		next := make([]ExplanationDTO, 0, len(state)+len(ev.CausesAdded))
		for _, d := range state {
			if drop[d.TupleID] {
				continue
			}
			if nd, ok := change[d.TupleID]; ok {
				d = nd
			}
			next = append(next, d)
		}
		next = append(next, ev.CausesAdded...)
		sort.Slice(next, func(i, j int) bool {
			if next[i].Rho != next[j].Rho {
				return next[i].Rho > next[j].Rho
			}
			return next[i].TupleID < next[j].TupleID
		})
		return next
	}
	return state
}

func equalExplanationDTO(a, b ExplanationDTO) bool {
	if a.TupleID != b.TupleID || a.Tuple != b.Tuple || a.Rho != b.Rho ||
		a.ContingencySize != b.ContingencySize || a.Method != b.Method ||
		len(a.Contingency) != len(b.Contingency) || len(a.ContingencyIDs) != len(b.ContingencyIDs) {
		return false
	}
	for i := range a.Contingency {
		if a.Contingency[i] != b.Contingency[i] {
			return false
		}
	}
	for i := range a.ContingencyIDs {
		if a.ContingencyIDs[i] != b.ContingencyIDs[i] {
			return false
		}
	}
	return true
}

// queryMentions reports whether q has an atom over relName — the
// conservative affected-check for watch fanout. (Conservative is safe:
// re-ranking an unaffected topic reproduces the identical ranking and
// diffs to an empty frame.)
func queryMentions(q *rel.Query, relName string) bool {
	for _, a := range q.Atoms {
		if a.Pred == relName {
			return true
		}
	}
	return false
}

func errWatchBudget(sess *session, budget int) error {
	return qerr.Tag(qerr.ErrBudgetExceeded, fmt.Errorf("session %s over its watch budget (%d subscriptions)", sess.id, budget))
}

// handleWatch serves POST /v1/databases/{db}/watch: an NDJSON stream
// of WatchEvent frames, starting with a snapshot of the current
// ranking and then one frame per mutation request until the client
// disconnects. The subscription holds the session's in-flight count
// (never evict a session under a live watch) but not the explain
// fairness budget — watches are long-lived and budgeted separately by
// Config.WatchBudget.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	sess, ok := s.sessionOf(w, r)
	if !ok {
		return
	}
	sess.inflight.Add(1)
	defer sess.inflight.Add(-1)
	var req WatchRequest
	if err := decodeJSON(r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		writeErr(w, err)
		return
	}
	if b := s.cfg.WatchBudget; b > 0 && sess.watch.Active() >= int64(b) {
		s.sessionSheds.Add(1)
		writeErr(w, errWatchBudget(sess, b))
		return
	}
	buffer := req.Buffer
	if buffer <= 0 {
		buffer = 16
	}

	// Resolve the topic and compute the initial ranking under the read
	// lock, so the snapshot is consistent with the version it reports
	// and no mutation fans out between them.
	sess.dbMu.RLock()
	q, qID, err := s.resolveQuery(sess, req.QueryID, req.Query)
	if err != nil {
		sess.dbMu.RUnlock()
		writeErr(w, err)
		return
	}
	qkey := qID
	if qkey == "" {
		qkey = shapeKeyOf(q) + "\x1f" + q.String()
	}
	key := engineKey(qkey, toValues(req.Answer), req.WhyNo) + "|" + mode.String()
	answer := toValues(req.Answer)
	rank := func() ([]ExplanationDTO, error) {
		// Runs under dbMu (read side for the snapshot, the mutating
		// request's write side for fanouts), so it takes no database lock
		// and detaches from the subscriber's request context.
		eng, _, _, err := sess.engineFor(q, qID, answer, req.WhyNo)
		if err != nil {
			return nil, err
		}
		exps, err := eng.RankAllParallel(context.Background(), mode, core.ParallelOptions{Workers: s.clampWorkers(0)})
		if err != nil {
			return nil, err
		}
		return explanationDTOs(sess.db, exps), nil
	}

	// The initial ranking of a fresh topic is explain-sized work; run it
	// under the worker budget like any other explain.
	actx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	release, ok := s.admit(actx)
	cancel()
	if !ok {
		sess.dbMu.RUnlock()
		writeErr(w, errBudget("server at capacity: %v", actx.Err()))
		return
	}
	sub, initial, serr := sess.watch.Subscribe(key, buffer, sess.db.Version(), req.ResumeFrom,
		func(relName string) bool { return queryMentions(q, relName) }, rank)
	release()
	sess.dbMu.RUnlock()
	if serr != nil {
		writeErr(w, serr)
		return
	}
	defer sess.watch.Unsubscribe(key, sub)
	s.watchesActive.Add(1)
	defer s.watchesActive.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	lastVersion := req.ResumeFrom
	emit := func(ev WatchEvent) bool {
		// Per-frame write deadline: a wedged client is disconnected
		// instead of pinning the handler forever. Transports without
		// deadline support (httptest recorders) just skip it.
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.RequestTimeout))
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		s.diffEventsSent.Add(1)
		return true
	}
	for _, ev := range initial {
		if !emit(ev) {
			return
		}
		lastVersion = ev.Version
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			if sub.TakeLag() {
				// Dropped frames break the diff chain: discard everything
				// still buffered (it predates the drop) and re-seed from the
				// topic's current state.
				for drained := false; !drained; {
					select {
					case _, ok := <-sub.C():
						if !ok {
							return
						}
					default:
						drained = true
					}
				}
				res, ok := sess.watch.Resync(key)
				if !ok || !emit(res) {
					return
				}
				lastVersion = res.Version
				continue
			}
			if ev.Version <= lastVersion {
				// Superseded frame (published before a resync that already
				// covered it); applying it after the resync would corrupt
				// the replayed state.
				continue
			}
			if !emit(ev) {
				return
			}
			lastVersion = ev.Version
		}
	}
}
