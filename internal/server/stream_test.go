package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/parser"
)

func newStreamTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{ReapInterval: -1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func uploadMicro(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	db, _ := imdb.Micro()
	text, err := parser.FormatDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/databases", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info DatabaseInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info.ID
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestCausesEndpoint: /causes returns the sorted cause ids without
// ranking, warms the engine cache, and carries taxonomy codes on
// failures.
func TestCausesEndpoint(t *testing.T) {
	_, ts := newStreamTestServer(t)
	dbID := uploadMicro(t, ts)
	q := imdb.GenreQuery().String()

	resp := postJSON(t, ts, "/v1/databases/"+dbID+"/causes", CausesRequest{Query: q, Answer: []string{"Musical"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var causes CausesResponse
	if err := json.NewDecoder(resp.Body).Decode(&causes); err != nil {
		t.Fatal(err)
	}
	if len(causes.Causes) == 0 || causes.EngineCached {
		t.Fatalf("cold causes = %+v; want non-empty, not cached", causes)
	}
	for i := 1; i < len(causes.Causes); i++ {
		if causes.Causes[i] <= causes.Causes[i-1] {
			t.Fatalf("causes not sorted: %v", causes.Causes)
		}
	}

	// The engine built for /causes serves the explain warm.
	resp2 := postJSON(t, ts, "/v1/databases/"+dbID+"/whyso", ExplainRequest{Query: q, Answer: []string{"Musical"}})
	defer resp2.Body.Close()
	var exp ExplainResponse
	if err := json.NewDecoder(resp2.Body).Decode(&exp); err != nil {
		t.Fatal(err)
	}
	if !exp.EngineCached {
		t.Error("explain after /causes missed the engine cache")
	}
	if exp.Causes != len(causes.Causes) {
		t.Errorf("explain ranked %d causes; /causes returned %d", exp.Causes, len(causes.Causes))
	}

	// Failure taxonomy on the wire.
	for _, tc := range []struct {
		req      CausesRequest
		status   int
		wantCode string
	}{
		{CausesRequest{}, http.StatusBadRequest, "bad_query"},
		{CausesRequest{Query: "not a query"}, http.StatusBadRequest, "bad_query"},
		{CausesRequest{Query: q, Answer: []string{"a", "b"}}, http.StatusUnprocessableEntity, "bad_instance"},
		{CausesRequest{QueryID: "q99"}, http.StatusNotFound, "query_not_found"},
		{CausesRequest{Query: q, QueryID: "q1"}, http.StatusBadRequest, "bad_query"},
	} {
		resp := postJSON(t, ts, "/v1/databases/"+dbID+"/causes", tc.req)
		var wire ErrorResponse
		err := json.NewDecoder(resp.Body).Decode(&wire)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status || wire.Code != tc.wantCode {
			t.Errorf("causes(%+v) = %d %q; want %d %q (%s)", tc.req, resp.StatusCode, wire.Code, tc.status, tc.wantCode, wire.Error)
		}
	}
}

// TestStreamEndpoint: the NDJSON stream carries one explanation event
// per cause plus a terminal done event, equals the blocking ranking
// as a set, and supports prepared queries.
func TestStreamEndpoint(t *testing.T) {
	_, ts := newStreamTestServer(t)
	dbID := uploadMicro(t, ts)
	q := imdb.GenreQuery().String()

	blocking := postJSON(t, ts, "/v1/databases/"+dbID+"/whyso", ExplainRequest{Query: q, Answer: []string{"Musical"}})
	defer blocking.Body.Close()
	var want ExplainResponse
	if err := json.NewDecoder(blocking.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts, "/v1/databases/"+dbID+"/explain/stream",
		StreamExplainRequest{Query: q, Answer: []string{"Musical"}, Parallelism: 2})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("malformed event %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(want.Explanations)+1 {
		t.Fatalf("stream emitted %d events; want %d explanations + done", len(events), len(want.Explanations))
	}
	last := events[len(events)-1]
	if last.Done == nil || last.Done.Causes != len(want.Explanations) {
		t.Fatalf("terminal event = %+v; want done with %d causes", last, len(want.Explanations))
	}
	// Deterministic default order: ascending tuple id (cause order).
	for i, ev := range events[:len(events)-1] {
		if ev.Explanation == nil {
			t.Fatalf("event %d is not an explanation: %+v", i, ev)
		}
		if i > 0 && ev.Explanation.TupleID <= events[i-1].Explanation.TupleID {
			t.Errorf("deterministic stream out of cause order at %d: %d after %d",
				i, ev.Explanation.TupleID, events[i-1].Explanation.TupleID)
		}
	}
	// Same multiset as the blocking ranking.
	seen := make(map[int]ExplanationDTO)
	for _, ev := range events[:len(events)-1] {
		seen[ev.Explanation.TupleID] = *ev.Explanation
	}
	for _, w := range want.Explanations {
		got, ok := seen[w.TupleID]
		if !ok {
			t.Errorf("cause %d missing from stream", w.TupleID)
			continue
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(w)
		if !bytes.Equal(gj, wj) {
			t.Errorf("cause %d differs: stream %s vs rank %s", w.TupleID, gj, wj)
		}
	}

	// Prepared-query streaming.
	prep := postJSON(t, ts, "/v1/databases/"+dbID+"/queries", PrepareQueryRequest{Query: q})
	var pq PrepareQueryResponse
	err := json.NewDecoder(prep.Body).Decode(&pq)
	prep.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	resp2 := postJSON(t, ts, "/v1/databases/"+dbID+"/explain/stream",
		StreamExplainRequest{QueryID: pq.ID, Answer: []string{"Musical"}})
	defer resp2.Body.Close()
	n := 0
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		n++
	}
	if n != len(want.Explanations)+1 {
		t.Errorf("prepared-query stream emitted %d lines; want %d", n, len(want.Explanations)+1)
	}

	// Pre-stream failures are plain JSON errors with codes.
	resp3 := postJSON(t, ts, "/v1/databases/"+dbID+"/explain/stream", StreamExplainRequest{Query: "bogus"})
	defer resp3.Body.Close()
	var wire ErrorResponse
	if err := json.NewDecoder(resp3.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if resp3.StatusCode != http.StatusBadRequest || wire.Code != "bad_query" {
		t.Errorf("bad stream request = %d %q", resp3.StatusCode, wire.Code)
	}
}

// TestStreamEndpointWhyNo covers the why_no flag over the stream.
func TestStreamEndpointWhyNo(t *testing.T) {
	_, ts := newStreamTestServer(t)
	resp, err := ts.Client().Post(ts.URL+"/v1/databases", "text/plain",
		strings.NewReader("-R(a,b)\n+S(b)\n+S(c)\n"))
	if err != nil {
		t.Fatal(err)
	}
	var info DatabaseInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	stream := postJSON(t, ts, "/v1/databases/"+info.ID+"/explain/stream",
		StreamExplainRequest{Query: "q :- R(x,y), S(y)", WhyNo: true})
	defer stream.Body.Close()
	var explanations, done int
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		switch {
		case ev.Explanation != nil:
			explanations++
			if ev.Explanation.Method != "why-no-closed-form" {
				t.Errorf("method = %q", ev.Explanation.Method)
			}
		case ev.Done != nil:
			done++
		case ev.Error != nil:
			t.Fatalf("stream error: %+v", ev.Error)
		}
	}
	if explanations == 0 || done != 1 {
		t.Errorf("whyno stream: %d explanations, %d done events", explanations, done)
	}
}

// TestErrorCodesOnExistingEndpoints spot-checks that the pre-existing
// endpoints gained wire codes without changing messages or statuses.
func TestErrorCodesOnExistingEndpoints(t *testing.T) {
	_, ts := newStreamTestServer(t)
	dbID := uploadMicro(t, ts)

	check := func(path string, body any, wantStatus int, wantCode string) {
		t.Helper()
		resp := postJSON(t, ts, path, body)
		defer resp.Body.Close()
		var wire ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantStatus || wire.Code != wantCode {
			t.Errorf("POST %s = %d %q (%s); want %d %q", path, resp.StatusCode, wire.Code, wire.Error, wantStatus, wantCode)
		}
	}
	check("/v1/databases/nope/whyso", ExplainRequest{Query: "q :- Director(a,b,c)"},
		http.StatusNotFound, "session_not_found")
	check(fmt.Sprintf("/v1/databases/%s/queries/q9/whyso", dbID), ExplainRequest{},
		http.StatusNotFound, "query_not_found")
	check(fmt.Sprintf("/v1/databases/%s/whyso", dbID), ExplainRequest{Query: "garbage"},
		http.StatusBadRequest, "bad_query")
	check(fmt.Sprintf("/v1/databases/%s/whyso", dbID), ExplainRequest{Query: imdb.GenreQuery().String(), Answer: []string{"a", "b"}},
		http.StatusUnprocessableEntity, "bad_instance")
}

// TestExplainParallelismOverride: the one-shot explain honors the
// request's parallelism override (clamped to the worker budget) and
// stays byte-identical to the serial ranking.
func TestExplainParallelismOverride(t *testing.T) {
	_, ts := newStreamTestServer(t)
	dbID := uploadMicro(t, ts)
	q := imdb.GenreQuery().String()

	rank := func(parallelism int) []ExplanationDTO {
		t.Helper()
		resp := postJSON(t, ts, "/v1/databases/"+dbID+"/whyso",
			ExplainRequest{Query: q, Answer: []string{"Musical"}, Parallelism: parallelism})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("parallelism %d: status = %d", parallelism, resp.StatusCode)
		}
		var out ExplainResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Explanations
	}
	serial := rank(1)
	for _, p := range []int{0, 4, 1 << 20} { // default, parallel, over-budget (clamped)
		got := rank(p)
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(serial)
		if !bytes.Equal(gj, wj) {
			t.Errorf("parallelism %d ranking differs from serial:\n%s\nvs\n%s", p, gj, wj)
		}
	}
}
