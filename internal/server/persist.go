// Session persistence: the bridge between the live session registry
// and internal/persist snapshots. Handlers mark a session dirty after
// any state-changing work (upload, prepare, certificate classification)
// and the write-behind flusher serializes the latest state in the
// background; graceful drain flushes synchronously so a SIGTERM'd
// server persists everything before exiting. On boot the registry is
// rehydrated from every snapshot on disk, and a request for a session
// that is not in memory (evicted, or owned by a restarted node) falls
// back to a lazy disk load — the warm-restart path.
package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/querycause/querycause/internal/cache"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/persist"
)

// snapshot serializes the session's current state: the interned
// database (including its deletion husks, so a restore replays to the
// same version), prepared queries in preparation order, and the hot
// certificate cache (MRU first). Safe to run concurrently with request
// traffic — the database is read-locked against mutations and the
// caches lock internally.
func (s *session) snapshot() (*persist.Snapshot, error) {
	snap := &persist.Snapshot{ID: s.id}
	s.dbMu.RLock()
	snap.SetDatabase(s.db)
	// The dedup cache rides along under the same read lock, so the
	// snapshot records a keyed mutation's dedup entry iff it records
	// the mutation's effect — a retry against the restored (or handed-
	// off) session replays instead of double-applying.
	for _, key := range s.idemOrder {
		snap.Idem = append(snap.Idem, persist.Idempotency{Key: key, Response: s.idem[key]})
	}
	s.dbMu.RUnlock()

	s.mu.RLock()
	snap.NextQueryID = s.nextQ
	queries := make([]*preparedQuery, 0, len(s.byID))
	for _, pq := range s.byID {
		queries = append(queries, pq)
	}
	s.mu.RUnlock()
	// q%d ids order by their numeric suffix = preparation order.
	sort.Slice(queries, func(i, j int) bool {
		return querySeq(queries[i].id) < querySeq(queries[j].id)
	})
	for _, pq := range queries {
		snap.Queries = append(snap.Queries, persist.Query{ID: pq.id, Text: pq.key, Program: pq.program})
	}

	for _, key := range s.certs.Keys() { // MRU → LRU
		ce, ok := s.certs.Peek(key)
		if !ok {
			continue // evicted between Keys and Peek
		}
		snap.Certs = append(snap.Certs, persist.Certificate{Key: key, Sound: ce.sound, Paper: ce.paper})
	}
	return snap, nil
}

func querySeq(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "q"))
	return n
}

// sessionSeq extracts the numeric component of a session id ("d12" or
// "d12-3" for ring-salted ids) so restore can advance the id sequence
// past every restored session.
func sessionSeq(id string) int {
	s := strings.TrimPrefix(id, "d")
	if i := strings.IndexByte(s, '-'); i >= 0 {
		s = s[:i]
	}
	n, _ := strconv.Atoi(s)
	return n
}

// restore rehydrates one snapshot into the registry. Restoring an id
// that is already live is a no-op returning the live session (two
// requests racing on a lazy load both win). The restored session's
// database, prepared-query ids, classifications, and certificates are
// byte-identical to the snapshotted ones; per-answer engines rebuild
// on demand.
func (r *registry) restore(snap *persist.Snapshot) (*session, error) {
	db, err := snap.Database()
	if err != nil {
		return nil, err
	}
	endo := 0
	for _, t := range db.Tuples() {
		if t.Endo {
			endo++
		}
	}
	now := r.clock()
	s := &session{
		id:      snap.ID,
		db:      db,
		endo:    endo,
		created: now,
		watch:   NewWatchSet(),
		noDelta: r.disableDelta,
		byID:    make(map[string]*preparedQuery),
		idem:    make(map[string][]byte),
		certs:   cache.New[string, *certEntry](r.certCap, nil),
		engines: cache.New[string, *core.Engine](r.engineCap, nil),
	}
	for _, rec := range snap.Idem {
		s.rememberIdem(rec.Key, rec.Response)
	}
	s.prepared = cache.New[string, *preparedQuery](r.preparedCap, func(_ string, pq *preparedQuery) {
		s.mu.Lock()
		delete(s.byID, pq.id)
		s.mu.Unlock()
	})
	s.touch(now)

	// Certificates first (reverse order: the snapshot is MRU-first,
	// Put refreshes recency) so query rehydration below hits the cache
	// instead of re-running classification searches.
	for i := len(snap.Certs) - 1; i >= 0; i-- {
		c := snap.Certs[i]
		s.certs.Put(c.Key, &certEntry{sound: c.Sound, paper: c.Paper})
	}
	s.nextQ = snap.NextQueryID
	for _, sq := range snap.Queries {
		q, err := parser.ParseQuery(sq.Text)
		if err != nil {
			return nil, fmt.Errorf("restoring query %s of session %s: %w", sq.ID, snap.ID, err)
		}
		if err := q.Validate(db); err != nil {
			return nil, fmt.Errorf("restoring query %s of session %s: %w", sq.ID, snap.ID, err)
		}
		// Warm the certificate cache for the query's shape (a cache hit
		// when the snapshot carried it, a fresh classification otherwise);
		// the prepared query itself carries no certificate pointer.
		if _, _, err := s.certsFor(q); err != nil {
			return nil, fmt.Errorf("reclassifying query %s of session %s: %w", sq.ID, snap.ID, err)
		}
		// dbVersion 0 never matches a live database version (sessions
		// hold at least one tuple), so the first re-prepare regenerates
		// the program: the snapshot does not record which version the
		// program was generated against, and it may predate the last
		// mutation.
		pq := &preparedQuery{id: sq.ID, key: q.String(), q: q, program: sq.Program, dbVersion: 0}
		s.byID[pq.id] = pq
		s.prepared.Put(pq.key, pq)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if live, ok := r.sessions[snap.ID]; ok {
		return live, nil
	}
	for len(r.sessions) >= r.maxSessions && r.evictLRULocked() {
	}
	if seq := sessionSeq(snap.ID); seq > r.nextID {
		r.nextID = seq
	}
	r.sessions[s.id] = s
	return s, nil
}

// markDirty flags a session for the write-behind flusher; no-op
// without a snapshot store.
func (s *Server) markDirty(sess *session) {
	if s.wb == nil {
		return
	}
	s.wb.Mark(sess.id, sess.snapshot)
}

// loadSession is the lazy warm path: a request for a session that is
// not in memory loads its snapshot from disk. Misses and corrupt
// snapshots report false (the caller answers session-not-found).
func (s *Server) loadSession(id string) (*session, bool) {
	if s.store == nil {
		return nil, false
	}
	snap, err := s.store.Load(id)
	if err != nil {
		return nil, false
	}
	sess, err := s.reg.restore(snap)
	if err != nil {
		return nil, false
	}
	s.restored.Add(1)
	return sess, true
}

// restoreAll rehydrates every snapshot in the store; New calls it
// before the server starts serving, so a restarted replica is warm.
// Unreadable snapshots are skipped (and counted) — one corrupt file
// must not keep the node down.
func (s *Server) restoreAll() (restored int, failed int) {
	snaps, errs := s.store.LoadAll()
	failed = len(errs)
	for _, snap := range snaps {
		if _, err := s.reg.restore(snap); err != nil {
			failed++
			continue
		}
		s.restored.Add(1)
		restored++
	}
	return restored, failed
}

// Flush synchronously writes every dirty session snapshot. The drain
// path of cmd/querycaused calls it after http.Server.Shutdown so a
// graceful exit never loses marked state; no-op without a store.
func (s *Server) Flush() error {
	if s.wb == nil {
		return nil
	}
	return s.wb.Flush()
}

// Restored returns how many sessions were rehydrated from snapshots
// (boot-time restore plus lazy loads).
func (s *Server) Restored() uint64 { return s.restored.Load() }

// persistInterval resolves the write-behind flush interval: 0 means
// the 2s default, negative disables background flushing (flush-on-
// drain and explicit Flush still work).
func persistInterval(d time.Duration) time.Duration {
	if d == 0 {
		return 2 * time.Second
	}
	if d < 0 {
		return 0
	}
	return d
}
