// Server benchmarks: the latency value of the session registry's
// certificate/lineage caching (cold vs. warm explains over HTTP) and
// end-to-end throughput with concurrent sessions. BENCH_server.json
// records a baseline; re-record with
//
//	go test -run xxx -bench Server -benchtime 50x ./internal/server
package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/rel"
)

func benchServer(b *testing.B, cfg Config) (*Server, *httptest.Server) {
	b.Helper()
	cfg.ReapInterval = -1
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func benchPost(b *testing.B, url string, body, out any) {
	b.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		b.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerExplain measures one why-so explain over HTTP at three
// cache temperatures:
//
//   - warm-engine: repeated answer; certificate AND lineage cached, the
//     request goes straight to responsibility ranking.
//   - warm-certificate: fresh answer per request with a tiny engine
//     cache; lineage is recomputed but classification is skipped.
//   - cold: caches sized to always miss; classification and lineage run
//     on every request, like the one-shot CLI.
//
// The warm-certificate vs. cold gap is what the prepared-query API buys
// before lineage caching even starts to help.
func BenchmarkServerExplain(b *testing.B) {
	db := imdb.Synthetic(imdb.Config{Seed: 42, Directors: 60})
	text, err := parser.FormatDatabase(db)
	if err != nil {
		b.Fatal(err)
	}
	q := imdb.GenreQuery()
	answers, err := rel.Answers(db, q)
	if err != nil {
		b.Fatal(err)
	}
	if len(answers) < 2 {
		b.Fatalf("synthetic imdb has %d genre answers; want >= 2", len(answers))
	}
	answerStrs := make([][]string, len(answers))
	for i, a := range answers {
		answerStrs[i] = []string{string(a.Values[0])}
	}

	prepTarget := func(b *testing.B, cfg Config) (string, string) {
		_, ts := benchServer(b, cfg)
		var info DatabaseInfo
		benchPost(b, ts.URL+"/v1/databases", CreateDatabaseRequest{Database: text}, &info)
		var prep PrepareQueryResponse
		benchPost(b, ts.URL+"/v1/databases/"+info.ID+"/queries", PrepareQueryRequest{Query: q.String()}, &prep)
		return ts.URL + "/v1/databases/" + info.ID + "/queries/" + prep.ID + "/whyso", ts.URL
	}

	b.Run("warm-engine", func(b *testing.B) {
		url, _ := prepTarget(b, Config{})
		benchPost(b, url, ExplainRequest{Answer: answerStrs[0]}, nil) // prewarm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchPost(b, url, ExplainRequest{Answer: answerStrs[0]}, nil)
		}
	})

	b.Run("warm-certificate", func(b *testing.B) {
		// Engine cache of 1 plus alternating answers: every request
		// recomputes the lineage but reuses the prepared certificate.
		url, _ := prepTarget(b, Config{EngineCacheSize: 1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchPost(b, url, ExplainRequest{Answer: answerStrs[i%2]}, nil)
		}
	})

	b.Run("cold", func(b *testing.B) {
		// Single-entry caches and alternating query shapes: every
		// request classifies AND computes lineage from scratch.
		_, ts := benchServer(b, Config{EngineCacheSize: 1, CertCacheSize: 1})
		var info DatabaseInfo
		benchPost(b, ts.URL+"/v1/databases", CreateDatabaseRequest{Database: text}, &info)
		url := ts.URL + "/v1/databases/" + info.ID + "/whyso"
		// Two structurally different queries so the 1-entry certificate
		// cache always misses.
		queries := []string{
			q.String(),
			"q(genre) :- Movie(mid,n,y,r), Genre(mid,genre)",
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchPost(b, url, ExplainRequest{Query: queries[i%2], Answer: answerStrs[i%2]}, nil)
		}
	})
}

// BenchmarkServerConcurrentSessions measures end-to-end throughput with
// parallel clients spread over several warm sessions (ns/op is the
// per-request latency at full concurrency; req/s = 1e9/ns_per_op *
// parallelism).
func BenchmarkServerConcurrentSessions(b *testing.B) {
	db := imdb.Synthetic(imdb.Config{Seed: 42, Directors: 60})
	text, err := parser.FormatDatabase(db)
	if err != nil {
		b.Fatal(err)
	}
	q := imdb.GenreQuery()
	answers, err := rel.Answers(db, q)
	if err != nil {
		b.Fatal(err)
	}
	ans := []string{string(answers[0].Values[0])}

	const sessions = 4
	_, ts := benchServer(b, Config{WorkerBudget: 64})
	urls := make([]string, sessions)
	for i := range urls {
		var info DatabaseInfo
		benchPost(b, ts.URL+"/v1/databases", CreateDatabaseRequest{Database: text}, &info)
		var prep PrepareQueryResponse
		benchPost(b, ts.URL+"/v1/databases/"+info.ID+"/queries", PrepareQueryRequest{Query: q.String()}, &prep)
		urls[i] = ts.URL + "/v1/databases/" + info.ID + "/queries/" + prep.ID + "/whyso"
		benchPost(b, urls[i], ExplainRequest{Answer: ans}, nil) // prewarm
	}
	var next atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			benchPost(b, urls[int(i)%sessions], ExplainRequest{Answer: ans}, nil)
		}
	})
}
