package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// watchStream is a test client for one watch subscription: it decodes
// NDJSON frames off the response body on demand.
type watchStream struct {
	t    *testing.T
	resp *http.Response
	sc   *bufio.Scanner
}

// openWatch subscribes and returns the stream; the first frame (the
// snapshot) has not been read yet.
func openWatch(t *testing.T, url, dbID string, req WatchRequest) *watchStream {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/databases/"+dbID+"/watch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		var wire ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&wire)
		resp.Body.Close()
		t.Fatalf("watch: status %d (%s)", resp.StatusCode, wire.Error)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type %q", ct)
	}
	t.Cleanup(func() { resp.Body.Close() })
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	return &watchStream{t: t, resp: resp, sc: sc}
}

// next reads one frame, failing the test if the stream ends.
func (ws *watchStream) next() WatchEvent {
	ws.t.Helper()
	if !ws.sc.Scan() {
		ws.t.Fatalf("watch stream ended early: %v", ws.sc.Err())
	}
	var ev WatchEvent
	if err := json.Unmarshal(ws.sc.Bytes(), &ev); err != nil {
		ws.t.Fatalf("decoding watch frame %q: %v", ws.sc.Bytes(), err)
	}
	return ev
}

func (ws *watchStream) close() { ws.resp.Body.Close() }

// rankingJSON canonicalizes a ranking for byte comparison.
func rankingJSON(t *testing.T, r []ExplanationDTO) string {
	t.Helper()
	if len(r) == 0 {
		return "[]"
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestWatchSnapshotDiffReplay is the core wire contract: the first
// frame is a snapshot equal to a cold explain, every mutation request
// produces exactly one frame, unaffected mutations produce an empty
// version-bump diff, and replaying the frames reconstructs the exact
// ranking a cold explain returns at the final version.
func TestWatchSnapshotDiffReplay(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, mutateDBText) // R(a4,a3) S(a3) S(a2) R(a5,a2) T(a1)
	const q = "q(x) :- R(x,y), S(y)"

	ws := openWatch(t, ts.URL, info.ID, WatchRequest{Query: q, Answer: []string{"a4"}})
	snap := ws.next()
	if snap.Type != "snapshot" || snap.Version != uint64(info.Version) {
		t.Fatalf("first frame = %+v; want snapshot at version %d", snap, info.Version)
	}
	cold := explainWhySo(t, ts.URL, info.ID, q, "a4")
	if rankingJSON(t, snap.Ranking) != rankingJSON(t, cold.Explanations) {
		t.Fatalf("snapshot ranking %s != cold explain %s",
			rankingJSON(t, snap.Ranking), rankingJSON(t, cold.Explanations))
	}
	state := ApplyWatchEvent(nil, snap)

	// Mutating only T cannot affect the watched query: the frame is an
	// empty diff that just bumps the version.
	ins := insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "T", Args: []string{"zz"}, Endo: true})
	ev := ws.next()
	if ev.Type != "diff" || ev.Version != ins.Version ||
		len(ev.CausesAdded)+len(ev.CausesRemoved)+len(ev.RankChanged) != 0 {
		t.Fatalf("unaffected mutation frame = %+v; want empty diff at version %d", ev, ins.Version)
	}
	state = ApplyWatchEvent(state, ev)

	// Insert a second witness for a4: R(a4,a2) joins S(a2), so both new
	// tuples join the cause set and every rho changes.
	ins = insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "R", Args: []string{"a4", "a2"}, Endo: true})
	ev = ws.next()
	if ev.Type != "diff" || ev.Version != ins.Version {
		t.Fatalf("affected mutation frame = %+v; want diff at version %d", ev, ins.Version)
	}
	if len(ev.CausesAdded) == 0 {
		t.Fatalf("insert created witnesses but the diff added no causes: %+v", ev)
	}
	state = ApplyWatchEvent(state, ev)
	cold = explainWhySo(t, ts.URL, info.ID, q, "a4")
	if rankingJSON(t, state) != rankingJSON(t, cold.Explanations) {
		t.Fatalf("replayed state %s != cold explain %s", rankingJSON(t, state), rankingJSON(t, cold.Explanations))
	}

	// Delete endogenous S(a3) (id 1): a4 keeps its second witness, so
	// causes shrink and the remaining ones re-rank.
	del := deleteTuple(t, ts.URL, info.ID, 1)
	ev = ws.next()
	if ev.Type != "diff" || ev.Version != del.Version {
		t.Fatalf("delete frame = %+v; want diff at version %d", ev, del.Version)
	}
	state = ApplyWatchEvent(state, ev)
	cold = explainWhySo(t, ts.URL, info.ID, q, "a4")
	if rankingJSON(t, state) != rankingJSON(t, cold.Explanations) {
		t.Fatalf("replayed state %s != cold explain %s after delete", rankingJSON(t, state), rankingJSON(t, cold.Explanations))
	}
}

// TestWatchWhyNo watches a non-answer (exogenous = the real database,
// endogenous = candidate insertions): mutations adding candidate
// witnesses must stream diffs whose replay tracks the cold why-no
// ranking. Why-no engines always take the cold-rebuild fallback (the
// delta layer declines them), so this also exercises the fallback path
// under watch fanout.
func TestWatchWhyNo(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, "-R(a4, a3)\n+S(a3)\n")
	const q = "q(x) :- R(x,y), S(y)"

	ws := openWatch(t, ts.URL, info.ID, WatchRequest{Query: q, Answer: []string{"a4"}, WhyNo: true})
	snap := ws.next()
	if snap.Type != "snapshot" {
		t.Fatalf("first frame = %+v; want snapshot", snap)
	}
	state := ApplyWatchEvent(nil, snap)

	// Add a second candidate witness: R(a4,a5) and S(a5) form a new
	// conjunct, so causes are added and the existing cause re-ranks.
	insertTuples(t, ts.URL, info.ID,
		TupleSpec{Rel: "R", Args: []string{"a4", "a5"}, Endo: true},
		TupleSpec{Rel: "S", Args: []string{"a5"}, Endo: true})
	ev := ws.next()
	if ev.Type != "diff" || len(ev.CausesAdded) == 0 {
		t.Fatalf("candidate insert frame = %+v; want diff with added causes", ev)
	}
	state = ApplyWatchEvent(state, ev)

	var cold ExplainResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/whyno",
		ExplainRequest{Query: q, Answer: []string{"a4"}}, &cold); code != 200 {
		t.Fatalf("cold whyno: status %d", code)
	}
	if rankingJSON(t, state) != rankingJSON(t, cold.Explanations) {
		t.Fatalf("replayed why-no state %s != cold %s", rankingJSON(t, state), rankingJSON(t, cold.Explanations))
	}
}

// TestWatchErrorFrameAndRecovery drives a watched topic into an error
// state (the watched instance becomes invalid) and back: the stream
// must carry the error in-band and recover with a full_resync.
func TestWatchErrorFrameAndRecovery(t *testing.T) {
	_, ts := newTest(t, Config{})
	// Valid why-no instance: the real (exogenous) part is empty, the
	// candidates R(a), S(a) make q hold.
	info := upload(t, ts, "+R(a)\n+S(a)\n")
	const q = "q :- R(x), S(x)"
	ws := openWatch(t, ts.URL, info.ID, WatchRequest{Query: q, WhyNo: true})
	snap := ws.next()
	if snap.Type != "snapshot" {
		t.Fatalf("first frame = %+v; want snapshot", snap)
	}

	// Insert exogenous R(a), S(a): q now holds on the real database
	// alone, so it is no longer a non-answer — the re-rank fails and
	// the frame carries the error in-band, leaving the stream open.
	ins := insertTuples(t, ts.URL, info.ID,
		TupleSpec{Rel: "R", Args: []string{"a"}},
		TupleSpec{Rel: "S", Args: []string{"a"}})
	ev := ws.next()
	if ev.Type != "error" || ev.Error == nil {
		t.Fatalf("frame after invalidating mutation = %+v; want error", ev)
	}

	// Delete one exogenous tuple: q is a non-answer again and the
	// stream recovers with a full resync of the re-validated ranking.
	deleteTuple(t, ts.URL, info.ID, ins.TupleIDs[0])
	ev = ws.next()
	if ev.Type != "full_resync" {
		t.Fatalf("frame after recovery = %+v; want full_resync", ev)
	}
	if len(ev.Ranking) == 0 {
		t.Fatal("recovered ranking is empty; want the candidate causes back")
	}
}

// TestWatchSharedTopic: two subscribers of the same key share one
// topic — both receive the same frames, and the second snapshot is
// served from topic state without recomputation.
func TestWatchSharedTopic(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, mutateDBText)
	const q = "q(x) :- R(x,y), S(y)"
	req := WatchRequest{Query: q, Answer: []string{"a4"}}

	a := openWatch(t, ts.URL, info.ID, req)
	b := openWatch(t, ts.URL, info.ID, req)
	snapA, snapB := a.next(), b.next()
	if rankingJSON(t, snapA.Ranking) != rankingJSON(t, snapB.Ranking) || snapA.Version != snapB.Version {
		t.Fatalf("shared-topic snapshots diverge: %+v vs %+v", snapA, snapB)
	}
	ins := insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "S", Args: []string{"a3"}, Endo: true})
	evA, evB := a.next(), b.next()
	rawA, _ := json.Marshal(evA)
	rawB, _ := json.Marshal(evB)
	if !bytes.Equal(rawA, rawB) || evA.Version != ins.Version {
		t.Fatalf("shared-topic frames diverge: %s vs %s", rawA, rawB)
	}
}

// TestWatchBudget: Config.WatchBudget sheds subscriptions over the
// per-session cap with the budget taxonomy code, and closing a stream
// frees its slot.
func TestWatchBudget(t *testing.T) {
	_, ts := newTest(t, Config{WatchBudget: 1})
	info := upload(t, ts, chainDBText)
	const q = "q(x) :- R(x,y), S(y)"

	ws := openWatch(t, ts.URL, info.ID, WatchRequest{Query: q, Answer: []string{"a4"}})
	ws.next() // snapshot: the subscription is live

	code, wire := callErr(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/watch",
		WatchRequest{Query: q, Answer: []string{"a5"}})
	if code != 503 || wire.Code != "budget_exceeded" {
		t.Fatalf("over-budget watch: status %d code %q; want 503 budget_exceeded", code, wire.Code)
	}

	ws.close()
	waitForCondition(t, func() bool { return stats(t, ts).WatchesActive == 0 })
}

func waitForCondition(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestWatchSlowConsumerResync: a subscriber with a 1-frame buffer that
// stops reading while mutations pile up must recover with a
// full_resync frame equal to the cold ranking, not a broken diff
// chain.
func TestWatchSlowConsumerResync(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, mutateDBText)
	const q = "q(x) :- R(x,y), S(y)"

	ws := openWatch(t, ts.URL, info.ID, WatchRequest{Query: q, Answer: []string{"a4"}, Buffer: 1})
	snap := ws.next()
	state := ApplyWatchEvent(nil, snap)

	// Fire mutations without reading: the handler is blocked writing at
	// most a frame or two into the response, the hub buffer (1) fills,
	// and later frames drop.
	var last MutateResponse
	for i := 0; i < 8; i++ {
		last = insertTuples(t, ts.URL, info.ID,
			TupleSpec{Rel: "S", Args: []string{fmt.Sprintf("w%d", i)}, Endo: true},
			TupleSpec{Rel: "R", Args: []string{"a4", fmt.Sprintf("w%d", i)}, Endo: true})
	}

	// Drain frames until the stream catches up to the final version;
	// every frame must keep the replayed state consistent, and at least
	// the final state must byte-equal the cold ranking.
	sawResync := false
	for {
		ev := ws.next()
		if ev.Type == "full_resync" {
			sawResync = true
		}
		state = ApplyWatchEvent(state, ev)
		if ev.Version == last.Version {
			break
		}
	}
	cold := explainWhySo(t, ts.URL, info.ID, q, "a4")
	if rankingJSON(t, state) != rankingJSON(t, cold.Explanations) {
		t.Fatalf("slow-consumer replay %s != cold %s", rankingJSON(t, state), rankingJSON(t, cold.Explanations))
	}
	_ = sawResync // lag is timing-dependent; correctness of the replay is the invariant
}

// TestWatchStats is the table-driven stats contract (watches_active,
// diff_events_sent, delta_fallbacks): each step mutates watch/mutation
// state and asserts the counters the /v1/stats payload must report.
func TestWatchStats(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, mutateDBText)
	const q = "q(x) :- R(x,y), S(y)"

	// The stream outlives the subtests, so it is opened against the
	// parent t (openWatch registers its cleanup on the t it is given).
	var ws *watchStream
	steps := []struct {
		name string
		run  func()
		// want asserts on the stats snapshot taken after run.
		wantActive    int64
		wantEventsMin uint64 // diff_events_sent is cumulative; assert a floor
		wantFallbacks uint64
		wantPatched   uint64
	}{
		{
			name:       "no watches",
			run:        func() {},
			wantActive: 0,
		},
		{
			name: "one subscription, snapshot frame",
			run: func() {
				ws = openWatch(t, ts.URL, info.ID, WatchRequest{Query: q, Answer: []string{"a4"}})
				ws.next()
			},
			wantActive:    1,
			wantEventsMin: 1,
		},
		{
			name: "patchable insert fans out one diff",
			run: func() {
				insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "S", Args: []string{"a3"}, Endo: true})
				ws.next()
			},
			wantActive:    1,
			wantEventsMin: 2,
			wantPatched:   1,
		},
		{
			name: "exogenous delete falls back",
			run: func() {
				// Insert an exogenous S tuple and delete it: the delete is
				// unpatchable, so the (stale) a4 engine rebuilds cold.
				ins := insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "S", Args: []string{"zz"}})
				ws.next()
				deleteTuple(t, ts.URL, info.ID, ins.TupleIDs[0])
				ws.next()
			},
			wantActive:    1,
			wantEventsMin: 4,
			wantFallbacks: 1,
			wantPatched:   2, // the exo insert also patched the engine once
		},
		{
			name: "disconnect zeroes the gauge",
			run: func() {
				ws.close()
				waitForCondition(t, func() bool { return stats(t, ts).WatchesActive == 0 })
			},
			wantActive:    0,
			wantEventsMin: 4,
			wantFallbacks: 1,
		},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			step.run()
			st := stats(t, ts)
			if st.WatchesActive != step.wantActive {
				t.Errorf("watches_active = %d; want %d", st.WatchesActive, step.wantActive)
			}
			if st.DiffEventsSent < step.wantEventsMin {
				t.Errorf("diff_events_sent = %d; want >= %d", st.DiffEventsSent, step.wantEventsMin)
			}
			if st.DeltaFallbacks != step.wantFallbacks {
				t.Errorf("delta_fallbacks = %d; want %d", st.DeltaFallbacks, step.wantFallbacks)
			}
			if step.wantPatched > 0 && st.EnginesPatched < step.wantPatched {
				t.Errorf("engines_patched = %d; want >= %d", st.EnginesPatched, step.wantPatched)
			}
		})
	}
}

// TestWatchBadRequests pins the 4xx surface: unknown session, missing
// query, bad mode, and an invalid why-no instance must all fail the
// subscription up front (no stream, no registration).
func TestWatchBadRequests(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, chainDBText)

	if code, wire := callErr(t, http.MethodPost, ts.URL+"/v1/databases/nope/watch",
		WatchRequest{Query: "q :- R(x,y)"}); code != 404 || wire.Code != "session_not_found" {
		t.Fatalf("unknown session: %d %q", code, wire.Code)
	}
	if code, _ := callErr(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/watch",
		WatchRequest{}); code != 400 {
		t.Fatalf("missing query: %d", code)
	}
	if code, _ := callErr(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/watch",
		WatchRequest{Query: "q :- R(x,y)", Mode: "bogus"}); code != 400 {
		t.Fatalf("bad mode: %d", code)
	}
	// A why-no that cannot hold even with every candidate tuple is an
	// invalid instance: the subscription fails up front.
	if code, _ := callErr(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/watch",
		WatchRequest{Query: "q(x) :- R(x,y), S(y)", Answer: []string{"a9"}, WhyNo: true}); code != 422 {
		t.Fatalf("invalid why-no watch: %d", code)
	}
	if st := stats(t, ts); st.WatchesActive != 0 {
		t.Fatalf("failed subscriptions leaked the gauge: %d", st.WatchesActive)
	}
}

// TestWatchResumeReplaysMissedDiffs: a subscriber that disconnects,
// misses mutations, and resubscribes with resume_from gets exactly the
// retained diff frames it missed — no snapshot, no full_resync — and
// the stream then continues live. A second subscriber stays on the
// topic throughout, so even mutations affecting the watched query keep
// the diff chain alive (a subscriber-less topic hit by an affected
// mutation is dropped instead, and resumes pay a full_resync — that
// contract is TestWatchResumeBeyondBufferResyncs). Replaying missed
// plus live frames over the pre-disconnect state reconstructs the cold
// ranking.
func TestWatchResumeReplaysMissedDiffs(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, mutateDBText)
	const q = "q(x) :- R(x,y), S(y)"
	req := WatchRequest{Query: q, Answer: []string{"a4"}}

	keeper := openWatch(t, ts.URL, info.ID, req) // keeps the topic live
	keeper.next()
	ws := openWatch(t, ts.URL, info.ID, req)
	state := ApplyWatchEvent(nil, ws.next())
	ins := insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "R", Args: []string{"a4", "a2"}, Endo: true})
	last := ws.next()
	if last.Version != ins.Version {
		t.Fatalf("live frame at version %d, want %d", last.Version, ins.Version)
	}
	state = ApplyWatchEvent(state, last)
	ws.close()

	// Missed while disconnected: two mutations, both touching watched
	// relations, so the replayed frames carry real diffs.
	missed1 := insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "S", Args: []string{"w1"}, Endo: true})
	missed2 := insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "R", Args: []string{"a4", "w1"}, Endo: true})

	req.ResumeFrom = last.Version
	ws2 := openWatch(t, ts.URL, info.ID, req)
	for _, want := range []MutateResponse{missed1, missed2} {
		ev := ws2.next()
		if ev.Type != "diff" || ev.Version != want.Version {
			t.Fatalf("replayed frame = type %q version %d; want diff at %d", ev.Type, ev.Version, want.Version)
		}
		state = ApplyWatchEvent(state, ev)
	}
	cold := explainWhySo(t, ts.URL, info.ID, q, "a4")
	if rankingJSON(t, state) != rankingJSON(t, cold.Explanations) {
		t.Fatalf("resumed replay %s != cold %s", rankingJSON(t, state), rankingJSON(t, cold.Explanations))
	}

	// The resumed stream is live, not just a replay: the next mutation
	// arrives as an ordinary diff.
	ins = insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "T", Args: []string{"zz"}, Endo: true})
	if ev := ws2.next(); ev.Type != "diff" || ev.Version != ins.Version {
		t.Fatalf("post-resume live frame = %+v; want empty diff at %d", ev, ins.Version)
	}
}

// TestWatchResumeGapFree: resuming exactly at the topic's current
// version replays nothing — the subscriber continues from where it
// left off, and the next frame it sees is the next mutation's diff.
func TestWatchResumeGapFree(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, mutateDBText)
	const q = "q(x) :- R(x,y), S(y)"
	req := WatchRequest{Query: q, Answer: []string{"a4"}}

	ws := openWatch(t, ts.URL, info.ID, req)
	snap := ws.next()
	ws.close()

	// A gap-free resume has zero initial frames, and the handler only
	// flushes on frame writes — fire the mutation concurrently so the
	// subscribe call unblocks on its diff. Whether the mutation lands
	// before the resubscription (replayed) or after (delivered live),
	// the first frame is the same diff.
	done := make(chan MutateResponse, 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		done <- insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "R", Args: []string{"a4", "a2"}, Endo: true})
	}()
	req.ResumeFrom = snap.Version
	ws2 := openWatch(t, ts.URL, info.ID, req)
	ev := ws2.next()
	ins := <-done
	if ev.Type != "diff" || ev.Version != ins.Version {
		t.Fatalf("gap-free resume's first frame = type %q version %d; want diff at %d", ev.Type, ev.Version, ins.Version)
	}
}

// TestWatchResumeBeyondBufferResyncs: a resume_from the diff buffer no
// longer covers recovers with a single full_resync frame whose ranking
// byte-equals the cold explain — and so does a resume onto a fresh
// topic (created after the original owner's topic died, e.g. on the
// new owner after a handoff) whose floor is above the resume point.
func TestWatchResumeBeyondBufferResyncs(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, mutateDBText)
	const q = "q(x) :- R(x,y), S(y)"
	req := WatchRequest{Query: q, Answer: []string{"a4"}}

	// Fresh-topic case first: no one has watched this key, the topic's
	// floor is the current version, and a resume from version 1 (far in
	// the past) cannot be a diff chain.
	req.ResumeFrom = 1
	ws := openWatch(t, ts.URL, info.ID, req)
	ev := ws.next()
	if ev.Type != "full_resync" {
		t.Fatalf("fresh-topic stale resume frame = %q; want full_resync", ev.Type)
	}
	cold := explainWhySo(t, ts.URL, info.ID, q, "a4")
	if rankingJSON(t, ev.Ranking) != rankingJSON(t, cold.Explanations) {
		t.Fatalf("full_resync ranking %s != cold %s", rankingJSON(t, ev.Ranking), rankingJSON(t, cold.Explanations))
	}
	ws.close()

	// Aged-out case: push more frames than the topic retains, then
	// resume from before the retained window.
	resumeAt := ev.Version
	for i := 0; i < watchReplayBuffer+4; i++ {
		insertTuples(t, ts.URL, info.ID, TupleSpec{Rel: "S", Args: []string{fmt.Sprintf("w%d", i)}, Endo: true})
	}
	req.ResumeFrom = resumeAt
	ws2 := openWatch(t, ts.URL, info.ID, req)
	ev = ws2.next()
	if ev.Type != "full_resync" {
		t.Fatalf("aged-out resume frame = %q; want full_resync", ev.Type)
	}
	cold = explainWhySo(t, ts.URL, info.ID, q, "a4")
	if rankingJSON(t, ev.Ranking) != rankingJSON(t, cold.Explanations) {
		t.Fatalf("aged-out full_resync %s != cold %s", rankingJSON(t, ev.Ranking), rankingJSON(t, cold.Explanations))
	}
}

// TestWatchResumeOntoErroredTopic: resuming onto a topic wedged in an
// error state gets the error frame up front (not a bogus diff chain),
// and recovers with a full_resync once the instance is valid again.
func TestWatchResumeOntoErroredTopic(t *testing.T) {
	_, ts := newTest(t, Config{})
	info := upload(t, ts, "+R(a)\n+S(a)\n")
	const q = "q :- R(x), S(x)"
	req := WatchRequest{Query: q, WhyNo: true}

	ws := openWatch(t, ts.URL, info.ID, req)
	snap := ws.next()
	// Exogenous R(a), S(a) make q hold for real: the why-no instance is
	// invalid and the topic enters its error state.
	ins := insertTuples(t, ts.URL, info.ID,
		TupleSpec{Rel: "R", Args: []string{"a"}},
		TupleSpec{Rel: "S", Args: []string{"a"}})
	if ev := ws.next(); ev.Type != "error" {
		t.Fatalf("frame after invalidating mutation = %+v; want error", ev)
	}
	ws.close()

	req.ResumeFrom = snap.Version
	ws2 := openWatch(t, ts.URL, info.ID, req)
	ev := ws2.next()
	if ev.Type != "error" || ev.Error == nil {
		t.Fatalf("resume onto errored topic = %+v; want error frame", ev)
	}
	// Deleting one exogenous tuple re-validates the instance; the
	// resumed stream recovers like any live one.
	deleteTuple(t, ts.URL, info.ID, ins.TupleIDs[0])
	ev = ws2.next()
	if ev.Type != "full_resync" || len(ev.Ranking) == 0 {
		t.Fatalf("recovery frame = %+v; want non-empty full_resync", ev)
	}
}
