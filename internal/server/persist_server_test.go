package server

import (
	"encoding/json"
	"net/http"
	"os"
	"testing"

	"github.com/querycause/querycause/internal/persist"
)

func testStore(t *testing.T) *persist.Store {
	t.Helper()
	st, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	return st
}

// persistCfg disables the background flusher so these tests prove the
// synchronous paths (Flush, drain) do the writing.
func persistCfg(st *persist.Store) Config {
	return Config{ReapInterval: -1, Persist: st, PersistInterval: -1}
}

// TestWarmRestart is the tentpole invariant: stop a server, boot a new
// one over the same snapshot store, and the restored session must
// serve the same session id, prepared query id, warm certificate, and
// byte-identical ranking — without re-uploading anything.
func TestWarmRestart(t *testing.T) {
	st := testStore(t)
	srvA, tsA := newTest(t, persistCfg(st))

	info := upload(t, tsA, chainDBText)
	var prep PrepareQueryResponse
	if code := call(t, http.MethodPost, tsA.URL+"/v1/databases/"+info.ID+"/queries",
		PrepareQueryRequest{Query: "q(x) :- R(x,y), S(y)"}, &prep); code != 201 {
		t.Fatalf("prepare: status %d", code)
	}
	var before ExplainResponse
	if code := call(t, http.MethodPost, tsA.URL+"/v1/databases/"+info.ID+"/queries/"+prep.ID+"/whyso",
		ExplainRequest{Answer: []string{"a4"}}, &before); code != 200 {
		t.Fatalf("explain: status %d", code)
	}
	if err := srvA.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	srvB, tsB := newTest(t, persistCfg(st))
	if got := srvB.Restored(); got != 1 {
		t.Fatalf("restored %d sessions at boot, want 1", got)
	}
	// The session and its prepared query answer under their old ids.
	var after ExplainResponse
	if code := call(t, http.MethodPost, tsB.URL+"/v1/databases/"+info.ID+"/queries/"+prep.ID+"/whyso",
		ExplainRequest{Answer: []string{"a4"}}, &after); code != 200 {
		t.Fatalf("warm explain after restart: status %d", code)
	}
	if !after.CertificateCached {
		t.Fatalf("restarted server re-ran classification (certificate not restored)")
	}
	bj, _ := json.Marshal(before.Explanations)
	aj, _ := json.Marshal(after.Explanations)
	if string(bj) != string(aj) {
		t.Fatalf("restored ranking differs:\nbefore %s\nafter  %s", bj, aj)
	}

	// Byte-level check on the restored data plane: same dictionary,
	// same code vectors.
	sessA, okA := srvA.reg.get(info.ID)
	sessB, okB := srvB.reg.get(info.ID)
	if !okA || !okB {
		t.Fatalf("session lookup: A=%v B=%v", okA, okB)
	}
	da, db := sessA.db.Dict(), sessB.db.Dict()
	if da.Len() != db.Len() {
		t.Fatalf("dict sizes differ after restore: %d vs %d", da.Len(), db.Len())
	}
	for c := 0; c < da.Len(); c++ {
		if da.Value(uint32(c)) != db.Value(uint32(c)) {
			t.Fatalf("dict code %d differs: %q vs %q", c, da.Value(uint32(c)), db.Value(uint32(c)))
		}
	}
	for name, ra := range sessA.db.Relations {
		rb := sessB.db.Relation(name)
		if rb == nil {
			t.Fatalf("relation %s lost in restore", name)
		}
		for c := 0; c < ra.Arity; c++ {
			ca, cb := ra.Col(c), rb.Col(c)
			if len(ca) != len(cb) {
				t.Fatalf("relation %s col %d length differs", name, c)
			}
			for i := range ca {
				if ca[i] != cb[i] {
					t.Fatalf("relation %s col %d row %d code differs: %d vs %d", name, c, i, ca[i], cb[i])
				}
			}
		}
	}

	// A new upload on the restarted server must not collide with the
	// restored id (the id sequence advanced past it).
	info2 := upload(t, tsB, chainDBText)
	if info2.ID == info.ID {
		t.Fatalf("restarted server reissued session id %q", info.ID)
	}
}

// TestLazyLoadAfterEviction: an LRU-evicted session revives from its
// snapshot on the next request instead of 404ing.
func TestLazyLoadAfterEviction(t *testing.T) {
	st := testStore(t)
	cfg := persistCfg(st)
	cfg.MaxSessions = 1
	srv, ts := newTest(t, cfg)

	info1 := upload(t, ts, chainDBText)
	if err := srv.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	info2 := upload(t, ts, chainDBText) // evicts info1 from memory
	if info1.ID == info2.ID {
		t.Fatalf("duplicate session ids")
	}
	st1 := stats(t, ts)
	if st1.SessionsEvicted != 1 {
		t.Fatalf("SessionsEvicted = %d, want 1", st1.SessionsEvicted)
	}
	// info1 is gone from memory but revives from disk (and in turn
	// evicts info2 under MaxSessions=1).
	var out ExplainResponse
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info1.ID+"/whyso",
		ExplainRequest{Query: "q(x) :- R(x,y), S(y)", Answer: []string{"a4"}}, &out); code != 200 {
		t.Fatalf("explain on evicted session: status %d (lazy load failed)", code)
	}
	if len(out.Explanations) == 0 {
		t.Fatalf("lazy-loaded session returned no explanations")
	}
	st2 := stats(t, ts)
	if st2.RestoredSessions != 1 {
		t.Fatalf("RestoredSessions = %d, want 1", st2.RestoredSessions)
	}
}

// TestDeleteDropsSnapshot: DELETE removes the snapshot too, so a
// deleted session cannot lazily revive; deleting an evicted-but-
// snapshotted session succeeds.
func TestDeleteDropsSnapshot(t *testing.T) {
	st := testStore(t)
	srv, ts := newTest(t, persistCfg(st))
	info := upload(t, ts, chainDBText)
	if err := srv.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !st.Exists(info.ID) {
		t.Fatalf("no snapshot after flush")
	}
	if code := call(t, http.MethodDelete, ts.URL+"/v1/databases/"+info.ID, nil, nil); code != 204 {
		t.Fatalf("delete: status %d", code)
	}
	if st.Exists(info.ID) {
		t.Fatalf("snapshot survived DELETE")
	}
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/whyso",
		ExplainRequest{Query: "q(x) :- R(x,y), S(y)"}, nil); code != 404 {
		t.Fatalf("deleted session answered %d, want 404", code)
	}

	// Evict-then-delete: the session only exists as a snapshot.
	info2 := upload(t, ts, chainDBText)
	if err := srv.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	srv.reg.remove(info2.ID) // simulate eviction without touching disk
	if code := call(t, http.MethodDelete, ts.URL+"/v1/databases/"+info2.ID, nil, nil); code != 204 {
		t.Fatalf("delete of snapshotted-only session: status %d", code)
	}
	if st.Exists(info2.ID) {
		t.Fatalf("snapshot survived DELETE of evicted session")
	}
}

// TestCorruptSnapshotSkippedAtBoot: one corrupt file must not stop the
// server from restoring the rest.
func TestCorruptSnapshotSkippedAtBoot(t *testing.T) {
	st := testStore(t)
	srvA, tsA := newTest(t, persistCfg(st))
	good := upload(t, tsA, chainDBText)
	bad := upload(t, tsA, chainDBText)
	if err := srvA.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Corrupt one snapshot on disk.
	data := []byte("QCSN garbage that is long enough to parse a header from....")
	if err := os.WriteFile(st.Path(bad.ID), data, 0o644); err != nil {
		t.Fatalf("corrupting snapshot: %v", err)
	}
	srvB, tsB := newTest(t, persistCfg(st))
	if got := srvB.Restored(); got != 1 {
		t.Fatalf("restored %d sessions, want 1 (corrupt one skipped)", got)
	}
	if code := call(t, http.MethodPost, tsB.URL+"/v1/databases/"+good.ID+"/whyso",
		ExplainRequest{Query: "q(x) :- R(x,y), S(y)", Answer: []string{"a4"}}, nil); code != 200 {
		t.Fatalf("good session did not survive corrupt sibling: status %d", code)
	}
}
