package server

import (
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/querycause/querycause/internal/cluster"
)

// startCluster boots n replicas on real loopback listeners sharing one
// static peer list, the way -peers wires them in production. mutate
// lets a test adjust each node's config before boot.
func startCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) (urls []string, srvs []*Server) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls = make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	srvs = make([]*Server, n)
	for i := range srvs {
		cfg := Config{ReapInterval: -1, Self: urls[i], Peers: urls}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv := New(cfg)
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
		})
		srvs[i] = srv
	}
	return urls, srvs
}

// TestClusterMintsSelfOwnedIDs: every session id minted by a node must
// hash onto that node, so the uploading client never gets redirected
// on follow-up requests.
func TestClusterMintsSelfOwnedIDs(t *testing.T) {
	urls, _ := startCluster(t, 3, nil)
	ring := cluster.New(urls)
	for _, url := range urls {
		for i := 0; i < 5; i++ {
			var info DatabaseInfo
			if code := call(t, http.MethodPost, url+"/v1/databases",
				CreateDatabaseRequest{Database: chainDBText}, &info); code != 201 {
				t.Fatalf("upload to %s: status %d", url, code)
			}
			if owner := ring.Owner(info.ID); owner != url {
				t.Fatalf("node %s minted id %q owned by %s", url, info.ID, owner)
			}
		}
	}
}

func TestClusterTopologyEndpoint(t *testing.T) {
	urls, _ := startCluster(t, 3, nil)
	var resp ClusterResponse
	if code := call(t, http.MethodGet, urls[1]+"/v1/cluster", nil, &resp); code != 200 {
		t.Fatalf("cluster endpoint: status %d", code)
	}
	if resp.Self != urls[1] {
		t.Fatalf("Self = %q, want %q", resp.Self, urls[1])
	}
	if len(resp.Peers) != 3 {
		t.Fatalf("Peers = %v, want all 3 nodes", resp.Peers)
	}
	// A non-clustered server answers with an empty topology.
	_, ts := newTest(t, Config{})
	var solo ClusterResponse
	if code := call(t, http.MethodGet, ts.URL+"/v1/cluster", nil, &solo); code != 200 {
		t.Fatalf("solo cluster endpoint: status %d", code)
	}
	if solo.Self != "" || len(solo.Peers) != 0 {
		t.Fatalf("solo topology = %+v, want empty", solo)
	}
}

// wrongNodeFor returns the URL of a replica that does NOT own id.
func wrongNodeFor(t *testing.T, urls []string, id string) string {
	t.Helper()
	ring := cluster.New(urls)
	owner := ring.Owner(id)
	for _, url := range urls {
		if url != owner {
			return url
		}
	}
	t.Fatalf("no non-owner node for %s among %v", id, urls)
	return ""
}

// TestClusterRedirect: a request for a session at the wrong node gets
// a 307 pointing at the owner, with the path and query preserved; a
// redirect-following client completes transparently and gets the
// owner's answer.
func TestClusterRedirect(t *testing.T) {
	urls, srvs := startCluster(t, 3, nil)
	var info DatabaseInfo
	if code := call(t, http.MethodPost, urls[0]+"/v1/databases",
		CreateDatabaseRequest{Database: chainDBText}, &info); code != 201 {
		t.Fatalf("upload: status %d", code)
	}
	wrong := wrongNodeFor(t, urls, info.ID)
	wrongIdx := 0
	for i, url := range urls {
		if url == wrong {
			wrongIdx = i
		}
	}

	// Raw look at the redirect itself.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	body := `{"query": "q(x) :- R(x,y), S(y)", "answer": ["a4"]}`
	req, _ := http.NewRequest(http.MethodPost, wrong+"/v1/databases/"+info.ID+"/whyso", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := noFollow.Do(req)
	if err != nil {
		t.Fatalf("whyso via wrong node: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("wrong node answered %d, want 307", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, urls[0]) || !strings.HasSuffix(loc, "/v1/databases/"+info.ID+"/whyso") {
		t.Fatalf("redirect Location = %q, want owner %s + original path", loc, urls[0])
	}

	// A following client (http.NewRequest sets GetBody for byte
	// readers, so net/http re-POSTs the body on 307) gets the ranking.
	var out ExplainResponse
	if code := call(t, http.MethodPost, wrong+"/v1/databases/"+info.ID+"/whyso",
		ExplainRequest{Query: "q(x) :- R(x,y), S(y)", Answer: []string{"a4"}}, &out); code != 200 {
		t.Fatalf("redirected whyso: status %d", code)
	}
	if len(out.Explanations) == 0 {
		t.Fatalf("redirected whyso returned no explanations")
	}
	if got := srvs[wrongIdx].clusterRedirected.Load(); got < 2 {
		t.Fatalf("redirect counter = %d, want >= 2", got)
	}
	// The owner never redirects for its own session.
	if code := call(t, http.MethodPost, urls[0]+"/v1/databases/"+info.ID+"/whyso",
		ExplainRequest{Query: "q(x) :- R(x,y), S(y)", Answer: []string{"a4"}}, nil); code != 200 {
		t.Fatalf("owner whyso: status %d", code)
	}
}

// TestClusterProxy: in proxy mode the wrong node answers directly on
// the owner's behalf — same bytes, no redirect for the client to
// follow.
func TestClusterProxy(t *testing.T) {
	urls, srvs := startCluster(t, 3, func(_ int, cfg *Config) { cfg.ClusterProxy = true })
	var info DatabaseInfo
	if code := call(t, http.MethodPost, urls[0]+"/v1/databases",
		CreateDatabaseRequest{Database: chainDBText}, &info); code != 201 {
		t.Fatalf("upload: status %d", code)
	}
	wrong := wrongNodeFor(t, urls, info.ID)
	wrongIdx := 0
	for i, url := range urls {
		if url == wrong {
			wrongIdx = i
		}
	}

	exReq := ExplainRequest{Query: "q(x) :- R(x,y), S(y)", Answer: []string{"a4"}}
	var direct, proxied ExplainResponse
	if code := call(t, http.MethodPost, urls[0]+"/v1/databases/"+info.ID+"/whyso", exReq, &direct); code != 200 {
		t.Fatalf("direct whyso: status %d", code)
	}
	if code := call(t, http.MethodPost, wrong+"/v1/databases/"+info.ID+"/whyso", exReq, &proxied); code != 200 {
		t.Fatalf("proxied whyso: status %d", code)
	}
	dj, _ := json.Marshal(direct.Explanations)
	pj, _ := json.Marshal(proxied.Explanations)
	if string(dj) != string(pj) {
		t.Fatalf("proxied ranking differs from direct:\n%s\n%s", dj, pj)
	}
	if got := srvs[wrongIdx].clusterProxied.Load(); got == 0 {
		t.Fatalf("proxy counter stayed zero")
	}
	if got := srvs[wrongIdx].clusterRedirected.Load(); got != 0 {
		t.Fatalf("proxy mode issued %d redirects", got)
	}
}

// TestSessionBudgetShed: with a per-session budget of 1, a second
// concurrent explain against the same session is shed immediately with
// the budget_exceeded taxonomy code while the global worker budget
// still has room, and the shed counter records it.
func TestSessionBudgetShed(t *testing.T) {
	holding := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	_, ts := newTest(t, Config{
		WorkerBudget:   8,
		SessionBudget:  1,
		RequestTimeout: time.Minute,
		testHookAdmitted: func() {
			once.Do(func() {
				close(holding)
				<-gate
			})
		},
	})
	info := upload(t, ts, chainDBText)
	exReq := ExplainRequest{Query: "q(x) :- R(x,y), S(y)", Answer: []string{"a4"}}

	first := make(chan int, 1)
	go func() {
		first <- call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/whyso", exReq, nil)
	}()
	<-holding // the first explain is inside the handler, holding the session slot

	var errResp ErrorResponse
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/whyso",
		strings.NewReader(`{"query": "q(x) :- R(x,y), S(y)", "answer": ["a4"]}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("shed request: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-budget explain: status %d, want 503", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&errResp); err != nil {
		t.Fatalf("decoding shed error: %v", err)
	}
	resp.Body.Close()
	if errResp.Code != "budget_exceeded" {
		t.Fatalf("shed error code = %q, want budget_exceeded", errResp.Code)
	}
	if !strings.Contains(errResp.Error, "fairness budget") {
		t.Fatalf("shed error message = %q", errResp.Error)
	}

	close(gate)
	if code := <-first; code != 200 {
		t.Fatalf("held explain: status %d", code)
	}
	st := stats(t, ts)
	if st.SessionSheds != 1 {
		t.Fatalf("SessionSheds = %d, want 1", st.SessionSheds)
	}
	if st.SessionBudget != 1 {
		t.Fatalf("SessionBudget = %d, want 1", st.SessionBudget)
	}
	// The budget frees with the request: the same session explains fine
	// now.
	if code := call(t, http.MethodPost, ts.URL+"/v1/databases/"+info.ID+"/whyso", exReq, nil); code != 200 {
		t.Fatalf("post-shed explain: status %d", code)
	}
}

// TestClusterStatsCounters: clustered stats expose node identity and
// ring size.
func TestClusterStatsCounters(t *testing.T) {
	urls, _ := startCluster(t, 3, nil)
	var st StatsResponse
	if code := call(t, http.MethodGet, urls[2]+"/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if st.Node != urls[2] || st.ClusterPeers != 3 {
		t.Fatalf("cluster stats = node %q peers %d, want %q / 3", st.Node, st.ClusterPeers, urls[2])
	}
}
