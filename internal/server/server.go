// Package server implements querycaused, the long-running causality
// explanation service over the engine of Meliou et al. (VLDB 2010).
//
// The paper's central observation for a serving system is that the
// expensive artifacts are query-level, not request-level: the dichotomy
// certificate (Corollary 4.14), the rewritten Datalog¬ cause program
// (Theorem 3.4), and each answer's DNF lineage (Theorem 3.2) are all
// reusable across requests. The server therefore keeps a session
// registry of uploaded databases, prepared queries classified once, and
// LRU caches of certificates and per-answer engines, so a warm explain
// skips straight to responsibility ranking.
//
// API (JSON over HTTP):
//
//	POST   /v1/databases                      upload a database, get a session id
//	GET    /v1/databases                      list sessions
//	DELETE /v1/databases/{db}                 drop a session
//	POST   /v1/databases/{db}/queries         prepare (parse + classify + rewrite) a query
//	POST   /v1/databases/{db}/queries/{q}/whyso   explain an answer
//	POST   /v1/databases/{db}/queries/{q}/whyno   explain a non-answer
//	POST   /v1/databases/{db}/whyso           one-shot explain with an inline query
//	POST   /v1/databases/{db}/whyno
//	POST   /v1/databases/{db}/batch           many explains in one call (ExplainAll fan-out)
//	POST   /v1/databases/{db}/causes          actual causes only (no ranking); warms the engine cache
//	POST   /v1/databases/{db}/explain/stream  streamed ranking (NDJSON, one explanation per line)
//	POST   /v1/databases/{db}/watch           live explanation (NDJSON DiffEvent frames per mutation)
//	POST   /v1/databases/{db}/tuples          insert tuples (delta-maintains cached state, fans out watch frames)
//	DELETE /v1/databases/{db}/tuples/{id}     delete one tuple
//	GET    /v1/stats                          cache hit rates, in-flight gauge, session counts
//	GET    /v1/cluster                        membership + topology epoch
//	POST   /v1/cluster/nodes                  join a node to the ring (propagates + rebalances)
//	DELETE /v1/cluster/nodes?url=…            remove a node from the ring
//	GET    /healthz
//
// Errors carry a machine-readable taxonomy code (internal/qerr) in
// ErrorResponse.Code alongside the human-readable message; the Go
// client at the module root rehydrates codes into sentinel errors so
// errors.Is works identically against a remote server and the
// in-process library.
//
// Explain endpoints run under a server-wide worker budget (admission
// control): at most WorkerBudget requests compute concurrently, the
// rest queue until their request context — bounded by RequestTimeout —
// expires. Malformed inputs (bad tuples, bad query syntax, invalid
// why-no instances) are 4xx; only engine invariant violations are 5xx.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/cluster"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/persist"
	"github.com/querycause/querycause/internal/qerr"
	"github.com/querycause/querycause/internal/rel"
)

// Config tunes the server. The zero value gets sensible defaults from
// New.
type Config struct {
	// MaxSessions bounds the session registry; adding beyond it evicts
	// the least-recently-used session. Default 64.
	MaxSessions int
	// SessionTTL is the idle lifetime of a session; the background
	// reaper evicts sessions idle longer. Default 30m.
	SessionTTL time.Duration
	// ReapInterval is how often the reaper sweeps. Default SessionTTL/4
	// (capped at 1m); <0 disables the reaper (tests drive EvictIdle
	// directly).
	ReapInterval time.Duration
	// PreparedCacheSize, CertCacheSize, and EngineCacheSize bound the
	// per-session LRUs (prepared queries, certificate pairs, per-answer
	// engines). Defaults 256, 256, and 1024.
	PreparedCacheSize int
	CertCacheSize     int
	EngineCacheSize   int
	// WorkerBudget is the admission limit: how many explain/batch
	// requests may compute concurrently. Excess requests queue until
	// admitted or their context expires (503). Default
	// 2*GOMAXPROCS, minimum 2.
	WorkerBudget int
	// Parallelism is the ranking worker count per admitted request
	// (core.ResolveWorkers semantics; default 1, i.e. the worker budget
	// is the only source of concurrency).
	Parallelism int
	// RequestTimeout bounds each explain/batch request, queueing
	// included. Default 30s.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds uploaded request bodies. Default 32 MiB.
	MaxBodyBytes int64
	// Clock overrides time.Now, for eviction tests.
	Clock func() time.Time

	// Self and Peers turn on cluster mode: Self is this node's
	// advertised base URL (e.g. "http://10.0.0.5:8347") and Peers the
	// initial membership (Self included; it is added if missing).
	// Membership is dynamic after boot: POST/DELETE /v1/cluster/nodes
	// mint a new topology epoch, propagate it, and hand sessions to
	// their new owners (membership.go). The replicas form a
	// consistent-hash ring over session IDs (internal/cluster); session
	// IDs are minted to hash onto the creating node, and requests
	// arriving at a non-owner are 307-redirected to the owner (or
	// reverse-proxied, see ClusterProxy). Both empty (the default)
	// means not clustered.
	Self  string
	Peers []string
	// ClusterProxy makes non-owner nodes reverse-proxy requests to the
	// session owner instead of 307-redirecting the client.
	ClusterProxy bool
	// SessionBudget is the per-session fairness cap: at most this many
	// explains in flight (queued or computing) per session, requests
	// over it shed immediately with ErrBudgetExceeded (503). It rides
	// on top of the global WorkerBudget so one hot session cannot
	// starve the rest. 0 (default) = unlimited.
	SessionBudget int

	// WatchBudget caps the concurrent watch subscriptions per session;
	// subscriptions over it are shed with ErrBudgetExceeded (503).
	// Watches are long-lived, so they are budgeted separately from the
	// explain fairness cap. 0 (default) = unlimited.
	WatchBudget int
	// DisableDelta turns off the delta-maintenance layer: every stale
	// engine is dropped cold on mutation instead of patched in place.
	// Results are identical either way (the experiment harness compares
	// the two paths); this is the escape hatch and the baseline arm.
	DisableDelta bool

	// Persist, when non-nil, enables session durability: snapshots are
	// written behind state-changing requests and loaded on start (and
	// lazily on a registry miss), so restarts serve warm explains.
	Persist *persist.Store
	// PersistInterval is the write-behind flush cadence. Default 2s;
	// negative disables background flushing (Flush and drain still
	// write synchronously).
	PersistInterval time.Duration

	// testHookAdmitted, when non-nil, runs in every explain/batch
	// handler right after the request clears worker-budget admission
	// (slot held, in-flight gauge already bumped). Tests use it as a
	// barrier to hold requests/slots deterministically.
	testHookAdmitted func()
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.ReapInterval == 0 {
		c.ReapInterval = c.SessionTTL / 4
		if c.ReapInterval > time.Minute {
			c.ReapInterval = time.Minute
		}
	}
	if c.PreparedCacheSize <= 0 {
		c.PreparedCacheSize = 256
	}
	if c.CertCacheSize <= 0 {
		c.CertCacheSize = 256
	}
	if c.EngineCacheSize <= 0 {
		c.EngineCacheSize = 1024
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = 2 * runtime.GOMAXPROCS(0)
		if c.WorkerBudget < 2 {
			c.WorkerBudget = 2
		}
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Server is the querycaused HTTP service. Create with New, expose with
// Handler, stop the background reaper with Close.
type Server struct {
	cfg   Config
	reg   *registry
	mux   *http.ServeMux
	start time.Time

	sem chan struct{} // worker-budget admission

	inflight     atomic.Int64
	peakInflight atomic.Int64
	requests     atomic.Uint64
	explains     atomic.Uint64
	rejects      atomic.Uint64

	// Mutation counters: requests served by the tuple-mutation
	// endpoints, and the explanation state they incrementally
	// invalidated (see mutate.go). enginesPatched counts engines the
	// delta layer revived in place, deltaFallbacks the stale engines it
	// declined (dropped cold).
	mutations           atomic.Uint64
	engineInvalidations atomic.Uint64
	certInvalidations   atomic.Uint64
	enginesPatched      atomic.Uint64
	deltaFallbacks      atomic.Uint64

	// Watch counters: gauge of open watch streams and cumulative frames
	// written to them (see watch.go).
	watchesActive  atomic.Int64
	diffEventsSent atomic.Uint64

	// cluster is nil on non-clustered servers; see cluster.go and
	// membership.go. topoChangedAt is the wall clock of the last
	// topology change this node observed (unix nanos); sessionOf uses it
	// to answer 503-retry instead of 404 for sessions that may be mid-
	// handoff. The handoff counters track session transfers (out:
	// shipped to a new owner; in: received; fails: transfer attempts
	// that did not complete — the session stayed on the old owner).
	cluster           *clusterState
	clusterRedirected atomic.Uint64
	clusterProxied    atomic.Uint64
	sessionSheds      atomic.Uint64
	topoChangedAt     atomic.Int64
	handoffsOut       atomic.Uint64
	handoffsIn        atomic.Uint64
	handoffFails      atomic.Uint64

	// store/wb are nil without Config.Persist; see persist.go.
	store    *persist.Store
	wb       *persist.WriteBehind
	restored atomic.Uint64

	reaperDone chan struct{}
	closed     atomic.Bool
}

// New builds a server and starts its idle-session reaper (unless
// disabled). With Config.Persist set it rehydrates every snapshot on
// disk before returning, so the server is warm the moment it serves;
// with Self+Peers it joins the consistent-hash cluster (initial
// membership; the ring grows and shrinks at runtime via the
// /v1/cluster/nodes admin endpoints). It
// panics on malformed cluster config (an unparsable peer URL) — boot
// validation, not a runtime condition.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		reg:        newRegistry(cfg.MaxSessions, cfg.PreparedCacheSize, cfg.CertCacheSize, cfg.EngineCacheSize, cfg.Clock),
		mux:        http.NewServeMux(),
		start:      cfg.Clock(),
		sem:        make(chan struct{}, cfg.WorkerBudget),
		reaperDone: make(chan struct{}),
	}
	s.reg.disableDelta = cfg.DisableDelta
	if cfg.Self != "" && len(cfg.Peers) > 0 {
		nodes := append([]string(nil), cfg.Peers...)
		ring := cluster.NewVersioned(append(nodes, cfg.Self)) // ring dedups; Self is always a member
		cs, err := newClusterState(cfg, ring)
		if err != nil {
			panic(err)
		}
		s.cluster = cs
		// Mint session ids that hash onto this node, so the uploading
		// client keeps talking to the owner with no redirects. The
		// closure reads the live ring: after a membership change, new
		// ids hash onto this node under the topology of the moment.
		s.reg.owns = func(id string) bool { return ring.Owner(id) == cfg.Self }
	}
	if cfg.Persist != nil {
		s.store = cfg.Persist
		s.restoreAll()
		s.wb = persist.NewWriteBehind(cfg.Persist, persistInterval(cfg.PersistInterval))
	}
	s.routes()
	if cfg.ReapInterval > 0 {
		go s.reap()
	} else {
		close(s.reaperDone)
	}
	return s
}

// Close stops the background reaper and the write-behind flusher
// (running one final flush). In-flight requests are unaffected; use
// http.Server.Shutdown to drain those.
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		if s.cfg.ReapInterval > 0 {
			close(s.reaperDone)
		}
		if s.wb != nil {
			_ = s.wb.Close()
		}
	}
}

// Handler returns the HTTP handler for the full API surface. On a
// clustered server it is wrapped with ownership routing (cluster.go).
func (s *Server) Handler() http.Handler {
	if s.cluster != nil {
		return s.clusterHandler()
	}
	return s.mux
}

// EvictIdle evicts sessions idle longer than the configured TTL and
// returns their ids. The reaper calls this; tests may call it directly.
func (s *Server) EvictIdle() []string { return s.reg.evictIdle(s.cfg.SessionTTL) }

func (s *Server) reap() {
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.reg.evictIdle(s.cfg.SessionTTL)
		case <-s.reaperDone:
			return
		}
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("POST /v1/cluster/nodes", s.handleClusterJoin)
	s.mux.HandleFunc("DELETE /v1/cluster/nodes", s.handleClusterRemove)
	s.mux.HandleFunc("PUT /v1/cluster/topology", s.handleClusterTopology)
	s.mux.HandleFunc("PUT /v1/cluster/sessions/{db}", s.handleSessionTransfer)
	s.mux.HandleFunc("POST /v1/databases", s.handleCreateDB)
	s.mux.HandleFunc("GET /v1/databases", s.handleListDBs)
	s.mux.HandleFunc("DELETE /v1/databases/{db}", s.handleDeleteDB)
	s.mux.HandleFunc("POST /v1/databases/{db}/queries", s.handlePrepare)
	s.mux.HandleFunc("POST /v1/databases/{db}/queries/{q}/whyso", s.explainHandler(false, true))
	s.mux.HandleFunc("POST /v1/databases/{db}/queries/{q}/whyno", s.explainHandler(true, true))
	s.mux.HandleFunc("POST /v1/databases/{db}/whyso", s.explainHandler(false, false))
	s.mux.HandleFunc("POST /v1/databases/{db}/whyno", s.explainHandler(true, false))
	s.mux.HandleFunc("POST /v1/databases/{db}/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/databases/{db}/causes", s.handleCauses)
	s.mux.HandleFunc("POST /v1/databases/{db}/explain/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/databases/{db}/watch", s.handleWatch)
	s.mux.HandleFunc("POST /v1/databases/{db}/tuples", s.handleInsertTuples)
	s.mux.HandleFunc("DELETE /v1/databases/{db}/tuples/{id}", s.handleDeleteTuple)
}

// ---- plumbing ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeErr serializes a taxonomy-aware error: the sentinel's HTTP
// status and wire code when err is tagged (internal/qerr), the
// string-prefix fallback of statusOf otherwise.
func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), ErrorResponse{Error: err.Error(), Code: qerr.CodeOf(err)})
}

// decodeJSON strictly decodes the request body into v; errors are the
// caller's 400.
func decodeJSON(r *http.Request, maxBytes int64, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// admit applies the worker budget: it blocks until a computation slot
// frees or ctx expires. The returned release must be called when the
// computation finishes; ok=false means the request's context died
// queueing (timeout or client disconnect). A request whose context is
// already dead when a slot frees is rejected rather than computed.
func (s *Server) admit(ctx context.Context) (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		if ctx.Err() != nil {
			<-s.sem
			s.rejects.Add(1)
			return nil, false
		}
		return func() { <-s.sem }, true
	case <-ctx.Done():
		s.rejects.Add(1)
		return nil, false
	}
}

// trackInflight maintains the in-flight gauge and its high-water mark
// for one explain/batch request; call the returned func on completion.
func (s *Server) trackInflight() func() {
	n := s.inflight.Add(1)
	for {
		peak := s.peakInflight.Load()
		if n <= peak || s.peakInflight.CompareAndSwap(peak, n) {
			break
		}
	}
	return func() { s.inflight.Add(-1) }
}

// handoffGrace is how long after a topology change a missing session
// answers 503-with-Retry-After instead of 404: the session may be in
// flight between its old and new owner, and a 404 would make clients
// report a durable failure for a transient condition.
const handoffGrace = 5 * time.Second

func (s *Server) sessionOf(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("db")
	sess, ok := s.reg.get(id)
	if !ok {
		// Lazy warm path: an evicted (or freshly-restarted-node) session
		// revives from its on-disk snapshot.
		sess, ok = s.loadSession(id)
	}
	if !ok {
		if s.cluster != nil {
			if at := s.topoChangedAt.Load(); at != 0 && time.Since(time.Unix(0, at)) < handoffGrace {
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, "session %q may be migrating after a topology change; retry", id)
				return nil, false
			}
		}
		writeErr(w, errSessionNotFound(id))
		return nil, false
	}
	return sess, true
}

func errSessionNotFound(id string) error {
	return qerr.Tag(qerr.ErrSessionNotFound, fmt.Errorf("unknown database session %q", id))
}

func errQueryNotFound(id string) error {
	return qerr.Tag(qerr.ErrQueryNotFound, fmt.Errorf("unknown prepared query %q", id))
}

// errBudget tags an admission/timeout failure with its taxonomy code.
func errBudget(format string, args ...any) error {
	return qerr.Tag(qerr.ErrBudgetExceeded, fmt.Errorf(format, args...))
}

// clampWorkers resolves a request's parallelism override: values <= 0
// mean the server's configured per-request default, and no request may
// spawn more compute concurrency than the worker budget admits in
// total. Every explain-family handler (one-shot, batch, stream) uses
// this one rule.
func (s *Server) clampWorkers(requested int) int {
	if requested <= 0 {
		requested = s.cfg.Parallelism
	}
	if requested > s.cfg.WorkerBudget {
		requested = s.cfg.WorkerBudget
	}
	return requested
}

func toValues(ss []string) []rel.Value {
	out := make([]rel.Value, len(ss))
	for i, v := range ss {
		out[i] = rel.Value(v)
	}
	return out
}

func explanationDTOs(db *rel.Database, exps []core.Explanation) []ExplanationDTO {
	out := make([]ExplanationDTO, len(exps))
	for i, e := range exps {
		out[i] = NewExplanationDTO(db, e)
	}
	return out
}

// NewExplanationDTO renders one explanation in the wire shape. The
// difftest harness uses it to compare server replies byte-for-byte
// against library rankings without maintaining a mirror encoder.
func NewExplanationDTO(db *rel.Database, e core.Explanation) ExplanationDTO {
	d := ExplanationDTO{
		TupleID:         int(e.Tuple),
		Tuple:           db.Tuple(e.Tuple).String(),
		Rho:             e.Rho,
		ContingencySize: e.ContingencySize,
		Method:          e.Method.String(),
	}
	for _, id := range e.Contingency {
		d.Contingency = append(d.Contingency, db.Tuple(id).String())
		d.ContingencyIDs = append(d.ContingencyIDs, int(id))
	}
	return d
}

// statusOf maps an engine-construction error to an HTTP status: inputs
// the client got wrong are 4xx, never 5xx. Tagged errors (internal/
// qerr) carry their canonical status; the string-prefix fallback
// covers legacy untagged errors — syntax problems (parser:) are 400,
// semantically invalid instances (rel:, whyno:, core:) are 422.
func statusOf(err error) int {
	if s := qerr.StatusOf(err, 0); s != 0 {
		return s
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "parser:"):
		return http.StatusBadRequest
	case strings.Contains(msg, "rel:"),
		strings.Contains(msg, "whyno:"),
		strings.Contains(msg, "core:"):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// ---- handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", UptimeSeconds: s.cfg.Clock().Sub(s.start).Seconds()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	certs, engines := s.reg.cacheStats()
	prepared := 0
	for _, sess := range s.reg.list() {
		prepared += sess.preparedCount()
	}
	resp := StatsResponse{
		UptimeSeconds:    s.cfg.Clock().Sub(s.start).Seconds(),
		Sessions:         s.reg.len(),
		MaxSessions:      s.cfg.MaxSessions,
		SessionsEvicted:  s.reg.evicted.Load(),
		PreparedQueries:  prepared,
		Inflight:         s.inflight.Load(),
		PeakInflight:     s.peakInflight.Load(),
		WorkerBudget:     s.cfg.WorkerBudget,
		RequestsTotal:    s.requests.Load(),
		ExplainsTotal:    s.explains.Load(),
		AdmissionRejects: s.rejects.Load(),
		CertCache:        certs,
		EngineCache:      engines,
		SessionBudget:    s.cfg.SessionBudget,
		SessionSheds:     s.sessionSheds.Load(),
		MutationsTotal:   s.mutations.Load(),
		EnginesInvalid:   s.engineInvalidations.Load(),
		CertsInvalid:     s.certInvalidations.Load(),
		EnginesPatched:   s.enginesPatched.Load(),
		WatchesActive:    s.watchesActive.Load(),
		DiffEventsSent:   s.diffEventsSent.Load(),
		DeltaFallbacks:   s.deltaFallbacks.Load(),
		WatchBudget:      s.cfg.WatchBudget,
	}
	if s.cluster != nil {
		topo := s.cluster.ring.Current()
		resp.Node = s.cluster.self
		resp.ClusterPeers = len(topo.Nodes)
		resp.ClusterEpoch = topo.Epoch
		resp.ClusterRedirected = s.clusterRedirected.Load()
		resp.ClusterProxied = s.clusterProxied.Load()
		resp.HandoffsOut = s.handoffsOut.Load()
		resp.HandoffsIn = s.handoffsIn.Load()
		resp.HandoffFails = s.handoffFails.Load()
	}
	if s.store != nil {
		resp.PersistEnabled = true
		resp.RestoredSessions = s.restored.Load()
		if s.wb != nil {
			resp.SnapshotWrites = s.wb.Writes()
			resp.SnapshotsPending = s.wb.Pending()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreateDB(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var text string
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req CreateDatabaseRequest
		if err := decodeJSON(r, s.cfg.MaxBodyBytes, &req); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		text = req.Database
	} else {
		raw, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		text = string(raw)
	}
	db, err := parser.ParseDatabase(strings.NewReader(text))
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing database: %v", err)
		return
	}
	if db.NumTuples() == 0 {
		writeError(w, http.StatusBadRequest, "empty database: no tuples parsed")
		return
	}
	sess := s.reg.add(db)
	s.markDirty(sess)
	writeJSON(w, http.StatusCreated, s.infoOf(sess))
}

func (s *Server) infoOf(sess *session) DatabaseInfo {
	sess.dbMu.RLock()
	live, version := sess.db.NumLive(), sess.db.Version()
	endo, relations := sess.endo, len(sess.db.Relations)
	sess.dbMu.RUnlock()
	return DatabaseInfo{
		ID:          sess.id,
		Tuples:      live,
		Version:     version,
		Endogenous:  endo,
		Relations:   relations,
		Prepared:    sess.preparedCount(),
		IdleSeconds: int64(sess.idle(s.cfg.Clock()).Seconds()),
	}
}

func (s *Server) handleListDBs(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	sessions := s.reg.list()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	out := make([]DatabaseInfo, len(sessions))
	for i, sess := range sessions {
		out[i] = s.infoOf(sess)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDeleteDB(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("db")
	removed := s.reg.remove(id)
	if s.store != nil {
		// Dropping a session also drops its durability: forget any
		// pending mark and remove the snapshot so it cannot revive.
		if s.wb != nil {
			s.wb.Forget(id)
		}
		if s.store.Exists(id) {
			// Not live but snapshotted (e.g. evicted): deleting the
			// snapshot is still a successful delete of the session.
			removed = s.store.Delete(id) == nil || removed
		}
	}
	if !removed {
		writeErr(w, errSessionNotFound(id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	sess, ok := s.sessionOf(w, r)
	if !ok {
		return
	}
	var req PrepareQueryRequest
	if err := decodeJSON(r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, err := parser.ParseQuery(req.Query)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Validation, classification, and program generation all read the
	// session database; hold off concurrent mutations for the duration.
	sess.dbMu.RLock()
	defer sess.dbMu.RUnlock()
	if err := q.Validate(sess.db); err != nil {
		writeErr(w, err)
		return
	}
	pq, certs, certHit, err := sess.prepare(q, func() string {
		// Cause programs (Theorem 3.4) exist for Boolean queries; a
		// failed generation just leaves the field empty.
		prog, err := causegen.Generate(q, causegen.HintsFromDB(sess.db))
		if err != nil {
			return ""
		}
		return prog.String()
	})
	if err != nil {
		writeErr(w, fmt.Errorf("classifying query: %w", err))
		return
	}
	s.markDirty(sess)
	writeJSON(w, http.StatusCreated, PrepareQueryResponse{
		ID:                pq.id,
		Database:          sess.id,
		Query:             q.String(),
		Class:             certs.sound.Class.String(),
		ClassPaper:        certs.paper.Class.String(),
		Program:           pq.program,
		CertificateCached: certHit,
	})
}

// explainHandler builds the whyso/whyno handler; prepared selects the
// /queries/{q}/ variant over the inline-query variant.
func (s *Server) explainHandler(whyNo, prepared bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.explains.Add(1)
		done := s.trackInflight()
		defer done()
		sess, ok := s.sessionOf(w, r)
		if !ok {
			return
		}
		sessRelease, ok := s.admitSession(sess)
		if !ok {
			writeErr(w, errSessionBudget(sess, s.cfg.SessionBudget))
			return
		}
		defer sessRelease()
		// Everything below evaluates over the session database (query
		// validation, engine construction, ranking, DTO rendering);
		// mutations serialize behind the whole request.
		sess.dbMu.RLock()
		defer sess.dbMu.RUnlock()
		var req ExplainRequest
		if err := decodeJSON(r, s.cfg.MaxBodyBytes, &req); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		mode, err := core.ParseMode(req.Mode)
		if err != nil {
			writeErr(w, err)
			return
		}

		var q *rel.Query
		qID := ""
		if prepared {
			pq, ok := sess.lookupQuery(r.PathValue("q"))
			if !ok {
				writeErr(w, errQueryNotFound(r.PathValue("q")))
				return
			}
			if req.Query != "" {
				writeError(w, http.StatusBadRequest, "inline query not allowed on a prepared-query endpoint")
				return
			}
			q, qID = pq.q, pq.id
		} else {
			if req.Query == "" {
				writeError(w, http.StatusBadRequest, "missing query")
				return
			}
			q, err = parser.ParseQuery(req.Query)
			if err != nil {
				writeErr(w, err)
				return
			}
			if err := q.Validate(sess.db); err != nil {
				writeErr(w, err)
				return
			}
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		release, ok := s.admit(ctx)
		if !ok {
			writeErr(w, errBudget("server at capacity: %v", ctx.Err()))
			return
		}
		defer release()
		if s.cfg.testHookAdmitted != nil {
			s.cfg.testHookAdmitted()
		}

		started := time.Now()
		eng, engineHit, certHit, err := sess.engineFor(q, qID, toValues(req.Answer), whyNo)
		if err != nil {
			writeErr(w, err)
			return
		}
		if !certHit {
			s.markDirty(sess) // a fresh classification is worth persisting
		}
		exps, err := eng.RankAllParallel(ctx, mode, core.ParallelOptions{Workers: s.clampWorkers(req.Parallelism)})
		if err != nil {
			if ctx.Err() != nil {
				writeErr(w, errBudget("request canceled: %v", ctx.Err()))
			} else {
				writeError(w, http.StatusInternalServerError, "ranking: %v", err)
			}
			return
		}
		writeJSON(w, http.StatusOK, ExplainResponse{
			Database:          sess.id,
			QueryID:           qID,
			Query:             q.String(),
			Answer:            req.Answer,
			WhyNo:             whyNo,
			EngineCached:      engineHit,
			CertificateCached: certHit,
			Causes:            len(eng.Causes()),
			Explanations:      explanationDTOs(sess.db, exps),
			ElapsedMicros:     time.Since(started).Microseconds(),
		})
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.explains.Add(1)
	done := s.trackInflight()
	defer done()
	sess, ok := s.sessionOf(w, r)
	if !ok {
		return
	}
	sessRelease, ok := s.admitSession(sess)
	if !ok {
		writeErr(w, errSessionBudget(sess, s.cfg.SessionBudget))
		return
	}
	defer sessRelease()
	// The batch evaluates over the session database end to end;
	// mutations serialize behind it.
	sess.dbMu.RLock()
	defer sess.dbMu.RUnlock()
	var req BatchExplainRequest
	if err := decodeJSON(r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		writeErr(w, err)
		return
	}

	// Resolve every item to a query up front so URL-level errors (bad
	// syntax, unknown prepared id) surface per-item without spending
	// worker budget.
	type resolved struct {
		q   *rel.Query
		qID string
		err error
	}
	items := make([]resolved, len(req.Requests))
	creqs := make([]core.BatchRequest, len(req.Requests))
	for i, item := range req.Requests {
		switch {
		case item.QueryID != "" && item.Query != "":
			items[i].err = fmt.Errorf("item %d: query and query_id are mutually exclusive", i)
		case item.QueryID != "":
			pq, ok := sess.lookupQuery(item.QueryID)
			if !ok {
				items[i].err = qerr.Tag(qerr.ErrQueryNotFound, fmt.Errorf("item %d: unknown prepared query %q", i, item.QueryID))
				break
			}
			items[i].q, items[i].qID = pq.q, pq.id
		case item.Query != "":
			q, err := parser.ParseQuery(item.Query)
			if err != nil {
				items[i].err = fmt.Errorf("item %d: %w", i, err)
				break
			}
			if err := q.Validate(sess.db); err != nil {
				items[i].err = fmt.Errorf("item %d: %w", i, err)
				break
			}
			items[i].q = q
		default:
			items[i].err = fmt.Errorf("item %d: missing query or query_id", i)
		}
		creqs[i] = core.BatchRequest{Query: items[i].q, Answer: toValues(item.Answer), WhyNo: item.WhyNo}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	release, ok := s.admit(ctx)
	if !ok {
		writeErr(w, errBudget("server at capacity: %v", ctx.Err()))
		return
	}
	defer release()
	if s.cfg.testHookAdmitted != nil {
		s.cfg.testHookAdmitted()
	}

	workers := s.clampWorkers(req.Parallelism)
	hits := make([]bool, len(creqs))
	results, err := core.ExplainBatch(ctx, sess.db, creqs, core.BatchRunOptions{
		Workers: workers,
		Mode:    mode,
		NewEngine: func(db *rel.Database, i int, creq core.BatchRequest) (*core.Engine, error) {
			if items[i].err != nil {
				return nil, items[i].err
			}
			eng, engineHit, _, err := sess.engineFor(items[i].q, items[i].qID, creq.Answer, creq.WhyNo)
			hits[i] = engineHit
			return eng, err
		},
	})
	if err != nil {
		writeErr(w, errBudget("batch canceled: %v", err))
		return
	}
	s.markDirty(sess) // batch items may have classified new shapes
	resp := BatchExplainResponse{Database: sess.id, Results: make([]BatchItemResult, len(results))}
	for i, res := range results {
		out := BatchItemResult{EngineCached: hits[i]}
		if res.Err != nil {
			out.Error = res.Err.Error()
			out.Code = qerr.CodeOf(res.Err)
		} else {
			out.Causes = len(res.Explanations)
			out.Explanations = explanationDTOs(sess.db, res.Explanations)
		}
		resp.Results[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveQuery resolves a body-addressed query reference: a prepared
// query id, or an inline query string parsed and validated against the
// session database. Exactly one must be given.
func (s *Server) resolveQuery(sess *session, queryID, inline string) (*rel.Query, string, error) {
	switch {
	case queryID != "" && inline != "":
		return nil, "", qerr.Tag(qerr.ErrBadQuery, errors.New("query and query_id are mutually exclusive"))
	case queryID != "":
		pq, ok := sess.lookupQuery(queryID)
		if !ok {
			return nil, "", errQueryNotFound(queryID)
		}
		return pq.q, pq.id, nil
	case inline != "":
		q, err := parser.ParseQuery(inline)
		if err != nil {
			return nil, "", err
		}
		if err := q.Validate(sess.db); err != nil {
			return nil, "", err
		}
		return q, "", nil
	}
	return nil, "", qerr.Tag(qerr.ErrBadQuery, errors.New("missing query or query_id"))
}

// handleCauses returns the actual causes (Theorem 3.2) of one answer
// or non-answer without ranking them — the polynomial half of an
// explanation. The per-answer engine it builds is cached, so a
// following explain or stream against the same request skips straight
// to responsibility ranking.
func (s *Server) handleCauses(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	done := s.trackInflight()
	defer done()
	sess, ok := s.sessionOf(w, r)
	if !ok {
		return
	}
	sessRelease, ok := s.admitSession(sess)
	if !ok {
		writeErr(w, errSessionBudget(sess, s.cfg.SessionBudget))
		return
	}
	defer sessRelease()
	// Lineage computation reads the session database; mutations
	// serialize behind the request.
	sess.dbMu.RLock()
	defer sess.dbMu.RUnlock()
	var req CausesRequest
	if err := decodeJSON(r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, qID, err := s.resolveQuery(sess, req.QueryID, req.Query)
	if err != nil {
		writeErr(w, err)
		return
	}

	// Lineage computation dominates a cold causes call; run it under
	// the same admission budget as explains.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	release, ok := s.admit(ctx)
	if !ok {
		writeErr(w, errBudget("server at capacity: %v", ctx.Err()))
		return
	}
	defer release()
	if s.cfg.testHookAdmitted != nil {
		s.cfg.testHookAdmitted()
	}

	eng, engineHit, certHit, err := sess.engineFor(q, qID, toValues(req.Answer), req.WhyNo)
	if err != nil {
		writeErr(w, err)
		return
	}
	if !certHit {
		s.markDirty(sess)
	}
	causes := eng.Causes()
	ids := make([]int, len(causes))
	for i, id := range causes {
		ids[i] = int(id)
	}
	writeJSON(w, http.StatusOK, CausesResponse{
		Database:     sess.id,
		QueryID:      qID,
		Query:        q.String(),
		Answer:       req.Answer,
		WhyNo:        req.WhyNo,
		EngineCached: engineHit,
		Causes:       ids,
	})
}

// handleStream serves a ranking as NDJSON: one StreamEvent line per
// explanation the moment its responsibility computation completes,
// then a terminal done (or error) event. On the NP-hard side of the
// dichotomy this turns a minutes-long blocking ranking into a stream
// whose first line arrives after a single exact search.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.explains.Add(1)
	done := s.trackInflight()
	defer done()
	sess, ok := s.sessionOf(w, r)
	if !ok {
		return
	}
	sessRelease, ok := s.admitSession(sess)
	if !ok {
		writeErr(w, errSessionBudget(sess, s.cfg.SessionBudget))
		return
	}
	defer sessRelease()
	// The stream ranks over the session database until the terminal
	// event; mutations serialize behind the entire stream.
	sess.dbMu.RLock()
	defer sess.dbMu.RUnlock()
	var req StreamExplainRequest
	if err := decodeJSON(r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		writeErr(w, err)
		return
	}
	q, qID, err := s.resolveQuery(sess, req.QueryID, req.Query)
	if err != nil {
		writeErr(w, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	release, ok := s.admit(ctx)
	if !ok {
		writeErr(w, errBudget("server at capacity: %v", ctx.Err()))
		return
	}
	defer release()
	if s.cfg.testHookAdmitted != nil {
		s.cfg.testHookAdmitted()
	}

	started := time.Now()
	eng, _, certHit, err := sess.engineFor(q, qID, toValues(req.Answer), req.WhyNo)
	if err != nil {
		writeErr(w, err)
		return
	}
	if !certHit {
		s.markDirty(sess)
	}

	workers := s.clampWorkers(req.Parallelism)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev StreamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false // client went away; the ranged stream stops the workers
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	n := 0
	for ex, serr := range eng.RankStream(ctx, mode, core.StreamOptions{Workers: workers, CompletionOrder: req.CompletionOrder}) {
		if serr != nil {
			// Status is already written; the taxonomy travels in-band.
			if ctx.Err() != nil {
				serr = errBudget("stream canceled: %v", serr)
			}
			emit(StreamEvent{Error: &ErrorResponse{Error: serr.Error(), Code: qerr.CodeOf(serr)}})
			return
		}
		n++
		dto := NewExplanationDTO(sess.db, ex)
		if !emit(StreamEvent{Explanation: &dto}) {
			return
		}
	}
	emit(StreamEvent{Done: &StreamDone{Causes: n, ElapsedMicros: time.Since(started).Microseconds()}})
}
