// Package imdb builds the movie-database instances of the paper's
// running example (Meliou et al., VLDB 2010, Figures 1 and 2): the
// genres-of-Burton-movies query, the exact micro-instance behind the
// Musical answer of Fig. 2, and a seeded synthetic generator for
// scaling experiments.
//
// Schema (Fig. 1):
//
//	Director(did, firstName, lastName)
//	Movie(mid, name, year, rank)
//	MovieDirectors(did, mid)
//	Genre(mid, genre)
//
// Following Example 1.1's default, Director and Movie tuples are
// endogenous; MovieDirectors and Genre tuples are exogenous.
package imdb

import (
	"fmt"
	"math/rand"

	"github.com/querycause/querycause/internal/rel"
)

// GenreQuery is the SQL query of Fig. 1 as a conjunctive query:
//
//	q(genre) :- Director(did, fn, 'Burton'), MovieDirectors(did, mid),
//	            Movie(mid, name, year, rank), Genre(mid, genre)
func GenreQuery() *rel.Query {
	return &rel.Query{
		Name: "q",
		Head: []rel.Term{rel.V("genre")},
		Atoms: []rel.Atom{
			rel.NewAtom("Director", rel.V("did"), rel.V("fn"), rel.C("Burton")),
			rel.NewAtom("MovieDirectors", rel.V("did"), rel.V("mid")),
			rel.NewAtom("Movie", rel.V("mid"), rel.V("name"), rel.V("year"), rel.V("rank")),
			rel.NewAtom("Genre", rel.V("mid"), rel.V("genre")),
		},
	}
}

// Tuples of the Fig. 2 micro-instance, keyed for test assertions.
const (
	KeyDavid    = "Director:David"
	KeyHumphrey = "Director:Humphrey"
	KeyTim      = "Director:Tim"
	KeySweeney  = "Movie:Sweeney Todd"
	KeyMelody   = "Movie:The Melody Lingers On"
	KeyLetsFall = "Movie:Let's Fall in Love"
	KeyManon    = "Movie:Manon Lescaut"
	KeyFlight   = "Movie:Flight"
	KeyCandide  = "Movie:Candide"
)

// Micro builds the exact Fig. 2a instance: the lineage of the Musical
// answer. The director→movie assignment is the unique one consistent
// with the responsibilities of Fig. 2b (Example 2.4): David Burton
// directed the 1930s musicals, Humphrey Burton the three filmed operas
// and concerts, Tim Burton only Sweeney Todd.
//
// It returns the database and a key→TupleID map for the endogenous
// tuples (see the Key* constants).
func Micro() (*rel.Database, map[string]rel.TupleID) {
	db := rel.NewDatabase()
	keys := make(map[string]rel.TupleID)

	directors := []struct {
		key, did, first string
	}{
		{KeyDavid, "23456", "David"},
		{KeyHumphrey, "23468", "Humphrey"},
		{KeyTim, "23488", "Tim"},
	}
	for _, d := range directors {
		keys[d.key] = db.MustAdd("Director", true, rel.Value(d.did), rel.Value(d.first), "Burton")
	}

	movies := []struct {
		key, mid, name, year, did string
	}{
		{KeyMelody, "565577", "The Melody Lingers On", "1935", "23456"},
		{KeyLetsFall, "359516", "Let's Fall in Love", "1933", "23456"},
		{KeyManon, "389987", "Manon Lescaut", "1997", "23468"},
		{KeyFlight, "173629", "Flight", "1999", "23468"},
		{KeyCandide, "6539", "Candide", "1989", "23468"},
		{KeySweeney, "526338", "Sweeney Todd", "2007", "23488"},
	}
	for _, m := range movies {
		keys[m.key] = db.MustAdd("Movie", true, rel.Value(m.mid), rel.Value(m.name), rel.Value(m.year), "0")
		db.MustAdd("MovieDirectors", false, rel.Value(m.did), rel.Value(m.mid))
		db.MustAdd("Genre", false, rel.Value(m.mid), "Musical")
	}
	return db, keys
}

// Config parameterizes the synthetic generator.
type Config struct {
	Seed int64
	// Directors is the number of directors; a fraction share the last
	// name "Burton" (at least one).
	Directors int
	// MoviesPerDirector bounds the films per director (1..).
	MoviesPerDirector int
	// Genres is the size of the genre vocabulary.
	Genres int
	// GenresPerMovie bounds genre labels per movie (1..).
	GenresPerMovie int
	// BurtonShare is the fraction of directors named Burton (default
	// 0.2).
	BurtonShare float64
}

var genreNames = []string{
	"Drama", "Family", "Fantasy", "History", "Horror", "Music",
	"Musical", "Mystery", "Romance", "Sci-Fi", "Comedy", "Thriller",
	"Western", "War", "Adventure", "Animation", "Biography", "Crime",
	"Documentary", "Film-Noir",
}

var firstNames = []string{
	"Tim", "David", "Humphrey", "Alice", "Robert", "Maria", "John",
	"Sofia", "James", "Clara", "George", "Elena",
}

var lastNames = []string{
	"Burton", "Scott", "Kurosawa", "Varda", "Leone", "Campion",
	"Hitchcock", "Wilder", "Kubrick", "Agnes",
}

// Synthetic generates a random IMDB-like instance. Director and Movie
// tuples are endogenous; MovieDirectors and Genre are exogenous.
// Determinism is guaranteed by the seed.
func Synthetic(cfg Config) *rel.Database {
	if cfg.Directors <= 0 {
		cfg.Directors = 20
	}
	if cfg.MoviesPerDirector <= 0 {
		cfg.MoviesPerDirector = 4
	}
	if cfg.Genres <= 0 || cfg.Genres > len(genreNames) {
		cfg.Genres = 10
	}
	if cfg.GenresPerMovie <= 0 {
		cfg.GenresPerMovie = 2
	}
	if cfg.BurtonShare <= 0 {
		cfg.BurtonShare = 0.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := rel.NewDatabase()
	mid := 100000
	for d := 0; d < cfg.Directors; d++ {
		did := fmt.Sprintf("%d", 20000+d)
		last := lastNames[1+rng.Intn(len(lastNames)-1)]
		if d == 0 || rng.Float64() < cfg.BurtonShare {
			last = "Burton"
		}
		first := firstNames[rng.Intn(len(firstNames))]
		db.MustAdd("Director", true, rel.Value(did), rel.Value(first), rel.Value(last))
		nMovies := 1 + rng.Intn(cfg.MoviesPerDirector)
		for m := 0; m < nMovies; m++ {
			mid++
			midv := fmt.Sprintf("%d", mid)
			name := fmt.Sprintf("Film-%d", mid)
			year := fmt.Sprintf("%d", 1920+rng.Intn(100))
			rank := fmt.Sprintf("%d", 1+rng.Intn(10))
			db.MustAdd("Movie", true, rel.Value(midv), rel.Value(name), rel.Value(year), rel.Value(rank))
			db.MustAdd("MovieDirectors", false, rel.Value(did), rel.Value(midv))
			k := 1 + rng.Intn(cfg.GenresPerMovie)
			perm := rng.Perm(cfg.Genres)
			for g := 0; g < k; g++ {
				db.MustAdd("Genre", false, rel.Value(midv), rel.Value(genreNames[perm[g]]))
			}
		}
	}
	return db
}
