package imdb

import (
	"testing"

	"github.com/querycause/querycause/internal/rel"
)

func TestMicroShape(t *testing.T) {
	db, keys := Micro()
	if len(keys) != 9 {
		t.Fatalf("keys = %d, want 9 endogenous tuples", len(keys))
	}
	if db.Relation("Director") == nil || len(db.Relation("Director").Tuples()) != 3 {
		t.Fatal("want 3 directors")
	}
	if len(db.Relation("Movie").Tuples()) != 6 {
		t.Fatal("want 6 movies")
	}
	for _, tup := range db.Relation("MovieDirectors").Tuples() {
		if tup.Endo {
			t.Fatal("MovieDirectors must be exogenous")
		}
	}
	for _, tup := range db.Relation("Genre").Tuples() {
		if tup.Endo {
			t.Fatal("Genre must be exogenous")
		}
	}
}

func TestMicroMusicalAnswer(t *testing.T) {
	db, _ := Micro()
	ans, err := rel.Answers(db, GenreQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0].Values[0] != "Musical" {
		t.Fatalf("answers = %v, want just Musical", ans)
	}
	// Six valuations: one per movie.
	if len(ans[0].Valuations) != 6 {
		t.Errorf("valuations = %d, want 6", len(ans[0].Valuations))
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(Config{Seed: 1, Directors: 10})
	b := Synthetic(Config{Seed: 1, Directors: 10})
	if a.NumTuples() != b.NumTuples() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.NumTuples(), b.NumTuples())
	}
	for i := 0; i < a.NumTuples(); i++ {
		ta, tb := a.Tuple(rel.TupleID(i)), b.Tuple(rel.TupleID(i))
		if ta.Rel != tb.Rel || ta.Args[0] != tb.Args[0] {
			t.Fatalf("tuple %d differs: %v vs %v", i, ta, tb)
		}
	}
	c := Synthetic(Config{Seed: 2, Directors: 10})
	if c.NumTuples() == a.NumTuples() {
		t.Log("different seeds produced equal sizes (possible but unusual)")
	}
}

func TestSyntheticHasBurtonAnswers(t *testing.T) {
	db := Synthetic(Config{Seed: 7, Directors: 30})
	ans, err := rel.Answers(db, GenreQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) == 0 {
		t.Fatal("synthetic instance has no Burton genres; generator must guarantee one Burton")
	}
	// Endogenous split per the paper's default.
	for _, tup := range db.Tuples() {
		wantEndo := tup.Rel == "Director" || tup.Rel == "Movie"
		if tup.Endo != wantEndo {
			t.Fatalf("tuple %v endo=%v, want %v", tup, tup.Endo, wantEndo)
		}
	}
}

// TestSyntheticScales: the generator reaches the ~100k-tuple scale in
// one test-budget-friendly call, and the bound genre query explains
// end-to-end on it. The full 1M-tuple point is exercised by
// `experiments -run evalcurve` (nightly CI) and recorded in
// BENCH_eval.json.
func TestSyntheticScales(t *testing.T) {
	db := Synthetic(Config{Seed: 7, Directors: 10300, BurtonShare: 0.02})
	if n := db.NumTuples(); n < 90000 {
		t.Fatalf("10300 directors produced only %d tuples, want ≈100k", n)
	}
	bq, err := GenreQuery().Bind("Musical")
	if err != nil {
		t.Fatal(err)
	}
	held, err := rel.Holds(db, bq)
	if err != nil {
		t.Fatal(err)
	}
	if !held {
		t.Fatal("Musical is not an answer on the 100k-tuple instance")
	}
}
