// Hard-family instance generation: seeded members of the paper's
// NP-hard star family h₁* with randomized endogenous/exogenous masks,
// emitted by RandomInstance when GenConfig.HardStarProb is set. The
// family's lineage width is what the exact solver's cost scales with;
// with the indexed branch-and-bound these widths are routinely
// reachable by sweeps (PR-3's map-based solver hit a wall near width
// 147 — see BENCH_exact.json), so the differential harness can now
// hammer the solver on the very instances the hardness proofs are
// about.

package causegen

import (
	"math/rand"

	"github.com/querycause/querycause/internal/rel"
)

// maxSweepStarSize bounds the star size RandomInstance draws (sizes
// 2..maxSweepStarSize+1): large enough to leave the flow-friendly
// regime, small enough that metamorphic re-rankings keep sweep
// throughput usable.
const maxSweepStarSize = 6

// HardStar builds one seeded instance of the star family
// h₁* :- A(x), B(y), C(z), W(x,y,z) with n tuples per unary relation
// and 2n triples, each tuple independently exogenous with probability
// exoProb. The planted witness keeps the query true, so the instance
// is always a valid Why-So scenario. Deterministic in (seed, n,
// exoProb).
func HardStar(seed int64, n int, exoProb float64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	return hardStar(seed, rng, n, exoProb)
}

func hardStar(seed int64, rng *rand.Rand, n int, exoProb float64) *Instance {
	if n < 1 {
		n = 1
	}
	endo := func() bool { return rng.Float64() >= exoProb }
	b := newDBBuilder()
	b.add("A", endo(), []rel.Value{domVal(0)})
	b.add("B", endo(), []rel.Value{domVal(0)})
	b.add("C", endo(), []rel.Value{domVal(0)})
	b.add("W", endo(), []rel.Value{domVal(0), domVal(0), domVal(0)})
	for i := 1; i < n; i++ {
		b.add("A", endo(), []rel.Value{domVal(i)})
		b.add("B", endo(), []rel.Value{domVal(i)})
		b.add("C", endo(), []rel.Value{domVal(i)})
	}
	for i := 1; i < 2*n; i++ {
		b.add("W", endo(), []rel.Value{domVal(rng.Intn(n)), domVal(rng.Intn(n)), domVal(rng.Intn(n))})
	}
	q := rel.NewBoolean(
		rel.NewAtom("A", rel.V("x")),
		rel.NewAtom("B", rel.V("y")),
		rel.NewAtom("C", rel.V("z")),
		rel.NewAtom("W", rel.V("x"), rel.V("y"), rel.V("z")),
	)
	return &Instance{Seed: seed, DB: b.db, Query: q}
}
