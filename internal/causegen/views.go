package causegen

import (
	"sort"
	"strings"

	"github.com/querycause/querycause/internal/datalog"
	"github.com/querycause/querycause/internal/rel"
)

// DBViews adapts a rel.Database to the datalog EDB interface, exposing
// the per-relation endogenous/exogenous views R#n and R#x used by
// generated cause programs (plain relation names resolve to all tuples).
type DBViews struct {
	DB *rel.Database
}

// Facts implements datalog.EDB.
func (v DBViews) Facts(pred string) [][]rel.Value {
	name, suffix := pred, ""
	if i := strings.LastIndex(pred, "#"); i >= 0 {
		name, suffix = pred[:i], pred[i:]
	}
	r := v.DB.Relation(name)
	if r == nil {
		return nil
	}
	var out [][]rel.Value
	for _, t := range r.Tuples() {
		switch suffix {
		case EndoSuffix:
			if !t.Endo {
				continue
			}
		case ExoSuffix:
			if t.Endo {
				continue
			}
		case "":
		default:
			return nil
		}
		out = append(out, t.Args)
	}
	return out
}

// Causes generates the Theorem 3.4 program for q (pruned by hints from
// db), evaluates it over the database views, and maps the derived C_R
// facts back to endogenous tuple IDs. It returns the sorted cause IDs
// together with the program (for display and stratum checks).
func Causes(db *rel.Database, q *rel.Query) ([]rel.TupleID, *datalog.Program, error) {
	prog, err := Generate(q, HintsFromDB(db))
	if err != nil {
		return nil, nil, err
	}
	res, err := prog.Eval(DBViews{DB: db})
	if err != nil {
		return nil, prog, err
	}
	idSet := make(map[rel.TupleID]bool)
	for name, r := range db.Relations {
		rows := res.Facts(CausePred(name))
		if len(rows) == 0 {
			continue
		}
		for _, row := range rows {
			for _, t := range r.Tuples() {
				if t.Endo && rowEqual(t.Args, row) {
					idSet[t.ID] = true
				}
			}
		}
	}
	out := make([]rel.TupleID, 0, len(idSet))
	for id := range idSet {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, prog, nil
}

func rowEqual(a, b []rel.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
