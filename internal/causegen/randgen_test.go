package causegen

import (
	"math/rand"
	"testing"

	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/whyno"
)

// Generation must be a pure function of (seed, cfg): the differential
// harness's replay-by-seed workflow depends on it.
func TestRandomInstanceDeterministic(t *testing.T) {
	cfg := GenConfig{}
	for seed := int64(0); seed < 200; seed++ {
		a := RandomInstance(seed, cfg)
		b := RandomInstance(seed, cfg)
		if a.Query.String() != b.Query.String() {
			t.Fatalf("seed %d: queries differ: %v vs %v", seed, a.Query, b.Query)
		}
		if a.WhyNo != b.WhyNo {
			t.Fatalf("seed %d: whyno flag differs", seed)
		}
		fa, err := parser.FormatDatabase(a.DB)
		if err != nil {
			t.Fatalf("seed %d: format: %v", seed, err)
		}
		fb, _ := parser.FormatDatabase(b.DB)
		if fa != fb {
			t.Fatalf("seed %d: databases differ:\n%s\nvs\n%s", seed, fa, fb)
		}
	}
}

// Every generated instance must be well-formed: the query validates
// against the database, Why-So queries hold, Why-No instances satisfy
// the Theorem 4.17 preconditions, and no duplicate rows exist.
func TestRandomInstanceWellFormed(t *testing.T) {
	cfg := GenConfig{MaxAtoms: 4, MaxArity: 3, TuplesPerRelation: 8}
	sawWhyNo, sawWhySo, sawSelfJoin, sawExo := false, false, false, false
	for seed := int64(0); seed < 500; seed++ {
		in := RandomInstance(seed, cfg)
		if err := in.Query.Validate(in.DB); err != nil {
			t.Fatalf("seed %d: invalid query: %v", seed, err)
		}
		seen := make(map[string]bool)
		for _, tp := range in.DB.Tuples() {
			k := tupleKey(tp.Rel, tp.Args)
			if seen[k] {
				t.Fatalf("seed %d: duplicate row %v", seed, tp)
			}
			seen[k] = true
			if !tp.Endo {
				sawExo = true
			}
		}
		if in.Query.HasSelfJoin() {
			sawSelfJoin = true
		}
		if in.WhyNo {
			sawWhyNo = true
			if err := whyno.CheckInstance(in.DB, in.Query); err != nil {
				t.Fatalf("seed %d: invalid why-no instance: %v", seed, err)
			}
		} else {
			sawWhySo = true
			held, err := rel.Holds(in.DB, in.Query)
			if err != nil {
				t.Fatalf("seed %d: holds: %v", seed, err)
			}
			if !held {
				t.Fatalf("seed %d: why-so query does not hold: %v", seed, in)
			}
		}
	}
	if !sawWhyNo || !sawWhySo || !sawSelfJoin || !sawExo {
		t.Fatalf("generator coverage gap: whyno=%v whyso=%v selfjoin=%v exo=%v",
			sawWhyNo, sawWhySo, sawSelfJoin, sawExo)
	}
}

// Generated queries must survive the parser round-trip: the server
// differential replays them as Query.String() through ParseQuery.
func TestRandomQueryParserRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := GenConfig{MaxAtoms: 4, MaxArity: 3, ConstProb: 0.4}
	for i := 0; i < 500; i++ {
		q := RandomQuery(rng, cfg)
		s := q.String()
		back, err := parser.ParseQuery(s)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", s, err)
		}
		if back.String() != s {
			t.Fatalf("round-trip changed query: %q -> %q", s, back.String())
		}
	}
}
