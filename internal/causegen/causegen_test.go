package causegen

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
)

func sameIDs(a, b []rel.TupleID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExample3_5 replays Example 3.5: q :- R(x,y), S(y) with R mixed
// endogenous/exogenous and S endogenous. On
// R = {(a4,a3) exo, (a3,a3) endo}, S = {a3}: the only cause is S(a3).
func TestExample3_5(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", false, "a4", "a3")
	ra33 := db.MustAdd("R", true, "a3", "a3")
	sa3 := db.MustAdd("S", true, "a3")
	_ = ra33
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y")))
	got, prog, err := Causes(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != sa3 {
		t.Fatalf("causes = %v, want [S(a3)]\nprogram:\n%s", got, prog)
	}
	// The program needs negation (causality is non-monotone here).
	if !strings.Contains(prog.String(), "¬") {
		t.Errorf("expected negation in program:\n%s", prog)
	}
	ns, err := prog.NumStrata()
	if err != nil {
		t.Fatal(err)
	}
	if ns != 2 {
		t.Errorf("strata = %d, want 2 (Theorem 3.4)", ns)
	}
}

// TestExample3_5NonMonotone verifies the non-monotonicity claim: after
// removing the exogenous tuple R(a4,a3), R(a3,a3) becomes a cause.
func TestExample3_5NonMonotone(t *testing.T) {
	db := rel.NewDatabase()
	ra33 := db.MustAdd("R", true, "a3", "a3")
	sa3 := db.MustAdd("S", true, "a3")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y")))
	got, _, err := Causes(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []rel.TupleID{ra33, sa3}) {
		t.Fatalf("causes = %v, want both tuples", got)
	}
}

// TestExample3_6 replays Example 3.6 (self-join): q :- S(x),R(x,y),S(y)
// with S endogenous, R exogenous, on R = {(a4,a3),(a3,a3)},
// S = {a3,a4}. The sole cause is S(a3); S(a4) is not a cause. Note the
// paper's example program misses S(a3) (no strictness guard for the
// collapsed valuation x=y=a3); the generated program handles it.
func TestExample3_6(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", false, "a4", "a3")
	db.MustAdd("R", false, "a3", "a3")
	sa3 := db.MustAdd("S", true, "a3")
	db.MustAdd("S", true, "a4")
	q := rel.NewBoolean(
		rel.NewAtom("S", rel.V("x")),
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y")),
	)
	got, prog, err := Causes(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != sa3 {
		t.Fatalf("causes = %v, want [S(a3)]\nprogram:\n%s", got, prog)
	}
}

// TestExample3_6NonMonotone: removing R(a3,a3) makes S(a4) a cause.
func TestExample3_6NonMonotone(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", false, "a4", "a3")
	sa3 := db.MustAdd("S", true, "a3")
	sa4 := db.MustAdd("S", true, "a4")
	q := rel.NewBoolean(
		rel.NewAtom("S", rel.V("x")),
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y")),
	)
	got, _, err := Causes(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []rel.TupleID{sa3, sa4}) {
		t.Fatalf("causes = %v, want [S(a3) S(a4)]", got)
	}
}

// TestCorollary3_7PositiveProgram: with every relation fully endogenous
// or exogenous and no endogenous self-joins, the pruned program is a
// union of conjunctive queries without negation.
func TestCorollary3_7PositiveProgram(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a", "b")
	db.MustAdd("R", true, "c", "b")
	db.MustAdd("S", true, "b")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y")))
	prog, err := Generate(q, HintsFromDB(db))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prog.String(), "¬") {
		t.Errorf("Corollary 3.7 program should be positive:\n%s", prog)
	}
	got, _, err := Causes(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lineage.Causes(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, want) {
		t.Fatalf("causes = %v, want %v", got, want)
	}
}

func TestGenerateRejectsNonBoolean(t *testing.T) {
	q := &rel.Query{Name: "q", Head: []rel.Term{rel.V("x")}, Atoms: []rel.Atom{rel.NewAtom("R", rel.V("x"))}}
	if _, err := Generate(q, nil); err == nil {
		t.Fatal("expected error for non-Boolean query")
	}
	if _, err := Generate(rel.NewBoolean(), nil); err == nil {
		t.Fatal("expected error for empty query")
	}
}

func randomDB(rng *rand.Rand, rels []string, arities []int, size, domain int, endoProb float64) *rel.Database {
	db := rel.NewDatabase()
	seen := make(map[string]bool)
	for ri, name := range rels {
		for i := 0; i < size; i++ {
			args := make([]rel.Value, arities[ri])
			for j := range args {
				args[j] = rel.Value(string(rune('a' + rng.Intn(domain))))
			}
			k := name + "|" + joinVals(args)
			if seen[k] {
				continue
			}
			seen[k] = true
			db.MustAdd(name, rng.Float64() < endoProb, args...)
		}
	}
	return db
}

func joinVals(vs []rel.Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	return strings.Join(parts, ",")
}

// TestDatalogMatchesLineageNoSelfJoin fuzzes the generated program
// against the Theorem 3.2 lineage computation on self-join-free queries
// with per-tuple endo/exo mixes.
func TestDatalogMatchesLineageNoSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z")),
	)
	for trial := 0; trial < 60; trial++ {
		db := randomDB(rng, []string{"R", "S", "T"}, []int{2, 2, 1}, 5, 3, 0.7)
		got, prog, err := Causes(db, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := lineage.Causes(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("trial %d: datalog=%v lineage=%v\ndb:\n%v\nprogram:\n%s", trial, got, want, db, prog)
		}
	}
}

// TestDatalogMatchesLineageSelfJoin fuzzes the self-join case
// (Example 3.6's query family) where the strictness guards matter.
func TestDatalogMatchesLineageSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	q := rel.NewBoolean(
		rel.NewAtom("S", rel.V("x")),
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y")),
	)
	for trial := 0; trial < 60; trial++ {
		db := randomDB(rng, []string{"R", "S"}, []int{2, 1}, 5, 3, 0.6)
		got, prog, err := Causes(db, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := lineage.Causes(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("trial %d: datalog=%v lineage=%v\ndb:\n%v\nprogram:\n%s", trial, got, want, db, prog)
		}
	}
}

// TestDatalogMatchesLineageBinarySelfJoin covers R(x,y),R(y,z) — the
// self-join family whose responsibility complexity the paper leaves
// open; causality is still PTIME and the program must agree with the
// lineage method.
func TestDatalogMatchesLineageBinarySelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("R", rel.V("y"), rel.V("z")),
	)
	for trial := 0; trial < 60; trial++ {
		db := randomDB(rng, []string{"R"}, []int{2}, 6, 3, 0.6)
		got, prog, err := Causes(db, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := lineage.Causes(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("trial %d: datalog=%v lineage=%v\ndb:\n%v\nprogram:\n%s", trial, got, want, db, prog)
		}
	}
}

// TestConstantsInQuery: bound queries carry constants into the program.
func TestConstantsInQuery(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a3", "a3")
	db.MustAdd("R", true, "a4", "a3")
	sa3 := db.MustAdd("S", true, "a3")
	db.MustAdd("S", true, "a4")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.C("a3")), rel.NewAtom("S", rel.C("a3")))
	got, _, err := Causes(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := lineage.Causes(db, q)
	if !sameIDs(got, want) {
		t.Fatalf("causes = %v, want %v", got, want)
	}
	found := false
	for _, id := range got {
		if id == sa3 {
			found = true
		}
	}
	if !found {
		t.Error("S(a3) must be a cause")
	}
}

// TestWhyNoCauses: the same program computes Why-No causes when the
// endogenous tuples are the candidate missing ones (Section 2).
func TestWhyNoCauses(t *testing.T) {
	// Real database Dx: R(a,b). Missing candidates Dn: S(b), S(c).
	// Non-answer: q :- R(x,y),S(y). Adding S(b) yields the answer, so
	// S(b) is a (counterfactual) Why-No cause; S(c) joins nothing.
	db := rel.NewDatabase()
	db.MustAdd("R", false, "a", "b")
	sb := db.MustAdd("S", true, "b")
	db.MustAdd("S", true, "c")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y")))
	got, _, err := Causes(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != sb {
		t.Fatalf("Why-No causes = %v, want [S(b)]", got)
	}
}

func TestDBViewsSuffixes(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a")
	db.MustAdd("R", false, "b")
	v := DBViews{DB: db}
	if got := v.Facts("R#n"); len(got) != 1 || got[0][0] != "a" {
		t.Errorf("R#n = %v", got)
	}
	if got := v.Facts("R#x"); len(got) != 1 || got[0][0] != "b" {
		t.Errorf("R#x = %v", got)
	}
	if got := v.Facts("R"); len(got) != 2 {
		t.Errorf("R = %v", got)
	}
	if got := v.Facts("Missing#n"); got != nil {
		t.Errorf("Missing#n = %v", got)
	}
}
