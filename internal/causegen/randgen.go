// Seeded random workload generation for the differential harness
// (internal/difftest): arbitrary safe Boolean conjunctive queries with
// controllable atom count, arity, join shape, self-joins, constants,
// and domain size, paired with database instances carrying randomized
// endogenous/exogenous masks — plus valid Why-No instances (real
// database Dˣ false on the query, candidates Dⁿ completing it).
//
// Everything is a pure function of an int64 seed: RandomInstance(seed,
// cfg) always rebuilds the identical instance, so any failure found by
// a sweep replays from its seed alone.

package causegen

import (
	"fmt"
	"math/rand"

	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/whyno"
)

// GenConfig bounds the random query/instance generator. The zero
// value gets defaults from Normalize; every field is a maximum or a
// probability, and the generator draws the actual value per instance.
// For probabilities, 0 means "use the default"; a negative value means
// literally zero (e.g. SelfJoinProb: -1 sweeps only self-join-free
// queries).
type GenConfig struct {
	// MaxAtoms bounds the query body length (min 1). Default 3.
	MaxAtoms int
	// MaxArity bounds per-relation arity (min 1). Default 2.
	MaxArity int
	// MaxVars bounds the variable pool. Default 4.
	MaxVars int
	// DomainSize bounds the constant pool d0..d{n-1}. Default 4.
	DomainSize int
	// TuplesPerRelation bounds random noise tuples per relation.
	// Default 6.
	TuplesPerRelation int
	// ExoProb is the per-tuple probability of being exogenous (Why-So)
	// or of a noise tuple landing in the real database Dˣ (Why-No).
	// Default 0.3.
	ExoProb float64
	// ConstProb is the per-term probability of a constant instead of a
	// variable. Default 0.15.
	ConstProb float64
	// SelfJoinProb is the per-atom probability of reusing an earlier
	// atom's relation (yielding self-joins, the dichotomy's excluded
	// case). Default 0.15.
	SelfJoinProb float64
	// WhyNoProb is the probability of generating a Why-No instance
	// instead of a Why-So one. Default 0.3.
	WhyNoProb float64
	// HardStarProb is the probability of emitting a member of the
	// NP-hard star family h₁* (randomized size and exogenous mask, see
	// HardStar) instead of a random query instance. Unlike the other
	// probabilities its default is 0 — off — so existing seeds keep
	// generating identical instances; sweeps targeting the exact
	// solver opt in (cmd/fuzzcause -hardstar-prob).
	HardStarProb float64
}

// Normalize resolves defaults: zero maxima/probabilities get their
// documented defaults. Negative probabilities pass through unchanged
// (they never fire, since rng.Float64() ∈ [0,1)), which keeps
// Normalize idempotent — a clamp to 0 would read as "unset" on the
// next pass and silently restore the default. Generation and
// replay-command rendering both use the normalized form, so two
// configs describing the same population compare equal.
func (c GenConfig) Normalize() GenConfig {
	if c.MaxAtoms <= 0 {
		c.MaxAtoms = 3
	}
	if c.MaxArity <= 0 {
		c.MaxArity = 2
	}
	if c.MaxVars <= 0 {
		c.MaxVars = 4
	}
	if c.DomainSize <= 0 {
		c.DomainSize = 4
	}
	if c.TuplesPerRelation <= 0 {
		c.TuplesPerRelation = 6
	}
	prob := func(v, def float64) float64 {
		if v == 0 {
			return def
		}
		return v
	}
	c.ExoProb = prob(c.ExoProb, 0.3)
	c.ConstProb = prob(c.ConstProb, 0.15)
	c.SelfJoinProb = prob(c.SelfJoinProb, 0.15)
	c.WhyNoProb = prob(c.WhyNoProb, 0.3)
	return c
}

// Instance is one generated differential-test scenario: a Boolean
// query over a database with endogenous/exogenous masks, flagged
// Why-So (the query holds; explain the answer) or Why-No (the query
// fails on the exogenous part alone; explain the non-answer). Seed
// reproduces the instance via RandomInstance with the same config.
type Instance struct {
	Seed  int64
	DB    *rel.Database
	Query *rel.Query
	WhyNo bool
}

// String summarizes the instance for failure messages.
func (in *Instance) String() string {
	kind := "whyso"
	if in.WhyNo {
		kind = "whyno"
	}
	return fmt.Sprintf("%s seed=%d tuples=%d query=%v", kind, in.Seed, in.DB.NumTuples(), in.Query)
}

func domVal(i int) rel.Value { return rel.Value(fmt.Sprintf("d%d", i)) }

// RandomQuery draws a Boolean conjunctive query: relation names R0…,
// lower-case variables x0… (so Query.String round-trips through the
// parser), constants from the domain pool. Later atoms reuse an
// already-bound variable with high probability, biasing toward
// connected join shapes, while still emitting disconnected and
// self-join queries occasionally.
func RandomQuery(rng *rand.Rand, cfg GenConfig) *rel.Query {
	cfg = cfg.Normalize()
	nAtoms := 1 + rng.Intn(cfg.MaxAtoms)
	type relSig struct {
		name  string
		arity int
	}
	var sigs []relSig
	var atoms []rel.Atom
	var usedVars []string
	usedSet := make(map[string]bool)
	varName := func(i int) string { return fmt.Sprintf("x%d", i) }

	for i := 0; i < nAtoms; i++ {
		var sig relSig
		if len(sigs) > 0 && rng.Float64() < cfg.SelfJoinProb {
			sig = sigs[rng.Intn(len(sigs))]
		} else {
			sig = relSig{name: fmt.Sprintf("R%d", len(sigs)), arity: 1 + rng.Intn(cfg.MaxArity)}
			sigs = append(sigs, sig)
		}
		terms := make([]rel.Term, sig.arity)
		for k := range terms {
			switch {
			case rng.Float64() < cfg.ConstProb:
				terms[k] = rel.C(domVal(rng.Intn(cfg.DomainSize)))
			case len(usedVars) > 0 && rng.Float64() < 0.7:
				terms[k] = rel.V(usedVars[rng.Intn(len(usedVars))])
			default:
				v := varName(rng.Intn(cfg.MaxVars))
				terms[k] = rel.V(v)
				if !usedSet[v] {
					usedSet[v] = true
					usedVars = append(usedVars, v)
				}
			}
		}
		atoms = append(atoms, rel.Atom{Pred: sig.name, Terms: terms})
	}
	return rel.NewBoolean(atoms...)
}

// dbBuilder accumulates deduplicated tuples ((relation, args) set
// semantics) before committing them to a Database in a deterministic
// order.
type dbBuilder struct {
	db   *rel.Database
	seen map[string]bool
}

func newDBBuilder() *dbBuilder {
	return &dbBuilder{db: rel.NewDatabase(), seen: make(map[string]bool)}
}

func tupleKey(relName string, args []rel.Value) string {
	k := relName
	for _, a := range args {
		k += "\x00" + string(a)
	}
	return k
}

// add inserts the tuple unless an identical row already exists (the
// first insertion wins, including its endo flag). Reports whether the
// row was inserted.
func (b *dbBuilder) add(relName string, endo bool, args []rel.Value) bool {
	k := tupleKey(relName, args)
	if b.seen[k] {
		return false
	}
	b.seen[k] = true
	b.db.MustAdd(relName, endo, args...)
	return true
}

// randomArgs draws a tuple over the domain honoring any constants the
// atom pins.
func randomArgs(rng *rand.Rand, arity, domain int) []rel.Value {
	args := make([]rel.Value, arity)
	for i := range args {
		args[i] = domVal(rng.Intn(domain))
	}
	return args
}

// witnessArgs instantiates one atom under a full variable binding.
func witnessArgs(a rel.Atom, binding map[string]rel.Value) []rel.Value {
	args := make([]rel.Value, len(a.Terms))
	for i, t := range a.Terms {
		if t.IsVar {
			args[i] = binding[t.Var]
		} else {
			args[i] = t.Const
		}
	}
	return args
}

// randomBinding draws one value per query variable.
func randomBinding(rng *rand.Rand, q *rel.Query, domain int) map[string]rel.Value {
	binding := make(map[string]rel.Value)
	for _, v := range q.Vars() {
		binding[v] = domVal(rng.Intn(domain))
	}
	return binding
}

// RandomInstance generates one Why-So or Why-No instance from the
// seed. The construction plants a full witness valuation so Why-So
// queries always hold and Why-No instances always have causes, then
// layers random noise tuples with the configured exogenous mask.
// Why-No instances are validated (query false on Dˣ, true on Dˣ∪Dⁿ)
// before being returned; generation is deterministic in (seed, cfg).
func RandomInstance(seed int64, cfg GenConfig) *Instance {
	cfg = cfg.Normalize()
	rng := rand.New(rand.NewSource(seed))
	// The hard-family branch draws from the rng only when enabled, so
	// configs without it reproduce their historical instances exactly.
	if cfg.HardStarProb > 0 && rng.Float64() < cfg.HardStarProb {
		return hardStar(seed, rng, 2+rng.Intn(maxSweepStarSize), cfg.ExoProb)
	}
	q := RandomQuery(rng, cfg)
	whyNo := rng.Float64() < cfg.WhyNoProb
	if whyNo {
		return randomWhyNo(seed, rng, q, cfg)
	}
	return randomWhySo(seed, rng, q, cfg)
}

func randomWhySo(seed int64, rng *rand.Rand, q *rel.Query, cfg GenConfig) *Instance {
	b := newDBBuilder()
	// Witness valuation: one matching tuple per atom, so q holds.
	binding := randomBinding(rng, q, cfg.DomainSize)
	for _, a := range q.Atoms {
		b.add(a.Pred, rng.Float64() >= cfg.ExoProb, witnessArgs(a, binding))
	}
	// Noise per relation used by the query.
	arities := queryArities(q)
	for _, ra := range arities {
		n := rng.Intn(cfg.TuplesPerRelation + 1)
		for i := 0; i < n; i++ {
			b.add(ra.name, rng.Float64() >= cfg.ExoProb, randomArgs(rng, ra.arity, cfg.DomainSize))
		}
	}
	return &Instance{Seed: seed, DB: b.db, Query: q}
}

// randomWhyNo builds a valid Why-No instance: exogenous tuples form
// the real database Dˣ on which q must be false; endogenous tuples are
// the candidate insertions Dⁿ, including a planted all-endogenous
// witness so q holds on Dˣ ∪ Dⁿ. Noise that makes q true on Dˣ alone
// is discarded in bounded retries; the fallback of zero exogenous
// noise is always valid.
func randomWhyNo(seed int64, rng *rand.Rand, q *rel.Query, cfg GenConfig) *Instance {
	arities := queryArities(q)
	for attempt := 0; ; attempt++ {
		b := newDBBuilder()
		// Exogenous context Dˣ (none on the final attempt).
		if attempt < 4 {
			exoBudget := rng.Intn(cfg.TuplesPerRelation + 1)
			for _, ra := range arities {
				for i := 0; i < exoBudget; i++ {
					if rng.Float64() < cfg.ExoProb {
						b.add(ra.name, false, randomArgs(rng, ra.arity, cfg.DomainSize))
					}
				}
			}
			if held, err := rel.Holds(b.db, q); err != nil || held {
				continue // Dˣ already satisfies q: not a non-answer
			}
		}
		// Candidate insertions Dⁿ: a planted witness plus noise. A
		// candidate colliding with a Dˣ row is dropped by set semantics.
		binding := randomBinding(rng, q, cfg.DomainSize)
		for _, a := range q.Atoms {
			b.add(a.Pred, true, witnessArgs(a, binding))
		}
		for _, ra := range arities {
			n := rng.Intn(cfg.TuplesPerRelation/2 + 1)
			for i := 0; i < n; i++ {
				b.add(ra.name, true, randomArgs(rng, ra.arity, cfg.DomainSize))
			}
		}
		if whyno.CheckInstance(b.db, q) == nil {
			return &Instance{Seed: seed, DB: b.db, Query: q, WhyNo: true}
		}
		// The planted witness may have collided with Dˣ rows; retry with
		// fresh draws. The attempt >= 4 path (Dˣ = ∅, all-endogenous
		// witness) always validates.
	}
}

type relArity struct {
	name  string
	arity int
}

// queryArities lists the distinct relations of q with their arities in
// first-occurrence order.
func queryArities(q *rel.Query) []relArity {
	var out []relArity
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		if !seen[a.Pred] {
			seen[a.Pred] = true
			out = append(out, relArity{name: a.Pred, arity: len(a.Terms)})
		}
	}
	return out
}
