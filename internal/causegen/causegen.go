// Package causegen generates, from a Boolean conjunctive query, the
// stratified Datalog¬ program of Theorem 3.4 of Meliou et al.
// (VLDB 2010) that computes all actual causes (Why-So or Why-No) as
// relational views — one IDB predicate C_R per relation R.
//
// # Construction
//
// The program works over per-relation endogenous/exogenous views: for
// each relation R the EDB exposes R#n (endogenous tuples) and R#x
// (exogenous tuples). Following the proof of Theorem 3.4:
//
//   - A refinement N ⊆ atoms labels each atom endogenous or exogenous;
//     a valuation θ realizes exactly one refinement.
//   - θ's conjunct (its set of endogenous witness tuples) is redundant
//     iff some valuation θ′ has endo(θ′) ⊊ endo(θ). Containment is
//     witnessed by a relation-preserving map f from the endogenous atoms
//     M of θ′'s refinement into N with θ′(g) = θ(f(g)); unifying the
//     pattern of g with that of f(g) yields equalities among θ′'s and
//     θ's variables (the proof's "image queries").
//   - Strictness reduces to a condition on θ alone: some h ∈ N must have
//     θ(h) ∉ {θ(f(g))}, i.e. θ(h) ≠ θ(f(g)) for every g ∈ M with
//     rel(g) = rel(h) — a conjunction of tuple-disequalities.
//
// For each refinement N the generator emits a witness predicate W_N
// (one rule per containment pattern (M, f, h)) holding the variable
// bindings of redundant valuations, and cause rules
// C_R(x̄_j) :- body(N), ¬W_N(all vars). The program has exactly two
// strata, as Theorem 3.4 states.
//
// # Deviation from the paper (see the fidelity notes in doc.go)
//
// The paper's Example 3.6 program lacks a strictness guard for
// valuations whose self-join atoms collapse onto the same tuple: on
// R = {(a4,a3),(a3,a3)}, S = {a3,a4} it rejects the true cause S(a3).
// The disequality constraints above repair this; for self-join-free
// queries they vanish and the program coincides with the paper's
// (Example 3.5 is reproduced verbatim as a golden test).
package causegen

import (
	"fmt"
	"sort"
	"strings"

	"github.com/querycause/querycause/internal/datalog"
	"github.com/querycause/querycause/internal/rel"
)

// EndoSuffix and ExoSuffix name the per-relation EDB views.
const (
	EndoSuffix = "#n"
	ExoSuffix  = "#x"
)

// CausePred returns the IDB predicate name carrying causes of relation
// relName.
func CausePred(relName string) string { return "C_" + relName }

// Hints tell the generator which relations can hold endogenous or
// exogenous tuples, pruning refinements that cannot match anything.
// A nil entry (relation absent) means "both possible".
type Hints map[string]struct{ HasEndo, HasExo bool }

// HintsFromDB derives hints from an instance.
func HintsFromDB(db *rel.Database) Hints {
	h := make(Hints)
	for name, r := range db.Relations {
		e := struct{ HasEndo, HasExo bool }{}
		for _, t := range r.Tuples() {
			if t.Endo {
				e.HasEndo = true
			} else {
				e.HasExo = true
			}
		}
		h[name] = e
	}
	return h
}

func (h Hints) may(relName string, endo bool) bool {
	if h == nil {
		return true
	}
	e, ok := h[relName]
	if !ok {
		return false // relation absent: no tuples at all
	}
	if endo {
		return e.HasEndo
	}
	return e.HasExo
}

// Generate builds the cause program for the Boolean query q. With nil
// hints all 2^m refinements are emitted; with hints, impossible
// refinements are pruned (Corollary 3.7 then yields a purely positive
// program when each relation is fully endogenous or exogenous and no
// endogenous relation repeats).
func Generate(q *rel.Query, hints Hints) (*datalog.Program, error) {
	if !q.IsBoolean() {
		return nil, fmt.Errorf("causegen: query %s is not Boolean; bind the answer first", q.Name)
	}
	m := len(q.Atoms)
	if m == 0 {
		return nil, fmt.Errorf("causegen: empty query")
	}
	if m > 12 {
		return nil, fmt.Errorf("causegen: %d atoms exceed the generator's limit (refinements are exponential in the atom count)", m)
	}
	allVars := q.Vars()
	prog := &datalog.Program{}
	ruleSeen := make(map[string]bool)
	addRule := func(r datalog.Rule) {
		k := r.String()
		if !ruleSeen[k] {
			ruleSeen[k] = true
			prog.Rules = append(prog.Rules, r)
		}
	}

	for bits := 0; bits < (1 << m); bits++ {
		n := subset(bits, m)
		if !refinementPossible(q, n, hints) {
			continue
		}
		if len(n) == 0 {
			continue // no endogenous atoms: no causes from this refinement
		}
		wPred := witnessPred(n)
		wRules := witnessRules(q, n, wPred, allVars, hints)
		for _, r := range wRules {
			addRule(r)
		}
		body := refinementBody(q, n)
		for _, j := range n {
			head := datalog.Literal{Pred: CausePred(q.Atoms[j].Pred), Terms: toDatalogTerms(q.Atoms[j].Terms, "")}
			rule := datalog.Rule{Head: head, Body: append([]datalog.Literal(nil), body...)}
			if len(wRules) > 0 {
				rule.Body = append(rule.Body, datalog.Not(wPred, varTerms(allVars)...))
			}
			addRule(rule)
		}
	}
	return prog, nil
}

// subset expands a bitmask into sorted atom indexes.
func subset(bits, m int) []int {
	var out []int
	for i := 0; i < m; i++ {
		if bits&(1<<i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func refinementPossible(q *rel.Query, n []int, hints Hints) bool {
	for i, a := range q.Atoms {
		if !hints.may(a.Pred, contains(n, i)) {
			return false
		}
	}
	return true
}

// refinementBody renders the atoms of q with #n/#x views per the
// refinement.
func refinementBody(q *rel.Query, n []int) []datalog.Literal {
	out := make([]datalog.Literal, len(q.Atoms))
	for i, a := range q.Atoms {
		suffix := ExoSuffix
		if contains(n, i) {
			suffix = EndoSuffix
		}
		out[i] = datalog.Literal{Pred: a.Pred + suffix, Terms: toDatalogTerms(a.Terms, "")}
	}
	return out
}

func witnessPred(n []int) string {
	parts := make([]string, len(n))
	for i, j := range n {
		parts[i] = fmt.Sprintf("%d", j)
	}
	return "W_" + strings.Join(parts, "_")
}

func toDatalogTerms(ts []rel.Term, primeSuffix string) []datalog.Term {
	out := make([]datalog.Term, len(ts))
	for i, t := range ts {
		if t.IsVar {
			out[i] = datalog.V(t.Var + primeSuffix)
		} else {
			out[i] = datalog.C(t.Const)
		}
	}
	return out
}

func varTerms(vars []string) []datalog.Term {
	out := make([]datalog.Term, len(vars))
	for i, v := range vars {
		out[i] = datalog.V(v)
	}
	return out
}

// witnessRules emits one rule per containment pattern (M, f, h): W_N
// holds θ's variable bindings whose conjunct is redundant.
func witnessRules(q *rel.Query, n []int, wPred string, allVars []string, hints Hints) []datalog.Rule {
	m := len(q.Atoms)
	var rules []datalog.Rule
	seen := make(map[string]bool)
	for bits := 0; bits < (1 << m); bits++ {
		mset := subset(bits, m)
		// θ′'s refinement must itself be realizable.
		if !refinementPossible(q, mset, hints) {
			continue
		}
		// Enumerate relation-preserving maps f : M → N.
		cands := make([][]int, len(mset))
		feasible := true
		for i, g := range mset {
			for _, h := range n {
				if q.Atoms[g].Pred == q.Atoms[h].Pred && len(q.Atoms[g].Terms) == len(q.Atoms[h].Terms) {
					cands[i] = append(cands[i], h)
				}
			}
			if len(cands[i]) == 0 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		assign := make([]int, len(mset))
		var enumerate func(i int)
		enumerate = func(i int) {
			if i == len(mset) {
				for _, r := range rulesForPattern(q, n, mset, assign, wPred, allVars) {
					k := r.String()
					if !seen[k] {
						seen[k] = true
						rules = append(rules, r)
					}
				}
				return
			}
			for _, h := range cands[i] {
				assign[i] = h
				enumerate(i + 1)
			}
		}
		enumerate(0)
	}
	return rules
}

// rulesForPattern builds the W_N rules for one containment map
// f(mset[i]) = assign[i], one rule per strictness witness h.
func rulesForPattern(q *rel.Query, n, mset, assign []int, wPred string, allVars []string) []datalog.Rule {
	// Unify primed terms of each g ∈ M with θ-terms of f(g).
	u := newUnifier()
	for i, g := range mset {
		fg := assign[i]
		for k := range q.Atoms[g].Terms {
			a := symOf(q.Atoms[g].Terms[k], "'")
			b := symOf(q.Atoms[fg].Terms[k], "")
			if !u.unify(a, b) {
				return nil // inconsistent constants
			}
		}
	}
	// Image of f as a set.
	image := make(map[int]bool)
	for _, fg := range assign {
		image[fg] = true
	}
	var rules []datalog.Rule
	for _, h := range n {
		if image[h] {
			continue // θ(h) = θ(f(g)) for g with f(g)=h: never strict
		}
		// Strictness constraints: θ(f(g)) ≠ θ(h) for same-relation g.
		var neqs []datalog.Constraint
		violated := false
		for _, fg := range sortedKeys(image) {
			if q.Atoms[fg].Pred != q.Atoms[h].Pred {
				continue
			}
			left := u.resolveTerms(q.Atoms[fg].Terms, "")
			right := u.resolveTerms(q.Atoms[h].Terms, "")
			if termsEqual(left, right) {
				violated = true // identical under unification: h is covered
				break
			}
			neqs = append(neqs, datalog.Constraint{Left: left, Right: right})
		}
		if violated {
			continue
		}
		// Body: θ's atoms under the unifier's θ-side equalities, plus
		// θ′'s atoms (endo for M, exo otherwise) under the unifier.
		var body []datalog.Literal
		for i, a := range q.Atoms {
			sfx := ExoSuffix
			if containsInt(n, i) {
				sfx = EndoSuffix
			}
			body = append(body, datalog.Literal{Pred: a.Pred + sfx, Terms: u.resolveTerms(a.Terms, "")})
		}
		for i, a := range q.Atoms {
			sfx := ExoSuffix
			if containsInt(mset, i) {
				sfx = EndoSuffix
			}
			body = append(body, datalog.Literal{Pred: a.Pred + sfx, Terms: u.resolveTerms(a.Terms, "'")})
		}
		head := datalog.Literal{Pred: wPred, Terms: u.resolveVarList(allVars)}
		rules = append(rules, datalog.Rule{Head: head, Body: dedupeLits(body), Neq: neqs})
	}
	return rules
}

func containsInt(xs []int, x int) bool { return contains(xs, x) }

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func termsEqual(a, b []datalog.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsVar != b[i].IsVar || a[i].Var != b[i].Var || a[i].Const != b[i].Const {
			return false
		}
	}
	return true
}

func dedupeLits(lits []datalog.Literal) []datalog.Literal {
	seen := make(map[string]bool)
	out := lits[:0]
	for _, l := range lits {
		k := l.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, l)
		}
	}
	return out
}

// unifier is a union-find over variable symbols and constants.
// Symbols: "v" for θ-variable v, "v'" for θ′-variable v, "\x00c" for
// constant c. Representatives prefer constants, then θ-variables.
type unifier struct {
	parent map[string]string
}

func newUnifier() *unifier {
	return &unifier{parent: make(map[string]string)}
}

func symOf(t rel.Term, primeSuffix string) string {
	if t.IsVar {
		return t.Var + primeSuffix
	}
	return "\x00" + string(t.Const)
}

func isConstSym(s string) bool { return strings.HasPrefix(s, "\x00") }
func isPrimeSym(s string) bool { return strings.HasSuffix(s, "'") }

func (u *unifier) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		return x
	}
	r := u.find(p)
	u.parent[x] = r
	return r
}

// unify merges the classes of a and b; returns false on constant clash.
func (u *unifier) unify(a, b string) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return true
	}
	if isConstSym(ra) && isConstSym(rb) {
		return false
	}
	// Prefer constants, then θ-variables (unprimed) as representatives.
	switch {
	case isConstSym(ra):
		u.parent[rb] = ra
	case isConstSym(rb):
		u.parent[ra] = rb
	case !isPrimeSym(ra):
		u.parent[rb] = ra
	default:
		u.parent[ra] = rb
	}
	return true
}

func (u *unifier) resolveSym(s string) datalog.Term {
	r := u.find(s)
	if isConstSym(r) {
		return datalog.C(rel.Value(r[1:]))
	}
	return datalog.V(r)
}

func (u *unifier) resolveTerms(ts []rel.Term, primeSuffix string) []datalog.Term {
	out := make([]datalog.Term, len(ts))
	for i, t := range ts {
		out[i] = u.resolveSym(symOf(t, primeSuffix))
	}
	return out
}

func (u *unifier) resolveVarList(vars []string) []datalog.Term {
	out := make([]datalog.Term, len(vars))
	for i, v := range vars {
		out[i] = u.resolveSym(v)
	}
	return out
}
