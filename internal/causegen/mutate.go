// Random mutation sequences over generated instances, for the
// incremental-vs-cold-rebuild differential (internal/difftest): a
// session that applied the sequence step by step — invalidating
// explanation state incrementally — must end up answering exactly like
// a session built cold at the final version.

package causegen

import (
	"fmt"
	"math/rand"

	"github.com/querycause/querycause/internal/rel"
)

// Mutation is one step of a mutation sequence: an insert of a fresh
// tuple or a delete of a live one.
type Mutation struct {
	// Insert selects between the two shapes.
	Insert bool
	// Rel/Endo/Args describe the inserted tuple (Insert == true).
	Rel  string
	Endo bool
	Args []rel.Value
	// ID is the deleted tuple (Insert == false). Generation simulates
	// the id sequence, so the id is live at its application point for
	// any replayer that applies the sequence in order from the
	// instance's initial state.
	ID rel.TupleID
}

func (m Mutation) String() string {
	if !m.Insert {
		return fmt.Sprintf("-#%d", m.ID)
	}
	sign := "+"
	if !m.Endo {
		sign = "-exo "
	}
	return fmt.Sprintf("%s%s%v", sign, m.Rel, m.Args)
}

// RandomMutations derives a deterministic sequence of n mutations for
// inst: inserts draw tuples over the query's relations from the
// instance's active domain (plus fresh constants, so mutations can
// grow the domain), deletes pick tuples live at that point of the
// sequence — witness and noise tuples alike, so sequences routinely
// destroy answers, flip relations all-exogenous, and recreate deleted
// rows under new ids. The sequence never shrinks the database below
// two live tuples. Pure in (seed, inst, n); the rng stream is decoupled
// from RandomInstance's, so the same seed can drive both.
func RandomMutations(seed int64, inst *Instance, n int) []Mutation {
	rng := rand.New(rand.NewSource(seed ^ 0x6d75746174650a))
	arities := queryArities(inst.Query)
	pool := append(inst.DB.ActiveDomain(), "zm0", "zm1")

	live := make([]rel.TupleID, inst.DB.NumTuples())
	for i := range live {
		live[i] = rel.TupleID(i)
	}
	next := rel.TupleID(len(live))

	out := make([]Mutation, 0, n)
	for len(out) < n {
		if len(live) > 2 && rng.Float64() < 0.4 {
			k := rng.Intn(len(live))
			out = append(out, Mutation{ID: live[k]})
			live = append(live[:k], live[k+1:]...)
			continue
		}
		ra := arities[rng.Intn(len(arities))]
		args := make([]rel.Value, ra.arity)
		for i := range args {
			args[i] = pool[rng.Intn(len(pool))]
		}
		out = append(out, Mutation{Insert: true, Rel: ra.name, Endo: rng.Float64() >= 0.3, Args: args})
		live = append(live, next)
		next++
	}
	return out
}

// ApplyMutations replays a sequence onto db in order. It is the
// reference replayer the differential compares servers against.
func ApplyMutations(db *rel.Database, muts []Mutation) error {
	for i, m := range muts {
		if m.Insert {
			if _, err := db.Add(m.Rel, m.Endo, m.Args...); err != nil {
				return fmt.Errorf("mutation %d (%v): %v", i, m, err)
			}
			continue
		}
		if err := db.Delete(m.ID); err != nil {
			return fmt.Errorf("mutation %d (%v): %v", i, m, err)
		}
	}
	return nil
}
