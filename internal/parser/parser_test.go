package parser

import (
	"strings"
	"testing"

	"github.com/querycause/querycause/internal/rel"
)

func TestParseQueryWithHead(t *testing.T) {
	q, err := ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "q" || len(q.Head) != 1 || !q.Head[0].IsVar || q.Head[0].Var != "x" {
		t.Fatalf("head = %v", q.Head)
	}
	if len(q.Atoms) != 2 || q.Atoms[0].Pred != "R" || q.Atoms[1].Pred != "S" {
		t.Fatalf("atoms = %v", q.Atoms)
	}
}

func TestParseBooleanQuery(t *testing.T) {
	q, err := ParseQuery("q :- R(x,'a3'), S('a3')")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsBoolean() {
		t.Fatal("want Boolean query")
	}
	if q.Atoms[0].Terms[1].IsVar || q.Atoms[0].Terms[1].Const != "a3" {
		t.Fatalf("constant not parsed: %v", q.Atoms[0])
	}
	if q.Atoms[1].Terms[0].Const != "a3" {
		t.Fatalf("constant not parsed: %v", q.Atoms[1])
	}
}

func TestParseQueryConstantsVariants(t *testing.T) {
	q, err := ParseQuery(`q :- Movie(mid, "Sweeney Todd", 2007)`)
	if err != nil {
		t.Fatal(err)
	}
	ts := q.Atoms[0].Terms
	if ts[0].IsVar != true || ts[1].Const != "Sweeney Todd" || ts[2].Const != "2007" {
		t.Fatalf("terms = %v", ts)
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, bad := range []string{
		"q(x) R(x)",        // no :-
		"q :- r(x)",        // lower-case relation
		"q :- R(x",         // unbalanced
		"q :- ",            // empty body
		"q :- R()",         // no args
		"q :- R(x,@)",      // bad term
		"(x) :- R(x)",      // empty name
		"q :- R(x,'a)",     // unbalanced quote
		"q :- R(x)), S(y)", // stray paren
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) should fail", bad)
		}
	}
}

func TestParseTupleLine(t *testing.T) {
	relName, endo, args, err := ParseTupleLine("+R(a1, a5)")
	if err != nil {
		t.Fatal(err)
	}
	if relName != "R" || !endo || len(args) != 2 || args[0] != "a1" || args[1] != "a5" {
		t.Fatalf("got %s %v %v", relName, endo, args)
	}
	_, endo, _, err = ParseTupleLine("-S('hello world')")
	if err != nil {
		t.Fatal(err)
	}
	if endo {
		t.Fatal("want exogenous")
	}
	for _, bad := range []string{"R(a)", "+r(a)", "+R", "+R()", ""} {
		if _, _, _, err := ParseTupleLine(bad); err == nil {
			t.Errorf("ParseTupleLine(%q) should fail", bad)
		}
	}
}

func TestParseDatabase(t *testing.T) {
	src := `
# Example 2.2
+R(a1, a5)
+R(a2, a1)   # trailing comment
-S(a3)
`
	db, err := ParseDatabase(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if db.NumTuples() != 3 {
		t.Fatalf("tuples = %d, want 3", db.NumTuples())
	}
	if db.Relation("R").Arity != 2 || db.Relation("S").Arity != 1 {
		t.Fatal("arities wrong")
	}
	if db.Tuple(2).Endo {
		t.Fatal("S(a3) should be exogenous")
	}
}

func TestParseDatabaseErrors(t *testing.T) {
	if _, err := ParseDatabase(strings.NewReader("+R(a)\n+R(a,b)\n")); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := ParseDatabase(strings.NewReader("R(a)\n")); err == nil {
		t.Error("missing +/- should fail")
	}
}

func TestRoundTripWithRel(t *testing.T) {
	q, err := ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	db, err := ParseDatabase(strings.NewReader("+R(a,b)\n+S(b)\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(db); err != nil {
		t.Fatal(err)
	}
	bq, err := q.Bind("a")
	if err != nil {
		t.Fatal(err)
	}
	if bq.Atoms[0].Terms[0].Const != "a" {
		t.Fatalf("bind failed: %v", bq)
	}
}

func TestFormatDatabaseRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		add  func(db *rel.Database)
	}{
		{"plain", func(db *rel.Database) {
			db.MustAdd("R", true, "a1", "a2")
			db.MustAdd("S", false, "a2")
		}},
		{"syntax characters quoted", func(db *rel.Database) {
			db.MustAdd("R", true, "with space", "comma,inside")
			db.MustAdd("R", false, "paren(s)", "hash#tag")
			db.MustAdd("T", true, "double\"quote", "single'quote")
		}},
		{"numeric and underscore", func(db *rel.Database) {
			db.MustAdd("N", true, "42", "_x")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := rel.NewDatabase()
			tc.add(db)
			text, err := FormatDatabase(db)
			if err != nil {
				t.Fatal(err)
			}
			back, err := ParseDatabase(strings.NewReader(text))
			if err != nil {
				t.Fatalf("parse of formatted output failed: %v\n%s", err, text)
			}
			if back.NumTuples() != db.NumTuples() {
				t.Fatalf("tuple count %d != %d", back.NumTuples(), db.NumTuples())
			}
			for i := 0; i < db.NumTuples(); i++ {
				a, b := db.Tuple(rel.TupleID(i)), back.Tuple(rel.TupleID(i))
				if a.String() != b.String() || a.Endo != b.Endo {
					t.Errorf("tuple %d: %v (endo %v) != %v (endo %v)", i, a, a.Endo, b, b.Endo)
				}
			}
		})
	}
}

// TestParseDatabaseErrorTable enumerates the malformed inputs the
// explanation server must answer with 4xx; each must fail cleanly here.
func TestParseDatabaseErrorTable(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"unterminated args", "+R(a,"},
		{"no sign", "R(a,b)"},
		{"lower-case relation", "+r(a)"},
		{"empty relation name", "+(a)"},
		{"no arguments", "+R()"},
		{"arity drift", "+R(a)\n+R(a,b)"},
		{"garbage line", "hello world"},
		{"unbalanced quote", "+R('a,b)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseDatabase(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ParseDatabase(%q) succeeded; want error", tc.in)
			}
		})
	}
}

// TestStripCommentQuoteAware: '#' inside a quoted value is data, not a
// comment delimiter.
func TestStripCommentQuoteAware(t *testing.T) {
	db, err := ParseDatabase(strings.NewReader("+R('a#b') # trailing comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Tuple(0).Args[0]; got != "a#b" {
		t.Errorf("value = %q; want a#b", got)
	}
}

// TestFormatDatabaseUnrepresentable: values the escape-free line format
// cannot carry must be reported, not silently emitted as garbage.
func TestFormatDatabaseUnrepresentable(t *testing.T) {
	cases := []struct {
		name string
		val  string
	}{
		{"newline", "a\nb"},
		{"carriage return", "a\rb"},
		{"both quote characters", "both'and\"quotes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := rel.NewDatabase()
			db.MustAdd("R", true, rel.Value(tc.val))
			if out, err := FormatDatabase(db); err == nil {
				t.Errorf("FormatDatabase succeeded with %q; output:\n%s", tc.val, out)
			}
		})
	}
}
