package parser

import (
	"strings"
	"testing"
)

func TestParseQueryWithHead(t *testing.T) {
	q, err := ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "q" || len(q.Head) != 1 || !q.Head[0].IsVar || q.Head[0].Var != "x" {
		t.Fatalf("head = %v", q.Head)
	}
	if len(q.Atoms) != 2 || q.Atoms[0].Pred != "R" || q.Atoms[1].Pred != "S" {
		t.Fatalf("atoms = %v", q.Atoms)
	}
}

func TestParseBooleanQuery(t *testing.T) {
	q, err := ParseQuery("q :- R(x,'a3'), S('a3')")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsBoolean() {
		t.Fatal("want Boolean query")
	}
	if q.Atoms[0].Terms[1].IsVar || q.Atoms[0].Terms[1].Const != "a3" {
		t.Fatalf("constant not parsed: %v", q.Atoms[0])
	}
	if q.Atoms[1].Terms[0].Const != "a3" {
		t.Fatalf("constant not parsed: %v", q.Atoms[1])
	}
}

func TestParseQueryConstantsVariants(t *testing.T) {
	q, err := ParseQuery(`q :- Movie(mid, "Sweeney Todd", 2007)`)
	if err != nil {
		t.Fatal(err)
	}
	ts := q.Atoms[0].Terms
	if ts[0].IsVar != true || ts[1].Const != "Sweeney Todd" || ts[2].Const != "2007" {
		t.Fatalf("terms = %v", ts)
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, bad := range []string{
		"q(x) R(x)",        // no :-
		"q :- r(x)",        // lower-case relation
		"q :- R(x",         // unbalanced
		"q :- ",            // empty body
		"q :- R()",         // no args
		"q :- R(x,@)",      // bad term
		"(x) :- R(x)",      // empty name
		"q :- R(x,'a)",     // unbalanced quote
		"q :- R(x)), S(y)", // stray paren
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) should fail", bad)
		}
	}
}

func TestParseTupleLine(t *testing.T) {
	relName, endo, args, err := ParseTupleLine("+R(a1, a5)")
	if err != nil {
		t.Fatal(err)
	}
	if relName != "R" || !endo || len(args) != 2 || args[0] != "a1" || args[1] != "a5" {
		t.Fatalf("got %s %v %v", relName, endo, args)
	}
	_, endo, _, err = ParseTupleLine("-S('hello world')")
	if err != nil {
		t.Fatal(err)
	}
	if endo {
		t.Fatal("want exogenous")
	}
	for _, bad := range []string{"R(a)", "+r(a)", "+R", "+R()", ""} {
		if _, _, _, err := ParseTupleLine(bad); err == nil {
			t.Errorf("ParseTupleLine(%q) should fail", bad)
		}
	}
}

func TestParseDatabase(t *testing.T) {
	src := `
# Example 2.2
+R(a1, a5)
+R(a2, a1)   # trailing comment
-S(a3)
`
	db, err := ParseDatabase(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if db.NumTuples() != 3 {
		t.Fatalf("tuples = %d, want 3", db.NumTuples())
	}
	if db.Relation("R").Arity != 2 || db.Relation("S").Arity != 1 {
		t.Fatal("arities wrong")
	}
	if db.Tuple(2).Endo {
		t.Fatal("S(a3) should be exogenous")
	}
}

func TestParseDatabaseErrors(t *testing.T) {
	if _, err := ParseDatabase(strings.NewReader("+R(a)\n+R(a,b)\n")); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := ParseDatabase(strings.NewReader("R(a)\n")); err == nil {
		t.Error("missing +/- should fail")
	}
}

func TestRoundTripWithRel(t *testing.T) {
	q, err := ParseQuery("q(x) :- R(x,y), S(y)")
	if err != nil {
		t.Fatal(err)
	}
	db, err := ParseDatabase(strings.NewReader("+R(a,b)\n+S(b)\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(db); err != nil {
		t.Fatal(err)
	}
	bq, err := q.Bind("a")
	if err != nil {
		t.Fatal(err)
	}
	if bq.Atoms[0].Terms[0].Const != "a" {
		t.Fatalf("bind failed: %v", bq)
	}
}
