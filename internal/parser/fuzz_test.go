// Native fuzz targets for the textual formats: neither parser may
// ever panic, and everything that parses must survive the
// format/reparse round-trip unchanged — the differential harness's
// server replay and testdata regressions both depend on it.
//
// The seed corpus mirrors the inputs under examples/ (the quickstart
// Example 2.2 data, the whynot real database, the dichotomy query
// zoo) plus edge cases of the quoting grammar.
package parser

import (
	"strings"
	"testing"
)

// FuzzParseDatabase: ParseDatabase must never panic; what parses must
// round-trip byte-identically through FormatDatabase (same relations,
// tuples, IDs, endo flags).
func FuzzParseDatabase(f *testing.F) {
	seeds := []string{
		// examples/quickstart (Example 2.2), in tuple-line form.
		"+R(a1, a5)\n+R(a2, a1)\n+R(a3, a3)\n+R(a4, a3)\n+R(a4, a2)\n+S(a1)\n+S(a2)\n+S(a3)\n+S(a4)\n+S(a6)\n",
		// examples/whynot: exogenous real database with comments.
		"\n# Real database (exogenous): courses taken by students.\n-Took(alice, databases)\n-Took(alice, algorithms)\n-Took(bob, databases)\n# Honors requirements met (exogenous).\n-Honors(algorithms)\n-Honors(theory)\n",
		// Quoting edge cases the grammar must round-trip.
		"+R('a,b', \"c'd\")\n-S('with space', '#hash')\n+T('', x)\n",
		"+R(1, 23x)\n-R(9, 0)\n",
		"# only comments\n\n   \n",
		"+R(a)\n+R(a)\n", // duplicate rows are permitted
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		db, err := ParseDatabase(strings.NewReader(input))
		if err != nil {
			return // rejected inputs just must not panic
		}
		text, err := FormatDatabase(db)
		if err != nil {
			// Only values the line grammar cannot represent may be
			// refused, and none of them can come from the line grammar.
			t.Fatalf("FormatDatabase rejected a parsed database: %v\ninput: %q", err, input)
		}
		db2, err := ParseDatabase(strings.NewReader(text))
		if err != nil {
			t.Fatalf("reparse failed: %v\nformatted: %q", err, text)
		}
		if db.NumTuples() != db2.NumTuples() {
			t.Fatalf("round-trip changed tuple count: %d -> %d\ninput: %q", db.NumTuples(), db2.NumTuples(), input)
		}
		for _, tup := range db.Tuples() {
			got := db2.Tuple(tup.ID)
			if got.Rel != tup.Rel || got.Endo != tup.Endo || len(got.Args) != len(tup.Args) {
				t.Fatalf("round-trip changed tuple %d: %v -> %v", tup.ID, tup, got)
			}
			for i := range tup.Args {
				if got.Args[i] != tup.Args[i] {
					t.Fatalf("round-trip changed tuple %d arg %d: %q -> %q", tup.ID, i, tup.Args[i], got.Args[i])
				}
			}
		}
		text2, err := FormatDatabase(db2)
		if err != nil || text2 != text {
			t.Fatalf("format not a fixpoint: %q vs %q (err %v)", text, text2, err)
		}
	})
}

// FuzzParseQuery: ParseQuery must never panic; what parses must
// round-trip through Query.String unchanged.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		// examples/quickstart and examples/whynot.
		"q(x) :- R(x,y), S(y)",
		"deans(s) :- Took(s, c), Honors(c)",
		// examples/dichotomy: the paper's query zoo.
		"q :- R(x,y), S(y,z)",
		"q :- R(x,y), S(y,z), T(z,x)",
		"q :- R(x,y), S(y,z), T(z,u), K(u,x)",
		"q :- A(x), B(y), C(z), W(x,y,z)",
		"q :- R(x,y), S(y,z), T(z,x), V(x)",
		// Constants, quoting, numbers, bound heads.
		"q :- R('a4',y), S(y)",
		"q(x,x) :- R(x, 'a b'), S(\"c,d\", 3)",
		"q('k') :- R(1, x0_y)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := ParseQuery(input)
		if err != nil {
			return
		}
		s := q.String()
		q2, err := ParseQuery(s)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", s, input, err)
		}
		if s2 := q2.String(); s2 != s {
			t.Fatalf("round-trip changed query: %q -> %q (input %q)", s, s2, input)
		}
	})
}
