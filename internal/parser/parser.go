// Package parser reads the textual query and database formats used by
// the command-line tools and examples.
//
// Query syntax (Datalog-style, matching the paper's notation):
//
//	q(x) :- R(x,y), S(y,'a3')
//	q :- R(x,y), S(y)            (Boolean)
//
// Relation names begin with an upper-case letter; bare lower-case
// identifiers are variables; quoted strings ('…' or "…") and numbers
// are constants.
//
// Database syntax, one tuple per line:
//
//	+R(a1, a5)     endogenous tuple
//	-S(a3)         exogenous tuple
//	# comment      (blank lines and comments ignored)
package parser

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"

	"github.com/querycause/querycause/internal/qerr"
	"github.com/querycause/querycause/internal/rel"
)

// ParseQuery parses a conjunctive query. Errors are tagged
// qerr.ErrBadQuery.
func ParseQuery(s string) (*rel.Query, error) {
	q, err := parseQuery(s)
	return q, qerr.Tag(qerr.ErrBadQuery, err)
}

func parseQuery(s string) (*rel.Query, error) {
	parts := strings.SplitN(s, ":-", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("parser: query must contain ':-': %q", s)
	}
	headStr := strings.TrimSpace(parts[0])
	bodyStr := strings.TrimSpace(parts[1])
	q := &rel.Query{}
	// Head: name or name(args).
	if i := strings.IndexByte(headStr, '('); i >= 0 {
		if !strings.HasSuffix(headStr, ")") {
			return nil, fmt.Errorf("parser: malformed head %q", headStr)
		}
		q.Name = strings.TrimSpace(headStr[:i])
		args, err := parseTerms(headStr[i+1 : len(headStr)-1])
		if err != nil {
			return nil, fmt.Errorf("parser: head: %w", err)
		}
		q.Head = args
	} else {
		q.Name = headStr
	}
	if q.Name == "" {
		return nil, fmt.Errorf("parser: empty query name in %q", s)
	}
	atoms, err := splitAtoms(bodyStr)
	if err != nil {
		return nil, err
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("parser: empty body in %q", s)
	}
	for _, a := range atoms {
		atom, err := parseAtom(a)
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, atom)
	}
	return q, nil
}

// splitAtoms splits "R(x,y), S(y)" at top-level commas.
func splitAtoms(s string) ([]string, error) {
	var out []string
	depth := 0
	inQuote := rune(0)
	start := 0
	for i, r := range s {
		switch {
		case inQuote != 0:
			if r == inQuote {
				inQuote = 0
			}
		case r == '\'' || r == '"':
			inQuote = r
		case r == '(':
			depth++
		case r == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("parser: unbalanced ')' in %q", s)
			}
		case r == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if depth != 0 || inQuote != 0 {
		return nil, fmt.Errorf("parser: unbalanced parentheses or quotes in %q", s)
	}
	last := strings.TrimSpace(s[start:])
	if last != "" {
		out = append(out, last)
	}
	return out, nil
}

func parseAtom(s string) (rel.Atom, error) {
	i := strings.IndexByte(s, '(')
	if i < 0 || !strings.HasSuffix(s, ")") {
		return rel.Atom{}, fmt.Errorf("parser: malformed atom %q", s)
	}
	name := strings.TrimSpace(s[:i])
	if err := checkRelName(name); err != nil {
		return rel.Atom{}, err
	}
	terms, err := parseTerms(s[i+1 : len(s)-1])
	if err != nil {
		return rel.Atom{}, fmt.Errorf("parser: atom %s: %w", name, err)
	}
	if len(terms) == 0 {
		return rel.Atom{}, fmt.Errorf("parser: atom %s has no arguments", name)
	}
	return rel.Atom{Pred: name, Terms: terms}, nil
}

func checkRelName(name string) error {
	if name == "" {
		return fmt.Errorf("parser: empty relation name")
	}
	r := []rune(name)[0]
	if !unicode.IsUpper(r) {
		return fmt.Errorf("parser: relation name %q must start with an upper-case letter", name)
	}
	return nil
}

func parseTerms(s string) ([]rel.Term, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts, err := splitAtoms(s) // same top-level comma logic
	if err != nil {
		return nil, err
	}
	out := make([]rel.Term, 0, len(parts))
	for _, p := range parts {
		t, err := parseTerm(p)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

func parseTerm(s string) (rel.Term, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return rel.Term{}, fmt.Errorf("empty term")
	}
	if (s[0] == '\'' || s[0] == '"') && len(s) >= 2 && s[len(s)-1] == s[0] {
		return rel.C(rel.Value(s[1 : len(s)-1])), nil
	}
	r := []rune(s)[0]
	if unicode.IsDigit(r) {
		// Quote-free constant token. One holding both quote characters
		// (e.g. 3'a'"b") could not be re-rendered by Term.String, which
		// has no escapes; reject it so parsed queries round-trip
		// (surfaced by FuzzParseQuery, corpus input aa69d90b132c31f5).
		if strings.Contains(s, "'") && strings.Contains(s, `"`) {
			return rel.Term{}, fmt.Errorf("constant %q mixes both quote characters, which the escape-free query grammar cannot represent", s)
		}
		return rel.C(rel.Value(s)), nil
	}
	if unicode.IsLower(r) || r == '_' {
		for _, c := range s {
			if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
				return rel.Term{}, fmt.Errorf("invalid variable name %q", s)
			}
		}
		return rel.V(s), nil
	}
	return rel.Term{}, fmt.Errorf("cannot parse term %q (variables are lower-case, constants quoted or numeric)", s)
}

// stripComment removes a trailing '#' comment, ignoring '#' inside
// quoted values so FormatDatabase output round-trips.
func stripComment(line string) string {
	inQuote := rune(0)
	for i, r := range line {
		switch {
		case inQuote != 0:
			if r == inQuote {
				inQuote = 0
			}
		case r == '\'' || r == '"':
			inQuote = r
		case r == '#':
			return line[:i]
		}
	}
	return line
}

// ParseTupleLine parses one database line: +R(a,b) or -R(a,b).
func ParseTupleLine(line string) (relName string, endo bool, args []rel.Value, err error) {
	relName, endo, args, err = parseTupleLine(line)
	return relName, endo, args, qerr.Tag(qerr.ErrBadQuery, err)
}

func parseTupleLine(line string) (relName string, endo bool, args []rel.Value, err error) {
	line = strings.TrimSpace(line)
	if line == "" {
		return "", false, nil, fmt.Errorf("parser: empty tuple line")
	}
	switch line[0] {
	case '+':
		endo = true
	case '-':
		endo = false
	default:
		return "", false, nil, fmt.Errorf("parser: tuple line must start with + (endogenous) or - (exogenous): %q", line)
	}
	body := strings.TrimSpace(line[1:])
	i := strings.IndexByte(body, '(')
	if i < 0 || !strings.HasSuffix(body, ")") {
		return "", false, nil, fmt.Errorf("parser: malformed tuple %q", line)
	}
	relName = strings.TrimSpace(body[:i])
	if err := checkRelName(relName); err != nil {
		return "", false, nil, err
	}
	parts, err := splitAtoms(body[i+1 : len(body)-1])
	if err != nil {
		return "", false, nil, err
	}
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if len(p) >= 2 && (p[0] == '\'' || p[0] == '"') && p[len(p)-1] == p[0] {
			p = p[1 : len(p)-1]
		}
		// The grammar has no escapes, so values holding both quote
		// characters or a line-break character are unrepresentable by
		// FormatDatabase. Tokens that would parse into one (e.g.
		// +A('0'"") — a quoted segment with trailing quoted garbage —
		// or +A(0\r0) with a stray carriage return) are rejected so
		// that everything ParseDatabase accepts round-trips. Both were
		// surfaced by FuzzParseDatabase; the minimized inputs are in
		// the checked-in fuzz corpus.
		if strings.Contains(p, "'") && strings.Contains(p, `"`) {
			return "", false, nil, fmt.Errorf("parser: value %q mixes both quote characters, which the escape-free tuple-line format cannot represent", p)
		}
		if strings.ContainsAny(p, "\r\n") {
			return "", false, nil, fmt.Errorf("parser: value %q contains a line break, which the tuple-line format cannot represent", p)
		}
		args = append(args, rel.Value(p))
	}
	if len(args) == 0 {
		return "", false, nil, fmt.Errorf("parser: tuple %q has no values", line)
	}
	return relName, endo, args, nil
}

// FormatDatabase renders a database in the textual format ParseDatabase
// reads: one "+R(a,b)" / "-S(c)" line per live tuple in insertion
// order; deleted tuples are omitted. Values containing syntax
// characters (commas, parentheses, quotes, '#', or surrounding
// whitespace) are quoted. For databases with no deletions,
// FormatDatabase and ParseDatabase round-trip: parsing the output
// reproduces the same relations, tuples, IDs, and endo flags (a
// mutated database re-parses with compacted IDs instead). Values the line-oriented,
// escape-free grammar cannot represent — ones containing a newline, a
// carriage return, or both quote characters — are reported as an error
// rather than silently emitted as unparseable text.
func FormatDatabase(db *rel.Database) (string, error) {
	var b strings.Builder
	for _, t := range db.Tuples() {
		if !db.Live(t.ID) {
			continue
		}
		if t.Endo {
			b.WriteByte('+')
		} else {
			b.WriteByte('-')
		}
		b.WriteString(t.Rel)
		b.WriteByte('(')
		for i, v := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			qv, err := quoteValue(string(v))
			if err != nil {
				return "", fmt.Errorf("parser: tuple %v: %w", t, err)
			}
			b.WriteString(qv)
		}
		b.WriteString(")\n")
	}
	return b.String(), nil
}

// quoteValue quotes a value when the bare form would not survive the
// tuple-line grammar, choosing the quote character the value does not
// contain. The grammar has no escapes, so a value containing a line
// break or both quote characters is not representable.
func quoteValue(s string) (string, error) {
	if strings.ContainsAny(s, "\n\r") {
		return "", fmt.Errorf("value %q contains a line break, which the tuple-line format cannot represent", s)
	}
	if s != "" && !strings.ContainsAny(s, ",()'\"# \t") && s == strings.TrimSpace(s) {
		return s, nil
	}
	if !strings.Contains(s, "'") {
		return "'" + s + "'", nil
	}
	if !strings.Contains(s, "\"") {
		return "\"" + s + "\"", nil
	}
	return "", fmt.Errorf("value %q contains both quote characters, which the escape-free tuple-line format cannot represent", s)
}

// ParseDatabase reads a database file: one tuple per line, comments
// with '#'.
func ParseDatabase(r io.Reader) (*rel.Database, error) {
	db := rel.NewDatabase()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := stripComment(sc.Text())
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		relName, endo, args, err := ParseTupleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, err := db.Add(relName, endo, args...); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}
