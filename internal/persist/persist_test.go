package persist

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/rewrite"
	"github.com/querycause/querycause/internal/shape"
)

const dbText = `
+R(a,b)
+R(b,c)
-S(b)
+S(c)
+T(a,b,c)
`

func testDB(t *testing.T) *rel.Database {
	t.Helper()
	db, err := parser.ParseDatabase(strings.NewReader(dbText))
	if err != nil {
		t.Fatalf("parsing test database: %v", err)
	}
	return db
}

func testCerts(t *testing.T, db *rel.Database, query string) (*rewrite.Certificate, *rewrite.Certificate) {
	t.Helper()
	q, err := parser.ParseQuery(query)
	if err != nil {
		t.Fatalf("parsing query: %v", err)
	}
	sh := shape.FromQuery(q, core.EndoFn(db))
	sound, err := rewrite.ClassifySound(sh)
	if err != nil {
		t.Fatalf("ClassifySound: %v", err)
	}
	paper, err := rewrite.Classify(sh)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	return sound, paper
}

// assertSameDatabase compares two databases down to the interned
// representation: dictionary tables, per-column code vectors, row→ID
// maps, and endogenous flags must all be byte-identical.
func assertSameDatabase(t *testing.T, want, got *rel.Database) {
	t.Helper()
	wd, gd := want.Dict(), got.Dict()
	if wd.Len() != gd.Len() {
		t.Fatalf("dict length: want %d, got %d", wd.Len(), gd.Len())
	}
	for c := 0; c < wd.Len(); c++ {
		if wv, gv := wd.Value(uint32(c)), gd.Value(uint32(c)); wv != gv {
			t.Fatalf("dict code %d: want %q, got %q", c, wv, gv)
		}
	}
	if len(want.Relations) != len(got.Relations) {
		t.Fatalf("relation count: want %d, got %d", len(want.Relations), len(got.Relations))
	}
	for name, wr := range want.Relations {
		gr := got.Relation(name)
		if gr == nil {
			t.Fatalf("relation %s missing after restore", name)
		}
		if wr.Arity != gr.Arity || wr.Len() != gr.Len() {
			t.Fatalf("relation %s: want %d/%d rows/arity, got %d/%d", name, wr.Len(), wr.Arity, gr.Len(), gr.Arity)
		}
		for c := 0; c < wr.Arity; c++ {
			if !reflect.DeepEqual(wr.Col(c), gr.Col(c)) {
				t.Fatalf("relation %s column %d code vectors differ:\nwant %v\ngot  %v", name, c, wr.Col(c), gr.Col(c))
			}
		}
		if !reflect.DeepEqual(wr.RowIDs(), gr.RowIDs()) {
			t.Fatalf("relation %s row IDs differ: want %v, got %v", name, wr.RowIDs(), gr.RowIDs())
		}
	}
	if want.NumTuples() != got.NumTuples() {
		t.Fatalf("tuple count: want %d, got %d", want.NumTuples(), got.NumTuples())
	}
	for id := 0; id < want.NumTuples(); id++ {
		if we, ge := want.Endo(rel.TupleID(id)), got.Endo(rel.TupleID(id)); we != ge {
			t.Fatalf("tuple %d endo flag: want %v, got %v", id, we, ge)
		}
	}
}

func TestRoundTripByteIdentical(t *testing.T) {
	db := testDB(t)
	sound, paper := testCerts(t, db, "q() :- R(x,y), S(y)")

	snap := &Snapshot{
		ID:          "d7",
		Queries:     []Query{{ID: "q1", Text: "q() :- R(x,y), S(y)", Program: "prog"}},
		NextQueryID: 1,
		Certs:       []Certificate{{Key: "R(v0,v1,)|S(v1,)|", Sound: sound, Paper: paper}},
	}
	snap.SetDatabase(db)

	data, err := Encode(snap)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}

	// gob legitimately collapses empty-but-non-nil slices to nil and
	// duplicates aliased pointers, so whole-struct DeepEqual is too
	// strict; re-encoding the decoded snapshot must reproduce the exact
	// bytes instead (byte-identity of the serialized form).
	data2, err := Encode(back)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if string(data) != string(data2) {
		t.Fatalf("snapshot is not byte-stable across a round-trip (%d vs %d bytes)", len(data), len(data2))
	}
	if back.ID != snap.ID || back.NextQueryID != snap.NextQueryID ||
		!reflect.DeepEqual(back.Values, snap.Values) ||
		!reflect.DeepEqual(back.Relations, snap.Relations) ||
		!reflect.DeepEqual(back.Tuples, snap.Tuples) ||
		!reflect.DeepEqual(back.Queries, snap.Queries) {
		t.Fatalf("snapshot did not round-trip:\nwant %#v\ngot  %#v", snap, back)
	}
	restored, err := back.Database()
	if err != nil {
		t.Fatalf("rebuilding database: %v", err)
	}
	assertSameDatabase(t, db, restored)

	// The restored certificates must be usable as-is: identical class,
	// rule, orders, and shapes.
	for i, pair := range [][2]*rewrite.Certificate{{sound, back.Certs[0].Sound}, {paper, back.Certs[0].Paper}} {
		w, g := pair[0], pair[1]
		if w.Class != g.Class || w.Rule != g.Rule || w.Hard != g.Hard ||
			!reflect.DeepEqual(w.LinearOrder, g.LinearOrder) ||
			!reflect.DeepEqual(*w.Input, *g.Input) {
			t.Fatalf("certificate %d did not round-trip:\nwant %#v\ngot  %#v", i, w, g)
		}
		if (w.Weakened == nil) != (g.Weakened == nil) || (w.Weakened != nil && !reflect.DeepEqual(*w.Weakened, *g.Weakened)) {
			t.Fatalf("certificate %d weakened shape did not round-trip", i)
		}
	}
}

func TestStoreSaveLoadDelete(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	db := testDB(t)
	snap := &Snapshot{ID: "d1"}
	snap.SetDatabase(db)
	if err := st.Save(snap); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := st.Load("d1")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.ID != "d1" || len(back.Tuples) != db.NumTuples() {
		t.Fatalf("loaded snapshot mismatch: %+v", back)
	}
	ids, err := st.IDs()
	if err != nil || len(ids) != 1 || ids[0] != "d1" {
		t.Fatalf("IDs = %v, %v", ids, err)
	}
	if err := st.Delete("d1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := st.Load("d1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load after delete: %v, want ErrNotFound", err)
	}
	if err := st.Delete("d1"); err != nil {
		t.Fatalf("double Delete: %v", err)
	}
}

func TestStoreRejectsInvalidID(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, id := range []string{"", "../escape", "a/b", ".hidden"} {
		if err := st.Save(&Snapshot{ID: id}); err == nil {
			t.Fatalf("Save accepted invalid id %q", id)
		}
	}
}

func TestCorruptedChecksumRejected(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	snap := &Snapshot{ID: "d1"}
	snap.SetDatabase(testDB(t))
	if err := st.Save(snap); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := st.Path("d1")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading snapshot: %v", err)
	}
	// Flip one bit in the middle of the payload.
	data[headerLen+len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("writing corrupted snapshot: %v", err)
	}
	if _, err := st.Load("d1"); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Load of corrupted snapshot: %v, want ErrChecksum", err)
	}
	// LoadAll must skip the corrupt file and report it.
	snaps, errs := st.LoadAll()
	if len(snaps) != 0 || len(errs) != 1 || !errors.Is(errs[0], ErrChecksum) {
		t.Fatalf("LoadAll = %d snaps, errs %v", len(snaps), errs)
	}
}

func TestFutureFormatVersionRejected(t *testing.T) {
	snap := &Snapshot{ID: "d1"}
	snap.SetDatabase(testDB(t))
	data, err := Encode(snap)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	data[len(magic)] = Version + 1
	if _, err := Decode(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("Decode of future version: %v, want ErrVersion", err)
	}
}

func TestTruncatedAndGarbageRejected(t *testing.T) {
	snap := &Snapshot{ID: "d1"}
	snap.SetDatabase(testDB(t))
	data, err := Encode(snap)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(data[:len(data)-3]); err == nil {
		t.Fatalf("Decode accepted truncated snapshot")
	}
	if _, err := Decode(data[:8]); err == nil {
		t.Fatalf("Decode accepted header-only snapshot")
	}
	if _, err := Decode([]byte("not a snapshot at all........")); err == nil {
		t.Fatalf("Decode accepted garbage")
	}
}

func TestWriteBehindCoalescesAndFlushes(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	wb := NewWriteBehind(st, 0) // manual flush only
	defer wb.Close()

	db := testDB(t)
	calls := 0
	snapshot := func() (*Snapshot, error) {
		calls++
		snap := &Snapshot{ID: "d1"}
		snap.SetDatabase(db)
		return snap, nil
	}
	wb.Mark("d1", snapshot)
	wb.Mark("d1", snapshot) // coalesces with the first
	if got := wb.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	if err := wb.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if calls != 1 {
		t.Fatalf("snapshot called %d times, want 1 (coalesced)", calls)
	}
	if wb.Writes() != 1 {
		t.Fatalf("Writes = %d, want 1", wb.Writes())
	}
	if _, err := st.Load("d1"); err != nil {
		t.Fatalf("Load after flush: %v", err)
	}
	// Clean flush with nothing dirty is a no-op.
	if err := wb.Flush(); err != nil || wb.Writes() != 1 {
		t.Fatalf("idle Flush: err=%v writes=%d", err, wb.Writes())
	}
}

func TestWriteBehindKeepsFailedSessionsDirty(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	wb := NewWriteBehind(st, 0)
	defer wb.Close()

	boom := errors.New("snapshot exploded")
	fail := true
	wb.Mark("d1", func() (*Snapshot, error) {
		if fail {
			return nil, boom
		}
		snap := &Snapshot{ID: "d1"}
		snap.SetDatabase(testDB(t))
		return snap, nil
	})
	if err := wb.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush error = %v, want %v", err, boom)
	}
	if got := wb.Pending(); got != 1 {
		t.Fatalf("failed session not kept dirty: Pending = %d", got)
	}
	fail = false
	if err := wb.Flush(); err != nil {
		t.Fatalf("retry Flush: %v", err)
	}
	if _, err := st.Load("d1"); err != nil {
		t.Fatalf("Load after retry: %v", err)
	}
}

func TestWriteBehindBackgroundLoop(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	wb := NewWriteBehind(st, 5*time.Millisecond)
	defer wb.Close()
	wb.Mark("d1", func() (*Snapshot, error) {
		snap := &Snapshot{ID: "d1"}
		snap.SetDatabase(testDB(t))
		return snap, nil
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := st.Load("d1"); err == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("background flusher never wrote the snapshot; path %s", filepath.Join(st.Dir(), "d1"+ext))
}
