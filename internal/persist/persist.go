// Package persist gives querycaused sessions a life beyond the
// process: it serializes a session's interned columnar database
// (internal/rel dictionary + per-column code vectors), its prepared and
// classified queries, and its hot dichotomy certificates to a
// versioned on-disk snapshot, so a restarted server serves warm
// explains without re-ingesting or re-classifying anything.
//
// # File format
//
// One session per file, <id>.qcs inside the store directory:
//
//	offset 0   magic "QCSN" (4 bytes)
//	offset 4   format version (1 byte)
//	offset 5   payload length (8 bytes, big endian)
//	offset 13  payload (gob-encoded Snapshot)
//	then       CRC-32 (IEEE) of the payload (4 bytes, big endian)
//
// Load verifies magic, version, length, and checksum before decoding;
// a flipped bit anywhere in the payload is ErrChecksum, a snapshot
// written by a future format is ErrVersion, and neither is ever
// half-applied (decode happens only after both checks pass). Writes go
// through a temp file + rename, so a crash mid-write leaves the
// previous snapshot intact.
//
// # Determinism
//
// The snapshot stores the dictionary in code order and the tuples in
// TupleID (insertion) order, each argument as its interned code.
// Replaying rel.Database.Add in that order re-interns values in the
// identical order, so the restored database has byte-identical
// dictionary tables, code vectors, and tuple IDs — lineage, cached
// certificates, and responsibility rankings carry over exactly
// (persist_test asserts this column by column).
//
// # Write-behind
//
// WriteBehind decouples snapshotting from the request path: handlers
// mark a session dirty (upload, prepare, certificate miss) and a
// background flusher snapshots marked sessions at a configurable
// interval. Flush is synchronous and is called from graceful drain, so
// a SIGTERM'd server persists everything before exiting 0. Snapshot
// closures read live session state at flush time, so coalesced marks
// lose nothing.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/rewrite"
)

// Format constants. Version is bumped on any incompatible payload
// change; old binaries reject newer snapshots with ErrVersion instead
// of misreading them. Version 2 added the per-tuple Deleted flag
// (mutable sessions): a v1 binary would silently drop deletions, so
// the frame version forces the rejection. This binary still reads v1
// snapshots — a missing Deleted field gob-decodes to false.
const (
	Version    = 2
	minVersion = 1
	magic      = "QCSN"
	ext        = ".qcs"
	headerLen  = len(magic) + 1 + 8 // magic + version + payload length
)

var (
	// ErrChecksum means the payload bytes do not match the stored CRC —
	// the snapshot is corrupt and must not be loaded.
	ErrChecksum = errors.New("persist: snapshot checksum mismatch")
	// ErrVersion means the snapshot was written by a newer format
	// version than this binary understands.
	ErrVersion = errors.New("persist: unsupported snapshot format version")
	// ErrNotFound means no snapshot exists for the requested session.
	ErrNotFound = errors.New("persist: snapshot not found")
)

// Snapshot is the serialized form of one session. All state needed to
// serve warm explains is here; per-answer engines (computed lineage)
// are deliberately excluded — they rebuild on demand from the restored
// database and certificates.
type Snapshot struct {
	// ID is the session id ("d12"); it doubles as the file name.
	ID string
	// Values is the interning dictionary in code order: Values[c] is
	// the constant with code c.
	Values []string
	// Relations is the relation-name table referenced by Tuples.
	Relations []string
	// Tuples lists every tuple in TupleID (insertion) order.
	Tuples []Tuple
	// Queries are the prepared queries in preparation order.
	Queries []Query
	// NextQueryID continues the session's q%d id sequence.
	NextQueryID int
	// Certs are the hot dichotomy certificates, most recently used
	// first.
	Certs []Certificate
	// Idem are the session's mutation idempotency records, oldest
	// first. They ride the snapshot so a client retrying a mutation
	// whose response was lost to a handoff or restart is deduplicated by
	// the new owner too. Snapshots written before this field decode with
	// Idem nil — no records, never an error (gob tolerates the missing
	// field).
	Idem []Idempotency
}

// Idempotency is one deduplicated mutation: the client-supplied
// Idempotency-Key and the JSON-encoded response the original apply
// produced, replayed verbatim to retries.
type Idempotency struct {
	Key      string
	Response []byte
}

// Tuple is one database row: a relation-table index, the endogenous
// flag, and the interned code of each argument. Deleted marks a tuple
// that was removed after insertion: the row is still recorded (its ID
// slot and any dictionary values it introduced must survive the
// replay) and Database re-deletes it after the adds, landing on the
// mutated state at the same version.
type Tuple struct {
	Rel     int32
	Endo    bool
	Deleted bool
	Args    []uint32
}

// Query is one prepared query: its stable id, canonical text, and the
// generated cause program (may be empty).
type Query struct {
	ID      string
	Text    string
	Program string
}

// Certificate is one hot entry of the session's certificate cache: the
// bound-shape key plus the sound and paper-faithful certificates.
type Certificate struct {
	Key   string
	Sound *rewrite.Certificate
	Paper *rewrite.Certificate
}

// SetDatabase captures db into the snapshot's dictionary, relation
// table, and tuple list. Tuples are recorded in TupleID order with
// their interned argument codes, so Database can replay them into a
// byte-identical columnar store.
func (snap *Snapshot) SetDatabase(db *rel.Database) {
	dict := db.Dict()
	snap.Values = make([]string, dict.Len())
	for c := range snap.Values {
		snap.Values[c] = string(dict.Value(uint32(c)))
	}
	relIdx := make(map[string]int32)
	snap.Relations = snap.Relations[:0]
	snap.Tuples = make([]Tuple, 0, db.NumTuples())
	for _, t := range db.Tuples() {
		ri, ok := relIdx[t.Rel]
		if !ok {
			ri = int32(len(snap.Relations))
			relIdx[t.Rel] = ri
			snap.Relations = append(snap.Relations, t.Rel)
		}
		args := make([]uint32, len(t.Args))
		for i, v := range t.Args {
			args[i], _ = dict.Code(v) // every stored value is interned
		}
		snap.Tuples = append(snap.Tuples, Tuple{Rel: ri, Endo: t.Endo, Deleted: !db.Live(t.ID), Args: args})
	}
}

// Database rebuilds the columnar database by replaying the recorded
// tuples in TupleID order, then re-deleting the ones marked Deleted.
// Because rel interns values in insertion order and deletions commute,
// the rebuilt dictionary, code vectors, ID space, and version are
// byte-identical to the snapshotted ones.
func (snap *Snapshot) Database() (*rel.Database, error) {
	db := rel.NewDatabase()
	for i, t := range snap.Tuples {
		if int(t.Rel) < 0 || int(t.Rel) >= len(snap.Relations) {
			return nil, fmt.Errorf("persist: tuple %d references relation %d of %d", i, t.Rel, len(snap.Relations))
		}
		args := make([]rel.Value, len(t.Args))
		for j, c := range t.Args {
			if int(c) >= len(snap.Values) {
				return nil, fmt.Errorf("persist: tuple %d references value code %d of %d", i, c, len(snap.Values))
			}
			args[j] = rel.Value(snap.Values[c])
		}
		if _, err := db.Add(snap.Relations[t.Rel], t.Endo, args...); err != nil {
			return nil, fmt.Errorf("persist: replaying tuple %d: %w", i, err)
		}
	}
	for i, t := range snap.Tuples {
		if t.Deleted {
			if err := db.Delete(rel.TupleID(i)); err != nil {
				return nil, fmt.Errorf("persist: replaying deletion of tuple %d: %w", i, err)
			}
		}
	}
	return db, nil
}

// Store reads and writes session snapshots under one directory.
type Store struct {
	dir string
}

// Open ensures dir exists and returns a store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("persist: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating store dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// Path returns the snapshot file path for a session id.
func (st *Store) Path(id string) string { return filepath.Join(st.dir, id+ext) }

// Save atomically writes the snapshot (temp file + rename).
func (st *Store) Save(snap *Snapshot) error {
	if snap.ID == "" || snap.ID != filepath.Base(snap.ID) || strings.HasPrefix(snap.ID, ".") {
		return fmt.Errorf("persist: invalid session id %q", snap.ID)
	}
	data, err := Encode(snap)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.dir, snap.ID+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: creating temp snapshot: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.Path(snap.ID)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	return nil
}

// Load reads and verifies one session's snapshot. A missing file is
// ErrNotFound; corruption is ErrChecksum; a newer format is ErrVersion.
func (st *Store) Load(id string) (*Snapshot, error) {
	data, err := os.ReadFile(st.Path(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, fmt.Errorf("persist: reading snapshot %s: %w", id, err)
	}
	return Decode(data)
}

// Exists reports whether a snapshot is on disk for the session.
func (st *Store) Exists(id string) bool {
	_, err := os.Stat(st.Path(id))
	return err == nil
}

// Delete removes a session's snapshot; deleting a missing snapshot is
// not an error.
func (st *Store) Delete(id string) error {
	if err := os.Remove(st.Path(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("persist: deleting snapshot %s: %w", id, err)
	}
	return nil
}

// IDs lists the session ids with a snapshot on disk, sorted.
func (st *Store) IDs() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: listing store dir: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ext) {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ext))
	}
	sort.Strings(ids)
	return ids, nil
}

// LoadAll loads every snapshot in the store, skipping (and reporting)
// unreadable ones so one corrupt file cannot keep a server from
// starting with the rest of its sessions warm.
func (st *Store) LoadAll() (snaps []*Snapshot, errs []error) {
	ids, err := st.IDs()
	if err != nil {
		return nil, []error{err}
	}
	for _, id := range ids {
		snap, err := st.Load(id)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		snaps = append(snaps, snap)
	}
	return snaps, errs
}

// Encode serializes a snapshot into the framed on-disk format.
func Encode(snap *Snapshot) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return nil, fmt.Errorf("persist: encoding snapshot: %w", err)
	}
	body := payload.Bytes()
	out := make([]byte, 0, headerLen+len(body)+4)
	out = append(out, magic...)
	out = append(out, Version)
	out = binary.BigEndian.AppendUint64(out, uint64(len(body)))
	out = append(out, body...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return out, nil
}

// Decode verifies the frame (magic, version, length, checksum) and
// decodes the payload.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("persist: snapshot truncated (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("persist: bad snapshot magic %q", data[:len(magic)])
	}
	if v := data[len(magic)]; v < minVersion || v > Version {
		return nil, fmt.Errorf("%w: %d (this binary reads %d..%d)", ErrVersion, v, minVersion, Version)
	}
	n := binary.BigEndian.Uint64(data[len(magic)+1 : headerLen])
	if uint64(len(data)) != uint64(headerLen)+n+4 {
		return nil, fmt.Errorf("persist: snapshot length mismatch: header says %d payload bytes, file has %d", n, len(data)-headerLen-4)
	}
	body := data[headerLen : headerLen+int(n)]
	want := binary.BigEndian.Uint32(data[headerLen+int(n):])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: computed %08x, stored %08x", ErrChecksum, got, want)
	}
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("persist: decoding snapshot: %w", err)
	}
	return &snap, nil
}

// WriteBehind flushes dirty sessions to a Store in the background.
// Mark is O(1) on the request path; the actual snapshot closure runs at
// flush time, so many marks between flushes coalesce into one write of
// the latest state. A flush that fails (e.g. disk full) keeps the
// session dirty for the next round.
type WriteBehind struct {
	st *Store

	mu    sync.Mutex
	dirty map[string]func() (*Snapshot, error)

	writes  atomic.Uint64
	flushes atomic.Uint64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewWriteBehind starts a flusher over st. interval <= 0 disables the
// background loop: marks accumulate until an explicit Flush (tests and
// drain paths use this to prove flush-on-drain does the work).
func NewWriteBehind(st *Store, interval time.Duration) *WriteBehind {
	wb := &WriteBehind{
		st:    st,
		dirty: make(map[string]func() (*Snapshot, error)),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if interval > 0 {
		go wb.loop(interval)
	} else {
		close(wb.done)
	}
	return wb
}

func (wb *WriteBehind) loop(interval time.Duration) {
	defer close(wb.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = wb.Flush() // failed sessions stay dirty; retried next tick
		case <-wb.stop:
			return
		}
	}
}

// Mark flags a session dirty. snapshot is invoked at flush time and
// must be safe to call concurrently with request traffic.
func (wb *WriteBehind) Mark(id string, snapshot func() (*Snapshot, error)) {
	wb.mu.Lock()
	wb.dirty[id] = snapshot
	wb.mu.Unlock()
}

// Forget drops any pending mark for a session (it was deleted).
func (wb *WriteBehind) Forget(id string) {
	wb.mu.Lock()
	delete(wb.dirty, id)
	wb.mu.Unlock()
}

// Flush synchronously snapshots every dirty session. Sessions that
// fail to snapshot or save stay marked and their errors are joined into
// the return value; sessions marked while the flush runs are picked up
// by the next one.
func (wb *WriteBehind) Flush() error {
	wb.mu.Lock()
	batch := wb.dirty
	wb.dirty = make(map[string]func() (*Snapshot, error))
	wb.mu.Unlock()
	wb.flushes.Add(1)

	ids := make([]string, 0, len(batch))
	for id := range batch {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var errs []error
	for _, id := range ids {
		snapshot := batch[id]
		snap, err := snapshot()
		if err == nil {
			err = wb.st.Save(snap)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", id, err))
			wb.mu.Lock()
			if _, remarked := wb.dirty[id]; !remarked {
				wb.dirty[id] = snapshot
			}
			wb.mu.Unlock()
			continue
		}
		wb.writes.Add(1)
	}
	return errors.Join(errs...)
}

// Writes returns the number of snapshots written so far.
func (wb *WriteBehind) Writes() uint64 { return wb.writes.Load() }

// Pending returns the number of sessions currently marked dirty.
func (wb *WriteBehind) Pending() int {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return len(wb.dirty)
}

// Close stops the background loop and runs one final Flush.
func (wb *WriteBehind) Close() error {
	wb.stopOnce.Do(func() { close(wb.stop) })
	<-wb.done
	return wb.Flush()
}
