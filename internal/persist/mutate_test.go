package persist

import (
	"strings"
	"testing"

	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/rel"
)

// TestRoundTripWithDeletions checks a mutated database snapshots and
// restores bit-for-bit: deleted IDs stay deleted, the ID space and
// dictionary keep their gaps, and the version carries over.
func TestRoundTripWithDeletions(t *testing.T) {
	db := testDB(t)
	id := db.MustAdd("S", true, "zz") // value only this tuple interns
	if err := db.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(0); err != nil { // R(a,b)
		t.Fatal(err)
	}

	snap := &Snapshot{ID: "d1"}
	snap.SetDatabase(db)
	data, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Database()
	if err != nil {
		t.Fatal(err)
	}
	assertSameDatabase(t, db, got)
	if got.Live(0) || got.Live(id) {
		t.Fatal("restore revived deleted tuples")
	}
	if got.Version() != db.Version() {
		t.Fatalf("version: want %d, got %d", db.Version(), got.Version())
	}
	if got.NumLive() != db.NumLive() {
		t.Fatalf("live count: want %d, got %d", db.NumLive(), got.NumLive())
	}
	// The husk's dictionary value survived the replay (codes stay stable).
	if _, ok := got.Dict().Code(rel.Value("zz")); !ok {
		t.Fatal("dictionary lost the deleted tuple's value")
	}
}

// TestDecodeAcceptsV1 checks this binary still reads version-1
// snapshots (written before the Deleted flag existed): the frame
// version is not checksummed, so rewriting the byte stands in for a
// file written by an old binary.
func TestDecodeAcceptsV1(t *testing.T) {
	db, err := parser.ParseDatabase(strings.NewReader(dbText))
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{ID: "d1"}
	snap.SetDatabase(db)
	data, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len("QCSN")] = 1
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode of v1 frame: %v", err)
	}
	got, err := back.Database()
	if err != nil {
		t.Fatal(err)
	}
	assertSameDatabase(t, db, got)
	for _, tp := range back.Tuples {
		if tp.Deleted {
			t.Fatal("v1 snapshot decoded with Deleted set")
		}
	}
}
