package flow

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randNet generates a random layered-ish flow network.
type randNet struct {
	N     int
	Edges [][3]int64 // from, to, cap
}

func (randNet) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 4 + rng.Intn(6)
	var edges [][3]int64
	m := 5 + rng.Intn(15)
	for i := 0; i < m; i++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		if from == to {
			continue
		}
		c := int64(1 + rng.Intn(5))
		if rng.Intn(6) == 0 {
			c = Inf
		}
		edges = append(edges, [3]int64{int64(from), int64(to), c})
	}
	return reflect.ValueOf(randNet{N: n, Edges: edges})
}

func (rn randNet) build() *Graph {
	g := NewGraph(rn.N)
	for _, e := range rn.Edges {
		if _, err := g.AddEdge(int(e[0]), int(e[1]), e[2], nil); err != nil {
			panic(err)
		}
	}
	return g
}

// TestQuickMaxFlowMinCutDuality: the max flow equals the capacity of
// the returned min cut (when finite), and removing the cut really
// disconnects source from target.
func TestQuickMaxFlowMinCutDuality(t *testing.T) {
	f := func(rn randNet) bool {
		g := rn.build()
		v, cut := g.MinCut(0, rn.N-1)
		if v >= InfThreshold {
			return cut == nil
		}
		var capSum int64
		cutSet := make(map[*Edge]bool)
		for _, e := range cut {
			capSum += e.Orig
			cutSet[e] = true
		}
		if capSum != v {
			return false
		}
		// Reachability without cut edges.
		adj := make([][]int, rn.N)
		for _, es := range g.adj {
			for _, e := range es {
				if e.Orig > 0 && !cutSet[e] {
					adj[e.From] = append(adj[e.From], e.To)
				}
			}
		}
		seen := make([]bool, rn.N)
		stack := []int{0}
		seen[0] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj[x] {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		return !seen[rn.N-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFlowMonotoneInCapacity: raising one edge's capacity never
// decreases the max flow.
func TestQuickFlowMonotoneInCapacity(t *testing.T) {
	f := func(rn randNet, which uint8) bool {
		if len(rn.Edges) == 0 {
			return true
		}
		g := rn.build()
		before := g.MaxFlow(0, rn.N-1)
		idx := int(which) % len(rn.Edges)
		bumped := rn
		bumped.Edges = append([][3]int64(nil), rn.Edges...)
		if bumped.Edges[idx][2] < InfThreshold {
			bumped.Edges[idx][2] += 3
		}
		g2 := bumped.build()
		after := g2.MaxFlow(0, rn.N-1)
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
