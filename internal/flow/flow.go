// Package flow implements maximum flow / minimum cut on directed graphs
// with integer capacities, used by Algorithm 1 of Meliou et al.
// (VLDB 2010) to compute responsibilities of linear queries.
//
// The implementation is Dinic's algorithm (BFS level graph + blocking
// flows), adequate for the unit-capacity-dominated networks produced by
// the responsibility reduction. Capacities may be Inf; a max flow value
// of at least InfThreshold means no finite cut exists.
package flow

import (
	"fmt"
	"math"
)

// Inf is the capacity of uncuttable edges (exogenous tuples, protected
// path edges, source/target stubs).
const Inf int64 = math.MaxInt64 / 8

// InfThreshold classifies a flow value as "infinite" (no finite cut).
// Any real cut in our networks has capacity bounded by the number of
// tuples, far below this.
const InfThreshold int64 = Inf / 2

// Edge is one directed edge with residual bookkeeping.
type Edge struct {
	From, To int
	Cap      int64 // remaining capacity
	Orig     int64 // original capacity
	Payload  any   // caller tag (e.g. a tuple ID); nil for stub edges
	rev      int   // index of reverse edge in adj[To]
}

// Graph is a flow network on vertices 0..N-1.
type Graph struct {
	N   int
	adj [][]*Edge
}

// NewGraph returns an empty network on n vertices.
func NewGraph(n int) *Graph {
	return &Graph{N: n, adj: make([][]*Edge, n)}
}

// AddVertex appends a vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	g.N++
	return g.N - 1
}

// AddEdge adds a directed edge with the given capacity and payload and
// returns it (so callers can later adjust its capacity via SetCap).
func (g *Graph) AddEdge(from, to int, cap_ int64, payload any) (*Edge, error) {
	if from < 0 || from >= g.N || to < 0 || to >= g.N {
		return nil, fmt.Errorf("flow: edge (%d,%d) out of range [0,%d)", from, to, g.N)
	}
	e := &Edge{From: from, To: to, Cap: cap_, Orig: cap_, Payload: payload}
	r := &Edge{From: to, To: from, Cap: 0, Orig: 0}
	e.rev = len(g.adj[to])
	r.rev = len(g.adj[from])
	g.adj[from] = append(g.adj[from], e)
	g.adj[to] = append(g.adj[to], r)
	return e, nil
}

// Clone returns a deep copy of the graph plus the mapping from each
// original edge to its copy, so callers holding edge handles (for
// SetCap) can translate them. Adjacency order — and hence search order,
// max-flow augmentation order and min-cut edge order — is preserved
// exactly, making a clone's results bit-identical to the original's.
func (g *Graph) Clone() (*Graph, map[*Edge]*Edge) {
	ng := &Graph{N: g.N, adj: make([][]*Edge, len(g.adj))}
	remap := make(map[*Edge]*Edge)
	for v, es := range g.adj {
		ng.adj[v] = make([]*Edge, len(es))
		for i, e := range es {
			c := *e
			ng.adj[v][i] = &c
			remap[e] = &c
		}
	}
	return ng, remap
}

// SetCap rewrites an edge's capacity (both remaining and original).
// Flows computed earlier are invalidated; call Reset before re-running.
func (g *Graph) SetCap(e *Edge, cap_ int64) {
	e.Cap = cap_
	e.Orig = cap_
}

// Reset restores all residual capacities to their original values.
func (g *Graph) Reset() {
	for _, es := range g.adj {
		for _, e := range es {
			e.Cap = e.Orig
		}
	}
}

// MaxFlow computes the maximum s-t flow. The graph's residual state is
// reset first, so calls are independent.
func (g *Graph) MaxFlow(s, t int) int64 {
	g.Reset()
	if s == t {
		return Inf
	}
	var total int64
	level := make([]int, g.N)
	iter := make([]int, g.N)
	queue := make([]int, 0, g.N)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range g.adj[v] {
				if e.Cap > 0 && level[e.To] < 0 {
					level[e.To] = level[v] + 1
					queue = append(queue, e.To)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(v int, f int64) int64
	dfs = func(v int, f int64) int64 {
		if v == t {
			return f
		}
		for ; iter[v] < len(g.adj[v]); iter[v]++ {
			e := g.adj[v][iter[v]]
			if e.Cap <= 0 || level[e.To] != level[v]+1 {
				continue
			}
			d := dfs(e.To, min64(f, e.Cap))
			if d > 0 {
				e.Cap -= d
				g.adj[e.To][e.rev].Cap += d
				return d
			}
		}
		return 0
	}

	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, Inf)
			if f == 0 {
				break
			}
			total += f
			if total >= InfThreshold {
				return total
			}
		}
	}
	return total
}

// MinCut computes the maximum flow and returns the saturated edges of
// the corresponding minimum cut: original edges from the source side of
// the residual graph to the sink side. The returned value is the flow.
func (g *Graph) MinCut(s, t int) (int64, []*Edge) {
	v := g.MaxFlow(s, t)
	if v >= InfThreshold {
		return v, nil
	}
	reach := make([]bool, g.N)
	stack := []int{s}
	reach[s] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[x] {
			if e.Cap > 0 && !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	var cut []*Edge
	for _, es := range g.adj {
		for _, e := range es {
			if e.Orig > 0 && reach[e.From] && !reach[e.To] {
				cut = append(cut, e)
			}
		}
	}
	return v, cut
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
