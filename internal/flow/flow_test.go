package flow

import "testing"

func mustEdge(t *testing.T, g *Graph, from, to int, c int64, payload any) *Edge {
	t.Helper()
	e, err := g.AddEdge(from, to, c, payload)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSimplePath(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1, 5, nil)
	mustEdge(t, g, 1, 2, 3, nil)
	if got := g.MaxFlow(0, 2); got != 3 {
		t.Fatalf("flow = %d, want 3", got)
	}
}

func TestParallelAndBottleneck(t *testing.T) {
	g := NewGraph(4)
	mustEdge(t, g, 0, 1, 2, nil)
	mustEdge(t, g, 0, 2, 2, nil)
	mustEdge(t, g, 1, 3, 1, nil)
	mustEdge(t, g, 2, 3, 5, nil)
	if got := g.MaxFlow(0, 3); got != 3 {
		t.Fatalf("flow = %d, want 3", got)
	}
}

// TestClassicNetwork is the standard CLRS example with max flow 23.
func TestClassicNetwork(t *testing.T) {
	g := NewGraph(6)
	mustEdge(t, g, 0, 1, 16, nil)
	mustEdge(t, g, 0, 2, 13, nil)
	mustEdge(t, g, 1, 3, 12, nil)
	mustEdge(t, g, 2, 1, 4, nil)
	mustEdge(t, g, 2, 4, 14, nil)
	mustEdge(t, g, 3, 2, 9, nil)
	mustEdge(t, g, 3, 5, 20, nil)
	mustEdge(t, g, 4, 3, 7, nil)
	mustEdge(t, g, 4, 5, 4, nil)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Fatalf("flow = %d, want 23", got)
	}
}

func TestInfinitePath(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1, Inf, nil)
	mustEdge(t, g, 1, 2, Inf, nil)
	got := g.MaxFlow(0, 2)
	if got < InfThreshold {
		t.Fatalf("flow = %d, want >= InfThreshold", got)
	}
}

func TestMinCutMembership(t *testing.T) {
	// Diamond where the min cut is the two unit edges in the middle.
	g := NewGraph(6)
	mustEdge(t, g, 0, 1, Inf, nil)
	mustEdge(t, g, 0, 2, Inf, nil)
	e1 := mustEdge(t, g, 1, 3, 1, "t1")
	e2 := mustEdge(t, g, 2, 4, 1, "t2")
	mustEdge(t, g, 3, 5, Inf, nil)
	mustEdge(t, g, 4, 5, Inf, nil)
	v, cut := g.MinCut(0, 5)
	if v != 2 {
		t.Fatalf("flow = %d, want 2", v)
	}
	if len(cut) != 2 {
		t.Fatalf("cut = %v, want 2 edges", cut)
	}
	seen := map[any]bool{}
	for _, e := range cut {
		seen[e.Payload] = true
	}
	if !seen["t1"] || !seen["t2"] {
		t.Errorf("cut payloads = %v, want t1,t2 (got %v %v)", seen, e1, e2)
	}
}

func TestMinCutInfinite(t *testing.T) {
	g := NewGraph(2)
	mustEdge(t, g, 0, 1, Inf, nil)
	v, cut := g.MinCut(0, 1)
	if v < InfThreshold || cut != nil {
		t.Fatalf("expected infinite cut, got v=%d cut=%v", v, cut)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(4)
	mustEdge(t, g, 0, 1, 4, nil)
	mustEdge(t, g, 2, 3, 4, nil)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Fatalf("flow = %d, want 0", got)
	}
	v, cut := g.MinCut(0, 3)
	if v != 0 || len(cut) != 0 {
		t.Fatalf("mincut = %d/%v, want empty", v, cut)
	}
}

func TestSetCapAndReset(t *testing.T) {
	g := NewGraph(3)
	e := mustEdge(t, g, 0, 1, 1, nil)
	mustEdge(t, g, 1, 2, 10, nil)
	if got := g.MaxFlow(0, 2); got != 1 {
		t.Fatalf("flow = %d, want 1", got)
	}
	g.SetCap(e, 7)
	if got := g.MaxFlow(0, 2); got != 7 {
		t.Fatalf("after SetCap flow = %d, want 7", got)
	}
	g.SetCap(e, 0)
	if got := g.MaxFlow(0, 2); got != 0 {
		t.Fatalf("after zeroing flow = %d, want 0", got)
	}
}

func TestRepeatedRunsIndependent(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1, 4, nil)
	mustEdge(t, g, 1, 2, 4, nil)
	for i := 0; i < 3; i++ {
		if got := g.MaxFlow(0, 2); got != 4 {
			t.Fatalf("run %d: flow = %d, want 4", i, got)
		}
	}
}

func TestAddEdgeRangeError(t *testing.T) {
	g := NewGraph(2)
	if _, err := g.AddEdge(0, 9, 1, nil); err == nil {
		t.Fatal("expected range error")
	}
}

func TestAddVertex(t *testing.T) {
	g := NewGraph(1)
	v := g.AddVertex()
	if v != 1 || g.N != 2 {
		t.Fatalf("AddVertex = %d, N = %d", v, g.N)
	}
	mustEdge(t, g, 0, v, 2, nil)
	if got := g.MaxFlow(0, v); got != 2 {
		t.Fatalf("flow = %d, want 2", got)
	}
}

func TestSourceEqualsTarget(t *testing.T) {
	g := NewGraph(1)
	if got := g.MaxFlow(0, 0); got < InfThreshold {
		t.Fatalf("s==t flow = %d, want infinite", got)
	}
}
