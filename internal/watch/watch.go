// Package watch is the fanout layer of the live-explanation subsystem:
// a topic-keyed hub distributing events to subscribers over bounded
// buffers. It is deliberately transport- and payload-agnostic — the
// server and the in-process session both publish their DiffEvent wire
// frames through a Hub, so the two transports share one slow-consumer
// policy:
//
//   - Publish never blocks. A subscriber whose buffer is full misses
//     the event and is marked lagged; its consumer observes the mark
//     (TakeLag), drains what remains, and emits a full-resync snapshot
//     instead of a broken diff chain.
//   - Subscribe/Close are idempotent with respect to Publish: sends
//     happen under the hub lock and never race a channel close.
//
// Budgets (how many subscriptions a session may hold) are enforced by
// the caller at Subscribe time via Active counts; the hub only counts.
package watch

import (
	"sync"
	"sync/atomic"
)

// Hub fans events out to subscribers grouped by topic key.
type Hub[E any] struct {
	mu     sync.Mutex
	topics map[string]map[*Sub[E]]struct{}
	active atomic.Int64
	sent   atomic.Uint64
	lagged atomic.Uint64
}

// NewHub builds an empty hub.
func NewHub[E any]() *Hub[E] {
	return &Hub[E]{topics: make(map[string]map[*Sub[E]]struct{})}
}

// Sub is one subscription: consume from C, call Close exactly when
// done. After Close the channel is closed (consumers may range it).
type Sub[E any] struct {
	hub    *Hub[E]
	topic  string
	ch     chan E
	lag    atomic.Bool
	closed bool // guarded by hub.mu
}

// Subscribe registers a subscriber on topic with the given buffer
// capacity (minimum 1: an unbuffered subscriber would lag on every
// publish).
func (h *Hub[E]) Subscribe(topic string, buffer int) *Sub[E] {
	if buffer < 1 {
		buffer = 1
	}
	s := &Sub[E]{hub: h, topic: topic, ch: make(chan E, buffer)}
	h.mu.Lock()
	set := h.topics[topic]
	if set == nil {
		set = make(map[*Sub[E]]struct{})
		h.topics[topic] = set
	}
	set[s] = struct{}{}
	h.mu.Unlock()
	h.active.Add(1)
	return s
}

// Publish delivers ev to every subscriber of topic, without blocking:
// subscribers with a full buffer are marked lagged instead. It returns
// the number of subscribers the event was actually buffered to.
func (h *Hub[E]) Publish(topic string, ev E) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for s := range h.topics[topic] {
		select {
		case s.ch <- ev:
			n++
		default:
			s.lag.Store(true)
			h.lagged.Add(1)
		}
	}
	h.sent.Add(uint64(n))
	return n
}

// Subscribers reports the number of subscribers on topic.
func (h *Hub[E]) Subscribers(topic string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.topics[topic])
}

// Active reports the total live subscription count across all topics.
func (h *Hub[E]) Active() int64 { return h.active.Load() }

// Sent reports the cumulative count of events buffered to subscribers.
func (h *Hub[E]) Sent() uint64 { return h.sent.Load() }

// Lagged reports the cumulative count of events dropped on full
// subscriber buffers.
func (h *Hub[E]) Lagged() uint64 { return h.lagged.Load() }

// CloseAll closes every live subscription on the hub. Session handoff
// uses it to end the old owner's watch streams: consumers observe the
// channel close, end their streams, and the clients reconnect to the
// new owner and resume.
func (h *Hub[E]) CloseAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for topic, set := range h.topics {
		for s := range set {
			if !s.closed {
				s.closed = true
				close(s.ch)
				h.active.Add(-1)
			}
		}
		delete(h.topics, topic)
	}
}

// C is the subscriber's event channel. It is closed by Close.
func (s *Sub[E]) C() <-chan E { return s.ch }

// TakeLag reports whether the subscriber missed an event since the
// last call, clearing the mark. A true result obligates the consumer
// to resynchronize from current state: buffered events predate the
// drop and the chain after it is broken.
func (s *Sub[E]) TakeLag() bool { return s.lag.Swap(false) }

// Close unregisters the subscription and closes its channel. Safe to
// call once per subscription; Publish never races the close because
// both hold the hub lock.
func (s *Sub[E]) Close() {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	set := s.hub.topics[s.topic]
	delete(set, s)
	if len(set) == 0 {
		delete(s.hub.topics, s.topic)
	}
	close(s.ch)
	s.hub.active.Add(-1)
}
