package watch

import (
	"sync"
	"testing"
)

func TestPublishReachesTopicSubscribersOnly(t *testing.T) {
	h := NewHub[int]()
	a := h.Subscribe("t1", 4)
	b := h.Subscribe("t1", 4)
	c := h.Subscribe("t2", 4)
	defer a.Close()
	defer b.Close()
	defer c.Close()

	if n := h.Publish("t1", 7); n != 2 {
		t.Fatalf("Publish delivered to %d subscribers, want 2", n)
	}
	if got := <-a.C(); got != 7 {
		t.Fatalf("a received %d, want 7", got)
	}
	if got := <-b.C(); got != 7 {
		t.Fatalf("b received %d, want 7", got)
	}
	select {
	case ev := <-c.C():
		t.Fatalf("t2 subscriber received stray event %d", ev)
	default:
	}
	if h.Active() != 3 {
		t.Fatalf("Active() = %d, want 3", h.Active())
	}
	if h.Subscribers("t1") != 2 || h.Subscribers("t2") != 1 {
		t.Fatalf("Subscribers counts wrong: t1=%d t2=%d", h.Subscribers("t1"), h.Subscribers("t2"))
	}
}

func TestSlowConsumerLagsInsteadOfBlocking(t *testing.T) {
	h := NewHub[int]()
	s := h.Subscribe("t", 2)
	defer s.Close()

	for i := 0; i < 5; i++ {
		h.Publish("t", i)
	}
	if !s.TakeLag() {
		t.Fatal("subscriber with full buffer must be marked lagged")
	}
	if s.TakeLag() {
		t.Fatal("TakeLag must clear the mark")
	}
	// The two buffered events are the oldest ones (pre-drop).
	if got := <-s.C(); got != 0 {
		t.Fatalf("first buffered event %d, want 0", got)
	}
	if got := <-s.C(); got != 1 {
		t.Fatalf("second buffered event %d, want 1", got)
	}
	if h.Lagged() != 3 {
		t.Fatalf("Lagged() = %d, want 3", h.Lagged())
	}
	if h.Sent() != 2 {
		t.Fatalf("Sent() = %d, want 2", h.Sent())
	}
}

func TestCloseUnsubscribesAndClosesChannel(t *testing.T) {
	h := NewHub[string]()
	s := h.Subscribe("t", 1)
	s.Close()
	s.Close() // idempotent
	if _, ok := <-s.C(); ok {
		t.Fatal("channel must be closed after Close")
	}
	if h.Active() != 0 || h.Subscribers("t") != 0 {
		t.Fatalf("closed subscription still counted: active=%d subs=%d", h.Active(), h.Subscribers("t"))
	}
	if n := h.Publish("t", "x"); n != 0 {
		t.Fatalf("Publish after Close delivered to %d", n)
	}
}

// TestPublishCloseRace holds the no-send-after-close contract under the
// race detector: concurrent Publish and Close must never panic.
func TestPublishCloseRace(t *testing.T) {
	h := NewHub[int]()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		s := h.Subscribe("t", 1)
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h.Publish("t", j)
			}
		}()
		go func() {
			defer wg.Done()
			<-s.C()
			s.Close()
		}()
	}
	wg.Wait()
	if h.Active() != 0 {
		t.Fatalf("Active() = %d after all Closes", h.Active())
	}
}
