package rel

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randInstance generates a small database + the chain query
// R(x,y),S(y,z) with random endo flags.
type randInstance struct {
	DB *Database
}

func (randInstance) Generate(rng *rand.Rand, size int) reflect.Value {
	db := NewDatabase()
	dom := []Value{"0", "1", "2"}
	for i := 0; i < 5; i++ {
		db.MustAdd("R", rng.Intn(4) != 0, dom[rng.Intn(3)], dom[rng.Intn(3)])
		db.MustAdd("S", rng.Intn(4) != 0, dom[rng.Intn(3)], dom[rng.Intn(3)])
	}
	return reflect.ValueOf(randInstance{DB: db})
}

func chainQuery() *Query {
	return NewBoolean(
		NewAtom("R", V("x"), V("y")),
		NewAtom("S", V("y"), V("z")),
	)
}

// TestQuickHoldsIffValuations: Holds ⟺ at least one valuation.
func TestQuickHoldsIffValuations(t *testing.T) {
	f := func(ri randInstance) bool {
		q := chainQuery()
		vals, err := Valuations(ri.DB, q)
		if err != nil {
			return false
		}
		ok, err := Holds(ri.DB, q)
		if err != nil {
			return false
		}
		return ok == (len(vals) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWitnessesSatisfyAtoms: every valuation's witness tuples
// actually match the atom patterns under the binding.
func TestQuickWitnessesSatisfyAtoms(t *testing.T) {
	f := func(ri randInstance) bool {
		q := chainQuery()
		vals, err := Valuations(ri.DB, q)
		if err != nil {
			return false
		}
		for _, v := range vals {
			for ai, a := range q.Atoms {
				tup := ri.DB.Tuple(v.Witness[ai])
				if tup.Rel != a.Pred {
					return false
				}
				for i, tm := range a.Terms {
					want := tm.Const
					if tm.IsVar {
						want = v.Binding[tm.Var]
					}
					if tup.Args[i] != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRemovalMonotone: removing more tuples never makes a false
// query true (monotonicity of conjunctive queries).
func TestQuickRemovalMonotone(t *testing.T) {
	f := func(ri randInstance, mask uint16) bool {
		q := chainQuery()
		small := map[TupleID]bool{}
		big := map[TupleID]bool{}
		for i := 0; i < ri.DB.NumTuples() && i < 16; i++ {
			if mask&(1<<i) != 0 {
				small[TupleID(i)] = true
				big[TupleID(i)] = true
			}
		}
		// big removes one extra tuple.
		big[TupleID(int(mask)%ri.DB.NumTuples())] = true
		okSmall, err1 := HoldsWithout(ri.DB, q, small)
		okBig, err2 := HoldsWithout(ri.DB, q, big)
		if err1 != nil || err2 != nil {
			return false
		}
		// big ⊇ small ⟹ okBig ⟹ okSmall.
		return !okBig || okSmall
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
