package rel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// example22DB builds the database of Example 2.2 of the paper:
// R = {(a1,a5),(a2,a1),(a3,a3),(a4,a3),(a4,a2)}, S = {a1,a2,a3,a4,a6},
// all tuples endogenous.
func example22DB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	for _, row := range [][2]Value{{"a1", "a5"}, {"a2", "a1"}, {"a3", "a3"}, {"a4", "a3"}, {"a4", "a2"}} {
		db.MustAdd("R", true, row[0], row[1])
	}
	for _, v := range []Value{"a1", "a2", "a3", "a4", "a6"} {
		db.MustAdd("S", true, v)
	}
	return db
}

func example22Query() *Query {
	// q(x) :- R(x,y), S(y)
	return &Query{
		Name: "q",
		Head: []Term{V("x")},
		Atoms: []Atom{
			NewAtom("R", V("x"), V("y")),
			NewAtom("S", V("y")),
		},
	}
}

func TestAddAndLookup(t *testing.T) {
	db := NewDatabase()
	id1 := db.MustAdd("R", true, "a", "b")
	id2 := db.MustAdd("R", false, "c", "d")
	if id1 == id2 {
		t.Fatalf("expected distinct ids, got %d twice", id1)
	}
	if got := db.Tuple(id1); got.Rel != "R" || got.Args[0] != "a" || !got.Endo {
		t.Errorf("Tuple(id1) = %v, want R^n(a,b)", got)
	}
	if got := db.Tuple(id2); got.Endo {
		t.Errorf("Tuple(id2) should be exogenous")
	}
	if db.NumTuples() != 2 {
		t.Errorf("NumTuples = %d, want 2", db.NumTuples())
	}
}

func TestAddArityMismatch(t *testing.T) {
	db := NewDatabase()
	db.MustAdd("R", true, "a", "b")
	if _, err := db.Add("R", true, "a"); err == nil {
		t.Fatal("expected arity error, got nil")
	}
}

func TestEndoIDsAndSetEndo(t *testing.T) {
	db := NewDatabase()
	a := db.MustAdd("R", true, "a")
	b := db.MustAdd("R", false, "b")
	ids := db.EndoIDs()
	if len(ids) != 1 || ids[0] != a {
		t.Fatalf("EndoIDs = %v, want [%d]", ids, a)
	}
	db.SetEndo(b, true)
	if got := len(db.EndoIDs()); got != 2 {
		t.Fatalf("after SetEndo, len(EndoIDs) = %d, want 2", got)
	}
}

func TestActiveDomain(t *testing.T) {
	db := example22DB(t)
	ad := db.ActiveDomain()
	want := []Value{"a1", "a2", "a3", "a4", "a5", "a6"}
	if len(ad) != len(want) {
		t.Fatalf("ActiveDomain = %v, want %v", ad, want)
	}
	for i := range want {
		if ad[i] != want[i] {
			t.Fatalf("ActiveDomain = %v, want %v", ad, want)
		}
	}
}

func TestClonePreservesIDsAndIndependence(t *testing.T) {
	db := example22DB(t)
	cp := db.Clone()
	if cp.NumTuples() != db.NumTuples() {
		t.Fatalf("clone has %d tuples, want %d", cp.NumTuples(), db.NumTuples())
	}
	for _, tup := range db.Tuples() {
		ct := cp.Tuple(tup.ID)
		if ct.Rel != tup.Rel || ct.Args[0] != tup.Args[0] {
			t.Fatalf("clone tuple %d mismatch: %v vs %v", tup.ID, ct, tup)
		}
	}
	cp.SetEndo(0, false)
	if !db.Tuple(0).Endo {
		t.Error("mutating clone affected original")
	}
}

func TestAnswersExample22(t *testing.T) {
	db := example22DB(t)
	q := example22Query()
	ans, err := Answers(db, q)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, a := range ans {
		got = append(got, string(a.Values[0]))
	}
	want := []string{"a2", "a3", "a4"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("answers = %v, want %v", got, want)
	}
	// a4 has two valuations: R(a4,a3),S(a3) and R(a4,a2),S(a2).
	for _, a := range ans {
		if a.Values[0] == "a4" && len(a.Valuations) != 2 {
			t.Errorf("a4 has %d valuations, want 2", len(a.Valuations))
		}
		if a.Values[0] == "a2" && len(a.Valuations) != 1 {
			t.Errorf("a2 has %d valuations, want 1", len(a.Valuations))
		}
	}
}

func TestBindProducesBooleanQuery(t *testing.T) {
	q := example22Query()
	bq, err := q.Bind("a4")
	if err != nil {
		t.Fatal(err)
	}
	if !bq.IsBoolean() {
		t.Fatal("bound query should be Boolean")
	}
	if bq.Atoms[0].Terms[0].IsVar || bq.Atoms[0].Terms[0].Const != "a4" {
		t.Fatalf("x not substituted: %v", bq.Atoms[0])
	}
	db := example22DB(t)
	ok, err := Holds(db, bq)
	if err != nil || !ok {
		t.Fatalf("q[a4] should hold: ok=%v err=%v", ok, err)
	}
	bq2, _ := q.Bind("a1")
	ok, _ = Holds(db, bq2)
	if ok {
		t.Error("q[a1] should not hold (a5 not in S)")
	}
}

func TestBindArityError(t *testing.T) {
	q := example22Query()
	if _, err := q.Bind("a", "b"); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestValuationsWitnesses(t *testing.T) {
	db := example22DB(t)
	q := example22Query()
	bq, _ := q.Bind("a4")
	vals, err := Valuations(db, bq)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("got %d valuations, want 2", len(vals))
	}
	for _, v := range vals {
		if len(v.Witness) != 2 {
			t.Fatalf("witness len = %d, want 2", len(v.Witness))
		}
		rt := db.Tuple(v.Witness[0])
		st := db.Tuple(v.Witness[1])
		if rt.Rel != "R" || st.Rel != "S" {
			t.Fatalf("witnesses in wrong order: %v %v", rt, st)
		}
		if rt.Args[1] != st.Args[0] {
			t.Errorf("join key mismatch: %v vs %v", rt, st)
		}
	}
}

func TestValuationsConstantsAndRepeatedVars(t *testing.T) {
	db := NewDatabase()
	db.MustAdd("R", true, "a3", "a3")
	db.MustAdd("R", true, "a4", "a3")
	db.MustAdd("R", true, "a4", "a2")
	// q :- R(x,x): only (a3,a3) matches.
	q := NewBoolean(NewAtom("R", V("x"), V("x")))
	vals, err := Valuations(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].Binding["x"] != "a3" {
		t.Fatalf("R(x,x) valuations = %v", vals)
	}
	// q :- R(x,'a3'): two matches.
	q2 := NewBoolean(NewAtom("R", V("x"), C("a3")))
	vals2, _ := Valuations(db, q2)
	if len(vals2) != 2 {
		t.Fatalf("R(x,'a3') has %d valuations, want 2", len(vals2))
	}
}

func TestHoldsMissingRelation(t *testing.T) {
	db := NewDatabase()
	db.MustAdd("R", true, "a")
	q := NewBoolean(NewAtom("R", V("x")), NewAtom("Missing", V("x")))
	ok, err := Holds(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("query over missing relation should be false")
	}
}

func TestHoldsWithout(t *testing.T) {
	db := example22DB(t)
	q := example22Query()
	bq, _ := q.Bind("a2")
	// S(a1) is the only way to satisfy q[a2]; removing it kills the answer.
	var sa1 TupleID = -1
	for _, tup := range db.Tuples() {
		if tup.Rel == "S" && tup.Args[0] == "a1" {
			sa1 = tup.ID
		}
	}
	ok, err := HoldsWithout(db, bq, map[TupleID]bool{sa1: true})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("q[a2] should be false without S(a1)")
	}
	ok, _ = HoldsWithout(db, bq, nil)
	if !ok {
		t.Error("q[a2] should hold with no removals")
	}
}

func TestHasSelfJoin(t *testing.T) {
	q := NewBoolean(NewAtom("R", V("x")), NewAtom("S", V("x"), V("y")), NewAtom("R", V("y")))
	if !q.HasSelfJoin() {
		t.Error("expected self-join")
	}
	q2 := example22Query()
	if q2.HasSelfJoin() {
		t.Error("unexpected self-join")
	}
}

func TestQueryStringAndVars(t *testing.T) {
	q := example22Query()
	s := q.String()
	if !strings.Contains(s, "R(x,y)") || !strings.Contains(s, "S(y)") {
		t.Errorf("String() = %q", s)
	}
	vars := q.Vars()
	sort.Strings(vars)
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars() = %v", vars)
	}
}

func TestValidate(t *testing.T) {
	db := example22DB(t)
	bad := &Query{Name: "q", Head: []Term{V("z")}, Atoms: []Atom{NewAtom("R", V("x"), V("y"))}}
	if err := bad.Validate(db); err == nil {
		t.Error("expected head-variable error")
	}
	bad2 := NewBoolean(NewAtom("S", V("x"), V("y")))
	if err := bad2.Validate(db); err == nil {
		t.Error("expected arity error")
	}
}

func TestAnswersDeterministicOrder(t *testing.T) {
	db := example22DB(t)
	q := example22Query()
	first, _ := Answers(db, q)
	for i := 0; i < 5; i++ {
		again, _ := Answers(db, q)
		if len(again) != len(first) {
			t.Fatal("nondeterministic answer count")
		}
		for j := range again {
			if again[j].Values[0] != first[j].Values[0] {
				t.Fatal("nondeterministic answer order")
			}
		}
	}
}

func TestTupleString(t *testing.T) {
	db := NewDatabase()
	id := db.MustAdd("Movie", true, "526338", "Sweeney Todd")
	if got := db.Tuple(id).String(); got != "Movie^n(526338,Sweeney Todd)" {
		t.Errorf("String = %q", got)
	}
}

// TestConcurrentCodeIndexBuild: two evaluators sharing one frozen
// database may race to build the same lazy column index. Under -race
// this pins the copy-on-write publication in ensureIndex; functionally,
// every goroutine must observe the identical index.
func TestConcurrentCodeIndexBuild(t *testing.T) {
	db := NewDatabase()
	for i := 0; i < 200; i++ {
		db.MustAdd("R", i%3 == 0, Value(fmt.Sprintf("a%d", i%17)), Value(fmt.Sprintf("b%d", i%5)))
	}
	r := db.Relation("R")
	const goroutines = 8
	results := make([][]map[uint32][]int32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Interleave column order so builders collide on both columns.
			if g%2 == 0 {
				results[g] = []map[uint32][]int32{r.CodeIndex(0), r.CodeIndex(1)}
			} else {
				idx1 := r.CodeIndex(1)
				results[g] = []map[uint32][]int32{r.CodeIndex(0), idx1}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for col := 0; col < 2; col++ {
			a, b := results[0][col], results[g][col]
			if len(a) != len(b) {
				t.Fatalf("goroutine %d col %d: %d codes vs %d", g, col, len(b), len(a))
			}
			for code, rows := range a {
				brows := b[code]
				if len(rows) != len(brows) {
					t.Fatalf("goroutine %d col %d code %d: row counts differ", g, col, code)
				}
				for i := range rows {
					if rows[i] != brows[i] {
						t.Fatalf("goroutine %d col %d code %d: rows differ at %d", g, col, code, i)
					}
				}
			}
		}
	}
}

// TestConcurrentEvaluationSharedDB: two engines evaluating over the
// same frozen database concurrently (the explanation server's session
// pattern) must agree and not race on index or adapter construction.
func TestConcurrentEvaluationSharedDB(t *testing.T) {
	db := NewDatabase()
	for i := 0; i < 50; i++ {
		db.MustAdd("R", true, Value(fmt.Sprintf("x%d", i%7)), Value(fmt.Sprintf("y%d", i%11)))
		db.MustAdd("S", false, Value(fmt.Sprintf("y%d", i%11)), Value(fmt.Sprintf("z%d", i%5)))
	}
	q := NewBoolean(
		NewAtom("R", V("x"), V("y")),
		NewAtom("S", V("y"), V("z")),
	)
	var wg sync.WaitGroup
	counts := make([]int, 8)
	errs := make([]error, 8)
	for g := range counts {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals, err := Valuations(db, q)
			counts[g], errs[g] = len(vals), err
		}(g)
	}
	wg.Wait()
	for g := range counts {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if counts[g] != counts[0] {
			t.Fatalf("goroutine %d found %d valuations, goroutine 0 found %d", g, counts[g], counts[0])
		}
	}
}
