package rel

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestDeleteBasics(t *testing.T) {
	db := example22DB(t)
	n := db.NumTuples()
	if got := db.Version(); got != uint64(n) {
		t.Fatalf("Version after %d adds = %d", n, got)
	}

	// Delete a middle row of R: R(a3,a3) has ID 2.
	victim := db.Tuple(2)
	if victim.Rel != "R" || victim.Args[0] != "a3" {
		t.Fatalf("tuple 2 = %v, want R(a3,a3)", victim)
	}
	if err := db.Delete(2); err != nil {
		t.Fatalf("Delete(2): %v", err)
	}
	if db.Live(2) {
		t.Error("Live(2) true after delete")
	}
	if db.NumTuples() != n {
		t.Errorf("NumTuples shrank to %d; the ID space must not shrink", db.NumTuples())
	}
	if db.NumLive() != n-1 {
		t.Errorf("NumLive = %d, want %d", db.NumLive(), n-1)
	}
	if got := db.Version(); got != uint64(n+1) {
		t.Errorf("Version after delete = %d, want %d", got, n+1)
	}

	// The husk still renders, exogenous.
	husk := db.Tuple(2)
	if husk.Rel != "R" || husk.Args[0] != "a3" || husk.Endo {
		t.Errorf("husk = %v, want exogenous R(a3,a3)", husk)
	}

	// The relation's rows and refs re-align after the shift.
	r := db.Relation("R")
	if r.Len() != 4 {
		t.Fatalf("R.Len = %d, want 4", r.Len())
	}
	for row, id := range r.RowIDs() {
		if got := db.Tuple(id); got.Rel != "R" {
			t.Fatalf("row %d id %d resolves to %v", row, id, got)
		}
		if got := r.Tuples()[row]; got.ID != id {
			t.Fatalf("row view %d has ID %d, want %d", row, got.ID, id)
		}
	}
	// Shifted tuples keep their columnar data intact.
	if got := db.Tuple(3); got.Args[0] != "a4" || got.Args[1] != "a3" {
		t.Errorf("Tuple(3) = %v, want R(a4,a3)", got)
	}

	// Deleted IDs drop out of the endogenous set.
	for _, id := range db.EndoIDs() {
		if id == 2 {
			t.Error("EndoIDs still lists deleted tuple 2")
		}
	}
	// And stay exogenous even through SetEndo.
	db.SetEndo(2, true)
	if db.Endo(2) || db.Tuple(2).Endo {
		t.Error("SetEndo revived a deleted tuple")
	}
}

func TestDeleteErrors(t *testing.T) {
	db := example22DB(t)
	if err := db.Delete(99); err == nil {
		t.Error("Delete(99) succeeded on out-of-range ID")
	}
	if err := db.Delete(-1); err == nil {
		t.Error("Delete(-1) succeeded")
	}
	if err := db.Delete(0); err != nil {
		t.Fatalf("Delete(0): %v", err)
	}
	if err := db.Delete(0); err == nil {
		t.Error("double Delete(0) succeeded")
	}
}

func TestDeleteEvaluation(t *testing.T) {
	db := example22DB(t)
	q := example22Query()
	before, err := Answers(db, q)
	if err != nil || len(before) == 0 {
		t.Fatalf("query has no answers before delete (%v)", err)
	}
	// Kill every S tuple: the join must go empty.
	for _, id := range append([]TupleID(nil), db.Relation("S").RowIDs()...) {
		if err := db.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
	}
	if got, err := Answers(db, q); err != nil || len(got) != 0 {
		t.Fatalf("answers after deleting all of S: %v (%v)", got, err)
	}
	if db.Relation("S").Len() != 0 {
		t.Errorf("S.Len = %d, want 0", db.Relation("S").Len())
	}
	if db.Relation("S").HasEndo() {
		t.Error("empty S still reports HasEndo")
	}
}

// TestMutationReplayIdentity is the core metamorphic property the whole
// PR builds on: replaying the same add/delete sequence into a fresh
// database reproduces dictionary, columns, IDs, endo flags, and
// version bit-for-bit.
func TestMutationReplayIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type add struct {
		rel  string
		endo bool
		args []Value
	}
	var adds []add
	var deletes []TupleID

	db := NewDatabase()
	rels := []string{"R", "S", "T"}
	for i := 0; i < 200; i++ {
		if rng.Intn(4) == 0 && db.NumLive() > 0 {
			// Delete a random live tuple.
			for {
				id := TupleID(rng.Intn(db.NumTuples()))
				if db.Live(id) {
					if err := db.Delete(id); err != nil {
						t.Fatal(err)
					}
					deletes = append(deletes, id)
					break
				}
			}
			continue
		}
		name := rels[rng.Intn(len(rels))]
		var args []Value
		n := 2
		if name == "S" {
			n = 1
		}
		for j := 0; j < n; j++ {
			args = append(args, Value(string(rune('a'+rng.Intn(8)))))
		}
		endo := rng.Intn(2) == 0
		db.MustAdd(name, endo, args...)
		adds = append(adds, add{name, endo, args})
	}

	// Cold rebuild: all adds in ID order, then the deletes.
	cold := NewDatabase()
	for _, a := range adds {
		cold.MustAdd(a.rel, a.endo, a.args...)
	}
	for _, id := range deletes {
		if err := cold.Delete(id); err != nil {
			t.Fatalf("cold Delete(%d): %v", id, err)
		}
	}

	if db.Version() != cold.Version() {
		t.Fatalf("version: incremental %d, cold %d", db.Version(), cold.Version())
	}
	if !reflect.DeepEqual(db.dict.vals, cold.dict.vals) {
		t.Fatalf("dictionaries differ:\n%v\n%v", db.dict.vals, cold.dict.vals)
	}
	for name, r := range db.Relations {
		cr := cold.Relation(name)
		if cr == nil {
			t.Fatalf("cold rebuild lost relation %s", name)
		}
		if !reflect.DeepEqual(r.rowIDs, cr.rowIDs) {
			t.Fatalf("%s rowIDs differ:\n%v\n%v", name, r.rowIDs, cr.rowIDs)
		}
		if !reflect.DeepEqual(r.cols, cr.cols) {
			t.Fatalf("%s columns differ", name)
		}
	}
	if !reflect.DeepEqual(db.endo, cold.endo) {
		t.Fatal("endo vectors differ")
	}
	for id := 0; id < db.NumTuples(); id++ {
		if db.Live(TupleID(id)) != cold.Live(TupleID(id)) {
			t.Fatalf("liveness of %d differs", id)
		}
		a, b := db.Tuple(TupleID(id)), cold.Tuple(TupleID(id))
		if a.Rel != b.Rel || !reflect.DeepEqual(a.Args, b.Args) || a.Endo != b.Endo {
			t.Fatalf("tuple %d differs: %v vs %v", id, a, b)
		}
	}
}

func TestCloneCarriesDeletions(t *testing.T) {
	db := example22DB(t)
	if err := db.Delete(1); err != nil {
		t.Fatal(err)
	}
	cl := db.Clone()
	if cl.Live(1) {
		t.Error("clone revived deleted tuple")
	}
	if cl.Version() != db.Version() {
		t.Errorf("clone version %d != %d", cl.Version(), db.Version())
	}
	if got := cl.Tuple(1); got.Rel != "R" || got.Endo {
		t.Errorf("clone husk = %v", got)
	}
	// Clone is deep: mutating the clone leaves the original alone.
	if err := cl.Delete(0); err != nil {
		t.Fatal(err)
	}
	if !db.Live(0) {
		t.Error("clone delete leaked into original")
	}
}

func TestDeleteKeepsAdapterPointers(t *testing.T) {
	db := example22DB(t)
	before := db.Tuples()
	p := before[2]
	if err := db.Delete(2); err != nil {
		t.Fatal(err)
	}
	after := db.Tuples()
	if after[2] != p {
		t.Error("delete replaced the adapter pointer for the husk")
	}
	if p.Endo {
		t.Error("husk adapter still flagged endogenous")
	}
	// Adding after a delete keeps extending the same view.
	id := db.MustAdd("R", true, "z1", "z2")
	if got := db.Tuple(id); got.Args[0] != "z1" {
		t.Fatalf("post-delete add = %v", got)
	}
}
