// Package rel implements the relational substrate of the causality
// library: named relations of constant tuples, databases partitioned into
// endogenous and exogenous tuples, and conjunctive queries with their
// evaluation to valuations (per-answer witness tuple lists).
//
// The package follows Section 2 of Meliou et al. (VLDB 2010): a database
// instance D is a set of tuples, each tagged endogenous (a potential
// cause) or exogenous (context). Queries are conjunctive; a Boolean query
// is one with an empty head. Non-Boolean queries are reduced to Boolean
// ones by substituting the answer tuple into the head variables
// (Query.Bind).
//
// # Storage layout
//
// Relations are stored column-major over a per-database value
// dictionary: every constant is interned once into a dense uint32 code
// (Dict), and a Relation holds one code vector per column plus the
// row → TupleID map. Tuple identity is the dense insertion-order ID, so
// lineage and the exact solvers keep working in the same ID space. The
// classic row view ([]*Tuple) is materialized lazily by Tuples and
// Database.Tuple — a thin adapter over the columnar plane, paid for only
// by callers that need it (formatting, the naive evaluator); the
// streaming evaluator in internal/ra runs on the code vectors directly.
//
// # Evaluation backends
//
// Valuations, Holds, HoldsWithout and Answers delegate to the planned
// streaming evaluator (internal/ra) whenever that package is linked into
// the binary — importing it installs the backend via RegisterEvaluator.
// The naive reference evaluator is permanently available as EvalNaive /
// HoldsNaive / HoldsWithoutNaive so the differential harness
// (internal/difftest) can compare the two forever; binaries that never
// import internal/ra simply keep the naive backend for everything.
//
// # Mutation and versioning
//
// Databases are mutable: Add appends tuples and Delete removes them.
// Tuple IDs are never reused — Delete leaves a gap in the ID space and
// retains the dead tuple's rendered form, so Tuple(id) keeps working
// for historical IDs (the husk is exogenous and excluded from
// evaluation). Live reports whether an ID still denotes a stored row.
// Version counts mutations (adds + deletes); replaying the same
// mutation sequence into a fresh database reproduces the dictionary,
// the column vectors, and the version bit-for-bit, which is what the
// persist layer and the incremental-vs-cold-rebuild differential rely
// on. Mutations are not safe concurrently with readers; callers that
// share a database across goroutines (the explanation server) serialize
// mutations against evaluation with their own lock.
package rel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Value is a constant in the active domain. Values compare by string
// equality; numeric data should be rendered canonically by the caller.
type Value string

// TupleID identifies a tuple within a Database. IDs are dense, assigned
// in insertion order, and stable for the lifetime of the database.
type TupleID int

// Tuple is a row of a relation together with its causal status. Tuples
// handed out by Database.Tuple / Tuples are adapters materialized from
// the columnar store; callers must treat them as read-only and use
// Database.SetEndo to flip causal status.
type Tuple struct {
	ID   TupleID
	Rel  string
	Args []Value
	// Endo reports whether the tuple is endogenous (a candidate cause).
	Endo bool
}

// String renders the tuple as R(a,b,…) with an n/x superscript marker.
func (t Tuple) String() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = string(a)
	}
	tag := "x"
	if t.Endo {
		tag = "n"
	}
	return fmt.Sprintf("%s^%s(%s)", t.Rel, tag, strings.Join(parts, ","))
}

// Dict interns constants into dense uint32 codes, once per database.
// Code order is insertion order; code comparisons are identity only
// (two values are equal iff their codes are equal), not lexicographic.
// Interning happens on Database.Add; lookups are read-only and safe for
// any number of concurrent readers once the database is frozen.
type Dict struct {
	codes map[Value]uint32
	vals  []Value
}

// Code returns the code of v, if v was ever added to the database.
func (d *Dict) Code(v Value) (uint32, bool) {
	c, ok := d.codes[v]
	return c, ok
}

// Value returns the constant interned at code c.
func (d *Dict) Value(c uint32) Value { return d.vals[c] }

// Len returns the number of interned constants.
func (d *Dict) Len() int { return len(d.vals) }

func (d *Dict) intern(v Value) uint32 {
	if c, ok := d.codes[v]; ok {
		return c
	}
	if d.codes == nil {
		d.codes = make(map[Value]uint32)
	}
	c := uint32(len(d.vals))
	d.codes[v] = c
	d.vals = append(d.vals, v)
	return c
}

// Relation is a named collection of same-arity tuples, stored as one
// interned code vector per column.
type Relation struct {
	Name  string
	Arity int

	db     *Database
	cols   [][]uint32 // Arity code vectors, one per column
	rowIDs []TupleID  // row → global tuple ID

	// index holds a map[int]map[uint32][]int32 listing, per column, the
	// rows whose col-th code equals a code. Built lazily by ensureIndex
	// with copy-on-write under indexMu and published atomically, so any
	// number of goroutines may evaluate queries over a frozen relation
	// concurrently without locking on the read path.
	index   atomic.Pointer[map[int]map[uint32][]int32]
	indexMu sync.Mutex

	// rows caches the lazily materialized adapter view (see Tuples).
	rows atomic.Pointer[[]*Tuple]
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.rowIDs) }

// Col returns the interned code vector of column c. Callers must not
// modify it.
func (r *Relation) Col(c int) []uint32 { return r.cols[c] }

// RowID returns the global tuple ID of the given row.
func (r *Relation) RowID(row int) TupleID { return r.rowIDs[row] }

// RowIDs returns the row → tuple ID map. Callers must not modify it.
func (r *Relation) RowIDs() []TupleID { return r.rowIDs }

// HasEndo reports whether the relation holds at least one endogenous
// tuple, straight off the columnar endo flags.
func (r *Relation) HasEndo() bool {
	for _, id := range r.rowIDs {
		if r.db.endo[id] {
			return true
		}
	}
	return false
}

// Tuples materializes the row view of the relation: the i-th entry is
// the adapter for row i. The slice and the tuples are shared and cached;
// callers must not modify them. The pointers are identical to those
// returned by Database.Tuple, so SetEndo updates are visible through
// either view.
func (r *Relation) Tuples() []*Tuple {
	if rows := r.rows.Load(); rows != nil {
		return *rows
	}
	all := r.db.adapterRows()
	rows := make([]*Tuple, len(r.rowIDs))
	for i, id := range r.rowIDs {
		rows[i] = all[id]
	}
	// Racing builders produce identical views; last store wins.
	r.rows.Store(&rows)
	return rows
}

// CodeIndex returns a hash index on the given column, keyed by interned
// code: code → rows whose col-th argument carries it. Built on first
// use; Database.Add invalidates all indexes of the relation, so an
// existing index is always current. Concurrent callers are safe as long
// as no tuple is added concurrently (databases are frozen after load in
// concurrent settings, e.g. the explanation server's session registry).
func (r *Relation) CodeIndex(col int) map[uint32][]int32 { return r.ensureIndex(col) }

func (r *Relation) ensureIndex(col int) map[uint32][]int32 {
	if tbl := r.index.Load(); tbl != nil {
		if idx, ok := (*tbl)[col]; ok {
			return idx
		}
	}
	r.indexMu.Lock()
	defer r.indexMu.Unlock()
	// Re-check under the lock: a racing caller may have published col.
	old := r.index.Load()
	if old != nil {
		if idx, ok := (*old)[col]; ok {
			return idx
		}
	}
	vec := r.cols[col]
	idx := make(map[uint32][]int32, len(vec))
	for i, code := range vec {
		idx[code] = append(idx[code], int32(i))
	}
	next := make(map[int]map[uint32][]int32)
	if old != nil {
		for c, m := range *old {
			next[c] = m
		}
	}
	next[col] = idx
	r.index.Store(&next)
	return idx
}

// Database is a set of relations plus a global tuple registry.
type Database struct {
	Relations map[string]*Relation

	dict Dict
	refs []rowRef // TupleID → (relation, row); rel==nil marks a deleted tuple
	endo []bool   // TupleID → endogenous

	// dead retains the rendered form of deleted tuples keyed by their
	// (never reused) ID, so Tuple(id) still answers for historical IDs.
	dead map[TupleID]*Tuple

	// adapters caches the lazily materialized []*Tuple row view,
	// published copy-on-write under adapterMu (same discipline as the
	// relation indexes).
	adapters  atomic.Pointer[[]*Tuple]
	adapterMu sync.Mutex
}

type rowRef struct {
	rel *Relation
	row int32
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{Relations: make(map[string]*Relation)}
}

// Relation returns the named relation, or nil if absent.
func (db *Database) Relation(name string) *Relation {
	return db.Relations[name]
}

// Dict returns the database's value dictionary.
func (db *Database) Dict() *Dict { return &db.dict }

// Add inserts a tuple and returns its ID. It creates the relation on
// first use and enforces consistent arity. Duplicate rows are permitted
// by the engine but callers normally avoid them (set semantics).
func (db *Database) Add(rel string, endo bool, args ...Value) (TupleID, error) {
	r, ok := db.Relations[rel]
	if !ok {
		r = &Relation{Name: rel, Arity: len(args), db: db, cols: make([][]uint32, len(args))}
		db.Relations[rel] = r
	}
	if r.Arity != len(args) {
		return 0, fmt.Errorf("rel: relation %s has arity %d, got %d args", rel, r.Arity, len(args))
	}
	id := TupleID(len(db.refs))
	for c, v := range args {
		r.cols[c] = append(r.cols[c], db.dict.intern(v))
	}
	r.rowIDs = append(r.rowIDs, id)
	r.index.Store(nil) // invalidate code indexes
	r.rows.Store(nil)  // invalidate the relation's adapter view
	db.refs = append(db.refs, rowRef{rel: r, row: int32(r.Len() - 1)})
	db.endo = append(db.endo, endo)
	// Extend a materialized adapter view in place so previously handed
	// out *Tuple pointers stay the live adapters for their IDs.
	if ad := db.adapters.Load(); ad != nil {
		db.adapterMu.Lock()
		if cur := db.adapters.Load(); cur != nil && len(*cur) == int(id) {
			next := append(*cur, db.materializeOne(id))
			db.adapters.Store(&next)
		}
		db.adapterMu.Unlock()
	}
	return id, nil
}

// MustAdd is Add, panicking on arity mismatch. Intended for tests and
// hand-built example instances.
func (db *Database) MustAdd(rel string, endo bool, args ...Value) TupleID {
	id, err := db.Add(rel, endo, args...)
	if err != nil {
		panic(err)
	}
	return id
}

// Delete removes the identified tuple from its relation. The ID is
// never reused: it stays addressable through Tuple (rendering the
// removed row as an exogenous husk) but Live reports false, the tuple
// vanishes from the relation's rows and code vectors, and evaluation
// never sees it again. Deleting an already-deleted or out-of-range ID
// is an error. Like Add, Delete must not race with readers.
func (db *Database) Delete(id TupleID) error {
	if int(id) < 0 || int(id) >= len(db.refs) {
		return fmt.Errorf("rel: delete: tuple id %d out of range [0,%d)", id, len(db.refs))
	}
	ref := db.refs[id]
	if ref.rel == nil {
		return fmt.Errorf("rel: delete: tuple %d already deleted", id)
	}
	// Capture the adapter before the row disappears so Tuple(id) keeps
	// rendering the dead tuple. Reuse the published adapter pointer when
	// one exists so previously handed-out *Tuple stay the live view.
	var husk *Tuple
	if ad := db.adapters.Load(); ad != nil && int(id) < len(*ad) {
		husk = (*ad)[id]
	} else {
		husk = db.materializeOne(id)
	}
	husk.Endo = false
	if db.dead == nil {
		db.dead = make(map[TupleID]*Tuple)
	}
	db.dead[id] = husk

	r, row := ref.rel, int(ref.row)
	for c := range r.cols {
		r.cols[c] = append(r.cols[c][:row], r.cols[c][row+1:]...)
	}
	r.rowIDs = append(r.rowIDs[:row], r.rowIDs[row+1:]...)
	for i := row; i < len(r.rowIDs); i++ {
		db.refs[r.rowIDs[i]].row = int32(i)
	}
	r.index.Store(nil)
	r.rows.Store(nil)
	db.refs[id] = rowRef{}
	db.endo[id] = false
	return nil
}

// Live reports whether the ID denotes a stored (non-deleted) tuple.
func (db *Database) Live(id TupleID) bool {
	return int(id) >= 0 && int(id) < len(db.refs) && db.refs[id].rel != nil
}

// NumLive returns the number of live tuples (NumTuples minus deletions).
func (db *Database) NumLive() int { return len(db.refs) - len(db.dead) }

// Version counts the mutations (adds plus deletes) applied to the
// database since creation. Replaying the same mutation sequence into a
// fresh database lands on the same version with byte-identical state.
func (db *Database) Version() uint64 { return uint64(len(db.refs) + len(db.dead)) }

func (db *Database) materializeOne(id TupleID) *Tuple {
	if t, ok := db.dead[id]; ok {
		return t
	}
	ref := db.refs[id]
	args := make([]Value, ref.rel.Arity)
	for c := range args {
		args[c] = db.dict.vals[ref.rel.cols[c][ref.row]]
	}
	return &Tuple{ID: id, Rel: ref.rel.Name, Args: args, Endo: db.endo[id]}
}

// adapterRows materializes (once) the full []*Tuple adapter view.
func (db *Database) adapterRows() []*Tuple {
	if ad := db.adapters.Load(); ad != nil && len(*ad) == len(db.refs) {
		return *ad
	}
	db.adapterMu.Lock()
	defer db.adapterMu.Unlock()
	if ad := db.adapters.Load(); ad != nil && len(*ad) == len(db.refs) {
		return *ad
	}
	out := make([]*Tuple, len(db.refs))
	for id := range db.refs {
		out[id] = db.materializeOne(TupleID(id))
	}
	db.adapters.Store(&out)
	return out
}

// Tuple returns the tuple with the given ID, including the exogenous
// husk of a deleted one (check Live to distinguish). It panics on
// out-of-range IDs, which indicate a bug in the caller.
func (db *Database) Tuple(id TupleID) *Tuple {
	if int(id) < 0 || int(id) >= len(db.refs) {
		panic(fmt.Sprintf("rel: tuple id %d out of range [0,%d)", id, len(db.refs)))
	}
	return db.adapterRows()[id]
}

// NumTuples returns the size of the tuple-ID space: every tuple ever
// added, deleted or not. See NumLive for the stored count.
func (db *Database) NumTuples() int { return len(db.refs) }

// Tuples returns all tuples in insertion order, indexed by TupleID.
// Deleted tuples appear as their exogenous husks (Live reports false
// for them). The slice is shared; callers must not modify it.
func (db *Database) Tuples() []*Tuple { return db.adapterRows() }

// Endo reports whether the identified tuple is endogenous, straight off
// the columnar flag vector (no adapter materialization).
func (db *Database) Endo(id TupleID) bool { return db.endo[id] }

// EndoIDs returns the IDs of all endogenous tuples, sorted.
func (db *Database) EndoIDs() []TupleID {
	var out []TupleID
	for id, e := range db.endo {
		if e {
			out = append(out, TupleID(id))
		}
	}
	return out
}

// SetEndo flags the identified tuple endogenous or exogenous. Deleted
// tuples stay exogenous; flipping them is a no-op.
func (db *Database) SetEndo(id TupleID, endo bool) {
	if !db.Live(id) {
		return
	}
	db.endo[id] = endo
	if ad := db.adapters.Load(); ad != nil && int(id) < len(*ad) {
		(*ad)[id].Endo = endo
	}
}

// Clone returns a deep copy of the database. Tuple IDs are preserved.
func (db *Database) Clone() *Database {
	out := NewDatabase()
	out.dict.vals = append([]Value(nil), db.dict.vals...)
	out.dict.codes = make(map[Value]uint32, len(db.dict.codes))
	for v, c := range db.dict.codes {
		out.dict.codes[v] = c
	}
	out.refs = make([]rowRef, len(db.refs))
	out.endo = append([]bool(nil), db.endo...)
	for id, t := range db.dead {
		if out.dead == nil {
			out.dead = make(map[TupleID]*Tuple, len(db.dead))
		}
		out.dead[id] = &Tuple{ID: id, Rel: t.Rel, Args: append([]Value(nil), t.Args...)}
	}
	for name, r := range db.Relations {
		nr := &Relation{Name: name, Arity: r.Arity, db: out, cols: make([][]uint32, r.Arity)}
		for c := range r.cols {
			nr.cols[c] = append([]uint32(nil), r.cols[c]...)
		}
		nr.rowIDs = append([]TupleID(nil), r.rowIDs...)
		for row, id := range nr.rowIDs {
			out.refs[id] = rowRef{rel: nr, row: int32(row)}
		}
		out.Relations[name] = nr
	}
	return out
}

// ActiveDomain returns the set of all values ever interned into the
// database, sorted for determinism. With interned columnar storage this
// is the dictionary itself; values introduced by since-deleted tuples
// remain (the dictionary never shrinks, keeping codes stable).
func (db *Database) ActiveDomain() []Value {
	out := append([]Value(nil), db.dict.vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the database relation by relation, deterministically.
func (db *Database) String() string {
	names := make([]string, 0, len(db.Relations))
	for n := range db.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		r := db.Relations[n]
		fmt.Fprintf(&b, "%s/%d:\n", n, r.Arity)
		for _, t := range r.Tuples() {
			fmt.Fprintf(&b, "  %s\n", t)
		}
	}
	return b.String()
}
