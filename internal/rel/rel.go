// Package rel implements the relational substrate of the causality
// library: named relations of constant tuples, databases partitioned into
// endogenous and exogenous tuples, and conjunctive queries with their
// evaluation to valuations (per-answer witness tuple lists).
//
// The package follows Section 2 of Meliou et al. (VLDB 2010): a database
// instance D is a set of tuples, each tagged endogenous (a potential
// cause) or exogenous (context). Queries are conjunctive; a Boolean query
// is one with an empty head. Non-Boolean queries are reduced to Boolean
// ones by substituting the answer tuple into the head variables
// (Query.Bind).
package rel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Value is a constant in the active domain. Values compare by string
// equality; numeric data should be rendered canonically by the caller.
type Value string

// TupleID identifies a tuple within a Database. IDs are dense, assigned
// in insertion order, and stable for the lifetime of the database.
type TupleID int

// Tuple is a row of a relation together with its causal status.
type Tuple struct {
	ID   TupleID
	Rel  string
	Args []Value
	// Endo reports whether the tuple is endogenous (a candidate cause).
	Endo bool
}

// String renders the tuple as R(a,b,…) with an n/x superscript marker.
func (t Tuple) String() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = string(a)
	}
	tag := "x"
	if t.Endo {
		tag = "n"
	}
	return fmt.Sprintf("%s^%s(%s)", t.Rel, tag, strings.Join(parts, ","))
}

// Relation is a named collection of same-arity tuples.
type Relation struct {
	Name   string
	Arity  int
	Tuples []*Tuple

	// index holds a map[int]map[Value][]int listing, per column, the
	// positions in Tuples whose col-th argument equals a value. Built
	// lazily by ensureIndex with copy-on-write under indexMu and
	// published atomically, so any number of goroutines may evaluate
	// queries over a frozen relation concurrently without locking on
	// the read path.
	index   atomic.Pointer[map[int]map[Value][]int]
	indexMu sync.Mutex
}

// ensureIndex returns a hash index on the given column, building it on
// first use. Database.Add invalidates all indexes of the relation, so an
// existing index is always current. Concurrent callers are safe as long
// as no tuple is added concurrently (databases are frozen after load in
// concurrent settings, e.g. the explanation server's session registry).
func (r *Relation) ensureIndex(col int) map[Value][]int {
	if tbl := r.index.Load(); tbl != nil {
		if idx, ok := (*tbl)[col]; ok {
			return idx
		}
	}
	r.indexMu.Lock()
	defer r.indexMu.Unlock()
	// Re-check under the lock: a racing caller may have published col.
	old := r.index.Load()
	if old != nil {
		if idx, ok := (*old)[col]; ok {
			return idx
		}
	}
	idx := make(map[Value][]int, len(r.Tuples))
	for i, t := range r.Tuples {
		idx[t.Args[col]] = append(idx[t.Args[col]], i)
	}
	next := make(map[int]map[Value][]int)
	if old != nil {
		for c, m := range *old {
			next[c] = m
		}
	}
	next[col] = idx
	r.index.Store(&next)
	return idx
}

// Database is a set of relations plus a global tuple registry.
type Database struct {
	Relations map[string]*Relation
	byID      []*Tuple
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{Relations: make(map[string]*Relation)}
}

// Relation returns the named relation, or nil if absent.
func (db *Database) Relation(name string) *Relation {
	return db.Relations[name]
}

// Add inserts a tuple and returns its ID. It creates the relation on
// first use and enforces consistent arity. Duplicate rows are permitted
// by the engine but callers normally avoid them (set semantics).
func (db *Database) Add(rel string, endo bool, args ...Value) (TupleID, error) {
	r, ok := db.Relations[rel]
	if !ok {
		r = &Relation{Name: rel, Arity: len(args)}
		db.Relations[rel] = r
	}
	if r.Arity != len(args) {
		return 0, fmt.Errorf("rel: relation %s has arity %d, got %d args", rel, r.Arity, len(args))
	}
	t := &Tuple{ID: TupleID(len(db.byID)), Rel: rel, Args: append([]Value(nil), args...), Endo: endo}
	r.Tuples = append(r.Tuples, t)
	r.index.Store(nil) // invalidate
	db.byID = append(db.byID, t)
	return t.ID, nil
}

// MustAdd is Add, panicking on arity mismatch. Intended for tests and
// hand-built example instances.
func (db *Database) MustAdd(rel string, endo bool, args ...Value) TupleID {
	id, err := db.Add(rel, endo, args...)
	if err != nil {
		panic(err)
	}
	return id
}

// Tuple returns the tuple with the given ID. It panics on out-of-range
// IDs, which indicate a bug in the caller.
func (db *Database) Tuple(id TupleID) *Tuple {
	return db.byID[id]
}

// NumTuples returns the number of tuples in the database.
func (db *Database) NumTuples() int { return len(db.byID) }

// Tuples returns all tuples in insertion order. The slice is shared;
// callers must not modify it.
func (db *Database) Tuples() []*Tuple { return db.byID }

// EndoIDs returns the IDs of all endogenous tuples, sorted.
func (db *Database) EndoIDs() []TupleID {
	var out []TupleID
	for _, t := range db.byID {
		if t.Endo {
			out = append(out, t.ID)
		}
	}
	return out
}

// SetEndo flags the identified tuple endogenous or exogenous.
func (db *Database) SetEndo(id TupleID, endo bool) { db.byID[id].Endo = endo }

// Clone returns a deep copy of the database. Tuple IDs are preserved.
func (db *Database) Clone() *Database {
	out := NewDatabase()
	out.byID = make([]*Tuple, len(db.byID))
	for name, r := range db.Relations {
		nr := &Relation{Name: name, Arity: r.Arity, Tuples: make([]*Tuple, len(r.Tuples))}
		for i, t := range r.Tuples {
			ct := &Tuple{ID: t.ID, Rel: t.Rel, Args: append([]Value(nil), t.Args...), Endo: t.Endo}
			nr.Tuples[i] = ct
			out.byID[t.ID] = ct
		}
		out.Relations[name] = nr
	}
	return out
}

// ActiveDomain returns the set of all values occurring in the database,
// sorted for determinism.
func (db *Database) ActiveDomain() []Value {
	seen := make(map[Value]bool)
	for _, t := range db.byID {
		for _, v := range t.Args {
			seen[v] = true
		}
	}
	out := make([]Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the database relation by relation, deterministically.
func (db *Database) String() string {
	names := make([]string, 0, len(db.Relations))
	for n := range db.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		r := db.Relations[n]
		fmt.Fprintf(&b, "%s/%d:\n", n, r.Arity)
		for _, t := range r.Tuples {
			fmt.Fprintf(&b, "  %s\n", t)
		}
	}
	return b.String()
}
