package rel

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/querycause/querycause/internal/qerr"
)

// Term is either a variable or a constant appearing in a query atom.
type Term struct {
	IsVar bool
	Var   string
	Const Value
}

// V returns a variable term.
func V(name string) Term { return Term{IsVar: true, Var: name} }

// C returns a constant term.
func C(v Value) Term { return Term{Const: v} }

func (t Term) String() string {
	if t.IsVar {
		return t.Var
	}
	// Pick the quote character the constant does not contain, so the
	// rendering reparses (the query grammar has no escapes; the parser
	// rejects constants holding both quote characters).
	if strings.Contains(string(t.Const), "'") {
		return `"` + string(t.Const) + `"`
	}
	return "'" + string(t.Const) + "'"
}

// Atom is a relational subgoal R(t1,…,tk) of a conjunctive query.
type Atom struct {
	Pred  string
	Terms []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, terms ...Term) Atom {
	return Atom{Pred: pred, Terms: terms}
}

// Vars returns the distinct variables of the atom in first-occurrence
// order.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Terms {
		if t.IsVar && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ","))
}

// Query is a conjunctive query. A Boolean query has an empty Head.
// Head terms must be variables occurring in the body or constants.
type Query struct {
	Name  string
	Head  []Term
	Atoms []Atom
}

// NewBoolean builds a Boolean conjunctive query from atoms.
func NewBoolean(atoms ...Atom) *Query {
	return &Query{Name: "q", Atoms: atoms}
}

// Vars returns the distinct variables of the query in first-occurrence
// order over the body.
func (q *Query) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// IsBoolean reports whether the query has an empty head.
func (q *Query) IsBoolean() bool { return len(q.Head) == 0 }

// HasSelfJoin reports whether any relation name occurs in two atoms.
func (q *Query) HasSelfJoin() bool {
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		if seen[a.Pred] {
			return true
		}
		seen[a.Pred] = true
	}
	return false
}

// Bind substitutes the answer tuple for the head variables and returns
// the resulting Boolean query (Section 2: causes of answer ā to q(x̄) are
// the causes of the Boolean query q[ā/x̄]).
func (q *Query) Bind(answer ...Value) (*Query, error) {
	if len(answer) != len(q.Head) {
		return nil, qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("rel: query %s has %d head terms, got %d answer values", q.Name, len(q.Head), len(answer)))
	}
	subst := make(map[string]Value)
	for i, h := range q.Head {
		if !h.IsVar {
			if h.Const != answer[i] {
				return nil, qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("rel: head constant %s incompatible with answer value %s", h.Const, answer[i]))
			}
			continue
		}
		if prev, ok := subst[h.Var]; ok && prev != answer[i] {
			return nil, qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("rel: head variable %s bound to both %s and %s", h.Var, prev, answer[i]))
		}
		subst[h.Var] = answer[i]
	}
	out := &Query{Name: q.Name}
	for _, a := range q.Atoms {
		na := Atom{Pred: a.Pred, Terms: make([]Term, len(a.Terms))}
		for i, t := range a.Terms {
			if t.IsVar {
				if v, ok := subst[t.Var]; ok {
					na.Terms[i] = C(v)
					continue
				}
			}
			na.Terms[i] = t
		}
		out.Atoms = append(out.Atoms, na)
	}
	return out, nil
}

// Validate checks arities against the database and that head variables
// appear in the body.
func (q *Query) Validate(db *Database) error {
	bodyVars := make(map[string]bool)
	for _, a := range q.Atoms {
		if r := db.Relation(a.Pred); r != nil && r.Arity != len(a.Terms) {
			return qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("rel: atom %s has %d terms but relation %s has arity %d", a, len(a.Terms), a.Pred, r.Arity))
		}
		for _, v := range a.Vars() {
			bodyVars[v] = true
		}
	}
	for _, h := range q.Head {
		if h.IsVar && !bodyVars[h.Var] {
			return qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("rel: head variable %s does not occur in the body", h.Var))
		}
	}
	return nil
}

func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.Name)
	if len(q.Head) > 0 {
		parts := make([]string, len(q.Head))
		for i, h := range q.Head {
			parts[i] = h.String()
		}
		fmt.Fprintf(&b, "(%s)", strings.Join(parts, ","))
	}
	b.WriteString(" :- ")
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	b.WriteString(strings.Join(parts, ", "))
	return b.String()
}

// Valuation is one way of satisfying a Boolean query: a binding of the
// query variables plus, per atom, the witness tuple it maps onto.
type Valuation struct {
	Binding map[string]Value
	// Witness[i] is the ID of the tuple matched by q.Atoms[i].
	Witness []TupleID
}

// Answer is a distinct head tuple together with all valuations deriving
// it.
type Answer struct {
	Values     []Value
	Valuations []Valuation
}

// Evaluator is a pluggable evaluation backend for the package-level
// entry points. internal/ra registers its planned streaming evaluator
// here from an init function, so any binary linking that package gets
// selectivity-ordered hash-join evaluation for Valuations, Holds and
// HoldsWithout; binaries that never import it keep the naive reference
// evaluator. The naive path stays reachable forever through EvalNaive,
// HoldsNaive and HoldsWithoutNaive — internal/difftest differential-
// tests the two backends against each other on every sweep.
type Evaluator struct {
	Valuations   func(db *Database, q *Query) ([]Valuation, error)
	Holds        func(db *Database, q *Query) (bool, error)
	HoldsWithout func(db *Database, q *Query, removed map[TupleID]bool) (bool, error)
}

var evaluator atomic.Pointer[Evaluator]

// RegisterEvaluator installs the planned evaluation backend. Intended
// to be called from internal/ra's init; passing nil restores the naive
// backend (tests only).
func RegisterEvaluator(e *Evaluator) { evaluator.Store(e) }

// Valuations enumerates all valuations of the Boolean query q over db.
// For non-Boolean queries it enumerates valuations of the body (the head
// is ignored); use Answers to group them by head value.
//
// With the planned backend registered (see Evaluator) this streams a
// selectivity-ordered hash-join pipeline; otherwise it falls back to
// EvalNaive. Valuation order is deterministic per backend but differs
// between backends; callers needing a canonical order sort.
func Valuations(db *Database, q *Query) ([]Valuation, error) {
	if e := evaluator.Load(); e != nil && e.Valuations != nil {
		return e.Valuations(db, q)
	}
	return EvalNaive(db, q)
}

// EvalNaive enumerates all valuations with the naive reference
// evaluator: a greedy bound-variable join order with hash indexes on
// bound columns, one backtracking search over the tuple adapters. It is
// the permanently available baseline the planned evaluator is
// differential-tested against.
func EvalNaive(db *Database, q *Query) ([]Valuation, error) {
	for _, a := range q.Atoms {
		r := db.Relation(a.Pred)
		if r == nil {
			return nil, nil // empty relation: no valuations
		}
		if r.Arity != len(a.Terms) {
			return nil, qerr.Tag(qerr.ErrBadInstance, fmt.Errorf("rel: atom %s arity mismatch with relation (arity %d)", a, r.Arity))
		}
	}
	var out []Valuation
	binding := make(map[string]Value)
	witness := make([]TupleID, len(q.Atoms))
	used := make([]bool, len(q.Atoms))

	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(q.Atoms) {
			bcopy := make(map[string]Value, len(binding))
			for k, v := range binding {
				bcopy[k] = v
			}
			out = append(out, Valuation{Binding: bcopy, Witness: append([]TupleID(nil), witness...)})
			return
		}
		ai := pickNextAtom(q, used, binding)
		used[ai] = true
		a := q.Atoms[ai]
		r := db.Relation(a.Pred)
		rows := r.Tuples()
		for _, ti := range candidates(r, a, binding) {
			tup := rows[ti]
			newVars, ok := matchAtom(a, tup, binding)
			if !ok {
				continue
			}
			witness[ai] = tup.ID
			rec(depth + 1)
			for _, v := range newVars {
				delete(binding, v)
			}
		}
		used[ai] = false
	}
	rec(0)
	return out, nil
}

// pickNextAtom chooses the unused atom with the most bound terms
// (constants or already-bound variables), breaking ties by index.
func pickNextAtom(q *Query, used []bool, binding map[string]Value) int {
	best, bestScore := -1, -1
	for i, a := range q.Atoms {
		if used[i] {
			continue
		}
		score := 0
		for _, t := range a.Terms {
			if !t.IsVar {
				score++
			} else if _, ok := binding[t.Var]; ok {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// candidates returns rows of r worth testing for atom a under the
// current binding, using a code index when some term is bound.
func candidates(r *Relation, a Atom, binding map[string]Value) []int32 {
	col, val := -1, Value("")
	for i, t := range a.Terms {
		if !t.IsVar {
			col, val = i, t.Const
			break
		}
		if v, ok := binding[t.Var]; ok {
			col, val = i, v
			break
		}
	}
	if col < 0 {
		all := make([]int32, r.Len())
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	code, ok := r.db.dict.Code(val)
	if !ok {
		return nil // value never interned: no row can match
	}
	return r.ensureIndex(col)[code]
}

// matchAtom attempts to unify atom a with tuple tup under binding. On
// success it extends binding in place and returns the newly bound
// variables (for backtracking).
func matchAtom(a Atom, tup *Tuple, binding map[string]Value) (newVars []string, ok bool) {
	for i, t := range a.Terms {
		got := tup.Args[i]
		if !t.IsVar {
			if t.Const != got {
				return unwind(binding, newVars)
			}
			continue
		}
		if v, bound := binding[t.Var]; bound {
			if v != got {
				return unwind(binding, newVars)
			}
			continue
		}
		binding[t.Var] = got
		newVars = append(newVars, t.Var)
	}
	return newVars, true
}

func unwind(binding map[string]Value, newVars []string) ([]string, bool) {
	for _, v := range newVars {
		delete(binding, v)
	}
	return nil, false
}

// Holds reports whether the Boolean query q is true on db. The planned
// backend short-circuits on the first streamed valuation.
func Holds(db *Database, q *Query) (bool, error) {
	if e := evaluator.Load(); e != nil && e.Holds != nil {
		return e.Holds(db, q)
	}
	return HoldsNaive(db, q)
}

// HoldsNaive is Holds on the naive reference evaluator.
func HoldsNaive(db *Database, q *Query) (bool, error) {
	vals, err := EvalNaive(db, q)
	if err != nil {
		return false, err
	}
	return len(vals) > 0, nil
}

// Answers evaluates a non-Boolean query, grouping valuations by head
// value. Results are sorted by head tuple for determinism.
func Answers(db *Database, q *Query) ([]Answer, error) {
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	vals, err := Valuations(db, q)
	if err != nil {
		return nil, err
	}
	groups := make(map[string]*Answer)
	var keys []string
	for _, val := range vals {
		hv := make([]Value, len(q.Head))
		for i, h := range q.Head {
			if h.IsVar {
				hv[i] = val.Binding[h.Var]
			} else {
				hv[i] = h.Const
			}
		}
		key := joinValues(hv)
		g, ok := groups[key]
		if !ok {
			g = &Answer{Values: hv}
			groups[key] = g
			keys = append(keys, key)
		}
		g.Valuations = append(g.Valuations, val)
	}
	sort.Strings(keys)
	out := make([]Answer, 0, len(groups))
	for _, k := range keys {
		out = append(out, *groups[k])
	}
	return out, nil
}

func joinValues(vs []Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	return strings.Join(parts, "\x00")
}

// HoldsWithout reports whether q is true on db with the given tuples
// removed. It does not mutate db. The planned backend pushes the
// removal filter into its scans and stops at the first surviving
// valuation.
func HoldsWithout(db *Database, q *Query, removed map[TupleID]bool) (bool, error) {
	if e := evaluator.Load(); e != nil && e.HoldsWithout != nil {
		return e.HoldsWithout(db, q, removed)
	}
	return HoldsWithoutNaive(db, q, removed)
}

// HoldsWithoutNaive is HoldsWithout on the naive reference evaluator:
// enumerate every valuation, then filter. The differential harness uses
// it as the definitional oracle so witness validation stays independent
// of the planned evaluator under test.
func HoldsWithoutNaive(db *Database, q *Query, removed map[TupleID]bool) (bool, error) {
	if len(removed) == 0 {
		return HoldsNaive(db, q)
	}
	vals, err := EvalNaive(db, q)
	if err != nil {
		return false, err
	}
outer:
	for _, v := range vals {
		for _, id := range v.Witness {
			if removed[id] {
				continue outer
			}
		}
		return true, nil
	}
	return false, nil
}
