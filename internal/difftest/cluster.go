// Cluster-equivalence differential: a 3-replica consistent-hash
// cluster replayed on the same instance must be indistinguishable from
// a single node. Three angles per instance: a topology-aware Dial
// through one fixed entry node must reproduce the engine ranking
// byte-for-byte; a raw request entering at a node that does NOT own
// the session must come back — across the 307 hop — byte-identical to
// the owner's direct answer; and tearing the session down through yet
// another non-owner must actually delete it cluster-wide. Failures
// must stay errors.Is-equal to the single-node transport's.
package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"

	querycause "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/cluster"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/faultinject"
	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/qerr"
	"github.com/querycause/querycause/internal/server"
)

// ClusterDiff owns three in-process querycaused replicas joined into a
// static consistent-hash ring on loopback listeners. It is safe for
// concurrent use by sweep workers.
type ClusterDiff struct {
	urls []string
	ring cluster.Ring
	srvs []*server.Server
	hss  []*http.Server
	// hc and dialOpts route the raw-wire clients and Dial'ed sessions
	// through a fault injector when WithFaults armed one.
	hc       *http.Client
	dialOpts []querycause.Option
}

// NewClusterDiff boots the 3-node cluster. Callers must Close it.
func NewClusterDiff() *ClusterDiff {
	const n = 3
	cd := &ClusterDiff{}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(fmt.Sprintf("clusterdiff: listen: %v", err))
		}
		lns[i] = ln
		cd.urls = append(cd.urls, "http://"+ln.Addr().String())
	}
	cd.ring = cluster.New(cd.urls)
	for i := range lns {
		srv := server.New(server.Config{
			ReapInterval: -1,
			// Same headroom rationale as SessionDiff: a sweep worker's
			// session must not be LRU-evicted mid-check by another's.
			MaxSessions: 128,
			Self:        cd.urls[i],
			Peers:       cd.urls,
		})
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		cd.srvs = append(cd.srvs, srv)
		cd.hss = append(cd.hss, hs)
	}
	return cd
}

// WithFaults routes every HTTP exchange of the differential — the
// Dial'ed sessions and the raw wire clients — through in, with extra
// retry budget (see faultRetries). The cluster must still be
// byte-indistinguishable from a single node. It returns cd for
// chaining.
func (cd *ClusterDiff) WithFaults(in *faultinject.Injector) *ClusterDiff {
	cd.hc = &http.Client{Transport: in.Transport(nil)}
	cd.dialOpts = append(cd.dialOpts,
		querycause.WithHTTPClient(cd.hc),
		querycause.WithRetries(faultRetries))
	return cd
}

// client builds a raw wire client for base, faulted when WithFaults
// armed an injector.
func (cd *ClusterDiff) client(base string) *querycause.Client {
	c := querycause.NewClient(base, cd.hc)
	if cd.hc != nil {
		c.SetRetries(faultRetries)
	}
	return c
}

// Close shuts all replicas down.
func (cd *ClusterDiff) Close() {
	for i := range cd.hss {
		cd.hss[i].Close()
		cd.srvs[i].Close()
	}
}

// Check replays inst through the cluster and demands single-node
// indistinguishability, with want (the engine-level ModeAuto ranking)
// as the reference.
func (cd *ClusterDiff) Check(inst *causegen.Instance, want []core.Explanation) error {
	ctx := context.Background()
	wantJSON, err := json.Marshal(want)
	if err != nil {
		return err
	}

	// Angle 1: the public Session API through a fixed entry node. Dial
	// reads /v1/cluster and routes itself, so this also exercises the
	// client-side topology path on every check.
	local, err := querycause.Open(inst.DB)
	if err != nil {
		return fmt.Errorf("clusterdiff: Open: %v", err)
	}
	defer local.Close()
	remote, err := querycause.Dial(ctx, cd.urls[0], inst.DB, cd.dialOpts...)
	if err != nil {
		return fmt.Errorf("clusterdiff: Dial: %v", err)
	}
	defer remote.Close()
	rr, rerr := openRanking(ctx, remote, inst, inst.WhyNo)
	_, lerr := openRanking(ctx, local, inst, inst.WhyNo)
	if err := equalFailures("cluster open", lerr, rerr); err != nil {
		return err
	}
	if rerr != nil {
		return fmt.Errorf("clusterdiff: valid instance rejected: %v", rerr)
	}
	got, err := rr.Rank(ctx)
	if err != nil {
		return fmt.Errorf("clusterdiff: Rank: %v", err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		return err
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		return fmt.Errorf("clusterdiff: clustered Rank differs from engine ranking:\ngot:  %s\nwant: %s", gotJSON, wantJSON)
	}

	// Error parity on the flipped (usually invalid) direction, same as
	// the session differential.
	_, lflip := openRanking(ctx, local, inst, !inst.WhyNo)
	_, rflip := openRanking(ctx, remote, inst, !inst.WhyNo)
	if err := equalFailures("cluster flipped open", lflip, rflip); err != nil {
		return err
	}

	// Angle 2: the raw wire path. Upload once, then ask the owner
	// directly and a wrong node (whose answer rides the 307 redirect);
	// the explanation DTOs must be byte-identical.
	text, err := parser.FormatDatabase(inst.DB)
	if err != nil {
		return fmt.Errorf("clusterdiff: format: %v", err)
	}
	entry := cd.client(cd.urls[0])
	info, err := entry.UploadDatabase(ctx, text)
	if err != nil {
		return fmt.Errorf("clusterdiff: upload: %v", err)
	}
	owner := cd.ring.Owner(info.ID)
	var wrong, third string
	for _, u := range cd.urls {
		if u == owner {
			continue
		}
		if wrong == "" {
			wrong = u
		} else {
			third = u
		}
	}
	if owner == "" || wrong == "" || third == "" {
		return fmt.Errorf("clusterdiff: could not split %v into owner/wrong/third for %s", cd.urls, info.ID)
	}
	req := querycause.ExplainRequest{Query: inst.Query.String()}
	explainVia := func(base string) (querycause.ExplainResponse, error) {
		c := cd.client(base)
		if inst.WhyNo {
			return c.WhyNo(ctx, info.ID, "", req)
		}
		return c.WhySo(ctx, info.ID, "", req)
	}
	direct, derr := explainVia(owner)
	hopped, herr := explainVia(wrong)
	if err := equalFailures("wrong-node explain", derr, herr); err != nil {
		return err
	}
	if derr == nil {
		dj, _ := json.Marshal(direct.Explanations)
		hj, _ := json.Marshal(hopped.Explanations)
		if !bytes.Equal(dj, hj) {
			return fmt.Errorf("clusterdiff: redirected ranking differs from owner's:\nowner: %s\nhop:   %s", dj, hj)
		}
	}

	// Angle 3: teardown through the remaining non-owner must delete the
	// session cluster-wide.
	if err := cd.client(third).DropDatabase(ctx, info.ID); err != nil {
		return fmt.Errorf("clusterdiff: delete via non-owner: %v", err)
	}
	if _, err := explainVia(owner); !errors.Is(err, qerr.ErrSessionNotFound) {
		return fmt.Errorf("clusterdiff: session %s survived a cluster-wide delete (err=%v)", info.ID, err)
	}
	return nil
}
