// Naive-vs-planned evaluator equivalence: the differential that keeps
// the streaming data plane (internal/ra) honest against the naive
// reference evaluator (rel.EvalNaive) on every generated instance.

package difftest

import (
	"fmt"
	"sort"
	"strings"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/ra"
	"github.com/querycause/querycause/internal/rel"
)

// checkEvalEquivalence runs the instance's query through both
// evaluation backends and requires:
//
//   - identical valuation sets: same bindings with the same per-atom
//     witness tuples, compared as canonically serialized sets
//     (enumeration order is backend-specific and not part of the
//     contract);
//   - identical minimal endogenous lineages: the streamed
//     lineage.NLineageOf and the two-pass naive NLineageOfNaive must
//     produce structurally equal DNFs — canonical conjunct order makes
//     this byte-for-byte, not merely logically equivalent.
func checkEvalEquivalence(inst *causegen.Instance) error {
	naive, err := rel.EvalNaive(inst.DB, inst.Query)
	if err != nil {
		return fmt.Errorf("eval-diff: naive: %v", err)
	}
	planned, err := ra.Valuations(inst.DB, inst.Query)
	if err != nil {
		return fmt.Errorf("eval-diff: planned: %v", err)
	}
	nk := valuationKeys(naive)
	pk := valuationKeys(planned)
	if len(nk) != len(pk) {
		return fmt.Errorf("eval-diff: naive found %d distinct valuations, planned %d", len(nk), len(pk))
	}
	for i := range nk {
		if nk[i] != pk[i] {
			return fmt.Errorf("eval-diff: valuation sets differ; first divergence:\n  naive:   %s\n  planned: %s", nk[i], pk[i])
		}
	}

	nlNaive, err := lineage.NLineageOfNaive(inst.DB, inst.Query)
	if err != nil {
		return fmt.Errorf("eval-diff: naive lineage: %v", err)
	}
	nlPlanned, err := lineage.NLineageOf(inst.DB, inst.Query)
	if err != nil {
		return fmt.Errorf("eval-diff: planned lineage: %v", err)
	}
	if nlNaive.True != nlPlanned.True {
		return fmt.Errorf("eval-diff: lineage True flags differ: naive=%v planned=%v", nlNaive.True, nlPlanned.True)
	}
	if len(nlNaive.Conjuncts) != len(nlPlanned.Conjuncts) {
		return fmt.Errorf("eval-diff: lineages differ: naive %s, planned %s", nlNaive, nlPlanned)
	}
	for i := range nlNaive.Conjuncts {
		if !nlNaive.Conjuncts[i].Equal(nlPlanned.Conjuncts[i]) {
			return fmt.Errorf("eval-diff: lineage conjunct %d differs: naive %v, planned %v (full: naive %s, planned %s)",
				i, nlNaive.Conjuncts[i], nlPlanned.Conjuncts[i], nlNaive, nlPlanned)
		}
	}
	return nil
}

// valuationKeys canonically serializes a valuation list as a sorted,
// deduplicated key set: variables in sorted order with their values,
// then the witness IDs in atom order.
func valuationKeys(vals []rel.Valuation) []string {
	keys := make([]string, 0, len(vals))
	var b strings.Builder
	for _, v := range vals {
		b.Reset()
		names := make([]string, 0, len(v.Binding))
		for name := range v.Binding {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "%s=%s;", name, v.Binding[name])
		}
		b.WriteString("|")
		for _, id := range v.Witness {
			fmt.Fprintf(&b, "%d,", id)
		}
		keys = append(keys, b.String())
	}
	sort.Strings(keys)
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			out = append(out, k)
		}
	}
	return out
}
