// Watch-replay differential: a live watch subscription opened before a
// seeded mutation sequence must let its consumer reconstruct — by
// folding every DiffEvent frame with server.ApplyWatchEvent — the
// exact ranking a cold engine over the database at that version
// returns, byte for byte, at every step of the sequence. Error-state
// frames must appear exactly when the library engine rejects the
// instance at that version (e.g. a mutation that makes a Why-No
// instance invalid), and the stream must recover with a full_resync
// once the instance is valid again.
package difftest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/server"
)

// WatchDiff owns an in-process querycaused server for the watch-replay
// differential. It is safe for concurrent use by sweep workers.
type WatchDiff struct {
	diffServer
	// N is the mutation-sequence length per replay (default 6).
	N int
}

// NewWatchDiff boots the in-process server. Callers must Close it.
func NewWatchDiff() *WatchDiff {
	return &WatchDiff{diffServer: newDiffServer()}
}

func (wd *WatchDiff) seqLen() int {
	if wd.N > 0 {
		return wd.N
	}
	return 6
}

// watchCheckTimeout bounds one whole watch replay: if the server ever
// fails to produce the one-frame-per-mutation liveness guarantee, the
// blocked frame read turns into a context error instead of hanging the
// sweep.
const watchCheckTimeout = 2 * time.Minute

// Check opens a watch on inst's explanation, applies the instance's
// seeded mutation sequence (the same one MutateDiff replays), and
// after every mutation folds the resulting frame into a replayed
// ranking that must byte-equal the library engine run cold over the
// mutated database at that version.
func (wd *WatchDiff) Check(inst *causegen.Instance) error {
	muts := causegen.RandomMutations(inst.Seed, inst, wd.seqLen())
	dbText, err := parser.FormatDatabase(inst.DB)
	if err != nil {
		return fmt.Errorf("watchdiff: format database: %v", err)
	}
	id, err := wd.upload(dbText)
	if err != nil {
		return fmt.Errorf("watchdiff: upload: %v", err)
	}
	defer wd.drop(id)

	ctx, cancel := context.WithTimeout(context.Background(), watchCheckTimeout)
	defer cancel()
	body, _ := json.Marshal(server.WatchRequest{Query: inst.Query.String(), WhyNo: inst.WhyNo, Mode: "auto"})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, wd.ts.URL+"/v1/databases/"+id+"/watch", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := wd.ts.Client().Do(req)
	if err != nil {
		return fmt.Errorf("watchdiff: open watch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		// An unwatchable instance (invalid Why-No, unsafe query): the
		// explain path must reject it with the same status.
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		res, err := wd.explain(id, inst)
		if err != nil {
			return fmt.Errorf("watchdiff: explain after watch rejection: %v", err)
		}
		if res.status != resp.StatusCode {
			return fmt.Errorf("watchdiff: watch rejected with %d (%s) but explain answers %d: %s",
				resp.StatusCode, bytes.TrimSpace(raw), res.status, res.payload)
		}
		return nil
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	nextFrame := func() (server.WatchEvent, error) {
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var ev server.WatchEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return ev, fmt.Errorf("malformed frame %q: %v", line, err)
			}
			return ev, nil
		}
		if err := sc.Err(); err != nil {
			return server.WatchEvent{}, err
		}
		return server.WatchEvent{}, fmt.Errorf("stream closed")
	}

	snap, err := nextFrame()
	if err != nil {
		return fmt.Errorf("watchdiff: reading snapshot: %v", err)
	}
	if snap.Type != "snapshot" {
		return fmt.Errorf("watchdiff: first frame is %q, want snapshot", snap.Type)
	}
	state := server.ApplyWatchEvent(nil, snap)
	inErr := false
	lastVersion := snap.Version

	// The library oracle advances tuple-for-tuple with the session.
	replay := inst.DB.Clone()
	for i, m := range muts {
		mr, err := wd.applyMutation(id, m)
		if err != nil {
			return fmt.Errorf("watchdiff: mutation %d (%v): %v", i, m, err)
		}
		ev, err := nextFrame()
		if err != nil {
			return fmt.Errorf("watchdiff: no frame after mutation %d (%v): %v", i, m, err)
		}
		if ev.Version != mr.Version || ev.Version <= lastVersion {
			return fmt.Errorf("watchdiff: frame after mutation %d has version %d (previous %d, mutation left v%d)",
				i, ev.Version, lastVersion, mr.Version)
		}
		lastVersion = ev.Version
		state = server.ApplyWatchEvent(state, ev)
		switch ev.Type {
		case "error":
			inErr = true
		case "snapshot", "full_resync":
			inErr = false
		}

		if err := causegen.ApplyMutations(replay, muts[i:i+1]); err != nil {
			return fmt.Errorf("watchdiff: library replay of mutation %d: %v", i, err)
		}
		want, wantOK := libraryRanking(inst, replay)
		if inErr && wantOK {
			return fmt.Errorf("watchdiff: watch in error state after mutation %d (%v) but the library ranks v%d: %s",
				i, m, ev.Version, rankingBytes(want))
		}
		if !inErr && !wantOK {
			return fmt.Errorf("watchdiff: library rejects the instance at v%d but the watch stream is healthy after mutation %d (%v)",
				ev.Version, i, m)
		}
		if wantOK {
			got, wantB := rankingBytes(state), rankingBytes(want)
			if !bytes.Equal(got, wantB) {
				return fmt.Errorf("watchdiff: replayed ranking diverges from cold engine at v%d (mutation %d, %v):\nreplay: %s\ncold:   %s",
					ev.Version, i, m, got, wantB)
			}
		}
	}
	return nil
}

// libraryRanking ranks inst's explanation cold over db with a fresh
// in-process engine; ok=false means the engine rejects the instance at
// this version (an invalid Why-No, an unsatisfied answer).
func libraryRanking(inst *causegen.Instance, db *rel.Database) ([]server.ExplanationDTO, bool) {
	cur := &causegen.Instance{Seed: inst.Seed, DB: db, Query: inst.Query, WhyNo: inst.WhyNo}
	eng, err := newEngine(cur)
	if err != nil {
		return nil, false
	}
	rank, err := eng.RankAll(core.ModeAuto)
	if err != nil {
		return nil, false
	}
	return serverDTOs(db, rank), true
}

// rankingBytes renders a ranking for byte comparison, mapping nil and
// empty to the same encoding.
func rankingBytes(d []server.ExplanationDTO) []byte {
	if d == nil {
		d = []server.ExplanationDTO{}
	}
	b, _ := json.Marshal(d)
	return b
}
