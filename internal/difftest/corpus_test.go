package difftest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/exact"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
)

// corpusDNFs collects every lineage the checked-in testdata pins: the
// raw .dnf regressions plus the minimal n-lineage of every .inst
// instance.
func corpusDNFs(t *testing.T) map[string]lineage.DNF {
	t.Helper()
	out := make(map[string]lineage.DNF)
	dnfFiles, err := filepath.Glob(filepath.Join("testdata", "*.dnf"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range dnfFiles {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		d, err := parseDNF(string(raw))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		out[filepath.Base(f)] = d
	}
	instFiles, err := filepath.Glob(filepath.Join("testdata", "*.inst"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range instFiles {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := Decode(string(raw))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		nl, err := lineage.NLineageOf(inst.DB, inst.Query)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if nl.True || len(nl.Conjuncts) == 0 {
			continue // no lineage-level search to compare
		}
		out[filepath.Base(f)] = nl
	}
	if len(out) == 0 {
		t.Fatal("empty testdata corpus")
	}
	return out
}

// TestExactIndexCorpusEquality asserts the indexed branch-and-bound —
// under the default configuration and under every ablation variant —
// returns sizes identical to BruteForceMinContingency on every
// checked-in testdata DNF, for every variable (causes and non-causes
// alike), and that every returned set is witness-valid by definition.
func TestExactIndexCorpusEquality(t *testing.T) {
	for name, d := range corpusDNFs(t) {
		t.Run(name, func(t *testing.T) {
			for _, v := range d.Vars() {
				want, wantOK := exact.BruteForceMinContingency(d, v)
				variants := append([]struct {
					name string
					opts exact.Options
				}{{"default", exact.Options{}}}, ablationVariants...)
				for _, ab := range variants {
					set, ok := exact.MinContingencySetOpts(d, v, ab.opts)
					if ok != wantOK || (ok && len(set) != want) {
						t.Errorf("var %d, %s: exact=(%d,%v) brute=(%d,%v)", v, ab.name, len(set), ok, want, wantOK)
						continue
					}
					if ok {
						if err := validateDNFWitness(d, v, set); err != nil {
							t.Errorf("var %d, %s: %v", v, ab.name, err)
						}
					}
				}
			}
		})
	}
}

// validateDNFWitness checks a contingency set against the lineage by
// definition: the DNF must stay satisfiable without Γ and die without
// Γ ∪ {t}.
func validateDNFWitness(d lineage.DNF, t rel.TupleID, set []rel.TupleID) error {
	removed := make(map[rel.TupleID]bool, len(set)+1)
	for _, id := range set {
		if id == t {
			return fmt.Errorf("contingency %v contains the cause %d itself", set, t)
		}
		if removed[id] {
			return fmt.Errorf("contingency %v repeats %d", set, id)
		}
		removed[id] = true
	}
	if !d.EvalWithout(removed) {
		return fmt.Errorf("lineage dies removing Γ=%v alone", set)
	}
	removed[t] = true
	if d.EvalWithout(removed) {
		return fmt.Errorf("lineage survives removing Γ∪{t}, Γ=%v", set)
	}
	return nil
}

// TestHardFamilySweep points the full differential battery at the
// NP-hard star family itself: every instance is a seeded h₁* member
// with a randomized exogenous mask (causegen.HardStar via
// GenConfig.HardStarProb), sizes the PR-3 solver made impractical to
// sweep. The ablation cap is raised so the optimization invariant is
// exercised on genuinely hard lineages.
func TestHardFamilySweep(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 30
	}
	opts := Options{
		Seed:             *seedFlag,
		N:                n,
		Gen:              causegen.GenConfig{HardStarProb: 1},
		MetamorphicEvery: 4,
		Check:            CheckOptions{AblationVarCap: 30},
	}
	rep, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	t.Logf("%v", rep)
	failOnMismatches(t, rep, opts)
	if rep.ExactRanked == 0 {
		t.Error("hard-family sweep never exercised the exact solver")
	}
	if rep.AblationChecked == 0 {
		t.Error("hard-family sweep never exercised the ablation invariant")
	}
}
