// Session-equivalence differential: the public Session API's two
// transports — Open (in-process) and Dial (HTTP, over httptest) —
// replayed on the same instance must be indistinguishable: identical
// cause sets, byte-identical rankings (blocking, streamed in either
// emission order, and batched), an identical deterministic stream
// emission sequence, and errors.Is-equal failures with the same
// taxonomy code when the instance is flipped into an invalid request.
package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	querycause "github.com/querycause/querycause"
	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/faultinject"
	"github.com/querycause/querycause/internal/qerr"
	"github.com/querycause/querycause/internal/server"
)

// SessionDiff owns an in-process querycaused server and replays
// instances through the public Session API on both transports. It is
// safe for concurrent use by sweep workers.
type SessionDiff struct {
	srv *server.Server
	ts  *httptest.Server
	// dialOpts ride every Dial; WithFaults uses them to route the HTTP
	// transport through a fault injector.
	dialOpts []querycause.Option
}

// NewSessionDiff boots the backing server. Callers must Close it.
func NewSessionDiff() *SessionDiff {
	srv := server.New(server.Config{
		ReapInterval: -1,
		// Headroom over the sweep's worker count so one worker's
		// session is never LRU-evicted mid-check by another's.
		MaxSessions: 128,
	})
	return &SessionDiff{srv: srv, ts: httptest.NewServer(srv.Handler())}
}

// WithFaults routes the remote transport's HTTP exchanges through in,
// with extra retry budget so every injected fault is absorbed: the
// sweep still demands byte-identical transports, now under connection
// drops, latency, 503 bursts, and truncated watch streams. It returns
// sd for chaining.
func (sd *SessionDiff) WithFaults(in *faultinject.Injector) *SessionDiff {
	sd.dialOpts = append(sd.dialOpts,
		querycause.WithHTTPClient(&http.Client{Transport: in.Transport(nil)}),
		querycause.WithRetries(faultRetries))
	return sd
}

// faultRetries is the retry budget fault-injected differentials run
// with: enough headroom that a full 503 burst plus a dropped
// connection on the same request still recovers.
const faultRetries = 8

// Close shuts the backing server down.
func (sd *SessionDiff) Close() {
	sd.ts.Close()
	sd.srv.Close()
}

// Check replays inst through Open and Dial and demands transport
// indistinguishability, with want (the engine-level ModeAuto ranking)
// as the external reference both transports must reproduce.
func (sd *SessionDiff) Check(inst *causegen.Instance, want []core.Explanation) error {
	ctx := context.Background()
	local, err := querycause.Open(inst.DB)
	if err != nil {
		return fmt.Errorf("sessiondiff: Open: %v", err)
	}
	defer local.Close()
	remote, err := querycause.Dial(ctx, sd.ts.URL, inst.DB, sd.dialOpts...)
	if err != nil {
		return fmt.Errorf("sessiondiff: Dial: %v", err)
	}
	defer remote.Close()

	wantJSON, err := json.Marshal(want)
	if err != nil {
		return err
	}

	lr, lerr := openRanking(ctx, local, inst, inst.WhyNo)
	rr, rerr := openRanking(ctx, remote, inst, inst.WhyNo)
	if err := equalFailures("open", lerr, rerr); err != nil {
		return err
	}
	if lerr != nil {
		// Generated instances are valid; a failure here is a harness
		// bug worth surfacing, not an equivalence pass.
		return fmt.Errorf("sessiondiff: valid instance rejected by both transports: %v", lerr)
	}

	// Cause sets agree with each other (Rank comparison against the
	// engine reference covers their correctness).
	lc, _ := lr.Causes(ctx)
	rc, _ := rr.Causes(ctx)
	if !equalIDs(lc, rc) {
		return fmt.Errorf("sessiondiff: cause sets differ: local %v, remote %v", lc, rc)
	}

	// Blocking rankings: byte-identical to the engine reference.
	for _, tr := range []struct {
		name string
		r    querycause.Ranking
	}{{"local", lr}, {"remote", rr}} {
		got, err := tr.r.Rank(ctx)
		if err != nil {
			return fmt.Errorf("sessiondiff: %s Rank: %v", tr.name, err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			return err
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			return fmt.Errorf("sessiondiff: %s Rank differs from engine ranking:\ngot:  %s\nwant: %s", tr.name, gotJSON, wantJSON)
		}
	}

	// Streams: the deterministic emission sequences must be identical
	// across transports, and each drained stream sorted must equal the
	// blocking ranking byte-for-byte.
	lSeq, err := drainRankStream(ctx, lr)
	if err != nil {
		return fmt.Errorf("sessiondiff: local RankStream: %v", err)
	}
	rSeq, err := drainRankStream(ctx, rr)
	if err != nil {
		return fmt.Errorf("sessiondiff: remote RankStream: %v", err)
	}
	lSeqJSON, _ := json.Marshal(lSeq)
	rSeqJSON, _ := json.Marshal(rSeq)
	if !bytes.Equal(lSeqJSON, rSeqJSON) {
		return fmt.Errorf("sessiondiff: deterministic stream sequences differ:\nlocal:  %s\nremote: %s", lSeqJSON, rSeqJSON)
	}
	querycause.SortExplanations(lSeq)
	if sorted, _ := json.Marshal(lSeq); !bytes.Equal(sorted, wantJSON) {
		return fmt.Errorf("sessiondiff: drained stream (sorted) differs from Rank:\ngot:  %s\nwant: %s", sorted, wantJSON)
	}

	// Error parity: replaying the instance in the opposite direction
	// (Why-So ↔ Why-No) usually violates the Why-No preconditions;
	// whatever the outcome, the two transports must agree on it — nil
	// with nil, or the same taxonomy sentinel with the same code.
	_, lflip := openRanking(ctx, local, inst, !inst.WhyNo)
	_, rflip := openRanking(ctx, remote, inst, !inst.WhyNo)
	if err := equalFailures("flipped open", lflip, rflip); err != nil {
		return err
	}
	return nil
}

func openRanking(ctx context.Context, sess querycause.Session, inst *causegen.Instance, whyNo bool) (querycause.Ranking, error) {
	if whyNo {
		return sess.WhyNo(ctx, inst.Query)
	}
	return sess.WhySo(ctx, inst.Query)
}

func drainRankStream(ctx context.Context, r querycause.Ranking) ([]core.Explanation, error) {
	// Non-nil from the start: an empty drained stream must compare
	// equal to RankAll's empty (non-nil) ranking under JSON.
	out := []core.Explanation{}
	for ex, err := range r.RankStream(ctx, querycause.WithParallelism(2)) {
		if err != nil {
			return nil, err
		}
		out = append(out, ex)
	}
	return out, nil
}

// equalFailures demands errors.Is-equal outcomes: both nil, or both
// non-nil with the same taxonomy code.
func equalFailures(what string, a, b error) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("sessiondiff: %s: transports disagree: local err=%v, remote err=%v", what, a, b)
	}
	if a == nil {
		return nil
	}
	ca, cb := qerr.CodeOf(a), qerr.CodeOf(b)
	if ca != cb {
		return fmt.Errorf("sessiondiff: %s: error codes differ: local %q (%v), remote %q (%v)", what, ca, a, cb, b)
	}
	if ca == "" {
		return fmt.Errorf("sessiondiff: %s: failure carries no taxonomy code: local %v, remote %v", what, a, b)
	}
	return nil
}
