// Server-vs-library differential: the same instance replayed through
// internal/server's HTTP API (over httptest, in-process) must produce
// rankings byte-identical to the library's — same tuples, ρ values,
// contingency sets, and method strings, JSON-encoded and compared as
// bytes. Both the one-shot explain endpoint and the batch endpoint are
// exercised.
package difftest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/server"
)

// ServerDiff owns an in-process querycaused server for replaying
// instances. It is safe for concurrent use by sweep workers.
type ServerDiff struct {
	srv *server.Server
	ts  *httptest.Server
}

// NewServerDiff boots the in-process server. Callers must Close it.
func NewServerDiff() *ServerDiff {
	srv := server.New(server.Config{
		// No background reaper: sessions are created and deleted per
		// check, and tests should not depend on wall-clock eviction.
		ReapInterval: -1,
		// Plenty of headroom over the sweep's worker count so one
		// worker's session is never LRU-evicted mid-check by another's.
		MaxSessions: 128,
	})
	return &ServerDiff{srv: srv, ts: httptest.NewServer(srv.Handler())}
}

// Close shuts the in-process server down.
func (sd *ServerDiff) Close() {
	sd.ts.Close()
	sd.srv.Close()
}

// Check replays inst through the server and compares against the
// library ranking want (computed under ModeAuto).
func (sd *ServerDiff) Check(inst *causegen.Instance, want []core.Explanation) error {
	dbText, err := parser.FormatDatabase(inst.DB)
	if err != nil {
		return fmt.Errorf("serverdiff: format database: %v", err)
	}
	var info server.DatabaseInfo
	if err := sd.post("/v1/databases", "text/plain", strings.NewReader(dbText), &info); err != nil {
		return fmt.Errorf("serverdiff: upload: %v", err)
	}
	defer sd.deleteSession(info.ID)

	wantDTO, err := json.Marshal(serverDTOs(inst.DB, want))
	if err != nil {
		return err
	}

	kind := "whyso"
	if inst.WhyNo {
		kind = "whyno"
	}
	reqBody, _ := json.Marshal(server.ExplainRequest{Query: inst.Query.String(), Mode: "auto"})
	var resp server.ExplainResponse
	if err := sd.post("/v1/databases/"+info.ID+"/"+kind, "application/json", bytes.NewReader(reqBody), &resp); err != nil {
		return fmt.Errorf("serverdiff: %s: %v", kind, err)
	}
	gotDTO, err := json.Marshal(resp.Explanations)
	if err != nil {
		return err
	}
	if !bytes.Equal(gotDTO, wantDTO) {
		return fmt.Errorf("serverdiff: %s ranking differs from library:\nserver:  %s\nlibrary: %s", kind, gotDTO, wantDTO)
	}

	// Batch endpoint: the same instance as a one-item batch must also
	// be byte-identical.
	batchBody, _ := json.Marshal(server.BatchExplainRequest{
		Requests: []server.BatchItem{{Query: inst.Query.String(), WhyNo: inst.WhyNo}},
		Mode:     "auto",
	})
	var batch server.BatchExplainResponse
	if err := sd.post("/v1/databases/"+info.ID+"/batch", "application/json", bytes.NewReader(batchBody), &batch); err != nil {
		return fmt.Errorf("serverdiff: batch: %v", err)
	}
	if len(batch.Results) != 1 {
		return fmt.Errorf("serverdiff: batch returned %d results for 1 request", len(batch.Results))
	}
	if batch.Results[0].Error != "" {
		return fmt.Errorf("serverdiff: batch item failed: %s", batch.Results[0].Error)
	}
	gotBatch, err := json.Marshal(batch.Results[0].Explanations)
	if err != nil {
		return err
	}
	// The batch DTO omits empty rankings entirely (omitempty); an
	// empty library ranking then marshals as [] vs null.
	if len(want) == 0 && batch.Results[0].Explanations == nil {
		return nil
	}
	if !bytes.Equal(gotBatch, wantDTO) {
		return fmt.Errorf("serverdiff: batch ranking differs from library:\nserver:  %s\nlibrary: %s", gotBatch, wantDTO)
	}
	return nil
}

func (sd *ServerDiff) post(path, contentType string, body io.Reader, out any) error {
	resp, err := sd.ts.Client().Post(sd.ts.URL+path, contentType, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}

func (sd *ServerDiff) deleteSession(id string) {
	req, err := http.NewRequest(http.MethodDelete, sd.ts.URL+"/v1/databases/"+id, nil)
	if err != nil {
		return
	}
	resp, err := sd.ts.Client().Do(req)
	if err == nil {
		resp.Body.Close()
	}
}

// serverDTOs renders a library ranking with the server's own DTO
// constructor, so the comparison is byte-level on identical JSON
// shapes with no mirror encoder to drift.
func serverDTOs(db *rel.Database, exps []core.Explanation) []server.ExplanationDTO {
	out := make([]server.ExplanationDTO, len(exps))
	for i, e := range exps {
		out[i] = server.NewExplanationDTO(db, e)
	}
	return out
}
