// Incremental-vs-cold-rebuild differential: a server session that
// applies a random mutation sequence step by step — explaining after
// every step, so the incremental invalidation path is what maintains
// its engines, certificates, and prepared state — must end up
// answering byte-identically to a session built cold at the final
// version, and both must match the library engine run in-process on
// the final database. Any over-retention (a stale engine surviving a
// mutation that touches its lineage) or over-invalidation that
// rebuilds into different state shows up as a byte mismatch.
package difftest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/parser"
	"github.com/querycause/querycause/internal/server"
)

// diffServer is the in-process querycaused server shared by the
// mutation-driven differentials (MutateDiff, WatchDiff): an httptest
// endpoint plus the upload / mutate / explain plumbing they replay
// through. It is safe for concurrent use by sweep workers.
type diffServer struct {
	srv *server.Server
	ts  *httptest.Server
}

func newDiffServer() diffServer {
	srv := server.New(server.Config{
		ReapInterval: -1,
		// Two sessions (warm + cold) per in-flight check.
		MaxSessions: 256,
	})
	return diffServer{srv: srv, ts: httptest.NewServer(srv.Handler())}
}

// Close shuts the in-process server down.
func (ds diffServer) Close() {
	ds.ts.Close()
	ds.srv.Close()
}

// MutateDiff owns an in-process querycaused server for the
// incremental-vs-cold replay. It is safe for concurrent use by sweep
// workers.
type MutateDiff struct {
	diffServer
	// N is the mutation-sequence length per replay (default 6).
	N int
}

// NewMutateDiff boots the in-process server. Callers must Close it.
func NewMutateDiff() *MutateDiff {
	return &MutateDiff{diffServer: newDiffServer()}
}

func (md *MutateDiff) seqLen() int {
	if md.N > 0 {
		return md.N
	}
	return 6
}

// explainResult is the comparable outcome of one explain call: the
// status and, for successes, the ranking DTOs as canonical JSON — for
// failures, the raw error body.
type explainResult struct {
	status  int
	payload []byte
}

func (r explainResult) equal(o explainResult) bool {
	return r.status == o.status && bytes.Equal(r.payload, o.payload)
}

// Check replays a seeded mutation sequence for inst through two server
// sessions — one mutated incrementally with explains interleaved, one
// rebuilt cold at the final version — and requires their final answers
// to be byte-identical, and equal to the in-process engine on the
// final database.
func (md *MutateDiff) Check(inst *causegen.Instance) error {
	muts := causegen.RandomMutations(inst.Seed, inst, md.seqLen())
	dbText, err := parser.FormatDatabase(inst.DB)
	if err != nil {
		return fmt.Errorf("mutatediff: format database: %v", err)
	}

	// The library oracle: the same sequence replayed in-process, ranked
	// by a fresh engine over the final database. Mutations can destroy
	// the instance (a Why-No whose query now holds): then the engine
	// fails and the servers must report a client error.
	final := inst.DB.Clone()
	if err := causegen.ApplyMutations(final, muts); err != nil {
		return fmt.Errorf("mutatediff: library replay: %v", err)
	}
	finalInst := &causegen.Instance{Seed: inst.Seed, DB: final, Query: inst.Query, WhyNo: inst.WhyNo}
	var wantDTO []byte
	wantOK := false
	if eng, err := newEngine(finalInst); err == nil {
		if rank, err := eng.RankAll(core.ModeAuto); err == nil {
			wantOK = true
			if wantDTO, err = json.Marshal(serverDTOs(final, rank)); err != nil {
				return err
			}
		}
	}

	// Warm side: mutate step by step, explaining after every step so
	// each answer is served by incrementally-maintained session state.
	warmID, err := md.upload(dbText)
	if err != nil {
		return fmt.Errorf("mutatediff: warm upload: %v", err)
	}
	defer md.drop(warmID)
	if res, err := md.explain(warmID, inst); err != nil {
		return fmt.Errorf("mutatediff: warm-up explain: %v", err)
	} else if res.status >= 500 {
		return fmt.Errorf("mutatediff: warm-up explain: status %d: %s", res.status, res.payload)
	}
	warmVersions := make([]server.MutateResponse, len(muts))
	for i, m := range muts {
		mr, err := md.applyMutation(warmID, m)
		if err != nil {
			return fmt.Errorf("mutatediff: warm mutation %d (%v): %v", i, m, err)
		}
		warmVersions[i] = mr
		if res, err := md.explain(warmID, inst); err != nil {
			return fmt.Errorf("mutatediff: warm explain after mutation %d: %v", i, err)
		} else if res.status >= 500 {
			return fmt.Errorf("mutatediff: warm explain after mutation %d: status %d: %s", i, res.status, res.payload)
		}
	}
	warm, err := md.explain(warmID, inst)
	if err != nil {
		return fmt.Errorf("mutatediff: warm final explain: %v", err)
	}

	// Cold side: same upload, same sequence, no intermediate explains —
	// every engine and certificate is built at the final version.
	coldID, err := md.upload(dbText)
	if err != nil {
		return fmt.Errorf("mutatediff: cold upload: %v", err)
	}
	defer md.drop(coldID)
	for i, m := range muts {
		mr, err := md.applyMutation(coldID, m)
		if err != nil {
			return fmt.Errorf("mutatediff: cold mutation %d (%v): %v", i, m, err)
		}
		if w := warmVersions[i]; mr.Version != w.Version || mr.Tuples != w.Tuples ||
			fmt.Sprint(mr.TupleIDs) != fmt.Sprint(w.TupleIDs) {
			return fmt.Errorf("mutatediff: mutation %d (%v) diverges: warm (v%d, %d live, ids %v) vs cold (v%d, %d live, ids %v)",
				i, m, w.Version, w.Tuples, w.TupleIDs, mr.Version, mr.Tuples, mr.TupleIDs)
		}
	}
	cold, err := md.explain(coldID, inst)
	if err != nil {
		return fmt.Errorf("mutatediff: cold final explain: %v", err)
	}

	if !warm.equal(cold) {
		return fmt.Errorf("mutatediff: incremental state diverges from cold rebuild after %v:\nwarm (%d): %s\ncold (%d): %s",
			muts, warm.status, warm.payload, cold.status, cold.payload)
	}
	if wantOK {
		if cold.status/100 != 2 {
			return fmt.Errorf("mutatediff: library ranks the final database but the server errors (%d): %s", cold.status, cold.payload)
		}
		if !bytes.Equal(cold.payload, wantDTO) {
			return fmt.Errorf("mutatediff: final ranking differs from library engine:\nserver:  %s\nlibrary: %s", cold.payload, wantDTO)
		}
	} else if cold.status/100 == 2 {
		return fmt.Errorf("mutatediff: library rejects the final instance but the server answers: %s", cold.payload)
	}
	return nil
}

// applyMutation sends one mutation over HTTP and returns the server's
// MutateResponse.
func (ds diffServer) applyMutation(dbID string, m causegen.Mutation) (server.MutateResponse, error) {
	var out server.MutateResponse
	if m.Insert {
		args := make([]string, len(m.Args))
		for i, a := range m.Args {
			args[i] = string(a)
		}
		body, _ := json.Marshal(server.InsertTuplesRequest{
			Tuples: []server.TupleSpec{{Rel: m.Rel, Args: args, Endo: m.Endo}},
		})
		err := ds.post("/v1/databases/"+dbID+"/tuples", "application/json", bytes.NewReader(body), &out)
		return out, err
	}
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/databases/%s/tuples/%d", ds.ts.URL, dbID, m.ID), nil)
	if err != nil {
		return out, err
	}
	resp, err := ds.ts.Client().Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return out, err
	}
	if resp.StatusCode/100 != 2 {
		return out, fmt.Errorf("DELETE tuple %d: status %d: %s", m.ID, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return out, json.Unmarshal(raw, &out)
}

// explain runs the instance's explain request and returns the
// comparable result. Client errors (an instance a mutation destroyed)
// are results, not failures — both sessions must produce the same one.
func (ds diffServer) explain(dbID string, inst *causegen.Instance) (explainResult, error) {
	kind := "whyso"
	if inst.WhyNo {
		kind = "whyno"
	}
	body, _ := json.Marshal(server.ExplainRequest{Query: inst.Query.String(), Mode: "auto"})
	resp, err := ds.ts.Client().Post(ds.ts.URL+"/v1/databases/"+dbID+"/"+kind, "application/json", bytes.NewReader(body))
	if err != nil {
		return explainResult{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return explainResult{}, err
	}
	if resp.StatusCode/100 != 2 {
		return explainResult{status: resp.StatusCode, payload: bytes.TrimSpace(raw)}, nil
	}
	var er server.ExplainResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		return explainResult{}, fmt.Errorf("%s: decoding: %v", kind, err)
	}
	payload, err := json.Marshal(er.Explanations)
	if err != nil {
		return explainResult{}, err
	}
	return explainResult{status: resp.StatusCode, payload: payload}, nil
}

func (ds diffServer) upload(dbText string) (string, error) {
	var info server.DatabaseInfo
	if err := ds.post("/v1/databases", "text/plain", strings.NewReader(dbText), &info); err != nil {
		return "", err
	}
	return info.ID, nil
}

func (ds diffServer) post(path, contentType string, body io.Reader, out any) error {
	resp, err := ds.ts.Client().Post(ds.ts.URL+path, contentType, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}

func (ds diffServer) drop(id string) {
	req, err := http.NewRequest(http.MethodDelete, ds.ts.URL+"/v1/databases/"+id, nil)
	if err != nil {
		return
	}
	resp, err := ds.ts.Client().Do(req)
	if err == nil {
		resp.Body.Close()
	}
}
