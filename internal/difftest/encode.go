// Textual instance serialization, so minimized failing instances can
// be checked into testdata/ as regression tests and replayed without
// their generating seed.
//
// Format: a "query:" line (parser query syntax), a "whyno:" line, and
// the database in the parser's tuple-line format:
//
//	query: q :- R0(x0,x1), R1(x1)
//	whyno: false
//	+R0(d0, d1)
//	-R1(d1)
package difftest

import (
	"fmt"
	"strings"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/parser"
)

// Encode renders the instance in the textual regression format.
func Encode(inst *causegen.Instance) (string, error) {
	db, err := parser.FormatDatabase(inst.DB)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("query: %s\nwhyno: %v\n%s", inst.Query, inst.WhyNo, db), nil
}

// Decode parses the regression format back into an instance. '#'
// comment lines and blank lines are ignored.
func Decode(s string) (*causegen.Instance, error) {
	inst := &causegen.Instance{}
	var dbLines []string
	sawQuery := false
	for i, line := range strings.Split(s, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "" || strings.HasPrefix(trimmed, "#"):
		case strings.HasPrefix(trimmed, "query:"):
			q, err := parser.ParseQuery(strings.TrimSpace(strings.TrimPrefix(trimmed, "query:")))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			inst.Query = q
			sawQuery = true
		case strings.HasPrefix(trimmed, "whyno:"):
			switch v := strings.TrimSpace(strings.TrimPrefix(trimmed, "whyno:")); v {
			case "true":
				inst.WhyNo = true
			case "false":
				inst.WhyNo = false
			default:
				return nil, fmt.Errorf("line %d: whyno must be true or false, got %q", i+1, v)
			}
		default:
			dbLines = append(dbLines, line)
		}
	}
	if !sawQuery {
		return nil, fmt.Errorf("difftest: instance has no query: line")
	}
	db, err := parser.ParseDatabase(strings.NewReader(strings.Join(dbLines, "\n")))
	if err != nil {
		return nil, err
	}
	inst.DB = db
	if inst.Query.IsBoolean() {
		return inst, nil
	}
	return nil, fmt.Errorf("difftest: instance query %v is not Boolean", inst.Query)
}
