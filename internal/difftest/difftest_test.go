package difftest

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/exact"
	"github.com/querycause/querycause/internal/faultinject"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/workload"
)

// Replay workflow: a CI or soak failure prints the failing instance's
// derived seed; rerunning with that seed and -n=1 regenerates the
// identical instance and mismatch:
//
//	go test ./internal/difftest -run 'TestDifferentialSweep$' -args -seed=<N> -n=1
var (
	seedFlag    = flag.Int64("seed", 1, "base seed for the differential sweep (instance i uses seed+i)")
	nFlag       = flag.Int("n", 0, "instances for the differential sweep (0 = suite default)")
	clusterFlag = flag.Bool("cluster-diff", true, "replay sweep instances through the 3-replica cluster-equivalence differential")
)

func sweepSize() int {
	if *nFlag > 0 {
		return *nFlag
	}
	if testing.Short() {
		return 120
	}
	return 600
}

// failOnMismatches reports every mismatch with its one-command replay
// and a shrunken, serialized instance ready for testdata/. Shrinking
// runs under the same checks the sweep applied (metamorphic and
// server included), so a mismatch found by those layers minimizes
// too.
func failOnMismatches(t *testing.T, rep *Report, opts Options) {
	t.Helper()
	chk := opts.ShrinkCheck()
	for _, m := range rep.Mismatches {
		shrunk := Shrink(m.Instance, Fails(chk))
		enc, err := Encode(shrunk)
		if err != nil {
			enc = fmt.Sprintf("(encode failed: %v)", err)
		}
		_, shrunkErr := CheckInstance(shrunk, chk)
		t.Errorf("%v\nminimized to %d tuples (%v):\n%s", m, shrunk.DB.NumTuples(), shrunkErr, enc)
	}
}

// TestDifferentialSweep is the harness's main entry point: a seeded
// sweep of generated Why-So/Why-No instances across linear and
// non-linear shapes, cross-checked against every oracle, with every
// 8th instance replayed through the HTTP server.
func TestDifferentialSweep(t *testing.T) {
	sd := NewServerDiff()
	defer sd.Close()
	sess := NewSessionDiff()
	defer sess.Close()
	mut := NewMutateDiff()
	defer mut.Close()
	wat := NewWatchDiff()
	defer wat.Close()
	n := sweepSize()
	opts := Options{
		Seed:             *seedFlag,
		N:                n,
		Gen:              SweepGen,
		Server:           sd,
		ServerEvery:      8,
		Session:          sess,
		SessionEvery:     8,
		Mutate:           mut,
		MutateEvery:      8,
		Watch:            wat,
		WatchEvery:       8,
		MetamorphicEvery: 2,
	}
	if *clusterFlag {
		cd := NewClusterDiff()
		defer cd.Close()
		opts.Cluster = cd
		opts.ClusterEvery = 8
	}
	rep, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	t.Logf("%v", rep)
	failOnMismatches(t, rep, opts)
	// Coverage: a sweep of reasonable size must have exercised every
	// oracle — a harness that silently skips its oracles reads green.
	// (Skipped for tiny replay runs, e.g. -n=1.)
	if n >= 300 {
		for what, got := range map[string]int{
			"whyso instances":        rep.WhySo,
			"whyno instances":        rep.WhyNo,
			"flow-ranked instances":  rep.FlowRanked,
			"exact-ranked instances": rep.ExactRanked,
			"brute-force checks":     rep.BruteChecked,
			"ablation checks":        rep.AblationChecked,
			"datalog cross-checks":   rep.DatalogChecked,
			"metamorphic checks":     rep.MetamorphicChecked,
			"server replays":         rep.ServerChecked,
			"session replays":        rep.SessionChecked,
			"mutation replays":       rep.MutateChecked,
			"watch replays":          rep.WatchChecked,
		} {
			if got == 0 {
				t.Errorf("sweep of %d instances exercised zero %s", n, what)
			}
		}
		if *clusterFlag && rep.ClusterChecked == 0 {
			t.Errorf("sweep of %d instances exercised zero cluster replays", n)
		}
	}
}

// TestDifferentialSweepWithFaults reruns the transport-facing
// differentials (session and cluster equivalence) with a fault
// injector between the client and the wire: connection drops, latency,
// 503 bursts, and truncated watch streams. The checks are unchanged —
// byte-identical transports, errors.Is-equal failures — so a pass
// means the client's retry/failover/resume machinery absorbed every
// injected fault without altering a single answer.
func TestDifferentialSweepWithFaults(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed:     *seedFlag,
		Drop:     0.08,
		Delay:    0.10,
		MaxDelay: 2 * time.Millisecond,
		Err:      0.08,
		Truncate: 0.25,
	})
	sess := NewSessionDiff().WithFaults(inj)
	defer sess.Close()
	cd := NewClusterDiff().WithFaults(inj)
	defer cd.Close()
	n := sweepSize() / 4
	opts := Options{
		Seed:         *seedFlag,
		N:            n,
		Gen:          SweepGen,
		Session:      sess,
		SessionEvery: 4,
		Cluster:      cd,
		ClusterEvery: 4,
		// The engine-side oracles are covered by the main sweep; this
		// one is about the wire.
		MetamorphicEvery: -1,
		EvalEvery:        -1,
	}
	rep, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("faulted sweep: %v", err)
	}
	t.Logf("%v; injected faults: %+v", rep, inj.Counters())
	failOnMismatches(t, rep, opts)
	if rep.SessionChecked == 0 || rep.ClusterChecked == 0 {
		t.Fatalf("faulted sweep exercised session=%d cluster=%d replays; want both > 0", rep.SessionChecked, rep.ClusterChecked)
	}
	if n >= 100 && inj.Counters().Total() == 0 {
		t.Errorf("fault injector armed but injected nothing across %d instances", n)
	}
}

// TestWorkloadFamilies runs the differential battery over the paper's
// fixed query families — linear chains (PTIME side), the NP-hard
// triangle h₂*, its PTIME exogenous variant, the star h₁*, and Why-No
// chains — with randomized endogenous/exogenous masks on top.
func TestWorkloadFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(*seedFlag))
	families := []struct {
		name string
		mk   func(seed int64, n int) (*rel.Database, *rel.Query, rel.TupleID)
	}{
		{"chain2", workload.Chain2},
		{"chain3", workload.Chain3},
		{"triangle", workload.Triangle},
		{"triangleExoS", workload.TriangleExoS},
		{"star", workload.Star},
	}
	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	for round := 0; round < rounds; round++ {
		for _, fam := range families {
			seed := rng.Int63()
			db, q, _ := fam.mk(seed, 3+rng.Intn(4))
			// Randomize the mask; the instance stays a valid Why-So
			// scenario (the planted witness keeps q true).
			for _, tp := range db.Tuples() {
				if tp.Endo && rng.Float64() < 0.25 {
					db.SetEndo(tp.ID, false)
				}
			}
			inst := &causegen.Instance{Seed: seed, DB: db, Query: q}
			if _, err := CheckInstance(inst, CheckOptions{Metamorphic: true}); err != nil {
				t.Fatalf("%s (seed %d): %v", fam.name, seed, err)
			}
		}
		// Why-No chains: keep the generator's mask (candidates must
		// stay endogenous for the instance to be valid).
		seed := rng.Int63()
		db, q := workload.WhyNoChain(seed, 2+rng.Intn(5))
		inst := &causegen.Instance{Seed: seed, DB: db, Query: q, WhyNo: true}
		if _, err := CheckInstance(inst, CheckOptions{Metamorphic: true}); err != nil {
			if errors.Is(err, ErrInvalidInstance) {
				continue // some seeds yield no joinable candidate pair
			}
			t.Fatalf("whyNoChain (seed %d): %v", seed, err)
		}
	}
}

// TestRegressions replays the minimized instances under testdata/:
// each one once exposed a real mismatch (or pins a worked example) and
// must now pass the full battery.
func TestRegressions(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.inst"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .inst regression files in testdata/")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := Decode(string(raw))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if _, err := CheckInstance(inst, CheckOptions{Metamorphic: true}); err != nil {
				t.Fatalf("regression reproduces: %v", err)
			}
		})
	}
}

// TestDNFRegressions replays lineage-level regressions: DNFs on which
// an oracle once disagreed. The exact solver must match brute force,
// and greedy must agree on causehood without undercutting.
func TestDNFRegressions(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.dnf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .dnf regression files in testdata/")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			d, err := parseDNF(string(raw))
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range d.Vars() {
				exSize, exOK := exact.MinContingency(d, v)
				brSize, brOK := exact.BruteForceMinContingency(d, v)
				if exOK != brOK || (exOK && exSize != brSize) {
					t.Errorf("var %d: exact=(%d,%v) brute=(%d,%v)", v, exSize, exOK, brSize, brOK)
				}
				g, gOK := exact.GreedyMinContingency(d, v)
				if gOK != brOK {
					t.Errorf("var %d: greedy ok=%v but brute ok=%v", v, gOK, brOK)
				}
				if gOK && brOK && g < brSize {
					t.Errorf("var %d: greedy %d undercuts minimum %d", v, g, brSize)
				}
			}
		})
	}
}

// parseDNF reads the .dnf regression format: one "conjunct: 0 1 3"
// line per conjunct, '#' comments.
func parseDNF(s string) (lineage.DNF, error) {
	var d lineage.DNF
	for i, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		body, ok := strings.CutPrefix(line, "conjunct:")
		if !ok {
			return d, fmt.Errorf("line %d: want \"conjunct: <ids>\", got %q", i+1, line)
		}
		var ids []rel.TupleID
		for _, tok := range strings.Fields(body) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return d, fmt.Errorf("line %d: %v", i+1, err)
			}
			ids = append(ids, rel.TupleID(n))
		}
		if len(ids) == 0 {
			return d, fmt.Errorf("line %d: empty conjunct", i+1)
		}
		d.Conjuncts = append(d.Conjuncts, lineage.NewConjunct(ids...))
	}
	return d, nil
}

// TestSweepDeterminism: identical (seed, config) must yield identical
// coverage counters regardless of scheduling, or seeds would not
// replay.
func TestSweepDeterminism(t *testing.T) {
	opts := Options{Seed: 424242, N: 60, MetamorphicEvery: 2}
	a, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 2 // different parallelism, same work
	b, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	type sig struct{ n, so, no, flow, ex, brute, dl, mm int }
	sa := sig{a.Instances, a.WhySo, a.WhyNo, a.FlowRanked, a.ExactRanked, a.BruteChecked, a.DatalogChecked, a.MetamorphicChecked}
	sb := sig{b.Instances, b.WhySo, b.WhyNo, b.FlowRanked, b.ExactRanked, b.BruteChecked, b.DatalogChecked, b.MetamorphicChecked}
	if sa != sb {
		t.Fatalf("sweep not deterministic: %+v vs %+v", sa, sb)
	}
}

// TestRunCancellation: canceling a sweep mid-run must return promptly
// with ctx's error and leave no goroutines behind.
func TestRunCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		rep *Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := Run(ctx, Options{Seed: 7, N: 10_000_000, MetamorphicEvery: 2})
		done <- result{rep, err}
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if !errors.Is(res.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", res.err)
		}
		if res.rep.Instances >= 10_000_000 {
			t.Fatal("sweep ran to completion despite cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runner did not return after cancellation")
	}
	// No leaked workers: the goroutine count must return to baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplayCommand: the printed replay must regenerate the identical
// instance — the bare go-test form only for the canonical SweepGen
// config, the full fuzzcause form (every generator knob pinned,
// including zeroed probabilities) otherwise.
func TestReplayCommand(t *testing.T) {
	m := Mismatch{Seed: 99, Gen: SweepGen}
	if got := m.ReplayCommand(); !strings.Contains(got, "go test ./internal/difftest") || !strings.Contains(got, "-seed=99") {
		t.Fatalf("canonical replay = %q", got)
	}
	custom := Mismatch{Seed: 7, Gen: causegen.GenConfig{MaxAtoms: 2, SelfJoinProb: -1}}
	got := custom.ReplayCommand()
	for _, want := range []string{"go run ./cmd/fuzzcause", "-seed 7", "-max-atoms 2", "-selfjoin-prob -1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("custom replay %q missing %q", got, want)
		}
	}
	// The zero-value config is not canonical (different TuplesPerRelation)
	// and must therefore spell itself out too.
	if got := (Mismatch{Seed: 1}).ReplayCommand(); !strings.Contains(got, "fuzzcause") {
		t.Fatalf("zero-config replay should use fuzzcause: %q", got)
	}
}

// TestZeroProbabilities: negative probabilities mean literally zero —
// a -selfjoin-prob -1 -whyno-prob -1 sweep must contain no self-joins
// and no why-no instances.
func TestZeroProbabilities(t *testing.T) {
	cfg := causegen.GenConfig{SelfJoinProb: -1, WhyNoProb: -1, ExoProb: -1, ConstProb: -1}
	for seed := int64(0); seed < 200; seed++ {
		inst := causegen.RandomInstance(seed, cfg)
		if inst.WhyNo {
			t.Fatalf("seed %d: why-no instance despite WhyNoProb<0", seed)
		}
		if inst.Query.HasSelfJoin() {
			t.Fatalf("seed %d: self-join despite SelfJoinProb<0", seed)
		}
		for _, a := range inst.Query.Atoms {
			for _, term := range a.Terms {
				if !term.IsVar {
					t.Fatalf("seed %d: constant term despite ConstProb<0", seed)
				}
			}
		}
		for _, tp := range inst.DB.Tuples() {
			if !tp.Endo {
				t.Fatalf("seed %d: exogenous tuple despite ExoProb<0", seed)
			}
		}
	}
}

// TestShrink minimizes against a synthetic predicate and must reach
// the smallest instance satisfying it.
func TestShrink(t *testing.T) {
	inst := causegen.RandomInstance(5, causegen.GenConfig{MaxAtoms: 4, TuplesPerRelation: 8})
	failing := func(in *causegen.Instance) bool { return in.DB.NumTuples() >= 2 }
	shrunk := Shrink(inst, failing)
	if got := shrunk.DB.NumTuples(); got != 2 {
		t.Fatalf("shrunk to %d tuples, want 2", got)
	}
	if got := len(shrunk.Query.Atoms); got != 1 {
		t.Fatalf("shrunk to %d atoms, want 1", got)
	}
	if !failing(shrunk) {
		t.Fatal("shrunk instance no longer fails")
	}
}

// TestEncodeDecodeRoundTrip: the regression format must reproduce the
// instance exactly (same query, kind, tuples, masks, IDs).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		inst := causegen.RandomInstance(seed, causegen.GenConfig{MaxAtoms: 4, MaxArity: 3})
		enc, err := Encode(inst)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v\n%s", seed, err, enc)
		}
		enc2, err := Encode(back)
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if enc != enc2 || back.WhyNo != inst.WhyNo || back.Query.String() != inst.Query.String() {
			t.Fatalf("seed %d: round-trip drift:\n%s\nvs\n%s", seed, enc, enc2)
		}
	}
}

// TestServerDiffDetectsDivergence: the byte-level comparator must not
// be vacuous — feeding it a wrong expected ranking must error.
func TestServerDiffDetectsDivergence(t *testing.T) {
	sd := NewServerDiff()
	defer sd.Close()
	inst := whySoInstance(t)
	eng, err := core.NewWhySo(inst.DB, inst.Query)
	if err != nil {
		t.Fatal(err)
	}
	rank, err := eng.RankAll(core.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) == 0 {
		t.Fatal("want a non-empty ranking")
	}
	if err := sd.Check(inst, rank); err != nil {
		t.Fatalf("true ranking rejected: %v", err)
	}
	wrong := append([]core.Explanation(nil), rank...)
	wrong[0].Rho /= 2
	if err := sd.Check(inst, wrong); err == nil {
		t.Fatal("comparator accepted a corrupted ranking")
	}
}

// TestClusterDiffDetectsDivergence: the cluster comparator must not be
// vacuous either — a corrupted reference ranking must be rejected, and
// the true one accepted.
func TestClusterDiffDetectsDivergence(t *testing.T) {
	cd := NewClusterDiff()
	defer cd.Close()
	inst := whySoInstance(t)
	eng, err := core.NewWhySo(inst.DB, inst.Query)
	if err != nil {
		t.Fatal(err)
	}
	rank, err := eng.RankAll(core.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) == 0 {
		t.Fatal("want a non-empty ranking")
	}
	if err := cd.Check(inst, rank); err != nil {
		t.Fatalf("true ranking rejected: %v", err)
	}
	wrong := append([]core.Explanation(nil), rank...)
	wrong[0].Rho /= 2
	if err := cd.Check(inst, wrong); err == nil {
		t.Fatal("cluster comparator accepted a corrupted ranking")
	}
}

// whySoInstance returns a small deterministic Why-So instance with
// causes (the paper's Example 2.2 shape).
func whySoInstance(t *testing.T) *causegen.Instance {
	t.Helper()
	db := rel.NewDatabase()
	for _, row := range [][2]rel.Value{{"a1", "a5"}, {"a2", "a1"}, {"a3", "a3"}, {"a4", "a3"}, {"a4", "a2"}} {
		db.MustAdd("R", true, row[0], row[1])
	}
	for _, v := range []rel.Value{"a1", "a2", "a3", "a4", "a6"} {
		db.MustAdd("S", true, v)
	}
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.C("a4"), rel.V("y")),
		rel.NewAtom("S", rel.V("y")),
	)
	return &causegen.Instance{DB: db, Query: q}
}
