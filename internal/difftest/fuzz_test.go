package difftest

import (
	"errors"
	"testing"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/exact"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
)

// FuzzDifferential feeds arbitrary seeds into the full differential
// battery: any engine/oracle disagreement the workload generator can
// reach is a crash. Run locally with
//
//	go test -fuzz=FuzzDifferential ./internal/difftest
func FuzzDifferential(f *testing.F) {
	for s := int64(0); s < 16; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		// SweepGen keeps the printed replay honest: the go-test replay
		// command regenerates instances under exactly this config.
		inst := causegen.RandomInstance(seed, SweepGen)
		if _, err := CheckInstance(inst, CheckOptions{Metamorphic: true}); err != nil {
			if errors.Is(err, ErrInvalidInstance) {
				t.Skip()
			}
			t.Fatalf("seed %d: %v\nreplay: %s", seed, err, Mismatch{Seed: seed, Gen: SweepGen}.ReplayCommand())
		}
	})
}

// dnfFromBytes decodes fuzz input into a small DNF: each byte's low 6
// bits are one conjunct's variable set over variables 0..5, zero
// bytes skipped, at most 12 conjuncts.
func dnfFromBytes(raw []byte) lineage.DNF {
	var d lineage.DNF
	for _, b := range raw {
		if len(d.Conjuncts) >= 12 {
			break
		}
		bits := int(b) & 63
		if bits == 0 {
			continue
		}
		var ids []rel.TupleID
		for v := 0; v < 6; v++ {
			if bits&(1<<v) != 0 {
				ids = append(ids, rel.TupleID(v))
			}
		}
		d.Conjuncts = append(d.Conjuncts, lineage.NewConjunct(ids...))
	}
	return d
}

// FuzzGreedyVsExact cross-checks the three lineage-level solvers on
// arbitrary (including non-minimal) DNFs: branch-and-bound must match
// the definition-level brute force exactly, and greedy must agree on
// causehood and only over-approximate the size. This target surfaced
// the GreedyMinContingency smallest-protection bug fixed in this
// revision (seed corpus below; minimized copy in
// testdata/greedy_nonminimal.dnf).
func FuzzGreedyVsExact(f *testing.F) {
	// The minimized greedy regression: ta ∨ a ∨ tcd with t = var 0.
	f.Add([]byte{0b000011, 0b000010, 0b001101}, uint8(0))
	f.Add([]byte{1, 2, 4, 8, 16, 32}, uint8(3))
	f.Add([]byte{63, 21, 42}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, tv uint8) {
		d := dnfFromBytes(raw)
		if len(d.Conjuncts) == 0 {
			t.Skip()
		}
		v := rel.TupleID(tv % 6)
		exSize, exOK := exact.MinContingency(d, v)
		brSize, brOK := exact.BruteForceMinContingency(d, v)
		if exOK != brOK || (exOK && exSize != brSize) {
			t.Fatalf("DNF %v var %d: exact=(%d,%v) brute=(%d,%v)", d, v, exSize, exOK, brSize, brOK)
		}
		g, gOK := exact.GreedyMinContingency(d, v)
		if gOK != brOK {
			t.Fatalf("DNF %v var %d: greedy ok=%v but brute ok=%v", d, v, gOK, brOK)
		}
		if gOK && g < brSize {
			t.Fatalf("DNF %v var %d: greedy %d undercuts minimum %d", d, v, g, brSize)
		}
	})
}
