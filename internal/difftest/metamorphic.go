// Metamorphic invariants: mutations of an instance that provably leave
// the causal verdicts unchanged, derived from the lineage semantics of
// Theorem 3.2. Each mutation rebuilds the engine from scratch and
// requires the (tuple, ρ, min|Γ|) ranking signature to survive —
// methods may legitimately change (a mutation can move the query
// across the classifier's endogenous-relation rule), values may not.
//
//   - Exogenous duplication: an exact copy of an exogenous tuple adds
//     only valuations with identical endogenous witness sets, so the
//     minimal n-lineage — and hence every ρ — is untouched.
//   - Non-cause exogenous marking: a non-cause appears in no conjunct
//     of the minimal n-lineage (its conjuncts are dominated by
//     minimal ones not containing it, which survive its removal), so
//     flipping it exogenous changes neither the cause set nor any
//     minimum contingency.
//   - Irrelevant growth: tuples in a relation the query never
//     mentions cannot join into any valuation.
package difftest

import (
	"errors"
	"fmt"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/rel"
)

// ErrInvalidInstance tags CheckInstance failures caused by the
// instance itself being malformed (engine construction rejected it)
// rather than by an engine/oracle disagreement. The shrinker uses it
// to avoid "minimizing" into instances that merely stopped being
// valid Why-No scenarios.
var ErrInvalidInstance = errors.New("difftest: invalid instance")

// checkMetamorphic applies each applicable mutation and compares the
// mutated ranking's signature against the base ranking. Returns the
// number of mutations exercised.
func checkMetamorphic(inst *causegen.Instance, baseRank []core.Explanation) (int, error) {
	checked := 0

	// Exogenous duplication: copy the first exogenous tuple.
	for _, tp := range inst.DB.Tuples() {
		if tp.Endo {
			continue
		}
		mut := cloneInstance(inst)
		mut.DB.MustAdd(tp.Rel, false, tp.Args...)
		if err := expectSameRanking("exogenous duplication", inst, mut, baseRank); err != nil {
			return checked, err
		}
		checked++
		break
	}

	// Non-cause exogenous marking: flip the first endogenous tuple
	// that is not a cause.
	causeSet := make(map[rel.TupleID]bool, len(baseRank))
	for _, ex := range baseRank {
		causeSet[ex.Tuple] = true
	}
	for _, id := range inst.DB.EndoIDs() {
		if causeSet[id] {
			continue
		}
		mut := cloneInstance(inst)
		mut.DB.SetEndo(id, false)
		if err := expectSameRanking(fmt.Sprintf("marking non-cause %d exogenous", id), inst, mut, baseRank); err != nil {
			return checked, err
		}
		checked++
		break
	}

	// Irrelevant growth: a fresh relation the query never mentions,
	// with one exogenous and one endogenous tuple.
	mut := cloneInstance(inst)
	mut.DB.MustAdd("ZZunrelated", false, "z0")
	mut.DB.MustAdd("ZZunrelated", true, "z1")
	if err := expectSameRanking("irrelevant relation growth", inst, mut, baseRank); err != nil {
		return checked, err
	}
	checked++

	return checked, nil
}

func cloneInstance(inst *causegen.Instance) *causegen.Instance {
	return &causegen.Instance{Seed: inst.Seed, DB: inst.DB.Clone(), Query: inst.Query, WhyNo: inst.WhyNo}
}

// expectSameRanking rebuilds the engine on the mutated instance and
// compares signatures. A mutation must never invalidate the instance:
// the invariants above all preserve the Why-No preconditions, so a
// construction error is itself a mismatch.
func expectSameRanking(what string, base, mut *causegen.Instance, baseRank []core.Explanation) error {
	eng, err := newEngine(mut)
	if err != nil {
		return fmt.Errorf("metamorphic %s: engine construction failed on mutated instance: %v", what, err)
	}
	mutRank, err := eng.RankAll(core.ModeAuto)
	if err != nil {
		return fmt.Errorf("metamorphic %s: RankAll: %v", what, err)
	}
	if err := equalSignatures("metamorphic "+what, baseRank, mutRank); err != nil {
		return fmt.Errorf("%v (base %v)", err, base)
	}
	return nil
}
