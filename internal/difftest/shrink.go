// Greedy failing-instance minimization: repeatedly drop tuples (then
// query atoms) while the failure persists, so mismatch reports and
// testdata/ regressions carry the smallest instance that still
// exhibits the disagreement.
package difftest

import (
	"errors"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/rel"
)

// maxShrinkEvals bounds the total number of candidate re-checks, so
// shrinking a pathological instance cannot stall a CI failure report.
const maxShrinkEvals = 4000

// Fails is the canonical shrink predicate: the instance still trips
// CheckInstance (with the given options) on a genuine mismatch.
// Instances that merely became invalid (e.g. a Why-No instance losing
// its planted witness) do not count as failing.
func Fails(opts CheckOptions) func(*causegen.Instance) bool {
	return func(in *causegen.Instance) bool {
		_, err := CheckInstance(in, opts)
		return err != nil && !errors.Is(err, ErrInvalidInstance)
	}
}

// Shrink greedily minimizes inst under the failing predicate: it
// removes one tuple at a time to a fixpoint, then tries dropping query
// atoms, re-running the tuple pass after any structural change. The
// input instance is not modified; the returned instance still fails.
func Shrink(inst *causegen.Instance, failing func(*causegen.Instance) bool) *causegen.Instance {
	evals := 0
	budget := func() bool { evals++; return evals <= maxShrinkEvals }

	cur := inst
	for {
		changed := false
		// Tuple pass: drop any single tuple whose removal preserves the
		// failure.
		for i := 0; i < cur.DB.NumTuples(); i++ {
			if !budget() {
				return cur
			}
			cand := withoutTuple(cur, rel.TupleID(i))
			if failing(cand) {
				cur = cand
				changed = true
				i-- // indices shifted; retry this position
			}
		}
		// Atom pass: drop any single query atom (only for queries with
		// more than one) whose removal preserves the failure.
		if len(cur.Query.Atoms) > 1 {
			for k := 0; k < len(cur.Query.Atoms) && len(cur.Query.Atoms) > 1; k++ {
				if !budget() {
					return cur
				}
				cand := withoutAtom(cur, k)
				if failing(cand) {
					cur = cand
					changed = true
					k--
				}
			}
		}
		if !changed {
			return cur
		}
	}
}

// withoutTuple rebuilds the instance minus one tuple (IDs recompact).
func withoutTuple(inst *causegen.Instance, drop rel.TupleID) *causegen.Instance {
	db := rel.NewDatabase()
	for _, tp := range inst.DB.Tuples() {
		if tp.ID == drop {
			continue
		}
		db.MustAdd(tp.Rel, tp.Endo, tp.Args...)
	}
	return &causegen.Instance{Seed: inst.Seed, DB: db, Query: inst.Query, WhyNo: inst.WhyNo}
}

// withoutAtom rebuilds the instance with query atom k removed.
func withoutAtom(inst *causegen.Instance, k int) *causegen.Instance {
	atoms := make([]rel.Atom, 0, len(inst.Query.Atoms)-1)
	atoms = append(atoms, inst.Query.Atoms[:k]...)
	atoms = append(atoms, inst.Query.Atoms[k+1:]...)
	return &causegen.Instance{Seed: inst.Seed, DB: inst.DB, Query: rel.NewBoolean(atoms...), WhyNo: inst.WhyNo}
}
