// Per-instance differential checking: one generated instance run
// through every engine layer and compared against every applicable
// oracle. All checks are deterministic, so a failing seed reproduces
// the identical mismatch.

package difftest

import (
	"fmt"
	"math"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/core"
	"github.com/querycause/querycause/internal/exact"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/whyno"
)

// CheckOptions tunes the per-instance oracles. Zero values get
// defaults; the caps bound the exponential oracles so sweeps stay
// fast — instances over a cap simply skip that oracle (the Report's
// coverage counters make skipped oracles visible).
type CheckOptions struct {
	// BruteVarCap: run the lineage-level brute-force oracle on Why-So
	// causes when the minimal lineage has at most this many variables.
	// Default 12.
	BruteVarCap int
	// NonCauseBruteCap: confirm non-causes by brute force (a full
	// subset enumeration) when the lineage has at most this many
	// variables. Default 9.
	NonCauseBruteCap int
	// NonCauseSample bounds how many non-causes per instance get the
	// brute-force confirmation. Default 3.
	NonCauseSample int
	// WhyNoBruteEndoCap: run the Why-No database-level brute-force
	// oracle when the instance has at most this many candidate tuples.
	// Default 10.
	WhyNoBruteEndoCap int
	// DatalogAtomCap / DatalogTupleCap gate the Theorem 3.4 cause
	// program cross-check (the program is exponential in the atom
	// count). Defaults 3 and 40.
	DatalogAtomCap  int
	DatalogTupleCap int
	// AblationVarCap: re-run the exact solver with every exact.Options
	// optimization toggled off (individually and all together) and
	// require identical sizes, on Why-So instances whose lineage has at
	// most this many variables. Default 14; negative disables.
	AblationVarCap int
	// AblationSample bounds how many ranked causes per instance get the
	// ablation re-checks. Default 4.
	AblationSample int
	// Metamorphic applies the mutation invariants.
	Metamorphic bool
	// EvalDiff runs the naive-vs-planned evaluator equivalence check:
	// identical valuation sets and structurally identical minimal
	// endogenous lineages from both backends. The sweep enables it on
	// every instance (Options.EvalEvery).
	EvalDiff bool
	// Server, when non-nil, replays the instance through the HTTP
	// server and requires byte-identical rankings.
	Server *ServerDiff
	// Session, when non-nil, replays the instance through the public
	// Session API on both transports (Open and Dial) and requires
	// transport indistinguishability: equal cause sets, byte-identical
	// blocking/streamed rankings, and errors.Is-equal failures.
	Session *SessionDiff
	// Cluster, when non-nil, replays the instance through a 3-replica
	// consistent-hash cluster and requires single-node
	// indistinguishability: byte-identical rankings via topology-aware
	// Dial and via a wrong-node 307 hop, errors.Is-equal failures, and
	// cluster-wide session teardown.
	Cluster *ClusterDiff
	// Mutate, when non-nil, replays a seeded mutation sequence through
	// the server twice — incrementally with interleaved explains, and
	// cold at the final version — and requires byte-identical answers
	// from both, matching the in-process engine on the final database.
	Mutate *MutateDiff
	// Watch, when non-nil, opens a live watch subscription, replays the
	// instance's seeded mutation sequence, and requires the DiffEvent
	// replay to byte-equal a cold engine's ranking at every version.
	Watch *WatchDiff
}

func (o CheckOptions) withDefaults() CheckOptions {
	if o.BruteVarCap <= 0 {
		o.BruteVarCap = 12
	}
	if o.NonCauseBruteCap <= 0 {
		o.NonCauseBruteCap = 9
	}
	if o.NonCauseSample <= 0 {
		o.NonCauseSample = 3
	}
	if o.WhyNoBruteEndoCap <= 0 {
		o.WhyNoBruteEndoCap = 10
	}
	if o.DatalogAtomCap <= 0 {
		o.DatalogAtomCap = 3
	}
	if o.DatalogTupleCap <= 0 {
		o.DatalogTupleCap = 40
	}
	if o.AblationVarCap == 0 {
		o.AblationVarCap = 14
	}
	if o.AblationSample <= 0 {
		o.AblationSample = 4
	}
	return o
}

// ablationVariants are the exact.Options configurations the ablation
// invariant sweeps: every optimization toggled off individually, and
// all of them off at once (the bare branch and bound). None of them
// may change a single answer — they only trade time.
var ablationVariants = []struct {
	name string
	opts exact.Options
}{
	{"no-greedy-seed", exact.Options{DisableGreedySeed: true}},
	{"no-preprocess", exact.Options{DisablePreprocess: true}},
	{"no-memo", exact.Options{DisableMemo: true}},
	{"no-packing-bound", exact.Options{DisablePackingBound: true}},
	{"none", exact.Options{DisableGreedySeed: true, DisablePreprocess: true, DisableMemo: true, DisablePackingBound: true}},
}

// CheckStats reports which oracles a CheckInstance call exercised.
type CheckStats struct {
	FlowRanked         bool
	ExactRanked        bool
	BruteChecked       int
	AblationChecked    int
	DatalogChecked     int
	MetamorphicChecked int
	ServerChecked      int
	SessionChecked     int
	ClusterChecked     int
	MutateChecked      int
	WatchChecked       int
	EvalChecked        int
}

// CheckInstance runs the full differential battery on one instance.
// A nil error means every layer agreed; a non-nil error describes the
// first mismatch found.
func CheckInstance(inst *causegen.Instance, opts CheckOptions) (CheckStats, error) {
	opts = opts.withDefaults()
	var stats CheckStats

	// The evaluator differential runs first: if the planned data plane
	// disagrees with the naive reference, every downstream layer is
	// suspect and the direct comparison is the most useful report.
	if opts.EvalDiff {
		if err := checkEvalEquivalence(inst); err != nil {
			return stats, err
		}
		stats.EvalChecked++
	}

	eng, err := newEngine(inst)
	if err != nil {
		return stats, fmt.Errorf("%w: %v", ErrInvalidInstance, err)
	}
	causes := eng.Causes()
	nl := eng.NLineage()
	causeSet := make(map[rel.TupleID]bool, len(causes))
	for _, id := range causes {
		causeSet[id] = true
	}

	// Rankings under both modes must agree on (tuple, ρ, min|Γ|):
	// wherever ModeAuto dispatches to the flow algorithm, this is the
	// dichotomy's flow-vs-exact differential.
	rankAuto, err := eng.RankAll(core.ModeAuto)
	if err != nil {
		return stats, fmt.Errorf("RankAll(auto): %v", err)
	}
	rankExact, err := eng.RankAll(core.ModeExact)
	if err != nil {
		return stats, fmt.Errorf("RankAll(exact): %v", err)
	}
	if err := equalSignatures("auto-vs-exact ranking", rankAuto, rankExact); err != nil {
		return stats, err
	}
	for _, ex := range rankAuto {
		switch ex.Method {
		case core.MethodFlow:
			stats.FlowRanked = true
		case core.MethodExact:
			stats.ExactRanked = true
		}
	}

	// Well-formedness + definitional witness validation of every
	// explanation.
	if err := checkRankingShape(inst, causes, rankAuto); err != nil {
		return stats, err
	}
	for _, ex := range rankAuto {
		if err := validateWitness(inst, ex); err != nil {
			return stats, err
		}
	}

	// Dichotomy consistency: sound-classified PTIME and self-join-free
	// means every non-counterfactual Why-So cause takes the flow path
	// (no silent fallback to exact search).
	if !inst.WhyNo && !inst.Query.HasSelfJoin() {
		if cert, cerr := eng.Classification(); cerr == nil && cert.Class.PTime() {
			for _, ex := range rankAuto {
				if ex.ContingencySize > 0 && ex.Method != core.MethodFlow {
					return stats, fmt.Errorf("dichotomy: query %v classified %v but cause %d used %v, not max-flow",
						inst.Query, cert.Class, ex.Tuple, ex.Method)
				}
			}
		}
	}

	// Brute-force oracles, the greedy upper bound, and the exact-solver
	// ablation invariant.
	if err := checkOracles(inst, nl, causeSet, rankAuto, opts, &stats); err != nil {
		return stats, err
	}

	// Theorem 3.4: the Datalog¬ cause program derives exactly the
	// engine's cause set.
	if len(inst.Query.Atoms) <= opts.DatalogAtomCap && inst.DB.NumTuples() <= opts.DatalogTupleCap {
		dlCauses, _, derr := causegen.Causes(inst.DB, inst.Query)
		if derr != nil {
			return stats, fmt.Errorf("datalog cause program: %v", derr)
		}
		if !equalIDs(causes, dlCauses) {
			return stats, fmt.Errorf("cause sets disagree: lineage says %v, Theorem 3.4 program says %v", causes, dlCauses)
		}
		stats.DatalogChecked++
	}

	if opts.Metamorphic {
		n, err := checkMetamorphic(inst, rankAuto)
		stats.MetamorphicChecked += n
		if err != nil {
			return stats, err
		}
	}

	if opts.Server != nil {
		if err := opts.Server.Check(inst, rankAuto); err != nil {
			return stats, err
		}
		stats.ServerChecked++
	}

	if opts.Session != nil {
		if err := opts.Session.Check(inst, rankAuto); err != nil {
			return stats, err
		}
		stats.SessionChecked++
	}

	if opts.Cluster != nil {
		if err := opts.Cluster.Check(inst, rankAuto); err != nil {
			return stats, err
		}
		stats.ClusterChecked++
	}

	if opts.Mutate != nil {
		if err := opts.Mutate.Check(inst); err != nil {
			return stats, err
		}
		stats.MutateChecked++
	}

	if opts.Watch != nil {
		if err := opts.Watch.Check(inst); err != nil {
			return stats, err
		}
		stats.WatchChecked++
	}
	return stats, nil
}

func newEngine(inst *causegen.Instance) (*core.Engine, error) {
	if inst.WhyNo {
		return core.NewWhyNo(inst.DB, inst.Query)
	}
	return core.NewWhySo(inst.DB, inst.Query)
}

// checkRankingShape validates the ranking's structural invariants:
// exactly the cause set is ranked, ρ = 1/(1+min|Γ|) ∈ (0,1], the
// contingency slice witnesses its size, and the order is the paper's
// Fig. 2b ranking (descending ρ, ties by ascending tuple id).
func checkRankingShape(inst *causegen.Instance, causes []rel.TupleID, rank []core.Explanation) error {
	if len(rank) != len(causes) {
		return fmt.Errorf("ranking has %d entries for %d causes", len(rank), len(causes))
	}
	ranked := make(map[rel.TupleID]bool, len(rank))
	for i, ex := range rank {
		if ranked[ex.Tuple] {
			return fmt.Errorf("tuple %d ranked twice", ex.Tuple)
		}
		ranked[ex.Tuple] = true
		if int(ex.Tuple) < 0 || int(ex.Tuple) >= inst.DB.NumTuples() || !inst.DB.Tuple(ex.Tuple).Endo {
			return fmt.Errorf("ranked tuple %d is not an endogenous tuple", ex.Tuple)
		}
		if ex.ContingencySize < 0 || ex.Rho <= 0 {
			return fmt.Errorf("cause %d reported as non-cause (ρ=%v, size=%d)", ex.Tuple, ex.Rho, ex.ContingencySize)
		}
		if want := 1 / (1 + float64(ex.ContingencySize)); math.Abs(ex.Rho-want) > 1e-12 {
			return fmt.Errorf("cause %d: ρ=%v but min|Γ|=%d implies %v", ex.Tuple, ex.Rho, ex.ContingencySize, want)
		}
		if len(ex.Contingency) != ex.ContingencySize {
			return fmt.Errorf("cause %d: contingency %v does not witness size %d", ex.Tuple, ex.Contingency, ex.ContingencySize)
		}
		if (ex.Rho == 1) != (ex.ContingencySize == 0) {
			return fmt.Errorf("cause %d: counterfactual iff ρ=1 violated (ρ=%v, size=%d)", ex.Tuple, ex.Rho, ex.ContingencySize)
		}
		seen := make(map[rel.TupleID]bool, len(ex.Contingency))
		for _, id := range ex.Contingency {
			if id == ex.Tuple {
				return fmt.Errorf("cause %d: contingency contains the cause itself", ex.Tuple)
			}
			if seen[id] {
				return fmt.Errorf("cause %d: duplicate %d in contingency", ex.Tuple, id)
			}
			seen[id] = true
			if int(id) < 0 || int(id) >= inst.DB.NumTuples() || !inst.DB.Tuple(id).Endo {
				return fmt.Errorf("cause %d: contingency member %d is not endogenous", ex.Tuple, id)
			}
		}
		if i > 0 {
			prev := rank[i-1]
			if ex.Rho > prev.Rho || (ex.Rho == prev.Rho && ex.Tuple < prev.Tuple) {
				return fmt.Errorf("ranking out of order at %d: (%v,%d) after (%v,%d)", i, ex.Rho, ex.Tuple, prev.Rho, prev.Tuple)
			}
		}
	}
	for _, id := range causes {
		if !ranked[id] {
			return fmt.Errorf("cause %d missing from ranking", id)
		}
	}
	return nil
}

// validateWitness checks the returned contingency set against the
// database by definition, independently of the lineage machinery —
// and independently of the planned evaluator under test: the holds
// oracle is the naive reference backend (rel.HoldsWithoutNaive), so a
// data-plane bug cannot validate its own wrong answers.
//
// Why-So (Definition 2.3): q must still hold after removing Γ and
// fail after removing Γ ∪ {t}.
//
// Why-No (Theorem 4.17, insertion semantics): q must fail on
// Dˣ ∪ Γ and hold on Dˣ ∪ Γ ∪ {t}.
func validateWitness(inst *causegen.Instance, ex core.Explanation) error {
	if inst.WhyNo {
		absent := make(map[rel.TupleID]bool)
		inΓ := make(map[rel.TupleID]bool, len(ex.Contingency))
		for _, id := range ex.Contingency {
			inΓ[id] = true
		}
		for _, id := range inst.DB.EndoIDs() {
			if !inΓ[id] {
				absent[id] = true
			}
		}
		// Dˣ ∪ Γ: every candidate outside Γ (t included) removed.
		held, err := rel.HoldsWithoutNaive(inst.DB, inst.Query, absent)
		if err != nil {
			return err
		}
		if held {
			return fmt.Errorf("whyno cause %d: q already holds on Dˣ ∪ Γ for Γ=%v", ex.Tuple, ex.Contingency)
		}
		delete(absent, ex.Tuple)
		held, err = rel.HoldsWithoutNaive(inst.DB, inst.Query, absent)
		if err != nil {
			return err
		}
		if !held {
			return fmt.Errorf("whyno cause %d: q does not hold on Dˣ ∪ Γ ∪ {t} for Γ=%v", ex.Tuple, ex.Contingency)
		}
		return nil
	}
	removed := make(map[rel.TupleID]bool, len(ex.Contingency)+1)
	for _, id := range ex.Contingency {
		removed[id] = true
	}
	held, err := rel.HoldsWithoutNaive(inst.DB, inst.Query, removed)
	if err != nil {
		return err
	}
	if !held {
		return fmt.Errorf("whyso cause %d: q fails after removing Γ=%v alone", ex.Tuple, ex.Contingency)
	}
	removed[ex.Tuple] = true
	held, err = rel.HoldsWithoutNaive(inst.DB, inst.Query, removed)
	if err != nil {
		return err
	}
	if held {
		return fmt.Errorf("whyso cause %d: q still holds after removing Γ ∪ {t}, Γ=%v", ex.Tuple, ex.Contingency)
	}
	return nil
}

// checkOracles confirms every reported minimum against the
// definition-level brute-force searches and the greedy upper bound,
// spot-checks that non-causes admit no contingency at all, and
// asserts the exact-solver ablation invariant: disabling any
// optimization (or all of them) must not change a single size.
// Comparison counts are accumulated into stats.
func checkOracles(inst *causegen.Instance, nl lineage.DNF, causeSet map[rel.TupleID]bool, rank []core.Explanation, opts CheckOptions, stats *CheckStats) error {
	if inst.WhyNo {
		if len(inst.DB.EndoIDs()) > opts.WhyNoBruteEndoCap {
			return nil
		}
		for _, ex := range rank {
			size, ok, err := whyno.BruteForceMinContingency(inst.DB, inst.Query, ex.Tuple)
			if err != nil {
				return err
			}
			stats.BruteChecked++
			if !ok || size != ex.ContingencySize {
				return fmt.Errorf("whyno cause %d: engine min|Γ|=%d, brute force says (%d,%v)",
					ex.Tuple, ex.ContingencySize, size, ok)
			}
		}
		sampled := 0
		for _, id := range inst.DB.EndoIDs() {
			if causeSet[id] || sampled >= opts.NonCauseSample {
				continue
			}
			sampled++
			size, ok, err := whyno.BruteForceMinContingency(inst.DB, inst.Query, id)
			if err != nil {
				return err
			}
			stats.BruteChecked++
			if ok {
				return fmt.Errorf("whyno non-cause %d: brute force found contingency of size %d", id, size)
			}
		}
		return nil
	}

	// One interned index backs every lineage-level oracle run on this
	// instance — brute force, greedy, and the ablation re-checks.
	ix := lineage.NewIndex(nl)
	vars := nl.Vars()
	for _, ex := range rank {
		if len(vars) <= opts.BruteVarCap {
			size, ok := exact.BruteForceMinContingencyIndex(ix, ex.Tuple)
			stats.BruteChecked++
			if !ok || size != ex.ContingencySize {
				return fmt.Errorf("whyso cause %d: engine min|Γ|=%d, brute force says (%d,%v)",
					ex.Tuple, ex.ContingencySize, size, ok)
			}
		}
		g, gOK := exact.GreedyMinContingencyIndex(ix, ex.Tuple)
		if !gOK {
			return fmt.Errorf("whyso cause %d: greedy misreports a cause as a non-cause", ex.Tuple)
		}
		if g < ex.ContingencySize {
			return fmt.Errorf("whyso cause %d: greedy %d undercuts exact minimum %d", ex.Tuple, g, ex.ContingencySize)
		}
	}
	if opts.AblationVarCap > 0 && len(vars) <= opts.AblationVarCap {
		for i, ex := range rank {
			if i >= opts.AblationSample {
				break
			}
			for _, ab := range ablationVariants {
				size, ok := exact.MinContingencyIndex(ix, ex.Tuple, ab.opts)
				stats.AblationChecked++
				if !ok || size != ex.ContingencySize {
					return fmt.Errorf("ablation %s: cause %d got (%d,%v), want (%d,true)",
						ab.name, ex.Tuple, size, ok, ex.ContingencySize)
				}
			}
		}
	}
	if len(vars) <= opts.NonCauseBruteCap {
		sampled := 0
		for _, id := range inst.DB.EndoIDs() {
			if causeSet[id] || sampled >= opts.NonCauseSample {
				continue
			}
			sampled++
			size, ok := exact.BruteForceMinContingencyIndex(ix, id)
			stats.BruteChecked++
			if ok {
				return fmt.Errorf("whyso non-cause %d: brute force found contingency of size %d", id, size)
			}
			if g, gOK := exact.GreedyMinContingencyIndex(ix, id); gOK {
				return fmt.Errorf("whyso non-cause %d: greedy claims a contingency of size %d", id, g)
			}
		}
	}
	return nil
}

func equalIDs(a, b []rel.TupleID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equalSignatures compares two rankings on (tuple, ρ, min|Γ|) — the
// values the dichotomy theorem pins down, independent of which
// algorithm computed them or which of several minimum contingency
// sets it returned.
func equalSignatures(what string, a, b []core.Explanation) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s: %d vs %d entries", what, len(a), len(b))
	}
	for i := range a {
		if a[i].Tuple != b[i].Tuple || a[i].Rho != b[i].Rho || a[i].ContingencySize != b[i].ContingencySize {
			return fmt.Errorf("%s: entry %d differs: (%d, ρ=%v, |Γ|=%d) vs (%d, ρ=%v, |Γ|=%d)",
				what, i, a[i].Tuple, a[i].Rho, a[i].ContingencySize, b[i].Tuple, b[i].Rho, b[i].ContingencySize)
		}
	}
	return nil
}
