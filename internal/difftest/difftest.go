// Package difftest is the differential and metamorphic testing harness
// that backs the repository's correctness story for the paper's
// dichotomy (Corollary 4.14): on the PTIME side the max-flow engine
// must agree *exactly* with brute-force search on every instance, and
// on the NP-hard side the exact solvers must agree with the
// definition-level oracles.
//
// The harness generates seeded random workloads (internal/causegen's
// RandomInstance), runs every engine layer against every applicable
// oracle, and checks paper-derived metamorphic invariants:
//
//   - The planned streaming evaluator (internal/ra) agrees with the
//     naive reference evaluator (rel.EvalNaive) on every instance:
//     identical valuation sets, and the lineage captured during
//     evaluation equals the two-pass naive construction structurally
//     (canonical conjunct order makes the DNFs byte-comparable).
//   - ModeAuto vs ModeExact rankings agree on (tuple, ρ, min|Γ|) for
//     every instance (flow == exact wherever flow dispatches).
//   - Every returned contingency set is witness-validated against the
//     database by definition: removing Γ keeps the query true and
//     removing Γ ∪ {t} falsifies it (Why-So), resp. the insertion
//     semantics of Theorem 4.17 (Why-No).
//   - ρ = 1 ⇔ min|Γ| = 0 ⇔ t is counterfactual.
//   - Brute-force oracles (exact.BruteForceMinContingency on the
//     lineage, whyno.BruteForceMinContingency on the database) confirm
//     every reported minimum on small instances, and confirm that
//     non-causes have no contingency at all.
//   - exact.GreedyMinContingency only over-approximates: it agrees on
//     causehood and never undercuts the minimum.
//   - The Theorem 3.4 Datalog¬ cause program derives exactly the
//     engine's cause set on small instances.
//   - Dichotomy consistency: a query the sound classifier calls
//     (weakly) linear with no self-join takes the flow path for every
//     non-counterfactual cause.
//   - Metamorphic invariances: duplicating an exogenous tuple,
//     marking a non-cause endogenous tuple exogenous, and growing the
//     database by a relation the query never mentions all leave the
//     ranking's (tuple, ρ, min|Γ|) signature unchanged.
//   - Server differential: the same instance replayed through
//     internal/server over httptest yields byte-identical rankings.
//   - Session-transport equivalence: the public Session API's
//     in-process (Open) and HTTP (Dial) transports are
//     indistinguishable on the instance — equal cause sets,
//     byte-identical blocking and streamed rankings (a drained
//     RankStream sorted equals Rank), identical deterministic stream
//     emission sequences, and errors.Is-equal failures with the same
//     taxonomy code when the instance is flipped into an invalid
//     request.
//   - Cluster equivalence: a 3-replica consistent-hash cluster is
//     indistinguishable from a single node — byte-identical rankings
//     through topology-aware Dial and through a wrong-node 307 hop,
//     errors.Is-equal failures, and cluster-wide session teardown.
//   - Mutation equivalence: after a seeded random insert/delete
//     sequence (causegen.RandomMutations), a session maintained
//     incrementally — mutating and explaining step by step, with the
//     server invalidating only the engines and certificates each
//     mutation touches — answers byte-identically to a session built
//     cold at the final version, and both match the in-process engine
//     over the final database.
//   - Watch-replay equivalence: a live watch subscription opened
//     before the same mutation sequence emits exactly one DiffEvent
//     frame per mutation, and folding the frames with
//     server.ApplyWatchEvent reconstructs, at every version, the
//     byte-identical ranking of a cold engine over the mutated
//     database — with error frames appearing exactly when the engine
//     rejects the instance at that version.
//
// Every instance derives from a single int64 seed, so any CI failure
// reproduces with one command (printed on failure):
//
//	go test ./internal/difftest -run 'TestDifferentialSweep$' -args -seed=<N> -n=1
package difftest

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/querycause/querycause/internal/causegen"
	"github.com/querycause/querycause/internal/core"
)

// Options configures a differential sweep.
type Options struct {
	// Seed is the base seed; instance i uses seed Seed+i, so replaying
	// a failure needs only the failing instance's derived seed with
	// N=1.
	Seed int64
	// N is the number of instances to generate and check.
	N int
	// Workers bounds the sweep's parallelism (core.ResolveWorkers
	// semantics; <= 0 means GOMAXPROCS).
	Workers int
	// Gen bounds the workload generator (zero value = defaults).
	Gen causegen.GenConfig
	// Check tunes the per-instance oracles (zero value = defaults).
	Check CheckOptions
	// Server, when non-nil, replays instances through the HTTP server
	// and compares rankings byte-for-byte.
	Server *ServerDiff
	// ServerEvery replays every k-th instance through Server (default
	// 8; 1 = every instance). Ignored when Server is nil.
	ServerEvery int
	// Session, when non-nil, replays instances through the public
	// Session API on both transports (Open vs Dial) and requires them
	// to be indistinguishable.
	Session *SessionDiff
	// SessionEvery replays every k-th instance through Session
	// (default 8; 1 = every instance). Ignored when Session is nil.
	SessionEvery int
	// Cluster, when non-nil, replays instances through a 3-replica
	// consistent-hash cluster and requires single-node
	// indistinguishability.
	Cluster *ClusterDiff
	// ClusterEvery replays every k-th instance through Cluster
	// (default 8; 1 = every instance). Ignored when Cluster is nil.
	ClusterEvery int
	// Mutate, when non-nil, replays a seeded mutation sequence through
	// the server and requires incremental session state to answer
	// byte-identically to a cold rebuild at the final version.
	Mutate *MutateDiff
	// MutateEvery replays every k-th instance through Mutate (default
	// 8; 1 = every instance). Ignored when Mutate is nil.
	MutateEvery int
	// Watch, when non-nil, opens a live watch, replays the instance's
	// seeded mutation sequence, and requires the DiffEvent replay to
	// byte-equal a cold engine's ranking at every version.
	Watch *WatchDiff
	// WatchEvery replays every k-th instance through Watch (default 8;
	// 1 = every instance). Ignored when Watch is nil.
	WatchEvery int
	// MetamorphicEvery applies the metamorphic invariants to every
	// k-th instance (default 1 = every instance; <0 disables).
	MetamorphicEvery int
	// EvalEvery applies the naive-vs-planned evaluator equivalence
	// check to every k-th instance (default 1 = every instance; <0
	// disables).
	EvalEvery int
	// MaxMismatches stops the sweep early once this many mismatches
	// are collected (default 5).
	MaxMismatches int
	// Progress, when non-nil, receives the running instance count
	// roughly every ProgressEvery instances (default 1000). Callbacks
	// are serialized; the writer behind them needs no locking.
	Progress      func(done int)
	ProgressEvery int
}

// ShrinkCheck returns the per-instance CheckOptions matching what the
// sweep actually applied — metamorphic and server checks included —
// so shrinking and re-checking a mismatch uses the same predicate
// that found it.
func (o Options) ShrinkCheck() CheckOptions {
	o = o.withDefaults()
	chk := o.Check
	chk.Metamorphic = o.MetamorphicEvery > 0
	chk.EvalDiff = o.EvalEvery > 0
	chk.Server = o.Server
	chk.Session = o.Session
	chk.Cluster = o.Cluster
	chk.Mutate = o.Mutate
	chk.Watch = o.Watch
	return chk
}

func (o Options) withDefaults() Options {
	if o.ServerEvery <= 0 {
		o.ServerEvery = 8
	}
	if o.SessionEvery <= 0 {
		o.SessionEvery = 8
	}
	if o.ClusterEvery <= 0 {
		o.ClusterEvery = 8
	}
	if o.MutateEvery <= 0 {
		o.MutateEvery = 8
	}
	if o.WatchEvery <= 0 {
		o.WatchEvery = 8
	}
	if o.MetamorphicEvery == 0 {
		o.MetamorphicEvery = 1
	}
	if o.EvalEvery == 0 {
		o.EvalEvery = 1
	}
	if o.MaxMismatches <= 0 {
		o.MaxMismatches = 5
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = 1000
	}
	return o
}

// SweepGen is the canonical generator configuration: the one
// TestDifferentialSweep, FuzzDifferential, and cmd/fuzzcause's default
// flags all use, and the one the bare go-test replay command
// reproduces. Sweeps under any other configuration get a fuzzcause
// replay command spelling the full configuration out.
var SweepGen = causegen.GenConfig{MaxAtoms: 4, MaxArity: 3, TuplesPerRelation: 7}

// Mismatch is one instance on which two layers disagreed.
type Mismatch struct {
	// Seed replays the instance: RandomInstance(Seed, Gen), or the
	// ReplayCommand below.
	Seed int64
	// Gen is the generator configuration the instance was drawn under;
	// replaying with a different configuration yields a different
	// instance.
	Gen causegen.GenConfig
	// Check is the per-instance oracle configuration the sweep ran
	// with; non-default caps can widen what counts as a mismatch.
	Check    CheckOptions
	Index    int
	Err      error
	Instance *causegen.Instance
}

// ReplayCommand returns the one-command reproduction for this
// mismatch. Instance generation depends on (seed, config), so a sweep
// run under a non-canonical configuration replays through fuzzcause
// with every generator knob pinned.
func (m Mismatch) ReplayCommand() string {
	if m.Gen.Normalize() == SweepGen.Normalize() {
		return fmt.Sprintf("go test ./internal/difftest -run 'TestDifferentialSweep$' -args -seed=%d -n=1", m.Seed) + m.checkCaveat()
	}
	// Normalized probabilities are never 0 (zero means "default" on the
	// config surface; disabled ones stay negative), so the rendered
	// flags survive fuzzcause's own 0-means-default translation.
	g := m.Gen.Normalize()
	cmd := fmt.Sprintf("go run ./cmd/fuzzcause -seed %d -n 1 -max-atoms %d -max-arity %d -max-vars %d -domain %d -tuples %d -exo-prob %g -const-prob %g -whyno-prob %g -selfjoin-prob %g",
		m.Seed, g.MaxAtoms, g.MaxArity, g.MaxVars, g.DomainSize, g.TuplesPerRelation,
		g.ExoProb, g.ConstProb, g.WhyNoProb, g.SelfJoinProb)
	if g.HardStarProb > 0 {
		// Off by default; rendered only when it can affect generation.
		cmd += fmt.Sprintf(" -hardstar-prob %g", g.HardStarProb)
	}
	return cmd + m.checkCaveat()
}

// checkCaveat flags replay commands that cannot pin non-default
// oracle caps: the command regenerates the identical instance, but a
// mismatch only visible under widened caps (e.g. a raised BruteVarCap
// admitting a bigger brute-force oracle) needs the original
// CheckOptions re-applied through the library API.
func (m Mismatch) checkCaveat() string {
	if m.Check == (CheckOptions{}) || m.Check == (CheckOptions{}).withDefaults() {
		return ""
	}
	return "  # non-default CheckOptions were in effect; replay via difftest.CheckInstance with the sweep's Options.Check"
}

func (m Mismatch) String() string {
	return fmt.Sprintf("instance %d (seed %d): %v\nreplay: %s", m.Index, m.Seed, m.Err, m.ReplayCommand())
}

// Report summarizes a sweep. The coverage counters let callers assert
// the sweep actually exercised each oracle (a harness that silently
// skips its oracles reads as green).
type Report struct {
	Instances int
	WhySo     int
	WhyNo     int
	// FlowRanked counts instances where at least one cause took the
	// max-flow path (the dichotomy's PTIME side under test).
	FlowRanked int
	// ExactRanked counts instances where at least one cause took the
	// exact branch-and-bound path (the NP-hard side).
	ExactRanked int
	// BruteChecked counts brute-force oracle comparisons performed.
	BruteChecked int
	// AblationChecked counts exact-solver ablation re-checks performed
	// (every exact.Options toggle must leave every size unchanged).
	AblationChecked int
	// DatalogChecked counts instances cross-checked against the
	// Theorem 3.4 cause program.
	DatalogChecked int
	// MetamorphicChecked counts metamorphic mutations validated.
	MetamorphicChecked int
	// ServerChecked counts instances replayed through the server.
	ServerChecked int
	// SessionChecked counts instances replayed through the Session
	// API's transport-equivalence differential.
	SessionChecked int
	// ClusterChecked counts instances replayed through the 3-replica
	// cluster-equivalence differential.
	ClusterChecked int
	// MutateChecked counts instances replayed through the
	// incremental-vs-cold-rebuild mutation differential.
	MutateChecked int
	// WatchChecked counts instances replayed through the watch
	// DiffEvent-replay differential.
	WatchChecked int
	// EvalChecked counts instances run through the naive-vs-planned
	// evaluator equivalence differential.
	EvalChecked int
	Mismatches  []Mismatch
	Elapsed     time.Duration
}

// InstancesPerSec is the sweep throughput.
func (r *Report) InstancesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Instances) / r.Elapsed.Seconds()
}

func (r *Report) String() string {
	return fmt.Sprintf("difftest: %d instances (%d whyso, %d whyno) in %v (%.0f/sec); flow=%d exact=%d brute=%d ablation=%d datalog=%d metamorphic=%d server=%d session=%d cluster=%d mutate=%d watch=%d eval=%d; mismatches=%d",
		r.Instances, r.WhySo, r.WhyNo, r.Elapsed.Round(time.Millisecond), r.InstancesPerSec(),
		r.FlowRanked, r.ExactRanked, r.BruteChecked, r.AblationChecked, r.DatalogChecked, r.MetamorphicChecked, r.ServerChecked, r.SessionChecked, r.ClusterChecked, r.MutateChecked, r.WatchChecked, r.EvalChecked,
		len(r.Mismatches))
}

// Run executes a differential sweep: N seeded instances generated,
// checked against every oracle, fanned out across a worker pool.
// Mismatches are collected in the report (up to MaxMismatches, then
// the sweep stops early); Run returns a non-nil error only when ctx is
// canceled before completion.
func Run(ctx context.Context, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rep := &Report{}
	if opts.N <= 0 {
		return rep, ctx.Err()
	}
	start := time.Now()

	var (
		mu        sync.Mutex
		whySo     atomic.Int64
		whyNo     atomic.Int64
		flow      atomic.Int64
		exactN    atomic.Int64
		brute     atomic.Int64
		ablation  atomic.Int64
		datalog   atomic.Int64
		metamorph atomic.Int64
		serverN   atomic.Int64
		sessionN  atomic.Int64
		clusterN  atomic.Int64
		mutateN   atomic.Int64
		watchN    atomic.Int64
		evalN     atomic.Int64
		done      atomic.Int64
	)
	sweepCtx, stop := context.WithCancel(ctx)
	defer stop()

	workers := core.ResolveWorkers(opts.Workers)
	core.ForEachIndex(sweepCtx, opts.N, workers, func() func(int) {
		return func(i int) {
			seed := opts.Seed + int64(i)
			inst := causegen.RandomInstance(seed, opts.Gen)
			if inst.WhyNo {
				whyNo.Add(1)
			} else {
				whySo.Add(1)
			}
			chk := opts.Check
			chk.Metamorphic = opts.MetamorphicEvery > 0 && i%opts.MetamorphicEvery == 0
			chk.EvalDiff = opts.EvalEvery > 0 && i%opts.EvalEvery == 0
			if opts.Server != nil && i%opts.ServerEvery == 0 {
				chk.Server = opts.Server
			}
			if opts.Session != nil && i%opts.SessionEvery == 0 {
				chk.Session = opts.Session
			}
			if opts.Cluster != nil && i%opts.ClusterEvery == 0 {
				chk.Cluster = opts.Cluster
			}
			if opts.Mutate != nil && i%opts.MutateEvery == 0 {
				chk.Mutate = opts.Mutate
			}
			if opts.Watch != nil && i%opts.WatchEvery == 0 {
				chk.Watch = opts.Watch
			}
			stats, err := CheckInstance(inst, chk)
			if stats.FlowRanked {
				flow.Add(1)
			}
			if stats.ExactRanked {
				exactN.Add(1)
			}
			brute.Add(int64(stats.BruteChecked))
			ablation.Add(int64(stats.AblationChecked))
			datalog.Add(int64(stats.DatalogChecked))
			metamorph.Add(int64(stats.MetamorphicChecked))
			serverN.Add(int64(stats.ServerChecked))
			sessionN.Add(int64(stats.SessionChecked))
			clusterN.Add(int64(stats.ClusterChecked))
			mutateN.Add(int64(stats.MutateChecked))
			watchN.Add(int64(stats.WatchChecked))
			evalN.Add(int64(stats.EvalChecked))
			if err != nil {
				mu.Lock()
				rep.Mismatches = append(rep.Mismatches, Mismatch{Seed: seed, Gen: opts.Gen, Check: opts.Check, Index: i, Err: err, Instance: inst})
				if len(rep.Mismatches) >= opts.MaxMismatches {
					stop()
				}
				mu.Unlock()
			}
			if n := done.Add(1); opts.Progress != nil && n%int64(opts.ProgressEvery) == 0 {
				// Serialize callbacks: workers may cross interval
				// boundaries simultaneously, and callers pass unguarded
				// writers.
				mu.Lock()
				opts.Progress(int(n))
				mu.Unlock()
			}
		}
	})
	rep.Instances = int(done.Load())
	rep.WhySo = int(whySo.Load())
	rep.WhyNo = int(whyNo.Load())
	rep.FlowRanked = int(flow.Load())
	rep.ExactRanked = int(exactN.Load())
	rep.BruteChecked = int(brute.Load())
	rep.AblationChecked = int(ablation.Load())
	rep.DatalogChecked = int(datalog.Load())
	rep.MetamorphicChecked = int(metamorph.Load())
	rep.ServerChecked = int(serverN.Load())
	rep.SessionChecked = int(sessionN.Load())
	rep.ClusterChecked = int(clusterN.Load())
	rep.MutateChecked = int(mutateN.Load())
	rep.WatchChecked = int(watchN.Load())
	rep.EvalChecked = int(evalN.Load())
	rep.Elapsed = time.Since(start)
	// Early stop on mismatch budget is not a caller error; only the
	// caller's own cancellation is.
	if err := ctx.Err(); err != nil && len(rep.Mismatches) < opts.MaxMismatches {
		return rep, err
	}
	return rep, nil
}
