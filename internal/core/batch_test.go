package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/rewrite"
)

func chainDB(t *testing.T) (*rel.Database, *rel.Query) {
	t.Helper()
	db := rel.NewDatabase()
	db.MustAdd("R", true, "x1", "y2")
	db.MustAdd("R", true, "x2", "y1")
	db.MustAdd("S", true, "y2", "z1")
	db.MustAdd("S", true, "y1", "z1")
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
	)
	return db, q
}

// TestPrimeSkipsReclassification checks that a primed engine hands back
// the seeded certificate object rather than re-running the classifier,
// and that primed and lazy engines agree on the ranking.
func TestPrimeSkipsReclassification(t *testing.T) {
	db, q := chainDB(t)

	lazy, err := NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	sound, err := lazy.Classification()
	if err != nil {
		t.Fatal(err)
	}
	paper, err := lazy.PaperClassification()
	if err != nil {
		t.Fatal(err)
	}

	primed, err := NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	primed.Prime(sound, paper)
	got, err := primed.Classification()
	if err != nil {
		t.Fatal(err)
	}
	if got != sound {
		t.Errorf("Classification() = %p; want the primed certificate %p", got, sound)
	}
	gotPaper, err := primed.PaperClassification()
	if err != nil {
		t.Fatal(err)
	}
	if gotPaper != paper {
		t.Errorf("PaperClassification() = %p; want the primed certificate %p", gotPaper, paper)
	}

	want, err := lazy.RankAll(ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	gotRank, err := primed.RankAll(ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(want) != fmt.Sprint(gotRank) {
		t.Errorf("primed ranking diverged:\n got %v\nwant %v", gotRank, want)
	}
}

// TestPrimeDoesNotOverwrite checks Prime is first-writer-wins: once a
// certificate is computed or seeded, later Prime calls are no-ops.
func TestPrimeDoesNotOverwrite(t *testing.T) {
	db, q := chainDB(t)
	e, err := NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.Classification()
	if err != nil {
		t.Fatal(err)
	}
	other := &rewrite.Certificate{}
	e.Prime(other, nil)
	got, err := e.Classification()
	if err != nil {
		t.Fatal(err)
	}
	if got != first {
		t.Error("Prime overwrote an already-computed certificate")
	}
}

// TestExplainBatchFactory checks that a custom EngineFactory is used
// for every request (e.g. a server cache handing out shared engines)
// and that its results match the default factory's.
func TestExplainBatchFactory(t *testing.T) {
	db, q := chainDB(t)
	reqs := []BatchRequest{{Query: q}, {Query: q}, {Query: q, WhyNo: false}}

	def, err := ExplainBatch(context.Background(), db, reqs, BatchRunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	shared, err := NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	got, err := ExplainBatch(context.Background(), db, reqs, BatchRunOptions{
		Workers: 2,
		NewEngine: func(d *rel.Database, i int, r BatchRequest) (*Engine, error) {
			calls.Add(1)
			return shared, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(calls.Load()) != len(reqs) {
		t.Errorf("factory called %d times; want %d", calls.Load(), len(reqs))
	}
	if fmt.Sprint(got) != fmt.Sprint(def) {
		t.Errorf("factory-backed batch diverged:\n got %v\nwant %v", got, def)
	}
}

// TestExplainBatchPerRequestError checks an invalid request fails alone.
func TestExplainBatchPerRequestError(t *testing.T) {
	db, q := chainDB(t)
	bad := rel.NewBoolean(rel.NewAtom("R", rel.V("x"))) // arity mismatch
	res, err := ExplainBatch(context.Background(), db, []BatchRequest{{Query: q}, {Query: bad}}, BatchRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Errorf("good request failed: %v", res[0].Err)
	}
	if res[1].Err == nil {
		t.Error("bad request did not fail")
	}
}
