package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/querycause/querycause/internal/exact"
	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/respflow"
	"github.com/querycause/querycause/internal/shape"
	"github.com/querycause/querycause/internal/whyno"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// TestFig2Ranking reproduces Figure 2b exactly: the responsibilities of
// all nine causes of the Musical answer on the Fig. 2a instance.
func TestFig2Ranking(t *testing.T) {
	db, keys := imdb.Micro()
	eng, err := NewWhySo(db, imdb.GenreQuery(), "Musical")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		imdb.KeySweeney:  1.0 / 3,
		imdb.KeyDavid:    1.0 / 3,
		imdb.KeyHumphrey: 1.0 / 3,
		imdb.KeyTim:      1.0 / 3,
		imdb.KeyLetsFall: 1.0 / 4,
		imdb.KeyMelody:   1.0 / 4,
		imdb.KeyCandide:  1.0 / 5,
		imdb.KeyFlight:   1.0 / 5,
		imdb.KeyManon:    1.0 / 5,
	}
	for _, mode := range []Mode{ModeAuto, ModeExact, ModePaper} {
		for key, rho := range want {
			ex, err := eng.Responsibility(keys[key], mode)
			if err != nil {
				t.Fatal(err)
			}
			if !approx(ex.Rho, rho) {
				t.Errorf("mode %d: ρ(%s) = %v, want %v", mode, key, ex.Rho, rho)
			}
		}
	}
	// The ranking must list all nine causes, top group first.
	ranked, err := eng.RankAll(ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 9 {
		t.Fatalf("ranked %d causes, want 9", len(ranked))
	}
	if !approx(ranked[0].Rho, 1.0/3) || !approx(ranked[8].Rho, 1.0/5) {
		t.Errorf("ranking boundaries wrong: %v … %v", ranked[0].Rho, ranked[8].Rho)
	}
	// Example 2.4 details: Sweeney Todd's minimal contingency has size 2
	// (the two other directors); Manon Lescaut's has size 4.
	if ex, _ := eng.Responsibility(keys[imdb.KeySweeney], ModeAuto); ex.ContingencySize != 2 {
		t.Errorf("Sweeney Todd contingency = %d, want 2", ex.ContingencySize)
	}
	if ex, _ := eng.Responsibility(keys[imdb.KeyManon], ModeAuto); ex.ContingencySize != 4 {
		t.Errorf("Manon Lescaut contingency = %d, want 4", ex.ContingencySize)
	}
	// The genre query is linear: ModeAuto must use the flow method for
	// non-counterfactual causes.
	if ex, _ := eng.Responsibility(keys[imdb.KeySweeney], ModeAuto); ex.Method != MethodFlow {
		t.Errorf("method = %v, want max-flow", ex.Method)
	}
}

// TestExample2_2Engine drives the full Example 2.2 through the engine.
func TestExample2_2Engine(t *testing.T) {
	db := rel.NewDatabase()
	for _, row := range [][2]rel.Value{{"a1", "a5"}, {"a2", "a1"}, {"a3", "a3"}, {"a4", "a3"}, {"a4", "a2"}} {
		db.MustAdd("R", true, row[0], row[1])
	}
	sIDs := make(map[rel.Value]rel.TupleID)
	for _, v := range []rel.Value{"a1", "a2", "a3", "a4", "a6"} {
		sIDs[v] = db.MustAdd("S", true, v)
	}
	q := &rel.Query{Name: "q", Head: []rel.Term{rel.V("x")},
		Atoms: []rel.Atom{rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y"))}}

	// Answer a2: S(a1) is counterfactual.
	eng2, err := NewWhySo(db, q, "a2")
	if err != nil {
		t.Fatal(err)
	}
	ex, err := eng2.Responsibility(sIDs["a1"], ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Rho != 1 || ex.Method != MethodCounterfactual {
		t.Errorf("ρ(S(a1)) = %v (%v), want 1 via counterfactual", ex.Rho, ex.Method)
	}

	// Answer a4: S(a3) is an actual cause with contingency {S(a2)}.
	eng4, err := NewWhySo(db, q, "a4")
	if err != nil {
		t.Fatal(err)
	}
	ex, err = eng4.Responsibility(sIDs["a3"], ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(ex.Rho, 0.5) || ex.ContingencySize != 1 {
		t.Errorf("ρ(S(a3)) = %v/%d, want 0.5/1", ex.Rho, ex.ContingencySize)
	}
	// S(a6) is not a cause.
	ex, err = eng4.Responsibility(sIDs["a6"], ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Rho != 0 || ex.Method != MethodNone {
		t.Errorf("ρ(S(a6)) = %v (%v), want 0", ex.Rho, ex.Method)
	}
}

// TestDominationCounterexample documents the reproduction finding on
// Example 4.12b (q :- Rⁿ(x,y),Sⁿ(y,z),Tⁿ(z,x),Vⁿ(x)): the paper
// weakens R,T by domination through V and runs Algorithm 1, but on this
// instance the unique minimum contingency for t = S(b0,c0) is the
// single tuple R(a,b1) — which the weakened network cannot cut — so
// ModePaper returns ρ = 1/3 while Definition 2.3 gives ρ = 1/2.
func TestDominationCounterexample(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("V", true, "a")
	db.MustAdd("R", true, "a", "b0")
	rab1 := db.MustAdd("R", true, "a", "b1")
	sb0 := db.MustAdd("S", true, "b0", "c0")
	db.MustAdd("S", true, "b1", "c1")
	db.MustAdd("S", true, "b1", "c2")
	db.MustAdd("T", true, "c0", "a")
	db.MustAdd("T", true, "c1", "a")
	db.MustAdd("T", true, "c2", "a")
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z"), rel.V("x")),
		rel.NewAtom("V", rel.V("x")),
	)
	eng, err := NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}

	exact_, err := eng.Responsibility(sb0, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(exact_.Rho, 0.5) || exact_.ContingencySize != 1 {
		t.Fatalf("exact ρ = %v/%d, want 1/2 via Γ={R(a,b1)}", exact_.Rho, exact_.ContingencySize)
	}

	// The exact weakening the paper derives in Example 4.12 — dominate R
	// and T through V, dissociate them to R(x,y,z), T(x,y,z), linear
	// order S,R,T,V — yields min-cut 2, i.e. ρ = 1/3 ≠ 1/2.
	s := shape.FromQuery(q, func(string) bool { return true })
	ops := []shape.Op{
		{Kind: shape.Domination, Atom: 0},           // R exogenous
		{Kind: shape.Domination, Atom: 2},           // T exogenous
		{Kind: shape.Dissociation, Atom: 0, Var: 2}, // R += z
		{Kind: shape.Dissociation, Atom: 2, Var: 1}, // T += y
	}
	ws := s
	for _, op := range ops {
		var err2 error
		ws, err2 = ws.ApplyWeakening(op)
		if err2 != nil {
			t.Fatalf("paper's weakening step %v invalid: %v", op, err2)
		}
	}
	order, ok := ws.LinearOrder()
	if !ok {
		t.Fatal("paper's weakened query must be linear")
	}
	net, err := respflow.Build(db, q, ws, order)
	if err != nil {
		t.Fatal(err)
	}
	size, ok := net.MinContingency(sb0)
	if !ok || size != 2 {
		t.Fatalf("Algorithm 1 on the paper's weakening: size=%d ok=%v, want 2 (ρ=1/3 ≠ exact 1/2)", size, ok)
	}

	// A different legal Definition 4.9 weakening (dominate only T,
	// dissociate T += y) yields min-cut 1 — two legal weakenings
	// disagree, contradicting Lemma 4.10's claim that responsibility is
	// invariant under weakening.
	ws2 := s
	for _, op := range []shape.Op{
		{Kind: shape.Domination, Atom: 2},
		{Kind: shape.Dissociation, Atom: 2, Var: 1},
	} {
		var err2 error
		ws2, err2 = ws2.ApplyWeakening(op)
		if err2 != nil {
			t.Fatalf("alternative weakening step %v invalid: %v", op, err2)
		}
	}
	order2, ok := ws2.LinearOrder()
	if !ok {
		t.Fatal("alternative weakened query must be linear")
	}
	net2, err := respflow.Build(db, q, ws2, order2)
	if err != nil {
		t.Fatal(err)
	}
	if size2, ok2 := net2.MinContingency(sb0); !ok2 || size2 != 1 {
		t.Fatalf("alternative weakening: size=%d ok=%v, want 1", size2, ok2)
	}

	// ModePaper picks whichever weakening its BFS reaches first; it must
	// agree with one of the two legal weakenings above.
	paper, err := eng.Responsibility(sb0, ModePaper)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(paper.Rho, 1.0/3) && !approx(paper.Rho, 0.5) {
		t.Fatalf("paper-mode ρ = %v, want 1/3 or 1/2", paper.Rho)
	}
	if paper.Method != MethodFlow {
		t.Fatalf("paper-mode method = %v, want max-flow", paper.Method)
	}

	// ModeAuto must not trust the unsound domination: it falls back to
	// exact search and returns the Definition 2.3 value.
	auto, err := eng.Responsibility(sb0, ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(auto.Rho, 0.5) || auto.Method != MethodExact {
		t.Fatalf("auto ρ = %v (%v), want 1/2 via exact", auto.Rho, auto.Method)
	}
	// Sanity: R(a,b1) really is a contingency.
	if _, ok := exactContingencyCheck(db, q, sb0, rab1); !ok {
		t.Fatal("R(a,b1) should be a valid contingency for S(b0,c0)")
	}
}

// exactContingencyCheck verifies {γ} is a contingency for t by
// definition: q true on D−{γ}, false on D−{γ,t}.
func exactContingencyCheck(db *rel.Database, q *rel.Query, t, gamma rel.TupleID) (string, bool) {
	on, err := rel.HoldsWithout(db, q, map[rel.TupleID]bool{gamma: true})
	if err != nil || !on {
		return "q false on D-Γ", false
	}
	off, err := rel.HoldsWithout(db, q, map[rel.TupleID]bool{gamma: true, t: true})
	if err != nil || off {
		return "q true on D-Γ-t", false
	}
	return "", true
}

// TestHardQueryUsesExact: the canonical hard query h₂* routes to exact
// search under ModeAuto, and the values match brute force.
func TestHardQueryUsesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
		rel.NewAtom("T", rel.V("z"), rel.V("x")),
	)
	dom := []rel.Value{"0", "1", "2"}
	for trial := 0; trial < 20; trial++ {
		db := rel.NewDatabase()
		for _, name := range []string{"R", "S", "T"} {
			for i := 0; i < 5; i++ {
				db.MustAdd(name, true, dom[rng.Intn(3)], dom[rng.Intn(3)])
			}
		}
		eng, err := NewWhySo(db, q)
		if err != nil {
			t.Fatal(err)
		}
		cert, err := eng.PaperClassification()
		if err != nil {
			t.Fatal(err)
		}
		if cert.Class.PTime() {
			t.Fatal("h2* must not be classified PTIME")
		}
		for _, id := range eng.Causes() {
			ex, err := eng.Responsibility(id, ModeAuto)
			if err != nil {
				t.Fatal(err)
			}
			if ex.Method != MethodExact && ex.Method != MethodCounterfactual {
				t.Fatalf("method = %v, want exact or counterfactual", ex.Method)
			}
			want, ok := exact.BruteForceMinContingency(eng.NLineage(), id)
			if !ok || ex.ContingencySize != want {
				t.Fatalf("tuple %v: engine=%d brute=%d(%v)", db.Tuple(id), ex.ContingencySize, want, ok)
			}
		}
	}
}

// TestAutoMatchesExactOnLinearFamilies fuzzes ModeAuto (flow) against
// ModeExact across linear query families with mixed endo/exo tuples.
func TestAutoMatchesExactOnLinearFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	families := []*rel.Query{
		rel.NewBoolean(
			rel.NewAtom("R", rel.V("x"), rel.V("y")),
			rel.NewAtom("S", rel.V("y"), rel.V("z")),
		),
		rel.NewBoolean(
			rel.NewAtom("R", rel.V("x"), rel.V("y")),
			rel.NewAtom("S", rel.V("y"), rel.V("z")),
			rel.NewAtom("T", rel.V("z"), rel.V("w")),
		),
		rel.NewBoolean( // Example 4.12a (dissociation)
			rel.NewAtom("R", rel.V("x"), rel.V("y")),
			rel.NewAtom("S", rel.V("y"), rel.V("z")),
			rel.NewAtom("T", rel.V("z"), rel.V("x")),
		),
	}
	exoRel := []string{"", "", "S"} // S exogenous in the third family
	dom := []rel.Value{"0", "1", "2"}
	for fi, q := range families {
		for trial := 0; trial < 25; trial++ {
			db := rel.NewDatabase()
			for _, a := range q.Atoms {
				for i := 0; i < 5; i++ {
					endo := rng.Intn(5) != 0
					if a.Pred == exoRel[fi] {
						endo = false
					}
					args := make([]rel.Value, len(a.Terms))
					for j := range args {
						args[j] = dom[rng.Intn(3)]
					}
					db.MustAdd(a.Pred, endo, args...)
				}
			}
			holds, err := rel.Holds(db, q)
			if err != nil {
				t.Fatal(err)
			}
			if !holds {
				continue
			}
			eng, err := NewWhySo(db, q)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range eng.Causes() {
				auto, err := eng.Responsibility(id, ModeAuto)
				if err != nil {
					t.Fatal(err)
				}
				ex, err := eng.Responsibility(id, ModeExact)
				if err != nil {
					t.Fatal(err)
				}
				if !approx(auto.Rho, ex.Rho) {
					t.Fatalf("family %d trial %d tuple %v: auto=%v exact=%v\ndb:\n%v",
						fi, trial, db.Tuple(id), auto.Rho, ex.Rho, db)
				}
			}
		}
	}
}

// TestWhyNoEngine checks the Why-No closed form against the brute-force
// oracle on random instances.
func TestWhyNoEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x"), rel.V("y")),
		rel.NewAtom("S", rel.V("y"), rel.V("z")),
	)
	dom := []rel.Value{"0", "1", "2"}
	built := 0
	for trial := 0; trial < 60 && built < 20; trial++ {
		db := rel.NewDatabase()
		// Sparse real database (exogenous), dense candidates (endogenous).
		for _, name := range []string{"R", "S"} {
			for i := 0; i < 2; i++ {
				db.MustAdd(name, false, dom[rng.Intn(3)], dom[rng.Intn(3)])
			}
			for i := 0; i < 4; i++ {
				db.MustAdd(name, true, dom[rng.Intn(3)], dom[rng.Intn(3)])
			}
		}
		eng, err := NewWhyNo(db, q)
		if err != nil {
			continue // instance invalid (answer present or unreachable)
		}
		built++
		for _, id := range eng.Causes() {
			ex, err := eng.Responsibility(id, ModeAuto)
			if err != nil {
				t.Fatal(err)
			}
			if ex.Method != MethodWhyNo {
				t.Fatalf("method = %v, want why-no", ex.Method)
			}
			want, ok, err := whyno.BruteForceMinContingency(db, q, id)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || ex.ContingencySize != want {
				t.Fatalf("tuple %v: engine=%d brute=%d(%v)\ndb:\n%v",
					db.Tuple(id), ex.ContingencySize, want, ok, db)
			}
			// Theorem 4.17: contingency bounded by m-1.
			if ex.ContingencySize > len(q.Atoms)-1 {
				t.Fatalf("Why-No contingency %d exceeds m-1", ex.ContingencySize)
			}
		}
	}
	if built == 0 {
		t.Fatal("no valid Why-No instances generated")
	}
}

func TestEngineErrors(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a")
	exo := db.MustAdd("R", false, "b")
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x")))
	eng, err := NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Responsibility(exo, ModeAuto); err == nil {
		t.Error("expected error for exogenous tuple")
	}
	if _, err := eng.Responsibility(rel.TupleID(99), ModeAuto); err == nil {
		t.Error("expected error for out-of-range tuple")
	}
	hq := &rel.Query{Name: "q", Head: []rel.Term{rel.V("x")}, Atoms: []rel.Atom{rel.NewAtom("R", rel.V("x"))}}
	if _, err := NewWhySo(db, hq); err == nil {
		t.Error("expected arity error binding empty answer to unary head")
	}
	// Why-No on an instance where the query already holds on Dˣ.
	db2 := rel.NewDatabase()
	db2.MustAdd("R", false, "a")
	db2.MustAdd("R", true, "b")
	if _, err := NewWhyNo(db2, q); err == nil {
		t.Error("expected Why-No validation error (already an answer)")
	}
}

// TestSelfJoinEngine: self-join queries route to exact search and agree
// with brute force (Prop 4.16's query family).
func TestSelfJoinEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	q := rel.NewBoolean(
		rel.NewAtom("R", rel.V("x")),
		rel.NewAtom("S", rel.V("x"), rel.V("y")),
		rel.NewAtom("R", rel.V("y")),
	)
	dom := []rel.Value{"0", "1", "2", "3"}
	for trial := 0; trial < 20; trial++ {
		db := rel.NewDatabase()
		for i := 0; i < 4; i++ {
			db.MustAdd("R", true, dom[rng.Intn(4)])
		}
		for i := 0; i < 5; i++ {
			db.MustAdd("S", false, dom[rng.Intn(4)], dom[rng.Intn(4)])
		}
		holds, _ := rel.Holds(db, q)
		if !holds {
			continue
		}
		eng, err := NewWhySo(db, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range eng.Causes() {
			ex, err := eng.Responsibility(id, ModeAuto)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := exact.BruteForceMinContingency(eng.NLineage(), id)
			if !ok || ex.ContingencySize != want {
				t.Fatalf("tuple %v: engine=%d brute=%d(%v)", db.Tuple(id), ex.ContingencySize, want, ok)
			}
		}
	}
}
