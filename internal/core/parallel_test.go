package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/whyno"
	"github.com/querycause/querycause/internal/workload"
)

// renderRanking serializes a ranking for byte-level comparison: the
// acceptance bar is that the parallel ranking is byte-identical to the
// serial one, not merely equivalent.
func renderRanking(exps []Explanation) string {
	out := ""
	for _, e := range exps {
		out += fmt.Sprintf("%d|%.17g|%d|%v|%d\n", e.Tuple, e.Rho, e.ContingencySize, e.Contingency, e.Method)
	}
	return out
}

// parallelWorkload is one randomized instance for the cross-check.
type parallelWorkload struct {
	name  string
	build func(seed int64) (*rel.Database, *rel.Query)
	whyNo bool
}

// parallelWorkloads covers both sides of the responsibility dichotomy
// (flow-solved weakly linear queries, exact-solved NP-hard queries), a
// query with counterfactual causes, and the Why-No closed form.
func parallelWorkloads() []parallelWorkload {
	drop := func(f func(int64, int) (*rel.Database, *rel.Query, rel.TupleID), n int) func(int64) (*rel.Database, *rel.Query) {
		return func(seed int64) (*rel.Database, *rel.Query) {
			db, q, _ := f(seed, n)
			return db, q
		}
	}
	return []parallelWorkload{
		{name: "flow/chain2", build: drop(workload.Chain2, 24)},
		{name: "flow/chain3", build: drop(workload.Chain3, 12)},
		{name: "flow/triangle-exo-s", build: drop(workload.TriangleExoS, 16)},
		{name: "exact/triangle-h2", build: drop(workload.Triangle, 8)},
		{name: "exact/star-h1", build: drop(workload.Star, 6)},
		{name: "whyno/chain2", build: func(seed int64) (*rel.Database, *rel.Query) {
			db, q := workload.WhyNoChain(seed, 12)
			return db, q
		}, whyNo: true},
	}
}

func newEngineFor(t *testing.T, w parallelWorkload, seed int64) *Engine {
	t.Helper()
	db, q := w.build(seed)
	if w.whyNo {
		if err := whyno.CheckInstance(db, q); err != nil {
			t.Skipf("seed %d: not a valid why-no instance: %v", seed, err)
		}
		eng, err := NewWhyNo(db, q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return eng
	}
	eng, err := NewWhySo(db, q)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return eng
}

// TestRankAllParallelMatchesSerial is the randomized cross-check: for
// seeded random instances on both sides of the dichotomy and every
// mode, the parallel ranking must be exactly the serial ranking — same
// causes, same ρ, same contingencies, same order — at several worker
// counts.
func TestRankAllParallelMatchesSerial(t *testing.T) {
	modes := []Mode{ModeAuto, ModeExact, ModePaper}
	for _, w := range parallelWorkloads() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 5; seed++ {
				for _, mode := range modes {
					eng := newEngineFor(t, w, seed)
					serial, err := eng.RankAll(mode)
					if err != nil {
						t.Fatalf("seed %d mode %v: serial: %v", seed, mode, err)
					}
					for _, workers := range []int{0, 1, 2, 3, 8} {
						// Fresh engine per run: the parallel path must not
						// depend on serial warm-up of the lazy caches.
						eng2 := newEngineFor(t, w, seed)
						par, err := eng2.RankAllParallel(context.Background(), mode, ParallelOptions{Workers: workers})
						if err != nil {
							t.Fatalf("seed %d mode %v workers %d: parallel: %v", seed, mode, workers, err)
						}
						if !reflect.DeepEqual(serial, par) {
							t.Fatalf("seed %d mode %v workers %d: rankings differ\nserial:\n%s\nparallel:\n%s",
								seed, mode, workers, renderRanking(serial), renderRanking(par))
						}
						if sb, pb := renderRanking(serial), renderRanking(par); sb != pb {
							t.Fatalf("seed %d mode %v workers %d: rankings not byte-identical\nserial:\n%s\nparallel:\n%s",
								seed, mode, workers, sb, pb)
						}
					}
				}
			}
		})
	}
}

// TestNetworkPoolReuse: repeated parallel rankings on one engine
// reuse pooled, Reset networks instead of fresh clones — every
// repetition must stay byte-identical to the serial ranking, and the
// pool must actually be primed after the first call.
func TestNetworkPoolReuse(t *testing.T) {
	for _, w := range parallelWorkloads() {
		if w.whyNo {
			continue
		}
		eng := newEngineFor(t, w, 3)
		serial, err := eng.RankAll(ModeAuto)
		if err != nil {
			t.Fatalf("%s: serial: %v", w.name, err)
		}
		usesFlow := false
		for _, ex := range serial {
			if ex.Method == MethodFlow {
				usesFlow = true
			}
		}
		for round := 0; round < 4; round++ {
			par, err := eng.RankAllParallel(context.Background(), ModeAuto, ParallelOptions{Workers: 4})
			if err != nil {
				t.Fatalf("%s round %d: %v", w.name, round, err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("%s round %d: pooled ranking diverged\nserial:\n%s\nparallel:\n%s",
					w.name, round, renderRanking(serial), renderRanking(par))
			}
			var streamed []Explanation
			for ex, serr := range eng.RankStream(context.Background(), ModeAuto, StreamOptions{Workers: 4}) {
				if serr != nil {
					t.Fatalf("%s round %d: stream: %v", w.name, round, serr)
				}
				streamed = append(streamed, ex)
			}
			SortExplanations(streamed)
			if !reflect.DeepEqual(serial, streamed) {
				t.Fatalf("%s round %d: pooled stream diverged", w.name, round)
			}
		}
		eng.poolMu.Lock()
		pooled := len(eng.netPool[ModeAuto])
		eng.poolMu.Unlock()
		if usesFlow && pooled == 0 {
			t.Errorf("%s: flow-path engine has an empty network pool after 4 parallel rankings", w.name)
		}
	}
}

// TestRankAllParallelFig2 pins the parallel ranking to the paper's
// Fig. 2b instance: the worked example must come out identical under
// any parallelism.
func TestRankAllParallelFig2(t *testing.T) {
	db, _ := imdb.Micro()
	q, err := imdb.GenreQuery().Bind("Musical")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := eng.RankAll(ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	par, err := eng.RankAllParallel(context.Background(), ModeAuto, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("Fig. 2b parallel ranking diverged:\nserial:\n%s\nparallel:\n%s",
			renderRanking(serial), renderRanking(par))
	}
}

// TestRankAllParallelCancellation verifies ctx handling: an already
// canceled context fails fast, and a context canceled mid-flight stops
// the pool with ctx.Err() rather than a partial ranking.
func TestRankAllParallelCancellation(t *testing.T) {
	db, q, _ := workload.Star(99, 6)
	eng, err := NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := eng.RankAllParallel(ctx, ModeExact, ParallelOptions{Workers: workers}); err != context.Canceled {
			t.Fatalf("workers %d: want context.Canceled, got %v", workers, err)
		}
	}

	mid, cancelMid := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		time.Sleep(time.Millisecond)
		cancelMid()
		close(done)
	}()
	if out, err := eng.RankAllParallel(mid, ModeExact, ParallelOptions{Workers: 4}); err == nil {
		// The pool may legitimately win the race and finish first; then
		// the full deterministic ranking must be returned.
		if len(out) != len(eng.Causes()) {
			t.Fatalf("completed ranking has %d entries, want %d", len(out), len(eng.Causes()))
		}
	} else if err != context.Canceled {
		t.Fatalf("want context.Canceled or success, got %v", err)
	}
	<-done
	cancelMid()
}

// TestRankAllParallelSharedEngine exercises the documented server
// pattern: one COLD shared engine, many concurrent callers mixing
// RankAll, RankAllParallel and single-tuple Responsibility. The lazy
// caches are first populated under contention, and the serial callers
// share one flow network while the parallel callers clone it.
func TestRankAllParallelSharedEngine(t *testing.T) {
	db, q, target := workload.TriangleExoS(7, 12)
	ref, err := NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.RankAll(ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewWhySo(db, q) // cold: no serial warm-up
	if err != nil {
		t.Fatal(err)
	}
	const callers = 9
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		i := i
		go func() {
			var got []Explanation
			var err error
			switch i % 3 {
			case 0:
				got, err = eng.RankAllParallel(context.Background(), ModeAuto, ParallelOptions{Workers: 4})
			case 1:
				got, err = eng.RankAll(ModeAuto)
			default:
				_, err = eng.Responsibility(target, ModeAuto)
				errs <- err
				return
			}
			if err == nil && !reflect.DeepEqual(want, got) {
				err = fmt.Errorf("concurrent ranking diverged")
			}
			errs <- err
		}()
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
