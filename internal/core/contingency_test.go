package core

import (
	"math/rand"
	"testing"

	"github.com/querycause/querycause/internal/imdb"
	"github.com/querycause/querycause/internal/rel"
)

// validWhySoContingency checks Definition 2.1: q holds on D−Γ and fails
// on D−Γ−{t}.
func validWhySoContingency(t *testing.T, db *rel.Database, q *rel.Query, tuple rel.TupleID, gamma []rel.TupleID) bool {
	t.Helper()
	removed := make(map[rel.TupleID]bool, len(gamma)+1)
	for _, id := range gamma {
		if id == tuple {
			return false
		}
		if !db.Tuple(id).Endo {
			t.Fatalf("contingency contains exogenous tuple %v", db.Tuple(id))
		}
		removed[id] = true
	}
	on, err := rel.HoldsWithout(db, q, removed)
	if err != nil {
		t.Fatal(err)
	}
	if !on {
		return false
	}
	removed[tuple] = true
	off, err := rel.HoldsWithout(db, q, removed)
	if err != nil {
		t.Fatal(err)
	}
	return !off
}

// TestContingencyWitnessesFig2: the witness sets on the IMDB instance
// are valid and match Example 2.4 (Sweeney Todd's contingency is the
// two other directors).
func TestContingencyWitnessesFig2(t *testing.T) {
	db, keys := imdb.Micro()
	eng, err := NewWhySo(db, imdb.GenreQuery(), "Musical")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeAuto, ModeExact} {
		ex, err := eng.Responsibility(keys[imdb.KeySweeney], mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.Contingency) != 2 {
			t.Fatalf("mode %d: |Γ| = %d, want 2", mode, len(ex.Contingency))
		}
		if !validWhySoContingency(t, db, eng.Query(), keys[imdb.KeySweeney], ex.Contingency) {
			t.Fatalf("mode %d: invalid contingency %v", mode, ex.Contingency)
		}
		// Example 2.4: the minimal contingency is the two non-Tim
		// directors.
		got := map[rel.TupleID]bool{ex.Contingency[0]: true, ex.Contingency[1]: true}
		if !got[keys[imdb.KeyDavid]] || !got[keys[imdb.KeyHumphrey]] {
			t.Errorf("mode %d: Γ = %v, want {David, Humphrey}", mode, ex.Contingency)
		}
	}
}

// TestContingencyWitnessesFuzz: flow- and exact-produced witnesses are
// valid by definition and have the claimed size, across query families.
func TestContingencyWitnessesFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	families := []*rel.Query{
		rel.NewBoolean(
			rel.NewAtom("R", rel.V("x"), rel.V("y")),
			rel.NewAtom("S", rel.V("y"), rel.V("z")),
		),
		rel.NewBoolean( // NP-hard family: exercises the exact path
			rel.NewAtom("R", rel.V("x"), rel.V("y")),
			rel.NewAtom("S", rel.V("y"), rel.V("z")),
			rel.NewAtom("T", rel.V("z"), rel.V("x")),
		),
	}
	dom := []rel.Value{"0", "1", "2"}
	for fi, q := range families {
		for trial := 0; trial < 20; trial++ {
			db := rel.NewDatabase()
			for _, a := range q.Atoms {
				for i := 0; i < 5; i++ {
					db.MustAdd(a.Pred, rng.Intn(5) != 0, dom[rng.Intn(3)], dom[rng.Intn(3)])
				}
			}
			holds, err := rel.Holds(db, q)
			if err != nil {
				t.Fatal(err)
			}
			if !holds {
				continue
			}
			eng, err := NewWhySo(db, q)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range eng.Causes() {
				for _, mode := range []Mode{ModeAuto, ModeExact} {
					ex, err := eng.Responsibility(id, mode)
					if err != nil {
						t.Fatal(err)
					}
					if len(ex.Contingency) != ex.ContingencySize {
						t.Fatalf("family %d: |Γ|=%d size=%d", fi, len(ex.Contingency), ex.ContingencySize)
					}
					if !validWhySoContingency(t, db, q, id, ex.Contingency) {
						t.Fatalf("family %d mode %d tuple %v: invalid Γ=%v\ndb:\n%v",
							fi, mode, db.Tuple(id), ex.Contingency, db)
					}
				}
			}
		}
	}
}

// TestWhyNoContingencyWitness: Why-No witnesses are valid insertion
// sets (q false on Dˣ∪Γ, true on Dˣ∪Γ∪{t}).
func TestWhyNoContingencyWitness(t *testing.T) {
	db := rel.NewDatabase()
	db.MustAdd("R", true, "a", "b") // candidate
	db.MustAdd("S", true, "b")      // candidate
	db.MustAdd("S", true, "z")      // useless candidate
	q := rel.NewBoolean(rel.NewAtom("R", rel.V("x"), rel.V("y")), rel.NewAtom("S", rel.V("y")))
	eng, err := NewWhyNo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range eng.Causes() {
		ex, err := eng.Responsibility(id, ModeAuto)
		if err != nil {
			t.Fatal(err)
		}
		// Insertion semantics: present = exogenous ∪ Γ ∪ {t}; all other
		// endogenous tuples removed.
		removed := make(map[rel.TupleID]bool)
		inGamma := make(map[rel.TupleID]bool)
		for _, g := range ex.Contingency {
			inGamma[g] = true
		}
		for _, cand := range db.EndoIDs() {
			if !inGamma[cand] {
				removed[cand] = true
			}
		}
		// Without t: must be false.
		removed[id] = true
		on, err := rel.HoldsWithout(db, q, removed)
		if err != nil {
			t.Fatal(err)
		}
		if on {
			t.Fatalf("tuple %v: q holds on Dˣ∪Γ without t (Γ=%v)", db.Tuple(id), ex.Contingency)
		}
		// With t: must be true.
		delete(removed, id)
		on, err = rel.HoldsWithout(db, q, removed)
		if err != nil {
			t.Fatal(err)
		}
		if !on {
			t.Fatalf("tuple %v: q fails on Dˣ∪Γ∪{t} (Γ=%v)", db.Tuple(id), ex.Contingency)
		}
	}
}
