// Streaming rankings: RankAll as a Go iterator. On the NP-hard side of
// the dichotomy a full ranking is a sum of per-cause branch-and-bound
// searches — minutes on wide lineages (see BENCH_difftest.json) — yet
// each cause's explanation is final the moment its own search ends.
// RankStream emits explanations as workers complete them, so a caller
// sees its first explanation after one search instead of all of them;
// drained to completion and sorted with SortExplanations, the stream
// is byte-identical to RankAll.
package core

import (
	"context"
	"iter"
	"sync"
	"sync/atomic"

	"github.com/querycause/querycause/internal/respflow"
)

// StreamOptions tunes RankStream.
type StreamOptions struct {
	// Workers is the parallelism degree (ResolveWorkers semantics:
	// values <= 0 mean runtime.GOMAXPROCS(0)).
	Workers int
	// CompletionOrder emits explanations the moment any worker finishes
	// one, minimizing time-to-first-explanation at the price of a
	// scheduling-dependent order. The default (false) emits in
	// ascending cause order — deterministic for every worker count, so
	// two transports streaming the same instance produce identical
	// event sequences.
	CompletionOrder bool
}

// RankStream explains every cause of the engine, yielding each
// explanation as it is computed by a pool of opts.Workers workers. The
// yielded multiset of explanations equals RankAll(mode) exactly:
// drained and sorted with SortExplanations it is byte-identical to the
// blocking ranking, for every worker count and either emission order.
//
// The sequence is single-use and must be consumed on one goroutine.
// Breaking out of the range stops the workers and releases their
// goroutines. Cancellation of ctx ends the sequence with a final
// (zero Explanation, ctx.Err()) pair; setup failures (an inapplicable
// flow certificate) yield one (zero, error) pair. Per-cause
// computations themselves never fail: every yielded error is terminal.
func (e *Engine) RankStream(ctx context.Context, mode Mode, opts StreamOptions) iter.Seq2[Explanation, error] {
	return func(yield func(Explanation, error) bool) {
		if err := ctx.Err(); err != nil {
			yield(Explanation{}, err)
			return
		}
		n := len(e.causes)
		if n == 0 {
			return
		}
		workers := ResolveWorkers(opts.Workers)
		if workers > n {
			workers = n
		}
		// Resolve shared read-only state up front, exactly like
		// RankAllParallel: lazy certificate/network computation must not
		// first happen from racing workers, and setup errors surface
		// before any explanation is emitted.
		var base *respflow.Network
		if !e.whyNo && mode != ModeExact && e.flowApplicable(mode) && e.anyNonCounterfactualCause() {
			var err error
			base, err = e.network(mode)
			if err != nil {
				yield(Explanation{}, err)
				return
			}
		}

		sctx, stop := context.WithCancel(ctx)
		type item struct {
			idx int
			ex  Explanation
		}
		ch := make(chan item, workers)
		var wg sync.WaitGroup
		var next atomic.Int64
		var acqMu sync.Mutex
		var acquired []*respflow.Network
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var net *respflow.Network
				if base != nil {
					// Pooled from an earlier ranking, or cloned under
					// flowMu (see acquireNet).
					net = e.acquireNet(mode, base)
					acqMu.Lock()
					acquired = append(acquired, net)
					acqMu.Unlock()
				}
				for {
					i := int(next.Add(1)) - 1
					if i >= n || sctx.Err() != nil {
						return
					}
					select {
					case ch <- item{i, e.explain(e.causes[i], net)}:
					case <-sctx.Done():
						return
					}
				}
			}()
		}
		go func() {
			wg.Wait()
			// All workers are done (their appends happen-before Wait
			// returns), so the acquired list is stable: park the
			// networks for the next ranking.
			for _, net := range acquired {
				e.releaseNet(mode, net)
			}
			close(ch)
		}()
		// On every exit — early break included — cancel the workers and
		// drain the channel until the closer goroutine shuts it, so no
		// goroutine is left blocked on a send.
		defer func() {
			stop()
			for range ch {
			}
		}()

		if opts.CompletionOrder {
			for it := range ch {
				if !yield(it.ex, nil) {
					return
				}
			}
		} else {
			// Deterministic emission: workers still complete out of
			// order, but explanations are released in ascending cause
			// order through a reorder buffer.
			pending := make(map[int]Explanation, workers)
			emit := 0
			for it := range ch {
				pending[it.idx] = it.ex
				for {
					ex, ok := pending[emit]
					if !ok {
						break
					}
					delete(pending, emit)
					emit++
					if !yield(ex, nil) {
						return
					}
				}
			}
		}
		if err := ctx.Err(); err != nil {
			yield(Explanation{}, err)
		}
	}
}

// SortExplanations sorts a ranking in place into the paper's Fig. 2b
// order — descending ρ, ties by ascending tuple ID — the order RankAll
// returns. A fully drained RankStream sorted with SortExplanations is
// byte-identical to RankAll on the same engine.
func SortExplanations(exps []Explanation) { sortExplanations(exps) }
