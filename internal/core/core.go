// Package core is the causality engine of the reproduction: it wires
// the lineage machinery (Theorem 3.2), the dichotomy classifier
// (Corollary 4.14), the max-flow responsibility algorithm (Algorithm 1)
// and the exact solvers into one orchestrated API for Why-So and Why-No
// explanations of query answers and non-answers.
//
// Responsibility dispatch (Why-So):
//
//  1. t not an actual cause → ρ = 0 (Theorem 3.2).
//  2. t counterfactual (every minimal conjunct contains it) → ρ = 1.
//  3. Self-join-free query that is weakly linear under the *sound*
//     domination rule → Algorithm 1 (max-flow), polynomial time.
//  4. Otherwise → exact branch-and-bound search (the query is NP-hard,
//     in the paper's dichotomy gap, has self-joins, or is weakly linear
//     only under the paper's unsound domination rule).
//
// ModePaper reproduces the paper's behaviour literally (Algorithm 1 on
// any Definition 4.9 weakening); see the counterexample test for where
// it diverges from Definition 2.3.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/querycause/querycause/internal/exact"
	"github.com/querycause/querycause/internal/lineage"
	"github.com/querycause/querycause/internal/qerr"
	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/respflow"
	"github.com/querycause/querycause/internal/rewrite"
	"github.com/querycause/querycause/internal/shape"
	"github.com/querycause/querycause/internal/whyno"
)

// Mode selects the responsibility computation strategy.
type Mode int

const (
	// ModeAuto uses the flow algorithm when soundly applicable, exact
	// search otherwise.
	ModeAuto Mode = iota
	// ModeExact always uses exact branch-and-bound search.
	ModeExact
	// ModePaper follows the paper literally: Algorithm 1 whenever the
	// query is weakly linear under Definition 4.9. For queries whose
	// weakening uses an unsound domination this can disagree with
	// Definition 2.3 (see TestDominationCounterexample).
	ModePaper
)

// String renders the wire form of a mode: "auto", "exact", "paper".
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeExact:
		return "exact"
	case ModePaper:
		return "paper"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the wire form of a mode; "" means ModeAuto.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "exact":
		return ModeExact, nil
	case "paper":
		return ModePaper, nil
	}
	return 0, qerr.Tag(qerr.ErrBadQuery, fmt.Errorf("core: unknown mode %q (want auto, exact, or paper)", s))
}

// Method records how a responsibility value was computed.
type Method int

const (
	// MethodNone: the tuple is not an actual cause (ρ = 0).
	MethodNone Method = iota
	// MethodCounterfactual: ρ = 1 directly from the lineage.
	MethodCounterfactual
	// MethodFlow: Algorithm 1 (max-flow on the linearized query).
	MethodFlow
	// MethodExact: branch-and-bound minimum hitting set.
	MethodExact
	// MethodWhyNo: closed form for non-answers (Theorem 4.17).
	MethodWhyNo
)

func (m Method) String() string {
	switch m {
	case MethodNone:
		return "not-a-cause"
	case MethodCounterfactual:
		return "counterfactual"
	case MethodFlow:
		return "max-flow"
	case MethodExact:
		return "exact-search"
	case MethodWhyNo:
		return "why-no-closed-form"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ParseMethod inverts Method.String; the wire carries methods as
// strings and the remote client rehydrates them.
func ParseMethod(s string) (Method, bool) {
	for _, m := range []Method{MethodNone, MethodCounterfactual, MethodFlow, MethodExact, MethodWhyNo} {
		if m.String() == s {
			return m, true
		}
	}
	return MethodNone, false
}

// Explanation is the causal verdict for one tuple.
type Explanation struct {
	Tuple rel.TupleID
	// Rho is the responsibility ρ_t ∈ [0,1].
	Rho float64
	// ContingencySize is min|Γ|, or -1 when t is not a cause.
	ContingencySize int
	// Contingency is an actual minimum contingency set witnessing
	// ContingencySize: removing (Why-So) or inserting (Why-No) exactly
	// these tuples makes t counterfactual. Empty for counterfactual
	// causes; nil when t is not a cause.
	Contingency []rel.TupleID
	Method      Method
}

// Engine computes causes and responsibilities for one Boolean query
// over one database instance. Build one per (db, query, answer). An
// Engine may be shared by concurrent goroutines (e.g. a server
// answering repeated explain requests): the lazily computed
// certificates and flow networks are mutex-guarded, and everything
// else is immutable after construction.
type Engine struct {
	db    *rel.Database
	q     *rel.Query
	whyNo bool

	nlineage lineage.DNF
	causeSet map[rel.TupleID]bool
	causes   []rel.TupleID

	// exIndex is the interned lineage backing every exact search on
	// this engine: built once (lazily — flow-only engines never pay for
	// it), then shared read-only by all causes and workers.
	exOnce  sync.Once
	exIndex *lineage.Index

	// mu guards the lazy caches below; all other fields are read-only
	// after newEngine returns.
	mu        sync.Mutex
	soundCert *rewrite.Certificate
	paperCert *rewrite.Certificate
	nets      map[Mode]*respflow.Network
	// netPool parks worker-private network clones between rankings
	// (see acquireNet/releaseNet in parallel.go); guarded by poolMu.
	poolMu  sync.Mutex
	netPool map[Mode][]*respflow.Network
	// flowMu serializes use of the cached networks: Contingency
	// temporarily rewrites edge capacities, so the serial path holds
	// flowMu around each flow computation and RankAllParallel holds it
	// while cloning a worker's private network. Workers never lock —
	// they mutate only their clones.
	flowMu sync.Mutex
}

// NewWhySo builds the engine for an answer: q may be Boolean (no
// answer values) or have a head matching the answer tuple, which is
// bound per Section 2.
func NewWhySo(db *rel.Database, q *rel.Query, answer ...rel.Value) (*Engine, error) {
	bq := q
	if len(q.Head) > 0 || len(answer) > 0 {
		var err error
		bq, err = q.Bind(answer...)
		if err != nil {
			return nil, err
		}
	}
	return newEngine(db, bq, false)
}

// NewWhyNo builds the engine for a non-answer: the database's
// endogenous tuples are the candidate missing tuples Dⁿ. The instance
// is validated (q false on Dˣ, true on Dˣ ∪ Dⁿ).
func NewWhyNo(db *rel.Database, q *rel.Query, nonAnswer ...rel.Value) (*Engine, error) {
	bq := q
	if len(q.Head) > 0 || len(nonAnswer) > 0 {
		var err error
		bq, err = q.Bind(nonAnswer...)
		if err != nil {
			return nil, err
		}
	}
	if err := whyno.CheckInstance(db, bq); err != nil {
		return nil, err
	}
	return newEngine(db, bq, true)
}

func newEngine(db *rel.Database, bq *rel.Query, isWhyNo bool) (*Engine, error) {
	if err := bq.Validate(db); err != nil {
		return nil, err
	}
	n, err := lineage.NLineageOf(db, bq)
	if err != nil {
		return nil, err
	}
	return engineFromLineage(db, bq, n, isWhyNo), nil
}

// NewWhySoFromLineage builds a Why-So engine around an externally
// maintained minimal endogenous lineage, skipping the evaluation pass
// entirely. The delta-maintenance layer (internal/delta) uses it to
// revive an invalidated engine from a patched DNF; the caller is
// responsible for n being exactly the minimal Φⁿ of bq on db (the
// differential harness holds patched engines byte-identical to cold
// ones). bq must already be Boolean (answer bound).
func NewWhySoFromLineage(db *rel.Database, bq *rel.Query, n lineage.DNF) (*Engine, error) {
	if err := bq.Validate(db); err != nil {
		return nil, err
	}
	return engineFromLineage(db, bq, n, false), nil
}

func engineFromLineage(db *rel.Database, bq *rel.Query, n lineage.DNF, isWhyNo bool) *Engine {
	e := &Engine{
		db: db, q: bq, whyNo: isWhyNo,
		nlineage: n,
		causeSet: make(map[rel.TupleID]bool),
		nets:     make(map[Mode]*respflow.Network),
		netPool:  make(map[Mode][]*respflow.Network),
	}
	if !n.True {
		e.causes = n.Vars()
		for _, id := range e.causes {
			e.causeSet[id] = true
		}
	}
	return e
}

// Causes returns all actual causes, sorted by tuple ID (Theorem 3.2).
func (e *Engine) Causes() []rel.TupleID {
	return append([]rel.TupleID(nil), e.causes...)
}

// NLineage exposes the minimal endogenous lineage (for display).
func (e *Engine) NLineage() lineage.DNF { return e.nlineage }

// Query returns the bound Boolean query the engine explains.
func (e *Engine) Query() *rel.Query { return e.q }

// WhyNo reports whether the engine explains a non-answer. The
// delta-maintenance layer branches on it: Why-No lineage is computed
// over a hypothetical instance and is never patched incrementally.
func (e *Engine) WhyNo() bool { return e.whyNo }

// Touches reports (in O(1)) whether the identified tuple occurs in the
// engine's minimal endogenous lineage. A mutation of a tuple the
// lineage does not touch provably leaves this engine's explanations
// unchanged — deleting such an exogenous tuple can only remove
// witnesses whose minimized conjuncts never referenced it, and the
// minimization already canceled any conjunct it appeared in against a
// surviving subset (see internal/server's invalidation rules).
func (e *Engine) Touches(id rel.TupleID) bool { return e.causeSet[id] }

// Mentions reports whether the engine's bound query references the
// named relation in any atom. Insertions (and exogenous deletions) can
// only affect engines whose query mentions the mutated relation, so
// this is the conservative invalidation predicate for them.
func (e *Engine) Mentions(relName string) bool {
	for _, a := range e.q.Atoms {
		if a.Pred == relName {
			return true
		}
	}
	return false
}

// EndoFn returns the endogeneity rule the engine classifies under: a
// relation is endogenous iff it holds at least one endogenous tuple.
// Anything that computes certificates on the engine's behalf (e.g. a
// server's certificate cache feeding Prime) must use this same rule.
func EndoFn(db *rel.Database) func(relName string) bool {
	return func(name string) bool {
		r := db.Relation(name)
		if r == nil {
			return false
		}
		return r.HasEndo()
	}
}

// endoShape flags a relation endogenous per EndoFn.
func (e *Engine) endoShape() *shape.Shape {
	return shape.FromQuery(e.q, EndoFn(e.db))
}

// Classification returns the sound-rule certificate used by ModeAuto.
func (e *Engine) Classification() (*rewrite.Certificate, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.classificationLocked()
}

func (e *Engine) classificationLocked() (*rewrite.Certificate, error) {
	if e.soundCert == nil {
		c, err := rewrite.ClassifySound(e.endoShape())
		if err != nil {
			return nil, err
		}
		e.soundCert = c
	}
	return e.soundCert, nil
}

// PaperClassification returns the Definition 4.9 certificate (Fig. 3
// semantics) used by ModePaper.
func (e *Engine) PaperClassification() (*rewrite.Certificate, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.paperClassificationLocked()
}

func (e *Engine) paperClassificationLocked() (*rewrite.Certificate, error) {
	if e.paperCert == nil {
		c, err := rewrite.Classify(e.endoShape())
		if err != nil {
			return nil, err
		}
		e.paperCert = c
	}
	return e.paperCert, nil
}

// Prime seeds the engine's lazily computed certificates with
// classifications obtained elsewhere (e.g. a server's certificate
// cache), so the first Responsibility call skips re-classification.
// Either argument may be nil to leave that slot lazy. The certificates
// must have been derived from the same query shape and endogenous
// flags the engine sees (same bound query over the same database);
// Prime does not re-validate this.
func (e *Engine) Prime(sound, paper *rewrite.Certificate) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if sound != nil && e.soundCert == nil {
		e.soundCert = sound
	}
	if paper != nil && e.paperCert == nil {
		e.paperCert = paper
	}
}

// exactIndex returns the interned lineage index backing the exact
// solvers, built on first use and shared (read-only) by every
// concurrent worker afterwards.
func (e *Engine) exactIndex() *lineage.Index {
	e.exOnce.Do(func() { e.exIndex = lineage.NewIndex(e.nlineage) })
	return e.exIndex
}

// isCounterfactual reports whether every minimal conjunct contains t.
func (e *Engine) isCounterfactual(t rel.TupleID) bool {
	if e.nlineage.True || len(e.nlineage.Conjuncts) == 0 {
		return false
	}
	for _, c := range e.nlineage.Conjuncts {
		if !c.Contains(t) {
			return false
		}
	}
	return true
}

func (e *Engine) network(mode Mode) (*respflow.Network, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if net, ok := e.nets[mode]; ok {
		return net, nil
	}
	var cert *rewrite.Certificate
	var err error
	if mode == ModePaper {
		cert, err = e.paperClassificationLocked()
	} else {
		cert, err = e.classificationLocked()
	}
	if err != nil {
		return nil, err
	}
	if !cert.Class.PTime() {
		return nil, fmt.Errorf("core: query %v is not weakly linear (%v); flow inapplicable", e.q, cert.Class)
	}
	ws, order, err := cert.Replay()
	if err != nil {
		return nil, err
	}
	net, err := respflow.Build(e.db, e.q, ws, order)
	if err != nil {
		return nil, err
	}
	e.nets[mode] = net
	return net, nil
}

// flowApplicable reports whether the flow algorithm may be used in the
// given mode.
func (e *Engine) flowApplicable(mode Mode) bool {
	if e.q.HasSelfJoin() {
		return false
	}
	var cert *rewrite.Certificate
	var err error
	if mode == ModePaper {
		cert, err = e.PaperClassification()
	} else {
		cert, err = e.Classification()
	}
	return err == nil && cert.Class.PTime()
}

// Responsibility computes the explanation for tuple t. Requests for
// tuples that can never be causes (out of range, or exogenous) are
// tagged qerr.ErrNotCause.
func (e *Engine) Responsibility(t rel.TupleID, mode Mode) (Explanation, error) {
	if int(t) < 0 || int(t) >= e.db.NumTuples() {
		return Explanation{}, qerr.Tag(qerr.ErrNotCause, fmt.Errorf("core: tuple id %d out of range", t))
	}
	if !e.db.Tuple(t).Endo {
		return Explanation{}, qerr.Tag(qerr.ErrNotCause, fmt.Errorf("core: tuple %v is exogenous; only endogenous tuples have responsibilities", e.db.Tuple(t)))
	}
	var net *respflow.Network
	if e.causeSet[t] && !e.whyNo && !e.isCounterfactual(t) && mode != ModeExact && e.flowApplicable(mode) {
		var err error
		net, err = e.network(mode)
		if err != nil {
			return Explanation{}, err
		}
		// The cached network is shared across calls; hold flowMu for
		// the capacity-rewriting flow computation.
		e.flowMu.Lock()
		defer e.flowMu.Unlock()
	}
	return e.explain(t, net), nil
}

// explain computes the explanation for one endogenous tuple. A non-nil
// net selects the flow path and must be private to the calling
// goroutine (the engine's cached network on the serial path, a Clone
// per worker on the parallel path); nil dispatches the non-trivial
// Why-So case to the exact solver. Everything else explain reads on
// the engine is immutable after construction, so concurrent calls with
// distinct networks are race-free.
func (e *Engine) explain(t rel.TupleID, net *respflow.Network) Explanation {
	if !e.causeSet[t] {
		return Explanation{Tuple: t, Rho: 0, ContingencySize: -1, Method: MethodNone}
	}
	if e.whyNo {
		set, ok := whyno.MinContingencySetDNF(e.nlineage, t)
		if !ok {
			return Explanation{Tuple: t, Rho: 0, ContingencySize: -1, Method: MethodNone}
		}
		size := len(set)
		return Explanation{Tuple: t, Rho: 1 / (1 + float64(size)), ContingencySize: size, Contingency: set, Method: MethodWhyNo}
	}
	if e.isCounterfactual(t) {
		return Explanation{Tuple: t, Rho: 1, ContingencySize: 0, Contingency: []rel.TupleID{}, Method: MethodCounterfactual}
	}
	if net != nil {
		set, ok := net.Contingency(t)
		if !ok {
			// Causes always admit a finite protected cut; reaching this
			// point indicates an engine bug, except under ModePaper where
			// unsound weakenings may mis-handle edge cases.
			return Explanation{Tuple: t, Rho: 0, ContingencySize: -1, Method: MethodFlow}
		}
		size := len(set)
		return Explanation{Tuple: t, Rho: 1 / (1 + float64(size)), ContingencySize: size, Contingency: set, Method: MethodFlow}
	}
	set, ok := exact.MinContingencySetIndex(e.exactIndex(), t, exact.Options{})
	if !ok {
		return Explanation{Tuple: t, Rho: 0, ContingencySize: -1, Method: MethodExact}
	}
	size := len(set)
	return Explanation{Tuple: t, Rho: 1 / (1 + float64(size)), ContingencySize: size, Contingency: set, Method: MethodExact}
}

// RankAll explains every cause and sorts by descending responsibility,
// breaking ties by tuple ID (the paper's Fig. 2b ranking).
func (e *Engine) RankAll(mode Mode) ([]Explanation, error) {
	return e.rankAllCtx(context.Background(), mode)
}

// sortExplanations applies the paper's Fig. 2b ranking order in place:
// descending ρ, ties broken by ascending tuple ID. Both the serial and
// the parallel rankers use it, so their outputs are directly comparable.
func sortExplanations(out []Explanation) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Rho != out[j].Rho {
			return out[i].Rho > out[j].Rho
		}
		return out[i].Tuple < out[j].Tuple
	})
}
