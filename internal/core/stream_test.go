package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"github.com/querycause/querycause/internal/workload"
)

// drainStream collects a stream fully, failing the test on any
// mid-stream error.
func drainStream(t *testing.T, eng *Engine, mode Mode, opts StreamOptions) []Explanation {
	t.Helper()
	var out []Explanation
	for ex, err := range eng.RankStream(context.Background(), mode, opts) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		out = append(out, ex)
	}
	return out
}

// TestRankStreamMatchesRankAll: for instances on both sides of the
// dichotomy, every mode, several worker counts, and both emission
// orders, a drained stream sorted with SortExplanations must be
// byte-identical to the blocking RankAll.
func TestRankStreamMatchesRankAll(t *testing.T) {
	modes := []Mode{ModeAuto, ModeExact, ModePaper}
	for _, w := range parallelWorkloads() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				for _, mode := range modes {
					eng := newEngineFor(t, w, seed)
					want, err := eng.RankAll(mode)
					if err != nil {
						t.Fatalf("seed %d mode %v: RankAll: %v", seed, mode, err)
					}
					for _, workers := range []int{0, 1, 2, 7} {
						for _, completion := range []bool{false, true} {
							// Fresh engine per run: streaming must not depend
							// on serial warm-up of the lazy caches.
							eng2 := newEngineFor(t, w, seed)
							got := drainStream(t, eng2, mode, StreamOptions{Workers: workers, CompletionOrder: completion})
							SortExplanations(got)
							if gb, wb := renderRanking(got), renderRanking(want); gb != wb {
								t.Fatalf("seed %d mode %v workers %d completion=%v: stream differs\nstream:\n%s\nrank:\n%s",
									seed, mode, workers, completion, gb, wb)
							}
						}
					}
				}
			}
		})
	}
}

// TestRankStreamDeterministicOrder: default emission is ascending
// cause order — the engine's Causes() order — for every worker count.
func TestRankStreamDeterministicOrder(t *testing.T) {
	for _, w := range parallelWorkloads() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			eng := newEngineFor(t, w, 1)
			causes := eng.Causes()
			for _, workers := range []int{1, 3, 8} {
				got := drainStream(t, newEngineFor(t, w, 1), ModeAuto, StreamOptions{Workers: workers})
				if len(got) != len(causes) {
					t.Fatalf("workers %d: %d explanations for %d causes", workers, len(got), len(causes))
				}
				for i, ex := range got {
					if ex.Tuple != causes[i] {
						t.Fatalf("workers %d: emission %d is tuple %d; want cause order %v", workers, i, ex.Tuple, causes)
					}
				}
			}
		})
	}
}

// TestRankStreamEarlyBreak: breaking out of the range must stop the
// workers and leak no goroutines.
func TestRankStreamEarlyBreak(t *testing.T) {
	db, q, _ := workload.Star(3, 10)
	before := runtime.NumGoroutine()
	for trial := 0; trial < 10; trial++ {
		eng, err := NewWhySo(db, q)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, serr := range eng.RankStream(context.Background(), ModeAuto, StreamOptions{Workers: 4}) {
			if serr != nil {
				t.Fatalf("trial %d: %v", trial, serr)
			}
			n++
			if n == 2 {
				break
			}
		}
		if n != 2 {
			t.Fatalf("trial %d: consumed %d explanations before break", trial, n)
		}
	}
	// Workers park promptly after the consumer breaks; allow the
	// scheduler a moment before asserting no goroutine pile-up.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+2 {
		t.Errorf("goroutines grew from %d to %d after early breaks", before, got)
	}
}

// TestRankStreamCancel: canceling the context mid-stream ends the
// sequence with the context's error as a terminal pair.
func TestRankStreamCancel(t *testing.T) {
	db, q, _ := workload.Star(5, 12)
	eng, err := NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var sawErr error
	n := 0
	for _, serr := range eng.RankStream(ctx, ModeAuto, StreamOptions{Workers: 2}) {
		if serr != nil {
			sawErr = serr
			continue
		}
		n++
		if n == 1 {
			cancel()
		}
	}
	cancel()
	if sawErr != context.Canceled {
		t.Errorf("terminal stream error = %v; want context.Canceled", sawErr)
	}
	if n >= len(eng.Causes()) {
		t.Logf("note: all %d causes were already computed before cancellation took effect", n)
	}
}

// TestRankStreamPreCanceled: an already-dead context yields exactly
// one terminal error and no explanations.
func TestRankStreamPreCanceled(t *testing.T) {
	db, q, _ := workload.Star(5, 6)
	eng, err := NewWhySo(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	events := 0
	for ex, serr := range eng.RankStream(ctx, ModeAuto, StreamOptions{}) {
		events++
		if serr != context.Canceled || ex.Method != MethodNone {
			t.Errorf("pre-canceled stream yielded (%+v, %v)", ex, serr)
		}
	}
	if events != 1 {
		t.Errorf("pre-canceled stream yielded %d events; want 1 terminal error", events)
	}
}
