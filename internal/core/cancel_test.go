package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/querycause/querycause/internal/rel"
	"github.com/querycause/querycause/internal/workload"
)

// cancelBatch builds a sizeable batch over a star instance (many
// causes per request, so workers stay busy between cancellation
// checks).
func cancelBatch(t *testing.T) (*rel.Database, []BatchRequest) {
	t.Helper()
	db, q, _ := workload.Star(11, 12)
	reqs := make([]BatchRequest, 512)
	for i := range reqs {
		reqs[i] = BatchRequest{Query: q}
	}
	return db, reqs
}

// TestExplainBatchCancelMidRun: canceling mid-batch must return
// promptly with the context's error and leave no worker goroutines
// behind (a done-channel barrier plus a goroutine-count check, per
// the harness's leak policy).
func TestExplainBatchCancelMidRun(t *testing.T) {
	db, reqs := cancelBatch(t)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Bool
	factory := func(db *rel.Database, _ int, req BatchRequest) (*Engine, error) {
		started.Store(true)
		return NewRequestEngine(db, req)
	}

	type outcome struct {
		results []BatchResult
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := ExplainBatch(ctx, db, reqs, BatchRunOptions{Workers: 4, NewEngine: factory})
		done <- outcome{res, err}
	}()
	// Wait for the batch to actually be in flight, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for !started.Load() {
		if time.Now().After(deadline) {
			t.Fatal("batch never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case out := <-done:
		if !errors.Is(out.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", out.err)
		}
		if out.results != nil {
			t.Fatalf("canceled batch returned results (%d)", len(out.results))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ExplainBatch did not return after cancellation")
	}

	// All pool goroutines must drain back to baseline.
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestExplainBatchPreCanceled: an already-dead context must fail fast
// without spawning any work.
func TestExplainBatchPreCanceled(t *testing.T) {
	db, reqs := cancelBatch(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	start := time.Now()
	_, err := ExplainBatch(ctx, db, reqs, BatchRunOptions{
		NewEngine: func(db *rel.Database, _ int, req BatchRequest) (*Engine, error) {
			called = true
			return NewRequestEngine(db, req)
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("engine factory ran despite pre-canceled context")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-canceled batch took %v", elapsed)
	}
}
