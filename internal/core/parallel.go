// Concurrent batch explanation: RankAll fanned out across a worker
// pool. Each cause's responsibility is an independent computation over
// the shared immutable minimal n-lineage — max-flow per Algorithm 1 on
// the weakly linear side of the dichotomy, branch-and-bound hitting set
// on the NP-hard side — so the fan-out needs no locking on the hot
// path: the exact and Why-No solvers are pure functions of the shared
// interned lineage index, and each flow worker operates on a private
// network (min-cut temporarily rewrites edge capacities) taken from a
// per-engine pool — cloned from the base on first use, Reset and
// parked on release, so repeated rankings on one engine stop paying
// the per-call clone.
//
// The output is deterministic: explanations land in a slice indexed by
// cause position and are then sorted exactly like the serial path, so
// RankAllParallel is byte-identical to RankAll regardless of worker
// count or scheduling.
package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/querycause/querycause/internal/respflow"
)

// ParallelOptions tunes RankAllParallel.
type ParallelOptions struct {
	// Workers is the parallelism degree. Values <= 0 mean
	// runtime.GOMAXPROCS(0); 1 degrades to the serial path (with
	// cancellation checks between causes).
	Workers int
}

// ResolveWorkers maps a requested parallelism degree to an actual
// worker count: values <= 0 mean runtime.GOMAXPROCS(0).
func ResolveWorkers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForEachIndex fans the half-open index range [0, n) out across a pool
// of workers goroutines: indices are claimed atomically, newWorker is
// called once inside each goroutine to set up worker-private state and
// returns the task function. Workers stop claiming new indices once
// ctx is canceled; the caller is responsible for checking ctx.Err()
// afterwards to distinguish completion from cancellation.
func ForEachIndex(ctx context.Context, n, workers int, newWorker func() func(i int)) {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn := newWorker()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RankAllParallel is RankAll computed by a pool of workers. It honors
// ctx between per-cause computations (a single exact search is not
// interruptible) and returns ctx.Err() if canceled before completion.
// The ranking is byte-identical to RankAll(mode) on the same engine.
func (e *Engine) RankAllParallel(ctx context.Context, mode Mode, opts ParallelOptions) ([]Explanation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := ResolveWorkers(opts.Workers)
	if workers > len(e.causes) {
		workers = len(e.causes)
	}
	if workers <= 1 {
		return e.rankAllCtx(ctx, mode)
	}

	// Resolve the shared read-only state up front: the certificates and
	// the base flow network are lazily cached on the engine and must not
	// be first computed from racing goroutines. The network is built
	// only if some cause will take the flow path, mirroring the lazy
	// serial behaviour (including which errors can surface).
	var base *respflow.Network
	if !e.whyNo && mode != ModeExact && e.flowApplicable(mode) && e.anyNonCounterfactualCause() {
		var err error
		base, err = e.network(mode)
		if err != nil {
			return nil, err
		}
	}

	results := make([]Explanation, len(e.causes))
	var acqMu sync.Mutex
	var acquired []*respflow.Network
	ForEachIndex(ctx, len(e.causes), workers, func() func(int) {
		// Private flow state per worker: a pooled network from an
		// earlier ranking when available, else one clone amortized over
		// all causes the worker pulls.
		var net *respflow.Network
		if base != nil {
			net = e.acquireNet(mode, base)
			acqMu.Lock()
			acquired = append(acquired, net)
			acqMu.Unlock()
		}
		return func(i int) {
			results[i] = e.explain(e.causes[i], net)
		}
	})
	for _, net := range acquired {
		e.releaseNet(mode, net)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sortExplanations(results)
	return results, nil
}

// acquireNet returns a worker-private network for mode: a parked one
// from an earlier ranking when the pool has any (Reset restored it to
// resting state on release), else a fresh Clone of base. Cloning locks
// flowMu so a concurrent serial caller mid-computation on the shared
// base cannot be observed with rewritten capacities; pooled reuse
// needs no lock at all.
func (e *Engine) acquireNet(mode Mode, base *respflow.Network) *respflow.Network {
	e.poolMu.Lock()
	if pool := e.netPool[mode]; len(pool) > 0 {
		net := pool[len(pool)-1]
		e.netPool[mode] = pool[:len(pool)-1]
		e.poolMu.Unlock()
		return net
	}
	e.poolMu.Unlock()
	e.flowMu.Lock()
	net := base.Clone()
	e.flowMu.Unlock()
	return net
}

// releaseNet resets net and parks it for the next ranking's workers.
// The pool is bounded by GOMAXPROCS — more workers than cores never
// pay off, so anything beyond that is discarded rather than held for
// the engine's lifetime.
func (e *Engine) releaseNet(mode Mode, net *respflow.Network) {
	net.Reset()
	e.poolMu.Lock()
	if len(e.netPool[mode]) < runtime.GOMAXPROCS(0) {
		e.netPool[mode] = append(e.netPool[mode], net)
	}
	e.poolMu.Unlock()
}

// rankAllCtx is the serial ranking with cancellation checks between
// causes (the workers<=1 degenerate case of RankAllParallel).
func (e *Engine) rankAllCtx(ctx context.Context, mode Mode) ([]Explanation, error) {
	out := make([]Explanation, 0, len(e.causes))
	for _, t := range e.causes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ex, err := e.Responsibility(t, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, ex)
	}
	sortExplanations(out)
	return out, nil
}

// anyNonCounterfactualCause reports whether some cause would reach the
// flow/exact dispatch (i.e. needs more than the lineage to explain).
func (e *Engine) anyNonCounterfactualCause() bool {
	for _, t := range e.causes {
		if !e.isCounterfactual(t) {
			return true
		}
	}
	return false
}
