// Concurrent batch explanation: RankAll fanned out across a worker
// pool. Each cause's responsibility is an independent computation over
// the shared immutable minimal n-lineage — max-flow per Algorithm 1 on
// the weakly linear side of the dichotomy, branch-and-bound hitting set
// on the NP-hard side — so the fan-out needs no locking on the hot
// path: the exact and Why-No solvers are pure functions of the
// lineage, and each flow worker operates on a private Clone of the
// base network (min-cut temporarily rewrites edge capacities).
//
// The output is deterministic: explanations land in a slice indexed by
// cause position and are then sorted exactly like the serial path, so
// RankAllParallel is byte-identical to RankAll regardless of worker
// count or scheduling.
package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/querycause/querycause/internal/respflow"
)

// ParallelOptions tunes RankAllParallel.
type ParallelOptions struct {
	// Workers is the parallelism degree. Values <= 0 mean
	// runtime.GOMAXPROCS(0); 1 degrades to the serial path (with
	// cancellation checks between causes).
	Workers int
}

// ResolveWorkers maps a requested parallelism degree to an actual
// worker count: values <= 0 mean runtime.GOMAXPROCS(0).
func ResolveWorkers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForEachIndex fans the half-open index range [0, n) out across a pool
// of workers goroutines: indices are claimed atomically, newWorker is
// called once inside each goroutine to set up worker-private state and
// returns the task function. Workers stop claiming new indices once
// ctx is canceled; the caller is responsible for checking ctx.Err()
// afterwards to distinguish completion from cancellation.
func ForEachIndex(ctx context.Context, n, workers int, newWorker func() func(i int)) {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn := newWorker()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RankAllParallel is RankAll computed by a pool of workers. It honors
// ctx between per-cause computations (a single exact search is not
// interruptible) and returns ctx.Err() if canceled before completion.
// The ranking is byte-identical to RankAll(mode) on the same engine.
func (e *Engine) RankAllParallel(ctx context.Context, mode Mode, opts ParallelOptions) ([]Explanation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := ResolveWorkers(opts.Workers)
	if workers > len(e.causes) {
		workers = len(e.causes)
	}
	if workers <= 1 {
		return e.rankAllCtx(ctx, mode)
	}

	// Resolve the shared read-only state up front: the certificates and
	// the base flow network are lazily cached on the engine and must not
	// be first computed from racing goroutines. The network is built
	// only if some cause will take the flow path, mirroring the lazy
	// serial behaviour (including which errors can surface).
	var base *respflow.Network
	if !e.whyNo && mode != ModeExact && e.flowApplicable(mode) && e.anyNonCounterfactualCause() {
		var err error
		base, err = e.network(mode)
		if err != nil {
			return nil, err
		}
	}

	results := make([]Explanation, len(e.causes))
	ForEachIndex(ctx, len(e.causes), workers, func() func(int) {
		// Private flow state per worker; one clone amortized over all
		// causes the worker pulls. Cloning locks flowMu so a concurrent
		// serial caller mid-computation on the shared base cannot be
		// observed with rewritten capacities.
		var net *respflow.Network
		if base != nil {
			e.flowMu.Lock()
			net = base.Clone()
			e.flowMu.Unlock()
		}
		return func(i int) {
			results[i] = e.explain(e.causes[i], net)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sortExplanations(results)
	return results, nil
}

// rankAllCtx is the serial ranking with cancellation checks between
// causes (the workers<=1 degenerate case of RankAllParallel).
func (e *Engine) rankAllCtx(ctx context.Context, mode Mode) ([]Explanation, error) {
	out := make([]Explanation, 0, len(e.causes))
	for _, t := range e.causes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ex, err := e.Responsibility(t, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, ex)
	}
	sortExplanations(out)
	return out, nil
}

// anyNonCounterfactualCause reports whether some cause would reach the
// flow/exact dispatch (i.e. needs more than the lineage to explain).
func (e *Engine) anyNonCounterfactualCause() bool {
	for _, t := range e.causes {
		if !e.isCounterfactual(t) {
			return true
		}
	}
	return false
}
