// Engine-level batch explanation: the fan-out behind the public
// ExplainAll API and the explanation server's batch endpoint. Requests
// fan out across a worker pool; leftover worker budget flows into
// ranking each request's causes concurrently. An EngineFactory hook
// lets callers resolve requests to cached engines (the server keeps
// per-answer engines — lineage already computed — in an LRU), while
// the default factory builds a fresh engine per request.
package core

import (
	"context"

	"github.com/querycause/querycause/internal/rel"
)

// BatchRequest names one answer or non-answer of a workload to explain.
type BatchRequest struct {
	// Query is the conjunctive query; it may be Boolean (no Answer).
	Query *rel.Query
	// Answer is the (non-)answer tuple bound into the head.
	Answer []rel.Value
	// WhyNo explains why Answer is NOT returned instead of why it is.
	WhyNo bool
}

// BatchResult is the ranking for one request. Err is per-request: an
// invalid request fails alone without aborting the rest of the batch.
type BatchResult struct {
	Explanations []Explanation
	Err          error
}

// EngineFactory resolves one batch request to an engine; index is the
// request's position in the batch, letting callers consult side tables
// (e.g. the server's per-item cache bookkeeping). Implementations may
// return a shared cached engine: engines are safe for concurrent use,
// and the batch runner never mutates them. Factories are called from
// worker goroutines and must be concurrency-safe.
type EngineFactory func(db *rel.Database, index int, req BatchRequest) (*Engine, error)

// NewRequestEngine is the default engine constructor: a fresh Why-So or
// Why-No engine per request.
func NewRequestEngine(db *rel.Database, req BatchRequest) (*Engine, error) {
	if req.WhyNo {
		return NewWhyNo(db, req.Query, req.Answer...)
	}
	return NewWhySo(db, req.Query, req.Answer...)
}

// BatchRunOptions configures ExplainBatch.
type BatchRunOptions struct {
	// Workers is the total worker budget. Values <= 0 mean
	// runtime.GOMAXPROCS(0).
	Workers int
	// Mode selects the responsibility strategy (zero value ModeAuto).
	Mode Mode
	// NewEngine resolves requests to engines; nil means NewRequestEngine.
	NewEngine EngineFactory
}

// ExplainBatch explains many answers and non-answers of one database in
// a single call, fanning the requests out across a pool of
// opts.Workers workers. Results are returned in request order and are
// byte-identical to the serial per-request ranking at the same mode.
// When the batch has fewer requests than workers, the leftover budget
// flows into ranking each request's causes concurrently.
//
// ExplainBatch returns a non-nil error only when ctx is canceled before
// the batch completes; per-request failures land in BatchResult.Err.
func ExplainBatch(ctx context.Context, db *rel.Database, reqs []BatchRequest, opts BatchRunOptions) ([]BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return results, nil
	}
	newEngine := opts.NewEngine
	if newEngine == nil {
		newEngine = func(db *rel.Database, _ int, req BatchRequest) (*Engine, error) {
			return NewRequestEngine(db, req)
		}
	}
	workers := ResolveWorkers(opts.Workers)
	reqWorkers := workers
	if reqWorkers > len(reqs) {
		reqWorkers = len(reqs)
	}
	// Leftover budget (workers beyond one per request) goes to ranking
	// causes within each request; with reqs >= workers this is 1 and
	// each request is ranked serially.
	perReq := ParallelOptions{Workers: workers / reqWorkers}
	ForEachIndex(ctx, len(reqs), reqWorkers, func() func(int) {
		return func(i int) {
			eng, err := newEngine(db, i, reqs[i])
			if err != nil {
				results[i].Err = err
				return
			}
			results[i].Explanations, results[i].Err = eng.RankAllParallel(ctx, opts.Mode, perReq)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
