package cache

import (
	"fmt"
	"sync"
	"testing"
)

// TestLRUTable drives the cache through scripted operation sequences
// and checks the resulting contents, order, and counters.
func TestLRUTable(t *testing.T) {
	type op struct {
		kind string // "get", "put", "remove"
		key  int
		val  string
		ok   bool // expected for get/remove
	}
	cases := []struct {
		name      string
		capacity  int
		ops       []op
		wantKeys  []int // MRU first
		wantStats Stats
	}{
		{
			name:     "fill-no-eviction",
			capacity: 3,
			ops: []op{
				{kind: "put", key: 1, val: "a"},
				{kind: "put", key: 2, val: "b"},
				{kind: "put", key: 3, val: "c"},
				{kind: "get", key: 1, val: "a", ok: true},
			},
			wantKeys:  []int{1, 3, 2},
			wantStats: Stats{Hits: 1, Misses: 0, Evictions: 0, Len: 3, Capacity: 3},
		},
		{
			name:     "eviction-drops-lru",
			capacity: 2,
			ops: []op{
				{kind: "put", key: 1, val: "a"},
				{kind: "put", key: 2, val: "b"},
				{kind: "put", key: 3, val: "c"}, // evicts 1
				{kind: "get", key: 1, ok: false},
				{kind: "get", key: 2, val: "b", ok: true},
				{kind: "get", key: 3, val: "c", ok: true},
			},
			wantKeys:  []int{3, 2},
			wantStats: Stats{Hits: 2, Misses: 1, Evictions: 1, Len: 2, Capacity: 2},
		},
		{
			name:     "get-refreshes-recency",
			capacity: 2,
			ops: []op{
				{kind: "put", key: 1, val: "a"},
				{kind: "put", key: 2, val: "b"},
				{kind: "get", key: 1, val: "a", ok: true}, // 1 is now MRU
				{kind: "put", key: 3, val: "c"},           // evicts 2, not 1
				{kind: "get", key: 2, ok: false},
				{kind: "get", key: 1, val: "a", ok: true},
			},
			wantKeys:  []int{1, 3},
			wantStats: Stats{Hits: 2, Misses: 1, Evictions: 1, Len: 2, Capacity: 2},
		},
		{
			name:     "put-overwrites-in-place",
			capacity: 2,
			ops: []op{
				{kind: "put", key: 1, val: "a"},
				{kind: "put", key: 2, val: "b"},
				{kind: "put", key: 1, val: "a2"},
				{kind: "get", key: 1, val: "a2", ok: true},
				{kind: "get", key: 2, val: "b", ok: true},
			},
			wantKeys:  []int{2, 1},
			wantStats: Stats{Hits: 2, Misses: 0, Evictions: 0, Len: 2, Capacity: 2},
		},
		{
			name:     "remove",
			capacity: 3,
			ops: []op{
				{kind: "put", key: 1, val: "a"},
				{kind: "put", key: 2, val: "b"},
				{kind: "remove", key: 1, ok: true},
				{kind: "remove", key: 1, ok: false},
				{kind: "get", key: 1, ok: false},
			},
			wantKeys:  []int{2},
			wantStats: Stats{Hits: 0, Misses: 1, Evictions: 0, Len: 1, Capacity: 3},
		},
		{
			name:     "capacity-clamped-to-one",
			capacity: 0,
			ops: []op{
				{kind: "put", key: 1, val: "a"},
				{kind: "put", key: 2, val: "b"}, // evicts 1
				{kind: "get", key: 2, val: "b", ok: true},
			},
			wantKeys:  []int{2},
			wantStats: Stats{Hits: 1, Misses: 0, Evictions: 1, Len: 1, Capacity: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New[int, string](tc.capacity, nil)
			for i, o := range tc.ops {
				switch o.kind {
				case "put":
					c.Put(o.key, o.val)
				case "get":
					v, ok := c.Get(o.key)
					if ok != o.ok || (ok && v != o.val) {
						t.Fatalf("op %d: Get(%d) = %q,%v; want %q,%v", i, o.key, v, ok, o.val, o.ok)
					}
				case "remove":
					if ok := c.Remove(o.key); ok != o.ok {
						t.Fatalf("op %d: Remove(%d) = %v; want %v", i, o.key, ok, o.ok)
					}
				}
			}
			keys := c.Keys()
			if fmt.Sprint(keys) != fmt.Sprint(tc.wantKeys) {
				t.Errorf("keys = %v; want %v", keys, tc.wantKeys)
			}
			if got := c.Stats(); got != tc.wantStats {
				t.Errorf("stats = %+v; want %+v", got, tc.wantStats)
			}
		})
	}
}

// TestLRUOnEvict checks the eviction callback fires for both implicit
// eviction and explicit removal, with the right pairs.
func TestLRUOnEvict(t *testing.T) {
	var gone []string
	c := New[int, string](2, func(k int, v string) { gone = append(gone, fmt.Sprintf("%d=%s", k, v)) })
	c.Put(1, "a")
	c.Put(2, "b")
	c.Put(3, "c") // evicts 1
	c.Remove(2)
	want := "[1=a 2=b]"
	if got := fmt.Sprint(gone); got != want {
		t.Fatalf("evicted = %v; want %v", got, want)
	}
}

// TestLRUOnEvictReplace checks Put over an existing key hands the
// displaced value to onEvict: cached values can own releasable
// resources, and a silent overwrite would strand the old one. The
// replacement must not count as a capacity eviction in Stats.
func TestLRUOnEvictReplace(t *testing.T) {
	var gone []string
	c := New[int, string](2, func(k int, v string) { gone = append(gone, fmt.Sprintf("%d=%s", k, v)) })
	c.Put(1, "a")
	c.Put(1, "a2") // displaces "a"
	c.Put(2, "b")
	c.Put(1, "a3") // displaces "a2", refreshes recency
	c.Put(3, "c")  // evicts 2 (LRU after the refresh)
	want := "[1=a 1=a2 2=b]"
	if got := fmt.Sprint(gone); got != want {
		t.Fatalf("displaced+evicted = %v; want %v", got, want)
	}
	if got, ok := c.Get(1); !ok || got != "a3" {
		t.Fatalf("Get(1) = %q, %v; want a3", got, ok)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d; replacements must not count, want 1", st.Evictions)
	}
}

// TestLRUConcurrent hammers one cache from many goroutines; run under
// -race it checks the cache is internally synchronized, and afterwards
// the invariants (len <= cap, hits+misses == gets) must hold.
func TestLRUConcurrent(t *testing.T) {
	const (
		goroutines = 16
		opsPer     = 500
		capacity   = 32
	)
	c := New[int, int](capacity, nil)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				k := (g*31 + i) % 64
				if i%3 == 0 {
					c.Put(k, k*2)
				} else if v, ok := c.Get(k); ok && v != k*2 {
					t.Errorf("Get(%d) = %d; want %d", k, v, k*2)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Len > capacity {
		t.Errorf("len %d exceeds capacity %d", st.Len, capacity)
	}
	gets := uint64(0)
	for g := 0; g < goroutines; g++ {
		for i := 0; i < opsPer; i++ {
			if i%3 != 0 {
				gets++
			}
		}
	}
	if st.Hits+st.Misses != gets {
		t.Errorf("hits+misses = %d; want %d", st.Hits+st.Misses, gets)
	}
}
