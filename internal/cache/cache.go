// Package cache provides the reusable concurrency-safe LRU cache that
// backs the explanation server's session registry: dichotomy
// certificates, prepared queries, and per-answer explanation engines
// are all query-level artifacts (Meliou et al., VLDB 2010 computes them
// per query shape, not per request), so a long-running service keeps
// them hot and skips straight to responsibility ranking on repeats.
//
// The cache is a plain mutex-guarded map + doubly linked list. All
// operations are O(1); hit/miss/eviction counters are maintained for
// observability (the server's /v1/stats endpoint surfaces them, and the
// warm-vs-cold integration tests assert on them).
package cache

import "sync"

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Len       int    `json:"len"`
	Capacity  int    `json:"capacity"`
}

// entry is one node of the intrusive LRU list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// LRU is a fixed-capacity least-recently-used cache safe for concurrent
// use. The zero value is not usable; call New.
type LRU[K comparable, V any] struct {
	mu      sync.Mutex
	cap     int
	items   map[K]*entry[K, V]
	root    entry[K, V] // sentinel: root.next is MRU, root.prev is LRU
	hits    uint64
	misses  uint64
	evicts  uint64
	onEvict func(K, V)
}

// New returns an LRU holding at most capacity entries; capacity < 1 is
// treated as 1. onEvict, if non-nil, is called for every evicted,
// removed, or displaced (Put over an existing key) entry; it runs under
// the cache lock, so keep it cheap and do not reenter the cache from
// it.
func New[K comparable, V any](capacity int, onEvict func(K, V)) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	c := &LRU[K, V]{cap: capacity, items: make(map[K]*entry[K, V], capacity), onEvict: onEvict}
	c.root.next = &c.root
	c.root.prev = &c.root
	return c
}

// Get returns the cached value and moves it to the front.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.moveToFront(e)
	return e.val, true
}

// Put inserts or refreshes a key at the front, evicting the
// least-recently-used entry when over capacity. Replacing an existing
// key hands the displaced value to onEvict (without counting it as a
// capacity eviction in Stats): values may own releasable resources, and
// a replacement strands the old value exactly like an eviction does.
func (c *LRU[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		old := e.val
		e.val = val
		c.moveToFront(e)
		if c.onEvict != nil {
			c.onEvict(key, old)
		}
		return
	}
	e := &entry[K, V]{key: key, val: val}
	c.items[key] = e
	c.pushFront(e)
	if len(c.items) > c.cap {
		lru := c.root.prev
		c.unlink(lru)
		delete(c.items, lru.key)
		c.evicts++
		if c.onEvict != nil {
			c.onEvict(lru.key, lru.val)
		}
	}
}

// Remove drops a key if present, reporting whether it was held.
func (c *LRU[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.unlink(e)
	delete(c.items, key)
	if c.onEvict != nil {
		c.onEvict(e.key, e.val)
	}
	return true
}

// Peek returns the cached value without refreshing recency or touching
// the hit/miss counters. Snapshotters (the persistence layer serializes
// the hot certificate cache) use it so observability counters keep
// reflecting request traffic only.
func (c *LRU[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	return e.val, true
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats snapshots the effectiveness counters.
func (c *LRU[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evicts, Len: len(c.items), Capacity: c.cap}
}

// Keys returns the cached keys from most- to least-recently used.
func (c *LRU[K, V]) Keys() []K {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]K, 0, len(c.items))
	for e := c.root.next; e != &c.root; e = e.next {
		out = append(out, e.key)
	}
	return out
}

func (c *LRU[K, V]) pushFront(e *entry[K, V]) {
	e.prev = &c.root
	e.next = c.root.next
	e.prev.next = e
	e.next.prev = e
}

func (c *LRU[K, V]) unlink(e *entry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (c *LRU[K, V]) moveToFront(e *entry[K, V]) {
	c.unlink(e)
	c.pushFront(e)
}
